package repro_test

import (
	"fmt"

	"repro"
)

// The headline experiment: a 1us device is unusable on demand but
// approaches DRAM behind prefetch + user-level context switches.
func Example() {
	cfg := repro.DefaultConfig()
	ub := repro.NewMicrobench(2000, repro.DefaultWorkCount, 1)

	base := must(repro.RunDRAMBaseline(cfg, ub))
	ondemand := must(repro.RunOnDemandDevice(cfg, ub))
	prefetch := must(repro.RunPrefetch(cfg, ub, 10, false))

	fmt.Printf("on-demand: %.2f of DRAM\n", ondemand.NormalizedTo(base.Measurement))
	fmt.Printf("prefetch:  %.2f of DRAM\n", prefetch.NormalizedTo(base.Measurement))
	// Output:
	// on-demand: 0.10 of DRAM
	// prefetch:  0.92 of DRAM
}

// Ablating the paper's bottleneck: lifting the 10-entry LFB limit lets
// a 4us device reach DRAM parity (§V-B).
func ExampleConfig() {
	cfg := repro.DefaultConfig().WithLatency(4 * repro.Microsecond)
	cfg.LFBPerCore = 80 // the paper's 20-entries-per-microsecond rule
	cfg.ChipQueueMMIO = 1024

	ub := repro.NewMicrobench(4000, repro.DefaultWorkCount, 1)
	base := must(repro.RunDRAMBaseline(cfg, ub))
	r := must(repro.RunPrefetch(cfg, ub, 100, false))
	fmt.Printf("4us device at %.1f of DRAM with rule-sized queues\n",
		r.NormalizedTo(base.Measurement))
	// Output:
	// 4us device at 1.0 of DRAM with rule-sized queues
}

// Applications run through the paper's full two-run record/replay
// methodology; diagnostics confirm every access was served from the
// recorded sequence.
func ExampleRunPrefetch() {
	g := repro.NewKronecker(8, 8, 1)
	bfs := repro.NewBFS(g, []int{1, 2}, 32, repro.DefaultWorkCount)

	r := must(repro.RunPrefetch(repro.DefaultConfig(), bfs, 4, true))
	fmt.Printf("replay misses: %d\n", r.Diag.OnDemand)
	fmt.Printf("traversals expanded the expected vertices: %v\n",
		bfs.Visited == 2*bfs.ExpectedVisitsPerCore())
	// Output:
	// replay misses: 0
	// traversals expanded the expected vertices: true
}

// The software-queue mechanism scales past the hardware queues but its
// per-descriptor costs cap it near half of DRAM (§V-C).
func ExampleRunSWQueue() {
	cfg := repro.DefaultConfig()
	ub := repro.NewMicrobench(2000, repro.DefaultWorkCount, 1)
	base := must(repro.RunDRAMBaseline(cfg, ub))
	r := must(repro.RunSWQueue(cfg, ub, 24, false))
	fmt.Printf("software queues peak near %.1f of DRAM\n", r.NormalizedTo(base.Measurement))
	// Output:
	// software queues peak near 0.5 of DRAM
}
