package pcie

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
)

func testLink(t *testing.T) (*sim.Engine, *Link, platform.Config) {
	t.Helper()
	cfg := platform.Default()
	eng := sim.NewEngine()
	return eng, NewLink(eng, cfg), cfg
}

func TestSendDownDelivery(t *testing.T) {
	eng, l, cfg := testLink(t)
	var arrived sim.Time
	l.SendDown(0, 0, func() { arrived = eng.Now() })
	eng.Run()
	// Header-only packet: 24B at 4GB/s = 6ns transmission + 400ns prop.
	want := cfg.TLPTime(0) + cfg.PCIePropagation
	if arrived != want {
		t.Errorf("arrived at %v, want %v", arrived, want)
	}
}

func TestSendUpCacheLine(t *testing.T) {
	eng, l, cfg := testLink(t)
	var arrived sim.Time
	l.SendUp(64, 64, func() { arrived = eng.Now() })
	eng.Run()
	want := cfg.TLPTime(64) + cfg.PCIePropagation // 22ns + 400ns
	if arrived != want {
		t.Errorf("arrived at %v, want %v", arrived, want)
	}
	up := l.Upstream()
	if up.TotalBytes != 88 || up.UsefulBytes != 64 || up.Packets != 1 {
		t.Errorf("upstream stats = %+v", up)
	}
	if f := up.UsefulFraction(); f < 0.72 || f > 0.73 {
		t.Errorf("useful fraction %.3f, want 64/88", f)
	}
}

func TestLinkSerialization(t *testing.T) {
	eng, l, cfg := testLink(t)
	var first, second sim.Time
	l.SendUp(64, 64, func() { first = eng.Now() })
	l.SendUp(64, 64, func() { second = eng.Now() })
	eng.Run()
	// Second packet transmits only after the first: arrivals 22ns apart.
	if second-first != cfg.TLPTime(64) {
		t.Errorf("arrival gap %v, want %v", second-first, cfg.TLPTime(64))
	}
}

func TestDirectionsAreIndependent(t *testing.T) {
	eng, l, cfg := testLink(t)
	var up, down sim.Time
	l.SendUp(64, 64, func() { up = eng.Now() })
	l.SendDown(64, 64, func() { down = eng.Now() })
	eng.Run()
	// Full duplex: both arrive at the single-packet time.
	want := cfg.TLPTime(64) + cfg.PCIePropagation
	if up != want || down != want {
		t.Errorf("up=%v down=%v, want both %v", up, down, want)
	}
}

func TestSendUpAtDelays(t *testing.T) {
	eng, l, cfg := testLink(t)
	var arrived sim.Time
	l.SendUpAt(1*sim.Microsecond, 64, 64, func() { arrived = eng.Now() })
	eng.Run()
	want := 1*sim.Microsecond + cfg.TLPTime(64) + cfg.PCIePropagation
	if arrived != want {
		t.Errorf("arrived at %v, want %v", arrived, want)
	}
}

func TestSendDownAtDelays(t *testing.T) {
	eng, l, cfg := testLink(t)
	var arrived sim.Time
	l.SendDownAt(500*sim.Nanosecond, 16, 0, func() { arrived = eng.Now() })
	eng.Run()
	want := 500*sim.Nanosecond + cfg.TLPTime(16) + cfg.PCIePropagation
	if arrived != want {
		t.Errorf("arrived at %v, want %v", arrived, want)
	}
}

func TestUsefulExceedsPayloadPanics(t *testing.T) {
	_, l, _ := testLink(t)
	defer func() {
		if recover() == nil {
			t.Error("useful > payload did not panic")
		}
	}()
	l.SendUp(10, 11, func() {})
}

func TestBandwidthSaturation(t *testing.T) {
	// Saturate the upstream with back-to-back 64B packets and confirm
	// the achieved useful rate matches 64/88 of the 4 GB/s peak.
	eng, l, cfg := testLink(t)
	n := 1000
	for i := 0; i < n; i++ {
		l.SendUp(64, 64, func() {})
	}
	eng.Run()
	elapsed := eng.Now() - cfg.PCIePropagation // transmission window
	rate := float64(n*64) / elapsed.Seconds()
	wantRate := cfg.PCIeBandwidth * 64.0 / 88.0 // ~2.9 GB/s useful
	if rate < wantRate*0.99 || rate > wantRate*1.01 {
		t.Errorf("useful rate %.3g B/s, want ~%.3g", rate, wantRate)
	}
}

func TestUsefulBandwidthStat(t *testing.T) {
	eng, l, _ := testLink(t)
	l.SendUp(64, 64, func() {})
	eng.Run()
	s := l.Upstream()
	bw := s.UsefulBandwidth(eng.Now())
	if bw <= 0 {
		t.Errorf("useful bandwidth %v, want positive", bw)
	}
	if got := (Stats{}).UsefulBandwidth(0); got != 0 {
		t.Errorf("zero-elapsed bandwidth = %v, want 0", got)
	}
	if got := (Stats{}).UsefulFraction(); got != 0 {
		t.Errorf("idle useful fraction = %v, want 0", got)
	}
}

func TestChipQueueCapacity(t *testing.T) {
	cfg := platform.Default()
	eng := sim.NewEngine()
	q := NewChipQueue(eng, cfg)
	if q.Capacity() != 14 {
		t.Errorf("chip queue capacity %d, paper says 14 (§V-B)", q.Capacity())
	}
}
