// Package pcie models the PCIe Gen2 x8 link between the host and the
// FPGA device emulator, together with the chip-level shared queue that
// all cores' memory-mapped device accesses traverse on their way to the
// PCIe controller.
//
// Two properties of this model produce headline results of the paper:
//
//   - The chip-level queue admits at most 14 simultaneous memory-mapped
//     requests, regardless of how many cores issue them (§V-B) — the
//     multicore scaling wall of prefetch-based access (Fig 5).
//   - Each transaction-layer packet carries a 24-byte header, and the
//     software-managed-queue protocol needs several packets per access,
//     so at high request rates only about half of the 4 GB/s carries
//     useful data (§V-C) — the eight-core plateau of Figs 8 and 9.
package pcie

import (
	"repro/internal/fault"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Link is a full-duplex PCIe link: two independent directions, each
// serializing packets at the configured bandwidth, plus a fixed
// propagation delay covering the wire, PHY, and controllers on both
// sides.
type Link struct {
	eng  *sim.Engine
	cfg  platform.Config
	down *sim.Server // host -> device
	up   *sim.Server // device -> host
	prop sim.Time
	inj  *fault.Injector

	trDown trace.Track // TLP slice timeline, host -> device
	trUp   trace.Track // TLP slice timeline, device -> host

	downTotal  int64 // bytes including headers
	downUseful int64 // payload bytes that applications asked for
	upTotal    int64
	upUseful   int64
}

// NewLink creates an idle link from the platform description.
func NewLink(eng *sim.Engine, cfg platform.Config) *Link {
	return &Link{
		eng:  eng,
		cfg:  cfg,
		down: eng.NewServer("pcie-down"),
		up:   eng.NewServer("pcie-up"),
		prop: cfg.PCIePropagation,
	}
}

// Propagation returns the one-way propagation delay.
func (l *Link) Propagation() sim.Time { return l.prop }

// SetFaultInjector attaches a fault injector (nil disables injection).
// Subsequent packets may suffer TLP corruption — a link-level replay
// paying a second serialization plus the platform's replay penalty —
// or a transient link stall delaying transmission.
func (l *Link) SetFaultInjector(in *fault.Injector) { l.inj = in }

// SetTrace attaches per-direction trace tracks; every TLP transmission
// is then recorded as a complete slice (with its wire occupancy) and
// injected link faults as instants. Zero tracks disable recording.
func (l *Link) SetTrace(down, up trace.Track) {
	l.trDown = down
	l.trUp = up
}

// SendDown transmits a host-to-device packet with the given payload.
// useful is the subset of payload bytes that is application data (zero
// for protocol traffic such as read requests and doorbells). done fires
// when the packet has fully arrived at the device.
func (l *Link) SendDown(payload, useful int, done func()) {
	l.send(l.down, l.trDown, &l.downTotal, &l.downUseful, l.eng.Now(), payload, useful, done)
}

// SendUp transmits a device-to-host packet; done fires on full arrival
// at the host.
func (l *Link) SendUp(payload, useful int, done func()) {
	l.send(l.up, l.trUp, &l.upTotal, &l.upUseful, l.eng.Now(), payload, useful, done)
}

// SendUpAt is SendUp for a packet that becomes ready for transmission
// only at the given future time — the delay module's precisely timed
// responses (§IV-A).
func (l *Link) SendUpAt(earliest sim.Time, payload, useful int, done func()) {
	l.send(l.up, l.trUp, &l.upTotal, &l.upUseful, earliest, payload, useful, done)
}

// SendDownAt is SendDown with a future transmission-ready time.
func (l *Link) SendDownAt(earliest sim.Time, payload, useful int, done func()) {
	l.send(l.down, l.trDown, &l.downTotal, &l.downUseful, earliest, payload, useful, done)
}

func (l *Link) send(dir *sim.Server, tr trace.Track, total, usefulAcc *int64, earliest sim.Time, payload, useful int, done func()) {
	if useful > payload {
		panic("pcie: useful bytes exceed payload")
	}
	*total += int64(payload + l.cfg.PCIeHeaderBytes)
	*usefulAcc += int64(useful)
	svc := l.cfg.TLPTime(payload)
	name := "tlp"
	if l.inj.CorruptTLP() {
		// The corrupted TLP is NAKed and replayed at the link level: the
		// wire carries it twice, and recovery adds the replay penalty.
		*total += int64(payload + l.cfg.PCIeHeaderBytes)
		svc = 2*svc + l.cfg.PCIeReplayPenalty
		name = "tlp-replay"
	}
	if st, ok := l.inj.LinkStall(); ok && earliest < l.eng.Now()+st {
		earliest = l.eng.Now() + st
		tr.Instant(l.eng.Now(), "fault-link-stall", "")
	}
	var args string
	if tr.Active() {
		args = trace.Int("payload", int64(payload)) + "," + trace.Int("bytes", int64(payload+l.cfg.PCIeHeaderBytes))
	}
	// A packet with a future ready time is held at the sender until
	// then; the link stays work-conserving for other traffic in the
	// meantime (only the delay module uses future ready times, and its
	// delay is device-internal, not wire occupancy).
	submit := func() {
		start, end := dir.Submit(svc)
		tr.Slice(start, end, name, args)
		l.eng.At(end+l.prop, done)
	}
	if earliest > l.eng.Now() {
		l.eng.At(earliest, submit)
	} else {
		submit()
	}
}

// Stats describes the traffic carried so far in one direction.
type Stats struct {
	TotalBytes  int64
	UsefulBytes int64
	Packets     uint64
	Utilization float64 // busy fraction of the direction's bandwidth
}

// UsefulFraction returns useful bytes over total bytes (0 when idle).
func (s Stats) UsefulFraction() float64 {
	if s.TotalBytes == 0 {
		return 0
	}
	return float64(s.UsefulBytes) / float64(s.TotalBytes)
}

// UsefulBandwidth returns the achieved useful-data rate in bytes/second
// over the elapsed simulated time.
func (s Stats) UsefulBandwidth(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.UsefulBytes) / elapsed.Seconds()
}

// Upstream returns device-to-host traffic statistics.
func (l *Link) Upstream() Stats {
	return Stats{TotalBytes: l.upTotal, UsefulBytes: l.upUseful, Packets: l.up.Jobs(), Utilization: l.up.Utilization()}
}

// Downstream returns host-to-device traffic statistics.
func (l *Link) Downstream() Stats {
	return Stats{TotalBytes: l.downTotal, UsefulBytes: l.downUseful, Packets: l.down.Jobs(), Utilization: l.down.Utilization()}
}

// NewChipQueue creates the chip-level shared queue on the MMIO path
// between the cores and the PCIe controller. The paper could not locate
// this queue precisely ("We do not have sufficient visibility into the
// chip") but verified its occupancy limit of 14; we model it as a token
// pool held for the full lifetime of each memory-mapped device access.
func NewChipQueue(eng *sim.Engine, cfg platform.Config) *sim.TokenPool {
	return eng.NewTokenPool("chip-mmio-queue", cfg.ChipQueueMMIO)
}
