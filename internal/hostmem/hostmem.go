// Package hostmem provides the in-memory descriptor structures of the
// application-managed software-queue interface (§III-A, §IV-A): a
// per-core request queue of access descriptors, a completion queue the
// device writes back into, and the doorbell-request flag that lets the
// host skip the costly MMIO doorbell while the device's request fetcher
// is already running.
//
// These are pure data structures; the *timing* of manipulating them
// (descriptor writes, DMA reads, completion polls) is charged by the
// host-core model and the device's request fetchers.
package hostmem

import (
	"repro/internal/attrib"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Descriptor is one software-queue request: "Each descriptor contains
// the address to read, and the target address where the response data is
// to be stored" (§IV-A).
type Descriptor struct {
	ID        uint64 // unique per queue, for completion matching
	Addr      uint64 // device address to read or write
	Target    uint64 // host-memory address for the response/source data
	Write     bool   // write-path extension (§VII): Target holds the data to store
	Submitted sim.Time

	// Span is the access-lifecycle trace span riding along with the
	// descriptor so the device side can stamp fetch/serve/completion
	// edges. The zero Span (tracing disabled) is a no-op.
	Span trace.Span

	// Attrib is the latency-attribution ledger riding along with the
	// descriptor so the device side can mark phase boundaries (fetch,
	// serve, data landing, completion posting). Nil (attribution
	// disabled) makes every mark a no-op.
	Attrib *attrib.Access
}

// Completion is one completion-queue entry; the device guarantees it is
// written after the response data (§IV-A).
type Completion struct {
	ID     uint64
	Posted sim.Time
}

// RequestQueue is a per-core in-memory request ring plus its
// doorbell-request flag.
type RequestQueue struct {
	pending []Descriptor
	nextID  uint64

	// doorbellRequested is the in-memory flag the device sets when its
	// request fetcher stops, telling the host that the next submission
	// must ring the MMIO doorbell (§III-A). It starts set: the very
	// first request always needs a doorbell.
	doorbellRequested bool

	submitted uint64
	maxDepth  int

	// OnChange, when set, observes every pending-depth change — the
	// trace layer's SQ-depth timeline. It must not mutate the queue.
	OnChange func(n int)
}

// NewRequestQueue returns an empty queue with the doorbell-request flag
// set.
func NewRequestQueue() *RequestQueue {
	return &RequestQueue{doorbellRequested: true}
}

// Push appends a read descriptor for the given device address, stamping
// it with the submission time, and returns its ID.
func (q *RequestQueue) Push(addr, target uint64, now sim.Time) uint64 {
	return q.push(addr, target, now, false, trace.Span{}, nil)
}

// PushSpan is Push carrying an access-lifecycle trace span, so the
// device side can stamp fetch/serve/completion edges on it.
func (q *RequestQueue) PushSpan(addr, target uint64, now sim.Time, sp trace.Span) uint64 {
	return q.push(addr, target, now, false, sp, nil)
}

// PushTracked is PushSpan additionally carrying a latency-attribution
// ledger, so the device side can mark phase boundaries. Either or both
// observers may be zero/nil.
func (q *RequestQueue) PushTracked(addr, target uint64, now sim.Time, sp trace.Span, aw *attrib.Access) uint64 {
	return q.push(addr, target, now, false, sp, aw)
}

// PushWrite appends a write descriptor (§VII extension): the device
// will fetch the line at target from host memory and store it at addr.
func (q *RequestQueue) PushWrite(addr, target uint64, now sim.Time) uint64 {
	return q.push(addr, target, now, true, trace.Span{}, nil)
}

func (q *RequestQueue) push(addr, target uint64, now sim.Time, write bool, sp trace.Span, aw *attrib.Access) uint64 {
	id := q.nextID
	q.nextID++
	q.pending = append(q.pending, Descriptor{ID: id, Addr: addr, Target: target, Write: write, Submitted: now, Span: sp, Attrib: aw})
	q.submitted++
	if len(q.pending) > q.maxDepth {
		q.maxDepth = len(q.pending)
	}
	if q.OnChange != nil {
		q.OnChange(len(q.pending))
	}
	return id
}

// PopBurst removes and returns up to max descriptors from the head of
// the queue — the device-side burst read (§IV-A: "retrieves descriptors
// in bursts of eight").
func (q *RequestQueue) PopBurst(max int) []Descriptor {
	n := max
	if n > len(q.pending) {
		n = len(q.pending)
	}
	if n == 0 {
		return nil
	}
	burst := make([]Descriptor, n)
	copy(burst, q.pending[:n])
	q.pending = q.pending[:copy(q.pending, q.pending[n:])]
	if q.OnChange != nil {
		q.OnChange(len(q.pending))
	}
	return burst
}

// Len returns the number of descriptors awaiting fetch.
func (q *RequestQueue) Len() int { return len(q.pending) }

// Submitted returns the total number of descriptors ever pushed.
func (q *RequestQueue) Submitted() uint64 { return q.submitted }

// MaxDepth returns the high-water mark of pending descriptors.
func (q *RequestQueue) MaxDepth() int { return q.maxDepth }

// DoorbellRequested reports whether the next submission must ring the
// MMIO doorbell.
func (q *RequestQueue) DoorbellRequested() bool { return q.doorbellRequested }

// SetDoorbellRequested is called by the device when its fetcher goes
// idle.
func (q *RequestQueue) SetDoorbellRequested() { q.doorbellRequested = true }

// ClearDoorbellRequested is called by the host after ringing the
// doorbell.
func (q *RequestQueue) ClearDoorbellRequested() { q.doorbellRequested = false }

// CompletionQueue is a per-core in-memory completion ring.
type CompletionQueue struct {
	entries  []Completion
	posted   uint64
	drained  uint64
	maxDepth int

	// OnChange, when set, observes every depth change — the trace
	// layer's CQ-depth timeline. It must not mutate the queue.
	OnChange func(n int)
}

// NewCompletionQueue returns an empty completion queue.
func NewCompletionQueue() *CompletionQueue {
	return &CompletionQueue{}
}

// Post appends a completion entry (device side).
func (q *CompletionQueue) Post(id uint64, now sim.Time) {
	q.entries = append(q.entries, Completion{ID: id, Posted: now})
	q.posted++
	if len(q.entries) > q.maxDepth {
		q.maxDepth = len(q.entries)
	}
	if q.OnChange != nil {
		q.OnChange(len(q.entries))
	}
}

// Drain removes and returns all pending completions (host-side poll).
func (q *CompletionQueue) Drain() []Completion {
	if len(q.entries) == 0 {
		return nil
	}
	out := make([]Completion, len(q.entries))
	copy(out, q.entries)
	q.drained += uint64(len(out))
	q.entries = q.entries[:0]
	if q.OnChange != nil {
		q.OnChange(0)
	}
	return out
}

// Len returns the number of unconsumed completions.
func (q *CompletionQueue) Len() int { return len(q.entries) }

// Posted returns the total completions ever posted.
func (q *CompletionQueue) Posted() uint64 { return q.posted }

// MaxDepth returns the high-water mark of unconsumed completions.
func (q *CompletionQueue) MaxDepth() int { return q.maxDepth }
