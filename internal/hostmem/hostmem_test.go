package hostmem

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestRequestQueuePushPop(t *testing.T) {
	q := NewRequestQueue()
	id0 := q.Push(0x1000, 0xA000, 5*sim.Nanosecond)
	id1 := q.Push(0x2000, 0xB000, 6*sim.Nanosecond)
	if id0 != 0 || id1 != 1 {
		t.Errorf("ids = %d,%d, want 0,1", id0, id1)
	}
	if q.Len() != 2 || q.Submitted() != 2 {
		t.Errorf("len=%d submitted=%d", q.Len(), q.Submitted())
	}
	burst := q.PopBurst(8)
	if len(burst) != 2 {
		t.Fatalf("burst len %d, want 2", len(burst))
	}
	if burst[0].Addr != 0x1000 || burst[0].Target != 0xA000 || burst[0].Submitted != 5*sim.Nanosecond {
		t.Errorf("burst[0] = %+v", burst[0])
	}
	if burst[1].ID != 1 {
		t.Errorf("burst[1].ID = %d, want 1", burst[1].ID)
	}
	if q.Len() != 0 {
		t.Errorf("len after pop = %d, want 0", q.Len())
	}
}

func TestPopBurstHonorsMax(t *testing.T) {
	q := NewRequestQueue()
	for i := 0; i < 20; i++ {
		q.Push(uint64(i), 0, 0)
	}
	b := q.PopBurst(8)
	if len(b) != 8 || b[0].Addr != 0 || b[7].Addr != 7 {
		t.Errorf("first burst = %d entries starting %d", len(b), b[0].Addr)
	}
	b = q.PopBurst(8)
	if len(b) != 8 || b[0].Addr != 8 {
		t.Errorf("second burst starts at %d, want 8 (FIFO)", b[0].Addr)
	}
	if q.MaxDepth() != 20 {
		t.Errorf("max depth %d, want 20", q.MaxDepth())
	}
}

func TestPopBurstEmpty(t *testing.T) {
	q := NewRequestQueue()
	if b := q.PopBurst(8); b != nil {
		t.Errorf("empty pop = %v, want nil", b)
	}
}

func TestDoorbellFlagProtocol(t *testing.T) {
	q := NewRequestQueue()
	// The very first request always needs a doorbell.
	if !q.DoorbellRequested() {
		t.Fatal("new queue must request a doorbell")
	}
	q.ClearDoorbellRequested()
	if q.DoorbellRequested() {
		t.Error("flag still set after clear")
	}
	q.SetDoorbellRequested()
	if !q.DoorbellRequested() {
		t.Error("flag not set after device set it")
	}
}

func TestCompletionQueue(t *testing.T) {
	q := NewCompletionQueue()
	if got := q.Drain(); got != nil {
		t.Errorf("empty drain = %v", got)
	}
	q.Post(7, 10*sim.Nanosecond)
	q.Post(8, 11*sim.Nanosecond)
	if q.Len() != 2 || q.Posted() != 2 || q.MaxDepth() != 2 {
		t.Errorf("len=%d posted=%d max=%d", q.Len(), q.Posted(), q.MaxDepth())
	}
	got := q.Drain()
	if len(got) != 2 || got[0].ID != 7 || got[1].ID != 8 || got[0].Posted != 10*sim.Nanosecond {
		t.Errorf("drained = %+v", got)
	}
	if q.Len() != 0 {
		t.Errorf("len after drain = %d", q.Len())
	}
}

// Property: any sequence of pushes followed by burst pops preserves FIFO
// order and loses nothing.
func TestRequestQueueFIFOProperty(t *testing.T) {
	f := func(pushes []uint8, burst uint8) bool {
		if burst == 0 {
			burst = 1
		}
		q := NewRequestQueue()
		for i := range pushes {
			q.Push(uint64(i), 0, 0)
		}
		var got []uint64
		for q.Len() > 0 {
			for _, d := range q.PopBurst(int(burst)) {
				got = append(got, d.Addr)
			}
		}
		if len(got) != len(pushes) {
			return false
		}
		for i := range got {
			if got[i] != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
