package experiments

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
)

func TestAblationRuleDerivesCoefficient(t *testing.T) {
	s := quickSuite()
	tb := s.AblationRule()
	perUs := tb.FindSeries("entries per microsecond")
	if perUs == nil || len(perUs.Y) != 4 {
		t.Fatalf("rule series malformed: %+v", tb.Series)
	}
	for i, y := range perUs.Y {
		// The paper's coefficient: 10-20 in-flight accesses per
		// microsecond of device latency (§V-B).
		if y < 8 || y > 22 {
			t.Errorf("at %.0fus: %.1f entries/us, outside the paper's 10-20 band", perUs.X[i], y)
		}
	}
	// Required entries grow linearly with latency.
	entries := tb.FindSeries("required entries")
	if entries.YAt(8) < 1.8*entries.YAt(4) || entries.YAt(8) > 2.2*entries.YAt(4) {
		t.Errorf("entries not ~linear in latency: %v", entries.Y)
	}
}

func TestDevicePresetsValidate(t *testing.T) {
	for _, cfg := range []platform.Config{
		platform.FlashDevice(), platform.RDMADevice(), platform.XPointDevice(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
	if platform.FlashDevice().DeviceLatency != 25*sim.Microsecond {
		t.Error("flash latency wrong")
	}
	// XPoint sits below the PCIe round trip, so its preset must be
	// memory-attached.
	xp := platform.XPointDevice()
	if xp.DeviceLatency >= 2*platform.Default().PCIePropagation {
		t.Skip("xpoint latency no longer below PCIe RTT")
	}
	if 2*xp.PCIePropagation > xp.DeviceLatency {
		t.Errorf("xpoint preset cannot carry its own latency: RTT %v > %v",
			2*xp.PCIePropagation, xp.DeviceLatency)
	}
}

func TestExpDevicesShape(t *testing.T) {
	s := quickSuite()
	s.Iterations = 400
	s.Threads = []int{1, 4, 8}
	tb := s.ExpDevices()
	xp := tb.FindSeries("xpoint-350ns")
	rdma := tb.FindSeries("rdma-3us")
	flash := tb.FindSeries("flash-25us")

	// Concurrency demand orders with latency: at 8 threads XPoint is
	// near parity, RDMA partial, flash barely started.
	if xp.YAt(8) < 0.9 {
		t.Errorf("xpoint at 8 threads = %.3f, want near parity", xp.YAt(8))
	}
	if !(xp.YAt(8) > rdma.YAt(8) && rdma.YAt(8) > flash.YAt(8)) {
		t.Errorf("device ordering violated: %.3f %.3f %.3f", xp.YAt(8), rdma.YAt(8), flash.YAt(8))
	}
	// Every class eventually reaches parity with rule-sized queues.
	for _, series := range tb.Series {
		_, peak := series.Peak()
		if peak < 0.9 {
			t.Errorf("%s peak %.3f, want parity with rule-sized queues", series.Label, peak)
		}
	}
}
