package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/resultstore"
	"repro/internal/runpool"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file is the sweep-execution layer: every figure cell — one
// deterministic core.Run* invocation — is described by a value-typed
// CellSpec, executed through an Exec (worker pool + content-addressed
// result cache), and collected through a Future in the figure's own
// program order. Because cells are pure functions of their spec, the
// same seed and flags produce byte-identical tables, CSVs, and JSON
// reports at any worker count, and duplicated cells (the DRAM
// baselines every normalized figure shares) are computed once per
// process.

// WorkloadSpec is a value description of a benchmark workload. Specs
// stand in for live workload objects inside cell parameterizations:
// they are hashable (for the result cache) and each execution builds a
// fresh instance with Build, so concurrently running cells never share
// a workload's mutable observation state (BFS trees, Bloom hit
// counters, ...).
type WorkloadSpec struct {
	// Kind selects the constructor: "ubench", "bloom", "memcached",
	// "bfs", or "ptrchase".
	Kind string

	// Iters is the per-core loop count: microbenchmark iterations, or
	// pointer-chase hops.
	Iters int
	// Work is the work-instruction count per iteration/lookup/batch.
	Work int
	// Reads and Writes are the microbenchmark's per-iteration device
	// accesses (the MLP and write-mix knobs).
	Reads, Writes int

	// Lookups is the per-core lookup count of the application kinds.
	Lookups int

	// Bloom filter geometry.
	BloomBits   uint64
	BloomHashes int
	BloomKeys   int

	// Memcached geometry.
	MCItems, MCValueLines int

	// BFS input graph (Kronecker parameters) and traversal set.
	BFSScale, BFSEdgeFactor int
	BFSSeed                 int64
	BFSSources              []int
	BFSMaxVisits            int

	// Pointer-chase chain length.
	ChaseNodes int
}

// Name returns the workload's display name without constructing it;
// it must match what Build().Name() returns (pinned by a test).
func (w WorkloadSpec) Name() string {
	switch w.Kind {
	case "ubench":
		if w.Writes > 0 {
			return fmt.Sprintf("ubench-w%d-r%d-wr%d", w.Work, w.Reads, w.Writes)
		}
		return fmt.Sprintf("ubench-w%d-r%d", w.Work, w.Reads)
	case "bloom":
		return fmt.Sprintf("bloom-k%d", w.BloomHashes)
	case "memcached":
		return fmt.Sprintf("memcached-v%d", w.MCValueLines)
	case "bfs":
		return fmt.Sprintf("bfs-s%d", len(w.BFSSources))
	case "ptrchase":
		return fmt.Sprintf("ptrchase-n%d", w.ChaseNodes)
	}
	return "unknown-" + w.Kind
}

// graphCache memoizes Kronecker graphs by their generator parameters:
// graphs are immutable after construction and expensive to generate,
// so concurrent BFS cells share one instance per parameterization.
var graphCache struct {
	sync.Mutex
	m map[[3]int64]*workload.Graph
}

func graphFor(scale, edgefactor int, seed int64) *workload.Graph {
	key := [3]int64{int64(scale), int64(edgefactor), seed}
	graphCache.Lock()
	defer graphCache.Unlock()
	if g, ok := graphCache.m[key]; ok {
		return g
	}
	if graphCache.m == nil {
		graphCache.m = make(map[[3]int64]*workload.Graph)
	}
	g := workload.NewKronecker(scale, edgefactor, seed)
	graphCache.m[key] = g
	return g
}

// Build constructs a fresh workload instance. Construction is
// deterministic, so two builds of one spec are interchangeable.
func (w WorkloadSpec) Build() core.Workload {
	switch w.Kind {
	case "ubench":
		if w.Writes > 0 {
			return workload.NewMicrobenchRW(w.Iters, w.Work, w.Reads, w.Writes)
		}
		return workload.NewMicrobench(w.Iters, w.Work, w.Reads)
	case "bloom":
		return workload.NewBloom(w.BloomBits, w.BloomHashes, w.BloomKeys, w.Lookups, w.Work)
	case "memcached":
		return workload.NewMemcached(w.MCItems, w.MCValueLines, w.Lookups, w.Work)
	case "bfs":
		g := graphFor(w.BFSScale, w.BFSEdgeFactor, w.BFSSeed)
		return workload.NewBFS(g, append([]int(nil), w.BFSSources...), w.BFSMaxVisits, w.Work)
	case "ptrchase":
		return workload.NewPointerChase(w.ChaseNodes, w.Iters, w.Work)
	}
	panic(fmt.Sprintf("experiments: unknown workload kind %q", w.Kind))
}

// CellSpec fully parameterizes one simulation cell. Equal specs
// produce equal results — the invariant behind both the result cache
// and determinism under parallel execution.
type CellSpec struct {
	// Mech is the access mechanism: "dram" (the on-demand DRAM
	// baseline), "ondemand", "prefetch", "swqueue", "kernelq", or
	// "smt".
	Mech     string
	Config   platform.Config
	Workload WorkloadSpec
	// Threads is threads-per-core for the threaded mechanisms.
	Threads int
	// Replay selects the paper's two-run record/replay methodology.
	Replay bool
	// Cluster parameterizes fleet cells (Mech "cluster"); its zero
	// value is inert for every other mechanism.
	Cluster ClusterSpec
}

// Key returns the cell's canonical content address. The trace recorder
// and the metrics sink are excluded: both are observability and never
// alter a measurement (and traced sweeps bypass the cache entirely).
// MetricsWindow/MetricsMaxWindows stay in the key — they change what a
// cached Result carries (its flight-recorder series), so metric-enabled
// cells must never collide with plain ones.
func (c CellSpec) Key() string {
	cfg := c.Config
	cfg.Trace = nil
	cfg.MetricsSink = nil
	// Cluster.Shards is likewise an execution knob: the sharded fleet
	// driver is byte-deterministic at any shard count, so a cached
	// serial fleet result is the sharded result.
	cl := c.Cluster
	cl.Shards = 0
	return resultstore.Key(
		"cell-v2",
		c.Mech,
		strconv.Itoa(c.Threads),
		strconv.FormatBool(c.Replay),
		fmt.Sprintf("%#v", cfg),
		fmt.Sprintf("%#v", c.Workload),
		fmt.Sprintf("%#v", cl),
	)
}

// Run executes the cell: build the workload, dispatch on mechanism.
func (c CellSpec) Run() (core.Result, error) {
	if c.Mech == "cluster" {
		return runCluster(c)
	}
	wl := c.Workload.Build()
	switch c.Mech {
	case "dram":
		return core.RunDRAMBaseline(c.Config, wl)
	case "ondemand":
		return core.RunOnDemandDevice(c.Config, wl)
	case "prefetch":
		return core.RunPrefetch(c.Config, wl, c.Threads, c.Replay)
	case "swqueue":
		return core.RunSWQueue(c.Config, wl, c.Threads, c.Replay)
	case "kernelq":
		return core.RunKernelQueue(c.Config, wl, c.Threads, c.Replay)
	case "smt":
		return core.RunSMT(c.Config, wl)
	}
	return core.Result{}, fmt.Errorf("experiments: unknown mechanism %q", c.Mech)
}

// Spec constructors used by the figures.

func dramCell(cfg platform.Config, wl WorkloadSpec) CellSpec {
	return CellSpec{Mech: "dram", Config: cfg, Workload: wl}
}

func onDemandCell(cfg platform.Config, wl WorkloadSpec) CellSpec {
	return CellSpec{Mech: "ondemand", Config: cfg, Workload: wl}
}

func prefetchCell(cfg platform.Config, wl WorkloadSpec, threads int, replay bool) CellSpec {
	return CellSpec{Mech: "prefetch", Config: cfg, Workload: wl, Threads: threads, Replay: replay}
}

func swqueueCell(cfg platform.Config, wl WorkloadSpec, threads int, replay bool) CellSpec {
	return CellSpec{Mech: "swqueue", Config: cfg, Workload: wl, Threads: threads, Replay: replay}
}

// buildStamp distinguishes on-disk cache entries across builds: a new
// commit (or a locally modified tree) must never serve another
// build's results. Memory-layer entries die with the process anyway.
var buildStamp = sync.OnceValue(func() string {
	stamp := runtime.Version()
	if info, ok := debug.ReadBuildInfo(); ok {
		stamp += "|" + info.Main.Version
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision", "vcs.time", "vcs.modified":
				stamp += "|" + s.Key + "=" + s.Value
			}
		}
	}
	return stamp
})

// BuildStamp identifies this binary's build for cache stamping: the Go
// toolchain version plus the module's VCS revision/time/dirty bit. It
// is the stamp under which this process reads and writes disk-cache
// entries, and the value `kurec cache gc -keep-build current` keeps.
func BuildStamp() string { return buildStamp() }

// defaultCacheEntries bounds the in-memory result cache. A full -all
// -ext sweep is a few thousand cells; results are small (a label and
// a few dozen scalars), so the default keeps every cell of one
// invocation resident.
const defaultCacheEntries = 16384

// Exec coordinates cell execution for one sweep invocation: a worker
// pool sized by the -parallel flag plus a process-wide result cache.
// A nil *Exec is valid and means direct serial execution with no
// caching — the pre-subsystem behavior, still used by library callers
// that invoke Fig* methods directly.
type Exec struct {
	pool  *runpool.Pool
	store *resultstore.Store[core.Result]

	mu      sync.Mutex
	futures map[string]*Future
	dedup   uint64
}

// ExecStats counts this executor's submissions: Cells is the number
// of distinct cells enqueued, Dedup the submissions answered by an
// already-pending (or completed) identical cell. The store's own
// Stats cover the layer below (memory/disk hits across executors).
type ExecStats struct {
	Cells int
	Dedup uint64
}

// Stats returns a snapshot of the executor's submission counters.
func (e *Exec) Stats() ExecStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return ExecStats{Cells: len(e.futures), Dedup: e.dedup}
}

// NewExec returns an executor with the given worker count (minimum 1)
// and a fresh in-memory result cache.
func NewExec(parallel int) *Exec {
	return NewExecWith(parallel, resultstore.New[core.Result](defaultCacheEntries))
}

// NewExecWith returns an executor over a caller-provided store —
// kurecd shares one store across jobs so identical RunPlans are
// answered from cache.
func NewExecWith(parallel int, store *resultstore.Store[core.Result]) *Exec {
	return NewExecCtx(context.Background(), parallel, store)
}

// NewExecCtx is NewExecWith under a cancellation context: once ctx is
// done, cells that have not started fail fast with ctx.Err() instead
// of running, so a sweep unwinds within one cell boundary. Cells
// already executing finish (results stay cacheable; simulations are
// not interruptible mid-cell).
func NewExecCtx(ctx context.Context, parallel int, store *resultstore.Store[core.Result]) *Exec {
	if parallel < 1 {
		parallel = 1
	}
	return &Exec{
		pool:    runpool.New(ctx, parallel, 2*parallel),
		store:   store,
		futures: make(map[string]*Future),
	}
}

// NewExecDisk is NewExec with an on-disk cache layer under dir, so
// repeated invocations of the same build skip completed cells. Entries
// land in a per-build-stamp subdirectory (see resultstore.OpenStamped)
// so `kurec cache gc` can evict stale builds wholesale.
func NewExecDisk(parallel int, dir string) (*Exec, error) {
	store, err := resultstore.OpenStamped[core.Result](dir, buildStamp(), defaultCacheEntries)
	if err != nil {
		return nil, err
	}
	return NewExecWith(parallel, store), nil
}

// Close drains the worker pool. The result store (possibly shared)
// stays usable.
func (e *Exec) Close() { e.pool.Close() }

// CacheStats exposes the result-cache counters for metrics endpoints.
func (e *Exec) CacheStats() resultstore.Stats { return e.store.Stats() }

// cell submits a spec for execution, deduplicating against every cell
// this Exec has already seen: resubmitting an identical spec returns
// the original Future without enqueueing new work.
func (e *Exec) cell(c CellSpec) *Future {
	key := c.Key()
	e.mu.Lock()
	if f, ok := e.futures[key]; ok {
		e.dedup++
		e.mu.Unlock()
		return f
	}
	f := &Future{}
	e.futures[key] = f
	e.mu.Unlock()
	f.task = runpool.Submit(e.pool, func() (core.Result, error) {
		return e.store.Do(resultstore.Key(buildStamp(), key), c.Run)
	})
	return f
}

// Future is the pending result of one cell. Result memoizes, so it
// must be called from one goroutine at a time (the assembly loop).
type Future struct {
	task *runpool.Task[core.Result]
	res  core.Result
	err  error
}

// Result blocks until the cell has run and returns its result.
func (f *Future) Result() (core.Result, error) {
	if f.task != nil {
		f.res, f.err = f.task.Wait()
		f.task = nil
	}
	return f.res, f.err
}

// exec routes one cell through the suite's executor. Without an
// executor — or when tracing is enabled, because a trace must contain
// every run in invocation order and cached cells would vanish from it
// — the cell runs inline, preserving the exact legacy serial
// behavior.
func (s Suite) exec(c CellSpec) *Future {
	if s.Exec == nil || s.Base.Trace != nil {
		r, err := c.Run()
		return &Future{res: r, err: err}
	}
	return s.Exec.cell(c)
}

// runCell executes one cell synchronously (through the cache when an
// executor is attached) — for adaptive experiments whose next cell
// depends on the previous result.
func (s Suite) runCell(c CellSpec) core.Result {
	return must(s.exec(c).Result())
}

// pendingCell is one datapoint awaiting assembly: the measured run,
// the baseline it is normalized to, and where the value lands. The
// figures submit every cell up front, then resolve the pending slice
// in program order — results land in the same sequence the serial
// code produced, whatever order the workers finished in.
type pendingCell struct {
	series *stats.Series
	x      float64
	run    *Future
	base   *Future
	// diag attaches per-run diagnostics to the datapoint (figures);
	// ablations use the plain value-only form.
	diag bool
	// post, when set, observes the resolved run in assembly order —
	// figures that aggregate across cells (peak chip occupancy, bus
	// traffic at a pinned core count) hook it to keep their notes
	// deterministic.
	post func(r core.Result)
}

// resolve drains pending datapoints in submission order. A cell error
// panics via must, matching the serial harness's failure behavior.
// Flight-recorder series attach here regardless of the diag flag, so
// every resolved datapoint of a -metrics sweep carries its window
// series into the report.
func resolve(cells []pendingCell) {
	for _, c := range cells {
		r := must(c.run.Result())
		b := must(c.base.Result())
		if c.diag {
			addRun(c.series, c.x, r, b)
		} else {
			c.series.Add(c.x, r.NormalizedTo(b.Measurement))
		}
		c.series.AttachMetrics(r.Series)
		c.series.AttachAttrib(r.Attrib)
		if c.post != nil {
			c.post(r)
		}
	}
}
