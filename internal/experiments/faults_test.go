package experiments

import (
	"testing"
)

func TestExpFaultsFamily(t *testing.T) {
	s := Quick()
	s.Iterations = 120
	tables := s.ExpFaults()
	if len(tables) != 4 {
		t.Fatalf("ExpFaults returned %d tables, want 4", len(tables))
	}
	tp := tables[0]
	for _, series := range tp.Series {
		if len(series.X) != len(faultRates) {
			t.Errorf("%s: %d points, want %d", series.Label, len(series.X), len(faultRates))
			continue
		}
		// The rate-0 control is the same bits as the fault-free run, so
		// the retained fraction is exactly 1.0, not approximately.
		if y := series.YAt(0); y != 1.0 {
			t.Errorf("%s: throughput retained at rate 0 = %v, want exactly 1.0", series.Label, y)
		}
		// At the top rate, recovery costs something.
		if y := series.YAt(faultRates[len(faultRates)-1]); y >= 1.0 {
			t.Errorf("%s: throughput retained at top rate = %v, want < 1.0", series.Label, y)
		}
	}
	// Retry/timeout accounting must be visible in the table notes.
	found := false
	for _, n := range tp.Notes {
		if len(n) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("throughput table carries no notes")
	}
}
