package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

// The experiment tests use the Quick sweep: they assert the paper's
// qualitative shapes (who wins, where curves knee), not absolute values.

func quickSuite() Suite {
	s := Quick()
	s.Iterations = 600
	s.AppLookups = 120
	s.Threads = []int{1, 2, 4, 8, 10, 16}
	return s
}

func TestFig2Shape(t *testing.T) {
	tb := quickSuite().Fig2()
	if len(tb.Series) != 3 {
		t.Fatalf("series = %d, want 3 latencies", len(tb.Series))
	}
	for _, s := range tb.Series {
		// Monotone improvement with work count, abysmal at 200.
		if s.YAt(200) > 0.15 {
			t.Errorf("%s at work=200: %.3f, want abysmal", s.Label, s.YAt(200))
		}
		if s.YAt(5000) <= s.YAt(200) {
			t.Errorf("%s: no abatement with work", s.Label)
		}
	}
	// Lower latency is strictly better at every work count.
	s1, s4 := tb.FindSeries("1us"), tb.FindSeries("4us")
	for i := range s1.X {
		if s1.Y[i] <= s4.Y[i] {
			t.Errorf("1us not above 4us at work=%.0f", s1.X[i])
		}
	}
}

func TestFig3Shape(t *testing.T) {
	tb := quickSuite().Fig3()
	s1 := tb.FindSeries("1us")
	// Rises with threads to near-DRAM at 10, flat afterward (LFB cap).
	if s1.YAt(10) < 0.7 {
		t.Errorf("1us at 10 threads = %.3f, want near DRAM", s1.YAt(10))
	}
	// Past 10 threads the LFB pool caps in-flight accesses at 10; the
	// curve may still creep a few percent toward the 10-in-flight floor.
	if s1.YAt(16) > s1.YAt(10)*1.10 {
		t.Errorf("1us grew past the 10-LFB cap: %.3f -> %.3f", s1.YAt(10), s1.YAt(16))
	}
	// Shallower slope for slower devices (§V-B).
	s4 := tb.FindSeries("4us")
	if s4.YAt(10) >= s1.YAt(10) {
		t.Error("4us should sit below 1us at 10 threads")
	}
}

func TestFig4Shape(t *testing.T) {
	tb := quickSuite().Fig4()
	// More work per access: fewer threads needed to reach a given
	// fraction of the peak.
	w100 := tb.FindSeries("work=100")
	w1000 := tb.FindSeries("work=1000")
	if w1000.SaturationX(0.9) >= w100.SaturationX(0.9) {
		t.Errorf("work=1000 saturates at %.0f threads, work=100 at %.0f; want fewer with more work",
			w1000.SaturationX(0.9), w100.SaturationX(0.9))
	}
}

func TestFig5Shape(t *testing.T) {
	tb := quickSuite().Fig5()
	// At 4us, more cores help (aggregate LFBs) but the 14-entry chip
	// queue caps the total: 8 cores is no better than ~14 in-flight.
	c1 := tb.FindSeries("4us 1c")
	c8 := tb.FindSeries("4us 8c")
	if c8.YAt(10) <= c1.YAt(10) {
		t.Error("multicore did not aggregate at 4us")
	}
	// Little's-law bound from the 14-entry queue: 14/4us accesses/s,
	// each carrying DefaultWorkCount work, over the 1-core baseline.
	_, peak := c8.Peak()
	c4 := tb.FindSeries("4us 4c")
	_, peak4 := c4.Peak()
	if peak > 1.3*peak4 {
		t.Errorf("8c peak %.3f should be capped near 4c peak %.3f by the chip queue", peak, peak4)
	}
}

func TestFig6Shape(t *testing.T) {
	tb := quickSuite().Fig6()
	r1 := tb.FindSeries("1-read")
	r4 := tb.FindSeries("4-read")
	// The 4-read variant saturates by ~3 threads: 4 and 16 threads are
	// no better than ~3 (allowing the partial 3rd-batch effect).
	if r4.YAt(16) > r4.YAt(4)*1.08 {
		t.Errorf("4-read grew from 4 to 16 threads: %.3f -> %.3f", r4.YAt(4), r4.YAt(16))
	}
	// The 1-read variant keeps gaining until 10.
	if r1.YAt(10) <= r1.YAt(4)*1.1 {
		t.Errorf("1-read saturated too early: %.3f at 4, %.3f at 10", r1.YAt(4), r1.YAt(10))
	}
}

func TestFig7Shape(t *testing.T) {
	tb := quickSuite().Fig7()
	pf4 := tb.FindSeries("prefetch 4us")
	sq4 := tb.FindSeries("swqueue 4us")
	// Past the LFB limit, SWQ keeps gaining while prefetch is flat.
	if sq4.YAt(32) <= sq4.YAt(10)*1.2 {
		t.Error("swqueue 4us did not scale past 10 threads")
	}
	if pf4.YAt(32) > pf4.YAt(10)*1.05 {
		t.Error("prefetch 4us scaled past the LFB limit")
	}
	// SWQ peak lands near 50% of DRAM.
	_, sqPeak := tb.FindSeries("swqueue 1us").Peak()
	if sqPeak < 0.38 || sqPeak > 0.6 {
		t.Errorf("swqueue 1us peak %.3f, want ~0.5", sqPeak)
	}
	// Prefetch 1us peak beats SWQ 1us peak (§V-C).
	_, pfPeak := tb.FindSeries("prefetch 1us").Peak()
	if pfPeak <= sqPeak {
		t.Errorf("prefetch peak %.3f should exceed swq peak %.3f", pfPeak, sqPeak)
	}
}

func TestFig8Shape(t *testing.T) {
	tb := quickSuite().Fig8()
	// Near-linear scaling 1 -> 4 cores at 1us.
	_, p1 := tb.FindSeries("1us 1c").Peak()
	_, p4 := tb.FindSeries("1us 4c").Peak()
	_, p8 := tb.FindSeries("1us 8c").Peak()
	if p4 < 3.0*p1 {
		t.Errorf("4-core scaling %.2fx of 1-core, want >3x", p4/p1)
	}
	// The PCIe wall: 8 cores gain much less than 2x over 4.
	if p8 > 1.75*p4 {
		t.Errorf("8-core peak %.3f vs 4-core %.3f: no bandwidth wall", p8, p4)
	}
	// The bandwidth note reports ~50% useful efficiency.
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "useful upstream bandwidth") {
			found = true
		}
	}
	if !found {
		t.Error("missing bandwidth note")
	}
}

func TestFig9Shape(t *testing.T) {
	tb := quickSuite().Fig9()
	// Single-core peaks order: 1-read > 2-read > 4-read (§V-C).
	var peaks [3]float64
	for i, label := range []string{"1c 1-read", "1c 2-read", "1c 4-read"} {
		_, peaks[i] = tb.FindSeries(label).Peak()
	}
	if !(peaks[0] > peaks[1] && peaks[1] > peaks[2]) {
		t.Errorf("single-core MLP peaks %.3v not decreasing", peaks)
	}
	if peaks[0] < 0.4 || peaks[0] > 0.6 {
		t.Errorf("1-read peak %.3f, want ~0.5", peaks[0])
	}
	if peaks[2] < 0.25 || peaks[2] > 0.45 {
		t.Errorf("4-read peak %.3f, want ~0.35", peaks[2])
	}
	// 4-core 4-read saturates below 16 threads (§V-C).
	c4r4 := tb.FindSeries("4c 4-read")
	if c4r4.YAt(16) > c4r4.YAt(8)*1.15 {
		t.Errorf("4c 4-read still scaling at 16 threads: %.3f -> %.3f", c4r4.YAt(8), c4r4.YAt(16))
	}
}

func TestFig10Shape(t *testing.T) {
	s := quickSuite()
	s.Threads = []int{1, 2, 4, 8}
	tables := s.Fig10()
	if len(tables) != 4 {
		t.Fatalf("fig10 tables = %d, want 4", len(tables))
	}
	oneCorePF, oneCoreSWQ := tables[0], tables[1]
	eightPF, eightSWQ := tables[2], tables[3]

	// Apps track the microbenchmark trends; every app has data.
	for _, tb := range tables {
		if len(tb.Series) != 4 {
			t.Fatalf("%s has %d series, want 3 apps + ubench", tb.ID, len(tb.Series))
		}
		for _, series := range tb.Series {
			if len(series.Y) == 0 || math.IsNaN(series.Y[0]) {
				t.Fatalf("%s/%s empty", tb.ID, series.Label)
			}
		}
	}

	for _, series := range oneCorePF.Series {
		_, peak := series.Peak()
		// Paper band: 35-65% single-core prefetch (we allow some slack
		// on the quick sweep).
		if peak < 0.3 || peak > 0.85 {
			t.Errorf("1-core prefetch %s peak %.3f outside plausible band", series.Label, peak)
		}
		// SWQ trails prefetch on one core at its peak.
		_, sqPeak := oneCoreSWQ.FindSeries(series.Label).Peak()
		if sqPeak > peak*1.1 {
			t.Errorf("%s: 1-core SWQ peak %.3f above prefetch %.3f", series.Label, sqPeak, peak)
		}
	}

	// Eight-core SWQ exceeds the single-core DRAM baseline (paper:
	// 1.2x-2.0x); eight-core prefetch stays chip-queue-bound well below
	// its SWQ counterpart's peak.
	for _, series := range eightSWQ.Series {
		_, peak := series.Peak()
		if peak < 1.0 {
			t.Errorf("8-core SWQ %s peak %.3f, want >1x of single-core DRAM", series.Label, peak)
		}
	}
	for _, series := range eightPF.Series {
		_, pfPeak := series.Peak()
		_, sqPeak := eightSWQ.FindSeries(series.Label).Peak()
		if pfPeak > sqPeak {
			t.Errorf("8-core %s: prefetch %.3f above SWQ %.3f despite chip queue", series.Label, pfPeak, sqPeak)
		}
	}
}

func TestSteadyStateIndependentOfRunLength(t *testing.T) {
	// Normalized results are steady-state properties: doubling the run
	// length must not move them more than ~2%. Guards against warm-up
	// or drain effects leaking into measurements.
	s1, s2 := quickSuite(), quickSuite()
	s1.Iterations, s2.Iterations = 1500, 3000
	s1.Threads, s2.Threads = []int{10}, []int{10}
	a := s1.Fig3().FindSeries("1us").YAt(10)
	b := s2.Fig3().FindSeries("1us").YAt(10)
	if diff := (a - b) / b; diff > 0.02 || diff < -0.02 {
		t.Errorf("fig3@10t moved %.1f%% when run length doubled (%.4f vs %.4f)", diff*100, a, b)
	}
}

func TestAblationLFB(t *testing.T) {
	s := quickSuite()
	tb := s.AblationLFB()
	series := tb.Series[0]
	// Performance rises with LFB count and approaches DRAM parity at
	// the paper's 20x4=80-entry rule.
	if series.YAt(10) > 0.4 {
		t.Errorf("at 10 LFBs normalized %.3f, want low", series.YAt(10))
	}
	if series.YAt(80) < 0.8 {
		t.Errorf("at 80 LFBs normalized %.3f, want near DRAM parity (the 20x rule)", series.YAt(80))
	}
}

func TestAblationChipQueue(t *testing.T) {
	tb := quickSuite().AblationChipQueue()
	stock := tb.FindSeries("1us 8c (PCIe Gen2 x8)")
	fat := tb.FindSeries("1us 8c (4x link bandwidth)")
	// Lifting the queue helps substantially even on the stock link...
	if stock.YAt(160) < 2.5*stock.YAt(14) {
		t.Errorf("stock link: 14->160 gained only %.1fx", stock.YAt(160)/stock.YAt(14))
	}
	// ...but full 8-core scaling additionally needs a fatter link — the
	// paper's memory-interconnect suggestion.
	if fat.YAt(160) < 5*fat.YAt(14) {
		t.Errorf("fat link: 14->160 gained only %.1fx, want scaling restored", fat.YAt(160)/fat.YAt(14))
	}
	if fat.YAt(160) < 1.3*stock.YAt(160) {
		t.Errorf("fat link (%.2f) should clearly beat the PCIe-bound stock link (%.2f) at 160 entries",
			fat.YAt(160), stock.YAt(160))
	}
}

func TestAblationSwitchCost(t *testing.T) {
	tb := quickSuite().AblationSwitchCost()
	series := tb.Series[0]
	fast, slow := series.YAt(30), series.YAt(2000)
	if slow > fast/2 {
		t.Errorf("2us switch (%.3f) should forfeit most of the 30ns benefit (%.3f)", slow, fast)
	}
}

func TestAblationSWQOpts(t *testing.T) {
	tb := quickSuite().AblationSWQOpts()
	series := tb.Series[0]
	full := series.YAt(1)
	for i := 2; i <= 4; i++ {
		if series.YAt(float64(i)) > full*1.02 {
			t.Errorf("variant %d (%.3f) not inferior to the full design (%.3f) (§III-A)",
				i, series.YAt(float64(i)), full)
		}
	}
	// Removing both optimizations must be strictly worse.
	if series.YAt(4) >= full*0.98 {
		t.Errorf("flagless+burstless variant %.3f not strictly inferior to %.3f", series.YAt(4), full)
	}
}

func TestTableI(t *testing.T) {
	txt := TableI()
	for _, want := range []string{"Caching", "Bulk transfer", "Overlapping", "user-mode context switch"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestLatencyLabel(t *testing.T) {
	if latLabel(2*sim.Microsecond) != "2us" {
		t.Errorf("latLabel = %q", latLabel(2*sim.Microsecond))
	}
}
