package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workload"
)

// faultRates is the injected-fault-rate sweep of the ExpFaults family.
// Rate 0 is the control: a disabled plan takes the exact fault-free
// code path, so its datapoints are bit-identical to a clean run.
var faultRates = []float64{0, 0.002, 0.01, 0.05}

// faultSeed fixes the draw stream so the family is reproducible.
const faultSeed = 42

// faultMech is one access mechanism under test.
type faultMech struct {
	name string
	run  func(cfg platform.Config, wl core.Workload) core.Result
}

func faultMechs() []faultMech {
	return []faultMech{
		{"ondemand", func(cfg platform.Config, wl core.Workload) core.Result {
			return must(core.RunOnDemandDevice(cfg, wl))
		}},
		{"prefetch", func(cfg platform.Config, wl core.Workload) core.Result {
			return must(core.RunPrefetch(cfg, wl, 10, false))
		}},
		{"swqueue", func(cfg platform.Config, wl core.Workload) core.Result {
			return must(core.RunSWQueue(cfg, wl, 10, false))
		}},
		{"kernelq", func(cfg platform.Config, wl core.Workload) core.Result {
			return must(core.RunKernelQueue(cfg, wl, 4, false))
		}},
	}
}

// ExpFaults measures graceful degradation of every access mechanism
// under deterministic fault injection: a rate sweep applies the same
// probability to the dominant fault layers (dropped completions, device
// stragglers, corrupted TLPs) and records, per mechanism, the
// throughput retained relative to its own fault-free run, the
// p99/p999 host-observed access latency, and the retry amplification —
// plus a per-layer breakdown at a fixed 1% rate. All tables come from
// one run matrix, so they describe the same runs.
func (s Suite) ExpFaults() []*stats.Table {
	wl := s.ubench(1, workload.DefaultWorkCount)

	throughput := &stats.Table{
		ID:     "exp-faults-throughput",
		Title:  "Throughput retained under injected faults",
		XLabel: "fault rate (drop/straggler/TLP-corrupt)",
		YLabel: "fraction of fault-free work IPS",
	}
	tail := &stats.Table{
		ID:     "exp-faults-tail",
		Title:  "Access-latency tail under injected faults",
		XLabel: "fault rate (drop/straggler/TLP-corrupt)",
		YLabel: "host-observed access latency, ns",
	}
	retries := &stats.Table{
		ID:     "exp-faults-retries",
		Title:  "Retry amplification under injected faults",
		XLabel: "fault rate (drop/straggler/TLP-corrupt)",
		YLabel: "retries per access",
	}

	for _, m := range faultMechs() {
		tp := throughput.AddSeries(m.name)
		p99 := tail.AddSeries(m.name + " p99")
		p999 := tail.AddSeries(m.name + " p999")
		amp := retries.AddSeries(m.name)
		var cleanIPS float64
		for _, rate := range faultRates {
			cfg := s.Base
			cfg.Faults = fault.Plan{
				Seed:               faultSeed,
				DropCompletionProb: rate,
				StragglerProb:      rate,
				TLPCorruptProb:     rate,
			}
			r := m.run(cfg, wl)
			if rate == 0 {
				cleanIPS = r.WorkIPS()
			}
			tp.Add(rate, r.WorkIPS()/cleanIPS)
			p99.Add(rate, r.Diag.AccessP99Ns)
			p999.Add(rate, r.Diag.AccessP999Ns)
			amp.Add(rate, float64(r.Diag.Retries)/float64(r.Accesses))
			if rate == 0.01 {
				throughput.Note("%s at 1%%: retries=%d timeouts=%d abandoned=%d (faults: %d dropped, %d stragglers, %d corrupt TLPs)",
					m.name, r.Diag.Retries, r.Diag.Timeouts, r.Diag.Abandoned,
					r.Diag.Faults.DroppedCompletions, r.Diag.Faults.Stragglers, r.Diag.Faults.CorruptTLPs)
			}
		}
	}
	throughput.Note("rate-0 points are bit-identical to fault-free runs (disabled plans take the exact clean code path)")

	return []*stats.Table{throughput, tail, retries, s.expFaultLayers(wl)}
}

// faultLayers enumerates the per-layer plans of the 1% breakdown. Each
// plan activates exactly one fault mechanism; the layers that only
// exist on the software-queue path (doorbell loss, CQ overflow) degrade
// nothing elsewhere, which the table makes visible.
var faultLayers = []struct {
	name string
	plan fault.Plan
}{
	{"drop-completion", fault.Plan{Seed: faultSeed, DropCompletionProb: 0.01}},
	{"straggler", fault.Plan{Seed: faultSeed, StragglerProb: 0.01}},
	{"duplicate", fault.Plan{Seed: faultSeed, DuplicateProb: 0.01}},
	{"TLP-corrupt", fault.Plan{Seed: faultSeed, TLPCorruptProb: 0.01}},
	{"link-stall", fault.Plan{Seed: faultSeed, LinkStallProb: 0.01}},
	{"doorbell-drop", fault.Plan{Seed: faultSeed, DoorbellDropProb: 0.01}},
	{"cq-overflow", fault.Plan{Seed: faultSeed, CQCapacity: 4}},
}

// expFaultLayers is the per-layer breakdown: one fault mechanism at a
// time, 1% rate (or a 4-entry CQ bound), throughput retained per
// access mechanism. X is the layer's index into the noted legend.
func (s Suite) expFaultLayers(wl core.Workload) *stats.Table {
	t := &stats.Table{
		ID:     "exp-faults-layers",
		Title:  "Per-layer fault impact at 1% rate",
		XLabel: "fault layer (see legend note)",
		YLabel: "fraction of fault-free work IPS",
	}
	legend := ""
	for i, l := range faultLayers {
		if i > 0 {
			legend += ", "
		}
		legend += fmt.Sprintf("%d=%s", i, l.name)
	}
	t.Note("layers: %s", legend)
	for _, m := range faultMechs() {
		series := t.AddSeries(m.name)
		clean := m.run(s.Base, wl).WorkIPS()
		for i, l := range faultLayers {
			cfg := s.Base
			cfg.Faults = l.plan
			series.Add(float64(i), m.run(cfg, wl).WorkIPS()/clean)
		}
	}
	return t
}
