package experiments

import "testing"

// BenchmarkQuickSweep is the end-to-end wall-clock benchmark of the
// sweep pipeline: the full paper plan on a reduced suite, executed
// serially and uncached so the engine hot path dominates. The
// benchgate CI job tracks its cells/sec alongside the internal/sim
// microbenchmarks — a regression here that the microbenchmarks missed
// means the slowdown is in the model layer, not the engine.
func BenchmarkQuickSweep(b *testing.B) {
	s := Quick()
	s.Iterations = 200
	s.AppLookups = 50
	s.Threads = []int{1, 4, 10}
	b.ReportAllocs()
	var cells int
	for i := 0; i < b.N; i++ {
		tables := RunPlan(s.PaperPlan(), nil)
		if len(tables) == 0 {
			b.Fatal("empty sweep")
		}
		cells = 0
		for _, t := range tables {
			for _, series := range t.Series {
				cells += len(series.X)
			}
		}
	}
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/sec")
}
