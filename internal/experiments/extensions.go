package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ExpKernelQueue quantifies the paper's analytic dismissal of
// kernel-managed software queues (§III-A: "these overheads dwarf the
// access latency"): all four interfaces on the same 1 us device and
// thread sweep.
func (s Suite) ExpKernelQueue() *stats.Table {
	t := &stats.Table{
		ID:     "ext-kernelq",
		Title:  "All four access interfaces at 1us (kernel queues quantified)",
		XLabel: "threads",
		YLabel: "normalized work IPC (vs single-thread DRAM)",
	}
	wl := s.ubench(1, workload.DefaultWorkCount)
	cfg := s.Base
	base := must(core.RunDRAMBaseline(cfg, wl))
	pf := t.AddSeries("prefetch")
	sq := t.AddSeries("swqueue")
	kq := t.AddSeries("kernelq")
	for _, n := range s.Threads {
		pf.Add(float64(n), must(core.RunPrefetch(cfg, wl, n, false)).NormalizedTo(base.Measurement))
		sq.Add(float64(n), must(core.RunSWQueue(cfg, wl, n, false)).NormalizedTo(base.Measurement))
		kq.Add(float64(n), must(core.RunKernelQueue(cfg, wl, n, false)).NormalizedTo(base.Measurement))
	}
	_, kqPeak := kq.Peak()
	t.Note("kernel-managed queues peak at %.3f: syscalls, 2us kernel switches and interrupts dwarf the 1us access (§III-A)", kqPeak)
	return t
}

// ExpSMT measures hardware multithreading as the only latency-hiding
// aid for on-demand accesses (§III-B): SMT widens the overlap by its
// context count, which is a small factor against a microsecond.
func (s Suite) ExpSMT() *stats.Table {
	t := &stats.Table{
		ID:     "ext-smt",
		Title:  "SMT on-demand access vs context count",
		XLabel: "hardware contexts",
		YLabel: "normalized work IPC (vs single-thread DRAM)",
	}
	wl := s.ubench(1, workload.DefaultWorkCount)
	for _, lat := range []sim.Time{1 * sim.Microsecond, 4 * sim.Microsecond} {
		cfg := s.Base.WithLatency(lat)
		base := must(core.RunDRAMBaseline(cfg, wl))
		series := t.AddSeries(latLabel(lat))
		for _, contexts := range []int{1, 2, 4, 8} {
			c := cfg
			c.SMTContexts = contexts
			series.Add(float64(contexts), must(core.RunSMT(c, wl)).NormalizedTo(base.Measurement))
		}
	}
	t.Note("commodity SMT (2 contexts) roughly doubles on-demand throughput — far short of the 10+ in-flight accesses a microsecond needs (§III-B)")
	return t
}

// ExpWrites exercises the write-path extension (§VII): posted writes on
// the prefetch path ride the store buffer nearly for free, while every
// software-queue write still pays the per-descriptor management cost.
func (s Suite) ExpWrites() *stats.Table {
	t := &stats.Table{
		ID:     "ext-writes",
		Title:  "Read/write mixes at 1us (writes are posted, §VII)",
		XLabel: "threads",
		YLabel: "normalized work IPC (vs single-thread DRAM)",
	}
	cfg := s.Base
	for _, writes := range []int{0, 1, 4} {
		wl := workload.NewMicrobenchRW(s.Iterations, workload.DefaultWorkCount, 1, writes)
		base := must(core.RunDRAMBaseline(cfg, wl))
		pf := t.AddSeries(fmt.Sprintf("prefetch +%dw", writes))
		sq := t.AddSeries(fmt.Sprintf("swqueue +%dw", writes))
		for _, n := range s.Threads {
			pf.Add(float64(n), must(core.RunPrefetch(cfg, wl, n, false)).NormalizedTo(base.Measurement))
			sq.Add(float64(n), must(core.RunSWQueue(cfg, wl, n, false)).NormalizedTo(base.Measurement))
		}
	}
	t.Note("prefetch-path writes cost ~1ns each (store buffer absorbs them); SWQ writes pay the descriptor overhead, compounding its 50%% cap")
	return t
}

// ExpMemBus runs the system the paper argues for (§V-B implications):
// the device on the memory interconnect (DDR-class link, >=48-entry
// shared queue) with rule-sized per-core queues — multicore prefetch
// then hides microsecond latencies at every latency point.
func (s Suite) ExpMemBus() *stats.Table {
	t := &stats.Table{
		ID:     "ext-membus",
		Title:  "The paper's proposed system: memory-interconnect attach + sized queues",
		XLabel: "cores",
		YLabel: "normalized work IPC (vs single-core DRAM)",
	}
	wl := s.ubench(1, workload.DefaultWorkCount)
	for _, lat := range latencies {
		series := t.AddSeries(latLabel(lat) + " membus+rule")
		stock := t.AddSeries(latLabel(lat) + " stock pcie")
		base := must(core.RunDRAMBaseline(s.Base.WithLatency(lat), wl))
		threads := 20 * int(lat/sim.Microsecond) // enough to cover the rule-sized LFBs
		for _, cores := range []int{1, 2, 4, 8} {
			cfg := s.Base.WithLatency(lat).WithCores(cores)
			stock.Add(float64(cores), must(core.RunPrefetch(cfg, wl, threads, false)).NormalizedTo(base.Measurement))

			tuned := cfg.AsMemBus()
			tuned.LFBPerCore = 20 * int(lat/sim.Microsecond) // the §V-B rule
			tuned.ChipQueueMMIO = tuned.LFBPerCore * cores
			series.Add(float64(cores), must(core.RunPrefetch(tuned, wl, threads, false)).NormalizedTo(base.Measurement))
		}
	}
	t.Note("with queues sized by 20 x latency(us) x cores and a memory-class link, every latency scales near-linearly with cores — \"successful usage of microsecond-level devices is not predicated on drastically new architectures\" (§VII)")
	return t
}

// ExpTailLatency extends the paper's fixed-latency emulator with
// heavy-tailed devices (flash reads behind erases): round-robin
// prefetch scheduling head-of-line blocks on outliers, while the
// software queue's completion-ordered FIFO scheduler absorbs them.
func (s Suite) ExpTailLatency() *stats.Table {
	t := &stats.Table{
		ID:     "ext-tail",
		Title:  "1% 10x latency tail at 1us (extension)",
		XLabel: "threads",
		YLabel: "normalized work IPC (vs single-thread DRAM)",
	}
	wl := s.ubench(1, workload.DefaultWorkCount)
	variants := []struct {
		label string
		prob  float64
	}{
		{"fixed", 0},
		{"1%-tail", 0.01},
	}
	for _, v := range variants {
		cfg := s.Base
		cfg.DeviceLatencyTailProb = v.prob
		base := must(core.RunDRAMBaseline(cfg, wl))
		pf := t.AddSeries("prefetch " + v.label)
		sq := t.AddSeries("swqueue " + v.label)
		for _, n := range s.Threads {
			rp := must(core.RunPrefetch(cfg, wl, n, false))
			pf.Add(float64(n), rp.NormalizedTo(base.Measurement))
			sq.Add(float64(n), must(core.RunSWQueue(cfg, wl, n, false)).NormalizedTo(base.Measurement))
			if v.prob > 0 && n == 10 {
				t.Note("prefetch 10t with tail: access P50 %.0fns P99 %.0fns", rp.Diag.AccessP50Ns, rp.Diag.AccessP99Ns)
			}
		}
	}
	return t
}

// ExpPointerChase runs the workload the paper's introduction singles
// out — "pointer-based serial dependence chains commonly found in
// modern server workloads" — where a thread can never overlap its own
// accesses. At a short work-count the out-of-order window would find
// cross-iteration MLP in an independent-access loop, but a chain denies
// it: the chase's DRAM baseline is itself latency-bound, so thread-level
// parallelism (which the prefetch mechanism supplies) recovers *more*
// than it does for independent accesses.
func (s Suite) ExpPointerChase() *stats.Table {
	const chaseWork = 50 // short enough that the window matters
	t := &stats.Table{
		ID:     "ext-ptrchase",
		Title:  "Pointer chasing at 1us (work=50): dependence chains need threads",
		XLabel: "threads",
		YLabel: "normalized work IPC (vs own DRAM baseline)",
	}
	cfg := s.Base
	chase := workload.NewPointerChase(4096, s.Iterations, chaseWork)
	base := must(core.RunDRAMBaseline(cfg, chase))
	indep := s.ubench(1, chaseWork)
	indepBase := must(core.RunDRAMBaseline(cfg, indep))
	od := must(core.RunOnDemandDevice(cfg, chase)).NormalizedTo(base.Measurement)

	pf := t.AddSeries("chase prefetch")
	sq := t.AddSeries("chase swqueue")
	ub := t.AddSeries("independent prefetch")
	for _, n := range s.Threads {
		chase.Reset()
		pf.Add(float64(n), must(core.RunPrefetch(cfg, chase, n, true)).NormalizedTo(base.Measurement))
		chase.Reset()
		sq.Add(float64(n), must(core.RunSWQueue(cfg, chase, n, true)).NormalizedTo(base.Measurement))
		ub.Add(float64(n), must(core.RunPrefetch(cfg, indep, n, false)).NormalizedTo(indepBase.Measurement))
	}
	t.Note("chase DRAM baseline %.0fns/hop vs independent %.0fns/iter: the chain denies the window its MLP",
		base.IterationTime()*1e9, indepBase.IterationTime()*1e9)
	t.Note("on-demand device chasing runs at %.3f of DRAM; threading restores it", od)
	return t
}

// ExpDevices runs the prefetch mechanism against the emerging-device
// classes the paper's introduction motivates (§I): 3D XPoint-class NVM
// (350 ns, memory-attached), RDMA-class remote memory (3 us), and
// NVMe-class flash (25 us), with queues sized by the §V-B rule. The
// thread sweep shows how much concurrency each device class demands.
func (s Suite) ExpDevices() *stats.Table {
	t := &stats.Table{
		ID:     "ext-devices",
		Title:  "Emerging device classes under prefetch + rule-sized queues",
		XLabel: "threads",
		YLabel: "normalized work IPC (vs single-thread DRAM)",
	}
	devices := []struct {
		label string
		cfg   platformConfigFn
	}{
		{"xpoint-350ns", platform.XPointDevice},
		{"rdma-3us", platform.RDMADevice},
		{"flash-25us", platform.FlashDevice},
	}
	threads := append(append([]int{}, s.Threads...), 24, 48, 96, 192, 384, 512)
	for _, dev := range devices {
		cfg := dev.cfg()
		// Provision the hardware by the paper's rule so the device
		// class, not today's queue sizes, sets the requirement.
		us := cfg.DeviceLatency.Microseconds()
		rule := int(20*us) + 1
		if rule < cfg.LFBPerCore {
			rule = cfg.LFBPerCore
		}
		cfg.LFBPerCore = rule
		cfg.ChipQueueMMIO = rule
		series := t.AddSeries(dev.label)
		for _, n := range threads {
			// Keep warm-up (one device latency) negligible at high
			// thread counts by scaling the run length.
			iters := s.Iterations
			if min := n * 30; iters < min {
				iters = min
			}
			wl := workload.NewMicrobench(iters, workload.DefaultWorkCount, 1)
			base := must(core.RunDRAMBaseline(cfg, wl))
			series.Add(float64(n), must(core.RunPrefetch(cfg, wl, n, false)).NormalizedTo(base.Measurement))
		}
		knee := series.SaturationX(0.9)
		t.Note("%s reaches 90%% of its peak at ~%.0f threads", dev.label, knee)
	}
	return t
}

// platformConfigFn builds a device preset.
type platformConfigFn func() platform.Config

// ExpLocality enables the cacheable-MMIO advantage the paper describes
// but never measures (§III-B: cacheable regions "can take advantage of
// locality"; §V-C: software queues get no hardware caching or
// coherence): Bloom filters of shrinking footprint under a 32 KB
// per-core device cache. As the filter fits, prefetch-path accesses hit
// on-chip and skip the device entirely; the software-queue path cannot
// benefit at any footprint.
func (s Suite) ExpLocality() *stats.Table {
	t := &stats.Table{
		ID:     "ext-locality",
		Title:  "Cacheable MMIO under locality (Bloom lookups, 8 threads, 32KB cache)",
		XLabel: "filter footprint (KB)",
		YLabel: "normalized performance (vs own DRAM baseline)",
	}
	cfg := s.Base
	cfg.DeviceCacheLines = 512 // 32 KB
	pf := t.AddSeries("prefetch")
	sq := t.AddSeries("swqueue")
	hits := t.AddSeries("prefetch cache hit rate")
	for _, bits := range []uint64{1 << 16, 1 << 19, 1 << 22} { // 8KB, 64KB, 512KB
		kb := float64(bits / 8 / 1024)
		bloom := workload.NewBloom(bits, 4, 512, s.AppLookups, workload.DefaultWorkCount)
		base := must(core.RunDRAMBaseline(cfg, bloom))
		r := must(core.RunPrefetch(cfg, bloom, 8, false))
		pf.Add(kb, r.NormalizedTo(base.Measurement))
		hits.Add(kb, r.Diag.CacheHitRate)
		bloom.Reset()
		sq.Add(kb, must(core.RunSWQueue(cfg, bloom, 8, false)).NormalizedTo(base.Measurement))
	}
	t.Note("hardware caching is exclusive to the memory-mapped interface; SWQ response buffers see none (§V-C)")
	return t
}

// ExtensionPlan returns the beyond-the-paper experiments as named plan
// steps.
func (s Suite) ExtensionPlan() []Experiment {
	return []Experiment{
		one("ext-kernelq", s.ExpKernelQueue),
		one("ext-smt", s.ExpSMT),
		one("ext-writes", s.ExpWrites),
		one("ext-membus", s.ExpMemBus),
		one("ext-tail", s.ExpTailLatency),
		one("ext-ptrchase", s.ExpPointerChase),
		one("ext-devices", s.ExpDevices),
		one("ext-locality", s.ExpLocality),
		{ID: "ext-faults", Run: s.ExpFaults},
	}
}

// Extensions runs every beyond-the-paper experiment.
func (s Suite) Extensions() []*stats.Table {
	return RunPlan(s.ExtensionPlan(), nil)
}
