package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workload"
)

func TestExpKernelQueueDwarfsAccess(t *testing.T) {
	s := quickSuite()
	s.Threads = []int{1, 4, 8, 16}
	tb := s.ExpKernelQueue()
	_, kqPeak := tb.FindSeries("kernelq").Peak()
	_, sqPeak := tb.FindSeries("swqueue").Peak()
	_, pfPeak := tb.FindSeries("prefetch").Peak()
	// The paper's ordering: prefetch > swqueue >> kernelq.
	if !(pfPeak > sqPeak && sqPeak > kqPeak) {
		t.Errorf("peaks pf=%.3f sq=%.3f kq=%.3f: ordering violated", pfPeak, sqPeak, kqPeak)
	}
	// "these overheads dwarf the access latency": kernel queues stay
	// in the single-digit percents.
	if kqPeak > 0.10 {
		t.Errorf("kernelq peak %.3f, want dwarfed (<0.10)", kqPeak)
	}
}

func TestKernelQueueCorrectness(t *testing.T) {
	// The mechanism must still compute the right answers, however slow.
	m := workload.NewMemcached(64, 4, 60, workload.DefaultWorkCount)
	r := must(core.RunKernelQueue(platform.Default(), m, 4, false))
	if m.BadValues != 0 || m.Hits != 60 {
		t.Errorf("kernelq corrupted lookups: hits=%d bad=%d", m.Hits, m.BadValues)
	}
	if r.Accesses != 240 {
		t.Errorf("accesses = %d", r.Accesses)
	}
}

func TestExpSMTSmallFactor(t *testing.T) {
	tb := quickSuite().ExpSMT()
	s1 := tb.FindSeries("1us")
	// SMT-2 roughly doubles the 1-context on-demand rate...
	gain := s1.YAt(2) / s1.YAt(1)
	if gain < 1.6 || gain > 2.4 {
		t.Errorf("SMT-2 gain %.2fx, want ~2x", gain)
	}
	// ...but stays far from DRAM parity.
	if s1.YAt(2) > 0.4 {
		t.Errorf("SMT-2 at %.3f of DRAM; the paper says SMT utility is limited (§III-B)", s1.YAt(2))
	}
}

func TestExpWritesShape(t *testing.T) {
	s := quickSuite()
	s.Threads = []int{1, 4, 8, 10}
	tb := s.ExpWrites()
	// Prefetch: posted writes are nearly free — adding 4 writes per
	// iteration costs only a few percent at the 10-thread peak.
	_, pf0 := tb.FindSeries("prefetch +0w").Peak()
	_, pf4 := tb.FindSeries("prefetch +4w").Peak()
	if pf4 < pf0*0.85 {
		t.Errorf("prefetch with 4 writes dropped to %.3f from %.3f; writes should be ~free (§VII)", pf4, pf0)
	}
	// SWQ: each write pays descriptor management, visibly compounding.
	_, sq0 := tb.FindSeries("swqueue +0w").Peak()
	_, sq4 := tb.FindSeries("swqueue +4w").Peak()
	if sq4 > sq0*0.75 {
		t.Errorf("swqueue with 4 writes only dropped to %.3f from %.3f; descriptor costs should bite", sq4, sq0)
	}
}

func TestWritesAreCounted(t *testing.T) {
	cfg := platform.Default()
	wl := workload.NewMicrobenchRW(300, workload.DefaultWorkCount, 1, 2)
	r := must(core.RunPrefetch(cfg, wl, 4, false))
	if r.Diag.Writes != 600 {
		t.Errorf("writes = %d, want 600", r.Diag.Writes)
	}
	if r.Accesses != 300 {
		t.Errorf("reads = %d, want 300", r.Accesses)
	}
	r2 := must(core.RunSWQueue(cfg, wl, 4, false))
	if r2.Diag.Writes != 600 {
		t.Errorf("swq writes = %d, want 600", r2.Diag.Writes)
	}
}

func TestExpMemBusScaling(t *testing.T) {
	s := quickSuite()
	tb := s.ExpMemBus()
	for _, lat := range []string{"1us", "4us"} {
		tuned := tb.FindSeries(lat + " membus+rule")
		stock := tb.FindSeries(lat + " stock pcie")
		// The proposed system reaches multicore near-parity x cores.
		if tuned.YAt(8) < 6.0 {
			t.Errorf("%s membus 8-core = %.2f, want near-linear (>6x)", lat, tuned.YAt(8))
		}
		// Stock hardware is far behind at 8 cores.
		if stock.YAt(8) > tuned.YAt(8)/2 {
			t.Errorf("%s stock (%.2f) too close to tuned (%.2f)", lat, stock.YAt(8), tuned.YAt(8))
		}
		// Single-core tuned is near DRAM parity.
		if tuned.YAt(1) < 0.85 {
			t.Errorf("%s membus single-core = %.3f, want ~1", lat, tuned.YAt(1))
		}
	}
}

func TestExpTailLatency(t *testing.T) {
	s := quickSuite()
	s.Threads = []int{4, 10, 16}
	tb := s.ExpTailLatency()
	_, pfFixed := tb.FindSeries("prefetch fixed").Peak()
	_, pfTail := tb.FindSeries("prefetch 1%-tail").Peak()
	// A 1% 10x tail adds 9% mean latency but hurts round-robin far
	// more: the core blocks on the straggler's turn.
	if pfTail > pfFixed*0.95 {
		t.Errorf("prefetch tail peak %.3f vs fixed %.3f: head-of-line blocking missing", pfTail, pfFixed)
	}
	_, sqFixed := tb.FindSeries("swqueue fixed").Peak()
	_, sqTail := tb.FindSeries("swqueue 1%-tail").Peak()
	// Completion-ordered FIFO degrades less (relatively).
	pfDrop := 1 - pfTail/pfFixed
	sqDrop := 1 - sqTail/sqFixed
	if sqDrop > pfDrop {
		t.Errorf("swq degraded more (%.3f) than prefetch (%.3f); FIFO should absorb stragglers", sqDrop, pfDrop)
	}
	// The percentile note is recorded.
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "P99") {
			found = true
		}
	}
	if !found {
		t.Error("missing latency percentile note")
	}
}

func TestAccessLatencyPercentiles(t *testing.T) {
	cfg := platform.Default()
	wl := workload.NewMicrobench(500, workload.DefaultWorkCount, 1)
	r := must(core.RunPrefetch(cfg, wl, 10, false))
	// At 10 threads a 1us device: observed latency ~= 1us (the demand
	// load waits out the residual).
	if r.Diag.AccessP50Ns < 900 || r.Diag.AccessP50Ns > 1200 {
		t.Errorf("P50 = %.0fns, want ~1000ns", r.Diag.AccessP50Ns)
	}
	if r.Diag.AccessP99Ns < r.Diag.AccessP50Ns {
		t.Errorf("P99 %.0f < P50 %.0f", r.Diag.AccessP99Ns, r.Diag.AccessP50Ns)
	}

	// With the tail enabled, P99 shows the outliers.
	cfg.DeviceLatencyTailProb = 0.02
	base := must(core.RunPrefetch(cfg, wl, 10, false))
	if base.Diag.AccessP99Ns < 5000 {
		t.Errorf("tail P99 = %.0fns, want outliers near 10us", base.Diag.AccessP99Ns)
	}
}

func TestExpLocalityShape(t *testing.T) {
	s := quickSuite()
	s.AppLookups = 300
	tb := s.ExpLocality()
	pf := tb.FindSeries("prefetch")
	sq := tb.FindSeries("swqueue")
	hits := tb.FindSeries("prefetch cache hit rate")
	// Prefetch improves monotonically as the footprint shrinks into the
	// cache; SWQ is indifferent to locality (§V-C).
	if !(pf.YAt(8) > pf.YAt(64) && pf.YAt(64) > pf.YAt(512)) {
		t.Errorf("prefetch not monotone in locality: %v", pf.Y)
	}
	if hits.YAt(8) < 0.6 || hits.YAt(512) > 0.2 {
		t.Errorf("hit rates implausible: %v", hits.Y)
	}
	spread := sq.YAt(8) - sq.YAt(512)
	if spread > 0.05 || spread < -0.05 {
		t.Errorf("SWQ varied %.3f with locality; it has no hardware caching", spread)
	}
}

func TestCacheHitsSkipDevice(t *testing.T) {
	cfg := platform.Default()
	cfg.DeviceCacheLines = 1 << 14 // big enough to hold the whole filter
	bloom := workload.NewBloom(1<<15, 4, 128, 600, workload.DefaultWorkCount)
	r := must(core.RunPrefetch(cfg, bloom, 4, false))
	// After compulsory misses, everything hits: accesses (device reads)
	// far below 600 lookups x 4 probes.
	if r.Accesses >= 600*4/2 {
		t.Errorf("device accesses = %d of %d probes; cache not absorbing", r.Accesses, 600*4)
	}
	if r.Diag.CacheHitRate < 0.5 {
		t.Errorf("hit rate %.3f, want high", r.Diag.CacheHitRate)
	}
	// Results stay correct when served from cache.
	if bloom.Positives != bloom.ReferencePositives() {
		t.Errorf("cached positives %d != reference %d", bloom.Positives, bloom.ReferencePositives())
	}
}

func TestWriteInvalidatesCaches(t *testing.T) {
	// A device write must invalidate the line in every core's cache so
	// later reads fetch fresh data (the §V-C coherence argument).
	cfg := platform.Default()
	cfg.DeviceCacheLines = 64
	// Reads and writes to the same address region: a microbench variant
	// that re-reads lines it wrote would need data plumbing; here we
	// check the mechanics via the RW microbench's disjoint streams plus
	// diagnostics — writes must not inflate the hit rate.
	wl := workload.NewMicrobenchRW(300, workload.DefaultWorkCount, 1, 1)
	r := must(core.RunPrefetch(cfg, wl, 4, false))
	if r.Diag.CacheHits != 0 {
		t.Errorf("fresh-line run recorded %d cache hits", r.Diag.CacheHits)
	}
	if r.Diag.Writes != 300 {
		t.Errorf("writes = %d", r.Diag.Writes)
	}
}

func TestSMTDeterministicAndCounted(t *testing.T) {
	cfg := platform.Default()
	wl := workload.NewMicrobench(400, workload.DefaultWorkCount, 1)
	a := must(core.RunSMT(cfg, wl))
	b := must(core.RunSMT(cfg, wl))
	if a.ElapsedSeconds != b.ElapsedSeconds {
		t.Error("SMT runs nondeterministic")
	}
	if a.Accesses != 400 {
		t.Errorf("accesses = %d", a.Accesses)
	}
	if !strings.Contains(a.Label, "smt") {
		t.Errorf("label = %q", a.Label)
	}
}
