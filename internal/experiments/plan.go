package experiments

import (
	"strings"

	"repro/internal/stats"
)

// planEntry is one user-selectable experiment: its canonical id, the
// short aliases the CLI accepts for it, a one-line description for
// listings, and the plan constructor.
type planEntry struct {
	id      string
	aliases []string
	desc    string
	make    func(Suite) []Experiment
}

// planShards marks the plan ids whose cells honor Suite.FleetShards
// (the killerusec -shards flag): the fleet simulations, whose per-cell
// engine advances shard across cores. Every other family parallelizes
// across cells only (-parallel).
var planShards = map[string]bool{"cluster": true}

// oneTable adapts a single-table experiment method into a one-step plan.
func oneTable(pid string, f func(Suite) *stats.Table) func(Suite) []Experiment {
	return func(s Suite) []Experiment {
		return []Experiment{{ID: pid, Run: func() []*stats.Table {
			return []*stats.Table{f(s)}
		}}}
	}
}

// multiTable adapts a multi-table experiment method into a one-step plan.
func multiTable(pid string, f func(Suite) []*stats.Table) func(Suite) []Experiment {
	return func(s Suite) []Experiment {
		return []Experiment{{ID: pid, Run: func() []*stats.Table { return f(s) }}}
	}
}

// fig10Sub selects one of Fig10's four application panels by id suffix.
func fig10Sub(suffix string) func(Suite) []Experiment {
	return func(s Suite) []Experiment {
		return []Experiment{{ID: "fig" + suffix, Run: func() []*stats.Table {
			for _, t := range s.Fig10() {
				if strings.HasSuffix(t.ID, suffix) {
					return []*stats.Table{t}
				}
			}
			return nil
		}}}
	}
}

// planRegistry is the single source of runnable experiment ids, shared
// by PlanFor (the killerusec/kurecd id resolver) and Plans (the
// `killerusec -plans` listing).
var planRegistry = []planEntry{
	{"fig2", []string{"2"}, "on-demand access: work IPC vs work-count at 1/2/4us (§V-A)", oneTable("fig2", Suite.Fig2)},
	{"fig3", []string{"3"}, "prefetch vs thread count at 1/2/4us; the 10-entry LFB knee (§V-B)", oneTable("fig3", Suite.Fig3)},
	{"fig4", []string{"4"}, "prefetch at 1us across work-counts: more work, fewer threads needed (§V-B)", oneTable("fig4", Suite.Fig4)},
	{"fig5", []string{"5"}, "multicore prefetch: per-core LFBs aggregate into the 14-entry chip queue (§V-B)", oneTable("fig5", Suite.Fig5)},
	{"fig6", []string{"6"}, "prefetch with MLP 1/2/4: multi-read batches burn LFBs faster (§V-B)", oneTable("fig6", Suite.Fig6)},
	{"fig7", []string{"7"}, "prefetch vs software queues at 1/4us: SWQ passes the LFB limit, overhead-capped (§V-C)", oneTable("fig7", Suite.Fig7)},
	{"fig8", []string{"8"}, "multicore software queues into the PCIe request-rate wall (§V-C)", oneTable("fig8", Suite.Fig8)},
	{"fig9", []string{"9"}, "software queues with MLP at one and four cores (§V-C)", oneTable("fig9", Suite.Fig9)},
	{"fig10", []string{"10"}, "application case studies: BFS, Bloom, memcached, ubench (§V-D)", multiTable("fig10", Suite.Fig10)},
	{"fig10a", []string{"10a"}, "Fig10 panel a only", fig10Sub("10a")},
	{"fig10b", []string{"10b"}, "Fig10 panel b only", fig10Sub("10b")},
	{"fig10c", []string{"10c"}, "Fig10 panel c only", fig10Sub("10c")},
	{"fig10d", []string{"10d"}, "Fig10 panel d only", fig10Sub("10d")},
	{"ablation-lfb", []string{"lfb"}, "lift the per-core LFB limit: can 4us match DRAM? (§V-B)", oneTable("ablation-lfb", Suite.AblationLFB)},
	{"ablation-chipq", []string{"chipq"}, "size the chip queue by the 20·latency·cores rule (§V-B)", oneTable("ablation-chipq", Suite.AblationChipQueue)},
	{"ablation-rule", []string{"rule"}, "derive the 10-20 in-flight-per-us provisioning coefficient (§V-B)", oneTable("ablation-rule", Suite.AblationRule)},
	{"ablation-switch", []string{"switch"}, "sweep context-switch cost from Pth's ~2us to the paper's 20-50ns (§IV-B)", oneTable("ablation-switch", Suite.AblationSwitchCost)},
	{"ablation-swqopts", []string{"swqopts"}, "remove the doorbell-flag and burst SWQ optimizations (§III-A)", oneTable("ablation-swqopts", Suite.AblationSWQOpts)},
	{"ext-kernelq", []string{"kernelq"}, "kernel-managed queues vs the paper's three interfaces (§III-A)", oneTable("ext-kernelq", Suite.ExpKernelQueue)},
	{"ext-smt", []string{"smt"}, "SMT as the only on-demand latency aid (§III-B)", oneTable("ext-smt", Suite.ExpSMT)},
	{"ext-writes", []string{"writes"}, "write paths: posted stores vs per-descriptor SWQ cost (§VII)", oneTable("ext-writes", Suite.ExpWrites)},
	{"ext-membus", []string{"membus"}, "device on the memory interconnect with rule-sized queues (§V-B)", oneTable("ext-membus", Suite.ExpMemBus)},
	{"ext-tail", []string{"tail"}, "heavy-tailed device latency: head-of-line blocking on outliers", oneTable("ext-tail", Suite.ExpTailLatency)},
	{"ext-ptrchase", []string{"ptrchase"}, "pointer-chase dependence chains: no self-overlap (§I)", oneTable("ext-ptrchase", Suite.ExpPointerChase)},
	{"ext-devices", []string{"devices"}, "emerging device classes: NVM, RDMA, flash points (§I)", oneTable("ext-devices", Suite.ExpDevices)},
	{"ext-locality", []string{"locality"}, "cacheable MMIO locality advantage (§III-B, §V-C)", oneTable("ext-locality", Suite.ExpLocality)},
	{"ext-faults", []string{"faults"}, "graceful degradation under deterministic fault injection", multiTable("ext-faults", Suite.ExpFaults)},
	{"cluster", []string{"fleet"}, "fleet simulation: routing policies, arrival shapes, and backend mechanisms vs fleet p99", multiTable("cluster", Suite.ExpCluster)},
}

// PlanInfo describes one runnable experiment id for listings.
type PlanInfo struct {
	ID      string
	Aliases []string
	Desc    string
	// Shards reports whether this family's cells honor Suite.FleetShards
	// (killerusec -shards); rendered as a marker in `-plans`.
	Shards bool
}

// Plans returns every runnable experiment id with its aliases and
// one-line description, in registry (roughly paper) order.
func Plans() []PlanInfo {
	out := make([]PlanInfo, len(planRegistry))
	for i, e := range planRegistry {
		out[i] = PlanInfo{ID: e.id, Aliases: append([]string(nil), e.aliases...), Desc: e.desc, Shards: planShards[e.id]}
	}
	return out
}

// PlanFor maps a user-facing experiment id (canonical or alias) onto a
// one-element execution plan, or nil if the id is unknown. It is the
// single id resolver shared by the killerusec CLI and the kurecd
// server, so both accept exactly the same names.
func PlanFor(s Suite, id string) []Experiment {
	for _, e := range planRegistry {
		if e.id == id {
			return e.make(s)
		}
		for _, a := range e.aliases {
			if a == id {
				return e.make(s)
			}
		}
	}
	return nil
}
