package experiments

import (
	"strings"

	"repro/internal/stats"
)

// PlanFor maps a user-facing experiment id (with its short aliases)
// onto a one-element execution plan, or nil if the id is unknown. It
// is the single id resolver shared by the killerusec CLI and the
// kurecd server, so both accept exactly the same names.
func PlanFor(s Suite, id string) []Experiment {
	one := func(pid string, f func() *stats.Table) []Experiment {
		return []Experiment{{ID: pid, Run: func() []*stats.Table {
			return []*stats.Table{f()}
		}}}
	}
	switch id {
	case "2", "fig2":
		return one("fig2", s.Fig2)
	case "3", "fig3":
		return one("fig3", s.Fig3)
	case "4", "fig4":
		return one("fig4", s.Fig4)
	case "5", "fig5":
		return one("fig5", s.Fig5)
	case "6", "fig6":
		return one("fig6", s.Fig6)
	case "7", "fig7":
		return one("fig7", s.Fig7)
	case "8", "fig8":
		return one("fig8", s.Fig8)
	case "9", "fig9":
		return one("fig9", s.Fig9)
	case "10", "fig10":
		return []Experiment{{ID: "fig10", Run: s.Fig10}}
	case "10a", "10b", "10c", "10d", "fig10a", "fig10b", "fig10c", "fig10d":
		suffix := strings.TrimPrefix(id, "fig")
		return []Experiment{{ID: "fig" + suffix, Run: func() []*stats.Table {
			for _, t := range s.Fig10() {
				if strings.HasSuffix(t.ID, suffix) {
					return []*stats.Table{t}
				}
			}
			return nil
		}}}
	case "lfb", "ablation-lfb":
		return one("ablation-lfb", s.AblationLFB)
	case "chipq", "ablation-chipq":
		return one("ablation-chipq", s.AblationChipQueue)
	case "rule", "ablation-rule":
		return one("ablation-rule", s.AblationRule)
	case "switch", "ablation-switch":
		return one("ablation-switch", s.AblationSwitchCost)
	case "swqopts", "ablation-swqopts":
		return one("ablation-swqopts", s.AblationSWQOpts)
	case "kernelq", "ext-kernelq":
		return one("ext-kernelq", s.ExpKernelQueue)
	case "smt", "ext-smt":
		return one("ext-smt", s.ExpSMT)
	case "writes", "ext-writes":
		return one("ext-writes", s.ExpWrites)
	case "membus", "ext-membus":
		return one("ext-membus", s.ExpMemBus)
	case "tail", "ext-tail":
		return one("ext-tail", s.ExpTailLatency)
	case "ptrchase", "ext-ptrchase":
		return one("ext-ptrchase", s.ExpPointerChase)
	case "devices", "ext-devices":
		return one("ext-devices", s.ExpDevices)
	case "locality", "ext-locality":
		return one("ext-locality", s.ExpLocality)
	case "faults", "ext-faults":
		return []Experiment{{ID: "ext-faults", Run: s.ExpFaults}}
	}
	return nil
}
