// Package experiments regenerates every experimental figure of the
// paper's evaluation (§V) plus the ablations its implications sections
// argue for. Each Fig* method performs the full parameter sweep of the
// corresponding figure and returns a stats.Table whose series mirror the
// figure's curves; values are normalized exactly as in the paper
// (§IV-C: to the matching single-threaded, single-core on-demand DRAM
// baseline).
package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Suite holds the sweep configuration shared by all experiments.
type Suite struct {
	// Base is the platform every experiment starts from.
	Base platform.Config
	// Iterations is the per-core microbenchmark loop count per run. The
	// paper averages over 1M iterations on hardware; a few thousand
	// simulated iterations reach steady state.
	Iterations int
	// AppLookups is the per-core lookup count for the application
	// benchmarks.
	AppLookups int
	// Threads is the thread-per-core sweep used by the threaded
	// mechanisms.
	Threads []int
	// UseReplay applies the two-run record/replay methodology to the
	// application benchmarks.
	UseReplay bool
	// Quick marks the reduced sweep; recorded in run reports so a
	// quick artifact is never diffed against a publication baseline.
	Quick bool
	// Exec, when set, runs cells through a worker pool with a result
	// cache (see cells.go). Nil means direct serial execution — the
	// legacy behavior. Execution strategy never changes results: the
	// figures collect cells in program order, so output is
	// byte-identical at any worker count. It is not stamped into
	// reports for the same reason.
	Exec *Exec
	// FleetShards is the engine-advance worker count inside each fleet
	// cell (cluster.Config.Shards): cell-level parallelism, orthogonal
	// to Exec's cell-at-a-time parallelism. Like Exec it never changes
	// results — the sharded fleet driver is byte-deterministic — and is
	// not stamped into reports. 0 or 1 keeps the serial fleet driver.
	// Callers running sweeps should split cores between the two layers
	// with ShardBudget so the pools compose instead of oversubscribing.
	FleetShards int
}

// Default returns the publication sweep.
func Default() Suite {
	return Suite{
		Base:       platform.Default(),
		Iterations: 3000,
		AppLookups: 800,
		Threads:    []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16},
		UseReplay:  true,
	}
}

// Quick returns a reduced sweep for smoke tests and examples.
func Quick() Suite {
	s := Default()
	s.Iterations = 800
	s.AppLookups = 200
	s.Threads = []int{1, 2, 4, 8, 10, 16}
	s.Quick = true
	return s
}

// Validate reports the first implausible suite field, or nil. Every
// experiment entry point should call it (the CLI does) so a bad sweep
// fails before hours of simulation, not during.
func (s Suite) Validate() error {
	if err := s.Base.Validate(); err != nil {
		return err
	}
	if s.Iterations <= 0 {
		return fmt.Errorf("experiments: iterations %d must be positive", s.Iterations)
	}
	if s.AppLookups <= 0 {
		return fmt.Errorf("experiments: app lookups %d must be positive", s.AppLookups)
	}
	if len(s.Threads) == 0 {
		return fmt.Errorf("experiments: thread sweep must not be empty")
	}
	for _, n := range s.Threads {
		if n <= 0 {
			return fmt.Errorf("experiments: thread count %d must be positive", n)
		}
	}
	if s.FleetShards < 0 {
		return fmt.Errorf("experiments: fleet shards %d must be non-negative", s.FleetShards)
	}
	return nil
}

// ShardBudget splits the machine between the two parallelism layers: a
// sweep running `parallel` cells at once gets GOMAXPROCS/parallel
// engine-advance shards inside each fleet cell, so cells × shards
// never oversubscribes the cores. A single-cell run (parallel ≤ 1)
// gets the whole machine.
func ShardBudget(parallel int) int {
	procs := runtime.GOMAXPROCS(0)
	if parallel < 1 {
		parallel = 1
	}
	return max(1, procs/parallel)
}

// must unwraps a run result. Suite configurations are validated before
// any sweep starts and derive every per-run config from the validated
// base, so a failing run here is a harness bug, not user input.
func must(r core.Result, err error) core.Result {
	if err != nil {
		panic(err)
	}
	return r
}

// latencies swept in the latency figures.
var latencies = []sim.Time{1 * sim.Microsecond, 2 * sim.Microsecond, 4 * sim.Microsecond}

// fig2WorkCounts is the work-per-access sweep of Fig 2; fig4WorkCounts
// the (shorter) one of Fig 4. Exported to run reports via Spec.
var (
	fig2WorkCounts = []int{100, 200, 500, 1000, 2000, 5000}
	fig4WorkCounts = []int{100, 200, 500, 1000}
	mlpLevels      = []int{1, 2, 4}
)

// KroneckerSeed is the fixed seed of the BFS input graph (§IV-C); it is
// part of a run's parameterization and therefore stamped into reports.
const KroneckerSeed = 20180610

// runDiag extracts the report-facing per-cell diagnostics of one run.
func runDiag(r core.Result) stats.RunDiag {
	return stats.RunDiag{
		Accesses:          r.Accesses,
		P50Ns:             r.Diag.AccessP50Ns,
		P99Ns:             r.Diag.AccessP99Ns,
		P999Ns:            r.Diag.AccessP999Ns,
		MeanLFBOccupancy:  r.Diag.MeanLFBOccupancy,
		MeanChipOccupancy: r.Diag.MeanChipOccupancy,
		SimEvents:         r.Diag.SimEvents,
	}
}

// addRun appends a measured device run to the series, normalized to
// base and carrying the run's diagnostics into reports.
func addRun(series *stats.Series, x float64, r core.Result, base core.Result) {
	series.AddRun(x, r.NormalizedTo(base.Measurement), runDiag(r))
}

func latLabel(l sim.Time) string { return fmt.Sprintf("%gus", l.Microseconds()) }

func (s Suite) ubench(reads, work int) *workload.Microbench {
	return workload.NewMicrobench(s.Iterations, work, reads)
}

// ubenchSpec is the cell-layer counterpart of ubench: a value spec the
// executor can hash and rebuild per run.
func (s Suite) ubenchSpec(reads, work int) WorkloadSpec {
	return WorkloadSpec{Kind: "ubench", Iters: s.Iterations, Work: work, Reads: reads}
}

// Fig2 — on-demand access of the microsecond device, normalized work IPC
// versus work-count, for 1/2/4 us devices (§V-A).
func (s Suite) Fig2() *stats.Table {
	t := &stats.Table{
		ID:     "fig2",
		Title:  "On-demand access of microsecond-latency device",
		XLabel: "work instructions per access",
		YLabel: "normalized work IPC (vs single-thread DRAM)",
	}
	var cells []pendingCell
	for _, lat := range latencies {
		cfg := s.Base.WithLatency(lat)
		series := t.AddSeries(latLabel(lat))
		for _, w := range fig2WorkCounts {
			wl := s.ubenchSpec(1, w)
			base := s.exec(dramCell(cfg, wl))
			dev := s.exec(onDemandCell(cfg, wl))
			cells = append(cells, pendingCell{series: series, x: float64(w), run: dev, base: base, diag: true})
		}
	}
	resolve(cells)
	t.Note("drop is abysmal at moderate work counts; only ~5000-instruction work partially abates it (§V-A)")
	return t
}

// Fig3 — prefetch-based access versus thread count for 1/2/4 us devices;
// the 10-entry LFB pool caps every curve at 10 threads (§V-B).
func (s Suite) Fig3() *stats.Table {
	t := &stats.Table{
		ID:     "fig3",
		Title:  "Prefetch-based access with various latencies",
		XLabel: "threads",
		YLabel: "normalized work IPC (vs single-thread DRAM)",
	}
	wl := s.ubenchSpec(1, workload.DefaultWorkCount)
	var cells []pendingCell
	for _, lat := range latencies {
		cfg := s.Base.WithLatency(lat)
		base := s.exec(dramCell(cfg, wl))
		series := t.AddSeries(latLabel(lat))
		for _, n := range s.Threads {
			run := s.exec(prefetchCell(cfg, wl, n, false))
			cells = append(cells, pendingCell{series: series, x: float64(n), run: run, base: base, diag: true})
		}
	}
	resolve(cells)
	if s1 := t.FindSeries("1us"); s1 != nil {
		x, y := s1.Peak()
		t.Note("1us peak %.2f at %.0f threads (paper: ~DRAM parity at 10 threads)", y, x)
	}
	return t
}

// Fig4 — prefetch-based access at 1 us with various work-counts: more
// work per access needs fewer threads to hide the latency (§V-B).
func (s Suite) Fig4() *stats.Table {
	t := &stats.Table{
		ID:     "fig4",
		Title:  "1us prefetch-based access with various work counts",
		XLabel: "threads",
		YLabel: "normalized work IPC (vs single-thread DRAM)",
	}
	cfg := s.Base // 1us default
	var cells []pendingCell
	for _, w := range fig4WorkCounts {
		wl := s.ubenchSpec(1, w)
		base := s.exec(dramCell(cfg, wl))
		series := t.AddSeries(fmt.Sprintf("work=%d", w))
		for _, n := range s.Threads {
			run := s.exec(prefetchCell(cfg, wl, n, false))
			cells = append(cells, pendingCell{series: series, x: float64(n), run: run, base: base, diag: true})
		}
	}
	resolve(cells)
	return t
}

// Fig5 — multicore prefetch-based access: per-core LFBs aggregate until
// the 14-entry chip-level shared queue binds (§V-B). All values are
// normalized to the single-core DRAM baseline.
func (s Suite) Fig5() *stats.Table {
	t := &stats.Table{
		ID:     "fig5",
		Title:  "Multicore prefetch-based access with various latencies",
		XLabel: "threads per core",
		YLabel: "normalized work IPC (vs single-core DRAM)",
	}
	wl := s.ubenchSpec(1, workload.DefaultWorkCount)
	maxChip := 0
	meanChip := 0.0
	track := func(r core.Result) {
		if r.Diag.MaxChipQueue > maxChip {
			maxChip = r.Diag.MaxChipQueue
		}
		if r.Diag.MeanChipOccupancy > meanChip {
			meanChip = r.Diag.MeanChipOccupancy
		}
	}
	var cells []pendingCell
	for _, lat := range latencies {
		base := s.exec(dramCell(s.Base.WithLatency(lat), wl))
		for _, cores := range []int{1, 2, 4, 8} {
			cfg := s.Base.WithLatency(lat).WithCores(cores)
			series := t.AddSeries(fmt.Sprintf("%s %dc", latLabel(lat), cores))
			for _, n := range s.Threads {
				run := s.exec(prefetchCell(cfg, wl, n, false))
				cells = append(cells, pendingCell{series: series, x: float64(n), run: run, base: base, diag: true, post: track})
			}
		}
	}
	resolve(cells)
	t.Note("chip-level queue occupancy observed: peak %d, best time-weighted mean %.1f (paper: limit 14)", maxChip, meanChip)
	return t
}

// Fig6 — prefetch-based access at 1 us with MLP 1/2/4; each curve is
// normalized to the DRAM baseline with matching MLP. Multi-read batches
// consume LFBs faster: knees at ~10/5/3 threads (§V-B).
func (s Suite) Fig6() *stats.Table {
	t := &stats.Table{
		ID:     "fig6",
		Title:  "1us prefetch-based access at various levels of MLP",
		XLabel: "threads",
		YLabel: "normalized work IPC (vs MLP-matched DRAM)",
	}
	cfg := s.Base
	var cells []pendingCell
	seriesByReads := make(map[int]*stats.Series)
	for _, reads := range mlpLevels {
		wl := s.ubenchSpec(reads, workload.DefaultWorkCount)
		base := s.exec(dramCell(cfg, wl))
		series := t.AddSeries(fmt.Sprintf("%d-read", reads))
		seriesByReads[reads] = series
		for _, n := range s.Threads {
			run := s.exec(prefetchCell(cfg, wl, n, false))
			cells = append(cells, pendingCell{series: series, x: float64(n), run: run, base: base, diag: true})
		}
	}
	resolve(cells)
	for _, reads := range mlpLevels {
		knee := seriesByReads[reads].SaturationX(0.97)
		t.Note("%d-read saturates at ~%.0f threads (paper: %d)", reads, knee,
			map[int]int{1: 10, 2: 5, 4: 3}[reads])
	}
	return t
}

// Fig7 — prefetch versus application-managed queues at 1 and 4 us: SWQ
// scales past the LFB limit but queue-management overhead caps it near
// 50% of the DRAM baseline (§V-C).
func (s Suite) Fig7() *stats.Table {
	t := &stats.Table{
		ID:     "fig7",
		Title:  "Application-managed queues vs prefetch-based access",
		XLabel: "threads",
		YLabel: "normalized work IPC (vs single-thread DRAM)",
	}
	wl := s.ubenchSpec(1, workload.DefaultWorkCount)
	threads := append(append([]int{}, s.Threads...), 20, 24, 28, 32)
	var cells []pendingCell
	for _, lat := range []sim.Time{1 * sim.Microsecond, 4 * sim.Microsecond} {
		cfg := s.Base.WithLatency(lat)
		base := s.exec(dramCell(cfg, wl))
		pf := t.AddSeries("prefetch " + latLabel(lat))
		sq := t.AddSeries("swqueue " + latLabel(lat))
		for _, n := range threads {
			cells = append(cells,
				pendingCell{series: pf, x: float64(n), run: s.exec(prefetchCell(cfg, wl, n, false)), base: base, diag: true},
				pendingCell{series: sq, x: float64(n), run: s.exec(swqueueCell(cfg, wl, n, false)), base: base, diag: true})
		}
	}
	resolve(cells)
	if sq := t.FindSeries("swqueue 1us"); sq != nil {
		_, y := sq.Peak()
		t.Note("swqueue 1us peak %.2f (paper: ~0.5, capped by queue management overhead)", y)
	}
	return t
}

// Fig8 — multicore application-managed queues at 1 and 4 us: linear
// core scaling into the PCIe request-rate wall at eight cores, where
// only ~half the upstream bandwidth carries useful data (§V-C).
func (s Suite) Fig8() *stats.Table {
	t := &stats.Table{
		ID:     "fig8",
		Title:  "Multicore software-managed queues",
		XLabel: "threads per core",
		YLabel: "normalized work IPC (vs single-core DRAM)",
	}
	wl := s.ubenchSpec(1, workload.DefaultWorkCount)
	threads := append(append([]int{}, s.Threads...), 24, 32, 48)
	var useful, gbps float64
	track8c := func(r core.Result) {
		if r.Diag.UpstreamGBps > gbps {
			gbps = r.Diag.UpstreamGBps
			useful = r.Diag.UpstreamUseful
		}
	}
	var cells []pendingCell
	for _, lat := range []sim.Time{1 * sim.Microsecond, 4 * sim.Microsecond} {
		base := s.exec(dramCell(s.Base.WithLatency(lat), wl))
		for _, cores := range []int{1, 2, 4, 8} {
			cfg := s.Base.WithLatency(lat).WithCores(cores)
			series := t.AddSeries(fmt.Sprintf("%s %dc", latLabel(lat), cores))
			var post func(core.Result)
			if cores == 8 {
				post = track8c
			}
			for _, n := range threads {
				run := s.exec(swqueueCell(cfg, wl, n, false))
				cells = append(cells, pendingCell{series: series, x: float64(n), run: run, base: base, diag: true, post: post})
			}
		}
	}
	resolve(cells)
	t.Note("8-core peak useful upstream bandwidth %.2f GB/s at %.0f%% efficiency (paper: ~2 GB/s of 4 GB/s)", gbps, useful*100)
	return t
}

// Fig9 — application-managed queues with MLP at one and four cores,
// each normalized to the MLP-matched single-core DRAM baseline (§V-C).
func (s Suite) Fig9() *stats.Table {
	t := &stats.Table{
		ID:     "fig9",
		Title:  "Impact of MLP on software-managed queues (1 and 4 cores)",
		XLabel: "threads per core",
		YLabel: "normalized work IPC (vs MLP-matched single-core DRAM)",
	}
	threads := append(append([]int{}, s.Threads...), 24, 32)
	var cells []pendingCell
	for _, cores := range []int{1, 4} {
		for _, reads := range mlpLevels {
			wl := s.ubenchSpec(reads, workload.DefaultWorkCount)
			base := s.exec(dramCell(s.Base, wl))
			cfg := s.Base.WithCores(cores)
			series := t.AddSeries(fmt.Sprintf("%dc %d-read", cores, reads))
			for _, n := range threads {
				run := s.exec(swqueueCell(cfg, wl, n, false))
				cells = append(cells, pendingCell{series: series, x: float64(n), run: run, base: base, diag: true})
			}
		}
	}
	resolve(cells)
	for _, reads := range mlpLevels {
		if series := t.FindSeries(fmt.Sprintf("1c %d-read", reads)); series != nil {
			_, y := series.Peak()
			t.Note("single-core %d-read peak %.2f (paper: %.2f)", reads, y,
				map[int]float64{1: 0.5, 2: 0.45, 4: 0.35}[reads])
		}
	}
	return t
}

// appSpecs describes the three §IV-C applications sized for the suite,
// in the presentation order of Fig 10 (BFS, Bloom, Memcached).
func (s Suite) appSpecs() []WorkloadSpec {
	sources := []int{1, 33, 77, 123, 205, 301, 404, 511, 600, 713, 805, 901, 17, 250, 350, 450}
	budget := s.AppLookups / len(sources) * 2
	if budget < 8 {
		budget = 8
	}
	return []WorkloadSpec{
		{Kind: "bfs", BFSScale: 10, BFSEdgeFactor: 16, BFSSeed: KroneckerSeed,
			BFSSources: sources, BFSMaxVisits: budget, Work: workload.DefaultWorkCount},
		{Kind: "bloom", BloomBits: 1 << 20, BloomHashes: 4, BloomKeys: 4096,
			Lookups: s.AppLookups, Work: workload.DefaultWorkCount},
		{Kind: "memcached", MCItems: 4096, MCValueLines: 4,
			Lookups: s.AppLookups, Work: workload.DefaultWorkCount},
	}
}

// Fig10 — the application case studies: one- and eight-core runs of
// BFS, Bloom filter and Memcached under both mechanisms at 1 us, with
// the 4-read microbenchmark alongside for comparison (§V-D). Four
// tables are returned, mirroring the four sub-figures.
func (s Suite) Fig10() []*stats.Table {
	configs := []struct {
		id    string
		title string
		cores int
		mech  string
	}{
		{"fig10a", "1-core prefetch-based", 1, "prefetch"},
		{"fig10b", "1-core software queues", 1, "swqueue"},
		{"fig10c", "8-core prefetch-based", 8, "prefetch"},
		{"fig10d", "8-core software queues", 8, "swqueue"},
	}
	apps := s.appSpecs()
	ub4 := s.ubenchSpec(4, workload.DefaultWorkCount)
	var tables []*stats.Table
	var cells []pendingCell
	for _, c := range configs {
		t := &stats.Table{
			ID:     c.id,
			Title:  c.title + " application performance at 1us",
			XLabel: "threads per core",
			YLabel: "normalized performance (vs 1-core DRAM baseline)",
		}
		cfg := s.Base.WithCores(c.cores)
		wls := append(append([]WorkloadSpec{}, apps...), ub4)
		for _, wl := range wls {
			base := s.exec(dramCell(cfg, wl))
			series := t.AddSeries(wl.Name())
			// The microbenchmark comparison point never uses replay (it
			// has no record/replay methodology in the paper).
			replay := s.UseReplay && wl.Kind != "ubench"
			for _, n := range s.Threads {
				var run *Future
				if c.mech == "prefetch" {
					run = s.exec(prefetchCell(cfg, wl, n, replay))
				} else {
					run = s.exec(swqueueCell(cfg, wl, n, replay))
				}
				cells = append(cells, pendingCell{series: series, x: float64(n), run: run, base: base, diag: true})
			}
		}
		tables = append(tables, t)
	}
	resolve(cells)
	return tables
}

// Experiment is one named step of a sweep plan: the experiment ID plus
// a closure producing its table(s). Surfacing the plan (instead of one
// monolithic All) lets the CLI report per-table progress and lets the
// report layer know what ran.
type Experiment struct {
	ID  string
	Run func() []*stats.Table
}

// one adapts a single-table experiment method into a plan step.
func one(id string, f func() *stats.Table) Experiment {
	return Experiment{ID: id, Run: func() []*stats.Table { return []*stats.Table{f()} }}
}

// PaperPlan returns every paper experiment (figures + ablations) in
// paper order as named plan steps.
func (s Suite) PaperPlan() []Experiment {
	return []Experiment{
		one("fig2", s.Fig2),
		one("fig3", s.Fig3),
		one("fig4", s.Fig4),
		one("fig5", s.Fig5),
		one("fig6", s.Fig6),
		one("fig7", s.Fig7),
		one("fig8", s.Fig8),
		one("fig9", s.Fig9),
		{ID: "fig10", Run: s.Fig10},
		one("ablation-lfb", s.AblationLFB),
		one("ablation-chipq", s.AblationChipQueue),
		one("ablation-rule", s.AblationRule),
		one("ablation-switch", s.AblationSwitchCost),
		one("ablation-swqopts", s.AblationSWQOpts),
	}
}

// RunPlan executes the plan steps in order, invoking step (when
// non-nil) before each one with the step index and ID, and returns the
// concatenated tables.
func RunPlan(plan []Experiment, step func(i int, id string)) []*stats.Table {
	var tables []*stats.Table
	for i, e := range plan {
		if step != nil {
			step(i, e.ID)
		}
		tables = append(tables, e.Run()...)
	}
	return tables
}

// All runs every figure and returns the tables in paper order.
func (s Suite) All() []*stats.Table {
	return RunPlan(s.PaperPlan(), nil)
}
