package experiments

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func attribSuite() Suite {
	s := Quick()
	s.Iterations = 300
	s.AppLookups = 100
	s.Threads = []int{1, 4}
	s.Base.Attribution = true
	return s
}

// TestAttributionParallelByteIdentical extends the determinism gate to
// latency attribution: a -attrib sweep (with the flight recorder also
// on, so the per-window phase columns are exercised) must produce
// byte-identical reports serially and under a worker pool. This is
// what lets -attrib ride the parallel path and the result cache.
func TestAttributionParallelByteIdentical(t *testing.T) {
	run := func(workers int) []byte {
		s := attribSuite()
		s.Base.MetricsWindow = 10 * sim.Microsecond
		if workers > 0 {
			s.Exec = NewExec(workers)
			defer s.Exec.Close()
		}
		b, err := s.Report(RunPlan(PlanFor(s, "3"), nil)).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	base := run(0) // direct serial path, no executor
	for _, want := range []string{`"attribution"`, `"attrib"`, `"phase_names"`, `"queue_wait"`} {
		if !bytes.Contains(base, []byte(want)) {
			t.Fatalf("attribution sweep report lacks %s", want)
		}
	}
	for _, workers := range []int{1, 4} {
		if got := run(workers); !bytes.Equal(got, base) {
			t.Errorf("parallel=%d attribution report differs from serial (%d vs %d bytes)",
				workers, len(got), len(base))
		}
	}
}

// TestAttributionChangesOnlyItsOwnSection pins the observational
// contract at the artifact level: a sweep with attribution enabled,
// after deleting the attribution block and every per-cell attrib
// entry, is byte-identical to the same sweep without attribution. No
// measurement, diagnostic, or formatting byte moves.
func TestAttributionChangesOnlyItsOwnSection(t *testing.T) {
	plain := attribSuite()
	plain.Base.Attribution = false
	plainRep := plain.Report(RunPlan(PlanFor(plain, "3"), nil))

	with := attribSuite()
	withRep := with.Report(RunPlan(PlanFor(with, "3"), nil))
	if err := withRep.Validate(); err != nil {
		t.Fatal(err)
	}
	if withRep.Attribution == nil {
		t.Fatal("attribution sweep produced no attribution block")
	}
	cells := 0
	for _, tb := range withRep.Tables {
		for _, sr := range tb.Series {
			for _, a := range sr.Attrib {
				if a == nil {
					continue
				}
				cells++
				if a.Mismatches != 0 {
					t.Errorf("cell %q: %d attribution mismatches", a.Label, a.Mismatches)
				}
			}
			sr.Attrib = nil
		}
	}
	if cells == 0 {
		t.Fatal("attribution sweep attributed no cells")
	}
	withRep.Attribution = nil

	got, err := withRep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want, err := plainRep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("stripped attribution report differs from plain report (%d vs %d bytes)",
			len(got), len(want))
	}
}
