package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// parSuite is a reduced sweep that still exercises every figure and
// ablation — small enough to run the full paper plan several times.
func parSuite() Suite {
	s := Quick()
	s.Iterations = 300
	s.AppLookups = 100
	s.Threads = []int{1, 2, 4}
	return s
}

// encodePlan runs the full paper plan under the given executor and
// returns the canonical report bytes.
func encodePlan(t *testing.T, s Suite) []byte {
	t.Helper()
	b, err := s.Report(RunPlan(s.PaperPlan(), nil)).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelByteIdentical is the subsystem's core guarantee: the
// same suite produces byte-identical reports with no executor and
// with pools of 1, 4 and 8 workers.
func TestParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper plan at three worker counts")
	}
	base := encodePlan(t, parSuite())
	for _, workers := range []int{1, 4, 8} {
		s := parSuite()
		s.Exec = NewExec(workers)
		got := encodePlan(t, s)
		s.Exec.Close()
		if !bytes.Equal(got, base) {
			t.Errorf("parallel=%d report differs from serial report (%d vs %d bytes)",
				workers, len(got), len(base))
		}
	}
}

// TestExecDeduplicates: the paper plan re-runs many identical cells
// (shared DRAM baselines above all); with an executor attached they
// must be computed once and served from the store afterwards.
func TestExecDeduplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full paper plan")
	}
	s := parSuite()
	s.Exec = NewExec(4)
	defer s.Exec.Close()
	encodePlan(t, s)
	cs := s.Exec.CacheStats()
	es := s.Exec.Stats()
	if cs.Misses == 0 {
		t.Fatal("no cells computed")
	}
	if es.Dedup == 0 {
		t.Error("no deduplicated submissions — baseline deduplication is not working")
	}
	t.Logf("distinct cells %d (computed %d), deduplicated submissions %d", es.Cells, cs.Misses, es.Dedup)
}

// TestWorkloadSpecNames pins the contract Fig10 relies on: a spec's
// Name (used for series labels without building the workload) must
// equal the built workload's Name.
func TestWorkloadSpecNames(t *testing.T) {
	s := Quick()
	specs := append(s.appSpecs(),
		s.ubenchSpec(1, workload.DefaultWorkCount),
		s.ubenchSpec(4, 500),
		WorkloadSpec{Kind: "ubench", Iters: 100, Work: 200, Reads: 2, Writes: 1},
		WorkloadSpec{Kind: "ptrchase", ChaseNodes: 64, Iters: 100, Work: 200},
	)
	for _, spec := range specs {
		if got, want := spec.Name(), spec.Build().Name(); got != want {
			t.Errorf("spec %q Name() = %q, built Name() = %q", spec.Kind, got, want)
		}
	}
}

// TestCellKeyDiscriminates: distinct parameterizations must never
// collide, and the trace recorder must not affect the key.
func TestCellKeyDiscriminates(t *testing.T) {
	s := Quick()
	wl := s.ubenchSpec(1, 500)
	base := dramCell(s.Base, wl)
	seen := map[string]string{}
	add := func(label string, c CellSpec) {
		k := c.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision between %s and %s", prev, label)
		}
		seen[k] = label
	}
	add("dram", base)
	add("ondemand", onDemandCell(s.Base, wl))
	add("prefetch t1", prefetchCell(s.Base, wl, 1, false))
	add("prefetch t2", prefetchCell(s.Base, wl, 2, false))
	add("prefetch t2 replay", prefetchCell(s.Base, wl, 2, true))
	add("swqueue t2", swqueueCell(s.Base, wl, 2, false))
	add("dram 2c", dramCell(s.Base.WithCores(2), wl))
	add("dram work=501", dramCell(s.Base, s.ubenchSpec(1, 501)))
	if base.Key() != dramCell(s.Base, s.ubenchSpec(1, 500)).Key() {
		t.Error("identical cells produced different keys")
	}
}

// TestPlanFor spot-checks the shared id resolver used by the CLI and
// the server.
func TestPlanFor(t *testing.T) {
	s := Quick()
	for _, id := range []string{"2", "fig9", "10c", "lfb", "ext-tail", "faults"} {
		if PlanFor(s, id) == nil {
			t.Errorf("PlanFor(%q) = nil, want a plan", id)
		}
	}
	if PlanFor(s, "fig99") != nil {
		t.Error("PlanFor accepted an unknown id")
	}
	if got := PlanFor(s, "7")[0].ID; got != "fig7" {
		t.Errorf("PlanFor(7) ID = %q", got)
	}
}

func ExampleSuite_parallel() {
	s := Quick()
	s.Iterations = 200
	s.Threads = []int{1, 2}
	s.Exec = NewExec(4)
	defer s.Exec.Close()
	tb := s.Fig2()
	fmt.Println(tb.ID, len(tb.Series) > 0)
	// Output: fig2 true
}

// TestMetricsParallelByteIdentical extends the identity gate to the
// flight recorder: a -metrics sweep must produce byte-identical
// reports serially and under a worker pool, including every windowed
// time series. This is what lets -metrics ride the parallel path
// instead of forcing serial execution the way -trace does.
func TestMetricsParallelByteIdentical(t *testing.T) {
	mkSuite := func() Suite {
		s := Quick()
		s.Iterations = 300
		s.AppLookups = 100
		s.Threads = []int{1, 4}
		s.Base.MetricsWindow = 10 * sim.Microsecond
		return s
	}
	run := func(workers int) []byte {
		s := mkSuite()
		if workers > 0 {
			s.Exec = NewExec(workers)
			defer s.Exec.Close()
		}
		b, err := s.Report(RunPlan(PlanFor(s, "3"), nil)).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	base := run(0) // direct serial path, no executor
	if !bytes.Contains(base, []byte(`"timeseries"`)) || !bytes.Contains(base, []byte(`"metrics"`)) {
		t.Fatal("metrics sweep produced a report without time series")
	}
	for _, workers := range []int{1, 4} {
		if got := run(workers); !bytes.Equal(got, base) {
			t.Errorf("parallel=%d metrics report differs from serial (%d vs %d bytes)",
				workers, len(got), len(base))
		}
	}
}

// TestCellKeyMetricsDiscrimination: the metrics window is part of the
// cell identity (a recorded run computes more), but the sink — a live
// streaming destination — must not be, or served jobs could never
// share cache entries with CLI runs.
func TestCellKeyMetricsDiscrimination(t *testing.T) {
	s := Quick()
	wl := s.ubenchSpec(1, 500)
	plain := prefetchCell(s.Base, wl, 2, false)

	withWindow := s.Base
	withWindow.MetricsWindow = 10 * sim.Microsecond
	rec := prefetchCell(withWindow, wl, 2, false)
	if plain.Key() == rec.Key() {
		t.Error("metrics window must change the cell key")
	}

	withSink := withWindow
	withSink.MetricsSink = &nullSink{}
	sunk := prefetchCell(withSink, wl, 2, false)
	if rec.Key() != sunk.Key() {
		t.Error("metrics sink must not change the cell key")
	}
}

type nullSink struct{}

func (nullSink) PublishWindow(telemetry.WindowEvent) {}
