package experiments

import (
	"bytes"
	"testing"

	"repro/internal/stats"
)

// tinyReportSuite keeps the determinism test fast: two thread counts,
// few iterations.
func tinyReportSuite() Suite {
	s := Quick()
	s.Iterations = 200
	s.AppLookups = 40
	s.Threads = []int{1, 4}
	return s
}

// TestReportDeterministic is the reproducibility acceptance check: the
// same seed and flags must produce a byte-identical JSON report.
func TestReportDeterministic(t *testing.T) {
	s := tinyReportSuite()
	a, err := s.Report([]*stats.Table{s.Fig3()}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Report([]*stats.Table{s.Fig3()}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs produced different report bytes")
	}
}

func TestReportValidatesAndStampsSweep(t *testing.T) {
	s := tinyReportSuite()
	r := s.Report([]*stats.Table{s.Fig3()})
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if !r.Sweep.Quick || r.Sweep.Iterations != 200 || r.Sweep.AppLookups != 40 {
		t.Fatalf("sweep stamp = %+v", r.Sweep)
	}
	if len(r.Sweep.Threads) != 2 || r.Sweep.LatenciesUs[0] != 1 {
		t.Fatalf("sweep stamp = %+v", r.Sweep)
	}
	if r.Sweep.KroneckerSeed != KroneckerSeed {
		t.Fatalf("seed = %d", r.Sweep.KroneckerSeed)
	}
	if r.Platform.LFBPerCore != s.Base.LFBPerCore {
		t.Fatalf("platform stamp = %+v", r.Platform)
	}
	// Every measured cell of fig3 must carry its run diagnostics.
	fig3 := r.Table("fig3")
	if fig3 == nil {
		t.Fatal("fig3 table missing from report")
	}
	for _, series := range fig3.Series {
		if len(series.Diags) != len(series.X) {
			t.Fatalf("series %q: %d diags for %d cells", series.Label, len(series.Diags), len(series.X))
		}
		for i, d := range series.Diags {
			if d == nil || d.Accesses == 0 || d.SimEvents == 0 {
				t.Fatalf("series %q cell %d has empty diagnostics: %+v", series.Label, i, d)
			}
		}
	}
}

func TestRunPlanStepsInOrder(t *testing.T) {
	s := tinyReportSuite()
	var ids []string
	plan := s.PaperPlan()[:2]
	tables := RunPlan(plan, func(i int, id string) { ids = append(ids, id) })
	if len(tables) != 2 || tables[0].ID != "fig2" || tables[1].ID != "fig3" {
		t.Fatalf("tables = %v", tables)
	}
	if len(ids) != 2 || ids[0] != "fig2" || ids[1] != "fig3" {
		t.Fatalf("step callbacks = %v", ids)
	}
}
