package experiments

import (
	"repro/internal/attrib"
	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Report packages a sweep's tables as a machine-readable run report:
// the JSON artifact `killerusec -json` writes and `kurec check`
// validates, claim-checks, and diffs. The report stamps the full
// parameterization (suite fields plus the constants the experiment
// code bakes in), the platform's Table I constants, and the build
// environment, so every artifact is self-describing.
func (s Suite) Report(tables []*stats.Table) *report.Report {
	latUs := make([]float64, len(latencies))
	for i, l := range latencies {
		latUs[i] = l.Microseconds()
	}
	var ts *report.TimeseriesMeta
	if s.Base.MetricsWindow > 0 {
		ts = &report.TimeseriesMeta{
			Version:    report.TimeseriesVersion,
			WindowUs:   s.Base.MetricsWindow.Microseconds(),
			MaxWindows: telemetry.EffectiveMaxWindows(s.Base.MetricsMaxWindows),
		}
	}
	var at *report.AttributionMeta
	if s.Base.Attribution {
		at = &report.AttributionMeta{
			Version: report.AttributionVersion,
			Phases:  attrib.Names(),
		}
	}
	// The cluster block is stamped iff some table carries fleet
	// summaries, so fleet-free sweeps stay byte-identical to the
	// pre-cluster schema.
	var cl *report.ClusterMeta
	for _, t := range tables {
		for _, sr := range t.Series {
			if sr.HasFleet() {
				cl = &report.ClusterMeta{
					Version:  report.ClusterVersion,
					Policies: cluster.Policies(),
					Shapes:   []string{cluster.ShapePoisson, cluster.ShapeBursty, cluster.ShapeSaturate},
				}
			}
		}
	}
	return &report.Report{
		Schema:   report.SchemaName,
		Version:  report.SchemaVersion,
		Tool:     "killerusec",
		Build:    report.CurrentBuild(),
		Platform: report.PlatformFrom(s.Base),
		Sweep: report.Sweep{
			Quick:         s.Quick,
			Iterations:    s.Iterations,
			AppLookups:    s.AppLookups,
			Threads:       append([]int(nil), s.Threads...),
			UseReplay:     s.UseReplay,
			LatenciesUs:   latUs,
			WorkCounts:    append([]int(nil), fig2WorkCounts...),
			MLPLevels:     append([]int(nil), mlpLevels...),
			KroneckerSeed: KroneckerSeed,
		},
		Timeseries:  ts,
		Attribution: at,
		Cluster:     cl,
		Tables:      report.FromTables(tables),
	}
}
