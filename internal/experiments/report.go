package experiments

import (
	"repro/internal/report"
	"repro/internal/stats"
)

// Report packages a sweep's tables as a machine-readable run report:
// the JSON artifact `killerusec -json` writes and `kurec check`
// validates, claim-checks, and diffs. The report stamps the full
// parameterization (suite fields plus the constants the experiment
// code bakes in), the platform's Table I constants, and the build
// environment, so every artifact is self-describing.
func (s Suite) Report(tables []*stats.Table) *report.Report {
	latUs := make([]float64, len(latencies))
	for i, l := range latencies {
		latUs[i] = l.Microseconds()
	}
	return &report.Report{
		Schema:   report.SchemaName,
		Version:  report.SchemaVersion,
		Tool:     "killerusec",
		Build:    report.CurrentBuild(),
		Platform: report.PlatformFrom(s.Base),
		Sweep: report.Sweep{
			Quick:         s.Quick,
			Iterations:    s.Iterations,
			AppLookups:    s.AppLookups,
			Threads:       append([]int(nil), s.Threads...),
			UseReplay:     s.UseReplay,
			LatenciesUs:   latUs,
			WorkCounts:    append([]int(nil), fig2WorkCounts...),
			MLPLevels:     append([]int(nil), mlpLevels...),
			KroneckerSeed: KroneckerSeed,
		},
		Tables: report.FromTables(tables),
	}
}
