package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// clusterSeed fixes the fleet arrival timeline, key stream, and
// weighted-router draws; like KroneckerSeed it is part of a run's
// parameterization.
const clusterSeed = 20180610

// ClusterSpec is the value description of one fleet cell, embedded in
// CellSpec so cluster runs ride the same content-addressed cache and
// worker pool as every other cell. The zero value means "not a
// cluster cell".
type ClusterSpec struct {
	Instances int
	Backend   string // per-instance mechanism: prefetch, swqueue, ondemand
	Policy    string
	Shape     string

	Workers    int
	ValueLines int
	WorkInstr  int
	Items      int
	ValueSkew  bool

	Requests   int
	RatePerSec float64
	Rho        float64
	Seed       uint64

	// Shards is the worker-goroutine count for one fleet cell's engine
	// advances (cluster.Config.Shards). It is an execution knob with no
	// effect on results — the sharded driver is byte-deterministic — so
	// CellSpec.Key zeroes it: a cached serial result answers a sharded
	// request and vice versa.
	Shards int
}

// runCluster executes one fleet cell and packages the summary as a
// core.Result so it flows through the executor, the cache, and the
// report layer like any single-host measurement.
func runCluster(c CellSpec) (core.Result, error) {
	cs := c.Cluster
	sum, err := cluster.Run(cluster.Config{
		Base:       c.Config,
		Instances:  cs.Instances,
		Mech:       cs.Backend,
		Policy:     cs.Policy,
		Shape:      cs.Shape,
		Workers:    cs.Workers,
		ValueLines: cs.ValueLines,
		WorkInstr:  cs.WorkInstr,
		Items:      cs.Items,
		ValueSkew:  cs.ValueSkew,
		Requests:   cs.Requests,
		RatePerSec: cs.RatePerSec,
		Rho:        cs.Rho,
		Seed:       cs.Seed,
		Shards:     cs.Shards,
	})
	if err != nil {
		return core.Result{}, err
	}
	res := core.Result{
		Measurement: stats.Measurement{
			Label: fmt.Sprintf("cluster/%s n=%d %s %s lat=%v rho=%.2f",
				cs.Backend, cs.Instances, cs.Policy, cs.Shape, c.Config.DeviceLatency, cs.Rho),
			Iterations:     cs.Requests,
			Accesses:       int(sum.Completed),
			WorkInstr:      float64(sum.Completed) * float64(cs.WorkInstr),
			ElapsedSeconds: sum.ElapsedSeconds,
			AccessP50Ns:    sum.P50Ns,
			AccessP99Ns:    sum.P99Ns,
			AccessP999Ns:   sum.P999Ns,
		},
		Fleet: sum,
	}
	return res, nil
}

// fleetSpec parameterizes the shared shape of the ExpCluster cells.
func (s Suite) fleetSpec(backend, policy, shape string, rho, rate float64) CellSpec {
	requests, instances := 9000, 6
	if s.Quick {
		requests, instances = 3000, 4
	}
	return CellSpec{
		Mech:   "cluster",
		Config: s.Base,
		Cluster: ClusterSpec{
			Instances:  instances,
			Backend:    backend,
			Policy:     policy,
			Shape:      shape,
			Workers:    16,
			ValueLines: 4,
			WorkInstr:  100,
			Items:      4096,
			ValueSkew:  true,
			Requests:   requests,
			RatePerSec: rate,
			Rho:        rho,
			Seed:       clusterSeed,
			Shards:     s.FleetShards,
		},
	}
}

// fleetCapacity measures the fleet's intrinsic service rate for one
// backend: a saturate-shape probe (the whole batch offered at once)
// through the normal cell path, so the probe is cached and the rates
// derived from it are deterministic.
func (s Suite) fleetCapacity(backend string) float64 {
	probe := s.fleetSpec(backend, cluster.PolicyRoundRobin, cluster.ShapeSaturate, 0, 0)
	probe.Cluster.Requests = probe.Cluster.Requests / 2
	r := s.runCell(probe)
	return r.Fleet.CompletedPerSec
}

// fleetRhos is the offered-load sweep of the policy and shape tables,
// as fractions of measured fleet capacity.
func fleetRhos(quick bool) []float64 {
	if quick {
		return []float64{0.5, 0.9}
	}
	return []float64{0.5, 0.75, 0.9}
}

// fleetMechLoads is the offered-load sweep of the mechanism table,
// relative to the prefetch fleet's capacity at the long latency — it
// deliberately crosses 1.0 so the prefetch fleet is driven past its
// LFB-capped knee while the SWQ fleet still has headroom.
var fleetMechLoads = []float64{0.5, 0.9, 1.4, 1.8}

// ExpCluster runs the fleet simulations: routing policies and arrival
// shapes against fleet-level p99 at swept load, and the two paper
// mechanisms as fleet backends at a long device latency. Capacity
// probes are adaptive (the offered rates depend on their results), so
// they run first through the synchronous cached path; the swept cells
// then all submit up front and resolve in program order, keeping the
// tables byte-identical at any worker count.
func (s Suite) ExpCluster() []*stats.Table {
	policies := &stats.Table{
		ID:     "cluster-policies",
		Title:  "Fleet p99 vs offered load by routing policy (open-loop poisson arrivals)",
		XLabel: "offered load (fraction of fleet capacity)",
		YLabel: "fleet p99 end-to-end latency, us",
	}
	shapes := &stats.Table{
		ID:     "cluster-shapes",
		Title:  "Fleet p99 vs offered load by arrival shape (least-outstanding routing)",
		XLabel: "offered load (fraction of fleet capacity)",
		YLabel: "fleet p99 end-to-end latency, us",
	}
	mechs := &stats.Table{
		ID:     "cluster-mechs",
		Title:  "Load absorbed per fleet by backend mechanism at 4us device latency",
		XLabel: "offered load (fraction of prefetch fleet capacity)",
		YLabel: "completion rate / offered rate",
	}

	// Policy and shape sweeps: prefetch backends at the default 1us
	// device, loads set by the capacity probe.
	cap1 := s.fleetCapacity("prefetch")
	type fleetCell struct {
		series *stats.Series
		x      float64
		fut    *Future
	}
	var cells []fleetCell
	add := func(t *stats.Table, label string, x float64, spec CellSpec) {
		sr := t.FindSeries(label)
		if sr == nil {
			sr = t.AddSeries(label)
		}
		cells = append(cells, fleetCell{series: sr, x: x, fut: s.exec(spec)})
	}
	for _, policy := range cluster.Policies() {
		for _, rho := range fleetRhos(s.Quick) {
			add(policies, policy, rho, s.fleetSpec("prefetch", policy, cluster.ShapePoisson, rho, rho*cap1))
		}
	}
	for _, shape := range []string{cluster.ShapePoisson, cluster.ShapeBursty} {
		for _, rho := range fleetRhos(s.Quick) {
			add(shapes, shape, rho, s.fleetSpec("prefetch", cluster.PolicyLeastOutstanding, shape, rho, rho*cap1))
		}
	}

	// Mechanism sweep at the long latency: the prefetch fleet's
	// capacity shrinks with latency (LFB-bound), the SWQ fleet's does
	// not (core-overhead-bound), so the same absolute rates separate
	// them. x is relative to the prefetch fleet's own capacity.
	long := s
	long.Base = s.Base.WithLatency(4 * sim.Microsecond)
	cap4 := long.fleetCapacity("prefetch")
	for _, backend := range []string{"prefetch", "swqueue"} {
		for _, load := range fleetMechLoads {
			spec := long.fleetSpec(backend, cluster.PolicyLeastOutstanding, cluster.ShapePoisson, load, load*cap4)
			add(mechs, backend, load, spec)
		}
	}

	for _, c := range cells {
		r := must(c.fut.Result())
		f := r.Fleet
		var y float64
		if f.OfferedPerSec > 0 {
			if c.series.Label == "prefetch" || c.series.Label == "swqueue" {
				y = f.CompletedPerSec / f.OfferedPerSec
			} else {
				y = f.P99Ns / 1000
			}
		}
		c.series.Add(c.x, y)
		c.series.AttachFleet(f)
	}

	pol99 := func(label string, rho float64) float64 {
		return policies.FindSeries(label).YAt(rho)
	}
	policies.Note("at rho=0.9, least-outstanding p99 %.2fus vs round-robin %.2fus: adaptive routing drains the instance that drew a run of fat values",
		pol99(cluster.PolicyLeastOutstanding, 0.9), pol99(cluster.PolicyRoundRobin, 0.9))
	shapes.Note("the bursty shape offers the same mean rate compressed into half-duty on-windows; its p99 at rho=0.9 is %.1fx the poisson tail",
		shapes.FindSeries(cluster.ShapeBursty).YAt(0.9)/shapes.FindSeries(cluster.ShapePoisson).YAt(0.9))
	mechs.Note("past the prefetch fleet's LFB-capped knee (x>1) the SWQ fleet keeps absorbing: per-descriptor core overhead, not the 10-entry LFB, is its only cap")
	return []*stats.Table{policies, shapes, mechs}
}

// FleetPlan returns the cluster-scale experiments as named plan steps.
func (s Suite) FleetPlan() []Experiment {
	return []Experiment{{ID: "cluster", Run: s.ExpCluster}}
}
