package experiments

import "testing"

// Every registry entry must resolve through PlanFor — by canonical id
// and by every alias — to a plan whose step id matches the entry, and
// carry a non-empty description for the -plans listing.
func TestPlanRegistryResolves(t *testing.T) {
	s := Quick()
	infos := Plans()
	if len(infos) == 0 {
		t.Fatal("empty plan registry")
	}
	seen := map[string]bool{}
	for _, p := range infos {
		if p.Desc == "" {
			t.Errorf("plan %s has no description", p.ID)
		}
		for _, id := range append([]string{p.ID}, p.Aliases...) {
			if seen[id] {
				t.Errorf("id %q registered twice", id)
			}
			seen[id] = true
			plan := PlanFor(s, id)
			if len(plan) == 0 {
				t.Errorf("PlanFor(%q) resolved to nothing", id)
				continue
			}
			for _, step := range plan {
				if step.ID == "" || step.Run == nil {
					t.Errorf("PlanFor(%q) produced a malformed step %+v", id, step)
				}
			}
		}
	}
	if PlanFor(s, "no-such-experiment") != nil {
		t.Error("unknown id resolved to a plan")
	}
	// The ids the families hand out must stay resolvable individually.
	for _, want := range []string{"fig2", "cluster", "ext-faults", "ablation-lfb"} {
		if !seen[want] {
			t.Errorf("registry lost id %q", want)
		}
	}
}

// The fleet plan must expose the cluster experiment under both its
// canonical id and the CLI alias.
func TestFleetPlanMatchesRegistry(t *testing.T) {
	s := Quick()
	plan := s.FleetPlan()
	if len(plan) != 1 || plan[0].ID != "cluster" {
		t.Fatalf("FleetPlan = %+v, want one step with id cluster", plan)
	}
	for _, alias := range []string{"cluster", "fleet"} {
		if p := PlanFor(s, alias); len(p) != 1 || p[0].ID != "cluster" {
			t.Fatalf("PlanFor(%q) = %+v, want the cluster step", alias, p)
		}
	}
}
