package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationLFB tests the paper's central implication (§V-B): "If the
// per-core LFB limit of 10 could be lifted, given enough threads, even
// 4us-latency devices could match the performance of DRAM", with the
// provisioning rule "approximately 20 x expected-device-latency-in-
// microseconds" entries per core. The chip-level queue is raised out of
// the way so the per-core limit is isolated.
func (s Suite) AblationLFB() *stats.Table {
	t := &stats.Table{
		ID:     "ablation-lfb",
		Title:  "Lifting the per-core LFB limit (4us device, 100 threads)",
		XLabel: "LFBs per core",
		YLabel: "normalized work IPC (vs single-thread DRAM)",
	}
	wl := s.ubenchSpec(1, workload.DefaultWorkCount)
	threads := 100
	series := t.AddSeries("4us")
	var cells []pendingCell
	for _, lfb := range []int{10, 20, 40, 60, 80, 120} {
		cfg := s.Base.WithLatency(4 * sim.Microsecond)
		cfg.LFBPerCore = lfb
		cfg.ChipQueueMMIO = 4096 // isolate the per-core limit
		base := s.exec(dramCell(cfg, wl))
		run := s.exec(prefetchCell(cfg, wl, threads, false))
		cells = append(cells, pendingCell{series: series, x: float64(lfb), run: run, base: base})
	}
	resolve(cells)
	rule := 20 * 4 // 20 x latency-in-us
	t.Note("paper's rule sizes the 4us queue at %d entries; the curve should be near DRAM parity there", rule)
	return t
}

// AblationChipQueue tests the multicore implication: sizing the
// chip-level shared queue at "20 x latency-in-us x cores-per-chip"
// restores multicore prefetch scaling (§V-B).
func (s Suite) AblationChipQueue() *stats.Table {
	t := &stats.Table{
		ID:     "ablation-chipq",
		Title:  "Lifting the chip-level queue limit (1us device, 8 cores, 12 threads/core)",
		XLabel: "chip-level queue entries",
		YLabel: "normalized work IPC (vs single-core DRAM)",
	}
	wl := s.ubenchSpec(1, workload.DefaultWorkCount)
	stock := t.AddSeries("1us 8c (PCIe Gen2 x8)")
	fat := t.AddSeries("1us 8c (4x link bandwidth)")
	var cells []pendingCell
	for _, q := range []int{14, 28, 56, 112, 160, 224} {
		cfg := s.Base.WithCores(8)
		cfg.ChipQueueMMIO = q
		cfg.LFBPerCore = 20 // per-core rule for 1us
		base := s.exec(dramCell(cfg, wl))
		cells = append(cells, pendingCell{series: stock, x: float64(q),
			run: s.exec(prefetchCell(cfg, wl, 12, false)), base: base})

		// Eight cores at DRAM parity generate ~7.6 GB/s of MMIO
		// responses — above the Gen2 x8 wire itself. The paper's
		// suggestion to attach such devices to the memory interconnect
		// (§V-B) is modeled as a 4x-bandwidth link.
		cfg.PCIeBandwidth *= 4
		cells = append(cells, pendingCell{series: fat, x: float64(q),
			run: s.exec(prefetchCell(cfg, wl, 12, false)), base: base})
	}
	resolve(cells)
	t.Note("paper's rule sizes the chip queue at 20 x 1us x 8 cores = 160 entries")
	t.Note("on the stock link, queue sizing alone saturates the PCIe wire; a memory-interconnect-class link restores full scaling (§V-B)")
	return t
}

// AblationRule derives the paper's provisioning coefficient
// empirically. §V-B asserts: "Each microsecond of latency can be
// effectively hidden by 10-20 in-flight device accesses per core", so
// queues should hold "approximately 20 x expected-device-latency-in-
// microseconds". For each latency this ablation searches for the
// smallest per-core queue reaching 95% of DRAM parity (on an otherwise
// unconstrained platform) and reports entries-per-microsecond.
func (s Suite) AblationRule() *stats.Table {
	t := &stats.Table{
		ID:     "ablation-rule",
		Title:  "Deriving the queue-provisioning rule (entries for 95% of DRAM parity)",
		XLabel: "device latency (us)",
		YLabel: "required per-core queue entries",
	}
	entries := t.AddSeries("required entries")
	perUs := t.AddSeries("entries per microsecond")
	for _, lat := range []sim.Time{1 * sim.Microsecond, 2 * sim.Microsecond,
		4 * sim.Microsecond, 8 * sim.Microsecond} {
		target := 0.95

		// The search is adaptive — the next cell depends on the last
		// result — so cells run synchronously; with an executor attached
		// they still land in the result cache (revisited queue sizes
		// across the galloping and bisection phases are free).
		reach := func(lfb int) bool {
			cfg := s.Base.WithLatency(lat)
			cfg.LFBPerCore = lfb
			cfg.ChipQueueMMIO = 4096
			cfg.PCIeBandwidth *= 8 // keep the wire out of the way
			threads := lfb + lfb/2
			// Size the run so warm-up (one device latency) is noise:
			// every thread gets enough steady-state iterations.
			iters := s.Iterations
			if min := threads * 40; iters < min {
				iters = min
			}
			wl := WorkloadSpec{Kind: "ubench", Iters: iters, Work: workload.DefaultWorkCount, Reads: 1}
			base := s.runCell(dramCell(cfg, wl))
			r := s.runCell(prefetchCell(cfg, wl, threads, false))
			return r.NormalizedTo(base.Measurement) >= target
		}
		// Galloping + binary search over the queue size.
		lo, hi := 1, 2
		for !reach(hi) {
			lo, hi = hi, hi*2
			if hi > 1024 {
				break
			}
		}
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if reach(mid) {
				hi = mid
			} else {
				lo = mid
			}
		}
		us := lat.Microseconds()
		entries.Add(us, float64(hi))
		perUs.Add(us, float64(hi)/us)
	}
	t.Note("the paper's coefficient: 10-20 entries per microsecond of device latency (§V-B)")
	return t
}

// AblationSwitchCost sweeps the user-level context-switch cost: the
// original GNU Pth switched in ~2us, which would defeat the mechanism;
// the paper's optimized library reaches 20-50ns (§IV-B).
func (s Suite) AblationSwitchCost() *stats.Table {
	t := &stats.Table{
		ID:     "ablation-switch",
		Title:  "Context-switch cost sensitivity (1us device, prefetch, 10 threads)",
		XLabel: "context switch cost (ns)",
		YLabel: "normalized work IPC (vs single-thread DRAM)",
	}
	wl := s.ubenchSpec(1, workload.DefaultWorkCount)
	series := t.AddSeries("1us 10t")
	var cells []pendingCell
	for _, ctx := range []sim.Time{20 * sim.Nanosecond, 30 * sim.Nanosecond, 50 * sim.Nanosecond,
		100 * sim.Nanosecond, 200 * sim.Nanosecond, 500 * sim.Nanosecond, 2 * sim.Microsecond} {
		cfg := s.Base
		cfg.CtxSwitch = ctx
		base := s.exec(dramCell(cfg, wl))
		run := s.exec(prefetchCell(cfg, wl, 10, false))
		cells = append(cells, pendingCell{series: series, x: ctx.Nanoseconds(), run: run, base: base})
	}
	resolve(cells)
	t.Note("the unoptimized 2us Pth switch forfeits nearly all the benefit; 20-50ns preserves it (§IV-B)")
	return t
}

// AblationSWQOpts removes the two software-queue optimizations the
// paper calls strictly necessary (§III-A): the doorbell-request flag
// (without it every submission pays the MMIO doorbell) and burst
// descriptor reads (without them the fetcher reads one descriptor per
// DMA round trip).
func (s Suite) AblationSWQOpts() *stats.Table {
	t := &stats.Table{
		ID:     "ablation-swqopts",
		Title:  "Software-queue interface optimizations (1us device, 16 threads)",
		XLabel: "variant (1=full, 2=no doorbell flag, 3=no burst, 4=neither)",
		YLabel: "normalized work IPC (vs single-thread DRAM)",
	}
	wl := s.ubenchSpec(1, workload.DefaultWorkCount)
	series := t.AddSeries("1us 16t")
	variants := []struct {
		label    string
		noFlag   bool
		burstOne bool
	}{
		{"full", false, false},
		{"no-doorbell-flag", true, false},
		{"no-burst", false, true},
		{"neither", true, true},
	}
	// Submit every variant, then resolve in order: the per-variant notes
	// need each resolved value, so assembly is explicit here.
	pending := make([]struct{ base, run *Future }, len(variants))
	for i, v := range variants {
		cfg := s.Base
		cfg.SWQAlwaysDoorbell = v.noFlag
		if v.burstOne {
			cfg.FetchBurst = 1
		}
		pending[i].base = s.exec(dramCell(cfg, wl))
		pending[i].run = s.exec(swqueueCell(cfg, wl, 16, false))
	}
	for i, v := range variants {
		base := must(pending[i].base.Result())
		r := must(pending[i].run.Result())
		series.Add(float64(i+1), r.NormalizedTo(base.Measurement))
		t.Note("variant %d (%s): %.3f", i+1, v.label, r.NormalizedTo(base.Measurement))
	}
	return t
}

// TableI renders the paper's Table I, the taxonomy of latency-hiding
// mechanisms; it is documentation rather than measurement.
func TableI() string {
	return fmt.Sprint(
		"TABLE I: Common hardware and software latency-hiding mechanisms\n",
		"----------------------------------------------------------------\n",
		"Paradigm       HW Mechanisms                 SW Mechanisms\n",
		"Caching        On-chip caches,               OS page cache\n",
		"               prefetch buffers\n",
		"Bulk transfer  64-128B cache lines           Multi-KB transfers from\n",
		"                                             disk and network\n",
		"Overlapping    Super-scalar execution,       Kernel-mode context switch,\n",
		"               out-of-order execution,       user-mode context switch\n",
		"               branch speculation,\n",
		"               prefetching,\n",
		"               hardware multithreading\n")
}
