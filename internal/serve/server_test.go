package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

// tinyRequest is a run request small enough to execute for real in a
// unit test (one figure, reduced sweep).
func tinyRequest() RunRequest {
	return RunRequest{
		Suite:       "quick",
		Experiments: []string{"2"},
		Iterations:  100,
		Threads:     []int{1, 2},
	}
}

func post(t *testing.T, ts *httptest.Server, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// pollDone polls a job's status until it leaves the queue/run states.
func pollDone(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decode[Status](t, resp)
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Status{}
}

// TestEndToEnd drives the full happy path: enqueue, poll to
// completion, fetch the report — and checks the served bytes are
// identical to what the experiments package produces directly for the
// same request (the CLI/server identity guarantee).
func TestEndToEnd(t *testing.T) {
	srv, err := New(Config{Parallel: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := post(t, ts, tinyRequest())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	accepted := decode[map[string]string](t, resp)
	id := accepted["id"]
	if id == "" {
		t.Fatal("no job id in submit response")
	}

	st := pollDone(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("job state = %s (error %q), want done", st.State, st.Error)
	}
	if st.StepsDone != st.StepsTotal || st.StepsTotal == 0 {
		t.Fatalf("steps = %d/%d, want all done", st.StepsDone, st.StepsTotal)
	}
	if st.ReportURL == "" {
		t.Fatal("done job has no report URL")
	}

	rresp, err := http.Get(ts.URL + st.ReportURL)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d, want 200", rresp.StatusCode)
	}
	got, err := io.ReadAll(rresp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// The same request through the experiments package must produce
	// the same bytes.
	req := tinyRequest()
	suite, err := req.suite()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := req.plan(suite)
	if err != nil {
		t.Fatal(err)
	}
	want, err := suite.Report(experiments.RunPlan(plan, nil)).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("served report differs from direct report (%d vs %d bytes)", len(got), len(want))
	}

	// The metrics endpoint reflects the finished job.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		`kurecd_jobs{state="done"} 1`,
		"kurecd_queue_capacity 4",
		"kurecd_cache_misses_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestUnknownJobIs404(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/v1/runs/job-9999", "/v1/runs/job-9999/report"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestBadRequestsRejectedAtSubmit(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []RunRequest{
		{Suite: "publication"},                           // unknown suite
		{Suite: "quick", Experiments: []string{"fig99"}}, // unknown experiment
		{Suite: "quick", Threads: []int{0}},              // invalid sweep
	}
	for i, req := range cases {
		resp := post(t, ts, req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
}

// TestQueueBackpressure fills the queue behind a blocked runner and
// checks the next submission is answered 429 without being recorded.
func TestQueueBackpressure(t *testing.T) {
	srv, err := New(Config{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan string, 8)
	release := make(chan struct{})
	srv.run = func(j *job) {
		j.mu.Lock()
		j.state = StateRunning
		j.mu.Unlock()
		started <- j.id
		<-release
		j.mu.Lock()
		j.state = StateDone
		j.mu.Unlock()
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(release)

	// First job: picked up by the runner, which blocks.
	r1 := post(t, ts, tinyRequest())
	r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1 status = %d", r1.StatusCode)
	}
	<-started
	// Second job: sits in the queue (depth 1).
	r2 := post(t, ts, tinyRequest())
	r2.Body.Close()
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2 status = %d", r2.StatusCode)
	}
	// Third job: queue full -> 429 with Retry-After.
	r3 := post(t, ts, tinyRequest())
	body := decode[map[string]string](t, r3)
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3 status = %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if body["error"] == "" {
		t.Error("429 without error body")
	}
}

// TestGracefulDrain: during a drain, new submissions get 503, already
// queued jobs still finish, and Drain returns once the queue is dry.
func TestGracefulDrain(t *testing.T) {
	srv, err := New(Config{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan string, 8)
	release := make(chan struct{})
	srv.run = func(j *job) {
		j.mu.Lock()
		j.state = StateRunning
		j.mu.Unlock()
		started <- j.id
		<-release
		j.mu.Lock()
		j.state = StateDone
		j.mu.Unlock()
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One running (blocked) + one queued.
	r1 := post(t, ts, tinyRequest())
	r1.Body.Close()
	<-started
	r2 := post(t, ts, tinyRequest())
	id2 := decode[map[string]string](t, r2)["id"]

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	// Wait until the drain flag is visible, then check 503 + healthz.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		h := decode[map[string]string](t, resp)
		if h["status"] == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	r3 := post(t, ts, tinyRequest())
	r3.Body.Close()
	if r3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", r3.StatusCode)
	}

	// Unblock the jobs; the drain must complete and the queued job
	// must have run.
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + id2)
	if err != nil {
		t.Fatal(err)
	}
	st := decode[Status](t, resp)
	if st.State != StateDone {
		t.Fatalf("queued job state after drain = %s, want done", st.State)
	}
}

// TestFailedJobSurfacesError drives the real executeJob down its
// failure path (the request is corrupted after submit-time validation,
// standing in for any mid-run failure) and checks the job reports
// failed, carries the error, and answers the report endpoint with 409.
func TestFailedJobSurfacesError(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.run = func(j *job) {
		j.req.Suite = "corrupted-after-validation"
		srv.executeJob(j)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r := post(t, ts, tinyRequest())
	id := decode[map[string]string](t, r)["id"]
	st := pollDone(t, ts, id)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "unknown suite") {
		t.Errorf("error = %q, want the underlying failure", st.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("report of failed job = %d, want 409", resp.StatusCode)
	}
}

// --- PR 6: cancellation, readiness, journal recovery, warm resume ---

// cancelReq is a request big enough to still be running when the test
// cancels it, but whose cells are small enough to keep the cancel
// latency (one cell boundary) tiny.
func cancelReq() RunRequest {
	return RunRequest{
		Suite:       "quick",
		Experiments: []string{"2", "3", "7"},
		Iterations:  2000,
		Threads:     []int{1, 2, 4, 8},
	}
}

// TestCancelRunningJob cancels a job mid-sweep and asserts it lands in
// the terminal cancelled state within one cell boundary, visible via
// the status endpoint, with the report answering 409.
func TestCancelRunningJob(t *testing.T) {
	srv, err := New(Config{Parallel: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := post(t, ts, cancelReq())
	id := decode[map[string]string](t, resp)["id"]

	// Wait for the job to actually be running.
	deadline := time.Now().Add(30 * time.Second)
	for {
		sresp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decode[Status](t, sresp)
		if st.State == StateRunning {
			break
		}
		if st.State.terminal() {
			t.Fatalf("job reached %s before it could be cancelled; grow cancelReq", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	cancelAt := time.Now()
	creq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+id, nil)
	cresp, err := http.DefaultClient.Do(creq)
	if err != nil {
		t.Fatal(err)
	}
	st := decode[Status](t, cresp)
	if cresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d, want 202", cresp.StatusCode)
	}
	if !st.CancelRequested {
		t.Error("cancel response does not show cancel_requested")
	}

	final := pollTerminal(t, ts, id)
	elapsed := time.Since(cancelAt)
	if final.State != StateCancelled {
		t.Fatalf("state = %s (err %q), want cancelled", final.State, final.Error)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want < 2s (one cell boundary)", elapsed)
	}
	rresp, err := http.Get(ts.URL + "/v1/runs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Errorf("report of cancelled job = %d, want 409", rresp.StatusCode)
	}

	// Cancelling a terminal job answers 409.
	creq2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+id, nil)
	cresp2, err := http.DefaultClient.Do(creq2)
	if err != nil {
		t.Fatal(err)
	}
	cresp2.Body.Close()
	if cresp2.StatusCode != http.StatusConflict {
		t.Errorf("second cancel = %d, want 409", cresp2.StatusCode)
	}
}

// pollTerminal polls until the job reaches any terminal state.
func pollTerminal(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decode[Status](t, resp)
		if st.State.terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Status{}
}

// TestCancelQueuedJob: a job cancelled while waiting in the queue
// becomes cancelled immediately and the runner skips it entirely.
func TestCancelQueuedJob(t *testing.T) {
	srv, err := New(Config{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan string, 8)
	release := make(chan struct{})
	executed := make(chan string, 8)
	srv.run = func(j *job) {
		j.mu.Lock()
		if j.state != StateQueued {
			j.mu.Unlock()
			return // skipped: cancelled in queue
		}
		j.state = StateRunning
		j.mu.Unlock()
		executed <- j.id
		started <- j.id
		<-release
		j.mu.Lock()
		j.state = StateDone
		j.mu.Unlock()
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(release)

	r1 := post(t, ts, tinyRequest())
	r1.Body.Close()
	<-started
	r2 := post(t, ts, tinyRequest())
	id2 := decode[map[string]string](t, r2)["id"]

	creq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+id2, nil)
	cresp, err := http.DefaultClient.Do(creq)
	if err != nil {
		t.Fatal(err)
	}
	st := decode[Status](t, cresp)
	if st.State != StateCancelled {
		t.Fatalf("queued job after cancel = %s, want cancelled immediately", st.State)
	}
	select {
	case id := <-executed:
		if id == id2 {
			t.Error("runner executed a cancelled job")
		}
	default:
	}
}

// TestJobDeadline: a job whose timeout_seconds elapses mid-run fails
// with a deadline error at the next cell boundary.
func TestJobDeadline(t *testing.T) {
	srv, err := New(Config{Parallel: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := cancelReq()
	req.TimeoutSeconds = 0.05
	resp := post(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]
	st := pollTerminal(t, ts, id)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("error = %q, want a deadline message", st.Error)
	}
}

// TestBadTimeoutRejected: negative deadlines are submit-time 400s.
func TestBadTimeoutRejected(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := post(t, ts, RunRequest{Suite: "quick", TimeoutSeconds: -1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative timeout = %d, want 400", resp.StatusCode)
	}
}

// TestReadyz: ready while serving, 503 before boot completes and
// during a drain; /healthz stays liveness-only (200 while draining).
func TestReadyz(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, map[string]string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		return code, decode[map[string]string](t, resp)
	}

	if code, body := get("/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz = %d %v, want 200 ready", code, body)
	}

	// Before replay completes the server reports starting. New()
	// finishes replay before returning, so rewind the flag to assert
	// the contract the boot path relies on.
	srv.mu.Lock()
	srv.ready = false
	srv.mu.Unlock()
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body["status"] != "starting" {
		t.Fatalf("readyz before replay = %d %v, want 503 starting", code, body)
	}
	srv.mu.Lock()
	srv.ready = true
	srv.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("readyz during drain = %d %v, want 503 draining", code, body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || body["status"] != "draining" {
		t.Fatalf("healthz during drain = %d %v, want 200 draining (liveness only)", code, body)
	}
}

// TestRetryAfterAdaptive: with observed job durations, the 429
// Retry-After scales with recent duration x jobs ahead instead of the
// old hardcoded 5.
func TestRetryAfterAdaptive(t *testing.T) {
	srv, err := New(Config{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan string, 8)
	release := make(chan struct{})
	base := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	srv.now = func() time.Time { return base }
	srv.run = func(j *job) {
		j.mu.Lock()
		j.state = StateRunning
		j.started = base
		j.mu.Unlock()
		started <- j.id
		<-release
		j.mu.Lock()
		j.state = StateDone
		j.finished = base.Add(90 * time.Second) // every observed job "takes" 90s
		j.mu.Unlock()
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Complete one job so a duration is observed.
	r1 := post(t, ts, tinyRequest())
	r1.Body.Close()
	<-started
	release <- struct{}{}

	// Block the runner again, fill the queue, overflow it.
	r2 := post(t, ts, tinyRequest())
	r2.Body.Close()
	<-started
	r3 := post(t, ts, tinyRequest())
	r3.Body.Close()
	r4 := post(t, ts, tinyRequest())
	defer r4.Body.Close()
	if r4.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow = %d, want 429", r4.StatusCode)
	}
	// One queued + one running ahead, mean duration 90s -> 180s.
	if got := r4.Header.Get("Retry-After"); got != "180" {
		t.Errorf("Retry-After = %q, want 180 (90s mean x 2 jobs ahead)", got)
	}
	close(release)
}

// TestJournalRecovery exercises the full replay matrix in-process: a
// done job keeps its report, a running job is re-enqueued and re-run,
// a queued job is re-enqueued, and a cancel-requested job becomes
// cancelled — across a simulated process boundary (two servers over
// one journal).
func TestJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "kurecd.wal")

	srv1, err := New(Config{Parallel: 2, QueueDepth: 8, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	// Job 1 completes for real.
	r1 := post(t, ts1, tinyRequest())
	id1 := decode[map[string]string](t, r1)["id"]
	st1 := pollDone(t, ts1, id1)
	if st1.State != StateDone {
		t.Fatalf("job 1 = %s", st1.State)
	}
	rresp, err := http.Get(ts1.URL + st1.ReportURL)
	if err != nil {
		t.Fatal(err)
	}
	report1, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()

	// Swap in a blocking runner for the remaining jobs so they are
	// mid-flight when the "process" dies.
	started := make(chan string, 8)
	block := make(chan struct{})
	srv1.run = func(j *job) {
		j.mu.Lock()
		if j.state != StateQueued {
			j.mu.Unlock()
			return
		}
		j.state = StateRunning
		j.mu.Unlock()
		srv1.appendJournal(Entry{T: recStart, ID: j.id, At: srv1.now()})
		started <- j.id
		<-block // SIGKILL: never finishes
	}
	r2 := post(t, ts1, tinyRequest())
	id2 := decode[map[string]string](t, r2)["id"] // will be "running" at crash
	<-started
	r3 := post(t, ts1, tinyRequest())
	id3 := decode[map[string]string](t, r3)["id"] // queued at crash
	r4 := post(t, ts1, tinyRequest())
	id4 := decode[map[string]string](t, r4)["id"] // queued + cancel requested
	creq, _ := http.NewRequest(http.MethodDelete, ts1.URL+"/v1/runs/"+id4, nil)
	cresp, err := http.DefaultClient.Do(creq)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()

	// "Crash": abandon srv1 without draining (the runner goroutine
	// stays parked on block; the journal file is shared).
	ts1.Close()

	srv2, err := New(Config{Parallel: 2, QueueDepth: 8, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer close(block)

	// Done job: restored with byte-identical report, not re-run.
	st := pollDone(t, ts2, id1)
	if st.State != StateDone || st.Recovered {
		t.Fatalf("job 1 after replay = %+v, want done and not re-enqueued", st)
	}
	rresp2, err := http.Get(ts2.URL + "/v1/runs/" + id1 + "/report")
	if err != nil {
		t.Fatal(err)
	}
	report1b, _ := io.ReadAll(rresp2.Body)
	rresp2.Body.Close()
	if !bytes.Equal(report1, report1b) {
		t.Error("restored report differs from the original")
	}

	// Interrupted running job: re-enqueued, re-run, completes with a
	// report identical to job 1's (same request).
	st2 := pollDone(t, ts2, id2)
	if st2.State != StateDone {
		t.Fatalf("job 2 after replay = %s (err %q)", st2.State, st2.Error)
	}
	if !st2.Recovered {
		t.Error("re-run job not marked recovered")
	}
	// Queued job: also recovered and completed.
	st3 := pollDone(t, ts2, id3)
	if st3.State != StateDone || !st3.Recovered {
		t.Fatalf("job 3 after replay = %+v", st3)
	}
	// Cancel-requested job: honored, not re-run.
	st4 := pollTerminal(t, ts2, id4)
	if st4.State != StateCancelled {
		t.Fatalf("job 4 after replay = %s, want cancelled", st4.State)
	}

	// New submissions continue past the replayed id space.
	r5 := post(t, ts2, tinyRequest())
	id5 := decode[map[string]string](t, r5)["id"]
	if id5 != "job-0005" {
		t.Errorf("post-replay id = %s, want job-0005", id5)
	}
}

// TestWarmResumeFromDiskCache: a journal+cachedir restart re-runs an
// interrupted job warm — the resumed run's report is byte-identical
// and its status shows cache hits (only missing cells recompute).
func TestWarmResumeFromDiskCache(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "kurecd.wal")
	cachedir := filepath.Join(dir, "cache")

	srv1, err := New(Config{Parallel: 2, QueueDepth: 4, Journal: journal, CacheDir: cachedir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	r1 := post(t, ts1, tinyRequest())
	id := decode[map[string]string](t, r1)["id"]
	st := pollDone(t, ts1, id)
	if st.State != StateDone {
		t.Fatalf("first run = %s", st.State)
	}
	if st.CellsComputed == 0 {
		t.Fatalf("first run computed no cells: %+v", st)
	}
	rresp, err := http.Get(ts1.URL + st.ReportURL)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	ts1.Close()

	// Simulate a crash that lost the done record and the sidecar: the
	// job replays as interrupted and must be re-run — warm.
	b, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(b, []byte("\n")), []byte("\n"))
	trimmed := bytes.Join(lines[:len(lines)-1], []byte("\n")) // drop the done record
	if err := os.WriteFile(journal, append(trimmed, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(Config{Parallel: 2, QueueDepth: 4, Journal: journal, CacheDir: cachedir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	st2 := pollDone(t, ts2, id)
	if st2.State != StateDone || !st2.Recovered {
		t.Fatalf("resumed run = %+v, want done+recovered", st2)
	}
	if st2.CellsCached == 0 {
		t.Errorf("resumed run hit no cached cells: %+v", st2)
	}
	rresp2, err := http.Get(ts2.URL + "/v1/runs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rresp2.Body)
	rresp2.Body.Close()
	if !bytes.Equal(want, got) {
		t.Errorf("resumed report differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}
