package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

// tinyRequest is a run request small enough to execute for real in a
// unit test (one figure, reduced sweep).
func tinyRequest() RunRequest {
	return RunRequest{
		Suite:       "quick",
		Experiments: []string{"2"},
		Iterations:  100,
		Threads:     []int{1, 2},
	}
}

func post(t *testing.T, ts *httptest.Server, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// pollDone polls a job's status until it leaves the queue/run states.
func pollDone(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decode[Status](t, resp)
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Status{}
}

// TestEndToEnd drives the full happy path: enqueue, poll to
// completion, fetch the report — and checks the served bytes are
// identical to what the experiments package produces directly for the
// same request (the CLI/server identity guarantee).
func TestEndToEnd(t *testing.T) {
	srv, err := New(Config{Parallel: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := post(t, ts, tinyRequest())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	accepted := decode[map[string]string](t, resp)
	id := accepted["id"]
	if id == "" {
		t.Fatal("no job id in submit response")
	}

	st := pollDone(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("job state = %s (error %q), want done", st.State, st.Error)
	}
	if st.StepsDone != st.StepsTotal || st.StepsTotal == 0 {
		t.Fatalf("steps = %d/%d, want all done", st.StepsDone, st.StepsTotal)
	}
	if st.ReportURL == "" {
		t.Fatal("done job has no report URL")
	}

	rresp, err := http.Get(ts.URL + st.ReportURL)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d, want 200", rresp.StatusCode)
	}
	got, err := io.ReadAll(rresp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// The same request through the experiments package must produce
	// the same bytes.
	req := tinyRequest()
	suite, err := req.suite()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := req.plan(suite)
	if err != nil {
		t.Fatal(err)
	}
	want, err := suite.Report(experiments.RunPlan(plan, nil)).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("served report differs from direct report (%d vs %d bytes)", len(got), len(want))
	}

	// The metrics endpoint reflects the finished job.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		`kurecd_jobs{state="done"} 1`,
		"kurecd_queue_capacity 4",
		"kurecd_cache_misses_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestUnknownJobIs404(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/v1/runs/job-9999", "/v1/runs/job-9999/report"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestBadRequestsRejectedAtSubmit(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []RunRequest{
		{Suite: "publication"},                           // unknown suite
		{Suite: "quick", Experiments: []string{"fig99"}}, // unknown experiment
		{Suite: "quick", Threads: []int{0}},              // invalid sweep
	}
	for i, req := range cases {
		resp := post(t, ts, req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
}

// TestQueueBackpressure fills the queue behind a blocked runner and
// checks the next submission is answered 429 without being recorded.
func TestQueueBackpressure(t *testing.T) {
	srv, err := New(Config{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan string, 8)
	release := make(chan struct{})
	srv.run = func(j *job) {
		j.mu.Lock()
		j.state = StateRunning
		j.mu.Unlock()
		started <- j.id
		<-release
		j.mu.Lock()
		j.state = StateDone
		j.mu.Unlock()
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(release)

	// First job: picked up by the runner, which blocks.
	r1 := post(t, ts, tinyRequest())
	r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1 status = %d", r1.StatusCode)
	}
	<-started
	// Second job: sits in the queue (depth 1).
	r2 := post(t, ts, tinyRequest())
	r2.Body.Close()
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2 status = %d", r2.StatusCode)
	}
	// Third job: queue full -> 429 with Retry-After.
	r3 := post(t, ts, tinyRequest())
	body := decode[map[string]string](t, r3)
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3 status = %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if body["error"] == "" {
		t.Error("429 without error body")
	}
}

// TestGracefulDrain: during a drain, new submissions get 503, already
// queued jobs still finish, and Drain returns once the queue is dry.
func TestGracefulDrain(t *testing.T) {
	srv, err := New(Config{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan string, 8)
	release := make(chan struct{})
	srv.run = func(j *job) {
		j.mu.Lock()
		j.state = StateRunning
		j.mu.Unlock()
		started <- j.id
		<-release
		j.mu.Lock()
		j.state = StateDone
		j.mu.Unlock()
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One running (blocked) + one queued.
	r1 := post(t, ts, tinyRequest())
	r1.Body.Close()
	<-started
	r2 := post(t, ts, tinyRequest())
	id2 := decode[map[string]string](t, r2)["id"]

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	// Wait until the drain flag is visible, then check 503 + healthz.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		h := decode[map[string]string](t, resp)
		if h["status"] == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	r3 := post(t, ts, tinyRequest())
	r3.Body.Close()
	if r3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", r3.StatusCode)
	}

	// Unblock the jobs; the drain must complete and the queued job
	// must have run.
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + id2)
	if err != nil {
		t.Fatal(err)
	}
	st := decode[Status](t, resp)
	if st.State != StateDone {
		t.Fatalf("queued job state after drain = %s, want done", st.State)
	}
}

// TestFailedJobSurfacesError drives the real executeJob down its
// failure path (the request is corrupted after submit-time validation,
// standing in for any mid-run failure) and checks the job reports
// failed, carries the error, and answers the report endpoint with 409.
func TestFailedJobSurfacesError(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.run = func(j *job) {
		j.req.Suite = "corrupted-after-validation"
		srv.executeJob(j)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r := post(t, ts, tinyRequest())
	id := decode[map[string]string](t, r)["id"]
	st := pollDone(t, ts, id)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "unknown suite") {
		t.Errorf("error = %q, want the underlying failure", st.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("report of failed job = %d, want 409", resp.StatusCode)
	}
}
