// Package serve implements the kurecd sweep service: a long-running
// HTTP server that accepts run plans, executes them through the
// experiments cell executor (worker pool + shared result cache), and
// serves progress and finished run reports.
//
// The API is deliberately small:
//
//	POST /v1/runs              enqueue a RunRequest -> 202 + job id
//	GET  /v1/runs/{id}         job status, progress and ETA
//	GET  /v1/runs/{id}/report  the finished report (internal/report JSON)
//	GET  /healthz              liveness (and drain state)
//	GET  /metrics              Prometheus-style text metrics
//
// Jobs wait in a bounded queue (a full queue answers 429 so callers
// back off) and run one at a time; each job parallelizes internally
// across the executor's workers. All jobs share one result store, so
// a re-submitted plan — or any plan sharing cells with an earlier one
// — is answered largely from cache. Reports produced here are
// byte-identical to what the killerusec CLI writes for the same suite
// and plan.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/resultstore"
)

// RunRequest is the POST /v1/runs body: a suite selector plus the
// same overrides the killerusec CLI accepts.
type RunRequest struct {
	// Suite is "default" (publication sweep, the default) or "quick".
	Suite string `json:"suite,omitempty"`
	// Experiments lists experiment ids (CLI names: "2".."10", "lfb",
	// "ext-tail", ...). Empty means the full paper plan.
	Experiments []string `json:"experiments,omitempty"`
	// Iterations and AppLookups override the suite's sweep sizes when
	// positive.
	Iterations int `json:"iterations,omitempty"`
	AppLookups int `json:"app_lookups,omitempty"`
	// Threads overrides the thread-per-core sweep when non-empty.
	Threads []int `json:"threads,omitempty"`
	// UseReplay overrides the record/replay methodology when set.
	UseReplay *bool `json:"use_replay,omitempty"`
}

// suite materializes the request's experiment suite.
func (r RunRequest) suite() (experiments.Suite, error) {
	var s experiments.Suite
	switch r.Suite {
	case "", "default":
		s = experiments.Default()
	case "quick":
		s = experiments.Quick()
	default:
		return s, fmt.Errorf("unknown suite %q (want \"default\" or \"quick\")", r.Suite)
	}
	if r.Iterations > 0 {
		s.Iterations = r.Iterations
	}
	if r.AppLookups > 0 {
		s.AppLookups = r.AppLookups
	}
	if len(r.Threads) > 0 {
		s.Threads = append([]int(nil), r.Threads...)
	}
	if r.UseReplay != nil {
		s.UseReplay = *r.UseReplay
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// plan resolves the request's experiment ids against the suite; it is
// also the submit-time validation that every id exists.
func (r RunRequest) plan(s experiments.Suite) ([]experiments.Experiment, error) {
	if len(r.Experiments) == 0 {
		return s.PaperPlan(), nil
	}
	var plan []experiments.Experiment
	for _, id := range r.Experiments {
		p := experiments.PlanFor(s, id)
		if p == nil {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		plan = append(plan, p...)
	}
	return plan, nil
}

// JobState is the lifecycle of one enqueued run.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// job is the server-side record of one run.
type job struct {
	id  string
	req RunRequest

	mu          sync.Mutex
	state       JobState
	err         string
	stepsTotal  int
	stepsDone   int
	currentStep string
	enqueued    time.Time
	started     time.Time
	finished    time.Time
	report      []byte
	cells       experiments.ExecStats
}

// Status is the GET /v1/runs/{id} response.
type Status struct {
	ID          string   `json:"id"`
	State       JobState `json:"state"`
	Suite       string   `json:"suite"`
	StepsTotal  int      `json:"steps_total"`
	StepsDone   int      `json:"steps_done"`
	CurrentStep string   `json:"current_step,omitempty"`
	EnqueuedAt  string   `json:"enqueued_at"`
	StartedAt   string   `json:"started_at,omitempty"`
	FinishedAt  string   `json:"finished_at,omitempty"`
	ETASeconds  float64  `json:"eta_seconds,omitempty"`
	Error       string   `json:"error,omitempty"`
	ReportURL   string   `json:"report_url,omitempty"`
}

// status snapshots the job under its lock. now is injected so the ETA
// is computed against the caller's clock.
func (j *job) status(now time.Time) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.id,
		State:       j.state,
		Suite:       j.req.Suite,
		StepsTotal:  j.stepsTotal,
		StepsDone:   j.stepsDone,
		CurrentStep: j.currentStep,
		EnqueuedAt:  j.enqueued.UTC().Format(time.RFC3339),
		Error:       j.err,
	}
	if st.Suite == "" {
		st.Suite = "default"
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339)
	}
	if j.state == StateRunning && j.stepsDone > 0 && j.stepsDone < j.stepsTotal {
		perStep := now.Sub(j.started).Seconds() / float64(j.stepsDone)
		st.ETASeconds = perStep * float64(j.stepsTotal-j.stepsDone)
	}
	if j.state == StateDone {
		st.ReportURL = "/v1/runs/" + j.id + "/report"
	}
	return st
}

// Config parameterizes a Server.
type Config struct {
	// Parallel is the worker count of each job's cell executor
	// (minimum 1).
	Parallel int
	// QueueDepth bounds the number of jobs waiting to run (beyond the
	// one running); a full queue answers 429. Minimum 1.
	QueueDepth int
	// CacheEntries bounds the shared in-memory result cache; 0 uses
	// the executor default.
	CacheEntries int
	// CacheDir, when non-empty, adds the on-disk cache layer.
	CacheDir string
}

// Server owns the job queue, the job table, and the shared result
// store. Create with New, mount Handler on an http.Server, stop with
// Drain.
type Server struct {
	parallel int
	store    *resultstore.Store[core.Result]

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // job ids in submission order, for /metrics
	queue    chan *job
	draining bool
	nextID   int

	runnerDone chan struct{}

	// run executes one job; tests swap it to control timing.
	run func(*job)
	// now is the server's clock; tests may pin it.
	now func() time.Time
}

// New returns a started server (its runner goroutine is consuming the
// queue).
func New(cfg Config) (*Server, error) {
	if cfg.Parallel < 1 {
		cfg.Parallel = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.CacheEntries < 1 {
		cfg.CacheEntries = 16384
	}
	var store *resultstore.Store[core.Result]
	var err error
	if cfg.CacheDir != "" {
		store, err = resultstore.Open[core.Result](cfg.CacheDir, cfg.CacheEntries)
		if err != nil {
			return nil, err
		}
	} else {
		store = resultstore.New[core.Result](cfg.CacheEntries)
	}
	s := &Server{
		parallel:   cfg.Parallel,
		store:      store,
		jobs:       make(map[string]*job),
		queue:      make(chan *job, cfg.QueueDepth),
		runnerDone: make(chan struct{}),
		now:        time.Now,
	}
	s.run = s.executeJob
	go s.runner()
	return s, nil
}

// runner consumes the queue until Drain closes it. One job runs at a
// time; each job spreads its cells across the executor's workers.
func (s *Server) runner() {
	defer close(s.runnerDone)
	for j := range s.queue {
		s.run(j)
	}
}

// executeJob runs one job to completion, updating its progress as
// plan steps start. A panicking experiment fails the job, not the
// server.
func (s *Server) executeJob(j *job) {
	start := s.now()
	j.mu.Lock()
	j.state = StateRunning
	j.started = start
	j.mu.Unlock()

	fail := func(msg string) {
		j.mu.Lock()
		j.state = StateFailed
		j.err = msg
		j.finished = s.now()
		j.mu.Unlock()
	}
	defer func() {
		if r := recover(); r != nil {
			fail(fmt.Sprintf("experiment panicked: %v\n%s", r, debug.Stack()))
		}
	}()

	suite, err := j.req.suite()
	if err != nil { // validated at submit; a failure here is a bug
		fail(err.Error())
		return
	}
	exec := experiments.NewExecWith(s.parallel, s.store)
	defer exec.Close()
	suite.Exec = exec
	plan, err := j.req.plan(suite)
	if err != nil {
		fail(err.Error())
		return
	}

	j.mu.Lock()
	j.stepsTotal = len(plan)
	j.mu.Unlock()
	tables := experiments.RunPlan(plan, func(i int, id string) {
		j.mu.Lock()
		j.stepsDone = i
		j.currentStep = id
		j.mu.Unlock()
	})
	rep := suite.Report(tables)
	b, err := rep.Encode()
	if err != nil {
		fail(err.Error())
		return
	}
	j.mu.Lock()
	j.state = StateDone
	j.stepsDone = j.stepsTotal
	j.currentStep = ""
	j.report = b
	j.cells = exec.Stats()
	j.finished = s.now()
	j.mu.Unlock()
}

// Drain stops accepting jobs, lets the queue run dry (finishing the
// running job and everything already queued), and returns when the
// runner has exited or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	select {
	case <-s.runnerDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain aborted with jobs outstanding")
	}
}

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/runs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// jsonError writes a JSON error body with the given status code.
func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Validate before touching the queue: a bad plan must never
	// occupy a slot.
	suite, err := req.suite()
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, err := req.plan(suite); err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		jsonError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.nextID++
	j := &job{
		id:       fmt.Sprintf("job-%04d", s.nextID),
		req:      req,
		state:    StateQueued,
		enqueued: s.now(),
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	default:
		s.nextID-- // slot not taken; reuse the id
		s.mu.Unlock()
		w.Header().Set("Retry-After", "5")
		jsonError(w, http.StatusTooManyRequests, "job queue is full")
		return
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{
		"id":  j.id,
		"url": "/v1/runs/" + j.id,
	})
}

// jobByID looks a job up, answering 404 itself when absent.
func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		jsonError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(j.status(s.now()))
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state, report, errMsg := j.state, j.report, j.err
	j.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(report)
	case StateFailed:
		jsonError(w, http.StatusConflict, "job failed: %s", errMsg)
	default:
		jsonError(w, http.StatusConflict, "job is %s; report not ready", state)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": status})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	counts := map[JobState]int{}
	var dedup uint64
	var distinct int
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		counts[j.state]++
		dedup += j.cells.Dedup
		distinct += j.cells.Cells
		j.mu.Unlock()
	}
	depth := len(s.queue)
	capacity := cap(s.queue)
	draining := 0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()
	cs := s.store.Stats()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed} {
		fmt.Fprintf(w, "kurecd_jobs{state=%q} %d\n", st, counts[st])
	}
	fmt.Fprintf(w, "kurecd_queue_depth %d\n", depth)
	fmt.Fprintf(w, "kurecd_queue_capacity %d\n", capacity)
	fmt.Fprintf(w, "kurecd_draining %d\n", draining)
	fmt.Fprintf(w, "kurecd_cells_distinct_total %d\n", distinct)
	fmt.Fprintf(w, "kurecd_cells_deduped_total %d\n", dedup)
	fmt.Fprintf(w, "kurecd_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "kurecd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "kurecd_cache_disk_hits_total %d\n", cs.DiskHits)
	fmt.Fprintf(w, "kurecd_cache_misses_total %d\n", cs.Misses)
}
