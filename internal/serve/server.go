// Package serve implements the kurecd sweep service: a long-running
// HTTP server that accepts run plans, executes them through the
// experiments cell executor (worker pool + shared result cache), and
// serves progress and finished run reports.
//
// The API is deliberately small:
//
//	POST   /v1/runs              enqueue a RunRequest -> 202 + job id
//	GET    /v1/runs/{id}         job status, progress and ETA
//	DELETE /v1/runs/{id}         cancel a queued or running job
//	GET    /v1/runs/{id}/report  the finished report (internal/report JSON)
//	GET    /healthz              liveness (and drain state)
//	GET    /readyz               readiness: 503 before journal replay
//	                             completes and during drain
//	GET    /metrics              Prometheus-style text metrics
//
// Jobs wait in a bounded queue (a full queue answers 429 so callers
// back off) and run one at a time; each job parallelizes internally
// across the executor's workers. All jobs share one result store, so
// a re-submitted plan — or any plan sharing cells with an earlier one
// — is answered largely from cache. Reports produced here are
// byte-identical to what the killerusec CLI writes for the same suite
// and plan.
//
// With a journal configured (kurecd -journal), every job transition is
// written ahead to a fsync'd WAL: a crash — SIGKILL included — loses at
// most the in-flight cell. On boot the journal is replayed, finished
// jobs come back with their reports, and interrupted jobs are
// re-enqueued; with a disk cache (-cachedir) the re-run is warm, so
// only the cells that had not completed are recomputed and the
// recovered report is byte-identical to an uninterrupted run.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/resultstore"
	"repro/internal/sim"
)

// RunRequest is the POST /v1/runs body: a suite selector plus the
// same overrides the killerusec CLI accepts.
type RunRequest struct {
	// Suite is "default" (publication sweep, the default) or "quick".
	Suite string `json:"suite,omitempty"`
	// Experiments lists experiment ids (CLI names: "2".."10", "lfb",
	// "ext-tail", ...). Empty means the full paper plan.
	Experiments []string `json:"experiments,omitempty"`
	// Iterations and AppLookups override the suite's sweep sizes when
	// positive.
	Iterations int `json:"iterations,omitempty"`
	AppLookups int `json:"app_lookups,omitempty"`
	// Threads overrides the thread-per-core sweep when non-empty.
	Threads []int `json:"threads,omitempty"`
	// UseReplay overrides the record/replay methodology when set.
	UseReplay *bool `json:"use_replay,omitempty"`
	// TimeoutSeconds, when positive, is the job's deadline measured
	// from the moment it starts running; a job that exceeds it fails
	// at the next cell boundary.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Metrics enables the flight recorder for every measured run: the
	// report gains a windowed time series per cell, and sealed windows
	// stream live from GET /v1/runs/{id}/metrics while the job runs.
	// Opt-in, so a plain request's report stays byte-identical to the
	// killerusec CLI's.
	Metrics bool `json:"metrics,omitempty"`
	// MetricsWindowUs overrides the recorder window span in simulated
	// microseconds (default 10). Requires Metrics.
	MetricsWindowUs float64 `json:"metrics_window_us,omitempty"`
	// Attribution enables the per-phase latency ledger for every
	// measured run: the report gains an attribution section plus a
	// per-cell phase breakdown (`kurec blame` renders it). Opt-in and
	// observational — a plain request's report stays byte-identical.
	Attribution bool `json:"attribution,omitempty"`
}

// suite materializes the request's experiment suite.
func (r RunRequest) suite() (experiments.Suite, error) {
	var s experiments.Suite
	switch r.Suite {
	case "", "default":
		s = experiments.Default()
	case "quick":
		s = experiments.Quick()
	default:
		return s, fmt.Errorf("unknown suite %q (want \"default\" or \"quick\")", r.Suite)
	}
	if r.Iterations > 0 {
		s.Iterations = r.Iterations
	}
	if r.AppLookups > 0 {
		s.AppLookups = r.AppLookups
	}
	if len(r.Threads) > 0 {
		s.Threads = append([]int(nil), r.Threads...)
	}
	if r.UseReplay != nil {
		s.UseReplay = *r.UseReplay
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	if r.TimeoutSeconds < 0 || math.IsNaN(r.TimeoutSeconds) || math.IsInf(r.TimeoutSeconds, 0) {
		return s, fmt.Errorf("timeout_seconds %v must be a non-negative finite number", r.TimeoutSeconds)
	}
	if r.MetricsWindowUs < 0 || math.IsNaN(r.MetricsWindowUs) || math.IsInf(r.MetricsWindowUs, 0) {
		return s, fmt.Errorf("metrics_window_us %v must be a non-negative finite number", r.MetricsWindowUs)
	}
	if r.MetricsWindowUs > 0 && !r.Metrics {
		return s, fmt.Errorf("metrics_window_us set but metrics not enabled")
	}
	if r.Metrics {
		windowUs := r.MetricsWindowUs
		if windowUs == 0 {
			windowUs = defaultMetricsWindowUs
		}
		s.Base.MetricsWindow = sim.FromNanoseconds(windowUs * 1e3)
	}
	s.Base.Attribution = r.Attribution
	return s, nil
}

// defaultMetricsWindowUs is the flight-recorder window span when a
// metrics-enabled request does not choose one.
const defaultMetricsWindowUs = 10

// plan resolves the request's experiment ids against the suite; it is
// also the submit-time validation that every id exists.
func (r RunRequest) plan(s experiments.Suite) ([]experiments.Experiment, error) {
	if len(r.Experiments) == 0 {
		return s.PaperPlan(), nil
	}
	var plan []experiments.Experiment
	for _, id := range r.Experiments {
		p := experiments.PlanFor(s, id)
		if p == nil {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		plan = append(plan, p...)
	}
	return plan, nil
}

// JobState is the lifecycle of one enqueued run.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// terminal reports whether a state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// job is the server-side record of one run.
type job struct {
	id  string
	req RunRequest

	// ctx is cancelled by DELETE /v1/runs/{id}; the executor threads
	// it through the experiments plan down to runpool task dispatch,
	// so cancellation takes effect at the next cell boundary.
	ctx    context.Context
	cancel context.CancelFunc

	// hub fans flight-recorder windows out to metrics-stream
	// subscribers; nil unless the request enabled metrics.
	hub *metricsHub

	mu              sync.Mutex
	state           JobState
	cancelRequested bool
	recovered       bool // re-enqueued by journal replay after a crash
	err             string
	stepsTotal      int
	stepsDone       int
	currentStep     string
	enqueued        time.Time
	started         time.Time
	finished        time.Time
	report          []byte
	cells           experiments.ExecStats
	cellsComputed   uint64 // result-store misses attributable to this job
	cellsCached     uint64 // memory + disk hits attributable to this job
}

// Status is the GET /v1/runs/{id} response.
type Status struct {
	ID              string   `json:"id"`
	State           JobState `json:"state"`
	Suite           string   `json:"suite"`
	StepsTotal      int      `json:"steps_total"`
	StepsDone       int      `json:"steps_done"`
	CurrentStep     string   `json:"current_step,omitempty"`
	EnqueuedAt      string   `json:"enqueued_at"`
	StartedAt       string   `json:"started_at,omitempty"`
	FinishedAt      string   `json:"finished_at,omitempty"`
	ETASeconds      float64  `json:"eta_seconds,omitempty"`
	Error           string   `json:"error,omitempty"`
	ReportURL       string   `json:"report_url,omitempty"`
	CancelRequested bool     `json:"cancel_requested,omitempty"`
	Recovered       bool     `json:"recovered,omitempty"`
	CellsComputed   uint64   `json:"cells_computed,omitempty"`
	CellsCached     uint64   `json:"cells_cached,omitempty"`
}

// status snapshots the job under its lock. now is injected so the ETA
// is computed against the caller's clock.
func (j *job) status(now time.Time) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:              j.id,
		State:           j.state,
		Suite:           j.req.Suite,
		StepsTotal:      j.stepsTotal,
		StepsDone:       j.stepsDone,
		CurrentStep:     j.currentStep,
		EnqueuedAt:      j.enqueued.UTC().Format(time.RFC3339),
		Error:           j.err,
		CancelRequested: j.cancelRequested,
		Recovered:       j.recovered,
		CellsComputed:   j.cellsComputed,
		CellsCached:     j.cellsCached,
	}
	if st.Suite == "" {
		st.Suite = "default"
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339)
	}
	if j.state == StateRunning && j.stepsDone > 0 && j.stepsDone < j.stepsTotal {
		perStep := now.Sub(j.started).Seconds() / float64(j.stepsDone)
		st.ETASeconds = perStep * float64(j.stepsTotal-j.stepsDone)
	}
	if j.state == StateDone {
		st.ReportURL = "/v1/runs/" + j.id + "/report"
	}
	return st
}

// Config parameterizes a Server.
type Config struct {
	// Parallel is the worker count of each job's cell executor
	// (minimum 1).
	Parallel int
	// QueueDepth bounds the number of jobs waiting to run (beyond the
	// one running); a full queue answers 429. Minimum 1.
	QueueDepth int
	// CacheEntries bounds the shared in-memory result cache; 0 uses
	// the executor default.
	CacheEntries int
	// CacheDir, when non-empty, adds the on-disk cache layer (stamped
	// per build; see resultstore.OpenStamped).
	CacheDir string
	// Journal, when non-empty, is the path of the durable job journal.
	// Jobs survive crashes: on boot the journal is replayed and
	// interrupted jobs are re-enqueued.
	Journal string
}

// retryWindow is how many recent job durations inform the 429
// Retry-After estimate.
const retryWindow = 8

// Server owns the job queue, the job table, and the shared result
// store. Create with New, mount Handler on an http.Server, stop with
// Drain.
type Server struct {
	parallel int
	store    *resultstore.Store[core.Result]
	journal  *Journal

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string // job ids in submission order, for /metrics
	queue     chan *job
	depth     int // configured queue bound (cap(queue) may exceed it after replay)
	queued    int // jobs currently waiting in queue
	draining  bool
	ready     bool // journal replay complete; flips readyz to 200
	nextID    int
	recovered int             // jobs re-enqueued by replay, for /metrics
	durations []time.Duration // recent job durations, newest last (<= retryWindow)

	runnerDone chan struct{}

	// run executes one job; tests swap it to control timing.
	run func(*job)
	// now is the server's clock; tests may pin it.
	now func() time.Time
}

// New returns a started server (its runner goroutine is consuming the
// queue). When cfg.Journal names a journal, it is replayed first:
// finished jobs are restored with their reports and interrupted jobs
// are re-enqueued ahead of any new submission.
func New(cfg Config) (*Server, error) {
	if cfg.Parallel < 1 {
		cfg.Parallel = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.CacheEntries < 1 {
		cfg.CacheEntries = 16384
	}
	var store *resultstore.Store[core.Result]
	var err error
	if cfg.CacheDir != "" {
		store, err = resultstore.OpenStamped[core.Result](cfg.CacheDir, experiments.BuildStamp(), cfg.CacheEntries)
		if err != nil {
			return nil, err
		}
	} else {
		store = resultstore.New[core.Result](cfg.CacheEntries)
	}
	s := &Server{
		parallel:   cfg.Parallel,
		store:      store,
		jobs:       make(map[string]*job),
		depth:      cfg.QueueDepth,
		runnerDone: make(chan struct{}),
		now:        time.Now,
	}
	s.run = s.executeJob

	var pending []*job
	if cfg.Journal != "" {
		journal, entries, err := OpenJournal(cfg.Journal)
		if err != nil {
			return nil, err
		}
		s.journal = journal
		pending = s.restore(entries)
	}
	// The channel is sized so every replayed job fits without blocking;
	// the configured bound is enforced by the queued counter, not the
	// channel capacity.
	s.queue = make(chan *job, cfg.QueueDepth+len(pending))
	for _, j := range pending {
		s.queued++
		s.queue <- j
	}
	s.ready = true
	go s.runner()
	return s, nil
}

// newJob allocates a job with its cancellation context, and its
// metrics hub when the request asked for telemetry.
func newJob(id string, req RunRequest) *job {
	j := &job{id: id, req: req, state: StateQueued}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	if req.Metrics {
		j.hub = newMetricsHub()
	}
	return j
}

// restore rebuilds the job table from replayed journal entries and
// returns the jobs to re-enqueue, in original submission order.
// Terminal jobs are restored in place (done jobs reload their report
// sidecar; a missing or corrupt sidecar demotes the job back to queued
// so the report is regenerated from the cache). Jobs that were queued
// or running at the crash are re-enqueued; jobs whose cancellation was
// requested but never observed become cancelled.
func (s *Server) restore(entries []Entry) []*job {
	for _, e := range entries {
		switch e.T {
		case recSubmit:
			if e.Req == nil || s.jobs[e.ID] != nil {
				continue
			}
			j := newJob(e.ID, *e.Req)
			j.enqueued = e.At
			s.jobs[e.ID] = j
			s.order = append(s.order, e.ID)
			var n int
			if _, err := fmt.Sscanf(e.ID, "job-%d", &n); err == nil && n > s.nextID {
				s.nextID = n
			}
		case recStart:
			if j := s.jobs[e.ID]; j != nil {
				j.state = StateRunning
				j.started = e.At
			}
		case recCancel:
			if j := s.jobs[e.ID]; j != nil {
				j.cancelRequested = true
			}
		case recDone:
			j := s.jobs[e.ID]
			if j == nil {
				continue
			}
			j.state = e.State
			j.err = e.Err
			j.finished = e.At
			if e.State == StateDone {
				if b, ok := s.journal.ReadReport(e.ID, e.SHA); ok {
					j.report = b
				} else {
					// The report bytes did not survive; the job itself
					// did. Re-run it — warm, if a cachedir is configured.
					j.state = StateQueued
					j.err = ""
					j.finished = time.Time{}
				}
			}
		}
	}

	var pending []*job
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state.terminal() {
			j.hub.Close(j.state)
			continue
		}
		if j.cancelRequested {
			// Cancelled before the cancellation could be honored: honor
			// it now instead of re-running work nobody wants.
			j.state = StateCancelled
			j.finished = s.now()
			j.hub.Close(StateCancelled)
			s.appendJournal(Entry{T: recDone, ID: j.id, At: j.finished, State: StateCancelled})
			continue
		}
		j.state = StateQueued
		j.started = time.Time{}
		j.recovered = true
		s.recovered++
		pending = append(pending, j)
	}
	return pending
}

// appendJournal writes a record, surfacing failures on stderr-less
// paths as a server-level best effort: a lost start/done record only
// means the job replays as interrupted and re-runs against the cache.
func (s *Server) appendJournal(e Entry) error {
	return s.journal.Append(e)
}

// runner consumes the queue until Drain closes it. One job runs at a
// time; each job spreads its cells across the executor's workers.
func (s *Server) runner() {
	defer close(s.runnerDone)
	for j := range s.queue {
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		s.run(j)
		s.recordDuration(j)
	}
}

// recordDuration remembers how long a finished job ran, feeding the
// Retry-After estimate. Jobs without a measured start/finish (skipped
// cancelled jobs, test stubs) are ignored.
func (s *Server) recordDuration(j *job) {
	j.mu.Lock()
	started, finished := j.started, j.finished
	j.mu.Unlock()
	if started.IsZero() || finished.IsZero() || finished.Before(started) {
		return
	}
	s.mu.Lock()
	s.durations = append(s.durations, finished.Sub(started))
	if len(s.durations) > retryWindow {
		s.durations = s.durations[len(s.durations)-retryWindow:]
	}
	s.mu.Unlock()
}

// retryAfterSecondsLocked estimates how long a rejected caller should
// wait before the queue has room: the mean of recent job durations
// times the number of jobs ahead of them (queued plus the one
// running). Falls back to 5 s with no history; clamped to [1 s, 10 m].
// Callers hold s.mu.
func (s *Server) retryAfterSecondsLocked() int {
	if len(s.durations) == 0 {
		return 5
	}
	var sum time.Duration
	for _, d := range s.durations {
		sum += d
	}
	mean := sum / time.Duration(len(s.durations))
	secs := int(math.Ceil(mean.Seconds() * float64(s.queued+1)))
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return secs
}

// executeJob runs one job to completion, updating its progress as
// plan steps start. A panicking experiment fails the job, not the
// server; a cancelled context lands the job in the cancelled state; an
// exceeded deadline fails it with a deadline error.
func (s *Server) executeJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting in queue
		j.mu.Unlock()
		return
	}
	start := s.now()
	j.state = StateRunning
	j.started = start
	timeout := j.req.TimeoutSeconds
	j.mu.Unlock()
	s.appendJournal(Entry{T: recStart, ID: j.id, At: start})

	ctx := j.ctx
	cancelTimeout := func() {}
	if timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, time.Duration(timeout*float64(time.Second)))
	}
	defer cancelTimeout()

	stats0 := s.store.Stats()
	var exec *experiments.Exec
	finish := func(state JobState, errMsg string, report []byte) {
		now := s.now()
		var sha string
		if state == StateDone {
			// The sidecar is written before the done record: if the done
			// record exists, the report bytes are durable.
			if got, err := s.journal.WriteReport(j.id, report); err == nil {
				sha = got
			}
		}
		stats1 := s.store.Stats()
		j.mu.Lock()
		j.state = state
		j.err = errMsg
		j.report = report
		j.currentStep = ""
		if state == StateDone {
			j.stepsDone = j.stepsTotal
		}
		if exec != nil {
			j.cells = exec.Stats()
		}
		j.cellsComputed = stats1.Misses - stats0.Misses
		j.cellsCached = (stats1.Hits - stats0.Hits) + (stats1.DiskHits - stats0.DiskHits)
		j.finished = now
		j.mu.Unlock()
		j.hub.Close(state)
		s.appendJournal(Entry{T: recDone, ID: j.id, At: now, State: state, Err: errMsg, SHA: sha})
	}
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok {
				switch {
				case errors.Is(err, context.Canceled):
					finish(StateCancelled, "cancelled by client", nil)
					return
				case errors.Is(err, context.DeadlineExceeded):
					finish(StateFailed, fmt.Sprintf("job deadline (%gs) exceeded", timeout), nil)
					return
				}
			}
			finish(StateFailed, fmt.Sprintf("experiment panicked: %v\n%s", r, debug.Stack()), nil)
		}
	}()

	suite, err := j.req.suite()
	if err != nil { // validated at submit; a failure here is a bug
		finish(StateFailed, err.Error(), nil)
		return
	}
	exec = experiments.NewExecCtx(ctx, s.parallel, s.store)
	defer exec.Close()
	suite.Exec = exec
	// Fleet cells shard their engine advances with whatever the cell
	// pool leaves of the machine; reports stay byte-identical (sharding
	// is deterministic), so cached results remain valid either way.
	suite.FleetShards = experiments.ShardBudget(s.parallel)
	if j.hub != nil {
		// Live telemetry: every computed cell's recorder publishes its
		// sealed windows into the job's hub. Cells answered from cache
		// do not re-simulate, so they stream nothing — the report still
		// carries their full series.
		suite.Base.MetricsSink = j.hub
	}
	plan, err := j.req.plan(suite)
	if err != nil {
		finish(StateFailed, err.Error(), nil)
		return
	}

	j.mu.Lock()
	j.stepsTotal = len(plan)
	j.mu.Unlock()
	tables := experiments.RunPlan(plan, func(i int, id string) {
		// The per-step cancellation point; within a step, queued cells
		// fail fast through the executor's context.
		if err := ctx.Err(); err != nil {
			panic(err)
		}
		j.mu.Lock()
		j.stepsDone = i
		j.currentStep = id
		j.mu.Unlock()
	})
	rep := suite.Report(tables)
	b, err := rep.Encode()
	if err != nil {
		finish(StateFailed, err.Error(), nil)
		return
	}
	finish(StateDone, "", b)
}

// Drain stops accepting jobs, lets the queue run dry (finishing the
// running job and everything already queued), and returns when the
// runner has exited or ctx expires. On a clean drain the journal is
// closed.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	select {
	case <-s.runnerDone:
		return s.journal.Close()
	case <-ctx.Done():
		return fmt.Errorf("serve: drain aborted with jobs outstanding")
	}
}

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/runs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/runs/{id}/metrics", s.handleJobMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// jsonError writes a JSON error body with the given status code.
func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Validate before touching the queue: a bad plan must never
	// occupy a slot.
	suite, err := req.suite()
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, err := req.plan(suite); err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		jsonError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.queued >= s.depth {
		retry := s.retryAfterSecondsLocked()
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		jsonError(w, http.StatusTooManyRequests, "job queue is full")
		return
	}
	s.nextID++
	j := newJob(fmt.Sprintf("job-%04d", s.nextID), req)
	j.enqueued = s.now()
	// Write-ahead: the job exists durably before it is acknowledged or
	// enqueued. A journal failure rejects the submission outright.
	if err := s.appendJournal(Entry{T: recSubmit, ID: j.id, At: j.enqueued, Req: &j.req}); err != nil {
		s.nextID--
		s.mu.Unlock()
		jsonError(w, http.StatusInternalServerError, "journal write failed: %v", err)
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queued++
	// The send cannot block: only submitters (serialized by s.mu) fill
	// the channel, and queued < depth <= cap was just checked.
	s.queue <- j
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{
		"id":  j.id,
		"url": "/v1/runs/" + j.id,
	})
}

// jobByID looks a job up, answering 404 itself when absent.
func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		jsonError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(j.status(s.now()))
}

// handleCancel cancels a queued or running job. A queued job becomes
// cancelled immediately (the runner skips it); a running job has its
// context cancelled and lands in the cancelled state at the next cell
// boundary. Cancelling a terminal job answers 409.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state := j.state
	switch state {
	case StateQueued:
		j.state = StateCancelled
		j.cancelRequested = true
		j.err = "cancelled by client"
		j.finished = s.now()
	case StateRunning:
		j.cancelRequested = true
	default:
		j.mu.Unlock()
		jsonError(w, http.StatusConflict, "job is %s; nothing to cancel", state)
		return
	}
	j.mu.Unlock()
	j.cancel()
	if state == StateQueued {
		j.hub.Close(StateCancelled)
		s.appendJournal(Entry{T: recDone, ID: j.id, At: s.now(), State: StateCancelled, Err: "cancelled by client"})
	} else {
		s.appendJournal(Entry{T: recCancel, ID: j.id, At: s.now()})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(j.status(s.now()))
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state, report, errMsg := j.state, j.report, j.err
	j.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(report)
	case StateFailed:
		jsonError(w, http.StatusConflict, "job failed: %s", errMsg)
	case StateCancelled:
		jsonError(w, http.StatusConflict, "job was cancelled; no report")
	default:
		jsonError(w, http.StatusConflict, "job is %s; report not ready", state)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": status})
}

// handleReadyz is the load-balancer signal: 503 before journal replay
// has completed and from the moment a drain starts, so routing stops
// before SIGTERM kills the listener. Liveness stays on /healthz.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ready, draining := s.ready, s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	switch {
	case draining:
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
	case !ready:
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "starting"})
	default:
		json.NewEncoder(w).Encode(map[string]string{"status": "ready"})
	}
}

// handleMetrics serves the Prometheus text endpoint. Lines are
// emitted in sorted order so two scrapes of an idle server are
// byte-identical — scrape diffing and text-based alert tests can rely
// on it. Jobs with a metrics hub add per-job labeled gauges for their
// stream: windows published, live subscribers, records dropped to
// slow consumers, and the last sealed window's p99.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	counts := map[JobState]int{}
	var dedup uint64
	var distinct int
	var lines []string
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		counts[j.state]++
		dedup += j.cells.Dedup
		distinct += j.cells.Cells
		j.mu.Unlock()
		if j.hub != nil {
			windows, subscribers, dropped, lastP99 := j.hub.stats()
			lines = append(lines,
				fmt.Sprintf("kurecd_job_stream_windows_total{job=%q} %d", id, windows),
				fmt.Sprintf("kurecd_job_stream_subscribers{job=%q} %d", id, subscribers),
				fmt.Sprintf("kurecd_job_stream_dropped_total{job=%q} %d", id, dropped),
				fmt.Sprintf("kurecd_job_last_p99_ns{job=%q} %g", id, lastP99),
			)
		}
	}
	depth := s.queued
	capacity := s.depth
	recovered := s.recovered
	draining := 0
	if s.draining {
		draining = 1
	}
	ready := 0
	if s.ready && !s.draining {
		ready = 1
	}
	s.mu.Unlock()
	cs := s.store.Stats()

	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		lines = append(lines, fmt.Sprintf("kurecd_jobs{state=%q} %d", st, counts[st]))
	}
	lines = append(lines,
		fmt.Sprintf("kurecd_queue_depth %d", depth),
		fmt.Sprintf("kurecd_queue_capacity %d", capacity),
		fmt.Sprintf("kurecd_draining %d", draining),
		fmt.Sprintf("kurecd_ready %d", ready),
		fmt.Sprintf("kurecd_recovered_jobs %d", recovered),
		fmt.Sprintf("kurecd_cells_distinct_total %d", distinct),
		fmt.Sprintf("kurecd_cells_deduped_total %d", dedup),
		fmt.Sprintf("kurecd_cache_entries %d", cs.Entries),
		fmt.Sprintf("kurecd_cache_hits_total %d", cs.Hits),
		fmt.Sprintf("kurecd_cache_disk_hits_total %d", cs.DiskHits),
		fmt.Sprintf("kurecd_cache_misses_total %d", cs.Misses),
	)
	sort.Strings(lines)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, line := range lines {
		fmt.Fprintln(w, line)
	}
}
