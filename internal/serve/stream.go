package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/telemetry"
)

// StreamWindow is one record of the GET /v1/runs/{id}/metrics stream:
// either a sealed flight-recorder window ("window") or the final
// record ("done", carrying the job's terminal state). Seq is the hub's
// global publish sequence — contiguous per job, so a consumer can
// detect records it lost to the bounded buffer.
type StreamWindow struct {
	Type string `json:"type"` // "window" or "done"
	Seq  uint64 `json:"seq"`

	// window records only.
	Run     string  `json:"run,omitempty"`   // run label, e.g. "prefetch lat=1us threads=10"
	Index   int     `json:"index,omitempty"` // per-run window index
	StartUs float64 `json:"start_us,omitempty"`
	SpanUs  float64 `json:"span_us,omitempty"`

	Starts    uint64 `json:"starts,omitempty"`
	Completes uint64 `json:"completes,omitempty"`
	Retries   uint64 `json:"retries,omitempty"`
	Timeouts  uint64 `json:"timeouts,omitempty"`
	Abandoned uint64 `json:"abandoned,omitempty"`
	Switches  uint64 `json:"switches,omitempty"`

	P50Ns  float64 `json:"p50_ns,omitempty"`
	P99Ns  float64 `json:"p99_ns,omitempty"`
	P999Ns float64 `json:"p999_ns,omitempty"`

	LFBMean      float64 `json:"lfb_mean,omitempty"`
	ChipMean     float64 `json:"chipq_mean,omitempty"`
	SQMean       float64 `json:"sq_mean,omitempty"`
	CQMean       float64 `json:"cq_mean,omitempty"`
	RunnableMean float64 `json:"runnable_mean,omitempty"`
	LFBMax       int     `json:"lfb_max,omitempty"`
	ChipMax      int     `json:"chipq_max,omitempty"`
	SQMax        int     `json:"sq_max,omitempty"`
	CQMax        int     `json:"cq_max,omitempty"`
	RunnableMax  int     `json:"runnable_max,omitempty"`

	// done records only.
	State JobState `json:"state,omitempty"`
}

// streamHistory bounds the replay buffer a late subscriber receives;
// older windows are evicted oldest-first.
const streamHistory = 512

// subQueueCap bounds each subscriber's pending queue. A consumer that
// reads slower than the simulator seals windows loses the oldest
// pending records (counted in dropped) — the publisher never blocks,
// so a stalled TCP connection cannot stall the sweep.
const subQueueCap = 256

// subscriber is one attached metrics-stream consumer.
type subscriber struct {
	mu      sync.Mutex
	queue   []StreamWindow // pending records, oldest first
	dropped uint64         // records evicted from queue
	signal  chan struct{}  // capacity 1: "queue or done changed"
}

// notify wakes the subscriber's reader without blocking.
func (c *subscriber) notify() {
	select {
	case c.signal <- struct{}{}:
	default:
	}
}

// push enqueues one record, evicting the oldest when full.
func (c *subscriber) push(ev StreamWindow) {
	c.mu.Lock()
	if len(c.queue) == subQueueCap {
		c.queue = c.queue[1:]
		c.dropped++
	}
	c.queue = append(c.queue, ev)
	c.mu.Unlock()
	c.notify()
}

// take removes and returns all pending records.
func (c *subscriber) take() []StreamWindow {
	c.mu.Lock()
	out := c.queue
	c.queue = nil
	c.mu.Unlock()
	return out
}

// metricsHub fans one job's flight-recorder windows out to any number
// of HTTP stream subscribers. It implements telemetry.Sink; the
// simulation goroutines call PublishWindow synchronously at window
// boundaries, so every method is fast, bounded, and non-blocking.
// Under a parallel executor multiple cells publish concurrently;
// records interleave across runs but stay self-describing (Run +
// Index), and Seq orders them globally.
type metricsHub struct {
	mu      sync.Mutex
	history []StreamWindow // ring of the most recent records
	subs    map[*subscriber]struct{}
	seq     uint64
	windows uint64  // windows ever published, for /metrics
	dropped uint64  // records dropped by departed subscribers
	lastP99 float64 // most recent window's p99, for /metrics
	done    bool
	final   JobState
}

func newMetricsHub() *metricsHub {
	return &metricsHub{subs: make(map[*subscriber]struct{})}
}

// PublishWindow implements telemetry.Sink.
func (h *metricsHub) PublishWindow(ev telemetry.WindowEvent) {
	sw := StreamWindow{
		Type:    "window",
		Run:     ev.Label,
		Index:   ev.Index,
		StartUs: float64(ev.StartPs) / 1e6,
		SpanUs:  float64(ev.SpanPs) / 1e6,

		Starts:    ev.Starts,
		Completes: ev.Completes,
		Retries:   ev.Retries,
		Timeouts:  ev.Timeouts,
		Abandoned: ev.Abandoned,
		Switches:  ev.Switches,

		P50Ns:  ev.P50Ns,
		P99Ns:  ev.P99Ns,
		P999Ns: ev.P999Ns,

		LFBMean:      ev.OccMean[telemetry.GaugeLFB],
		ChipMean:     ev.OccMean[telemetry.GaugeChip],
		SQMean:       ev.OccMean[telemetry.GaugeSQ],
		CQMean:       ev.OccMean[telemetry.GaugeCQ],
		RunnableMean: ev.OccMean[telemetry.GaugeRunnable],
		LFBMax:       ev.OccMax[telemetry.GaugeLFB],
		ChipMax:      ev.OccMax[telemetry.GaugeChip],
		SQMax:        ev.OccMax[telemetry.GaugeSQ],
		CQMax:        ev.OccMax[telemetry.GaugeCQ],
		RunnableMax:  ev.OccMax[telemetry.GaugeRunnable],
	}

	h.mu.Lock()
	if h.done {
		h.mu.Unlock()
		return
	}
	sw.Seq = h.seq
	h.seq++
	h.windows++
	h.lastP99 = ev.P99Ns
	if len(h.history) == streamHistory {
		copy(h.history, h.history[1:])
		h.history = h.history[:streamHistory-1]
	}
	h.history = append(h.history, sw)
	subs := make([]*subscriber, 0, len(h.subs))
	for c := range h.subs {
		subs = append(subs, c)
	}
	h.mu.Unlock()

	for _, c := range subs {
		c.push(sw)
	}
}

// Close marks the stream finished with the job's terminal state and
// wakes every subscriber so their streams end. Idempotent: only the
// first terminal state wins (a cancel that races job completion).
func (h *metricsHub) Close(state JobState) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.done {
		h.mu.Unlock()
		return
	}
	h.done = true
	h.final = state
	subs := make([]*subscriber, 0, len(h.subs))
	for c := range h.subs {
		subs = append(subs, c)
	}
	h.mu.Unlock()
	for _, c := range subs {
		c.notify()
	}
}

// subscribe attaches a consumer, returning it together with a snapshot
// of the history so a mid-run (or post-run) subscriber starts with
// everything the ring still holds.
func (h *metricsHub) subscribe() (*subscriber, []StreamWindow) {
	c := &subscriber{signal: make(chan struct{}, 1)}
	h.mu.Lock()
	snapshot := append([]StreamWindow(nil), h.history...)
	h.subs[c] = struct{}{}
	h.mu.Unlock()
	return c, snapshot
}

// unsubscribe detaches a consumer, folding its drop count into the
// hub total so /metrics keeps counting after the connection closes.
func (h *metricsHub) unsubscribe(c *subscriber) {
	c.mu.Lock()
	dropped := c.dropped
	c.dropped = 0
	c.mu.Unlock()
	h.mu.Lock()
	delete(h.subs, c)
	h.dropped += dropped
	h.mu.Unlock()
}

// state reports whether the stream has ended and with which job
// state, plus the next publish sequence (== windows ever published).
func (h *metricsHub) state() (done bool, final JobState, seq uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.done, h.final, h.seq
}

// handleJobMetrics streams a job's flight-recorder windows. The
// default framing is NDJSON (one StreamWindow per line); a client
// accepting text/event-stream gets SSE framing instead. A subscriber
// first receives the history the hub still holds (so mid-run — or
// even post-run — attachment sees the past), then live windows as
// runs seal them, and finally one "done" record carrying the job's
// terminal state. Slow consumers lose oldest-first from a bounded
// queue rather than ever stalling the sweep; gaps are visible as
// non-contiguous seq values.
func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	if j.hub == nil {
		jsonError(w, http.StatusConflict, "job %s has no telemetry (submit with \"metrics\": true)", j.id)
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out now: a subscriber to a job that has not
		// sealed a window yet must still see the stream open.
		flusher.Flush()
	}

	sub, history := j.hub.subscribe()
	defer j.hub.unsubscribe(sub)

	write := func(evs []StreamWindow) error {
		for _, ev := range evs {
			b, err := json.Marshal(ev)
			if err != nil {
				return err
			}
			if sse {
				if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, b); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(w, "%s\n", b); err != nil {
					return err
				}
			}
		}
		if len(evs) > 0 && flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	if write(history) != nil {
		return
	}
	for {
		evs := sub.take()
		if len(evs) > 0 {
			if write(evs) != nil {
				return
			}
			continue // drain fully before checking for the end
		}
		if done, final, seq := j.hub.state(); done {
			write([]StreamWindow{{Type: "done", Seq: seq, State: final}})
			return
		}
		select {
		case <-sub.signal:
		case <-r.Context().Done():
			return
		}
	}
}

// stats snapshots the hub's counters for the Prometheus endpoint.
func (h *metricsHub) stats() (windows uint64, subscribers int, dropped uint64, lastP99 float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	windows = h.windows
	subscribers = len(h.subs)
	lastP99 = h.lastP99
	dropped = h.dropped
	for c := range h.subs {
		c.mu.Lock()
		dropped += c.dropped
		c.mu.Unlock()
	}
	return
}
