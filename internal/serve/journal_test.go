package serve

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mustOpenJournal(t *testing.T, path string) (*Journal, []Entry) {
	t.Helper()
	j, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	return j, entries
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, entries := mustOpenJournal(t, path)
	if len(entries) != 0 {
		t.Fatalf("fresh journal replayed %d entries", len(entries))
	}
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	req := RunRequest{Suite: "quick", Experiments: []string{"2"}}
	records := []Entry{
		{T: recSubmit, ID: "job-0001", At: at, Req: &req},
		{T: recStart, ID: "job-0001", At: at.Add(time.Second)},
		{T: recDone, ID: "job-0001", At: at.Add(time.Minute), State: StateDone, SHA: "abc"},
	}
	for _, e := range records {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got := mustOpenJournal(t, path)
	defer j2.Close()
	if len(got) != len(records) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(records))
	}
	for i, e := range got {
		if e.T != records[i].T || e.ID != records[i].ID || !e.At.Equal(records[i].At) {
			t.Errorf("entry %d = %+v, want %+v", i, e, records[i])
		}
	}
	if got[0].Req == nil || got[0].Req.Suite != "quick" || got[0].Req.Experiments[0] != "2" {
		t.Errorf("submit request did not round-trip: %+v", got[0].Req)
	}
	if got[2].State != StateDone || got[2].SHA != "abc" {
		t.Errorf("done record did not round-trip: %+v", got[2])
	}
}

// TestJournalTornTail simulates a crash mid-append: the torn final
// line is dropped on replay, truncated from the file, and appending
// afterwards produces a clean log.
func TestJournalTornTail(t *testing.T) {
	for _, tc := range []struct {
		name string
		tear func(b []byte) []byte
	}{
		{"unterminated-line", func(b []byte) []byte {
			return append(b, []byte(`00000000 {"t":"start","id":"job-0002`)...)
		}},
		{"bad-crc", func(b []byte) []byte {
			return append(b, []byte("deadbeef {\"t\":\"start\",\"id\":\"job-0002\"}\n")...)
		}},
		{"garbage", func(b []byte) []byte {
			return append(b, []byte("\x00\x17garbage\n")...)
		}},
		{"truncated-mid-record", func(b []byte) []byte {
			return b[:len(b)-7]
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.wal")
			j, _ := mustOpenJournal(t, path)
			if err := j.Append(Entry{T: recSubmit, ID: "job-0001", Req: &RunRequest{Suite: "quick"}}); err != nil {
				t.Fatal(err)
			}
			if err := j.Append(Entry{T: recStart, ID: "job-0001"}); err != nil {
				t.Fatal(err)
			}
			j.Close()

			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.tear(b), 0o644); err != nil {
				t.Fatal(err)
			}

			j2, entries := mustOpenJournal(t, path)
			wantEntries := 2
			if tc.name == "truncated-mid-record" {
				wantEntries = 1
			}
			if len(entries) != wantEntries {
				t.Fatalf("replayed %d entries, want %d", len(entries), wantEntries)
			}
			// The torn bytes must be gone so the next append starts a
			// fresh record boundary.
			if err := j2.Append(Entry{T: recDone, ID: "job-0001", State: StateFailed, Err: "x"}); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			_, entries3 := mustOpenJournal(t, path)
			if len(entries3) != wantEntries+1 {
				t.Fatalf("after torn-tail repair replayed %d entries, want %d", len(entries3), wantEntries+1)
			}
			if last := entries3[len(entries3)-1]; last.T != recDone || last.Err != "x" {
				t.Fatalf("appended record after repair = %+v", last)
			}
		})
	}
}

func TestJournalReportSidecar(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := mustOpenJournal(t, path)
	defer j.Close()

	report := []byte(`{"schema":"x"}`)
	sha, err := j.WriteReport("job-0001", report)
	if err != nil {
		t.Fatal(err)
	}
	if sha == "" {
		t.Fatal("no digest returned")
	}
	got, ok := j.ReadReport("job-0001", sha)
	if !ok || string(got) != string(report) {
		t.Fatalf("ReadReport = (%q, %v)", got, ok)
	}
	// A digest mismatch (stale or torn sidecar) must read as missing.
	if _, ok := j.ReadReport("job-0001", "0000"); ok {
		t.Error("mismatched digest was accepted")
	}
	if _, ok := j.ReadReport("job-9999", sha); ok {
		t.Error("absent sidecar was accepted")
	}
	// A corrupted sidecar fails its digest.
	if err := os.WriteFile(j.reportPath("job-0001"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.ReadReport("job-0001", sha); ok {
		t.Error("corrupt sidecar was accepted")
	}
}

// TestJournalFaultInjection drives every injected fault point and
// asserts the failure surfaces as an error without corrupting the log:
// records appended after a failed operation still replay.
func TestJournalFaultInjection(t *testing.T) {
	points := []string{"append.write", "append.sync", "report.encode", "report.sync", "report.rename"}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.wal")
			j, _ := mustOpenJournal(t, path)
			defer j.Close()
			boom := errors.New("injected " + point)
			armed := true
			j.inject = func(p string) error {
				if armed && p == point {
					return boom
				}
				return nil
			}

			var err error
			if strings.HasPrefix(point, "append.") {
				err = j.Append(Entry{T: recSubmit, ID: "job-0001", Req: &RunRequest{}})
			} else {
				_, err = j.WriteReport("job-0001", []byte("r"))
			}
			if !errors.Is(err, boom) {
				t.Fatalf("fault at %s: err = %v, want injected error", point, err)
			}
			if strings.HasPrefix(point, "report.") {
				// A failed sidecar write must never be readable.
				if _, ok := j.ReadReport("job-0001", reportSHA([]byte("r"))); ok {
					t.Error("failed report write left a readable sidecar")
				}
			}

			// Recovery: disarm the fault and confirm the journal still
			// appends and replays cleanly. ("append.write" may have left
			// a torn tail — exactly what replay must tolerate.)
			armed = false
			if err := j.Append(Entry{T: recDone, ID: "job-0001", State: StateFailed, Err: "f"}); err != nil {
				t.Fatal(err)
			}
			if _, err := j.WriteReport("job-0001", []byte("r2")); err != nil {
				t.Fatal(err)
			}
			j.Close()
			_, entries := mustOpenJournal(t, path)
			found := false
			for _, e := range entries {
				if e.T == recDone && e.Err == "f" {
					found = true
				}
			}
			if !found {
				t.Fatalf("post-fault append did not survive replay: %+v", entries)
			}
		})
	}
}

// TestNilJournalIsNoOp: a server without -journal uses a nil *Journal
// everywhere; every method must be safe.
func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	if err := j.Append(Entry{T: recSubmit}); err != nil {
		t.Fatal(err)
	}
	if sha, err := j.WriteReport("id", []byte("r")); err != nil || sha != "" {
		t.Fatalf("WriteReport = (%q, %v)", sha, err)
	}
	if _, ok := j.ReadReport("id", ""); ok {
		t.Fatal("nil journal returned a report")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
