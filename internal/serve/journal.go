package serve

// The job journal is kurecd's write-ahead log: every job transition
// (submit, start, cancel request, terminal state) is appended as one
// CRC-framed JSON record and fsync'd before the transition is
// acknowledged, so a SIGKILL — or a power cut — loses at most the cell
// that was executing, never the job. On boot the daemon replays the
// journal, restores terminal jobs (reports come back from sidecar
// files), and re-enqueues everything that was queued or running when
// the process died.
//
// Framing: one record per line, "%08x %s\n" — the IEEE CRC32 of the
// JSON bytes, a space, the JSON, a newline. The format is torn-tail
// tolerant by construction: a crash mid-append leaves a final line
// that is unterminated or fails its checksum, replay stops at the last
// intact record, and the torn bytes are truncated away before the next
// append. Records are never rewritten in place.
//
// Finished reports are too large to inline into the log, so a done
// record stores only the report's SHA-256; the bytes live in a sidecar
// file under <journal>.reports/, written atomically (temp file, fsync,
// rename) *before* the done record is appended. If the done record
// exists, the sidecar is complete; if the process died between the
// two, replay sees a started-but-unfinished job and simply re-runs it
// against the warm result cache.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Journal record types.
const (
	recSubmit = "submit" // job accepted: id + full request
	recStart  = "start"  // runner picked the job up
	recCancel = "cancel" // client requested cancellation of a running job
	recDone   = "done"   // terminal: state done/failed/cancelled
)

// Entry is one journal record. A submit record carries the request; a
// done record carries the terminal state, the error (failed jobs), and
// the report digest (done jobs).
type Entry struct {
	T     string      `json:"t"`
	ID    string      `json:"id"`
	At    time.Time   `json:"at"`
	Req   *RunRequest `json:"req,omitempty"`
	State JobState    `json:"state,omitempty"`
	Err   string      `json:"err,omitempty"`
	SHA   string      `json:"sha,omitempty"`
}

// Journal is the append-only log plus its report sidecar directory.
// Methods are safe for concurrent use; a nil *Journal is valid and
// makes every operation a no-op (journalling disabled).
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string

	// inject, when non-nil, is consulted at named fault points
	// ("append.write", "append.sync", "report.encode", "report.sync",
	// "report.rename") and its error is taken as that operation's
	// failure — the unit-test hook for every recovery branch.
	inject func(point string) error
}

// fault consults the injection hook at a named fault point.
func (j *Journal) fault(point string) error {
	if j.inject == nil {
		return nil
	}
	return j.inject(point)
}

// OpenJournal opens (creating if absent) the journal at path, replays
// every intact record, truncates a torn tail left by a crash, and
// returns the journal positioned for appending plus the replayed
// entries in log order.
func OpenJournal(path string) (*Journal, []Entry, error) {
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("serve: journal: %w", err)
	}
	entries, good := scanJournal(b)

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: journal: %w", err)
	}
	if good < int64(len(b)) {
		// Torn tail: drop the partial record so the next append starts
		// on a clean boundary.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("serve: journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: journal: %w", err)
	}
	return &Journal{f: f, path: path}, entries, nil
}

// scanJournal decodes intact records from raw journal bytes and
// returns them with the byte offset of the end of the last intact
// record. Anything after that offset — an unterminated line, a failed
// checksum, malformed JSON — is a torn tail and is ignored.
func scanJournal(b []byte) ([]Entry, int64) {
	var entries []Entry
	var good int64
	for off := 0; off < len(b); {
		nl := bytes.IndexByte(b[off:], '\n')
		if nl < 0 {
			break // unterminated final line
		}
		line := b[off : off+nl]
		e, ok := decodeRecord(line)
		if !ok {
			break
		}
		entries = append(entries, e)
		off += nl + 1
		good = int64(off)
	}
	return entries, good
}

// decodeRecord parses one framed line: 8 hex CRC digits, a space, JSON.
func decodeRecord(line []byte) (Entry, bool) {
	var e Entry
	if len(line) < 10 || line[8] != ' ' {
		return e, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return e, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != sum {
		return e, false
	}
	if err := json.Unmarshal(payload, &e); err != nil {
		return e, false
	}
	return e, true
}

// Append encodes, frames, writes, and fsyncs one record. The record is
// durable when Append returns nil; on error the caller must assume the
// record may or may not survive a crash (a torn append is truncated at
// the next boot either way).
func (j *Journal) Append(e Entry) error {
	if j == nil {
		return nil
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("serve: journal: encode: %w", err)
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.fault("append.write"); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	if _, err := j.f.WriteString(line); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	if err := j.fault("append.sync"); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	return nil
}

// Close fsyncs and closes the log file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// reportsDir is the sidecar directory holding finished report bytes.
func (j *Journal) reportsDir() string { return j.path + ".reports" }

// reportPath maps a job id (validated at submit, safe as a path
// component) to its sidecar file.
func (j *Journal) reportPath(id string) string {
	return filepath.Join(j.reportsDir(), id+".json")
}

// reportSHA is the digest stored in done records and verified on
// replay, so a torn or stale sidecar can never be served as a report.
func reportSHA(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// WriteReport durably stores a finished report's bytes in the sidecar
// directory (temp file, fsync, rename) and returns their digest for
// the done record. Callers append the done record only after
// WriteReport succeeds.
func (j *Journal) WriteReport(id string, b []byte) (string, error) {
	if j == nil {
		return "", nil
	}
	if err := j.fault("report.encode"); err != nil {
		return "", fmt.Errorf("serve: journal: report %s: %w", id, err)
	}
	if err := os.MkdirAll(j.reportsDir(), 0o755); err != nil {
		return "", fmt.Errorf("serve: journal: %w", err)
	}
	p := j.reportPath(id)
	tmp := p + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("serve: journal: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return "", fmt.Errorf("serve: journal: %w", err)
	}
	if err := j.fault("report.sync"); err != nil {
		f.Close()
		return "", fmt.Errorf("serve: journal: report %s: %w", id, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", fmt.Errorf("serve: journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("serve: journal: %w", err)
	}
	if err := j.fault("report.rename"); err != nil {
		return "", fmt.Errorf("serve: journal: report %s: %w", id, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return "", fmt.Errorf("serve: journal: %w", err)
	}
	return reportSHA(b), nil
}

// ReadReport loads a job's sidecar report and verifies it against the
// digest from its done record. A missing or mismatching sidecar
// returns false — the caller re-enqueues the job, which regenerates
// the report from the (cached) cells.
func (j *Journal) ReadReport(id, sha string) ([]byte, bool) {
	if j == nil {
		return nil, false
	}
	b, err := os.ReadFile(j.reportPath(id))
	if err != nil {
		return nil, false
	}
	if sha != "" && reportSHA(b) != sha {
		return nil, false
	}
	return b, true
}
