package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// winEv builds a distinguishable telemetry window for hub tests.
func winEv(i int) telemetry.WindowEvent {
	return telemetry.WindowEvent{
		Label:   "run",
		Index:   i,
		StartPs: int64(i) * 10e6,
		SpanPs:  10e6,
		Starts:  uint64(i + 1),
		P99Ns:   float64(1000 + i),
	}
}

// TestHubSlowConsumerDropsOldest: a subscriber that never reads loses
// oldest-first from a bounded queue; the publisher never blocks and
// the drops are counted.
func TestHubSlowConsumerDropsOldest(t *testing.T) {
	h := newMetricsHub()
	sub, history := h.subscribe()
	if len(history) != 0 {
		t.Fatalf("fresh hub has %d history records", len(history))
	}
	const extra = 50
	done := make(chan struct{})
	go func() { // must complete even though nobody drains the queue
		for i := 0; i < subQueueCap+extra; i++ {
			h.PublishWindow(winEv(i))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked on a slow consumer")
	}

	evs := sub.take()
	if len(evs) != subQueueCap {
		t.Fatalf("queue holds %d records, want the bounded %d", len(evs), subQueueCap)
	}
	if evs[0].Seq != extra {
		t.Errorf("first surviving record seq = %d, want %d (oldest dropped)", evs[0].Seq, extra)
	}
	if evs[len(evs)-1].Seq != uint64(subQueueCap+extra-1) {
		t.Errorf("newest record seq = %d, want the last published", evs[len(evs)-1].Seq)
	}
	sub.mu.Lock()
	dropped := sub.dropped
	sub.mu.Unlock()
	if dropped != extra {
		t.Errorf("dropped = %d, want %d", dropped, extra)
	}
}

// TestHubHistoryRingBounded: a late subscriber receives at most
// streamHistory windows, the most recent ones.
func TestHubHistoryRingBounded(t *testing.T) {
	h := newMetricsHub()
	const extra = 25
	for i := 0; i < streamHistory+extra; i++ {
		h.PublishWindow(winEv(i))
	}
	_, history := h.subscribe()
	if len(history) != streamHistory {
		t.Fatalf("history = %d records, want %d", len(history), streamHistory)
	}
	if history[0].Seq != extra {
		t.Errorf("history starts at seq %d, want %d", history[0].Seq, extra)
	}
}

func TestHubCloseIdempotentAndNilSafe(t *testing.T) {
	var nilHub *metricsHub
	nilHub.Close(StateDone) // must not panic
	h := newMetricsHub()
	h.Close(StateCancelled)
	h.Close(StateDone) // first terminal state wins
	if done, final, _ := h.state(); !done || final != StateCancelled {
		t.Errorf("state = %v/%s, want done/cancelled", done, final)
	}
	h.PublishWindow(winEv(0)) // post-close publish is dropped
	if windows, _, _, _ := h.stats(); windows != 0 {
		t.Error("publish after Close was counted")
	}
}

// streamLines reads NDJSON records from a metrics stream until n
// records arrive or the stream ends.
func streamLines(t *testing.T, body io.Reader, n int) []StreamWindow {
	t.Helper()
	var out []StreamWindow
	sc := bufio.NewScanner(body)
	for len(out) < n && sc.Scan() {
		var ev StreamWindow
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	return out
}

// TestStreamMidRunSubscribe drives a stubbed job: a subscriber that
// attaches mid-run first receives the already-sealed history, then
// live windows, then the done record.
func TestStreamMidRunSubscribe(t *testing.T) {
	srv, err := New(Config{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	firstHalf := make(chan struct{})
	release := make(chan struct{})
	srv.run = func(j *job) {
		j.mu.Lock()
		j.state = StateRunning
		j.started = srv.now()
		j.mu.Unlock()
		for i := 0; i < 3; i++ {
			j.hub.PublishWindow(winEv(i))
		}
		close(firstHalf)
		<-release
		for i := 3; i < 6; i++ {
			j.hub.PublishWindow(winEv(i))
		}
		j.mu.Lock()
		j.state = StateDone
		j.finished = srv.now()
		j.report = []byte("{}")
		j.mu.Unlock()
		j.hub.Close(StateDone)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := post(t, ts, RunRequest{Suite: "quick", Experiments: []string{"2"}, Metrics: true})
	id := decode[map[string]string](t, resp)["id"]
	<-firstHalf

	sresp, err := http.Get(ts.URL + "/v1/runs/" + id + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want NDJSON", ct)
	}

	past := streamLines(t, sresp.Body, 3)
	for i, ev := range past {
		if ev.Type != "window" || ev.Seq != uint64(i) {
			t.Errorf("history record %d = %+v, want window seq %d", i, ev, i)
		}
	}
	close(release)
	rest := streamLines(t, sresp.Body, 4)
	if len(rest) != 4 {
		t.Fatalf("got %d records after release, want 3 windows + done", len(rest))
	}
	for i, ev := range rest[:3] {
		if ev.Seq != uint64(3+i) {
			t.Errorf("live record %d has seq %d, want %d", i, ev.Seq, 3+i)
		}
	}
	if fin := rest[3]; fin.Type != "done" || fin.State != StateDone {
		t.Errorf("final record = %+v, want done/done", fin)
	}
}

// TestStreamCloseOnCancel: cancelling a queued job ends its metrics
// stream with a cancelled done record.
func TestStreamCloseOnCancel(t *testing.T) {
	srv, err := New(Config{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	srv.run = func(j *job) { <-block } // park the runner on the first job
	defer close(block)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post(t, ts, RunRequest{Suite: "quick", Experiments: []string{"2"}}).Body.Close()
	resp := post(t, ts, RunRequest{Suite: "quick", Experiments: []string{"2"}, Metrics: true})
	id := decode[map[string]string](t, resp)["id"]

	sresp, err := http.Get(ts.URL + "/v1/runs/" + id + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	recs := streamLines(t, sresp.Body, 1)
	if len(recs) != 1 || recs[0].Type != "done" || recs[0].State != StateCancelled {
		t.Fatalf("stream after cancel = %+v, want one done/cancelled record", recs)
	}
}

// TestStreamEndpointErrors: unknown jobs answer 404 and jobs without
// telemetry answer 409.
func TestStreamEndpointErrors(t *testing.T) {
	srv, err := New(Config{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	srv.run = func(j *job) { <-block }
	defer close(block)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/runs/job-9999/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job stream = %d, want 404", resp.StatusCode)
	}

	sub := post(t, ts, RunRequest{Suite: "quick", Experiments: []string{"2"}})
	id := decode[map[string]string](t, sub)["id"]
	resp, err = http.Get(ts.URL + "/v1/runs/" + id + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("no-telemetry job stream = %d, want 409", resp.StatusCode)
	}
}

// TestMetricsSortedAndScrapeStable is the Prometheus determinism
// gate: lines come out sorted, and two consecutive scrapes of an idle
// server are byte-identical — including the per-job stream gauges.
func TestMetricsSortedAndScrapeStable(t *testing.T) {
	srv, err := New(Config{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv.run = func(j *job) {
		j.mu.Lock()
		j.state = StateRunning
		j.started = srv.now()
		j.mu.Unlock()
		for i := 0; i < 7; i++ {
			j.hub.PublishWindow(winEv(i))
		}
		j.mu.Lock()
		j.state = StateDone
		j.finished = srv.now()
		j.report = []byte("{}")
		j.mu.Unlock()
		j.hub.Close(StateDone)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := post(t, ts, RunRequest{Suite: "quick", Experiments: []string{"2"}, Metrics: true})
	id := decode[map[string]string](t, resp)["id"]
	pollDone(t, ts, id)

	scrape := func() string {
		r, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := scrape(), scrape()
	if !bytes.Equal([]byte(a), []byte(b)) {
		t.Errorf("consecutive scrapes differ:\n--- first\n%s--- second\n%s", a, b)
	}
	lines := strings.Split(strings.TrimRight(a, "\n"), "\n")
	if !sort.StringsAreSorted(lines) {
		t.Errorf("metrics lines are not sorted:\n%s", a)
	}
	for _, want := range []string{
		`kurecd_job_stream_windows_total{job="` + id + `"} 7`,
		`kurecd_job_stream_subscribers{job="` + id + `"} 0`,
		`kurecd_job_stream_dropped_total{job="` + id + `"} 0`,
		`kurecd_job_last_p99_ns{job="` + id + `"} 1006`,
	} {
		if !strings.Contains(a, want) {
			t.Errorf("metrics missing %q:\n%s", want, a)
		}
	}
}

// TestServedMetricsReportMatchesCLI extends the served-vs-direct
// byte-identity guarantee to metrics-enabled requests: the job's
// report — including every time series — must equal what the
// experiments package produces for the same suite.
func TestServedMetricsReportMatchesCLI(t *testing.T) {
	srv, err := New(Config{Parallel: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := tinyRequest()
	req.Metrics = true
	resp := post(t, ts, req)
	id := decode[map[string]string](t, resp)["id"]
	st := pollDone(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("job state = %s (error %q)", st.State, st.Error)
	}
	rresp, err := http.Get(ts.URL + "/v1/runs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(got, []byte(`"timeseries"`)) {
		t.Fatal("served metrics report has no timeseries section")
	}

	suite, err := req.suite()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := req.plan(suite)
	if err != nil {
		t.Fatal(err)
	}
	want, err := suite.Report(experiments.RunPlan(plan, nil)).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("served metrics report differs from direct report (%d vs %d bytes)", len(got), len(want))
	}
}

// TestServedAttributionReportMatchesCLI: an attribution-enabled
// request's served report — attribution section, per-cell phase
// summaries and all — must equal what the experiments package produces
// directly for the same suite.
func TestServedAttributionReportMatchesCLI(t *testing.T) {
	srv, err := New(Config{Parallel: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := tinyRequest()
	req.Attribution = true
	resp := post(t, ts, req)
	id := decode[map[string]string](t, resp)["id"]
	st := pollDone(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("job state = %s (error %q)", st.State, st.Error)
	}
	rresp, err := http.Get(ts.URL + "/v1/runs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(got, []byte(`"attribution"`)) {
		t.Fatal("served attribution report has no attribution section")
	}

	suite, err := req.suite()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := req.plan(suite)
	if err != nil {
		t.Fatal(err)
	}
	want, err := suite.Report(experiments.RunPlan(plan, nil)).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("served attribution report differs from direct report (%d vs %d bytes)", len(got), len(want))
	}
}

// TestMetricsRequestValidation: a window override without metrics is
// rejected at submit time.
func TestMetricsRequestValidation(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := post(t, ts, RunRequest{Suite: "quick", MetricsWindowUs: 5})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("window-without-metrics = %d, want 400", resp.StatusCode)
	}
	resp = post(t, ts, RunRequest{Suite: "quick", Metrics: true, MetricsWindowUs: -1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative window = %d, want 400", resp.StatusCode)
	}
}
