package mem

import (
	"testing"

	"repro/internal/sim"
)

func TestReadLatency(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, 80*sim.Nanosecond, 48)
	g := eng.NewGate()
	d.Read(g)
	eng.Run()
	if !g.Fired() || g.FiredAt() != 80*sim.Nanosecond {
		t.Errorf("read completed at %v, want 80ns", g.FiredAt())
	}
	if d.Reads() != 1 || d.Writes() != 0 {
		t.Errorf("reads=%d writes=%d, want 1,0", d.Reads(), d.Writes())
	}
}

func TestWriteCounted(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, 80*sim.Nanosecond, 48)
	g := eng.NewGate()
	d.Write(g)
	eng.Run()
	if d.Writes() != 1 {
		t.Errorf("writes=%d, want 1", d.Writes())
	}
}

func TestParallelReadsWithinLimit(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, 80*sim.Nanosecond, 48)
	gates := make([]*sim.Gate, 48)
	for i := range gates {
		gates[i] = eng.NewGate()
		d.Read(gates[i])
	}
	end := eng.Run()
	// All 48 fit simultaneously: total time is one latency.
	if end != 80*sim.Nanosecond {
		t.Errorf("48 parallel reads took %v, want 80ns", end)
	}
	if d.MaxOutstandingSeen() != 48 {
		t.Errorf("max outstanding %d, want 48", d.MaxOutstandingSeen())
	}
}

func TestOutstandingLimitSerializes(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, 100*sim.Nanosecond, 2)
	for i := 0; i < 4; i++ {
		d.Read(eng.NewGate())
	}
	end := eng.Run()
	// 4 reads through 2 slots: two waves of 100ns.
	if end != 200*sim.Nanosecond {
		t.Errorf("4 reads over 2 slots took %v, want 200ns", end)
	}
}

func TestReadBlocking(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, 80*sim.Nanosecond, 48)
	var woke sim.Time
	eng.Go("reader", func(p *sim.Proc) {
		d.ReadBlocking(p)
		woke = p.Now()
	})
	eng.Run()
	if woke != 80*sim.Nanosecond {
		t.Errorf("blocking read returned at %v, want 80ns", woke)
	}
}
