// Package mem models the host DRAM system: the normalization target of
// every experiment in the paper, and the memory that the device's
// request fetchers DMA into and out of on the software-managed-queue
// path.
//
// The model is intentionally simple — a fixed loaded latency with a
// chip-level cap on simultaneous accesses — because the paper uses DRAM
// only as a baseline and explicitly verified that its outstanding-access
// limit (>= 48) never binds in any experiment (§V-B).
package mem

import (
	"repro/internal/sim"
)

// DRAM is the host memory system.
type DRAM struct {
	eng     *sim.Engine
	latency sim.Time
	slots   *sim.TokenPool

	reads  uint64
	writes uint64
}

// New creates a DRAM model with the given loaded access latency and
// chip-level outstanding-access limit.
func New(eng *sim.Engine, latency sim.Time, maxOutstanding int) *DRAM {
	return &DRAM{
		eng:     eng,
		latency: latency,
		slots:   eng.NewTokenPool("dram", maxOutstanding),
	}
}

// Latency returns the loaded access latency.
func (d *DRAM) Latency() sim.Time { return d.latency }

// Reads returns the number of read accesses completed or in flight.
func (d *DRAM) Reads() uint64 { return d.reads }

// Writes returns the number of write accesses completed or in flight.
func (d *DRAM) Writes() uint64 { return d.writes }

// MaxOutstandingSeen returns the peak simultaneous occupancy observed,
// used to check that DRAM never becomes the bottleneck (§V-B).
func (d *DRAM) MaxOutstandingSeen() int { return d.slots.MaxInUse() }

// Read performs an asynchronous read; done fires when the data is
// available. Waits for a free slot first if the chip-level limit is
// reached.
func (d *DRAM) Read(done *sim.Gate) {
	d.reads++
	d.access(done)
}

// Write performs an asynchronous write; done fires when it completes.
// Device-initiated response-data and completion-queue writes land here
// on the software-managed-queue path.
func (d *DRAM) Write(done *sim.Gate) {
	d.writes++
	d.access(done)
}

func (d *DRAM) access(done *sim.Gate) {
	d.slots.OnAcquire(func() {
		d.eng.After(d.latency, func() {
			d.slots.Release()
			done.Fire()
		})
	})
}

// ReadBlocking performs a read from process context, blocking the
// process for the access latency.
func (d *DRAM) ReadBlocking(p *sim.Proc) {
	g := d.eng.NewGate()
	d.Read(g)
	p.Wait(g)
}
