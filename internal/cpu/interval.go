// Package cpu provides the host-core timing models.
//
// Two execution regimes matter in the paper:
//
//   - On-demand execution (unmodified software): the out-of-order core
//     overlaps loads with whatever independent work its instruction
//     window can reach. This regime is modeled analytically by the
//     interval model in this file and produces both Fig 2 and every
//     DRAM baseline that results are normalized to.
//   - Threaded execution (prefetch or software-queue mechanisms): the
//     core cycles through user-level threads; that model lives in
//     internal/core because it embodies the paper's contribution.
//
// The interval model captures exactly the three properties the paper
// attributes to on-demand execution (§V-A): dependent work serializes
// behind its load, the instruction window (~100-200 entries) bounds how
// far ahead independent loads can issue, and the per-core LFBs bound how
// many of those loads can be in flight.
package cpu

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
)

// IterSpec is one iteration of the demand-access loop: Reads independent
// cache-line loads followed by WorkInstr work instructions that depend
// on all of them (the microbenchmark's structure, §IV-C, which the
// application benchmarks share after their work is replaced by the
// benign loop).
//
// Dependent marks a serial dependence chain: the iteration's loads use
// addresses produced by the previous iteration's loads (pointer
// chasing), so they cannot issue until those complete, whatever the
// window would otherwise allow — the pattern the paper's introduction
// singles out as defeating out-of-order latency hiding.
type IterSpec struct {
	Reads     int
	WorkInstr int
	Dependent bool
}

// UniformTrace returns n identical iterations.
func UniformTrace(n, reads, workInstr int) []IterSpec {
	t := make([]IterSpec, n)
	for i := range t {
		t[i] = IterSpec{Reads: reads, WorkInstr: workInstr}
	}
	return t
}

// OnDemandResult summarizes an interval-model run.
type OnDemandResult struct {
	Elapsed   sim.Time
	Accesses  int
	WorkInstr int64

	// Recovery accounting, populated only by fault-aware runs.
	Retries   int // re-issues after an access timeout
	Timeouts  int // timeouts that fired
	Abandoned int // accesses given up after the retry budget

	// Latencies holds the per-access observed latencies (including any
	// recovery) in a bounded log-bucketed histogram of picosecond
	// values.
	Latencies *stats.Histogram
}

// LoadObserver receives one completed load's lifecycle: its issue and
// completion times plus the recovery accounting of its latency draw.
// Observers must be pure recorders — the interval model's timing does
// not depend on them.
type LoadObserver func(issue, complete sim.Time, out fault.AccessOutcome)

// iterRecord is the retirement bookkeeping for one completed iteration,
// kept so later iterations can ask "when had the core retired x
// instructions?" (the window-occupancy constraint).
type iterRecord struct {
	base      int64 // instructions retired before this iteration
	reads     int
	workInstr int
	workStart sim.Time // loads retire here; work ramps from here
	workEnd   sim.Time
}

// RunOnDemand executes a trace of demand-access iterations on one core
// against a memory with the given load latency and outstanding-access
// limit, and returns the timing.
//
// Model: the loads of iteration j dispatch once (a) the youngest of them
// fits in the instruction window — i.e. all but the window-size most
// recent older instructions have retired — and (b) enough outstanding-
// access slots (LFBs, and for devices the chip-level queue) are free.
// All loads of an iteration issue together (they are adjacent and
// independent); the i-th completes after latency + i*issueGap (the
// memory-side serialization of simultaneous accesses); loads retire when
// prior work has drained; the iteration's work then occupies the core
// for WorkInstr/WorkIPC cycles.
func RunOnDemand(cfg platform.Config, trace []IterSpec, latency sim.Time, maxOutstanding int, issueGap sim.Time) OnDemandResult {
	return runOnDemand(cfg, trace, latency, maxOutstanding, issueGap, nil, nil)
}

// runOnDemand is RunOnDemand with an optional per-load fault draw and an
// optional per-load observer: when draw is non-nil each load's latency
// (including any timeout/retry recovery) comes from one draw, in issue
// order, so fault-aware runs stay deterministic; when observe is non-nil
// it is called once per load with the load's issue/completion times (the
// trace layer's access spans for the analytic mechanism).
func runOnDemand(cfg platform.Config, trace []IterSpec, latency sim.Time, maxOutstanding int, issueGap sim.Time, draw func() fault.AccessOutcome, observe LoadObserver) OnDemandResult {
	if maxOutstanding > cfg.LFBPerCore {
		// A single core can never have more misses in flight than LFBs.
		maxOutstanding = cfg.LFBPerCore
	}
	res := OnDemandResult{}
	if len(trace) == 0 {
		return res
	}

	// slots[i] is the time the i-th oldest outstanding-access slot
	// frees; with a single latency class, slots free in FIFO order.
	slots := make([]sim.Time, maxOutstanding)

	records := make([]iterRecord, 0, len(trace))
	ptr := 0 // monotone pointer into records for retirement queries
	var base int64
	var lastIssue, prevWorkEnd, prevComplete sim.Time

	// retiredBy returns the earliest time the core has retired x
	// instructions, walking the retirement timeline built so far.
	retiredBy := func(x int64) sim.Time {
		if x <= 0 {
			return 0
		}
		for ptr < len(records) {
			r := &records[ptr]
			end := r.base + int64(r.reads) + int64(r.workInstr)
			if end < x {
				ptr++
				continue
			}
			if x <= r.base+int64(r.reads) {
				// Loads retire in a burst at workStart.
				return r.workStart
			}
			// Within the linear work ramp.
			frac := float64(x-r.base-int64(r.reads)) / float64(r.workInstr)
			return r.workStart + sim.Time(frac*float64(r.workEnd-r.workStart))
		}
		// Beyond everything retired so far; caller logic prevents this
		// (iterations are processed in order), but be safe.
		return prevWorkEnd
	}

	for _, it := range trace {
		k := it.Reads
		if k <= 0 {
			k = 1
		}
		if k > maxOutstanding {
			k = maxOutstanding
		}

		// (a) Window constraint: the youngest load of the batch (index
		// base+k-1) dispatches when instruction base+k-1-window retired.
		windowReady := retiredBy(base + int64(k) - int64(cfg.WindowSize))
		// (b) Slot constraint: the k-th earliest-freeing slot.
		slotReady := slots[k-1]
		// (c) Address dependence: a chained load waits for the load
		// that produced its address.
		if it.Dependent {
			windowReady = maxTime(windowReady, prevComplete)
		}

		issue := maxTime(maxTime(windowReady, slotReady), lastIssue)
		lastIssue = issue
		if res.Latencies == nil {
			res.Latencies = stats.NewHistogram()
		}
		// The batch's loads complete staggered by the memory's issue
		// gap; the dependent work waits for the last of them. Under
		// fault injection each load's latency is its own recovery-
		// inclusive draw instead of the uniform value.
		loadDone := make([]sim.Time, k)
		for i := 0; i < k; i++ {
			lat := latency
			out := fault.AccessOutcome{Latency: lat}
			if draw != nil {
				out = draw()
				lat = out.Latency
				res.Retries += out.Retries
				res.Timeouts += out.Timeouts
				if out.Abandoned {
					res.Abandoned++
				}
			}
			res.Latencies.Record(int64(out.Latency))
			loadDone[i] = issue + lat + sim.Time(i)*issueGap
			if observe != nil {
				observe(issue, loadDone[i], out)
			}
		}
		complete := loadDone[0]
		for _, t := range loadDone[1:] {
			complete = maxTime(complete, t)
		}

		workStart := maxTime(complete, prevWorkEnd)
		workEnd := workStart + cfg.WorkTime(it.WorkInstr)

		// Recycle the k slots used: each frees at its own completion.
		copy(slots, slots[k:])
		copy(slots[maxOutstanding-k:], loadDone)
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })

		records = append(records, iterRecord{
			base: base, reads: k, workInstr: it.WorkInstr,
			workStart: workStart, workEnd: workEnd,
		})
		base += int64(k) + int64(it.WorkInstr)
		prevWorkEnd = workEnd
		prevComplete = complete

		res.Accesses += k
		res.WorkInstr += int64(it.WorkInstr)
	}
	res.Elapsed = prevWorkEnd
	return res
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// DRAMBaseline runs the single-threaded on-demand DRAM baseline for a
// trace — the denominator of every normalized result in the paper
// (§IV-C). With MLP in the trace, "the out-of-order scheduler finds
// multiple independent accesses in the instruction window and issues
// them into the memory system in parallel" (§V-B), which this model
// reproduces through its window constraint.
func DRAMBaseline(cfg platform.Config, trace []IterSpec) OnDemandResult {
	return RunOnDemand(cfg, trace, cfg.DRAMLatency, cfg.DRAMMaxOutstanding, cfg.DRAMIssueGap)
}

// DeviceOnDemand runs the single-threaded on-demand microsecond-device
// case of Fig 2: the same core model, but loads take the device latency
// and in-flight accesses are additionally bounded by the chip-level
// MMIO queue.
func DeviceOnDemand(cfg platform.Config, trace []IterSpec) OnDemandResult {
	limit := cfg.ChipQueueMMIO
	if cfg.LFBPerCore < limit {
		limit = cfg.LFBPerCore
	}
	// The over-provisioned emulator pays no issue gap (§IV-A).
	return RunOnDemand(cfg, trace, cfg.DeviceLatency, limit, 0)
}

// DeviceOnDemandFaulty is DeviceOnDemand under fault injection: each
// load's latency comes from the injector's analytic timeout/retry
// recovery model (device stragglers and drops, PCIe corruption and
// stalls), with the platform's backed-off per-attempt timeouts.
func DeviceOnDemandFaulty(cfg platform.Config, trace []IterSpec, inj *fault.Injector) OnDemandResult {
	return DeviceOnDemandObserved(cfg, trace, inj, nil)
}

// DeviceOnDemandObserved is DeviceOnDemandFaulty with a per-load
// observer: observe (when non-nil) receives every load's issue and
// completion times, letting the trace layer synthesize access-lifecycle
// spans for the analytic on-demand mechanism, which has no engine events
// to hook. The observer never affects timing.
func DeviceOnDemandObserved(cfg platform.Config, trace []IterSpec, inj *fault.Injector, observe LoadObserver) OnDemandResult {
	limit := cfg.ChipQueueMMIO
	if cfg.LFBPerCore < limit {
		limit = cfg.LFBPerCore
	}
	var draw func() fault.AccessOutcome
	if inj != nil {
		draw = func() fault.AccessOutcome {
			return inj.HostAccessLatency(cfg.DeviceLatency, cfg.PCIeReplayPenalty, cfg.RetryTimeout, cfg.MaxRetries)
		}
	}
	return runOnDemand(cfg, trace, cfg.DeviceLatency, limit, 0, draw, observe)
}
