package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/platform"
	"repro/internal/sim"
)

func cfg() platform.Config { return platform.Default() }

func TestEmptyTrace(t *testing.T) {
	r := RunOnDemand(cfg(), nil, sim.Microsecond, 10, 0)
	if r.Elapsed != 0 || r.Accesses != 0 || r.WorkInstr != 0 {
		t.Errorf("empty trace result = %+v", r)
	}
}

func TestSingleIteration(t *testing.T) {
	c := cfg()
	r := RunOnDemand(c, UniformTrace(1, 1, 200), sim.Microsecond, 10, 0)
	want := sim.Microsecond + c.WorkTime(200)
	if r.Elapsed != want {
		t.Errorf("elapsed %v, want %v (latency + work)", r.Elapsed, want)
	}
	if r.Accesses != 1 || r.WorkInstr != 200 {
		t.Errorf("accesses=%d work=%d", r.Accesses, r.WorkInstr)
	}
}

func TestWorkDependsOnLoad(t *testing.T) {
	// Work cannot start before its load completes, however small it is.
	c := cfg()
	r := RunOnDemand(c, UniformTrace(1, 1, 1), 500*sim.Nanosecond, 10, 0)
	if r.Elapsed < 500*sim.Nanosecond {
		t.Errorf("elapsed %v precedes load completion", r.Elapsed)
	}
}

func TestWindowLimitsOverlap(t *testing.T) {
	c := cfg() // window 192
	// Iterations much longer than the window: no cross-iteration
	// overlap, so time ~ n*(latency + work).
	n := 50
	long := RunOnDemand(c, UniformTrace(n, 1, 5000), sim.Microsecond, 10, 0)
	wantSerial := sim.Time(n) * (sim.Microsecond + c.WorkTime(5000))
	if long.Elapsed < wantSerial*95/100 {
		t.Errorf("long-work elapsed %v, want ~%v (no overlap)", long.Elapsed, wantSerial)
	}

	// Short iterations fit several times into the window: substantial
	// overlap, so much faster than serial.
	short := RunOnDemand(c, UniformTrace(n, 1, 50), sim.Microsecond, 10, 0)
	serialShort := sim.Time(n) * (sim.Microsecond + c.WorkTime(50))
	if short.Elapsed > serialShort*70/100 {
		t.Errorf("short-work elapsed %v vs serial %v: window found no overlap", short.Elapsed, serialShort)
	}
}

func TestOutstandingLimitBinds(t *testing.T) {
	c := cfg()
	c.WindowSize = 100000 // window never binds
	// 100 iterations of 1 load + tiny work, 1us latency, limit 2:
	// throughput ~ 2 loads per microsecond.
	n := 100
	r := RunOnDemand(c, UniformTrace(n, 1, 1), sim.Microsecond, 2, 0)
	wantMin := sim.Time(n/2) * sim.Microsecond
	if r.Elapsed < wantMin {
		t.Errorf("elapsed %v, want >= %v with 2 slots", r.Elapsed, wantMin)
	}
	if r.Elapsed > wantMin+2*sim.Microsecond {
		t.Errorf("elapsed %v far above slot-limited bound %v", r.Elapsed, wantMin)
	}
}

func TestSlotLimitCappedByLFB(t *testing.T) {
	c := cfg() // 10 LFBs
	c.WindowSize = 100000
	n := 100
	// Asking for 48 outstanding still caps at 10 LFBs per core.
	r := RunOnDemand(c, UniformTrace(n, 1, 1), sim.Microsecond, 48, 0)
	wantMin := sim.Time(n/10) * sim.Microsecond
	if r.Elapsed < wantMin*95/100 || r.Elapsed > wantMin*120/100 {
		t.Errorf("elapsed %v, want ~%v (10-LFB cap)", r.Elapsed, wantMin)
	}
}

func TestMLPBatchIssuesTogether(t *testing.T) {
	c := cfg()
	// One iteration with 4 independent loads: they overlap fully, so a
	// single latency covers all of them.
	r := RunOnDemand(c, UniformTrace(1, 4, 100), sim.Microsecond, 10, 0)
	want := sim.Microsecond + c.WorkTime(100)
	if r.Elapsed != want {
		t.Errorf("elapsed %v, want %v (4 parallel loads)", r.Elapsed, want)
	}
	if r.Accesses != 4 {
		t.Errorf("accesses = %d", r.Accesses)
	}
}

func TestDRAMBaselineFasterThanDevice(t *testing.T) {
	c := cfg()
	trace := UniformTrace(1000, 1, 200)
	dram := DRAMBaseline(c, trace)
	dev := DeviceOnDemand(c, trace)
	if dram.Elapsed >= dev.Elapsed {
		t.Errorf("DRAM %v not faster than device %v", dram.Elapsed, dev.Elapsed)
	}
	// Fig 2's headline: at moderate work counts the on-demand device is
	// abysmal — well under 20% of DRAM.
	ratio := float64(dram.Elapsed) / float64(dev.Elapsed)
	if ratio > 0.2 {
		t.Errorf("on-demand device at %.2f of DRAM, paper says abysmal (<0.2)", ratio)
	}
}

func TestLargeWorkAbatesDevicePenalty(t *testing.T) {
	// Fig 2: "Only when there is a large amount of work per device
	// access (e.g., 5,000 instructions), the performance impact of the
	// device access is partially abated."
	c := cfg()
	trace := UniformTrace(200, 1, 5000)
	dram := DRAMBaseline(c, trace)
	dev := DeviceOnDemand(c, trace)
	ratio := float64(dram.Elapsed) / float64(dev.Elapsed)
	if ratio < 0.5 || ratio > 0.9 {
		t.Errorf("5000-instr ratio %.2f, want partial abatement (0.5..0.9)", ratio)
	}
}

func TestNormalizedDecreasesWithLatency(t *testing.T) {
	c := cfg()
	trace := UniformTrace(500, 1, 200)
	base := DRAMBaseline(c, trace).Elapsed
	var prev float64 = 2
	for _, lat := range []sim.Time{1, 2, 4} {
		dev := DeviceOnDemand(c.WithLatency(lat*sim.Microsecond), trace)
		norm := float64(base) / float64(dev.Elapsed)
		if norm >= prev {
			t.Errorf("normalized perf not decreasing at %vus: %.3f >= %.3f", lat, norm, prev)
		}
		prev = norm
	}
}

func TestZeroReadsTreatedAsOne(t *testing.T) {
	c := cfg()
	r := RunOnDemand(c, []IterSpec{{Reads: 0, WorkInstr: 10}}, sim.Microsecond, 10, 0)
	if r.Accesses != 1 {
		t.Errorf("accesses = %d, want 1 (clamped)", r.Accesses)
	}
}

func TestUniformTrace(t *testing.T) {
	tr := UniformTrace(3, 2, 100)
	if len(tr) != 3 {
		t.Fatalf("len = %d", len(tr))
	}
	for _, it := range tr {
		if it.Reads != 2 || it.WorkInstr != 100 {
			t.Errorf("iter = %+v", it)
		}
	}
}

// Property: elapsed time is monotone in latency and never less than the
// pure work time or a single latency.
func TestElapsedBoundsProperty(t *testing.T) {
	c := cfg()
	f := func(iters, work uint8, latUs uint8) bool {
		n := int(iters%32) + 1
		w := int(work) * 10
		lat := sim.Time(int(latUs%8)+1) * 500 * sim.Nanosecond
		r := RunOnDemand(c, UniformTrace(n, 1, w), lat, 10, 0)
		r2 := RunOnDemand(c, UniformTrace(n, 1, w), 2*lat, 10, 0)
		minBound := sim.Time(n)*c.WorkTime(w) + lat
		return r.Elapsed >= minBound && r2.Elapsed >= r.Elapsed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: throughput never exceeds the outstanding-limit bound
// (accesses per latency window <= maxOutstanding).
func TestLittleLawBoundProperty(t *testing.T) {
	c := cfg()
	c.WindowSize = 100000
	f := func(slots uint8) bool {
		s := int(slots%10) + 1
		n := 64
		r := RunOnDemand(c, UniformTrace(n, 1, 1), sim.Microsecond, s, 0)
		// n accesses need at least ceil(n/s) latency windows.
		waves := (n + s - 1) / s
		return r.Elapsed >= sim.Time(waves-1)*sim.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
