// Package report defines the versioned, machine-readable run-report
// schema of the experiment harness: every `killerusec` sweep can be
// exported as one self-describing JSON artifact holding the per-figure
// cell values, the full sweep parameterization, the platform constants
// of the paper's Table I, per-run diagnostics, and build metadata.
//
// Reports are the substrate of the results-observability pipeline:
// internal/expect evaluates the paper's qualitative claims against
// them, and `kurec check` diffs two reports cell-by-cell to gate
// regressions in CI. Like the trace layer, report emission is
// deterministic: the same seed and flags produce a byte-identical file
// (fields marshal in declaration order, NaN cells render as null, and
// no wall-clock timestamps are recorded).
package report

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"

	"repro/internal/platform"
	"repro/internal/stats"
)

// SchemaName identifies the document type; Version is bumped on any
// incompatible change to the layout below.
const (
	SchemaName    = "killerusec-report"
	SchemaVersion = 1
)

// Float is a JSON-safe float64: NaN and ±Inf marshal as null (JSON has
// no encoding for them) and null unmarshals back to NaN, so a missing
// cell survives a round trip without poisoning arithmetic.
type Float float64

// MarshalJSON renders non-finite values as null.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return []byte(strconv.FormatFloat(v, 'g', -1, 64)), nil
}

// UnmarshalJSON accepts numbers and null (null becomes NaN).
func (f *Float) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = Float(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// IsNaN reports whether the cell is missing.
func (f Float) IsNaN() bool { return math.IsNaN(float64(f)) }

// Report is one sweep's complete machine-readable artifact.
type Report struct {
	Schema   string   `json:"schema"`
	Version  int      `json:"version"`
	Tool     string   `json:"tool"`
	Build    Build    `json:"build"`
	Platform Platform `json:"platform"`
	Sweep    Sweep    `json:"sweep"`
	// Timeseries describes the flight-recorder configuration when the
	// sweep ran with -metrics; nil (and omitted) otherwise, so reports
	// without telemetry stay byte-identical to the pre-telemetry
	// schema.
	Timeseries *TimeseriesMeta `json:"timeseries,omitempty"`
	// Attribution describes the latency-attribution taxonomy when the
	// sweep ran with -attrib; nil (and omitted) otherwise, so reports
	// without attribution stay byte-identical to the pre-attribution
	// schema.
	Attribution *AttributionMeta `json:"attribution,omitempty"`
	// Cluster describes the fleet-simulation layer when the sweep ran
	// cluster experiments; nil (and omitted) otherwise, so reports
	// without fleet tables stay byte-identical to the pre-cluster
	// schema.
	Cluster *ClusterMeta `json:"cluster,omitempty"`
	Tables  []*Table     `json:"tables"`
}

// ClusterVersion is bumped on any incompatible change to the per-cell
// FleetSummary layout below or to the policy/shape vocabulary.
const ClusterVersion = 1

// ClusterMeta stamps the fleet-simulation vocabulary of a sweep that
// ran cluster experiments: the routing policies and arrival shapes the
// per-cell fleet summaries draw from.
type ClusterMeta struct {
	Version  int      `json:"version"`
	Policies []string `json:"policies"`
	Shapes   []string `json:"shapes"`
}

// TimeseriesVersion is bumped on any incompatible change to the
// per-cell TimeSeries layout below.
const TimeseriesVersion = 1

// TimeseriesMeta stamps the recorder parameters of a -metrics sweep.
type TimeseriesMeta struct {
	Version    int     `json:"version"`
	WindowUs   float64 `json:"window_us"`
	MaxWindows int     `json:"max_windows"`
}

// AttributionVersion is bumped on any incompatible change to the
// per-cell AttribSummary layout below or to the phase taxonomy.
const AttributionVersion = 1

// AttributionMeta stamps the phase taxonomy of a -attrib sweep: the
// canonical slug order every per-cell summary (and every per-window
// phase column) follows.
type AttributionMeta struct {
	Version int      `json:"version"`
	Phases  []string `json:"phases"`
}

// Build stamps the environment that produced the report. Wall-clock
// timestamps are deliberately absent: determinism requires that the
// same seed and flags yield byte-identical reports.
type Build struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	Module    string `json:"module"`
}

// CurrentBuild returns the build stamp of the running binary.
func CurrentBuild() Build {
	return Build{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		Module:    "repro",
	}
}

// Platform restates the paper's Table I constants (and the handful of
// calibrated costs that shape every figure) from platform.Config, in
// report-friendly units.
type Platform struct {
	CPUFreqGHz        float64 `json:"cpu_freq_ghz"`
	IssueWidth        int     `json:"issue_width"`
	WindowSize        int     `json:"window_size"`
	WorkIPC           float64 `json:"work_ipc"`
	LFBPerCore        int     `json:"lfb_per_core"`
	ChipQueueMMIO     int     `json:"chip_queue_mmio"`
	DRAMLatencyNs     float64 `json:"dram_latency_ns"`
	PCIeBandwidthGBps float64 `json:"pcie_bandwidth_gbps"`
	PCIePropagationNs float64 `json:"pcie_propagation_ns"`
	DeviceLatencyNs   float64 `json:"device_latency_ns"`
	CtxSwitchNs       float64 `json:"ctx_switch_ns"`
	FetchBurst        int     `json:"fetch_burst"`
	DescriptorBytes   int     `json:"descriptor_bytes"`
}

// PlatformFrom extracts the report's platform stamp from a config.
func PlatformFrom(c platform.Config) Platform {
	return Platform{
		CPUFreqGHz:        c.CPUFreqGHz,
		IssueWidth:        c.IssueWidth,
		WindowSize:        c.WindowSize,
		WorkIPC:           c.WorkIPC,
		LFBPerCore:        c.LFBPerCore,
		ChipQueueMMIO:     c.ChipQueueMMIO,
		DRAMLatencyNs:     c.DRAMLatency.Nanoseconds(),
		PCIeBandwidthGBps: c.PCIeBandwidth / 1e9,
		PCIePropagationNs: c.PCIePropagation.Nanoseconds(),
		DeviceLatencyNs:   c.DeviceLatency.Nanoseconds(),
		CtxSwitchNs:       c.CtxSwitch.Nanoseconds(),
		FetchBurst:        c.FetchBurst,
		DescriptorBytes:   c.DescriptorBytes,
	}
}

// Sweep records the full parameterization of the run, enough to
// reproduce it: `killerusec` flags plus the constants the experiment
// code bakes in (latency sweep, work counts, MLP levels, the graph
// generator seed).
type Sweep struct {
	Quick         bool      `json:"quick"`
	Iterations    int       `json:"iterations"`
	AppLookups    int       `json:"app_lookups"`
	Threads       []int     `json:"threads"`
	UseReplay     bool      `json:"use_replay"`
	LatenciesUs   []float64 `json:"latencies_us"`
	WorkCounts    []int     `json:"work_counts"`
	MLPLevels     []int     `json:"mlp_levels"`
	KroneckerSeed int64     `json:"kronecker_seed"`
}

// Table mirrors stats.Table: one figure-shaped result.
type Table struct {
	ID     string    `json:"id"`
	Title  string    `json:"title"`
	XLabel string    `json:"x_label"`
	YLabel string    `json:"y_label"`
	Notes  []string  `json:"notes,omitempty"`
	Series []*Series `json:"series"`
}

// Series is one labeled curve: X[i] maps to Y[i]; Diags, when present,
// is index-aligned with X and holds the per-cell run diagnostics (null
// entries for cells measured without an engine). Metrics, present only
// in -metrics sweeps, is likewise index-aligned and carries each
// cell's flight-recorder time series (null for cells that record none,
// e.g. DRAM baselines). Attrib, present only in -attrib sweeps, is
// likewise index-aligned and carries each cell's latency-attribution
// summary (null for cells measured without an engine).
type Series struct {
	Label   string           `json:"label"`
	X       []Float          `json:"x"`
	Y       []Float          `json:"y"`
	Diags   []*Diag          `json:"diags,omitempty"`
	Metrics []*TimeSeries    `json:"metrics,omitempty"`
	Attrib  []*AttribSummary `json:"attrib,omitempty"`
	// Fleet, present only in cluster tables, is likewise index-aligned
	// and carries each cell's fleet summary.
	Fleet []*FleetSummary `json:"fleet,omitempty"`
}

// FleetSummary mirrors stats.FleetSummary: one fleet cell's outcome —
// the aggregate rates, the merged end-to-end latency percentiles, and
// the per-instance saturation accounting.
type FleetSummary struct {
	Policy string `json:"policy"`
	Shape  string `json:"shape"`
	Mech   string `json:"mech"`

	Rho             Float  `json:"rho"`
	OfferedPerSec   Float  `json:"offered_per_sec"`
	CompletedPerSec Float  `json:"completed_per_sec"`
	Arrived         uint64 `json:"arrived"`
	Completed       uint64 `json:"completed"`
	ElapsedSeconds  Float  `json:"elapsed_seconds"`

	P50Ns  Float `json:"p50_ns"`
	P99Ns  Float `json:"p99_ns"`
	P999Ns Float `json:"p999_ns"`

	Instances []FleetInstance `json:"instances"`
}

// FleetInstance is one fleet member's slice of a FleetSummary.
type FleetInstance struct {
	Arrived          uint64 `json:"arrived"`
	Completed        uint64 `json:"completed"`
	Windows          int    `json:"windows"`
	SaturatedWindows int    `json:"saturated_windows"`
	PeakOutstanding  int    `json:"peak_outstanding"`
	P50Ns            Float  `json:"p50_ns"`
	P99Ns            Float  `json:"p99_ns"`
	P999Ns           Float  `json:"p999_ns"`
}

// AttribSummary mirrors stats.AttribSummary: one cell's per-phase
// latency breakdown. Sums stay in exact integer picoseconds — the
// phase sums total exactly total_ps (Validate re-checks it), so report
// consumers can rebuild the waterfall without rounding drift.
type AttribSummary struct {
	Label      string     `json:"label"`
	Phases     []PhaseSum `json:"phases"`
	Accesses   uint64     `json:"accesses"`
	TotalPs    int64      `json:"total_ps"`
	Mismatches uint64     `json:"mismatches"`
}

// PhaseSum is one phase's aggregate within a cell.
type PhaseSum struct {
	Phase string `json:"phase"`
	SumPs int64  `json:"sum_ps"`
	Count uint64 `json:"count"`
	P50Ns Float  `json:"p50_ns"`
	P99Ns Float  `json:"p99_ns"`
	MaxNs Float  `json:"max_ns"`
}

// PhasePs returns the picosecond total for the named phase (0 if the
// summary is nil or the phase is absent).
func (a *AttribSummary) PhasePs(phase string) int64 {
	if a == nil {
		return 0
	}
	for _, p := range a.Phases {
		if p.Phase == phase {
			return p.SumPs
		}
	}
	return 0
}

// MeanNs returns the mean end-to-end access window in nanoseconds
// (NaN when no accesses closed into the summary).
func (a *AttribSummary) MeanNs() float64 {
	if a == nil || a.Accesses == 0 {
		return math.NaN()
	}
	return float64(a.TotalPs) / 1e3 / float64(a.Accesses)
}

// DominantPhase returns the phase with the largest total and its share
// of total_ps; ties break toward the earlier phase in taxonomy order.
func (a *AttribSummary) DominantPhase() (string, float64) {
	if a == nil || a.TotalPs <= 0 {
		return "", 0
	}
	best := -1
	for i, p := range a.Phases {
		if best < 0 || p.SumPs > a.Phases[best].SumPs {
			best = i
		}
	}
	if best < 0 {
		return "", 0
	}
	return a.Phases[best].Phase, float64(a.Phases[best].SumPs) / float64(a.TotalPs)
}

// TimeSeries mirrors stats.TimeSeries in report units: microseconds
// for window spans, nanoseconds for latencies. All per-window arrays
// are index-aligned; window i covers [i*window_us, (i+1)*window_us)
// except the last, whose actual span is last_span_us.
type TimeSeries struct {
	WindowUs   Float `json:"window_us"`
	LastSpanUs Float `json:"last_span_us"`
	Coalesced  int   `json:"coalesced,omitempty"`

	Starts    []uint64 `json:"starts"`
	Completes []uint64 `json:"completes"`
	Retries   []uint64 `json:"retries"`
	Timeouts  []uint64 `json:"timeouts"`
	Abandoned []uint64 `json:"abandoned"`
	Switches  []uint64 `json:"switches"`

	P50Ns  []Float `json:"p50_ns"`
	P99Ns  []Float `json:"p99_ns"`
	P999Ns []Float `json:"p999_ns"`

	LFBMean      []Float `json:"lfb_mean"`
	LFBMax       []int   `json:"lfb_max"`
	ChipMean     []Float `json:"chipq_mean"`
	ChipMax      []int   `json:"chipq_max"`
	SQMean       []Float `json:"sq_mean"`
	SQMax        []int   `json:"sq_max"`
	CQMean       []Float `json:"cq_mean"`
	CQMax        []int   `json:"cq_max"`
	RunnableMean []Float `json:"runnable_mean"`
	RunnableMax  []int   `json:"runnable_max"`

	// Per-window latency-attribution phase columns, present only when
	// the sweep ran with both -metrics and -attrib: PhaseNames is the
	// taxonomy order and Phases[w][p] the exact picoseconds windows w's
	// completed accesses spent in phase p.
	PhaseNames []string  `json:"phase_names,omitempty"`
	Phases     [][]int64 `json:"phases,omitempty"`

	TotalStarts    uint64 `json:"total_starts"`
	TotalCompletes uint64 `json:"total_completes"`
	TotalRetries   uint64 `json:"total_retries"`
	TotalTimeouts  uint64 `json:"total_timeouts"`
	TotalAbandoned uint64 `json:"total_abandoned"`
	TotalSwitches  uint64 `json:"total_switches"`
	TotalP50Ns     Float  `json:"total_p50_ns"`
	TotalP99Ns     Float  `json:"total_p99_ns"`
	TotalP999Ns    Float  `json:"total_p999_ns"`
}

// Windows returns the number of recorded windows.
func (ts *TimeSeries) Windows() int {
	if ts == nil {
		return 0
	}
	return len(ts.Starts)
}

// Diag is the per-cell slice of core.Diagnostics a report carries.
type Diag struct {
	Accesses          int    `json:"accesses"`
	P50Ns             Float  `json:"p50_ns"`
	P99Ns             Float  `json:"p99_ns"`
	P999Ns            Float  `json:"p999_ns"`
	MeanLFBOccupancy  Float  `json:"mean_lfb_occupancy"`
	MeanChipOccupancy Float  `json:"mean_chip_occupancy"`
	SimEvents         uint64 `json:"sim_events"`
}

// FromTables converts harness tables (with any per-point diagnostics
// they carry) into report tables.
func FromTables(tables []*stats.Table) []*Table {
	out := make([]*Table, 0, len(tables))
	for _, t := range tables {
		rt := &Table{
			ID:     t.ID,
			Title:  t.Title,
			XLabel: t.XLabel,
			YLabel: t.YLabel,
			Notes:  append([]string(nil), t.Notes...),
		}
		for _, s := range t.Series {
			rs := &Series{Label: s.Label}
			for i := range s.X {
				rs.X = append(rs.X, Float(s.X[i]))
				rs.Y = append(rs.Y, Float(s.Y[i]))
			}
			if s.HasDiags() {
				for _, d := range s.Diags {
					if d == nil {
						rs.Diags = append(rs.Diags, nil)
						continue
					}
					rs.Diags = append(rs.Diags, &Diag{
						Accesses:          d.Accesses,
						P50Ns:             Float(d.P50Ns),
						P99Ns:             Float(d.P99Ns),
						P999Ns:            Float(d.P999Ns),
						MeanLFBOccupancy:  Float(d.MeanLFBOccupancy),
						MeanChipOccupancy: Float(d.MeanChipOccupancy),
						SimEvents:         d.SimEvents,
					})
				}
			}
			if s.HasMetrics() {
				for _, ts := range s.Metrics {
					rs.Metrics = append(rs.Metrics, fromTimeSeries(ts))
				}
			}
			if s.HasAttrib() {
				for _, a := range s.Attrib {
					rs.Attrib = append(rs.Attrib, fromAttrib(a))
				}
			}
			if s.HasFleet() {
				for _, f := range s.Fleet {
					rs.Fleet = append(rs.Fleet, fromFleet(f))
				}
			}
			rt.Series = append(rt.Series, rs)
		}
		out = append(out, rt)
	}
	return out
}

// fromTimeSeries converts a stats.TimeSeries (picoseconds, raw floats)
// to the report layout (microsecond window spans, Float cells). A nil
// input stays nil — the cell recorded no telemetry.
func fromTimeSeries(ts *stats.TimeSeries) *TimeSeries {
	if ts == nil {
		return nil
	}
	toFloats := func(vs []float64) []Float {
		out := make([]Float, len(vs))
		for i, v := range vs {
			out[i] = Float(v)
		}
		return out
	}
	return &TimeSeries{
		WindowUs:   Float(float64(ts.WindowPs) / 1e6),
		LastSpanUs: Float(float64(ts.LastSpanPs) / 1e6),
		Coalesced:  ts.Coalesced,

		Starts:    append([]uint64(nil), ts.Starts...),
		Completes: append([]uint64(nil), ts.Completes...),
		Retries:   append([]uint64(nil), ts.Retries...),
		Timeouts:  append([]uint64(nil), ts.Timeouts...),
		Abandoned: append([]uint64(nil), ts.Abandoned...),
		Switches:  append([]uint64(nil), ts.Switches...),

		P50Ns:  toFloats(ts.P50Ns),
		P99Ns:  toFloats(ts.P99Ns),
		P999Ns: toFloats(ts.P999Ns),

		LFBMean:      toFloats(ts.LFBMean),
		LFBMax:       append([]int(nil), ts.LFBMax...),
		ChipMean:     toFloats(ts.ChipMean),
		ChipMax:      append([]int(nil), ts.ChipMax...),
		SQMean:       toFloats(ts.SQMean),
		SQMax:        append([]int(nil), ts.SQMax...),
		CQMean:       toFloats(ts.CQMean),
		CQMax:        append([]int(nil), ts.CQMax...),
		RunnableMean: toFloats(ts.RunnableMean),
		RunnableMax:  append([]int(nil), ts.RunnableMax...),

		PhaseNames: append([]string(nil), ts.PhaseNames...),
		Phases:     copyPhaseRows(ts.Phases),

		TotalStarts:    ts.TotalStarts,
		TotalCompletes: ts.TotalCompletes,
		TotalRetries:   ts.TotalRetries,
		TotalTimeouts:  ts.TotalTimeouts,
		TotalAbandoned: ts.TotalAbandoned,
		TotalSwitches:  ts.TotalSwitches,
		TotalP50Ns:     Float(ts.TotalP50Ns),
		TotalP99Ns:     Float(ts.TotalP99Ns),
		TotalP999Ns:    Float(ts.TotalP999Ns),
	}
}

// copyPhaseRows deep-copies the per-window phase matrix.
func copyPhaseRows(rows [][]int64) [][]int64 {
	if rows == nil {
		return nil
	}
	out := make([][]int64, len(rows))
	for i, row := range rows {
		out[i] = append([]int64(nil), row...)
	}
	return out
}

// fromAttrib converts a stats.AttribSummary to the report layout. A
// nil input stays nil — the cell recorded no attribution.
func fromAttrib(a *stats.AttribSummary) *AttribSummary {
	if a == nil {
		return nil
	}
	out := &AttribSummary{
		Label:      a.Label,
		Accesses:   a.Accesses,
		TotalPs:    a.TotalPs,
		Mismatches: a.Mismatches,
	}
	for _, p := range a.Phases {
		out.Phases = append(out.Phases, PhaseSum{
			Phase: p.Phase,
			SumPs: p.SumPs,
			Count: p.Count,
			P50Ns: Float(p.P50Ns),
			P99Ns: Float(p.P99Ns),
			MaxNs: Float(p.MaxNs),
		})
	}
	return out
}

// fromFleet converts a stats.FleetSummary to the report layout. A nil
// input stays nil — the cell carries no fleet summary.
func fromFleet(f *stats.FleetSummary) *FleetSummary {
	if f == nil {
		return nil
	}
	out := &FleetSummary{
		Policy:          f.Policy,
		Shape:           f.Shape,
		Mech:            f.Mech,
		Rho:             Float(f.Rho),
		OfferedPerSec:   Float(f.OfferedPerSec),
		CompletedPerSec: Float(f.CompletedPerSec),
		Arrived:         f.Arrived,
		Completed:       f.Completed,
		ElapsedSeconds:  Float(f.ElapsedSeconds),
		P50Ns:           Float(f.P50Ns),
		P99Ns:           Float(f.P99Ns),
		P999Ns:          Float(f.P999Ns),
	}
	for _, in := range f.Instances {
		out.Instances = append(out.Instances, FleetInstance{
			Arrived:          in.Arrived,
			Completed:        in.Completed,
			Windows:          in.Windows,
			SaturatedWindows: in.SaturatedWindows,
			PeakOutstanding:  in.PeakOutstanding,
			P50Ns:            Float(in.P50Ns),
			P99Ns:            Float(in.P99Ns),
			P999Ns:           Float(in.P999Ns),
		})
	}
	return out
}

// Table returns the table with the given ID, or nil.
func (r *Report) Table(id string) *Table {
	for _, t := range r.Tables {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// FindSeries returns the series with the given label, or nil.
func (t *Table) FindSeries(label string) *Series {
	if t == nil {
		return nil
	}
	for _, s := range t.Series {
		if s.Label == label {
			return s
		}
	}
	return nil
}

// YAt returns the y value at the given x, or NaN if absent.
func (s *Series) YAt(x float64) float64 {
	if s == nil {
		return math.NaN()
	}
	for i := range s.X {
		if float64(s.X[i]) == x {
			return float64(s.Y[i])
		}
	}
	return math.NaN()
}

// FleetAt returns the fleet summary attached at the given x, or nil.
func (s *Series) FleetAt(x float64) *FleetSummary {
	if s == nil {
		return nil
	}
	for i := range s.X {
		if float64(s.X[i]) == x && i < len(s.Fleet) {
			return s.Fleet[i]
		}
	}
	return nil
}

// Peak returns the maximum finite y and the x where it occurs (NaNs for
// a series with no finite cells).
func (s *Series) Peak() (x, y float64) {
	x, y = math.NaN(), math.NaN()
	if s == nil {
		return
	}
	for i := range s.Y {
		v := float64(s.Y[i])
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(y) || v > y {
			x, y = float64(s.X[i]), v
		}
	}
	return
}

// KneeX returns the smallest x at which y reaches frac of the series
// peak — the saturation knee.
func (s *Series) KneeX(frac float64) float64 {
	_, peak := s.Peak()
	if math.IsNaN(peak) {
		return math.NaN()
	}
	for i := range s.Y {
		v := float64(s.Y[i])
		if !math.IsNaN(v) && v >= frac*peak {
			return float64(s.X[i])
		}
	}
	return math.NaN()
}

// Last returns the y value at the largest x with a finite cell.
func (s *Series) Last() float64 {
	if s == nil {
		return math.NaN()
	}
	for i := len(s.Y) - 1; i >= 0; i-- {
		if !math.IsNaN(float64(s.Y[i])) {
			return float64(s.Y[i])
		}
	}
	return math.NaN()
}

// Cells returns the number of datapoints in the series.
func (s *Series) Cells() int {
	if s == nil {
		return 0
	}
	return len(s.Y)
}

// Validate reports the first schema violation, or nil. It checks the
// document identity, version, table/series shape invariants, and
// diagnostic alignment — everything `kurec check` gates on before
// evaluating claims or diffs.
func (r *Report) Validate() error {
	if r.Schema != SchemaName {
		return fmt.Errorf("report: schema %q, want %q", r.Schema, SchemaName)
	}
	if r.Version != SchemaVersion {
		return fmt.Errorf("report: schema version %d, want %d", r.Version, SchemaVersion)
	}
	if r.Tool == "" {
		return fmt.Errorf("report: empty tool")
	}
	if len(r.Tables) == 0 {
		return fmt.Errorf("report: no tables")
	}
	seen := map[string]bool{}
	for ti, t := range r.Tables {
		if t == nil {
			return fmt.Errorf("report: table %d is null", ti)
		}
		if t.ID == "" {
			return fmt.Errorf("report: table %d has no id", ti)
		}
		if seen[t.ID] {
			return fmt.Errorf("report: duplicate table id %q", t.ID)
		}
		seen[t.ID] = true
		if len(t.Series) == 0 {
			return fmt.Errorf("report: table %q has no series", t.ID)
		}
		labels := map[string]bool{}
		for si, s := range t.Series {
			if s == nil {
				return fmt.Errorf("report: table %q series %d is null", t.ID, si)
			}
			if s.Label == "" {
				return fmt.Errorf("report: table %q series %d has no label", t.ID, si)
			}
			if labels[s.Label] {
				return fmt.Errorf("report: table %q has duplicate series %q", t.ID, s.Label)
			}
			labels[s.Label] = true
			if len(s.X) != len(s.Y) {
				return fmt.Errorf("report: table %q series %q: %d x values, %d y values",
					t.ID, s.Label, len(s.X), len(s.Y))
			}
			if len(s.X) == 0 {
				return fmt.Errorf("report: table %q series %q is empty", t.ID, s.Label)
			}
			if s.Diags != nil && len(s.Diags) != len(s.X) {
				return fmt.Errorf("report: table %q series %q: %d diags for %d cells",
					t.ID, s.Label, len(s.Diags), len(s.X))
			}
			if s.Metrics != nil && len(s.Metrics) != len(s.X) {
				return fmt.Errorf("report: table %q series %q: %d metrics for %d cells",
					t.ID, s.Label, len(s.Metrics), len(s.X))
			}
			for mi, ts := range s.Metrics {
				if ts == nil {
					continue
				}
				if r.Timeseries == nil {
					return fmt.Errorf("report: table %q series %q cell %d has metrics but the report has no timeseries block",
						t.ID, s.Label, mi)
				}
				if err := ts.validate(); err != nil {
					return fmt.Errorf("report: table %q series %q cell %d: %v",
						t.ID, s.Label, mi, err)
				}
			}
			if s.Attrib != nil && len(s.Attrib) != len(s.X) {
				return fmt.Errorf("report: table %q series %q: %d attrib entries for %d cells",
					t.ID, s.Label, len(s.Attrib), len(s.X))
			}
			for ai, a := range s.Attrib {
				if a == nil {
					continue
				}
				if r.Attribution == nil {
					return fmt.Errorf("report: table %q series %q cell %d has attribution but the report has no attribution block",
						t.ID, s.Label, ai)
				}
				if err := a.validate(); err != nil {
					return fmt.Errorf("report: table %q series %q cell %d: %v",
						t.ID, s.Label, ai, err)
				}
			}
			if s.Fleet != nil && len(s.Fleet) != len(s.X) {
				return fmt.Errorf("report: table %q series %q: %d fleet entries for %d cells",
					t.ID, s.Label, len(s.Fleet), len(s.X))
			}
			for fi, f := range s.Fleet {
				if f == nil {
					continue
				}
				if r.Cluster == nil {
					return fmt.Errorf("report: table %q series %q cell %d has a fleet summary but the report has no cluster block",
						t.ID, s.Label, fi)
				}
				if err := f.validate(); err != nil {
					return fmt.Errorf("report: table %q series %q cell %d: %v",
						t.ID, s.Label, fi, err)
				}
			}
			for i, x := range s.X {
				if x.IsNaN() {
					return fmt.Errorf("report: table %q series %q: x[%d] is null", t.ID, s.Label, i)
				}
			}
		}
	}
	if r.Timeseries != nil && r.Timeseries.Version != TimeseriesVersion {
		return fmt.Errorf("report: timeseries version %d, want %d",
			r.Timeseries.Version, TimeseriesVersion)
	}
	if r.Attribution != nil {
		if r.Attribution.Version != AttributionVersion {
			return fmt.Errorf("report: attribution version %d, want %d",
				r.Attribution.Version, AttributionVersion)
		}
		if len(r.Attribution.Phases) == 0 {
			return fmt.Errorf("report: attribution block has no phases")
		}
	}
	if r.Cluster != nil {
		if r.Cluster.Version != ClusterVersion {
			return fmt.Errorf("report: cluster version %d, want %d",
				r.Cluster.Version, ClusterVersion)
		}
		if len(r.Cluster.Policies) == 0 {
			return fmt.Errorf("report: cluster block has no policies")
		}
		if len(r.Cluster.Shapes) == 0 {
			return fmt.Errorf("report: cluster block has no shapes")
		}
	}
	return nil
}

// validate checks one cell's fleet summary: the conservation
// invariants between the aggregate and its instances.
func (f *FleetSummary) validate() error {
	if f.Policy == "" || f.Shape == "" || f.Mech == "" {
		return fmt.Errorf("fleet: missing policy/shape/mech (%q/%q/%q)", f.Policy, f.Shape, f.Mech)
	}
	if len(f.Instances) == 0 {
		return fmt.Errorf("fleet: no instances")
	}
	var arrived, completed uint64
	for i, in := range f.Instances {
		if in.Completed > in.Arrived {
			return fmt.Errorf("fleet: instance %d completed %d > arrived %d", i, in.Completed, in.Arrived)
		}
		if in.SaturatedWindows > in.Windows {
			return fmt.Errorf("fleet: instance %d saturated %d > windows %d", i, in.SaturatedWindows, in.Windows)
		}
		arrived += in.Arrived
		completed += in.Completed
	}
	if arrived != f.Arrived || completed != f.Completed {
		return fmt.Errorf("fleet: instance sums %d/%d != fleet totals %d/%d",
			arrived, completed, f.Arrived, f.Completed)
	}
	return nil
}

// validate checks one cell's attribution summary: stable phase slugs,
// no negatives, and the exactness invariant that phase sums total
// total_ps.
func (a *AttribSummary) validate() error {
	if a.TotalPs < 0 {
		return fmt.Errorf("attrib: negative total %d ps", a.TotalPs)
	}
	seen := map[string]bool{}
	var sum int64
	for _, p := range a.Phases {
		if p.Phase == "" {
			return fmt.Errorf("attrib: unnamed phase")
		}
		if seen[p.Phase] {
			return fmt.Errorf("attrib: duplicate phase %q", p.Phase)
		}
		seen[p.Phase] = true
		if p.SumPs < 0 {
			return fmt.Errorf("attrib: phase %q has negative sum %d ps", p.Phase, p.SumPs)
		}
		if p.Count > a.Accesses {
			return fmt.Errorf("attrib: phase %q count %d exceeds %d accesses", p.Phase, p.Count, a.Accesses)
		}
		sum += p.SumPs
	}
	if sum != a.TotalPs {
		return fmt.Errorf("attrib: phase sums %d ps != total %d ps", sum, a.TotalPs)
	}
	return nil
}

// validate checks the internal shape of one flight-recorder series:
// positive window span, a last span no longer than the window, and all
// per-window arrays aligned with the starts array.
func (ts *TimeSeries) validate() error {
	if ts.WindowUs <= 0 {
		return fmt.Errorf("timeseries: window_us %v not positive", float64(ts.WindowUs))
	}
	if ts.LastSpanUs <= 0 || float64(ts.LastSpanUs) > float64(ts.WindowUs) {
		return fmt.Errorf("timeseries: last_span_us %v outside (0, %v]",
			float64(ts.LastSpanUs), float64(ts.WindowUs))
	}
	n := len(ts.Starts)
	if n == 0 {
		return fmt.Errorf("timeseries: no windows")
	}
	counts := map[string]int{
		"completes": len(ts.Completes), "retries": len(ts.Retries),
		"timeouts": len(ts.Timeouts), "abandoned": len(ts.Abandoned),
		"switches": len(ts.Switches),
		"p50_ns":   len(ts.P50Ns), "p99_ns": len(ts.P99Ns), "p999_ns": len(ts.P999Ns),
		"lfb_mean": len(ts.LFBMean), "lfb_max": len(ts.LFBMax),
		"chipq_mean": len(ts.ChipMean), "chipq_max": len(ts.ChipMax),
		"sq_mean": len(ts.SQMean), "sq_max": len(ts.SQMax),
		"cq_mean": len(ts.CQMean), "cq_max": len(ts.CQMax),
		"runnable_mean": len(ts.RunnableMean), "runnable_max": len(ts.RunnableMax),
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if counts[name] != n {
			return fmt.Errorf("timeseries: %d %s windows for %d starts windows", counts[name], name, n)
		}
	}
	if len(ts.PhaseNames) > 0 {
		if len(ts.Phases) != n {
			return fmt.Errorf("timeseries: %d phase windows for %d starts windows", len(ts.Phases), n)
		}
		for w, row := range ts.Phases {
			if len(row) != len(ts.PhaseNames) {
				return fmt.Errorf("timeseries: phase window %d has %d columns for %d phase names",
					w, len(row), len(ts.PhaseNames))
			}
		}
	} else if len(ts.Phases) != 0 {
		return fmt.Errorf("timeseries: %d phase windows but no phase names", len(ts.Phases))
	}
	return nil
}

// CellCount returns the total number of datapoints across all tables.
func (r *Report) CellCount() (tables, series, cells int) {
	tables = len(r.Tables)
	for _, t := range r.Tables {
		series += len(t.Series)
		for _, s := range t.Series {
			cells += len(s.Y)
		}
	}
	return
}

// Encode marshals the report as indented JSON with a trailing newline.
// Encoding is deterministic: struct fields marshal in declaration
// order and the document carries no timestamps, so identical runs
// produce identical bytes.
func (r *Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile encodes the report to path.
func (r *Report) WriteFile(path string) error {
	b, err := r.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadFile parses and validates a report file.
func ReadFile(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
