package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DiffOpt tunes the cell comparison. A cell (got, want) is within
// tolerance when |got-want| <= AbsTol, or when the relative delta
// |got-want| / |want| <= RelTol. The absolute floor keeps near-zero
// cells (e.g. 0.024 vs 0.025 at one thread) from tripping the relative
// gate on noise that is invisible at figure scale.
type DiffOpt struct {
	RelTol float64
	AbsTol float64
	// Top bounds the worst-regressions list (default 10).
	Top int
}

// DefaultDiffOpt is the CI regression gate's tolerance: 5% relative
// drift with a 0.01 absolute floor.
func DefaultDiffOpt() DiffOpt { return DiffOpt{RelTol: 0.05, AbsTol: 0.01, Top: 10} }

// CellDelta is one compared cell.
type CellDelta struct {
	Table  string
	Series string
	X      float64
	Got    float64
	Want   float64
	Rel    float64 // |got-want| / |want| (Inf when want is 0 and got isn't)
}

func (c CellDelta) String() string {
	return fmt.Sprintf("%s/%s x=%g: got %.4f want %.4f (rel %.1f%%)",
		c.Table, c.Series, c.X, c.Got, c.Want, c.Rel*100)
}

// Diff is the structured result of comparing a candidate report (got)
// against a golden baseline (want).
type Diff struct {
	MissingTables []string // in want, absent from got
	ExtraTables   []string // in got, absent from want
	MissingSeries []string // "table/series" in want, absent from got
	ExtraSeries   []string
	MissingCells  []string // "table/series@x" in want, absent from got
	Compared      int      // cells compared
	Exceeded      []CellDelta
	Worst         []CellDelta // top deltas by relative drift, within or beyond tolerance
	MaxRel        float64
}

// Clean reports whether the candidate matches the baseline within
// tolerance: nothing missing and no cell beyond the gate. Extra tables
// or series (a grown sweep) do not fail the diff — they are reported
// but a baseline refresh, not a regression.
func (d *Diff) Clean() bool {
	return len(d.MissingTables) == 0 && len(d.MissingSeries) == 0 &&
		len(d.MissingCells) == 0 && len(d.Exceeded) == 0
}

// Compare diffs got against the golden want, cell by cell.
func Compare(got, want *Report, opt DiffOpt) *Diff {
	if opt.Top <= 0 {
		opt.Top = 10
	}
	d := &Diff{}
	var all []CellDelta
	for _, wt := range want.Tables {
		gt := got.Table(wt.ID)
		if gt == nil {
			d.MissingTables = append(d.MissingTables, wt.ID)
			continue
		}
		for _, ws := range wt.Series {
			gs := gt.FindSeries(ws.Label)
			if gs == nil {
				d.MissingSeries = append(d.MissingSeries, wt.ID+"/"+ws.Label)
				continue
			}
			for i := range ws.X {
				x := float64(ws.X[i])
				wy := float64(ws.Y[i])
				gy := gs.YAt(x)
				if math.IsNaN(gy) && !math.IsNaN(wy) {
					d.MissingCells = append(d.MissingCells,
						fmt.Sprintf("%s/%s@%g", wt.ID, ws.Label, x))
					continue
				}
				if math.IsNaN(wy) {
					// Baseline holds no value for this cell; nothing to gate.
					continue
				}
				d.Compared++
				delta := CellDelta{Table: wt.ID, Series: ws.Label, X: x, Got: gy, Want: wy}
				abs := math.Abs(gy - wy)
				if wy != 0 {
					delta.Rel = abs / math.Abs(wy)
				} else if abs > 0 {
					delta.Rel = math.Inf(1)
				}
				if delta.Rel > d.MaxRel {
					d.MaxRel = delta.Rel
				}
				all = append(all, delta)
				if abs > opt.AbsTol && delta.Rel > opt.RelTol {
					d.Exceeded = append(d.Exceeded, delta)
				}
			}
		}
	}
	for _, gt := range got.Tables {
		if want.Table(gt.ID) == nil {
			d.ExtraTables = append(d.ExtraTables, gt.ID)
			continue
		}
		for _, gs := range gt.Series {
			if want.Table(gt.ID).FindSeries(gs.Label) == nil {
				d.ExtraSeries = append(d.ExtraSeries, gt.ID+"/"+gs.Label)
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Rel > all[j].Rel })
	if len(all) > opt.Top {
		all = all[:opt.Top]
	}
	d.Worst = all
	return d
}

// Summary renders the diff for humans: totals, structural drift, and
// the worst-regressions list.
func (d *Diff) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compared %d cells, max relative drift %.2f%%\n", d.Compared, d.MaxRel*100)
	for _, id := range d.MissingTables {
		fmt.Fprintf(&b, "MISSING table %s\n", id)
	}
	for _, id := range d.MissingSeries {
		fmt.Fprintf(&b, "MISSING series %s\n", id)
	}
	for _, id := range d.MissingCells {
		fmt.Fprintf(&b, "MISSING cell %s\n", id)
	}
	for _, id := range d.ExtraTables {
		fmt.Fprintf(&b, "extra table %s (not in baseline)\n", id)
	}
	for _, id := range d.ExtraSeries {
		fmt.Fprintf(&b, "extra series %s (not in baseline)\n", id)
	}
	for _, c := range d.Exceeded {
		fmt.Fprintf(&b, "DRIFT %s\n", c.String())
	}
	if len(d.Exceeded) == 0 && len(d.Worst) > 0 && d.MaxRel > 0 {
		fmt.Fprintf(&b, "worst (within tolerance): %s\n", d.Worst[0].String())
	}
	return b.String()
}
