package report

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/stats"
)

// sample builds a minimal schema-valid report for the tests to mutate.
func sample() *Report {
	return &Report{
		Schema:  SchemaName,
		Version: SchemaVersion,
		Tool:    "test",
		Build:   CurrentBuild(),
		Sweep:   Sweep{Iterations: 100, Threads: []int{1, 2}},
		Tables: []*Table{
			{
				ID: "fig3", Title: "t", XLabel: "threads", YLabel: "norm",
				Series: []*Series{
					{Label: "1us", X: []Float{1, 2, 4}, Y: []Float{0.1, 0.5, 0.9}},
					{Label: "2us", X: []Float{1, 2, 4}, Y: []Float{0.05, 0.2, 0.45}},
				},
			},
			{
				ID: "fig5", Title: "t", XLabel: "threads", YLabel: "norm",
				Series: []*Series{
					{
						Label: "1us 8c", X: []Float{1, 2}, Y: []Float{0.2, 0.8},
						Diags: []*Diag{nil, {Accesses: 10, P99Ns: 2000, SimEvents: 42}},
					},
				},
			},
		},
	}
}

func TestFloatMarshalNaNAsNull(t *testing.T) {
	b, err := json.Marshal([]Float{1.5, Float(math.NaN()), Float(math.Inf(1))})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(b), "[1.5,null,null]"; got != want {
		t.Fatalf("marshal = %s, want %s", got, want)
	}
	var back []Float
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if float64(back[0]) != 1.5 || !back[1].IsNaN() || !back[2].IsNaN() {
		t.Fatalf("round trip = %v", back)
	}
}

func TestValidateAcceptsSample(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = "other" }},
		{"wrong version", func(r *Report) { r.Version = 99 }},
		{"empty tool", func(r *Report) { r.Tool = "" }},
		{"no tables", func(r *Report) { r.Tables = nil }},
		{"duplicate table", func(r *Report) { r.Tables[1].ID = "fig3" }},
		{"table without id", func(r *Report) { r.Tables[0].ID = "" }},
		{"no series", func(r *Report) { r.Tables[0].Series = nil }},
		{"duplicate series", func(r *Report) { r.Tables[0].Series[1].Label = "1us" }},
		{"unlabeled series", func(r *Report) { r.Tables[0].Series[0].Label = "" }},
		{"x/y length mismatch", func(r *Report) { r.Tables[0].Series[0].Y = r.Tables[0].Series[0].Y[:2] }},
		{"empty series", func(r *Report) {
			r.Tables[0].Series[0].X = nil
			r.Tables[0].Series[0].Y = nil
		}},
		{"misaligned diags", func(r *Report) { r.Tables[1].Series[0].Diags = r.Tables[1].Series[0].Diags[:1] }},
		{"null x cell", func(r *Report) { r.Tables[0].Series[0].X[1] = Float(math.NaN()) }},
	}
	for _, tc := range cases {
		r := sample()
		tc.mut(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken report", tc.name)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := sample().Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sample().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same report differ")
	}
	if a[len(a)-1] != '\n' {
		t.Fatal("encoding lacks trailing newline")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	r := sample()
	// A NaN y cell must survive the round trip as NaN, not zero.
	r.Tables[0].Series[0].Y[0] = Float(math.NaN())
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Tables[0].Series[0].Y[0].IsNaN() {
		t.Fatal("null cell did not round-trip to NaN")
	}
	if got := back.Table("fig5").FindSeries("1us 8c").Diags[1]; got == nil || got.SimEvents != 42 {
		t.Fatalf("diagnostics did not round-trip: %+v", got)
	}
	// Re-encoding the parsed report must reproduce the original bytes.
	a, _ := r.Encode()
	b, _ := back.Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("re-encoding a parsed report changed its bytes")
	}
}

func TestFromTablesCarriesDiags(t *testing.T) {
	st := &stats.Table{ID: "x", Title: "x", XLabel: "x", YLabel: "y"}
	s := st.AddSeries("a")
	s.Add(1, 0.5)
	s.AddRun(2, 0.9, stats.RunDiag{Accesses: 7, P99Ns: 1500, MeanChipOccupancy: 3.5, SimEvents: 11})
	rt := FromTables([]*stats.Table{st})
	if len(rt) != 1 {
		t.Fatalf("tables = %d", len(rt))
	}
	rs := rt[0].FindSeries("a")
	if rs == nil || len(rs.Diags) != 2 {
		t.Fatalf("diags not carried: %+v", rs)
	}
	if rs.Diags[0] != nil {
		t.Fatal("plain Add cell should carry a nil diag")
	}
	if d := rs.Diags[1]; d.Accesses != 7 || float64(d.P99Ns) != 1500 || d.SimEvents != 11 {
		t.Fatalf("diag = %+v", rs.Diags[1])
	}
}

func TestSeriesAccessors(t *testing.T) {
	s := &Series{Label: "s",
		X: []Float{1, 2, 4, 8},
		Y: []Float{0.2, Float(math.NaN()), 1.0, 0.95}}
	if got := s.YAt(4); got != 1.0 {
		t.Fatalf("YAt(4) = %v", got)
	}
	if !math.IsNaN(s.YAt(3)) || !math.IsNaN(s.YAt(2)) {
		t.Fatal("missing cells should read as NaN")
	}
	if x, y := s.Peak(); x != 4 || y != 1.0 {
		t.Fatalf("Peak = (%v, %v)", x, y)
	}
	if got := s.KneeX(0.9); got != 4 {
		t.Fatalf("KneeX(0.9) = %v", got)
	}
	if got := s.Last(); got != 0.95 {
		t.Fatalf("Last = %v", got)
	}
	var nilSeries *Series
	if !math.IsNaN(nilSeries.YAt(1)) || !math.IsNaN(nilSeries.Last()) || nilSeries.Cells() != 0 {
		t.Fatal("nil series accessors must degrade to NaN/zero")
	}
}

func TestCompareCleanOnIdentical(t *testing.T) {
	d := Compare(sample(), sample(), DefaultDiffOpt())
	if !d.Clean() {
		t.Fatalf("identical reports not clean: %s", d.Summary())
	}
	if d.Compared != 8 {
		t.Fatalf("compared %d cells, want 8", d.Compared)
	}
}

func TestCompareFlagsPerturbedCell(t *testing.T) {
	got := sample()
	got.Tables[0].Series[0].Y[2] = 0.6 // was 0.9: 33% drift
	d := Compare(got, sample(), DefaultDiffOpt())
	if d.Clean() {
		t.Fatal("33% drift passed the gate")
	}
	if len(d.Exceeded) != 1 {
		t.Fatalf("Exceeded = %v", d.Exceeded)
	}
	c := d.Exceeded[0]
	if c.Table != "fig3" || c.Series != "1us" || c.X != 4 {
		t.Fatalf("wrong cell flagged: %+v", c)
	}
}

func TestCompareAbsoluteFloor(t *testing.T) {
	got := sample()
	// 0.05 -> 0.058: 16% relative but only 0.008 absolute, under the floor.
	got.Tables[0].Series[1].Y[0] = 0.058
	d := Compare(got, sample(), DefaultDiffOpt())
	if !d.Clean() {
		t.Fatalf("sub-floor drift failed the gate: %s", d.Summary())
	}
	if d.MaxRel < 0.1 {
		t.Fatalf("MaxRel = %v, drift should still be reported", d.MaxRel)
	}
}

func TestCompareMissingAndExtra(t *testing.T) {
	got := sample()
	got.Tables[0].Series = got.Tables[0].Series[:1] // drop "2us"
	got.Tables = append(got.Tables, &Table{ID: "fig99",
		Series: []*Series{{Label: "n", X: []Float{1}, Y: []Float{1}}}})
	d := Compare(got, sample(), DefaultDiffOpt())
	if d.Clean() {
		t.Fatal("missing series passed the gate")
	}
	if len(d.MissingSeries) != 1 || d.MissingSeries[0] != "fig3/2us" {
		t.Fatalf("MissingSeries = %v", d.MissingSeries)
	}
	if len(d.ExtraTables) != 1 || d.ExtraTables[0] != "fig99" {
		t.Fatalf("ExtraTables = %v", d.ExtraTables)
	}

	// Extra-only growth (no missing cells) stays clean.
	got2 := sample()
	got2.Tables = append(got2.Tables, &Table{ID: "fig99",
		Series: []*Series{{Label: "n", X: []Float{1}, Y: []Float{1}}}})
	if d2 := Compare(got2, sample(), DefaultDiffOpt()); !d2.Clean() {
		t.Fatal("a grown sweep should not fail the diff")
	}
}

func TestCompareMissingCellOnGotNaN(t *testing.T) {
	got := sample()
	got.Tables[0].Series[0].Y[1] = Float(math.NaN())
	d := Compare(got, sample(), DefaultDiffOpt())
	if d.Clean() || len(d.MissingCells) != 1 {
		t.Fatalf("NaN-for-finite cell not flagged: %s", d.Summary())
	}
	// The reverse — baseline NaN, candidate finite — is not a regression.
	d2 := Compare(sample(), got, DefaultDiffOpt())
	if !d2.Clean() {
		t.Fatalf("finite-for-NaN cell failed the gate: %s", d2.Summary())
	}
}
