package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// The headline invariant of the sharded executor: Shards is an
// execution knob, never a parameter. For every policy × shape and a
// spread of randomized seeds, the summary at any shard count must be
// identical — down to the last float — to the serial driver's.
func TestShardedMatchesSerial(t *testing.T) {
	const seeds = 24
	r := stats.NewRand(0x73686172645F7433) // "shard_t3"
	for _, policy := range Policies() {
		for _, shape := range []string{ShapePoisson, ShapeBursty, ShapeSaturate} {
			for i := 0; i < seeds; i++ {
				seed := r.Uint64()
				cfg := quickCfg()
				cfg.Policy = policy
				cfg.Shape = shape
				cfg.Requests = 150 + i%3*37 // vary batch size across seeds
				cfg.ValueSkew = i%2 == 0
				cfg.Seed = seed

				serial, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s/%s seed %#x serial: %v", policy, shape, seed, err)
				}
				cfg.Shards = 2 + i%3 // 2, 3, 4
				sharded, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s/%s seed %#x shards=%d: %v", policy, shape, seed, cfg.Shards, err)
				}
				if !reflect.DeepEqual(serial, sharded) {
					t.Fatalf("%s/%s seed %#x: shards=%d diverged from serial:\n%+v\n%+v",
						policy, shape, seed, cfg.Shards, serial, sharded)
				}
			}
		}
	}
}

// Shard counts beyond the instance count clamp down rather than spin
// up idle workers, and 0/1 take the serial path; all must agree.
func TestShardCountClamps(t *testing.T) {
	base := quickCfg()
	base.Requests = 200
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 1, 2, base.Instances, base.Instances + 5, 64} {
		cfg := base
		cfg.Shards = shards
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shards=%d diverged from serial:\n%+v\n%+v", shards, want, got)
		}
	}
}

func TestValidateRejectsNegativeShards(t *testing.T) {
	cfg := quickCfg()
	cfg.Shards = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative shard count accepted")
	}
}

// Lookahead must say yes exactly for the policies whose pick ignores
// live queue state — the declaration the pre-routing fast path trusts.
func TestLookaheadDeclarations(t *testing.T) {
	want := map[string]bool{
		PolicyRoundRobin:       true,
		PolicyKeyAffinity:      true,
		PolicyLeastOutstanding: false,
		PolicyQueueWeighted:    false,
	}
	for _, policy := range Policies() {
		if Lookahead(policy) != want[policy] {
			t.Fatalf("Lookahead(%s) = %v, want %v", policy, Lookahead(policy), want[policy])
		}
	}
	if Lookahead("no-such-policy") {
		t.Fatal("unknown policy declared lookahead")
	}
}

// preroute and pick must emit the same decision sequence for lookahead
// policies — the equivalence the batched driver rests on.
func TestPrerouteMatchesPick(t *testing.T) {
	for _, policy := range []string{PolicyRoundRobin, PolicyKeyAffinity} {
		cfg := quickCfg()
		cfg.Policy = policy
		cfg = cfg.withDefaults()
		arrivals := generateArrivals(cfg)

		a, _ := newRouter(cfg)
		b, _ := newRouter(cfg)
		insts := make([]*instance, cfg.Instances)
		for i := range insts {
			insts[i] = &instance{}
		}
		for i, arr := range arrivals {
			pre := a.preroute(cfg.Instances, arr.key)
			picked := b.pick(insts, arr.key)
			if pre != picked {
				t.Fatalf("%s arrival %d: preroute %d != pick %d", policy, i, pre, picked)
			}
		}
	}
}

func BenchmarkFleet(b *testing.B) {
	// Three barrier regimes, each at 1/4/8 shards so BENCH_cluster.json
	// can gate both absolute rates and measured speedups:
	//
	//   - mechs: the cluster-mechs table's top cell — least-outstanding
	//     at the 4us device latency, offered past capacity, so most
	//     completions happen in chunky window-sized drain barriers;
	//   - lockstep: least-outstanding near saturation at 1us — the
	//     per-arrival barrier worst case (tens of events per barrier);
	//   - prerouted: round-robin, whole arrival batch behind one
	//     barrier — the policy-lookahead best case.
	for _, bc := range []struct {
		name   string
		policy string
		shape  string
		lat    sim.Time
		rate   float64
	}{
		{"mechs", PolicyLeastOutstanding, ShapePoisson, 4 * sim.Microsecond, 1.8 * 4.82e6},
		{"lockstep", PolicyLeastOutstanding, ShapePoisson, sim.Microsecond, 0.9 * 2 * 9.33e6},
		{"prerouted", PolicyRoundRobin, ShapePoisson, sim.Microsecond, 0.9 * 2 * 9.33e6},
	} {
		for _, shards := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", bc.name, shards), func(b *testing.B) {
				cfg := quickCfg()
				cfg.Base = cfg.Base.WithLatency(bc.lat)
				cfg.Instances = 8
				cfg.Policy = bc.policy
				cfg.Shape = bc.shape
				cfg.ValueSkew = true
				cfg.Requests = 3000
				cfg.RatePerSec = bc.rate // scaled for 8 instances
				cfg.Shards = shards
				b.ReportAllocs()
				b.ResetTimer()
				var events uint64
				for i := 0; i < b.N; i++ {
					sum, err := Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					events += sum.Events
				}
				b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
			})
		}
	}
}
