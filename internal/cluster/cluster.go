// Package cluster composes many host+device instances into a fleet
// behind an open-loop arrival process and a request router — the step
// from the paper's single host hiding one device's microsecond latency
// to a memcached-style service absorbing an aggregate request stream.
//
// Each instance is a full core.Env simulation on its own sim.Engine;
// the driver advances every engine in lockstep to each arrival time,
// consults the routing policy against the instances' live queue state,
// and submits the request to the chosen instance's open-loop Server.
// Because the arrival timeline, the key stream, and every tie-break
// are pure functions of the seed, a fleet run is deterministic: the
// same Config always produces the same FleetSummary, byte for byte,
// which is what lets cluster cells ride the content-addressed result
// cache and the parallel sweep executor unchanged.
//
// Config.Shards spreads one fleet run across OS cores without touching
// that property: instance engines share no state between routing
// decisions, so a shard pool advances them concurrently to each
// barrier (the next arrival, or the next saturation window boundary)
// and the driver performs routing and window accounting serially at
// the barrier, in fixed instance order. Policies that declare
// Lookahead pre-route entire arrival batches, collapsing the whole
// arrival phase into a single barrier; see shard.go for the protocol
// and DESIGN.md §15 for the equivalence argument.
package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config parameterizes one fleet run.
type Config struct {
	Base platform.Config // per-instance platform (latency, queues, cores)

	Instances int    // host+device instances in the fleet
	Mech      string // per-instance backend: prefetch, swqueue, ondemand
	Policy    string // round-robin, least-outstanding, queue-weighted, key-affinity
	Shape     string // poisson, bursty, saturate

	Workers    int  // worker contexts per instance
	ValueLines int  // device lines fetched per request
	WorkInstr  int  // post-fetch work instructions per request
	Items      int  // memcached key space per instance
	ValueSkew  bool // key-dependent value sizes (mean stays ValueLines)

	Requests   int     // arrivals to generate
	RatePerSec float64 // fleet-wide offered load (ignored by shape saturate)
	Rho        float64 // informational: offered load / measured capacity

	// Shards is the number of OS worker goroutines advancing instance
	// engines between barriers. 0 or 1 runs the serial lockstep driver;
	// higher values use all the cores you give them. Shards is an
	// execution knob, never a parameter: the summary is byte-identical
	// at every value (property-tested, CI-gated), so it is excluded
	// from cell cache keys.
	Shards int

	// BurstPeriod and BurstDuty shape the bursty arrival process: the
	// Poisson stream is compressed into the first Duty fraction of
	// every Period, leaving silent gaps — same mean rate, bursts at
	// Rate/Duty. Zero values take defaults (100us, 0.5).
	BurstPeriod sim.Time
	BurstDuty   float64

	// Window is the saturation observation window: per instance, a
	// window whose arrivals exceed its completions while more requests
	// are in flight than the worker pool is flagged saturated. Zero
	// takes a default of 50us.
	Window sim.Time

	Seed uint64 // arrival timeline, key stream, and weighted-policy seed
}

func (c Config) withDefaults() Config {
	if c.BurstPeriod <= 0 {
		c.BurstPeriod = 100 * sim.Microsecond
	}
	if c.BurstDuty <= 0 || c.BurstDuty > 1 {
		c.BurstDuty = 0.5
	}
	if c.Window <= 0 {
		c.Window = 50 * sim.Microsecond
	}
	return c
}

// Validate rejects configurations before any simulation starts.
func (c Config) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.Instances < 1 {
		return fmt.Errorf("cluster: need at least 1 instance, got %d", c.Instances)
	}
	switch c.Mech {
	case "prefetch", "swqueue", "ondemand":
	default:
		return fmt.Errorf("cluster: unknown mechanism %q", c.Mech)
	}
	switch c.Policy {
	case PolicyRoundRobin, PolicyLeastOutstanding, PolicyQueueWeighted, PolicyKeyAffinity:
	default:
		return fmt.Errorf("cluster: unknown policy %q", c.Policy)
	}
	switch c.Shape {
	case ShapePoisson, ShapeBursty, ShapeSaturate:
	default:
		return fmt.Errorf("cluster: unknown arrival shape %q", c.Shape)
	}
	if c.Workers < 1 {
		return fmt.Errorf("cluster: need at least 1 worker per instance, got %d", c.Workers)
	}
	if c.ValueLines < 1 {
		return fmt.Errorf("cluster: need at least 1 value line, got %d", c.ValueLines)
	}
	if c.Items < 1 {
		return fmt.Errorf("cluster: need at least 1 item, got %d", c.Items)
	}
	if c.Requests < 1 {
		return fmt.Errorf("cluster: need at least 1 request, got %d", c.Requests)
	}
	if c.Shape != ShapeSaturate && c.RatePerSec <= 0 {
		return fmt.Errorf("cluster: offered rate %g must be positive", c.RatePerSec)
	}
	if c.Shards < 0 {
		return fmt.Errorf("cluster: shards %d must be non-negative", c.Shards)
	}
	return nil
}

// satCounter is one instance's sliding-window saturation accounting.
// It carries its own worker-pool size so the barrier code no longer
// threads saturation parameters through every call site.
type satCounter struct {
	workers       int
	windows       int
	saturated     int
	prevArrived   uint64
	prevCompleted uint64
}

// instance is one fleet member: an Env, its open-loop server, and the
// sliding-window saturation accounting.
type instance struct {
	env *core.Env
	srv *core.Server
	sat satCounter
}

// closeWindow flags a window where arrivals outpaced completions while
// the backlog exceeded the worker pool — sustained oversubscription,
// not a transient burst one pool of workers absorbs. It reads only
// this instance's state, so shard workers may close windows for
// different instances concurrently.
func (in *instance) closeWindow() {
	arr, comp := in.srv.Arrived(), in.srv.Completed()
	s := &in.sat
	dArr, dComp := arr-s.prevArrived, comp-s.prevCompleted
	s.windows++
	if dArr > dComp && in.srv.Outstanding() > s.workers {
		s.saturated++
	}
	s.prevArrived, s.prevCompleted = arr, comp
}

// Run executes one fleet simulation and summarizes it.
func Run(cfg Config) (*stats.FleetSummary, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Every instance serves the same memcached-style item store; the
	// backing is content-only (no engine state, reads allocate their
	// own line buffers), so sharing one across instances is safe — for
	// concurrent shard workers too — and keeps N-instantiation cheap.
	backing := workload.NewMemcached(cfg.Items, cfg.ValueLines, 1, 1).Backing()
	insts := make([]*instance, cfg.Instances)
	for i := range insts {
		env := core.NewEnv(cfg.Base, backing)
		srv, err := core.NewServer(env, core.ServerConfig{
			Mech:       cfg.Mech,
			Workers:    cfg.Workers,
			ValueLines: cfg.ValueLines,
			WorkInstr:  cfg.WorkInstr,
			ValueSkew:  cfg.ValueSkew,
		})
		if err != nil {
			return nil, err
		}
		insts[i] = &instance{env: env, srv: srv, sat: satCounter{workers: cfg.Workers}}
	}

	arrivals := generateArrivals(cfg)
	router, err := newRouter(cfg)
	if err != nil {
		return nil, err
	}

	d := &driver{cfg: cfg, insts: insts}
	if shards := min(cfg.Shards, cfg.Instances); shards > 1 {
		d.pool = newShardPool(insts, shards)
		defer d.pool.close()
	}

	// Arrival phase. Policies that declare lookahead pre-route the
	// whole batch when a shard pool is attached, so engines run many
	// arrivals between barriers; state-dependent policies barrier per
	// arrival so routing sees live queue state, but the N engine
	// advances to each barrier still run concurrently.
	perArrived := make([]uint64, cfg.Instances)
	var nextWindow sim.Time
	if d.pool != nil && Lookahead(cfg.Policy) {
		nextWindow = d.runPrerouted(router, arrivals, perArrived)
	} else {
		nextWindow = d.runLockstep(router, arrivals, perArrived)
	}

	// Drain: no more arrivals; close the servers and keep advancing in
	// window-sized lockstep so the saturation accounting still observes
	// the backlog being worked off, not just the final state. If no
	// instance makes progress for a long stretch the loop hands over to
	// RunChecked, whose watchdog names the stuck process.
	for _, in := range insts {
		in.srv.Close()
	}
	idle := 0
	for backlog(insts) && idle < 1000 {
		before := totalCompleted(insts)
		d.advanceAll(nextWindow)
		nextWindow += cfg.Window
		if totalCompleted(insts) == before {
			idle++
		} else {
			idle = 0
		}
	}
	for _, in := range insts {
		if _, err := in.env.Engine().RunChecked(); err != nil {
			return nil, fmt.Errorf("cluster: instance drain: %w", err)
		}
	}
	var end sim.Time
	for _, in := range insts {
		if lc := in.srv.LastComplete(); lc > end {
			end = lc
		}
	}

	sum := summarize(cfg, insts, perArrived, end)
	for _, in := range insts {
		in.env.Engine().Recycle()
	}
	return sum, nil
}

// driver runs the fleet's barrier schedule: serially when pool is nil,
// across shard workers otherwise. Either way the observable schedule —
// which engine reaches which timestamp before which routing decision
// and window close — is identical; the pool only changes which OS
// thread does the advancing.
type driver struct {
	cfg   Config
	insts []*instance
	pool  *shardPool
}

// runLockstep is the per-arrival barrier schedule: advance every
// engine to each arrival's timestamp (closing out saturation windows
// on the way), then route on the instances' now-current queue state.
// It returns the window cursor for the drain phase.
func (d *driver) runLockstep(rt *router, arrivals []arrival, perArrived []uint64) sim.Time {
	nextWindow := d.cfg.Window
	for _, a := range arrivals {
		for nextWindow <= a.at {
			d.advanceAll(nextWindow)
			nextWindow += d.cfg.Window
		}
		d.advanceEngines(a.at)
		target := rt.pick(d.insts, a.key)
		perArrived[target]++
		d.insts[target].srv.Submit(a.key)
	}
	return nextWindow
}

// runPrerouted is the batched arrival phase for lookahead policies:
// the routing sequence is precomputed with no engine state, each
// instance receives its own arrival batch, and the shard pool runs
// every instance's full timeline — self-paced window closes included —
// behind a single barrier. Per instance this executes exactly the
// lockstep schedule (same submits at the same local clock, same window
// closes at the same boundaries); advances to *other* instances'
// arrival times are dropped, which only moves the clock of eventless
// engines and is therefore unobservable. See DESIGN.md §15.
func (d *driver) runPrerouted(rt *router, arrivals []arrival, perArrived []uint64) sim.Time {
	batches := make([][]arrival, len(d.insts))
	for _, a := range arrivals {
		t := rt.preroute(len(d.insts), a.key)
		perArrived[t]++
		batches[t] = append(batches[t], a)
	}
	// The serial driver closes every window boundary <= the last
	// arrival during the arrival phase, whichever instance the
	// arrivals went to; the batch runner reproduces that cutoff.
	last := arrivals[len(arrivals)-1].at
	d.pool.runBatches(batches, d.cfg.Window, last)
	return (last/d.cfg.Window + 1) * d.cfg.Window
}

// advanceAll runs every engine to the window boundary, then closes the
// window's saturation accounting in fixed instance order.
func (d *driver) advanceAll(boundary sim.Time) {
	d.advanceEngines(boundary)
	for _, in := range d.insts {
		in.closeWindow()
	}
}

// advanceEngines moves every engine to the deadline — through the
// shard pool when at least two instances have events to execute before
// it, serially otherwise. The lookahead probe keeps barrier overhead
// off quiet gaps: an engine whose next event lies past the deadline
// needs only a clock bump, which is far cheaper than a worker handoff.
func (d *driver) advanceEngines(deadline sim.Time) {
	if d.pool != nil {
		busy := 0
		for _, in := range d.insts {
			if t, ok := in.env.Engine().NextEventAt(); ok && t <= deadline {
				if busy++; busy == 2 {
					d.pool.advance(deadline)
					return
				}
			}
		}
	}
	for _, in := range d.insts {
		in.env.Engine().RunUntil(deadline)
	}
}

// backlog reports whether any instance still has requests in flight.
func backlog(insts []*instance) bool {
	for _, in := range insts {
		if in.srv.Outstanding() > 0 {
			return true
		}
	}
	return false
}

func totalCompleted(insts []*instance) uint64 {
	var n uint64
	for _, in := range insts {
		n += in.srv.Completed()
	}
	return n
}

func summarize(cfg Config, insts []*instance, perArrived []uint64, end sim.Time) *stats.FleetSummary {
	merged := stats.NewHistogram()
	sum := &stats.FleetSummary{
		Policy:        cfg.Policy,
		Shape:         cfg.Shape,
		Mech:          cfg.Mech,
		Rho:           cfg.Rho,
		OfferedPerSec: cfg.RatePerSec,
		Instances:     make([]stats.FleetInstance, len(insts)),
	}
	for i, in := range insts {
		sum.Events += in.env.Engine().Executed()
		h := in.srv.Latencies()
		merged.Merge(h)
		sum.Instances[i] = stats.FleetInstance{
			Arrived:          perArrived[i],
			Completed:        in.srv.Completed(),
			Windows:          in.sat.windows,
			SaturatedWindows: in.sat.saturated,
			PeakOutstanding:  in.srv.PeakOutstanding(),
			P50Ns:            sim.Time(h.Quantile(0.50)).Nanoseconds(),
			P99Ns:            sim.Time(h.Quantile(0.99)).Nanoseconds(),
			P999Ns:           sim.Time(h.Quantile(0.999)).Nanoseconds(),
		}
		sum.Arrived += perArrived[i]
		sum.Completed += in.srv.Completed()
	}
	sum.ElapsedSeconds = end.Seconds()
	if sum.ElapsedSeconds > 0 {
		sum.CompletedPerSec = float64(sum.Completed) / sum.ElapsedSeconds
	}
	sum.P50Ns = sim.Time(merged.Quantile(0.50)).Nanoseconds()
	sum.P99Ns = sim.Time(merged.Quantile(0.99)).Nanoseconds()
	sum.P999Ns = sim.Time(merged.Quantile(0.999)).Nanoseconds()
	return sum
}
