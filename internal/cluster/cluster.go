// Package cluster composes many host+device instances into a fleet
// behind an open-loop arrival process and a request router — the step
// from the paper's single host hiding one device's microsecond latency
// to a memcached-style service absorbing an aggregate request stream.
//
// Each instance is a full core.Env simulation on its own sim.Engine;
// the driver advances every engine in lockstep to each arrival time,
// consults the routing policy against the instances' live queue state,
// and submits the request to the chosen instance's open-loop Server.
// Because the arrival timeline, the key stream, and every tie-break
// are pure functions of the seed, a fleet run is deterministic: the
// same Config always produces the same FleetSummary, byte for byte,
// which is what lets cluster cells ride the content-addressed result
// cache and the parallel sweep executor unchanged.
package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config parameterizes one fleet run.
type Config struct {
	Base platform.Config // per-instance platform (latency, queues, cores)

	Instances int    // host+device instances in the fleet
	Mech      string // per-instance backend: prefetch, swqueue, ondemand
	Policy    string // round-robin, least-outstanding, queue-weighted, key-affinity
	Shape     string // poisson, bursty, saturate

	Workers    int  // worker contexts per instance
	ValueLines int  // device lines fetched per request
	WorkInstr  int  // post-fetch work instructions per request
	Items      int  // memcached key space per instance
	ValueSkew  bool // key-dependent value sizes (mean stays ValueLines)

	Requests   int     // arrivals to generate
	RatePerSec float64 // fleet-wide offered load (ignored by shape saturate)
	Rho        float64 // informational: offered load / measured capacity

	// BurstPeriod and BurstDuty shape the bursty arrival process: the
	// Poisson stream is compressed into the first Duty fraction of
	// every Period, leaving silent gaps — same mean rate, bursts at
	// Rate/Duty. Zero values take defaults (100us, 0.5).
	BurstPeriod sim.Time
	BurstDuty   float64

	// Window is the saturation observation window: per instance, a
	// window whose arrivals exceed its completions while more requests
	// are in flight than the worker pool is flagged saturated. Zero
	// takes a default of 50us.
	Window sim.Time

	Seed uint64 // arrival timeline, key stream, and weighted-policy seed
}

func (c Config) withDefaults() Config {
	if c.BurstPeriod <= 0 {
		c.BurstPeriod = 100 * sim.Microsecond
	}
	if c.BurstDuty <= 0 || c.BurstDuty > 1 {
		c.BurstDuty = 0.5
	}
	if c.Window <= 0 {
		c.Window = 50 * sim.Microsecond
	}
	return c
}

// Validate rejects configurations before any simulation starts.
func (c Config) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.Instances < 1 {
		return fmt.Errorf("cluster: need at least 1 instance, got %d", c.Instances)
	}
	switch c.Mech {
	case "prefetch", "swqueue", "ondemand":
	default:
		return fmt.Errorf("cluster: unknown mechanism %q", c.Mech)
	}
	switch c.Policy {
	case PolicyRoundRobin, PolicyLeastOutstanding, PolicyQueueWeighted, PolicyKeyAffinity:
	default:
		return fmt.Errorf("cluster: unknown policy %q", c.Policy)
	}
	switch c.Shape {
	case ShapePoisson, ShapeBursty, ShapeSaturate:
	default:
		return fmt.Errorf("cluster: unknown arrival shape %q", c.Shape)
	}
	if c.Workers < 1 {
		return fmt.Errorf("cluster: need at least 1 worker per instance, got %d", c.Workers)
	}
	if c.ValueLines < 1 {
		return fmt.Errorf("cluster: need at least 1 value line, got %d", c.ValueLines)
	}
	if c.Items < 1 {
		return fmt.Errorf("cluster: need at least 1 item, got %d", c.Items)
	}
	if c.Requests < 1 {
		return fmt.Errorf("cluster: need at least 1 request, got %d", c.Requests)
	}
	if c.Shape != ShapeSaturate && c.RatePerSec <= 0 {
		return fmt.Errorf("cluster: offered rate %g must be positive", c.RatePerSec)
	}
	return nil
}

// instance is one fleet member: an Env, its open-loop server, and the
// sliding-window saturation accounting.
type instance struct {
	env *core.Env
	srv *core.Server

	windows       int
	saturated     int
	prevArrived   uint64
	prevCompleted uint64
}

// Run executes one fleet simulation and summarizes it.
func Run(cfg Config) (*stats.FleetSummary, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Every instance serves the same memcached-style item store; the
	// backing is content-only (no engine state), so sharing one across
	// instances is safe and keeps N-instantiation cheap.
	backing := workload.NewMemcached(cfg.Items, cfg.ValueLines, 1, 1).Backing()
	insts := make([]*instance, cfg.Instances)
	for i := range insts {
		env := core.NewEnv(cfg.Base, backing)
		srv, err := core.NewServer(env, core.ServerConfig{
			Mech:       cfg.Mech,
			Workers:    cfg.Workers,
			ValueLines: cfg.ValueLines,
			WorkInstr:  cfg.WorkInstr,
			ValueSkew:  cfg.ValueSkew,
		})
		if err != nil {
			return nil, err
		}
		insts[i] = &instance{env: env, srv: srv}
	}

	arrivals := generateArrivals(cfg)
	router, err := newRouter(cfg)
	if err != nil {
		return nil, err
	}

	// Lockstep drive: advance every engine to each arrival's timestamp
	// (closing out saturation windows on the way), then route on the
	// instances' now-current queue state.
	perArrived := make([]uint64, cfg.Instances)
	nextWindow := cfg.Window
	for _, a := range arrivals {
		for nextWindow <= a.at {
			advanceAll(insts, nextWindow, cfg.Workers)
			nextWindow += cfg.Window
		}
		for _, in := range insts {
			in.env.Engine().RunUntil(a.at)
		}
		target := router.pick(insts, a.key)
		perArrived[target]++
		insts[target].srv.Submit(a.key)
	}

	// Drain: no more arrivals; close the servers and keep advancing in
	// window-sized lockstep so the saturation accounting still observes
	// the backlog being worked off, not just the final state. If no
	// instance makes progress for a long stretch the loop hands over to
	// RunChecked, whose watchdog names the stuck process.
	for _, in := range insts {
		in.srv.Close()
	}
	idle := 0
	for backlog(insts) && idle < 1000 {
		before := totalCompleted(insts)
		advanceAll(insts, nextWindow, cfg.Workers)
		nextWindow += cfg.Window
		if totalCompleted(insts) == before {
			idle++
		} else {
			idle = 0
		}
	}
	for _, in := range insts {
		if _, err := in.env.Engine().RunChecked(); err != nil {
			return nil, fmt.Errorf("cluster: instance drain: %w", err)
		}
	}
	var end sim.Time
	for _, in := range insts {
		if lc := in.srv.LastComplete(); lc > end {
			end = lc
		}
	}

	sum := summarize(cfg, insts, perArrived, end)
	for _, in := range insts {
		in.env.Engine().Recycle()
	}
	return sum, nil
}

// backlog reports whether any instance still has requests in flight.
func backlog(insts []*instance) bool {
	for _, in := range insts {
		if in.srv.Outstanding() > 0 {
			return true
		}
	}
	return false
}

func totalCompleted(insts []*instance) uint64 {
	var n uint64
	for _, in := range insts {
		n += in.srv.Completed()
	}
	return n
}

// advanceAll moves every instance's engine to the window boundary and
// closes the window's saturation accounting.
func advanceAll(insts []*instance, boundary sim.Time, workers int) {
	for _, in := range insts {
		in.env.Engine().RunUntil(boundary)
	}
	closeWindow(insts, workers)
}

// closeWindow flags, per instance, a window where arrivals outpaced
// completions while the backlog exceeded the worker pool — sustained
// oversubscription, not a transient burst one pool of workers absorbs.
func closeWindow(insts []*instance, workers int) {
	for _, in := range insts {
		arr, comp := in.srv.Arrived(), in.srv.Completed()
		dArr, dComp := arr-in.prevArrived, comp-in.prevCompleted
		in.windows++
		if dArr > dComp && in.srv.Outstanding() > workers {
			in.saturated++
		}
		in.prevArrived, in.prevCompleted = arr, comp
	}
}

func summarize(cfg Config, insts []*instance, perArrived []uint64, end sim.Time) *stats.FleetSummary {
	merged := stats.NewHistogram()
	sum := &stats.FleetSummary{
		Policy:        cfg.Policy,
		Shape:         cfg.Shape,
		Mech:          cfg.Mech,
		Rho:           cfg.Rho,
		OfferedPerSec: cfg.RatePerSec,
		Instances:     make([]stats.FleetInstance, len(insts)),
	}
	for i, in := range insts {
		h := in.srv.Latencies()
		merged.Merge(h)
		sum.Instances[i] = stats.FleetInstance{
			Arrived:          perArrived[i],
			Completed:        in.srv.Completed(),
			Windows:          in.windows,
			SaturatedWindows: in.saturated,
			PeakOutstanding:  in.srv.PeakOutstanding(),
			P50Ns:            sim.Time(h.Quantile(0.50)).Nanoseconds(),
			P99Ns:            sim.Time(h.Quantile(0.99)).Nanoseconds(),
			P999Ns:           sim.Time(h.Quantile(0.999)).Nanoseconds(),
		}
		sum.Arrived += perArrived[i]
		sum.Completed += in.srv.Completed()
	}
	sum.ElapsedSeconds = end.Seconds()
	if sum.ElapsedSeconds > 0 {
		sum.CompletedPerSec = float64(sum.Completed) / sum.ElapsedSeconds
	}
	sum.P50Ns = sim.Time(merged.Quantile(0.50)).Nanoseconds()
	sum.P99Ns = sim.Time(merged.Quantile(0.99)).Nanoseconds()
	sum.P999Ns = sim.Time(merged.Quantile(0.999)).Nanoseconds()
	return sum
}
