package cluster

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Arrival shapes.
const (
	ShapePoisson  = "poisson"  // memoryless open-loop stream at RatePerSec
	ShapeBursty   = "bursty"   // same mean rate compressed into on/off bursts
	ShapeSaturate = "saturate" // every request at once: the capacity probe
)

// arrival is one request of the precomputed open-loop timeline.
type arrival struct {
	at  sim.Time
	key uint64
}

// generateArrivals precomputes the full arrival timeline. Times and
// keys come from independent seeded streams so changing the request
// count leaves the early timeline identical, and the timeline is
// strictly ordered because the exponential sampler never returns a
// zero gap.
func generateArrivals(cfg Config) []arrival {
	keys := stats.NewRand(cfg.Seed ^ 0x6B65795F73747265) // "key_stre"
	out := make([]arrival, cfg.Requests)

	if cfg.Shape == ShapeSaturate {
		// The capacity probe: the whole batch is offered immediately
		// (1ps apart to keep submissions ordered), so completion rate
		// measures the fleet's intrinsic service capacity.
		for i := range out {
			out[i] = arrival{
				at:  sim.Time(i + 1),
				key: keys.Uint64() % uint64(cfg.Items),
			}
		}
		return out
	}

	// Poisson process: exponential inter-arrival gaps with mean
	// 1/rate, drawn in picoseconds. The bursty shape draws at
	// rate/duty so that after compression the mean rate is back to
	// RatePerSec while the in-burst rate is RatePerSec/duty.
	meanGapPs := float64(sim.Second) / cfg.RatePerSec
	if cfg.Shape == ShapeBursty {
		meanGapPs *= cfg.BurstDuty
	}
	exp := stats.NewExp(cfg.Seed, meanGapPs)
	var t sim.Time
	for i := range out {
		t += sim.Time(exp.Next())
		out[i] = arrival{at: t, key: keys.Uint64() % uint64(cfg.Items)}
	}

	if cfg.Shape == ShapeBursty {
		// Time-warp the Poisson stream into on/off bursts: each period
		// P keeps only its first Duty fraction live, so a timeline
		// spanning T seconds compresses into bursts at Rate/Duty with
		// silent gaps between them — same request count, same mean
		// rate, fatter tails.
		on := sim.Time(float64(cfg.BurstPeriod) * cfg.BurstDuty)
		for i := range out {
			t := out[i].at
			period := t / on
			out[i].at = period*cfg.BurstPeriod + t%on
		}
	}
	return out
}
