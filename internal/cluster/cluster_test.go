package cluster

import (
	"reflect"
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
)

func quickCfg() Config {
	return Config{
		Base:       platform.Default(),
		Instances:  4,
		Mech:       "prefetch",
		Policy:     PolicyRoundRobin,
		Shape:      ShapePoisson,
		Workers:    16,
		ValueLines: 4,
		WorkInstr:  100,
		Items:      1024,
		Requests:   400,
		RatePerSec: 1e6,
		Seed:       1,
	}
}

func TestRunCompletesEverything(t *testing.T) {
	sum, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Arrived != 400 || sum.Completed != 400 {
		t.Fatalf("arrived=%d completed=%d, want 400/400", sum.Arrived, sum.Completed)
	}
	if err := sum.Validate(); err != nil {
		t.Fatal(err)
	}
	if sum.P99Ns <= 0 || sum.P50Ns <= 0 {
		t.Fatalf("degenerate percentiles: p50=%g p99=%g", sum.P50Ns, sum.P99Ns)
	}
	if sum.P50Ns > sum.P99Ns || sum.P99Ns > sum.P999Ns {
		t.Fatalf("percentiles out of order: %g / %g / %g", sum.P50Ns, sum.P99Ns, sum.P999Ns)
	}
	if sum.CompletedPerSec <= 0 {
		t.Fatalf("completion rate %g", sum.CompletedPerSec)
	}
}

// Same config, same seed: the summary must be identical down to the
// last float — the property that lets fleet cells ride the
// content-addressed cache and the parallel executor.
func TestRunDeterministic(t *testing.T) {
	for _, policy := range Policies() {
		cfg := quickCfg()
		cfg.Policy = policy
		cfg.Requests = 200
		a, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two identical runs diverged:\n%+v\n%+v", policy, a, b)
		}
	}
}

func TestSeedChangesTimeline(t *testing.T) {
	cfg := quickCfg()
	cfg.Requests = 200
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical summaries")
	}
}

func TestEveryMechAndShapeRuns(t *testing.T) {
	for _, mech := range []string{"prefetch", "swqueue", "ondemand"} {
		for _, shape := range []string{ShapePoisson, ShapeBursty, ShapeSaturate} {
			cfg := quickCfg()
			cfg.Mech = mech
			cfg.Shape = shape
			cfg.Requests = 120
			sum, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", mech, shape, err)
			}
			if sum.Completed != uint64(cfg.Requests) {
				t.Fatalf("%s/%s: completed %d of %d", mech, shape, sum.Completed, cfg.Requests)
			}
			if err := sum.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", mech, shape, err)
			}
		}
	}
}

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	cfg := quickCfg()
	cfg.Requests = 400
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range sum.Instances {
		if in.Arrived != 100 {
			t.Fatalf("instance %d got %d arrivals, want 100", i, in.Arrived)
		}
	}
}

func TestKeyAffinityIsSticky(t *testing.T) {
	// With one item every request carries the same key, so affinity
	// routing must send the whole stream to a single instance.
	cfg := quickCfg()
	cfg.Policy = PolicyKeyAffinity
	cfg.Items = 1
	cfg.Requests = 100
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, in := range sum.Instances {
		if in.Arrived > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("affinity spread one key over %d instances", nonEmpty)
	}
}

// Past the saturation point the windows must say so: a saturate-shape
// run offers the whole batch at once, so every instance should flag
// saturated windows, while a gentle poisson trickle should flag none.
func TestSaturationDetection(t *testing.T) {
	cfg := quickCfg()
	cfg.Shape = ShapeSaturate
	cfg.Requests = 2000
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range sum.Instances {
		if in.SaturatedWindows == 0 {
			t.Fatalf("instance %d: no saturated windows under a full-batch offer", i)
		}
	}

	cfg = quickCfg()
	cfg.RatePerSec = 1e5 // ~10us between arrivals: far below capacity
	cfg.Requests = 200
	sum, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range sum.Instances {
		if in.SaturatedWindows != 0 {
			t.Fatalf("instance %d: %d saturated windows at 10%% load", i, in.SaturatedWindows)
		}
	}
}

// Near saturation with heterogeneous request sizes, least-outstanding
// must beat round-robin's tail: the adaptive policy steers around the
// instance that drew a run of fat values while the static rotation
// keeps feeding it.
func TestLeastOutstandingBeatsRoundRobinTail(t *testing.T) {
	base := quickCfg()
	base.ValueSkew = true
	base.Requests = 3000
	base.RatePerSec = 0.9 * 9.33e6 // rho = 0.9 of the measured fleet capacity

	rr := base
	rr.Policy = PolicyRoundRobin
	rrSum, err := Run(rr)
	if err != nil {
		t.Fatal(err)
	}
	lo := base
	lo.Policy = PolicyLeastOutstanding
	loSum, err := Run(lo)
	if err != nil {
		t.Fatal(err)
	}
	if loSum.P99Ns >= rrSum.P99Ns {
		t.Fatalf("least-outstanding p99 %.0fns not better than round-robin %.0fns",
			loSum.P99Ns, rrSum.P99Ns)
	}
}

// The bursty shape preserves the mean offered rate but compresses it
// into on-windows, so at the same rho its tail must be strictly worse
// than the memoryless stream's.
func TestBurstyFattensTail(t *testing.T) {
	base := quickCfg()
	base.ValueSkew = true
	base.Requests = 3000
	base.RatePerSec = 0.9 * 9.33e6

	po, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b := base
	b.Shape = ShapeBursty
	bu, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if bu.P99Ns <= po.P99Ns {
		t.Fatalf("bursty p99 %.0fns not fatter than poisson %.0fns", bu.P99Ns, po.P99Ns)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Instances = 0 },
		func(c *Config) { c.Mech = "warp" },
		func(c *Config) { c.Policy = "psychic" },
		func(c *Config) { c.Shape = "square" },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.ValueLines = 0 },
		func(c *Config) { c.Items = 0 },
		func(c *Config) { c.Requests = 0 },
		func(c *Config) { c.RatePerSec = 0 },
	}
	for i, mutate := range bad {
		cfg := quickCfg()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestBurstyKeepsCountAndOrder(t *testing.T) {
	cfg := quickCfg()
	cfg.Shape = ShapeBursty
	cfg = cfg.withDefaults()
	arr := generateArrivals(cfg)
	if len(arr) != cfg.Requests {
		t.Fatalf("got %d arrivals, want %d", len(arr), cfg.Requests)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].at < arr[i-1].at {
			t.Fatalf("arrival %d at %v precedes %d at %v", i, arr[i].at, i-1, arr[i-1].at)
		}
	}
	// every arrival must land inside an on-window
	on := sim.Time(float64(cfg.BurstPeriod) * cfg.BurstDuty)
	for i, a := range arr {
		if a.at%cfg.BurstPeriod >= on {
			t.Fatalf("arrival %d at %v lands in the off fraction", i, a.at)
		}
	}
}
