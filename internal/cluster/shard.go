package cluster

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Worker wake-up tuning. A state-dependent policy barriers at every
// arrival, so a fleet run is thousands of job publications; a blocking
// channel wake costs a futex round-trip (microseconds) per worker per
// barrier, which would rival the simulation work between barriers.
// Workers therefore spin briefly on the round counter before parking:
// spinRounds bounds the spin, and every spinYield iterations the
// worker yields its OS thread so a spinning worker never starves the
// driver's serial routing section. On a single-proc machine spinning
// can only steal time from the driver, so it is disabled.
const (
	spinRounds = 1024
	spinYield  = 64
)

// shardPool advances a fleet's instance engines across OS cores. The
// pool holds persistent worker goroutines; each barrier round the
// driver publishes a job, bumps the round counter, and blocks until
// all workers finish. Workers claim instances with an atomic cursor —
// work stealing, so one slow engine doesn't idle the other workers
// behind a static partition.
//
// Synchronization per round: the job fields are written before the
// round bump (publish → observe, plus the channel send for parked
// workers), and every engine mutation happens before the worker's
// wg.Done (Done → Wait). Between rounds only the driver touches the
// instances, so no engine is ever driven by two goroutines at once —
// the pool moves engines between OS threads, which Engine documents
// as safe when the caller orders the calls.
type shardPool struct {
	insts []*instance

	// Job for the current round, written by the driver before the
	// round bump. Exactly one of the two modes is active: batches ==
	// nil advances every engine to deadline; otherwise each instance
	// runs its own pre-routed arrival batch through runBatch.
	deadline sim.Time
	batches  [][]arrival
	window   sim.Time
	last     sim.Time

	cursor atomic.Int64  // next instance index to claim this round
	round  atomic.Uint32 // job publication counter

	// Parking: a worker that exhausts its spin budget raises its
	// parked flag and blocks on its channel; the driver wakes exactly
	// the workers whose flags it observes raised. The flag store and
	// the round load are both sequentially consistent, so either the
	// driver sees the flag (and sends) or the worker's post-flag
	// round recheck sees the new round — never neither.
	parked []atomic.Bool
	start  []chan struct{} // one per worker: wake after parking
	spin   int             // per-worker spin budget before parking

	wg sync.WaitGroup // round completion
}

// newShardPool starts shards persistent workers over insts. The caller
// has already clamped shards to [2, len(insts)].
func newShardPool(insts []*instance, shards int) *shardPool {
	p := &shardPool{
		insts:  insts,
		parked: make([]atomic.Bool, shards),
		start:  make([]chan struct{}, shards),
	}
	if runtime.GOMAXPROCS(0) > 1 {
		p.spin = spinRounds
	}
	for w := range p.start {
		p.start[w] = make(chan struct{}, 1)
		go p.worker(w)
	}
	return p
}

func (p *shardPool) worker(w int) {
	var seen uint32
	for {
		// Fast path: the driver published a new round since we last
		// worked. The seq-cst round load orders after the driver's job
		// writes (they happen before its round bump).
		if r := p.round.Load(); r != seen {
			seen = r
			p.work()
			continue
		}
		spun := 0
		for ; spun < p.spin; spun++ {
			if p.round.Load() != seen {
				break
			}
			if spun%spinYield == spinYield-1 {
				runtime.Gosched()
			}
		}
		if spun < p.spin {
			continue
		}
		// Park. Recheck after raising the flag: a round published
		// between our last load and the flag store would otherwise
		// strand the driver (it saw the flag down and skipped the
		// send).
		p.parked[w].Store(true)
		if p.round.Load() != seen {
			p.parked[w].Store(false)
			continue
		}
		if _, ok := <-p.start[w]; !ok {
			return
		}
		p.parked[w].Store(false)
		// The token may be stale (we cleared a previous park via the
		// recheck path after the driver had already sent); looping
		// re-reads the round and either works or re-parks.
	}
}

// work claims and runs instances until the round's cursor is drained.
func (p *shardPool) work() {
	for {
		i := int(p.cursor.Add(1)) - 1
		if i >= len(p.insts) {
			break
		}
		in := p.insts[i]
		if p.batches == nil {
			in.env.Engine().RunUntil(p.deadline)
		} else {
			runBatch(in, p.batches[i], p.window, p.last)
		}
	}
	p.wg.Done()
}

// run executes one published job to completion across all workers.
func (p *shardPool) run() {
	p.cursor.Store(0)
	p.wg.Add(len(p.start))
	p.round.Add(1)
	for w := range p.start {
		if p.parked[w].Load() {
			select {
			case p.start[w] <- struct{}{}:
			default: // a stale token is already waiting; it will wake them
			}
		}
	}
	p.wg.Wait()
}

// advance moves every instance engine to deadline concurrently.
func (p *shardPool) advance(deadline sim.Time) {
	p.deadline = deadline
	p.batches = nil
	p.run()
}

// runBatches runs every instance's pre-routed arrival batch — submits,
// self-paced window closes, and the final advance to the last window
// boundary at or before last — behind a single barrier.
func (p *shardPool) runBatches(batches [][]arrival, window, last sim.Time) {
	p.batches = batches
	p.window = window
	p.last = last
	p.run()
	p.batches = nil
}

// close shuts the workers down. The pool must be idle (no round in
// flight); spinning workers drain their budget, park, and exit on the
// closed channel.
func (p *shardPool) close() {
	for _, c := range p.start {
		close(c)
	}
}

// runBatch replays one instance's slice of the arrival timeline,
// reproducing exactly the schedule the serial lockstep driver gives
// that instance: every window boundary at or before an arrival closes
// (with the engine advanced to the boundary first) before the arrival
// is submitted at its own timestamp, and after the last owned arrival
// the engine still closes every boundary up to the fleet-wide last
// arrival time, because the serial driver closes windows on all
// instances whichever one an arrival targets. Advances to other
// instances' arrival times are skipped: this engine has no events
// there (its next activity is bounded by its own arrivals and window
// boundaries), so those advances were pure clock bumps — unobservable.
func runBatch(in *instance, batch []arrival, window, last sim.Time) {
	eng := in.env.Engine()
	next := window
	for _, a := range batch {
		for next <= a.at {
			eng.RunUntil(next)
			in.closeWindow()
			next += window
		}
		eng.RunUntil(a.at)
		in.srv.Submit(a.key)
	}
	for next <= last {
		eng.RunUntil(next)
		in.closeWindow()
		next += window
	}
	// Land exactly where the serial driver leaves every engine: at the
	// fleet-wide last arrival time with all events up to it executed.
	// Without this, events in (final boundary, last] would execute
	// after Server.Close instead of before — same results, but a
	// different idle-wake event count, and the determinism contract is
	// engine-state-exact, not merely results-exact.
	eng.RunUntil(last)
}
