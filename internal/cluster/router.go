package cluster

import (
	"fmt"

	"repro/internal/stats"
)

// Routing policies.
const (
	PolicyRoundRobin       = "round-robin"       // static rotation, load-blind
	PolicyLeastOutstanding = "least-outstanding" // fewest in-flight requests wins
	PolicyQueueWeighted    = "queue-weighted"    // seeded draw weighted by 1/(1+backlog)
	PolicyKeyAffinity      = "key-affinity"      // deterministic key hash, cache-friendly
)

// Policies lists every routing policy, in rendering order.
func Policies() []string {
	return []string{PolicyRoundRobin, PolicyLeastOutstanding, PolicyQueueWeighted, PolicyKeyAffinity}
}

// policyLookahead declares, per policy, whether the routing decision is
// a pure function of (seed, arrival index, key) — i.e. reads no live
// instance state. The sharded driver exploits the declaration: a
// lookahead policy's whole decision sequence can be precomputed, so
// engines run through entire arrival batches between barriers, while a
// state-dependent policy must barrier at every arrival so its decision
// sees queue state at exactly the arrival's timestamp.
var policyLookahead = map[string]bool{
	PolicyRoundRobin:       true,
	PolicyKeyAffinity:      true,
	PolicyLeastOutstanding: false,
	PolicyQueueWeighted:    false,
}

// Lookahead reports whether the policy declares routing lookahead: its
// decisions read no live queue state, so a sharded fleet run can
// pre-route whole arrival batches for it.
func Lookahead(policy string) bool { return policyLookahead[policy] }

// router picks a target instance for each arrival. Every policy is
// deterministic: ties break to the lowest instance index and the
// weighted draw uses the run's seeded generator, so the routing
// decision sequence is a pure function of (config, seed).
type router struct {
	policy string
	next   int         // round-robin cursor
	r      *stats.Rand // queue-weighted draws
}

func newRouter(cfg Config) (*router, error) {
	switch cfg.Policy {
	case PolicyRoundRobin, PolicyLeastOutstanding, PolicyQueueWeighted, PolicyKeyAffinity:
	default:
		return nil, fmt.Errorf("cluster: unknown policy %q", cfg.Policy)
	}
	return &router{
		policy: cfg.Policy,
		r:      stats.NewRand(cfg.Seed ^ 0x726F757465725F73), // "router_s"
	}, nil
}

// preroute returns the routing decision for the next arrival using no
// live instance state. Only legal for policies that declare Lookahead;
// the round-robin cursor advances here exactly as pick would advance
// it, so a prerouted decision sequence is bit-identical to picking at
// each arrival.
func (rt *router) preroute(n int, key uint64) int {
	switch rt.policy {
	case PolicyRoundRobin:
		i := rt.next
		rt.next = (rt.next + 1) % n
		return i
	case PolicyKeyAffinity:
		return int(mix(key) % uint64(n))
	}
	panic("cluster: preroute on state-dependent policy " + rt.policy)
}

func (rt *router) pick(insts []*instance, key uint64) int {
	switch rt.policy {
	case PolicyRoundRobin, PolicyKeyAffinity:
		return rt.preroute(len(insts), key)

	case PolicyLeastOutstanding:
		best, bestOut := 0, insts[0].srv.Outstanding()
		for i := 1; i < len(insts); i++ {
			if out := insts[i].srv.Outstanding(); out < bestOut {
				best, bestOut = i, out
			}
		}
		return best

	case PolicyQueueWeighted:
		// Draw proportionally to 1/(1+backlog): an idle instance is
		// (1+b) times likelier than one with b queued requests, but
		// loaded instances still receive traffic — the soft variant of
		// least-outstanding.
		weights := make([]float64, len(insts))
		var total float64
		for i, in := range insts {
			weights[i] = 1 / float64(1+in.srv.QueueDepth())
			total += weights[i]
		}
		x := rt.r.Float64() * total
		for i, w := range weights {
			x -= w
			if x < 0 {
				return i
			}
		}
		return len(insts) - 1 // float underflow: last instance
	}
	panic("cluster: unreachable policy " + rt.policy)
}

// mix is one splitmix64 finalization round: keys are routed by their
// mixed hash so consecutive keys spread while equal keys always land
// on the same instance.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
