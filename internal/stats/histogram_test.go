package stats

import (
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the nearest-rank quantile over the raw samples — the
// reference the histogram's bucketed answer is held to.
func exactQuantile(samples []int64, q float64) int64 {
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(q * float64(len(sorted)))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func TestHistogramQuantileWithinOnePercent(t *testing.T) {
	// Latency-like mixture: a tight cluster around 1us (in ps), a tail
	// of retries near 10us, and a few ms-scale stragglers.
	rng := rand.New(rand.NewSource(42))
	var samples []int64
	for i := 0; i < 20000; i++ {
		v := int64(1_000_000 + rng.Intn(200_000))
		switch {
		case i%100 == 0:
			v = int64(10_000_000 + rng.Intn(2_000_000))
		case i%1000 == 0:
			v = int64(1_000_000_000 + rng.Intn(500_000_000))
		}
		samples = append(samples, v)
	}
	h := NewHistogram()
	for _, v := range samples {
		h.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := h.Quantile(q)
		want := exactQuantile(samples, q)
		diff := float64(got-want) / float64(want)
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.01 {
			t.Errorf("Quantile(%v) = %d, exact %d: off by %.2f%% (>1%%)",
				q, got, want, diff*100)
		}
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 256; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0.5); got != 127 {
		t.Errorf("median of 0..255 = %d, want 127 (values < 256 are exact)", got)
	}
	if h.Min() != 0 || h.Max() != 255 {
		t.Errorf("min/max = %d/%d, want 0/255", h.Min(), h.Max())
	}
}

func TestHistogramBoundedMemory(t *testing.T) {
	h := NewHistogram()
	// A pathological spread — ps to hours — must stay in a few thousand
	// buckets, unlike the unbounded per-sample slice it replaced.
	for v := int64(1); v > 0 && v < int64(1)<<62; v *= 3 {
		h.Record(v)
	}
	if n := h.Buckets(); n > 8000 {
		t.Errorf("%d buckets for a full-range spread; want bounded (<=8000)", n)
	}
}

func TestHistogramQuantileClampedToObservedRange(t *testing.T) {
	h := NewHistogram()
	h.Record(1_000_003)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 1_000_003 {
			t.Errorf("Quantile(%v) of a single sample = %d, want the sample", q, got)
		}
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 {
		t.Error("nil histogram must answer zero")
	}
	if NewHistogram().Quantile(0.99) != 0 {
		t.Error("empty histogram must answer zero")
	}
}

func TestHistogramEmptyAllQuantiles(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{0, 0.001, 0.5, 0.99, 1, -1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.Min() != 0 || h.Max() != 0 || h.Buckets() != 0 {
		t.Errorf("empty histogram state: min=%d max=%d buckets=%d", h.Min(), h.Max(), h.Buckets())
	}
}

func TestHistogramSingleSampleEverywhere(t *testing.T) {
	// One sample answers every quantile, including the clamped extremes,
	// across exact, boundary, and bucketed magnitudes.
	for _, v := range []int64{0, 1, 255, 256, 257, 1 << 20, 1<<40 + 12345} {
		h := NewHistogram()
		h.Record(v)
		for _, q := range []float64{0, 0.5, 0.999, 1} {
			if got := h.Quantile(q); got != v {
				t.Errorf("single sample %d: Quantile(%v) = %d", v, q, got)
			}
		}
	}
}

// TestHistogramBucketBoundaries pins the bucketing scheme at its edges:
// the exact/bucketed threshold and power-of-two boundaries, where an
// off-by-one in bucketIndex/bucketValue would silently misplace samples.
func TestHistogramBucketBoundaries(t *testing.T) {
	// Below histExact every value owns its bucket: index == value.
	for _, v := range []int64{0, 1, 127, 128, 255} {
		if got := bucketIndex(v); got != int(v) {
			t.Errorf("bucketIndex(%d) = %d, want exact identity below %d", v, got, histExact)
		}
		if got := bucketValue(int(v)); got != v {
			t.Errorf("bucketValue(%d) = %d, want identity", v, got)
		}
	}
	// At and beyond the threshold, a value's bucket midpoint must stay
	// within half a bucket width: 1/256 of the value.
	for _, v := range []int64{256, 257, 511, 512, 1023, 1024, 1 << 20, 1<<20 + 1, 1<<40 - 1, 1 << 40} {
		idx := bucketIndex(v)
		mid := bucketValue(idx)
		diff := mid - v
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > float64(v)/256+1 {
			t.Errorf("bucketValue(bucketIndex(%d)) = %d: off by %d (> v/256)", v, mid, diff)
		}
	}
	// Bucket indexes must be monotone in the sample value.
	prev := -1
	for v := int64(0); v < 1<<14; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

// TestHistogramLogSpacedCorpus holds the bucketed quantile to its design
// accuracy — half a sub-bucket, 1/256 ≈ 0.39% — on a corpus spanning six
// decades, against the exact nearest-rank reference.
func TestHistogramLogSpacedCorpus(t *testing.T) {
	var samples []int64
	v := 100.0
	for v < 1e8 {
		samples = append(samples, int64(v))
		v *= 1.013
	}
	h := NewHistogram()
	for _, s := range samples {
		h.Record(s)
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		want := exactQuantile(samples, q)
		diff := float64(got-want) / float64(want)
		if diff < 0 {
			diff = -diff
		}
		if diff > 1.0/256 {
			t.Errorf("Quantile(%v) = %d, exact %d: off by %.3f%% (> 0.39%%)",
				q, got, want, diff*100)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("negative samples should clamp to 0: min=%d p50=%d", h.Min(), h.Quantile(0.5))
	}
}

// TestHistogramMerge covers the windowed-rollup path the telemetry
// recorder relies on: merging must be equivalent to recording every
// sample into one histogram.
func TestHistogramMerge(t *testing.T) {
	a, b, ref := NewHistogram(), NewHistogram(), NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(10_000_000))
		a.Record(v)
		ref.Record(v)
	}
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(2_000_000_000))
		b.Record(v)
		ref.Record(v)
	}
	a.Merge(b)
	if a.Count() != ref.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), ref.Count())
	}
	if a.Min() != ref.Min() || a.Max() != ref.Max() {
		t.Errorf("merged min/max = %d/%d, want %d/%d", a.Min(), a.Max(), ref.Min(), ref.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got, want := a.Quantile(q), ref.Quantile(q); got != want {
			t.Errorf("merged Quantile(%v) = %d, want %d", q, got, want)
		}
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	// Empty or nil source: a no-op that must not disturb min/max.
	h := NewHistogram()
	h.Record(500)
	h.Merge(NewHistogram())
	h.Merge(nil)
	if h.Count() != 1 || h.Min() != 500 || h.Max() != 500 {
		t.Errorf("merge of empty changed state: count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	// Empty destination: adopts the source wholesale, including min/max.
	e := NewHistogram()
	e.Merge(h)
	if e.Count() != 1 || e.Min() != 500 || e.Max() != 500 || e.Quantile(0.5) != 500 {
		t.Errorf("merge into empty: count=%d min=%d max=%d p50=%d",
			e.Count(), e.Min(), e.Max(), e.Quantile(0.5))
	}
	// And the source is untouched.
	if h.Count() != 1 || h.Quantile(1) != 500 {
		t.Error("Merge mutated its argument")
	}
}

func TestHistogramMergeDisjointRanges(t *testing.T) {
	// Ranges that do not overlap: min comes from one side, max from the
	// other, regardless of merge direction.
	lo, hi := NewHistogram(), NewHistogram()
	for v := int64(10); v < 20; v++ {
		lo.Record(v)
	}
	for v := int64(1 << 30); v < 1<<30+10; v++ {
		hi.Record(v)
	}
	lo.Merge(hi)
	if lo.Min() != 10 || lo.Max() != (1<<30)+9 {
		t.Errorf("lo<-hi min/max = %d/%d", lo.Min(), lo.Max())
	}
	if lo.Count() != 20 {
		t.Errorf("lo<-hi count = %d, want 20", lo.Count())
	}
	// The other direction: the destination's counts slice must grow.
	lo2, hi2 := NewHistogram(), NewHistogram()
	lo2.Record(10)
	hi2.Record(1 << 30)
	hi2.Merge(lo2)
	if hi2.Min() != 10 || hi2.Max() != 1<<30 || hi2.Count() != 2 {
		t.Errorf("hi<-lo min/max/count = %d/%d/%d", hi2.Min(), hi2.Max(), hi2.Count())
	}
}

func TestHistogramMergeSingleBucket(t *testing.T) {
	// Both sides hold one identical value: one bucket, counts add.
	a, b := NewHistogram(), NewHistogram()
	a.Record(42)
	b.Record(42)
	b.Record(42)
	a.Merge(b)
	if a.Count() != 3 || a.Min() != 42 || a.Max() != 42 || a.Quantile(0.5) != 42 {
		t.Errorf("single-bucket merge: count=%d min=%d max=%d p50=%d",
			a.Count(), a.Min(), a.Max(), a.Quantile(0.5))
	}
}

func TestHistogramMergeIntoNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Merge into a nil histogram must panic")
		}
	}()
	var h *Histogram
	h.Merge(NewHistogram())
}
