package stats

import (
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the nearest-rank quantile over the raw samples — the
// reference the histogram's bucketed answer is held to.
func exactQuantile(samples []int64, q float64) int64 {
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(q * float64(len(sorted)))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func TestHistogramQuantileWithinOnePercent(t *testing.T) {
	// Latency-like mixture: a tight cluster around 1us (in ps), a tail
	// of retries near 10us, and a few ms-scale stragglers.
	rng := rand.New(rand.NewSource(42))
	var samples []int64
	for i := 0; i < 20000; i++ {
		v := int64(1_000_000 + rng.Intn(200_000))
		switch {
		case i%100 == 0:
			v = int64(10_000_000 + rng.Intn(2_000_000))
		case i%1000 == 0:
			v = int64(1_000_000_000 + rng.Intn(500_000_000))
		}
		samples = append(samples, v)
	}
	h := NewHistogram()
	for _, v := range samples {
		h.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := h.Quantile(q)
		want := exactQuantile(samples, q)
		diff := float64(got-want) / float64(want)
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.01 {
			t.Errorf("Quantile(%v) = %d, exact %d: off by %.2f%% (>1%%)",
				q, got, want, diff*100)
		}
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 256; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0.5); got != 127 {
		t.Errorf("median of 0..255 = %d, want 127 (values < 256 are exact)", got)
	}
	if h.Min() != 0 || h.Max() != 255 {
		t.Errorf("min/max = %d/%d, want 0/255", h.Min(), h.Max())
	}
}

func TestHistogramBoundedMemory(t *testing.T) {
	h := NewHistogram()
	// A pathological spread — ps to hours — must stay in a few thousand
	// buckets, unlike the unbounded per-sample slice it replaced.
	for v := int64(1); v > 0 && v < int64(1)<<62; v *= 3 {
		h.Record(v)
	}
	if n := h.Buckets(); n > 8000 {
		t.Errorf("%d buckets for a full-range spread; want bounded (<=8000)", n)
	}
}

func TestHistogramQuantileClampedToObservedRange(t *testing.T) {
	h := NewHistogram()
	h.Record(1_000_003)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 1_000_003 {
			t.Errorf("Quantile(%v) of a single sample = %d, want the sample", q, got)
		}
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 {
		t.Error("nil histogram must answer zero")
	}
	if NewHistogram().Quantile(0.99) != 0 {
		t.Error("empty histogram must answer zero")
	}
}

func TestHistogramEmptyAllQuantiles(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{0, 0.001, 0.5, 0.99, 1, -1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.Min() != 0 || h.Max() != 0 || h.Buckets() != 0 {
		t.Errorf("empty histogram state: min=%d max=%d buckets=%d", h.Min(), h.Max(), h.Buckets())
	}
}

func TestHistogramSingleSampleEverywhere(t *testing.T) {
	// One sample answers every quantile, including the clamped extremes,
	// across exact, boundary, and bucketed magnitudes.
	for _, v := range []int64{0, 1, 255, 256, 257, 1 << 20, 1<<40 + 12345} {
		h := NewHistogram()
		h.Record(v)
		for _, q := range []float64{0, 0.5, 0.999, 1} {
			if got := h.Quantile(q); got != v {
				t.Errorf("single sample %d: Quantile(%v) = %d", v, q, got)
			}
		}
	}
}

// TestHistogramBucketBoundaries pins the bucketing scheme at its edges:
// the exact/bucketed threshold and power-of-two boundaries, where an
// off-by-one in bucketIndex/bucketValue would silently misplace samples.
func TestHistogramBucketBoundaries(t *testing.T) {
	// Below histExact every value owns its bucket: index == value.
	for _, v := range []int64{0, 1, 127, 128, 255} {
		if got := bucketIndex(v); got != int(v) {
			t.Errorf("bucketIndex(%d) = %d, want exact identity below %d", v, got, histExact)
		}
		if got := bucketValue(int(v)); got != v {
			t.Errorf("bucketValue(%d) = %d, want identity", v, got)
		}
	}
	// At and beyond the threshold, a value's bucket midpoint must stay
	// within half a bucket width: 1/256 of the value.
	for _, v := range []int64{256, 257, 511, 512, 1023, 1024, 1 << 20, 1<<20 + 1, 1<<40 - 1, 1 << 40} {
		idx := bucketIndex(v)
		mid := bucketValue(idx)
		diff := mid - v
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > float64(v)/256+1 {
			t.Errorf("bucketValue(bucketIndex(%d)) = %d: off by %d (> v/256)", v, mid, diff)
		}
	}
	// Bucket indexes must be monotone in the sample value.
	prev := -1
	for v := int64(0); v < 1<<14; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

// TestHistogramLogSpacedCorpus holds the bucketed quantile to its design
// accuracy — half a sub-bucket, 1/256 ≈ 0.39% — on a corpus spanning six
// decades, against the exact nearest-rank reference.
func TestHistogramLogSpacedCorpus(t *testing.T) {
	var samples []int64
	v := 100.0
	for v < 1e8 {
		samples = append(samples, int64(v))
		v *= 1.013
	}
	h := NewHistogram()
	for _, s := range samples {
		h.Record(s)
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		want := exactQuantile(samples, q)
		diff := float64(got-want) / float64(want)
		if diff < 0 {
			diff = -diff
		}
		if diff > 1.0/256 {
			t.Errorf("Quantile(%v) = %d, exact %d: off by %.3f%% (> 0.39%%)",
				q, got, want, diff*100)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("negative samples should clamp to 0: min=%d p50=%d", h.Min(), h.Quantile(0.5))
	}
}
