package stats

import (
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the nearest-rank quantile over the raw samples — the
// reference the histogram's bucketed answer is held to.
func exactQuantile(samples []int64, q float64) int64 {
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(q * float64(len(sorted)))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func TestHistogramQuantileWithinOnePercent(t *testing.T) {
	// Latency-like mixture: a tight cluster around 1us (in ps), a tail
	// of retries near 10us, and a few ms-scale stragglers.
	rng := rand.New(rand.NewSource(42))
	var samples []int64
	for i := 0; i < 20000; i++ {
		v := int64(1_000_000 + rng.Intn(200_000))
		switch {
		case i%100 == 0:
			v = int64(10_000_000 + rng.Intn(2_000_000))
		case i%1000 == 0:
			v = int64(1_000_000_000 + rng.Intn(500_000_000))
		}
		samples = append(samples, v)
	}
	h := NewHistogram()
	for _, v := range samples {
		h.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := h.Quantile(q)
		want := exactQuantile(samples, q)
		diff := float64(got-want) / float64(want)
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.01 {
			t.Errorf("Quantile(%v) = %d, exact %d: off by %.2f%% (>1%%)",
				q, got, want, diff*100)
		}
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 256; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0.5); got != 127 {
		t.Errorf("median of 0..255 = %d, want 127 (values < 256 are exact)", got)
	}
	if h.Min() != 0 || h.Max() != 255 {
		t.Errorf("min/max = %d/%d, want 0/255", h.Min(), h.Max())
	}
}

func TestHistogramBoundedMemory(t *testing.T) {
	h := NewHistogram()
	// A pathological spread — ps to hours — must stay in a few thousand
	// buckets, unlike the unbounded per-sample slice it replaced.
	for v := int64(1); v > 0 && v < int64(1)<<62; v *= 3 {
		h.Record(v)
	}
	if n := h.Buckets(); n > 8000 {
		t.Errorf("%d buckets for a full-range spread; want bounded (<=8000)", n)
	}
}

func TestHistogramQuantileClampedToObservedRange(t *testing.T) {
	h := NewHistogram()
	h.Record(1_000_003)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 1_000_003 {
			t.Errorf("Quantile(%v) of a single sample = %d, want the sample", q, got)
		}
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 {
		t.Error("nil histogram must answer zero")
	}
	if NewHistogram().Quantile(0.99) != 0 {
		t.Error("empty histogram must answer zero")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("negative samples should clamp to 0: min=%d p50=%d", h.Min(), h.Quantile(0.5))
	}
}
