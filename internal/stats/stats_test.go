package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeasurementWorkIPS(t *testing.T) {
	m := Measurement{WorkInstr: 1000, ElapsedSeconds: 2}
	if got := m.WorkIPS(); got != 500 {
		t.Errorf("WorkIPS = %v, want 500", got)
	}
	if got := (Measurement{}).WorkIPS(); got != 0 {
		t.Errorf("zero measurement WorkIPS = %v, want 0", got)
	}
}

func TestMeasurementIterationTime(t *testing.T) {
	m := Measurement{Iterations: 4, ElapsedSeconds: 2}
	if got := m.IterationTime(); got != 0.5 {
		t.Errorf("IterationTime = %v, want 0.5", got)
	}
	if got := (Measurement{}).IterationTime(); got != 0 {
		t.Errorf("zero measurement IterationTime = %v, want 0", got)
	}
}

func TestNormalizedTo(t *testing.T) {
	base := Measurement{WorkInstr: 100, ElapsedSeconds: 1}
	fast := Measurement{WorkInstr: 100, ElapsedSeconds: 0.5}
	if got := fast.NormalizedTo(base); got != 2 {
		t.Errorf("normalized = %v, want 2", got)
	}
	if got := fast.NormalizedTo(Measurement{}); !math.IsNaN(got) {
		t.Errorf("normalized to zero baseline = %v, want NaN", got)
	}
	// Degenerate baselines must yield NaN, never a silent +Inf that
	// poisons a figure cell.
	degenerate := []Measurement{
		{WorkInstr: 100, ElapsedSeconds: 0},           // zero time
		{WorkInstr: 0, ElapsedSeconds: 1},             // zero work
		{WorkInstr: 100, ElapsedSeconds: -1},          // negative time
		{WorkInstr: 100, ElapsedSeconds: math.NaN()},  // corrupt time
		{WorkInstr: 100, ElapsedSeconds: math.Inf(1)}, // infinite time... IPS 0
	}
	for _, b := range degenerate {
		got := fast.NormalizedTo(b)
		if !math.IsNaN(got) {
			t.Errorf("normalized to baseline %+v = %v, want NaN", b, got)
		}
	}
}

func TestSeriesAddRunDiags(t *testing.T) {
	tab := &Table{ID: "t", Title: "t", XLabel: "x", YLabel: "y"}
	s := tab.AddSeries("a")
	s.Add(1, 0.5)
	if s.HasDiags() {
		t.Fatal("plain Add should not mark the series as diagnosed")
	}
	s.AddRun(2, 0.9, RunDiag{Accesses: 3, P99Ns: 1200, SimEvents: 5})
	if !s.HasDiags() {
		t.Fatal("AddRun should mark the series as diagnosed")
	}
	if len(s.Diags) != 2 || s.Diags[0] != nil {
		t.Fatalf("Diags misaligned: %+v", s.Diags)
	}
	if s.Diags[1].Accesses != 3 || s.Diags[1].P99Ns != 1200 {
		t.Fatalf("Diags[1] = %+v", s.Diags[1])
	}
	if len(s.X) != 2 || s.Y[1] != 0.9 {
		t.Fatalf("series cells: x=%v y=%v", s.X, s.Y)
	}
}

// Property: normalization is the inverse ratio of iteration times when
// work per iteration matches (the identity the paper's two normalized
// metrics rely on, §IV-C).
func TestNormalizationMatchesTimeRatio(t *testing.T) {
	f := func(tDev, tBase uint16) bool {
		if tDev == 0 || tBase == 0 {
			return true
		}
		dev := Measurement{Iterations: 10, WorkInstr: 1000, ElapsedSeconds: float64(tDev)}
		base := Measurement{Iterations: 10, WorkInstr: 1000, ElapsedSeconds: float64(tBase)}
		got := dev.NormalizedTo(base)
		want := base.IterationTime() / dev.IterationTime() * 1 // same work
		return math.Abs(got-want) < 1e-9*math.Abs(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeriesPeakAndSaturation(t *testing.T) {
	s := &Series{}
	for i, y := range []float64{0.1, 0.4, 0.8, 1.0, 1.0, 1.0} {
		s.Add(float64(i+1), y)
	}
	px, py := s.Peak()
	if px != 4 || py != 1.0 {
		t.Errorf("peak = (%v,%v), want (4,1)", px, py)
	}
	if got := s.SaturationX(0.95); got != 4 {
		t.Errorf("saturation = %v, want 4", got)
	}
	if got := s.SaturationX(0.5); got != 3 {
		t.Errorf("saturation(0.5) = %v, want 3", got)
	}
}

func TestSeriesEmptyPeak(t *testing.T) {
	s := &Series{}
	if x, y := s.Peak(); !math.IsNaN(x) || !math.IsNaN(y) {
		t.Errorf("empty peak = (%v,%v), want NaNs", x, y)
	}
	if got := s.SaturationX(0.9); !math.IsNaN(got) {
		t.Errorf("empty saturation = %v, want NaN", got)
	}
}

func TestSeriesYAt(t *testing.T) {
	s := &Series{}
	s.Add(1, 10)
	s.Add(2, 20)
	if got := s.YAt(2); got != 20 {
		t.Errorf("YAt(2) = %v, want 20", got)
	}
	if got := s.YAt(3); !math.IsNaN(got) {
		t.Errorf("YAt(3) = %v, want NaN", got)
	}
}

func newSampleTable() *Table {
	tb := &Table{ID: "fig3", Title: "Prefetch-based access", XLabel: "threads", YLabel: "normalized work IPC"}
	a := tb.AddSeries("1us")
	a.Add(1, 0.1)
	a.Add(2, 0.2)
	b := tb.AddSeries("4us")
	b.Add(1, 0.05)
	b.Add(4, 0.2) // different x-grid on purpose
	return tb
}

func TestTableText(t *testing.T) {
	txt := newSampleTable().Text()
	for _, want := range []string{"FIG3", "threads", "1us", "4us", "0.100", "-", "normalized work IPC"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Text() missing %q:\n%s", want, txt)
		}
	}
	// x-union sorted: rows for x = 1, 2, 4.
	lines := strings.Split(strings.TrimSpace(txt), "\n")
	if len(lines) < 6 {
		t.Fatalf("too few lines:\n%s", txt)
	}
}

func TestTableCSV(t *testing.T) {
	csv := newSampleTable().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "threads,1us,4us" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), csv)
	}
	if lines[1] != "1,0.1,0.05" {
		t.Errorf("row1 = %q", lines[1])
	}
	// Missing points render as empty cells.
	if lines[2] != "2,0.2," {
		t.Errorf("row2 = %q", lines[2])
	}
	if lines[3] != "4,,0.2" {
		t.Errorf("row3 = %q", lines[3])
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{ID: "x", XLabel: `a,b`}
	s := tb.AddSeries(`quote"label`)
	s.Add(1, 1)
	csv := tb.CSV()
	if !strings.Contains(csv, `"a,b"`) || !strings.Contains(csv, `"quote""label"`) {
		t.Errorf("escaping wrong: %q", csv)
	}
}

func TestTableNotes(t *testing.T) {
	tb := newSampleTable()
	tb.Note("peak at %d threads", 10)
	if len(tb.Notes) != 1 || tb.Notes[0] != "peak at 10 threads" {
		t.Errorf("notes = %v", tb.Notes)
	}
	if !strings.Contains(tb.Text(), "note: peak at 10 threads") {
		t.Error("Text() missing note")
	}
}

func TestFindSeries(t *testing.T) {
	tb := newSampleTable()
	if tb.FindSeries("1us") == nil {
		t.Error("FindSeries failed to find existing series")
	}
	if tb.FindSeries("nope") != nil {
		t.Error("FindSeries found nonexistent series")
	}
}

func TestFormatNum(t *testing.T) {
	if got := formatNum(4); got != "4" {
		t.Errorf("formatNum(4) = %q", got)
	}
	if got := formatNum(2.5); got != "2.5" {
		t.Errorf("formatNum(2.5) = %q", got)
	}
}
