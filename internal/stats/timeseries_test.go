package stats

import (
	"strings"
	"testing"
)

// validSeries builds a minimal consistent two-window series.
func validSeries() *TimeSeries {
	return &TimeSeries{
		WindowPs:   10_000_000,
		LastSpanPs: 4_000_000,
		Starts:     []uint64{3, 1},
		Completes:  []uint64{2, 2},
		Retries:    []uint64{0, 0},
		Timeouts:   []uint64{0, 0},
		Abandoned:  []uint64{0, 0},
		Switches:   []uint64{1, 0},
		P50Ns:      []float64{1000, 1000},
		P99Ns:      []float64{1200, 1100},
		P999Ns:     []float64{1200, 1100},
		LFBMean:    []float64{0.5, 0.25}, LFBMax: []int{1, 1},
		ChipMean: []float64{0, 0}, ChipMax: []int{0, 0},
		SQMean: []float64{0, 0}, SQMax: []int{0, 0},
		CQMean: []float64{0, 0}, CQMax: []int{0, 0},
		RunnableMean: []float64{0, 0}, RunnableMax: []int{0, 0},
	}
}

func TestTimeSeriesValidate(t *testing.T) {
	if err := validSeries().Validate(); err != nil {
		t.Fatalf("valid series rejected: %v", err)
	}

	bad := validSeries()
	bad.WindowPs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero window accepted")
	}

	bad = validSeries()
	bad.LastSpanPs = bad.WindowPs + 1
	if err := bad.Validate(); err == nil {
		t.Error("last span longer than the window accepted")
	}

	bad = validSeries()
	bad.P99Ns = bad.P99Ns[:1]
	err := bad.Validate()
	if err == nil {
		t.Error("misaligned p99 column accepted")
	} else if !strings.Contains(err.Error(), "p99") {
		t.Errorf("misalignment error does not name the column: %v", err)
	}

	bad = validSeries()
	bad.RunnableMax = append(bad.RunnableMax, 9)
	if err := bad.Validate(); err == nil {
		t.Error("overlong gauge column accepted")
	}
}

func TestTimeSeriesWindowsNilSafe(t *testing.T) {
	var ts *TimeSeries
	if ts.Windows() != 0 {
		t.Error("nil series must report 0 windows")
	}
	if got := validSeries().Windows(); got != 2 {
		t.Errorf("Windows() = %d, want 2", got)
	}
}

func TestSeriesAttachMetrics(t *testing.T) {
	var s Series
	s.AttachMetrics(validSeries()) // before any point: no-op, no panic
	if s.HasMetrics() {
		t.Error("attach to an empty series must be a no-op")
	}
	s.Add(1, 2)
	s.AttachMetrics(nil)
	if s.HasMetrics() {
		t.Error("nil attach must leave the point unmarked")
	}
	s.AddRun(2, 3, RunDiag{Accesses: 7})
	ts := validSeries()
	s.AttachMetrics(ts)
	if !s.HasMetrics() || s.Metrics[1] != ts || s.Metrics[0] != nil {
		t.Errorf("metrics attach landed wrong: %v", s.Metrics)
	}
	if len(s.Metrics) != len(s.X) {
		t.Errorf("metrics misaligned: %d for %d points", len(s.Metrics), len(s.X))
	}
}
