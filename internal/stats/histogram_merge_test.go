package stats

import "testing"

// The fleet percentile backbone: recording samples into N per-instance
// histograms and merging them must yield exactly the quantiles of one
// histogram that saw every sample. Merge is bucket-wise and the bucket
// layout is value-determined, so this must hold exactly — not within a
// tolerance — for any partition of any sample stream.
func TestMergePartitionQuantileEquivalence(t *testing.T) {
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for _, tc := range []struct {
		name   string
		parts  int
		stream func(r *Rand, i int) int64
	}{
		{"uniform-small", 4, func(r *Rand, i int) int64 { return int64(r.Uint64() % 256) }},
		{"uniform-wide", 7, func(r *Rand, i int) int64 { return int64(r.Uint64() % (1 << 40)) }},
		{"exponential", 5, func(r *Rand, i int) int64 {
			// microsecond-scale latencies in picoseconds, like a fleet run
			return 1_000_000 + int64(r.Uint64()%4_000_000)
		}},
		{"skewed-partition", 3, func(r *Rand, i int) int64 {
			// instance load imbalance: values correlate with sample index
			return int64(i)*1000 + int64(r.Uint64()%512)
		}},
		{"single-value", 2, func(r *Rand, i int) int64 { return 777 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRand(0xC0FFEE)
			combined := NewHistogram()
			parts := make([]*Histogram, tc.parts)
			for i := range parts {
				parts[i] = NewHistogram()
			}
			const n = 20000
			for i := 0; i < n; i++ {
				v := tc.stream(r, i)
				combined.Record(v)
				// deterministic but uneven routing across partitions
				parts[int(r.Uint64()%uint64(tc.parts))].Record(v)
			}
			merged := NewHistogram()
			for _, p := range parts {
				merged.Merge(p)
			}
			if merged.Count() != combined.Count() {
				t.Fatalf("merged count %d, combined %d", merged.Count(), combined.Count())
			}
			if merged.Min() != combined.Min() || merged.Max() != combined.Max() {
				t.Fatalf("merged min/max %d/%d, combined %d/%d",
					merged.Min(), merged.Max(), combined.Min(), combined.Max())
			}
			for _, q := range quantiles {
				if m, c := merged.Quantile(q), combined.Quantile(q); m != c {
					t.Fatalf("q=%g: merged %d, combined %d", q, m, c)
				}
			}
		})
	}
}

// Merging empty histograms into a populated one (and vice versa) must
// not disturb quantiles — the fleet driver merges every instance
// unconditionally, including ones the router never picked.
func TestMergeEmptyPartitions(t *testing.T) {
	combined := NewHistogram()
	populated := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		combined.Record(v * 3)
		populated.Record(v * 3)
	}
	merged := NewHistogram()
	merged.Merge(NewHistogram())
	merged.Merge(populated)
	merged.Merge(NewHistogram())
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if m, c := merged.Quantile(q), combined.Quantile(q); m != c {
			t.Fatalf("q=%g: merged %d, combined %d", q, m, c)
		}
	}
}
