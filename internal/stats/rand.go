package stats

import "math"

// Rand is a tiny seeded splitmix64 generator. The experiment harness
// cannot use math/rand: its stream is not pinned across Go releases,
// and byte-identical reports at any -parallel count require that every
// sampled sequence be a pure function of the seed. splitmix64 is the
// same mixer the workloads already use for key streams, is trivially
// portable, and passes through float64 deterministically (Go's float64
// arithmetic and math.Log are exactly specified by IEEE 754, so the
// derived samples are stable across platforms too).
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with the given value. Equal seeds
// produce equal streams, forever.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next value of the splitmix64 stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns the next value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp is a seeded exponential sampler: the inter-arrival distribution
// of a Poisson process with the given mean. Draws are returned as
// integers in the caller's unit (the cluster layer uses picoseconds)
// and clamped to at least 1 so a degenerate draw can never produce two
// events at an identical timestamp ordering-ambiguously.
type Exp struct {
	r    *Rand
	mean float64
}

// NewExp returns an exponential sampler with the given seed and mean
// (in the caller's unit; must be positive).
func NewExp(seed uint64, mean float64) *Exp {
	if mean <= 0 {
		panic("stats: exponential mean must be positive")
	}
	return &Exp{r: NewRand(seed), mean: mean}
}

// Next draws one inter-arrival gap. The inverse-CDF transform uses
// -log(1-u) rather than -log(u) so u=0 (which Float64 can return) maps
// to a zero gap instead of +Inf.
func (e *Exp) Next() int64 {
	u := e.r.Float64()
	g := int64(math.Round(-math.Log(1-u) * e.mean))
	if g < 1 {
		g = 1
	}
	return g
}
