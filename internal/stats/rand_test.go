package stats

import (
	"math"
	"testing"
)

// The generator streams are part of the repo's determinism contract:
// cluster arrival timelines are pure functions of the seed, so reports
// stay byte-identical across runs, worker counts, and platforms. These
// golden values pin the exact sequences; a change here is a
// report-breaking change.

func TestRandGoldenUint64(t *testing.T) {
	want := []uint64{
		0xbdd732262feb6e95, 0x28efe333b266f103, 0x47526757130f9f52,
		0x581ce1ff0e4ae394, 0x09bc585a244823f2, 0xde4431fa3c80db06,
	}
	r := NewRand(42)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("Uint64 #%d = %#016x, want %#016x", i, got, w)
		}
	}
}

func TestRandGoldenFloat64(t *testing.T) {
	want := []float64{
		0.74156487877182331, 0.1599103928769201,
		0.27860113025513866, 0.34419071652363753,
	}
	r := NewRand(42)
	for i, w := range want {
		if got := r.Float64(); got != w {
			t.Fatalf("Float64 #%d = %.17g, want %.17g", i, got, w)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 #%d = %g out of [0,1)", i, f)
		}
	}
}

func TestExpGolden(t *testing.T) {
	cases := []struct {
		seed uint64
		mean float64
		want []int64
	}{
		{7, 1e6, []int64{494017, 16931, 2310221, 874502, 602287, 286924, 631023, 397611}},
		{20180610, 2500, []int64{1707, 1829, 8413, 1552, 305, 1253, 643, 6234}},
	}
	for _, c := range cases {
		e := NewExp(c.seed, c.mean)
		for i, w := range c.want {
			if got := e.Next(); got != w {
				t.Fatalf("Exp(seed=%d, mean=%g) #%d = %d, want %d", c.seed, c.mean, i, got, w)
			}
		}
	}
}

// Two samplers with the same seed must agree draw-for-draw no matter
// when they were created — the property the lockstep cluster driver
// relies on to precompute arrival timelines.
func TestExpSameSeedSameStream(t *testing.T) {
	a, b := NewExp(99, 1234.5), NewExp(99, 1234.5)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

// The empirical mean of many draws must approach the configured mean:
// the sampler really is exponential, not just deterministic noise.
func TestExpMeanConverges(t *testing.T) {
	const mean = 50000.0
	e := NewExp(3, mean)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(e.Next())
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("empirical mean %.1f, want within 2%% of %.1f", got, mean)
	}
}

func TestExpDrawsArePositive(t *testing.T) {
	e := NewExp(5, 1.0) // mean 1: nearly every raw draw rounds to 0
	for i := 0; i < 1000; i++ {
		if g := e.Next(); g < 1 {
			t.Fatalf("draw %d = %d, want >= 1", i, g)
		}
	}
}

func TestExpRejectsBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewExp(1, 0) did not panic")
		}
	}()
	NewExp(1, 0)
}
