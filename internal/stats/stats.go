// Package stats provides the result containers used by the experiment
// harness: measurement summaries, (x, y) series, and tables that mirror
// the layout of the paper's figures. Tables render as aligned text for
// terminals and as CSV for plotting.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Measurement summarizes one simulation run of a workload under one
// mechanism: how much work retired in how much simulated time.
type Measurement struct {
	Label          string  // e.g. "prefetch lat=1us threads=10"
	Iterations     int     // benchmark loop iterations measured
	Accesses       int     // device/DRAM accesses performed
	WorkInstr      float64 // work instructions retired
	ElapsedSeconds float64 // simulated wall time

	// Recovery accounting under fault injection (zero otherwise).
	Retries   uint64 // accesses re-issued after a timeout
	Timeouts  uint64 // access timeouts that fired
	Abandoned uint64 // accesses given up after the retry budget

	// Host-observed per-access latency percentiles in nanoseconds, from
	// the bounded log-bucketed histogram (zero when no accesses were
	// sampled).
	AccessP50Ns  float64
	AccessP99Ns  float64
	AccessP999Ns float64

	// Time-weighted mean occupancy of the paper's two bottleneck queues
	// over the run: Line Fill Buffer slots summed across cores, and the
	// chip-level MMIO queue. Zero for runs without an engine (the
	// analytic on-demand model).
	MeanLFBOccupancy  float64
	MeanChipOccupancy float64
}

// WorkIPS returns work instructions retired per second of simulated
// time; the paper's "work IPC" differs from it only by the constant
// cycle time, which cancels in normalization.
func (m Measurement) WorkIPS() float64 {
	if m.ElapsedSeconds <= 0 {
		return 0
	}
	return m.WorkInstr / m.ElapsedSeconds
}

// IterationTime returns the average seconds per benchmark iteration.
func (m Measurement) IterationTime() float64 {
	if m.Iterations == 0 {
		return 0
	}
	return m.ElapsedSeconds / float64(m.Iterations)
}

// NormalizedTo returns the paper's "normalized work IPC": this
// measurement's work throughput divided by the baseline's (§IV-C). For
// application benchmarks both sides execute the same iteration count, so
// this equals the paper's "normalized performance" (baseline execution
// time over device execution time).
//
// A zero, negative, or non-finite baseline throughput (an empty or
// corrupt baseline run) yields NaN, never ±Inf: NaN renders as "-" in
// text tables, as an empty cell in CSV, and as null in JSON reports, so
// a broken baseline is visible instead of leaking an infinity into
// downstream ratios.
func (m Measurement) NormalizedTo(baseline Measurement) float64 {
	b := baseline.WorkIPS()
	if b <= 0 || math.IsInf(b, 0) || math.IsNaN(b) {
		return math.NaN()
	}
	return m.WorkIPS() / b
}

// RunDiag is the per-datapoint diagnostic payload a series can carry
// into machine-readable reports: the slice of core.Diagnostics that
// explains one measured cell. stats cannot import core (core imports
// stats), so the fields are restated here and filled by the experiment
// harness.
type RunDiag struct {
	Accesses          int     // device/DRAM accesses performed
	P50Ns             float64 // host-observed per-access latency percentiles
	P99Ns             float64
	P999Ns            float64
	MeanLFBOccupancy  float64 // time-weighted mean LFB slots in use (all cores)
	MeanChipOccupancy float64 // time-weighted mean chip-level MMIO queue occupancy
	SimEvents         uint64  // engine events executed for this run
}

// Series is one labeled curve in a figure: y-values sampled at x-values.
// Diags, when a point was added with AddRun, holds the per-point run
// diagnostics; it is index-aligned with X/Y and nil-padded for points
// added without diagnostics. Metrics likewise holds the per-point
// flight-recorder time series when the run recorded one, attached with
// AttachMetrics after the point is added, and Attrib the per-point
// latency-attribution summary, attached with AttachAttrib.
type Series struct {
	Label   string
	X       []float64
	Y       []float64
	Diags   []*RunDiag
	Metrics []*TimeSeries
	Attrib  []*AttribSummary
	Fleet   []*FleetSummary
}

// Add appends a point without diagnostics.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.Diags = append(s.Diags, nil)
	s.Metrics = append(s.Metrics, nil)
	s.Attrib = append(s.Attrib, nil)
	s.Fleet = append(s.Fleet, nil)
}

// AddRun appends a measured point together with its run diagnostics.
func (s *Series) AddRun(x, y float64, d RunDiag) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.Diags = append(s.Diags, &d)
	s.Metrics = append(s.Metrics, nil)
	s.Attrib = append(s.Attrib, nil)
	s.Fleet = append(s.Fleet, nil)
}

// AttachMetrics attaches a flight-recorder series to the most recently
// added point; a nil ts is a no-op, so callers can pass the run's
// Series field unconditionally.
func (s *Series) AttachMetrics(ts *TimeSeries) {
	if ts == nil || len(s.Metrics) == 0 {
		return
	}
	s.Metrics[len(s.Metrics)-1] = ts
}

// HasDiags reports whether any point carries run diagnostics.
func (s *Series) HasDiags() bool {
	for _, d := range s.Diags {
		if d != nil {
			return true
		}
	}
	return false
}

// HasMetrics reports whether any point carries a flight-recorder
// series.
func (s *Series) HasMetrics() bool {
	for _, ts := range s.Metrics {
		if ts != nil {
			return true
		}
	}
	return false
}

// AttachAttrib attaches an attribution summary to the most recently
// added point; a nil summary is a no-op, so callers can pass the run's
// Attrib field unconditionally.
func (s *Series) AttachAttrib(a *AttribSummary) {
	if a == nil || len(s.Attrib) == 0 {
		return
	}
	s.Attrib[len(s.Attrib)-1] = a
}

// HasAttrib reports whether any point carries an attribution summary.
func (s *Series) HasAttrib() bool {
	for _, a := range s.Attrib {
		if a != nil {
			return true
		}
	}
	return false
}

// AttachFleet attaches a fleet summary to the most recently added
// point; a nil summary is a no-op, so callers can pass the run's Fleet
// field unconditionally.
func (s *Series) AttachFleet(f *FleetSummary) {
	if f == nil || len(s.Fleet) == 0 {
		return
	}
	s.Fleet[len(s.Fleet)-1] = f
}

// HasFleet reports whether any point carries a fleet summary.
func (s *Series) HasFleet() bool {
	for _, f := range s.Fleet {
		if f != nil {
			return true
		}
	}
	return false
}

// Peak returns the maximum y value and the x at which it occurs.
// It returns NaNs for an empty series.
func (s *Series) Peak() (x, y float64) {
	if len(s.Y) == 0 {
		return math.NaN(), math.NaN()
	}
	x, y = s.X[0], s.Y[0]
	for i := range s.Y {
		if s.Y[i] > y {
			x, y = s.X[i], s.Y[i]
		}
	}
	return x, y
}

// SaturationX returns the smallest x at which y reaches frac of the
// series peak — the "knee" used to report where a curve saturates.
func (s *Series) SaturationX(frac float64) float64 {
	_, peak := s.Peak()
	if math.IsNaN(peak) {
		return math.NaN()
	}
	for i := range s.Y {
		if s.Y[i] >= frac*peak {
			return s.X[i]
		}
	}
	return math.NaN()
}

// YAt returns the y value at the given x, or NaN if absent.
func (s *Series) YAt(x float64) float64 {
	for i := range s.X {
		if s.X[i] == x {
			return s.Y[i]
		}
	}
	return math.NaN()
}

// Table is a figure-shaped result: multiple series over a shared x-axis
// meaning (e.g. "threads per core") plus captions.
type Table struct {
	ID     string // e.g. "fig3"
	Title  string
	XLabel string
	YLabel string
	Series []*Series
	Notes  []string // free-form observations recorded by the experiment
}

// AddSeries creates, registers, and returns a new series.
func (t *Table) AddSeries(label string) *Series {
	s := &Series{Label: label}
	t.Series = append(t.Series, s)
	return s
}

// FindSeries returns the series with the given label, or nil.
func (t *Table) FindSeries(label string) *Series {
	for _, s := range t.Series {
		if s.Label == label {
			return s
		}
	}
	return nil
}

// Note records a free-form observation that renders under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// xs returns the sorted union of all x values across series.
func (t *Table) xs() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range t.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// Text renders the table as aligned columns: one row per x value, one
// column per series.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", strings.ToUpper(t.ID), t.Title)
	xs := t.xs()

	headers := make([]string, 0, len(t.Series)+1)
	headers = append(headers, t.XLabel)
	for _, s := range t.Series {
		headers = append(headers, s.Label)
	}
	rows := [][]string{headers}
	for _, x := range xs {
		row := []string{formatNum(x)}
		for _, s := range t.Series {
			y := s.YAt(x)
			if math.IsNaN(y) {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.3f", y))
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(headers))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total-2))
			b.WriteByte('\n')
		}
	}
	if t.YLabel != "" {
		fmt.Fprintf(&b, "(y: %s)\n", t.YLabel)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.XLabel))
	for _, s := range t.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Label))
	}
	b.WriteByte('\n')
	for _, x := range t.xs() {
		b.WriteString(formatNum(x))
		for _, s := range t.Series {
			b.WriteByte(',')
			y := s.YAt(x)
			if !math.IsNaN(y) {
				fmt.Fprintf(&b, "%.6g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func formatNum(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e9 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
