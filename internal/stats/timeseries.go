package stats

import "fmt"

// TimeSeries is the flight-recorder output for one measured run: a
// bounded sequence of contiguous sim-time windows starting at t=0, each
// summarizing throughput, recovery activity, queue occupancy, and
// latency percentiles for its span. It is a pure value type (plain
// exported fields, no histograms, gob- and JSON-friendly) so it can
// ride inside core.Result through the result cache; the recording
// machinery that produces it lives in internal/telemetry.
//
// All per-window slices are index-aligned. Window i covers
// [i*WindowPs, (i+1)*WindowPs) except the last, whose actual span is
// LastSpanPs (the run rarely ends exactly on a window boundary). When
// the recorder's ring filled up, adjacent windows were pair-wise
// coalesced and WindowPs doubled — Coalesced counts the doublings —
// so the series always covers the whole run with bounded storage.
type TimeSeries struct {
	WindowPs   int64 // final window span, picoseconds
	LastSpanPs int64 // actual span of the final (possibly partial) window
	Coalesced  int   // number of times the ring doubled its window

	// Per-window event counts.
	Starts    []uint64
	Completes []uint64
	Retries   []uint64
	Timeouts  []uint64
	Abandoned []uint64
	Switches  []uint64

	// Per-window latency percentiles, nanoseconds (0 when the window
	// completed no accesses).
	P50Ns  []float64
	P99Ns  []float64
	P999Ns []float64

	// Per-window occupancy: time-weighted mean and peak over the
	// window span, summed across cores for the per-core pools.
	LFBMean      []float64
	LFBMax       []int
	ChipMean     []float64
	ChipMax      []int
	SQMean       []float64
	SQMax        []int
	CQMean       []float64
	CQMax        []int
	RunnableMean []float64
	RunnableMax  []int

	// Attribution phase columns, present only when the run had both
	// the flight recorder and the attribution ledger enabled.
	// PhaseNames names the columns in taxonomy order; Phases[i] holds
	// window i's per-phase picosecond sums (over accesses that closed
	// in the window), index-aligned with PhaseNames.
	PhaseNames []string
	Phases     [][]int64

	// Whole-run rollups. The percentile totals come from merging every
	// window histogram (stats.Histogram.Merge), not from re-recording.
	TotalStarts    uint64
	TotalCompletes uint64
	TotalRetries   uint64
	TotalTimeouts  uint64
	TotalAbandoned uint64
	TotalSwitches  uint64
	TotalP50Ns     float64
	TotalP99Ns     float64
	TotalP999Ns    float64
}

// Windows returns the number of recorded windows.
func (ts *TimeSeries) Windows() int {
	if ts == nil {
		return 0
	}
	return len(ts.Starts)
}

// Validate checks the structural invariants: positive window span and
// every per-window slice aligned to the same length.
func (ts *TimeSeries) Validate() error {
	if ts == nil {
		return nil
	}
	if ts.WindowPs <= 0 {
		return fmt.Errorf("timeseries: window span %d ps must be positive", ts.WindowPs)
	}
	if ts.LastSpanPs < 0 || ts.LastSpanPs > ts.WindowPs {
		return fmt.Errorf("timeseries: last span %d ps outside (0, %d]", ts.LastSpanPs, ts.WindowPs)
	}
	n := len(ts.Starts)
	if n > 0 && ts.LastSpanPs == 0 {
		return fmt.Errorf("timeseries: %d windows but zero last span", n)
	}
	for _, c := range []struct {
		name string
		len  int
	}{
		{"completes", len(ts.Completes)},
		{"retries", len(ts.Retries)},
		{"timeouts", len(ts.Timeouts)},
		{"abandoned", len(ts.Abandoned)},
		{"switches", len(ts.Switches)},
		{"p50_ns", len(ts.P50Ns)},
		{"p99_ns", len(ts.P99Ns)},
		{"p999_ns", len(ts.P999Ns)},
		{"lfb_mean", len(ts.LFBMean)},
		{"lfb_max", len(ts.LFBMax)},
		{"chipq_mean", len(ts.ChipMean)},
		{"chipq_max", len(ts.ChipMax)},
		{"sq_mean", len(ts.SQMean)},
		{"sq_max", len(ts.SQMax)},
		{"cq_mean", len(ts.CQMean)},
		{"cq_max", len(ts.CQMax)},
		{"runnable_mean", len(ts.RunnableMean)},
		{"runnable_max", len(ts.RunnableMax)},
	} {
		if c.len != n {
			return fmt.Errorf("timeseries: %s has %d windows, starts has %d", c.name, c.len, n)
		}
	}
	if len(ts.PhaseNames) > 0 {
		if len(ts.Phases) != n {
			return fmt.Errorf("timeseries: phases has %d windows, starts has %d", len(ts.Phases), n)
		}
		for i, row := range ts.Phases {
			if len(row) != len(ts.PhaseNames) {
				return fmt.Errorf("timeseries: phases window %d has %d columns, want %d", i, len(row), len(ts.PhaseNames))
			}
		}
	} else if len(ts.Phases) != 0 {
		return fmt.Errorf("timeseries: %d phase rows but no phase names", len(ts.Phases))
	}
	return nil
}
