package stats

import "math/bits"

// Histogram is a bounded log-bucketed histogram of non-negative int64
// samples (picosecond latencies, byte counts, ...). It replaces the
// unbounded per-access sample slices the diagnostics used to keep: a
// multi-million-access run records into at most a few thousand buckets
// instead of a slice that grows with the access count.
//
// Bucketing is HDR-style with 128 sub-buckets per power of two: values
// below 256 are exact, and above that each bucket spans value>>7 so the
// bucket midpoint is within 1/256 (~0.4%) of every value it absorbs —
// comfortably inside the 1% accuracy budget of the percentile
// diagnostics. The scheme is closed-form (no rescaling, no allocation
// beyond the count slice), so recording is O(1) and deterministic.
type Histogram struct {
	counts []uint64
	total  uint64
	min    int64
	max    int64
}

// histSubBits gives 1<<histSubBits sub-buckets per power of two.
const histSubBits = 7

// histExact is the threshold below which every value has its own bucket.
const histExact = 1 << (histSubBits + 1)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a value to its bucket. Values are clamped at zero.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histExact {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - histSubBits - 1
	mantissa := int(v >> uint(shift)) // in [1<<histSubBits, 1<<(histSubBits+1))
	return histExact + (shift-1)<<histSubBits + (mantissa - histExact/2)
}

// bucketValue returns the representative (midpoint) value of a bucket.
func bucketValue(idx int) int64 {
	if idx < histExact {
		return int64(idx)
	}
	rel := idx - histExact
	shift := rel>>histSubBits + 1
	mantissa := int64(rel&(1<<histSubBits-1) + histExact/2)
	return mantissa<<uint(shift) + int64(1)<<uint(shift)/2
}

// Record adds one sample. Negative samples clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Buckets returns the number of allocated buckets — bounded by the
// sample magnitude, not the sample count.
func (h *Histogram) Buckets() int {
	if h == nil {
		return 0
	}
	return len(h.counts)
}

// Merge adds every sample of o into h, bucket-wise. Both histograms
// use the package's single closed-form bucketing scheme, so the only
// structural difference two instances can have is the allocated bucket
// range; the guard below grows h as needed and a nil or empty o is a
// no-op. Merge is the window→run rollup primitive of the telemetry
// recorder: per-window histograms merge into coalesced windows and
// into the whole-run percentile summary without re-recording samples.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil {
		panic("stats: Merge into nil histogram")
	}
	if o == nil || o.total == 0 {
		return
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
}

// Quantile returns the q-quantile sample value using the same
// nearest-rank convention as the exact-slice percentile it replaced
// (rank = floor(q*n), clamped to [1, n]). It returns 0 when empty. The
// result is the representative value of the bucket holding the ranked
// sample, clamped into [Min, Max] so extreme quantiles never leave the
// observed range.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum uint64
	for idx, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketValue(idx)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
