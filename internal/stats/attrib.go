package stats

import "fmt"

// AttribSummary is the latency-attribution output for one measured
// run: exact per-phase picosecond totals plus per-phase percentile
// summaries of the per-access phase times. Like TimeSeries it is a
// pure value type (plain exported fields, gob- and JSON-friendly) so
// it rides inside core.Result through the result cache; the ledger
// machinery that produces it lives in internal/attrib (stats cannot
// import attrib — attrib uses stats.Histogram).
//
// The invariant the attribution layer guarantees — per access, phase
// times sum exactly to the end-to-end window — survives aggregation:
// the SumPs fields total exactly TotalPs (Validate checks it), and
// Mismatches is zero on a correctly instrumented run.
type AttribSummary struct {
	Label string

	// Phases lists every phase of the taxonomy in canonical order,
	// including all-zero ones, so downstream columns are stable.
	Phases []PhaseSum

	Accesses   uint64 // accesses closed into this summary
	TotalPs    int64  // exact sum of per-access end-to-end windows
	Mismatches uint64 // ledger closes that needed end-time clamping
}

// PhaseSum is one phase's aggregate across a run.
type PhaseSum struct {
	Phase string // stable slug, e.g. "queue_wait"
	SumPs int64  // exact picosecond total across all accesses
	Count uint64 // accesses that spent >0 time in this phase

	// Percentiles of the per-access time spent in this phase, in
	// nanoseconds, over the Count accesses that hit it (zero when
	// Count is zero). From the bounded log-bucketed histogram, so
	// within ~0.4% of exact.
	P50Ns float64
	P99Ns float64
	MaxNs float64
}

// PhasePs returns the picosecond total for the named phase (0 if the
// summary is nil or the phase is absent).
func (a *AttribSummary) PhasePs(phase string) int64 {
	if a == nil {
		return 0
	}
	for _, p := range a.Phases {
		if p.Phase == phase {
			return p.SumPs
		}
	}
	return 0
}

// PhaseFraction returns the named phase's share of the total
// attributed time, in [0,1] (0 when the summary is nil or empty).
func (a *AttribSummary) PhaseFraction(phase string) float64 {
	if a == nil || a.TotalPs <= 0 {
		return 0
	}
	return float64(a.PhasePs(phase)) / float64(a.TotalPs)
}

// DominantPhase returns the phase with the largest exact total and
// that total's share of TotalPs; ties break toward the earlier phase
// in taxonomy order. Empty string for a nil or empty summary.
func (a *AttribSummary) DominantPhase() (string, float64) {
	if a == nil || a.TotalPs <= 0 {
		return "", 0
	}
	best := -1
	for i, p := range a.Phases {
		if best < 0 || p.SumPs > a.Phases[best].SumPs {
			best = i
		}
	}
	if best < 0 {
		return "", 0
	}
	return a.Phases[best].Phase, float64(a.Phases[best].SumPs) / float64(a.TotalPs)
}

// MeanNs returns the mean end-to-end access window in nanoseconds.
func (a *AttribSummary) MeanNs() float64 {
	if a == nil || a.Accesses == 0 {
		return 0
	}
	return float64(a.TotalPs) / float64(a.Accesses) / 1e3
}

// Validate checks the structural invariants: no negative sums, no
// duplicate phases, per-phase counts bounded by the access count, and
// the hard exactness invariant that phase sums total TotalPs.
func (a *AttribSummary) Validate() error {
	if a == nil {
		return nil
	}
	if a.TotalPs < 0 {
		return fmt.Errorf("attrib: negative total %d ps", a.TotalPs)
	}
	seen := map[string]bool{}
	var sum int64
	for _, p := range a.Phases {
		if p.Phase == "" {
			return fmt.Errorf("attrib: unnamed phase")
		}
		if seen[p.Phase] {
			return fmt.Errorf("attrib: duplicate phase %q", p.Phase)
		}
		seen[p.Phase] = true
		if p.SumPs < 0 {
			return fmt.Errorf("attrib: phase %q has negative sum %d ps", p.Phase, p.SumPs)
		}
		if p.Count > a.Accesses {
			return fmt.Errorf("attrib: phase %q count %d exceeds %d accesses", p.Phase, p.Count, a.Accesses)
		}
		sum += p.SumPs
	}
	if sum != a.TotalPs {
		return fmt.Errorf("attrib: phase sums %d ps != total %d ps", sum, a.TotalPs)
	}
	return nil
}
