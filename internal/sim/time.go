// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate for every timing model in this repository:
// CPU cores, the PCIe interconnect, DRAM, and the FPGA-based
// microsecond-latency device emulator are all expressed as events and
// processes scheduled on a single Engine.
//
// Determinism is a hard requirement inherited from the paper's
// methodology (§IV-A: "We ensure that the memory access sequence remains
// deterministic across these runs"): events firing at the same
// simulated time are executed in scheduling order, and processes run one
// at a time in strict handoff with the engine, so a simulation with the
// same inputs always produces the same trace.
package sim

import "fmt"

// Time is a simulated point in time or duration, in picoseconds.
//
// Picosecond resolution is used so that sub-nanosecond quantities (a
// 2.3 GHz CPU cycle is ~434.8 ps) accumulate without rounding drift over
// millions of iterations.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromNanoseconds converts a floating-point nanosecond quantity to Time,
// rounding to the nearest picosecond.
func FromNanoseconds(ns float64) Time {
	if ns < 0 {
		return -FromNanoseconds(-ns)
	}
	return Time(ns*float64(Nanosecond) + 0.5)
}

// FromSeconds converts a floating-point second quantity to Time.
func FromSeconds(s float64) Time { return FromNanoseconds(s * 1e9) }

// String formats the time with an adaptive unit, e.g. "1.25us".
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond || t <= -Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

func maxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
