package sim

import (
	"container/heap"
	"fmt"
	"strings"
)

// event is a single scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: events at the same time fire in scheduling order
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulator.
//
// The zero value is not usable; create engines with NewEngine. An Engine
// must be driven from a single goroutine (processes started with Go
// synchronize with the engine in strict handoff, so user code never runs
// concurrently with engine code).
type Engine struct {
	now      Time
	events   eventHeap
	seq      uint64
	executed uint64
	procs    int     // live processes, for leak detection
	started  []*Proc // every process ever started, for stuck-process reports
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far, a cheap proxy
// for simulation effort.
func (e *Engine) Executed() uint64 { return e.executed }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it always indicates a modeling bug, and silently clamping
// would mask it.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step executes the single earliest pending event and reports whether
// one existed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Run executes events until none remain, then returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, advances the
// clock to deadline, and returns the number of events executed.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.executed
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.executed - start
}

// Pending returns the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs returns the number of processes started with Go that have
// not yet returned. A non-zero value after Run indicates a process
// blocked forever (a modeling bug analogous to a goroutine leak).
func (e *Engine) LiveProcs() int { return e.procs }

// LiveProcNames returns the diagnostic names of processes that have not
// yet returned, in start order.
func (e *Engine) LiveProcNames() []string {
	var names []string
	for _, p := range e.started {
		if !p.done {
			names = append(names, p.name)
		}
	}
	return names
}

// RunChecked is Run with a quiescence watchdog: if the event queue
// drains while processes are still blocked — a lost wakeup that a bare
// Run would silently swallow, leaving the caller with a truncated
// simulation — it reports which named processes are stuck. The returned
// time is valid either way.
func (e *Engine) RunChecked() (Time, error) {
	t := e.Run()
	if e.procs > 0 {
		return t, fmt.Errorf("sim: quiescent with %d process(es) still blocked: %s",
			e.procs, strings.Join(e.LiveProcNames(), ", "))
	}
	return t, nil
}
