package sim

import (
	"fmt"
	"strings"
	"sync"
)

// event is a single scheduled callback. Events are stored by value in
// the engine's heap: no interface boxing and no per-event pointer
// allocation, which matters because every figure cell of the
// reproduction is millions of events.
type event struct {
	at  Time
	seq uint64 // tie-breaker: events at the same time fire in scheduling order
	fn  func()
}

// less orders events by (at, seq) — the same total order the original
// container/heap implementation used.
func (a event) less(b event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Engine is a deterministic discrete-event simulator.
//
// The zero value is not usable; create engines with NewEngine. An Engine
// must be driven by one goroutine at a time (processes started with Go
// synchronize with the engine in strict handoff, so user code never runs
// concurrently with engine code). The driving goroutine may change
// between calls when the caller provides the ordering — the sharded
// fleet driver moves engines between barrier workers this way — but two
// goroutines must never drive one engine concurrently.
//
// Internally the engine keeps two pending-event structures:
//
//   - a 4-ary min-heap over []event, ordered by (at, seq), for events
//     scheduled at future times;
//   - a FIFO now-queue for events scheduled at the current timestamp
//     (Gate.Fire waiters, Engine.Go starts, OnFire on fired gates — a
//     large fraction of all events), which bypass the heap entirely.
//
// The split preserves the documented ordering: an event can only enter
// the heap at time t while now < t, and can only enter the now-queue at
// t while now == t, so every heap event at time t was scheduled (and
// sequence-numbered) before every now-queue event at t. Draining heap
// events at `now` before now-queue events is therefore exactly global
// scheduling order.
type Engine struct {
	now      Time
	heap     []event // 4-ary min-heap by (at, seq)
	seq      uint64
	executed uint64

	// now-queue: FIFO of events scheduled at the current timestamp.
	// nowHead indexes the next event to run; popped slots are nil'd and
	// the backing array is reused once the queue drains.
	nowq    []func()
	nowHead int

	procs     int     // live processes, for leak detection
	started   []*Proc // processes not yet compacted away, for stuck-process reports
	deadProcs int     // finished processes still occupying started

	// free lists, refilled across runs by Recycle via the package
	// scratch pool: finished Proc shells (goroutine exited, channels
	// reusable) and gate-waiter slices.
	procFree   []*Proc
	waiterFree [][]func()
}

// scratch is the recyclable allocation footprint of one engine run.
// Runs hand it back through scratchPool (Engine.Recycle), and NewEngine
// adopts it, so a worker executing many simulation cells re-runs each
// one on warm backing arrays instead of regrowing them from nil —
// sync.Pool keeps free lists per-P, so each runpool worker effectively
// retains its own scratch across the cells it executes.
type scratch struct {
	heap       []event
	nowq       []func()
	started    []*Proc
	procFree   []*Proc
	waiterFree [][]func()
}

var scratchPool sync.Pool

// NewEngine returns an empty engine with the clock at zero, reusing the
// backing arrays of a previously Recycle()d engine when available.
func NewEngine() *Engine {
	e := &Engine{}
	if s, ok := scratchPool.Get().(*scratch); ok {
		e.heap = s.heap
		e.nowq = s.nowq
		e.started = s.started
		e.procFree = s.procFree
		e.waiterFree = s.waiterFree
	}
	return e
}

// Recycle returns the engine's backing arrays (event heap, now-queue,
// process table, proc and waiter free lists) to the package pool for
// the next NewEngine call. It is a no-op unless the engine is fully
// quiescent — no pending events and no live processes — so a run that
// errored out keeps its state for post-mortem inspection. The engine
// must not be used again after Recycle, and caller-held *Proc handles
// become invalid (the shells are reused by future Go calls).
func (e *Engine) Recycle() {
	if e.procs != 0 || e.Pending() != 0 {
		return
	}
	free := e.procFree
	for i, p := range e.started {
		p.eng = nil // drop the dead engine; Go re-binds on reuse
		free = append(free, p)
		e.started[i] = nil
	}
	s := &scratch{
		heap:       e.heap[:0],
		nowq:       e.nowq[:0],
		started:    e.started[:0],
		procFree:   free,
		waiterFree: e.waiterFree,
	}
	e.heap, e.nowq, e.started, e.procFree, e.waiterFree = nil, nil, nil, nil, nil
	e.nowHead = 0
	e.deadProcs = 0
	scratchPool.Put(s)
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far, a cheap proxy
// for simulation effort.
func (e *Engine) Executed() uint64 { return e.executed }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it always indicates a modeling bug, and silently clamping
// would mask it. Scheduling at the current time enqueues on the FIFO
// now-queue, skipping the heap.
func (e *Engine) At(t Time, fn func()) {
	if t <= e.now {
		if t < e.now {
			panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
		}
		e.pushNow(fn)
		return
	}
	e.seq++
	e.heapPush(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// pushNow appends to the now-queue, compacting consumed head slots
// before the backing array would otherwise grow.
func (e *Engine) pushNow(fn func()) {
	if len(e.nowq) == cap(e.nowq) && e.nowHead > 0 {
		n := copy(e.nowq, e.nowq[e.nowHead:])
		for i := n; i < len(e.nowq); i++ {
			e.nowq[i] = nil
		}
		e.nowq = e.nowq[:n]
		e.nowHead = 0
	}
	e.nowq = append(e.nowq, fn)
}

// popNow removes and returns the oldest now-queue event. The caller
// must have checked it is non-empty.
func (e *Engine) popNow() func() {
	fn := e.nowq[e.nowHead]
	e.nowq[e.nowHead] = nil
	e.nowHead++
	if e.nowHead == len(e.nowq) {
		e.nowq = e.nowq[:0]
		e.nowHead = 0
	}
	return fn
}

// heapPush inserts ev into the 4-ary min-heap.
func (e *Engine) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !ev.less(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
	e.heap = h
}

// heapPop removes and returns the minimum event. The caller must have
// checked the heap is non-empty.
func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the callback reference
	h = h[:n]
	e.heap = h
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			hi := c + 4
			if hi > n {
				hi = n
			}
			for j := c + 1; j < hi; j++ {
				if h[j].less(h[m]) {
					m = j
				}
			}
			if !h[m].less(last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}

// Step executes the single earliest pending event and reports whether
// one existed. Heap events at the current time run before now-queue
// events: they were necessarily scheduled earlier (see the type
// comment), so this is global scheduling order.
func (e *Engine) Step() bool {
	if e.nowHead < len(e.nowq) {
		if len(e.heap) == 0 || e.heap[0].at > e.now {
			fn := e.popNow()
			e.executed++
			fn()
			return true
		}
	}
	if len(e.heap) == 0 {
		return false
	}
	ev := e.heapPop()
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Run executes events until none remain, then returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, advances the
// clock to deadline, and returns the number of events executed.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.executed
	for {
		if e.nowHead < len(e.nowq) && e.now <= deadline {
			e.Step()
			continue
		}
		if len(e.heap) > 0 && e.heap[0].at <= deadline {
			e.Step()
			continue
		}
		break
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.executed - start
}

// Pending returns the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.heap) + len(e.nowq) - e.nowHead }

// NextEventAt returns the timestamp of the earliest pending event and
// whether one exists. It is the conservative-lookahead probe of the
// sharded fleet driver: an engine whose next event lies past a barrier
// deadline needs only a clock bump to reach it, so the driver can
// advance it inline instead of paying for a worker handoff.
func (e *Engine) NextEventAt() (Time, bool) {
	if e.nowHead < len(e.nowq) {
		return e.now, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].at, true
	}
	return 0, false
}

// LiveProcs returns the number of processes started with Go that have
// not yet returned. A non-zero value after Run indicates a process
// blocked forever (a modeling bug analogous to a goroutine leak).
func (e *Engine) LiveProcs() int { return e.procs }

// LiveProcNames returns the diagnostic names of processes that have not
// yet returned, in start order. Compaction removes only finished
// processes and preserves relative order, so the output is stable
// across an engine's whole lifetime.
func (e *Engine) LiveProcNames() []string {
	var names []string
	for _, p := range e.started {
		if !p.done {
			names = append(names, p.name)
		}
	}
	return names
}

// compactAfter is the minimum number of finished-but-retained processes
// before procExited compacts the started table.
const compactAfter = 32

// procExited is called (in engine context) each time a process body
// returns. Once enough finished processes accumulate, the started table
// is compacted in place — preserving start order for LiveProcNames —
// and the finished Proc shells move to the free list for reuse by later
// Go calls, so a long-lived engine no longer retains every process it
// ever ran.
func (e *Engine) procExited() {
	e.deadProcs++
	if e.deadProcs < compactAfter || e.deadProcs*2 < len(e.started) {
		return
	}
	live := e.started[:0]
	for _, p := range e.started {
		if p.done {
			e.procFree = append(e.procFree, p)
		} else {
			live = append(live, p)
		}
	}
	for i := len(live); i < len(e.started); i++ {
		e.started[i] = nil
	}
	e.started = live
	e.deadProcs = 0
}

// getWaiters hands out a pooled gate-waiter slice.
func (e *Engine) getWaiters() []func() {
	if n := len(e.waiterFree); n > 0 {
		s := e.waiterFree[n-1]
		e.waiterFree[n-1] = nil
		e.waiterFree = e.waiterFree[:n-1]
		return s
	}
	return make([]func(), 0, 4)
}

// putWaiters returns a drained waiter slice to the pool. Oversized
// slices and an oversized pool are dropped so one pathological gate
// cannot pin memory.
func (e *Engine) putWaiters(s []func()) {
	if cap(s) > 1024 || len(e.waiterFree) >= 256 {
		return
	}
	for i := range s {
		s[i] = nil
	}
	e.waiterFree = append(e.waiterFree, s[:0])
}

// RunChecked is Run with a quiescence watchdog: if the event queue
// drains while processes are still blocked — a lost wakeup that a bare
// Run would silently swallow, leaving the caller with a truncated
// simulation — it reports which named processes are stuck. The returned
// time is valid either way.
func (e *Engine) RunChecked() (Time, error) {
	t := e.Run()
	if e.procs > 0 {
		return t, fmt.Errorf("sim: quiescent with %d process(es) still blocked: %s",
			e.procs, strings.Join(e.LiveProcNames(), ", "))
	}
	return t, nil
}
