package sim

import "testing"

// Engine microbenchmarks. Every figure cell of the reproduction is
// millions of engine events, so events/sec here is the throughput
// ceiling for the whole sweep pipeline; the benchgate CI job compares
// these numbers against the committed BENCH_engine.json and fails the
// build on a >25% events/sec regression (see cmd/benchgate).
//
// Each benchmark reports events/sec as a custom metric so the gate can
// compare a machine-independent-ish rate rather than raw ns/op.

// BenchmarkSchedule measures the raw At+dispatch path: a self-limiting
// event cascade where every event schedules two more at staggered
// future times, exercising heap push/pop with no process machinery.
func BenchmarkSchedule(b *testing.B) {
	const events = 1 << 14
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		n := 0
		var fan func()
		fan = func() {
			if n >= events {
				return
			}
			n += 2
			e.After(3*Nanosecond, fan)
			e.After(7*Nanosecond, fan)
		}
		e.At(0, func() { n++; fan() })
		e.Run()
		if e.Executed() < events {
			b.Fatalf("executed %d events, want >= %d", e.Executed(), events)
		}
		e.Recycle()
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkNowQueue measures same-timestamp scheduling: chains of
// events scheduled at the current time, the Gate.Fire/Engine.Go
// pattern that the now-queue serves without touching the heap.
func BenchmarkNowQueue(b *testing.B) {
	const events = 1 << 14
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		n := 0
		var chain func()
		chain = func() {
			if n < events {
				n++
				e.At(e.Now(), chain)
			}
		}
		// Hop time forward between bursts so the engine alternates heap
		// pops with now-queue drains, as real runs do.
		for burst := 0; burst < 16; burst++ {
			e.After(Time(burst)*Microsecond, chain)
		}
		e.Run()
		if e.Executed() < events {
			b.Fatalf("executed %d events, want >= %d", e.Executed(), events)
		}
		e.Recycle()
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkGateFanout measures the gate path of prefetch-style runs:
// many waiters parked on one gate, released at once. The waiter
// callback is hoisted out of the loops: a literal inside would cost
// one closure allocation per OnFire call (rounds × waiters ≈ 4096
// allocs/op, formerly drowning the engine's own footprint in
// benchmark-harness noise), which is also how real callers behave —
// core code registers a handful of long-lived callbacks, not a fresh
// closure per waiter. What remains measured is the engine: gate
// allocation and the pooled waiter-slice path.
func BenchmarkGateFanout(b *testing.B) {
	const (
		rounds  = 64
		waiters = 64
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		done := 0
		release := func() { done++ }
		for r := 0; r < rounds; r++ {
			g := e.NewGate()
			for w := 0; w < waiters; w++ {
				g.OnFire(release)
			}
			e.At(Time(r+1)*Microsecond, g.Fire)
		}
		e.Run()
		if done != rounds*waiters {
			b.Fatalf("released %d waiters, want %d", done, rounds*waiters)
		}
		e.Recycle()
	}
	b.ReportMetric(float64(rounds*waiters)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkProcSwitch measures the strict-handoff process machinery:
// a set of processes repeatedly sleeping, i.e. the executor-core
// pattern of every threaded mechanism.
func BenchmarkProcSwitch(b *testing.B) {
	const (
		procs  = 8
		sleeps = 256
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for pi := 0; pi < procs; pi++ {
			e.Go("core", func(p *Proc) {
				for s := 0; s < sleeps; s++ {
					p.Sleep(Nanosecond)
				}
			})
		}
		if _, err := e.RunChecked(); err != nil {
			b.Fatal(err)
		}
		e.Recycle()
	}
	b.ReportMetric(float64(procs*sleeps)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkWaitTimeout measures the two-armed wait of the polling
// mechanisms (software/kernel queues under fault injection): a gate
// race against a timer, alternating winners.
func BenchmarkWaitTimeout(b *testing.B) {
	const waits = 256
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		e.Go("poller", func(p *Proc) {
			for w := 0; w < waits; w++ {
				g := e.NewGate()
				if w%2 == 0 {
					e.After(Nanosecond, g.Fire)
					p.WaitTimeout(g, 2*Nanosecond)
				} else {
					p.WaitTimeout(g, Nanosecond)
					e.After(0, g.Fire) // fire the stale gate; must not double-resume
				}
			}
		})
		if _, err := e.RunChecked(); err != nil {
			b.Fatal(err)
		}
		e.Recycle()
	}
	b.ReportMetric(float64(waits)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}
