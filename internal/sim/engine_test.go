package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := (2 * Microsecond).Nanoseconds(); got != 2000 {
		t.Errorf("2us = %v ns, want 2000", got)
	}
	if got := FromNanoseconds(1.5); got != 1500*Picosecond {
		t.Errorf("FromNanoseconds(1.5) = %v, want 1500ps", got)
	}
	if got := FromNanoseconds(-2); got != -2*Nanosecond {
		t.Errorf("FromNanoseconds(-2) = %v, want -2ns", got)
	}
	if got := FromSeconds(1e-6); got != Microsecond {
		t.Errorf("FromSeconds(1e-6) = %v, want 1us", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{Microsecond, "1.000us"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestFromNanosecondsRoundTrip(t *testing.T) {
	f := func(ns uint32) bool {
		v := FromNanoseconds(float64(ns))
		return v == Time(ns)*Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10*Nanosecond, func() { order = append(order, 2) })
	e.At(5*Nanosecond, func() { order = append(order, 1) })
	e.At(10*Nanosecond, func() { order = append(order, 3) }) // same time: FIFO by seq
	e.At(20*Nanosecond, func() { order = append(order, 4) })
	end := e.Run()
	if end != 20*Nanosecond {
		t.Errorf("final time %v, want 20ns", end)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Executed() != 4 {
		t.Errorf("executed %d events, want 4", e.Executed())
	}
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(3*Nanosecond, func() {
		times = append(times, e.Now())
		e.After(4*Nanosecond, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 3*Nanosecond || times[1] != 7*Nanosecond {
		t.Errorf("times = %v, want [3ns 7ns]", times)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*Nanosecond, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i)*Nanosecond, func() { fired++ })
	}
	n := e.RunUntil(3 * Nanosecond)
	if n != 3 || fired != 3 {
		t.Errorf("RunUntil(3ns) executed %d (fired %d), want 3", n, fired)
	}
	if e.Now() != 3*Nanosecond {
		t.Errorf("now = %v, want 3ns", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	// RunUntil past all events advances the clock to the deadline.
	e.RunUntil(100 * Nanosecond)
	if e.Now() != 100*Nanosecond || fired != 5 {
		t.Errorf("now = %v fired = %d, want 100ns and 5", e.Now(), fired)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wakes []Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Nanosecond)
		wakes = append(wakes, p.Now())
		p.Sleep(10 * Nanosecond)
		wakes = append(wakes, p.Now())
		p.Sleep(0) // zero sleep is a no-op
		wakes = append(wakes, p.Now())
	})
	e.Run()
	if len(wakes) != 3 || wakes[0] != 5*Nanosecond || wakes[1] != 15*Nanosecond || wakes[2] != 15*Nanosecond {
		t.Errorf("wakes = %v", wakes)
	}
	if e.LiveProcs() != 0 {
		t.Errorf("leaked %d procs", e.LiveProcs())
	}
}

func TestProcSleepUntil(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Go("p", func(p *Proc) {
		p.SleepUntil(7 * Nanosecond)
		p.SleepUntil(3 * Nanosecond) // in the past: no-op
		at = p.Now()
	})
	e.Run()
	if at != 7*Nanosecond {
		t.Errorf("woke at %v, want 7ns", at)
	}
}

func TestProcDeterministicInterleaving(t *testing.T) {
	// Two identical runs must produce identical traces.
	run := func() []string {
		e := NewEngine()
		var trace []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(2 * Nanosecond)
					trace = append(trace, name)
				}
			})
		}
		e.Run()
		return trace
	}
	t1, t2 := run(), run()
	if len(t1) != 9 {
		t.Fatalf("trace length %d, want 9", len(t1))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("nondeterministic traces:\n%v\n%v", t1, t2)
		}
	}
	// Same-time wakeups fire in process start order.
	if t1[0] != "a" || t1[1] != "b" || t1[2] != "c" {
		t.Errorf("first round = %v, want a,b,c prefix", t1[:3])
	}
}

func TestGate(t *testing.T) {
	e := NewEngine()
	g := e.NewGate()
	var woke []Time
	e.Go("waiter1", func(p *Proc) {
		p.Wait(g)
		woke = append(woke, p.Now())
	})
	e.Go("late-waiter", func(p *Proc) {
		p.Sleep(20 * Nanosecond) // waits after the gate fired
		p.Wait(g)
		woke = append(woke, p.Now())
	})
	e.At(8*Nanosecond, func() { g.Fire() })
	e.Run()
	if !g.Fired() || g.FiredAt() != 8*Nanosecond {
		t.Errorf("gate fired=%v at %v, want fired at 8ns", g.Fired(), g.FiredAt())
	}
	if len(woke) != 2 || woke[0] != 8*Nanosecond || woke[1] != 20*Nanosecond {
		t.Errorf("woke = %v, want [8ns 20ns]", woke)
	}
}

func TestGateOnFireCallback(t *testing.T) {
	e := NewEngine()
	g := e.NewGate()
	var calls []Time
	g.OnFire(func() { calls = append(calls, e.Now()) })
	e.At(5*Nanosecond, func() { g.Fire() })
	e.Run()
	g.OnFire(func() { calls = append(calls, e.Now()) }) // after fire: scheduled immediately
	e.Run()
	if len(calls) != 2 || calls[0] != 5*Nanosecond || calls[1] != 5*Nanosecond {
		t.Errorf("calls = %v, want [5ns 5ns]", calls)
	}
}

func TestGateDoubleFirePanics(t *testing.T) {
	e := NewEngine()
	g := e.NewGate()
	g.Fire()
	defer func() {
		if recover() == nil {
			t.Error("double fire did not panic")
		}
	}()
	g.Fire()
}

func TestTokenPoolFIFOAndStats(t *testing.T) {
	e := NewEngine()
	tp := e.NewTokenPool("lfb", 2)
	var grants []int
	for i := 0; i < 4; i++ {
		i := i
		tp.OnAcquire(func() { grants = append(grants, i) })
	}
	// Two granted immediately, two queued.
	e.Run()
	if len(grants) != 2 || tp.InUse() != 2 {
		t.Fatalf("grants = %v inUse = %d, want 2 grants", grants, tp.InUse())
	}
	e.At(e.Now()+Nanosecond, func() { tp.Release() })
	e.At(e.Now()+2*Nanosecond, func() { tp.Release() })
	e.Run()
	want := []int{0, 1, 2, 3}
	for i := range want {
		if grants[i] != want[i] {
			t.Fatalf("grant order %v, want %v", grants, want)
		}
	}
	if tp.Stalls() != 2 || tp.Acquires() != 4 || tp.MaxInUse() != 2 {
		t.Errorf("stalls=%d acquires=%d max=%d, want 2,4,2", tp.Stalls(), tp.Acquires(), tp.MaxInUse())
	}
}

func TestTokenPoolTryAcquire(t *testing.T) {
	e := NewEngine()
	tp := e.NewTokenPool("q", 1)
	if !tp.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if tp.TryAcquire() {
		t.Fatal("TryAcquire succeeded on full pool")
	}
	tp.Release()
	if !tp.TryAcquire() {
		t.Fatal("TryAcquire failed after release")
	}
}

func TestTokenPoolProcBlocking(t *testing.T) {
	e := NewEngine()
	tp := e.NewTokenPool("q", 1)
	var acquired []Time
	for i := 0; i < 3; i++ {
		e.Go("p", func(p *Proc) {
			p.AcquireToken(tp)
			acquired = append(acquired, p.Now())
			p.Sleep(10 * Nanosecond)
			tp.Release()
		})
	}
	e.Run()
	if len(acquired) != 3 || acquired[0] != 0 || acquired[1] != 10*Nanosecond || acquired[2] != 20*Nanosecond {
		t.Errorf("acquired = %v, want [0 10ns 20ns]", acquired)
	}
	if tp.MaxInUse() != 1 {
		t.Errorf("max occupancy %d, want 1", tp.MaxInUse())
	}
}

func TestTokenPoolReleaseEmptyPanics(t *testing.T) {
	e := NewEngine()
	tp := e.NewTokenPool("q", 1)
	defer func() {
		if recover() == nil {
			t.Error("release on empty pool did not panic")
		}
	}()
	tp.Release()
}

func TestTokenPoolMeanOccupancy(t *testing.T) {
	e := NewEngine()
	tp := e.NewTokenPool("q", 4)
	// Hold one token for the entire [0, 100ns] window.
	tp.TryAcquire()
	e.At(100*Nanosecond, func() { tp.Release() })
	e.Run()
	if got := tp.MeanOccupancy(); got < 0.99 || got > 1.01 {
		t.Errorf("mean occupancy %.3f, want ~1.0", got)
	}
}

func TestServerFIFO(t *testing.T) {
	e := NewEngine()
	s := e.NewServer("link")
	s1, e1 := s.Submit(10 * Nanosecond)
	s2, e2 := s.Submit(5 * Nanosecond)
	if s1 != 0 || e1 != 10*Nanosecond {
		t.Errorf("job1 [%v,%v], want [0,10ns]", s1, e1)
	}
	if s2 != 10*Nanosecond || e2 != 15*Nanosecond {
		t.Errorf("job2 [%v,%v], want [10ns,15ns]", s2, e2)
	}
	if s.Jobs() != 2 || s.BusyTime() != 15*Nanosecond {
		t.Errorf("jobs=%d busy=%v", s.Jobs(), s.BusyTime())
	}
}

func TestServerSubmitAt(t *testing.T) {
	e := NewEngine()
	s := e.NewServer("link")
	start, end := s.SubmitAt(20*Nanosecond, 5*Nanosecond)
	if start != 20*Nanosecond || end != 25*Nanosecond {
		t.Errorf("job [%v,%v], want [20ns,25ns]", start, end)
	}
	// A second job ready earlier still queues behind the first (FIFO).
	start2, _ := s.SubmitAt(0, 5*Nanosecond)
	if start2 != 25*Nanosecond {
		t.Errorf("job2 start %v, want 25ns", start2)
	}
}

func TestServerUtilization(t *testing.T) {
	e := NewEngine()
	s := e.NewServer("link")
	s.Submit(30 * Nanosecond)
	done := e.NewGate()
	e.At(60*Nanosecond, func() { done.Fire() })
	e.Run()
	if got := s.Utilization(); got < 0.49 || got > 0.51 {
		t.Errorf("utilization %.3f, want 0.5", got)
	}
}

func TestServerNegativeServicePanics(t *testing.T) {
	e := NewEngine()
	s := e.NewServer("link")
	defer func() {
		if recover() == nil {
			t.Error("negative service time did not panic")
		}
	}()
	s.Submit(-Nanosecond)
}

// TestProcTokenHandoffUnderContention checks that many processes
// contending on a small pool neither deadlock nor violate capacity.
func TestProcTokenHandoffUnderContention(t *testing.T) {
	e := NewEngine()
	tp := e.NewTokenPool("q", 3)
	completed := 0
	for i := 0; i < 50; i++ {
		e.Go("worker", func(p *Proc) {
			p.AcquireToken(tp)
			if tp.InUse() > tp.Capacity() {
				t.Errorf("capacity violated: %d > %d", tp.InUse(), tp.Capacity())
			}
			p.Sleep(Nanosecond)
			tp.Release()
			completed++
		})
	}
	e.Run()
	if completed != 50 {
		t.Errorf("completed %d, want 50", completed)
	}
	if e.LiveProcs() != 0 {
		t.Errorf("leaked %d procs", e.LiveProcs())
	}
	if tp.MaxInUse() != 3 {
		t.Errorf("max in use %d, want 3", tp.MaxInUse())
	}
}

// Property: for any schedule of sleeps, total simulated time equals the
// maximum cumulative sleep across processes (they run concurrently).
func TestProcParallelSleepProperty(t *testing.T) {
	f := func(durs []uint8) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 16 {
			durs = durs[:16]
		}
		e := NewEngine()
		var max Time
		for _, d := range durs {
			d := Time(d) * Nanosecond
			if d > max {
				max = d
			}
			e.Go("p", func(p *Proc) { p.Sleep(d) })
		}
		return e.Run() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRunCheckedReportsStuckProcByName is the regression test for the
// silent-hang failure mode: a process blocked on a gate nobody fires
// must be reported by name instead of being silently abandoned.
func TestRunCheckedReportsStuckProcByName(t *testing.T) {
	e := NewEngine()
	g := e.NewGate() // never fired
	e.Go("stuck-core7", func(p *Proc) {
		p.Wait(g)
	})
	e.Go("healthy", func(p *Proc) {
		p.Sleep(5 * Nanosecond)
	})
	_, err := e.RunChecked()
	if err == nil {
		t.Fatal("RunChecked returned nil for a deadlocked process")
	}
	if !strings.Contains(err.Error(), "stuck-core7") {
		t.Errorf("error %q does not name the stuck process", err)
	}
	if strings.Contains(err.Error(), "healthy") {
		t.Errorf("error %q names a process that exited cleanly", err)
	}
	if e.LiveProcs() != 1 {
		t.Errorf("LiveProcs = %d, want 1", e.LiveProcs())
	}
	if names := e.LiveProcNames(); len(names) != 1 || names[0] != "stuck-core7" {
		t.Errorf("LiveProcNames = %v, want [stuck-core7]", names)
	}
}

func TestRunCheckedCleanRun(t *testing.T) {
	e := NewEngine()
	e.Go("worker", func(p *Proc) { p.Sleep(3 * Nanosecond) })
	end, err := e.RunChecked()
	if err != nil {
		t.Fatalf("RunChecked on a clean run: %v", err)
	}
	if end != 3*Nanosecond {
		t.Errorf("final time %v, want 3ns", end)
	}
}

func TestWaitTimeoutGateFiresFirst(t *testing.T) {
	e := NewEngine()
	g := e.NewGate()
	var fired bool
	var at Time
	e.Go("p", func(p *Proc) {
		fired = p.WaitTimeout(g, 100*Nanosecond)
		at = p.Now()
	})
	e.At(30*Nanosecond, func() { g.Fire() })
	if _, err := e.RunChecked(); err != nil {
		t.Fatal(err)
	}
	if !fired || at != 30*Nanosecond {
		t.Errorf("fired=%v at %v, want gate win at 30ns", fired, at)
	}
}

func TestWaitTimeoutTimerFiresFirst(t *testing.T) {
	e := NewEngine()
	g := e.NewGate()
	var fired bool
	var at Time
	e.Go("p", func(p *Proc) {
		fired = p.WaitTimeout(g, 25*Nanosecond)
		at = p.Now()
		// The gate firing later must not resume the process a second
		// time (the proc continues and exits normally).
		p.Sleep(100 * Nanosecond)
	})
	e.At(60*Nanosecond, func() { g.Fire() })
	if _, err := e.RunChecked(); err != nil {
		t.Fatal(err)
	}
	if fired || at != 25*Nanosecond {
		t.Errorf("fired=%v at %v, want timeout at 25ns", fired, at)
	}
}

func TestWaitTimeoutAlreadyFiredAndNonPositive(t *testing.T) {
	e := NewEngine()
	g := e.NewGate()
	g2 := e.NewGate()
	var results []bool
	var at Time
	e.Go("p", func(p *Proc) {
		g.Fire()
		results = append(results, p.WaitTimeout(g, 50*Nanosecond)) // already fired
		results = append(results, p.WaitTimeout(g2, 0))            // non-blocking check
		results = append(results, p.WaitTimeout(g2, -Nanosecond))
		at = p.Now()
	})
	if _, err := e.RunChecked(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || !results[0] || results[1] || results[2] {
		t.Errorf("results = %v, want [true false false]", results)
	}
	if at != 0 {
		t.Errorf("non-blocking calls advanced time to %v", at)
	}
}
