package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestStartedCompactionKeepsNamesStable is the regression test for the
// unbounded-growth fix: a long-lived engine that starts many processes
// must compact the finished ones out of its process table while
// LiveProcNames keeps reporting survivors in start order.
func TestStartedCompactionKeepsNamesStable(t *testing.T) {
	e := NewEngine()
	g := e.NewGate() // never fired: pins the stuck procs
	const total = 120
	var stuck []string
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("p%03d", i)
		if i == 7 || i == 60 || i == 113 {
			stuck = append(stuck, name)
			e.Go(name, func(p *Proc) { p.Wait(g) })
		} else {
			d := Time(1+i%17) * Nanosecond
			e.Go(name, func(p *Proc) { p.Sleep(d) })
		}
	}
	e.Run()
	if e.LiveProcs() != len(stuck) {
		t.Fatalf("LiveProcs = %d, want %d", e.LiveProcs(), len(stuck))
	}
	// Compaction must have shed most of the 117 finished procs...
	if len(e.started) >= total/2 {
		t.Errorf("started table holds %d entries after %d exits; compaction did not run", len(e.started), total-len(stuck))
	}
	if len(e.procFree) == 0 {
		t.Errorf("no finished procs were pooled for reuse")
	}
	// ...without disturbing the stuck procs' names or start order.
	names := e.LiveProcNames()
	if strings.Join(names, ",") != strings.Join(stuck, ",") {
		t.Errorf("LiveProcNames = %v, want %v", names, stuck)
	}
	// Later Gos reuse pooled shells and still run correctly.
	var woke []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("r%d", i)
		e.Go(name, func(p *Proc) {
			p.Sleep(Nanosecond)
			woke = append(woke, p.Name())
		})
	}
	e.Run()
	if strings.Join(woke, ",") != "r0,r1,r2,r3,r4" {
		t.Errorf("reused procs woke as %v", woke)
	}
	if got := e.LiveProcNames(); strings.Join(got, ",") != strings.Join(stuck, ",") {
		t.Errorf("LiveProcNames after reuse = %v, want %v", got, stuck)
	}
}

// TestWaitTimeoutArmDropsReferences pins the leak fix: whichever arm of
// a WaitTimeout loses the race, the winning arm clears the shared
// Proc reference — so a stale timer event sitting in the heap (or a
// stale waiter on an unfired gate) retains a two-word struct, not the
// process and the workload reachable from it — and the loser never
// resumes the process a second time.
func TestWaitTimeoutArmDropsReferences(t *testing.T) {
	resumed := 0
	p := &Proc{}
	p.resumeFn = func() { resumed++ }

	// Gate wins; the stale timer fires later.
	a := &wtArm{p: p}
	a.gateWin()
	if a.p != nil {
		t.Error("gate win kept the Proc reference alive")
	}
	if !a.fired {
		t.Error("gate win did not record the gate as fired")
	}
	a.timerWin() // stale
	if resumed != 1 {
		t.Fatalf("process resumed %d times, want exactly once", resumed)
	}

	// Timer wins; the gate fires later.
	resumed = 0
	a = &wtArm{p: p}
	a.timerWin()
	if a.p != nil {
		t.Error("timer win kept the Proc reference alive")
	}
	if a.fired {
		t.Error("timer win claimed the gate fired")
	}
	a.gateWin() // stale
	if resumed != 1 {
		t.Fatalf("process resumed %d times, want exactly once", resumed)
	}
}

// TestWaitTimeoutNoDoubleResumeEndToEnd drives both stale-arm orders
// through real runs: the process must observe exactly one wakeup per
// wait even though the losing event still fires inside the engine.
func TestWaitTimeoutNoDoubleResumeEndToEnd(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Go("waiter", func(p *Proc) {
		// Gate wins at 30ns; stale timer pending until 100ns.
		g := e.NewGate()
		e.At(30*Nanosecond, g.Fire)
		fired := p.WaitTimeout(g, 100*Nanosecond)
		trace = append(trace, fmt.Sprintf("gate-win fired=%v at=%v", fired, p.Now()))
		// Stay alive across the stale timer so a double resume would
		// corrupt this sleep instead of deadlocking silently.
		p.Sleep(200 * Nanosecond)
		trace = append(trace, fmt.Sprintf("slept at=%v", p.Now()))

		// Timer wins at +25ns; the gate fires afterwards while the
		// stale waiter is still registered.
		g2 := e.NewGate()
		e.At(p.Now()+60*Nanosecond, g2.Fire)
		fired = p.WaitTimeout(g2, 25*Nanosecond)
		trace = append(trace, fmt.Sprintf("timer-win fired=%v at=%v", fired, p.Now()))
		p.Sleep(100 * Nanosecond)
		trace = append(trace, fmt.Sprintf("done at=%v", p.Now()))
	})
	if _, err := e.RunChecked(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"gate-win fired=true at=30.000ns",
		"slept at=230.000ns",
		"timer-win fired=false at=255.000ns",
		"done at=355.000ns",
	}
	if strings.Join(trace, "; ") != strings.Join(want, "; ") {
		t.Errorf("trace:\n  got  %v\n  want %v", trace, want)
	}
}

// TestRecycledEngineIsDeterministic runs the same schedule on a fresh
// engine and on engines built from recycled scratch, asserting
// identical behavior — array reuse must be invisible to results.
func TestRecycledEngineIsDeterministic(t *testing.T) {
	run := func() (string, uint64) {
		e := NewEngine()
		var log []string
		g := e.NewGate()
		for i := 0; i < 20; i++ {
			name := fmt.Sprintf("w%d", i)
			e.Go(name, func(p *Proc) {
				p.Sleep(Time(1+i%5) * Nanosecond)
				p.Wait(g)
				log = append(log, p.Name())
			})
		}
		e.At(50*Nanosecond, g.Fire)
		if _, err := e.RunChecked(); err != nil {
			t.Fatal(err)
		}
		exec := e.Executed()
		e.Recycle()
		return strings.Join(log, ","), exec
	}
	wantLog, wantExec := run()
	for i := 0; i < 5; i++ {
		gotLog, gotExec := run()
		if gotLog != wantLog || gotExec != wantExec {
			t.Fatalf("recycled run %d diverged: %q (%d events) vs %q (%d events)",
				i, gotLog, gotExec, wantLog, wantExec)
		}
	}
}

// TestRecycleRefusesDirtyEngine: an engine with pending events or live
// procs must keep its state (for stuck-process reports) instead of
// handing reachable arrays to the pool.
func TestRecycleRefusesDirtyEngine(t *testing.T) {
	e := NewEngine()
	g := e.NewGate()
	e.Go("stuck", func(p *Proc) { p.Wait(g) })
	e.Run()
	e.Recycle() // must be a no-op: one proc is still blocked
	if got := e.LiveProcNames(); len(got) != 1 || got[0] != "stuck" {
		t.Fatalf("LiveProcNames after refused recycle = %v, want [stuck]", got)
	}

	e2 := NewEngine()
	e2.At(5*Nanosecond, func() {})
	e2.Recycle() // must be a no-op: one event pending
	if e2.Pending() != 1 {
		t.Fatalf("Pending after refused recycle = %d, want 1", e2.Pending())
	}
}

// TestNowQueueCompaction exercises the head-compaction path of the
// now-queue: long same-timestamp chains must not grow the backing
// array proportionally to chain length.
func TestNowQueueCompaction(t *testing.T) {
	e := NewEngine()
	n := 0
	const chain = 100000
	var next func()
	next = func() {
		if n < chain {
			n++
			e.At(e.Now(), next)
		}
	}
	e.At(Nanosecond, next)
	e.Run()
	if n != chain {
		t.Fatalf("chain executed %d links, want %d", n, chain)
	}
	if c := cap(e.nowq); c > 64 {
		t.Errorf("now-queue backing array grew to %d for a depth-1 chain", c)
	}
}
