package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
)

// This file pins the engine's dispatch order to the pre-refactor
// specification: one global priority queue ordered by (at, seq), where
// seq is the global scheduling sequence number. The production engine
// now splits pending events between a 4-ary heap and a same-timestamp
// now-queue; the property test below runs randomized (fixed-seed)
// schedules of At/After/Gate.Fire/Go interleavings through both the
// reference model and the real engine and asserts identical execution
// order and event counts.

// refEngine is the reference model: the original container/heap
// implementation, kept verbatim as the ordering spec.
type refEngine struct {
	now      Time
	seq      uint64
	events   refHeap
	executed int
}

type refEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func (r *refEngine) At(t Time, fn func()) {
	if t < r.now {
		panic(fmt.Sprintf("ref: scheduling event at %v before now %v", t, r.now))
	}
	r.seq++
	heap.Push(&r.events, &refEvent{at: t, seq: r.seq, fn: fn})
}

func (r *refEngine) Run() {
	for len(r.events) > 0 {
		ev := heap.Pop(&r.events).(*refEvent)
		r.now = ev.at
		r.executed++
		ev.fn()
	}
}

// refGate mirrors Gate's semantics on the reference engine: Fire
// schedules all waiters at the current time in registration order;
// OnFire after the fire schedules immediately-as-an-event.
type refGate struct {
	r       *refEngine
	fired   bool
	waiters []func()
}

func (g *refGate) Fired() bool { return g.fired }
func (g *refGate) Fire() {
	if g.fired {
		panic("ref: gate fired twice")
	}
	g.fired = true
	for _, fn := range g.waiters {
		g.r.At(g.r.now, fn)
	}
	g.waiters = nil
}
func (g *refGate) OnFire(fn func()) {
	if g.fired {
		g.r.At(g.r.now, fn)
		return
	}
	g.waiters = append(g.waiters, fn)
}

// gateIface lets the script drive real and reference gates alike.
type gateIface interface {
	Fire()
	OnFire(fn func())
	Fired() bool
}

// driver abstracts the engine under test so one script interpreter
// drives both implementations.
type driver struct {
	at       func(t Time, fn func())
	now      func() Time
	newGate  func() gateIface
	goProc   func(sleeps []Time, woke func(i int))
	run      func()
	executed func() int
}

func engineDriver(e *Engine) driver {
	return driver{
		at:      e.At,
		now:     e.Now,
		newGate: func() gateIface { return e.NewGate() },
		goProc: func(sleeps []Time, woke func(i int)) {
			e.Go("prop", func(p *Proc) {
				for i, d := range sleeps {
					p.Sleep(d)
					woke(i)
				}
			})
		},
		run:      func() { e.Run() },
		executed: func() int { return int(e.Executed()) },
	}
}

func refDriver(r *refEngine) driver {
	return driver{
		at:      r.At,
		now:     func() Time { return r.now },
		newGate: func() gateIface { return &refGate{r: r} },
		goProc: func(sleeps []Time, woke func(i int)) {
			// Engine.Go schedules a start event at the current time; the
			// body then turns each Sleep(d) into a resume event d later.
			// The reference models that as a chain of events.
			var chain func(i int) func()
			chain = func(i int) func() {
				return func() {
					if i >= 0 {
						woke(i)
					}
					if i+1 < len(sleeps) {
						r.At(r.now+sleeps[i+1], chain(i+1))
					}
				}
			}
			r.At(r.now, func() {
				if len(sleeps) > 0 {
					r.At(r.now+sleeps[0], chain(0))
				}
			})
		},
		run:      func() { r.Run() },
		executed: func() int { return r.executed },
	}
}

// runScript interprets a seeded random schedule against d and returns
// the execution log. All randomness is consumed either up front or
// inside event callbacks; since callbacks run in (asserted-identical)
// dispatch order, both drivers see the same random stream.
func runScript(seed int64, d driver) []int {
	rng := rand.New(rand.NewSource(seed))
	var log []int
	nextID := 0
	budget := 3000
	var gates []gateIface

	var spawn func()
	spawn = func() {
		if budget <= 0 {
			return
		}
		budget--
		id := nextID
		nextID++
		switch rng.Intn(6) {
		case 0, 1: // future event (After)
			delta := Time(1+rng.Intn(40)) * Nanosecond
			d.at(d.now()+delta, func() { log = append(log, id); spawn() })
		case 2: // same-timestamp event (the now-queue path)
			d.at(d.now(), func() { log = append(log, id); spawn() })
		case 3: // gate: waiters registered now, fire scheduled
			g := d.newGate()
			gates = append(gates, g)
			n := 1 + rng.Intn(3)
			for i := 0; i < n; i++ {
				wid := nextID
				nextID++
				g.OnFire(func() { log = append(log, wid); spawn() })
			}
			delta := Time(rng.Intn(25)) * Nanosecond
			d.at(d.now()+delta, func() {
				log = append(log, id)
				if !g.Fired() {
					g.Fire()
				}
			})
		case 4: // late waiter on an existing gate (may already have fired)
			if len(gates) == 0 {
				d.at(d.now()+Nanosecond, func() { log = append(log, id); spawn() })
				break
			}
			g := gates[rng.Intn(len(gates))]
			g.OnFire(func() { log = append(log, id); spawn() })
		case 5: // process: a chain of sleeps (Engine.Go + Proc.Sleep)
			k := 1 + rng.Intn(4)
			sleeps := make([]Time, k)
			ids := make([]int, k)
			for i := range sleeps {
				sleeps[i] = Time(1+rng.Intn(20)) * Nanosecond
				ids[i] = nextID
				nextID++
			}
			d.goProc(sleeps, func(i int) { log = append(log, ids[i]) })
		}
	}

	for i := 0; i < 40; i++ {
		spawn()
	}
	d.run()
	return log
}

// TestDispatchOrderMatchesReferenceModel is the determinism property
// test: for many fixed seeds, the heap+now-queue engine must execute a
// randomized At/After/Gate.Fire/Go schedule in exactly the order of the
// single-global-heap reference spec, with the same event count.
func TestDispatchOrderMatchesReferenceModel(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		e := NewEngine()
		ed := engineDriver(e)
		gotLog := runScript(seed, ed)
		gotExec := ed.executed()

		r := &refEngine{}
		rd := refDriver(r)
		wantLog := runScript(seed, rd)
		wantExec := rd.executed()

		if len(gotLog) != len(wantLog) {
			t.Fatalf("seed %d: engine logged %d events, reference %d", seed, len(gotLog), len(wantLog))
		}
		for i := range wantLog {
			if gotLog[i] != wantLog[i] {
				t.Fatalf("seed %d: dispatch order diverges at %d: engine %v..., reference %v...",
					seed, i, gotLog[i:min(i+8, len(gotLog))], wantLog[i:min(i+8, len(wantLog))])
			}
		}
		if gotExec != wantExec {
			t.Fatalf("seed %d: engine executed %d events, reference %d", seed, gotExec, wantExec)
		}
		if e.LiveProcs() != 0 {
			t.Fatalf("seed %d: leaked %d procs", seed, e.LiveProcs())
		}
		e.Recycle() // cross-seed reuse must not change anything either
	}
}
