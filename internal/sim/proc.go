package sim

import "fmt"

// Proc is a simulated process: sequential code that can block on
// simulated time (Sleep), one-shot events (Wait), and resources
// (AcquireToken). Processes make it possible to express agents with
// complex sequential behavior — a CPU core cycling through user-level
// threads, or the device's request-fetcher state machine — as ordinary
// straight-line Go code instead of hand-written callback state machines.
//
// Under the hood each Proc is a goroutine in strict handoff with the
// engine: exactly one of {engine, some process} runs at any instant, so
// execution is single-threaded and fully deterministic despite using
// goroutines.
type Proc struct {
	eng  *Engine
	name string
	wake chan struct{} // engine -> proc: resume
	park chan struct{} // proc -> engine: parked (or exited)
	done bool
}

// Go starts fn as a simulated process at the current simulated time.
// The name is used in diagnostics only.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:  e,
		name: name,
		wake: make(chan struct{}),
		park: make(chan struct{}),
	}
	e.procs++
	e.started = append(e.started, p)
	// The process body starts executing when this event fires; until its
	// first blocking call it runs inline within the event.
	e.At(e.now, func() {
		go func() {
			fn(p)
			p.done = true
			p.eng.procs--
			p.park <- struct{}{}
		}()
		<-p.park // wait for first block (or exit)
	})
	return p
}

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Name returns the diagnostic name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// block parks the process until resume() is invoked from engine context.
// Must only be called from within the process goroutine.
func (p *Proc) block() {
	p.park <- struct{}{}
	<-p.wake
}

// resume returns a callback that, when executed as an engine event,
// hands control to the parked process and waits for it to park again or
// exit. It must be scheduled on the engine, never called from process
// context.
func (p *Proc) resume() func() {
	return func() {
		p.wake <- struct{}{}
		<-p.park
	}
}

// Sleep blocks the process for d of simulated time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s sleeping for negative duration %v", p.name, d))
	}
	if d == 0 {
		return
	}
	p.eng.At(p.eng.now+d, p.resume())
	p.block()
}

// SleepUntil blocks the process until absolute time t (a no-op if t is
// not in the future).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.eng.now {
		return
	}
	p.Sleep(t - p.eng.now)
}

// Wait blocks the process until g fires. If g has already fired, Wait
// returns immediately without yielding.
func (p *Proc) Wait(g *Gate) {
	if g.fired {
		return
	}
	g.onFire(p.resume())
	p.block()
}

// WaitTimeout blocks the process until g fires or d elapses, whichever
// comes first, and reports whether the gate fired. If g has already
// fired it returns true immediately; d <= 0 checks the gate without
// blocking. The losing wakeup (late gate fire or stale timer) is
// discarded, so the process resumes exactly once.
func (p *Proc) WaitTimeout(g *Gate, d Time) bool {
	if g.fired {
		return true
	}
	if d <= 0 {
		return false
	}
	woken, fired := false, false
	resume := p.resume()
	g.onFire(func() {
		if woken {
			return
		}
		woken, fired = true, true
		resume()
	})
	p.eng.At(p.eng.now+d, func() {
		if woken {
			return
		}
		woken = true
		resume()
	})
	p.block()
	return fired
}

// Gate is a one-shot event that processes and callbacks can wait on.
// It is the simulated analogue of closing a channel: Fire releases all
// current and future waiters. Typical uses are "this device response has
// arrived" and "this thread's prefetched line is filled".
type Gate struct {
	eng     *Engine
	fired   bool
	firedAt Time
	waiters []func()
}

// NewGate returns an unfired gate bound to the engine.
func (e *Engine) NewGate() *Gate { return &Gate{eng: e} }

// Fired reports whether the gate has fired.
func (g *Gate) Fired() bool { return g.fired }

// FiredAt returns the time the gate fired (zero if it has not).
func (g *Gate) FiredAt() Time { return g.firedAt }

// Fire releases all waiters at the current simulated time. Firing an
// already-fired gate panics, as it indicates two agents both believe
// they completed the same request.
func (g *Gate) Fire() {
	if g.fired {
		panic("sim: gate fired twice")
	}
	g.fired = true
	g.firedAt = g.eng.now
	for _, fn := range g.waiters {
		g.eng.At(g.eng.now, fn)
	}
	g.waiters = nil
}

// OnFire registers fn to run (as an engine event) when the gate fires,
// or immediately-as-an-event if it already has.
func (g *Gate) OnFire(fn func()) { g.onFire(fn) }

func (g *Gate) onFire(fn func()) {
	if g.fired {
		g.eng.At(g.eng.now, fn)
		return
	}
	g.waiters = append(g.waiters, fn)
}
