package sim

import "fmt"

// Proc is a simulated process: sequential code that can block on
// simulated time (Sleep), one-shot events (Wait), and resources
// (AcquireToken). Processes make it possible to express agents with
// complex sequential behavior — a CPU core cycling through user-level
// threads, or the device's request-fetcher state machine — as ordinary
// straight-line Go code instead of hand-written callback state machines.
//
// Under the hood each Proc is a goroutine in strict handoff with the
// engine: exactly one of {engine, some process} runs at any instant, so
// execution is single-threaded and fully deterministic despite using
// goroutines.
//
// A Proc's channels and shell outlive the process body: once the body
// returns, the engine may recycle the shell for a later Go call (its
// goroutine has exited and both handoff channels are empty). A *Proc
// handle is therefore only meaningful until the process finishes.
type Proc struct {
	eng  *Engine
	name string
	wake chan struct{} // engine -> proc: resume
	park chan struct{} // proc -> engine: parked (or exited)
	done bool
	body func(*Proc)

	// resumeFn and startFn are created once per shell and reused for
	// every blocking call and every recycled run, so Sleep/Wait/Go do
	// not allocate a closure per invocation.
	resumeFn func()
	startFn  func()
}

// Go starts fn as a simulated process at the current simulated time.
// The name is used in diagnostics only.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	var p *Proc
	if n := len(e.procFree); n > 0 {
		p = e.procFree[n-1]
		e.procFree[n-1] = nil
		e.procFree = e.procFree[:n-1]
		p.eng = e
		p.name = name
		p.done = false
	} else {
		p = &Proc{
			eng:  e,
			name: name,
			wake: make(chan struct{}),
			park: make(chan struct{}),
		}
		p.resumeFn = p.engineResume
		p.startFn = p.engineStart
	}
	p.body = fn
	e.procs++
	e.started = append(e.started, p)
	// The process body starts executing when this event fires; until its
	// first blocking call it runs inline within the event.
	e.pushNow(p.startFn)
	return p
}

// engineStart launches the process goroutine and waits for its first
// park (or exit). Runs as an engine event.
func (p *Proc) engineStart() {
	go p.run()
	<-p.park
	if p.done {
		p.eng.procExited()
	}
}

// run is the process goroutine: execute the body, then hand control
// back to the engine one last time.
func (p *Proc) run() {
	p.body(p)
	p.body = nil // release the workload closure promptly
	p.done = true
	p.eng.procs--
	p.park <- struct{}{}
}

// engineResume hands control to the parked process and waits for it to
// park again or exit. It runs as an engine event, never from process
// context. The engine notices process exit here (and in engineStart),
// in engine context, so bookkeeping needs no synchronization beyond the
// handoff channels themselves.
func (p *Proc) engineResume() {
	p.wake <- struct{}{}
	<-p.park
	if p.done {
		p.eng.procExited()
	}
}

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Name returns the diagnostic name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// block parks the process until resumeFn is invoked from engine
// context. Must only be called from within the process goroutine.
func (p *Proc) block() {
	p.park <- struct{}{}
	<-p.wake
}

// Sleep blocks the process for d of simulated time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s sleeping for negative duration %v", p.name, d))
	}
	if d == 0 {
		return
	}
	p.eng.At(p.eng.now+d, p.resumeFn)
	p.block()
}

// SleepUntil blocks the process until absolute time t (a no-op if t is
// not in the future).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.eng.now {
		return
	}
	p.Sleep(t - p.eng.now)
}

// Wait blocks the process until g fires. If g has already fired, Wait
// returns immediately without yielding.
func (p *Proc) Wait(g *Gate) {
	if g.fired {
		return
	}
	g.onFire(p.resumeFn)
	p.block()
}

// wtArm is the shared state of one WaitTimeout: a gate arm racing a
// timer arm. The winning arm clears p before resuming, so the losing
// arm — which can sit in the event heap or a gate's waiter list long
// after the wait ended — retains only this empty struct, not the Proc
// and everything reachable from it.
type wtArm struct {
	p     *Proc
	fired bool
}

func (a *wtArm) gateWin() {
	p := a.p
	if p == nil {
		return
	}
	a.p = nil
	a.fired = true
	p.resumeFn()
}

func (a *wtArm) timerWin() {
	p := a.p
	if p == nil {
		return
	}
	a.p = nil
	p.resumeFn()
}

// WaitTimeout blocks the process until g fires or d elapses, whichever
// comes first, and reports whether the gate fired. If g has already
// fired it returns true immediately; d <= 0 checks the gate without
// blocking. The losing wakeup (late gate fire or stale timer) is
// discarded, so the process resumes exactly once.
func (p *Proc) WaitTimeout(g *Gate, d Time) bool {
	if g.fired {
		return true
	}
	if d <= 0 {
		return false
	}
	a := &wtArm{p: p}
	g.onFire(a.gateWin)
	p.eng.At(p.eng.now+d, a.timerWin)
	p.block()
	return a.fired
}

// Gate is a one-shot event that processes and callbacks can wait on.
// It is the simulated analogue of closing a channel: Fire releases all
// current and future waiters. Typical uses are "this device response has
// arrived" and "this thread's prefetched line is filled".
type Gate struct {
	eng     *Engine
	fired   bool
	firedAt Time
	waiters []func()
}

// NewGate returns an unfired gate bound to the engine.
func (e *Engine) NewGate() *Gate { return &Gate{eng: e} }

// Fired reports whether the gate has fired.
func (g *Gate) Fired() bool { return g.fired }

// FiredAt returns the time the gate fired (zero if it has not).
func (g *Gate) FiredAt() Time { return g.firedAt }

// Fire releases all waiters at the current simulated time. Firing an
// already-fired gate panics, as it indicates two agents both believe
// they completed the same request.
func (g *Gate) Fire() {
	if g.fired {
		panic("sim: gate fired twice")
	}
	g.fired = true
	g.firedAt = g.eng.now
	for _, fn := range g.waiters {
		g.eng.pushNow(fn)
	}
	if g.waiters != nil {
		g.eng.putWaiters(g.waiters)
		g.waiters = nil
	}
}

// OnFire registers fn to run (as an engine event) when the gate fires,
// or immediately-as-an-event if it already has.
func (g *Gate) OnFire(fn func()) { g.onFire(fn) }

func (g *Gate) onFire(fn func()) {
	if g.fired {
		g.eng.pushNow(fn)
		return
	}
	if g.waiters == nil {
		g.waiters = g.eng.getWaiters()
	}
	g.waiters = append(g.waiters, fn)
}
