package sim

import "fmt"

// TokenPool models a finite hardware queue: a fixed number of slots that
// requests occupy for their lifetime. It is the primitive behind the two
// structures the paper identifies as the bottlenecks of prefetch-based
// access (§V-B): the 10-entry per-core Line Fill Buffers and the
// 14-entry chip-level queue shared by all cores on the PCIe path.
//
// Waiters are granted tokens in FIFO order, matching the in-order
// allocation of hardware queue entries.
type TokenPool struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []func()

	// occupancy statistics
	maxInUse   int
	acquires   uint64
	stalls     uint64 // acquires that had to wait
	lastChange Time
	occupancy  float64 // time-weighted occupancy integral, token-ps

	// onChange, when set, observes every occupancy change (tracing).
	// It must not schedule events or otherwise perturb the simulation.
	onChange func(inUse int)
}

// NewTokenPool creates a pool with the given capacity. Capacity must be
// positive.
func (e *Engine) NewTokenPool(name string, capacity int) *TokenPool {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: token pool %q with capacity %d", name, capacity))
	}
	return &TokenPool{eng: e, name: name, capacity: capacity}
}

// Capacity returns the pool size.
func (t *TokenPool) Capacity() int { return t.capacity }

// InUse returns the number of tokens currently held.
func (t *TokenPool) InUse() int { return t.inUse }

// MaxInUse returns the maximum simultaneous occupancy observed.
func (t *TokenPool) MaxInUse() int { return t.maxInUse }

// Acquires returns the number of successful acquisitions so far.
func (t *TokenPool) Acquires() uint64 { return t.acquires }

// Stalls returns how many acquisitions had to wait for a free token.
func (t *TokenPool) Stalls() uint64 { return t.stalls }

// MeanOccupancy returns the time-averaged number of tokens in use.
func (t *TokenPool) MeanOccupancy() float64 {
	if t.eng.now == 0 {
		return 0
	}
	integral := t.occupancy + float64(t.inUse)*float64(t.eng.now-t.lastChange)
	return integral / float64(t.eng.now)
}

func (t *TokenPool) account() {
	t.occupancy += float64(t.inUse) * float64(t.eng.now-t.lastChange)
	t.lastChange = t.eng.now
}

// TryAcquire takes a token if one is free and no earlier waiter is
// queued, reporting success.
func (t *TokenPool) TryAcquire() bool {
	if t.inUse >= t.capacity || len(t.waiters) > 0 {
		return false
	}
	t.grant()
	return true
}

// SetOnChange installs an observer invoked synchronously after every
// occupancy change with the new in-use count. Used by the trace layer to
// sample occupancy timelines on state change; a nil observer disables
// it. The observer must not schedule events.
func (t *TokenPool) SetOnChange(fn func(inUse int)) { t.onChange = fn }

func (t *TokenPool) grant() {
	t.account()
	t.inUse++
	t.acquires++
	if t.inUse > t.maxInUse {
		t.maxInUse = t.inUse
	}
	if t.onChange != nil {
		t.onChange(t.inUse)
	}
}

// OnAcquire requests a token and runs fn (as an engine event) once it is
// granted; if a token is free now, fn is scheduled at the current time.
func (t *TokenPool) OnAcquire(fn func()) {
	if t.inUse < t.capacity && len(t.waiters) == 0 {
		t.grant()
		t.eng.At(t.eng.now, fn)
		return
	}
	t.stalls++
	t.waiters = append(t.waiters, fn)
}

// Release returns a token to the pool, granting it to the oldest waiter
// if any. Releasing an unheld token panics.
func (t *TokenPool) Release() {
	if t.inUse <= 0 {
		panic(fmt.Sprintf("sim: release on empty token pool %q", t.name))
	}
	t.account()
	t.inUse--
	if t.onChange != nil {
		t.onChange(t.inUse)
	}
	if len(t.waiters) > 0 {
		fn := t.waiters[0]
		t.waiters = t.waiters[:copy(t.waiters, t.waiters[1:])]
		t.grant()
		t.eng.At(t.eng.now, fn)
	}
}

// AcquireToken blocks the process until a token is granted.
func (p *Proc) AcquireToken(t *TokenPool) {
	if t.TryAcquire() {
		return
	}
	// grant() is performed by Release before it schedules our resume, so
	// the waiter slot carries the token with it.
	t.stalls++
	t.waiters = append(t.waiters, p.resumeFn)
	p.block()
}

// Server models a work-conserving FIFO service center with deterministic
// service times — the primitive behind link serialization (a PCIe
// direction transmitting one TLP at a time) and similar pipelined
// resources. Submit reserves the next slot and returns the transmission
// interval; the caller schedules its own completion callback.
type Server struct {
	eng    *Engine
	name   string
	freeAt Time
	busy   Time // total busy time, for utilization
	jobs   uint64
}

// NewServer creates an idle server.
func (e *Engine) NewServer(name string) *Server {
	return &Server{eng: e, name: name}
}

// Submit enqueues a job with the given service time and returns its
// start and end times. The job begins when all previously submitted work
// has drained (FIFO).
func (s *Server) Submit(service Time) (start, end Time) {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time %v on %q", service, s.name))
	}
	start = maxTime(s.eng.now, s.freeAt)
	end = start + service
	s.freeAt = end
	s.busy += service
	s.jobs++
	return start, end
}

// SubmitAt is like Submit but the job cannot start before earliest,
// modeling a packet that is ready for transmission only at a future time
// (e.g. a delayed device response).
func (s *Server) SubmitAt(earliest Time, service Time) (start, end Time) {
	if earliest < s.eng.now {
		earliest = s.eng.now
	}
	start = maxTime(earliest, s.freeAt)
	end = start + service
	s.freeAt = end
	s.busy += service
	s.jobs++
	return start, end
}

// BusyTime returns the cumulative time the server has spent serving.
func (s *Server) BusyTime() Time { return s.busy }

// Jobs returns the number of jobs submitted.
func (s *Server) Jobs() uint64 { return s.jobs }

// Utilization returns busy time divided by elapsed simulated time.
func (s *Server) Utilization() float64 {
	if s.eng.now == 0 {
		return 0
	}
	busy := s.busy
	// Work scheduled beyond the current time has not happened yet.
	if s.freeAt > s.eng.now {
		busy -= s.freeAt - s.eng.now
	}
	return float64(busy) / float64(s.eng.now)
}
