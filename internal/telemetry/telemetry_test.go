package telemetry

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// us is a test-readable microsecond in sim time.
func us(v float64) sim.Time { return sim.FromNanoseconds(v * 1e3) }

// captureSink collects every published window in order.
type captureSink struct {
	events []WindowEvent
}

func (c *captureSink) PublishWindow(ev WindowEvent) { c.events = append(c.events, ev) }

func TestRecorderWindowBucketing(t *testing.T) {
	r := NewRecorder("run", us(10), 0, nil)
	r.Started(us(1))
	r.Finished(us(2))
	r.Sample(us(2), us(1))
	r.Started(us(11))
	r.Started(us(12))
	r.Switches(us(13), 2)
	r.Started(us(21))
	r.Retries(us(22), 1)
	r.Timeouts(us(23), 1)
	r.Abandoned(us(24), 1)
	ts := r.Finish(us(25))

	if got := ts.Windows(); got != 3 {
		t.Fatalf("windows = %d, want 3", got)
	}
	if err := ts.Validate(); err != nil {
		t.Fatalf("series invalid: %v", err)
	}
	if ts.WindowPs != int64(us(10)) {
		t.Errorf("WindowPs = %d, want %d", ts.WindowPs, int64(us(10)))
	}
	if ts.LastSpanPs != int64(us(5)) {
		t.Errorf("LastSpanPs = %d, want a 5us partial window", ts.LastSpanPs)
	}
	if want := []uint64{1, 2, 1}; !reflect.DeepEqual(ts.Starts, want) {
		t.Errorf("Starts = %v, want %v", ts.Starts, want)
	}
	if want := []uint64{1, 0, 0}; !reflect.DeepEqual(ts.Completes, want) {
		t.Errorf("Completes = %v, want %v", ts.Completes, want)
	}
	if ts.Switches[1] != 2 || ts.Retries[2] != 1 || ts.Timeouts[2] != 1 || ts.Abandoned[2] != 1 {
		t.Errorf("event columns misplaced: switches=%v retries=%v timeouts=%v abandoned=%v",
			ts.Switches, ts.Retries, ts.Timeouts, ts.Abandoned)
	}
	// The 1us latency sample lands in window 0; empty windows answer 0.
	if ts.P50Ns[0] != 1000 || ts.P50Ns[1] != 0 {
		t.Errorf("P50Ns = %v, want [1000 0 0]", ts.P50Ns)
	}
	if ts.TotalStarts != 4 || ts.TotalCompletes != 1 || ts.TotalSwitches != 2 {
		t.Errorf("totals: starts=%d completes=%d switches=%d", ts.TotalStarts, ts.TotalCompletes, ts.TotalSwitches)
	}
	if ts.TotalP50Ns != 1000 {
		t.Errorf("TotalP50Ns = %g, want 1000", ts.TotalP50Ns)
	}
}

func TestRecorderCoalescingConservesTotals(t *testing.T) {
	r := NewRecorder("run", us(1), 4, nil)
	const n = 200
	for i := 0; i < n; i++ {
		at := sim.Time(i) * us(1) / 2 // an event every 0.5us over 100us
		r.Started(at)
		r.Finished(at)
		r.Sample(at, us(1))
	}
	ts := r.Finish(us(100))

	if ts.Coalesced == 0 {
		t.Fatal("expected ring coalescing with maxWindows=4 over 100 windows' worth of events")
	}
	if got := ts.Windows(); got > 4 {
		t.Errorf("windows = %d, want <= maxWindows 4", got)
	}
	// The window doubled coalesced times.
	if want := int64(us(1)) << ts.Coalesced; ts.WindowPs != want {
		t.Errorf("WindowPs = %d, want %d after %d doublings", ts.WindowPs, want, ts.Coalesced)
	}
	var sum uint64
	for _, v := range ts.Starts {
		sum += v
	}
	if sum != n || ts.TotalStarts != n || ts.TotalCompletes != n {
		t.Errorf("conservation: sum=%d TotalStarts=%d TotalCompletes=%d, want %d", sum, ts.TotalStarts, ts.TotalCompletes, n)
	}
	if ts.TotalP50Ns != 1000 {
		t.Errorf("rollup p50 = %g, want 1000 (histograms must survive merging)", ts.TotalP50Ns)
	}
	if err := ts.Validate(); err != nil {
		t.Errorf("series invalid: %v", err)
	}
}

func TestRecorderGaugeIntegral(t *testing.T) {
	r := NewRecorder("run", us(10), 0, nil)
	r.GaugeAdd(GaugeLFB, 0, 2)      // 2 slots over [0, 5us)
	r.GaugeAdd(GaugeLFB, us(5), -1) // 1 slot over [5us, 10us)
	r.GaugeAdd(GaugeSQ, us(12), 3)  // second window only
	ts := r.Finish(us(20))

	if math.Abs(ts.LFBMean[0]-1.5) > 1e-9 {
		t.Errorf("LFBMean[0] = %g, want 1.5 (time-weighted)", ts.LFBMean[0])
	}
	if ts.LFBMax[0] != 2 {
		t.Errorf("LFBMax[0] = %d, want 2", ts.LFBMax[0])
	}
	// The gauge level persists across the boundary: 1 slot all window.
	if math.Abs(ts.LFBMean[1]-1.0) > 1e-9 || ts.LFBMax[1] != 1 {
		t.Errorf("carry-over window: mean=%g max=%d, want 1/1", ts.LFBMean[1], ts.LFBMax[1])
	}
	if math.Abs(ts.SQMean[1]-3*0.8) > 1e-9 { // 3 over [12us, 20us) of a 10us window
		t.Errorf("SQMean[1] = %g, want 2.4", ts.SQMean[1])
	}
	if ts.SQMean[0] != 0 || ts.SQMax[0] != 0 {
		t.Errorf("SQ window 0 = %g/%d, want empty", ts.SQMean[0], ts.SQMax[0])
	}
}

func TestRecorderSinkPublishOrder(t *testing.T) {
	sink := &captureSink{}
	r := NewRecorder("fig3 cell", us(10), 0, sink)
	for i := 0; i < 5; i++ {
		r.Started(sim.Time(i) * us(10)) // one event exactly on each boundary
	}
	ts := r.Finish(us(45))

	if len(sink.events) != ts.Windows() {
		t.Fatalf("published %d windows, series has %d", len(sink.events), ts.Windows())
	}
	for i, ev := range sink.events {
		if ev.Index != i {
			t.Errorf("event %d has Index %d; publish order must be the seal order", i, ev.Index)
		}
		if ev.Label != "fig3 cell" {
			t.Errorf("event label %q", ev.Label)
		}
		if i > 0 && ev.StartPs != sink.events[i-1].StartPs+sink.events[i-1].SpanPs {
			t.Errorf("event %d not contiguous: start %d after span ending %d",
				i, ev.StartPs, sink.events[i-1].StartPs+sink.events[i-1].SpanPs)
		}
		if ev.Starts != ts.Starts[i] {
			t.Errorf("event %d Starts=%d, series says %d", i, ev.Starts, ts.Starts[i])
		}
	}
	if last := sink.events[len(sink.events)-1]; last.SpanPs != int64(us(5)) {
		t.Errorf("final published span = %d, want the 5us partial window", last.SpanPs)
	}
}

func TestRecorderNonMonotoneEventFallsIntoCurrentWindow(t *testing.T) {
	r := NewRecorder("run", us(10), 0, nil)
	r.Started(us(15)) // cursor now in window [10, 20)
	r.Finished(us(5)) // a completion that "regressed" — counted where observed
	ts := r.Finish(us(20))
	if ts.Completes[0] != 0 || ts.Completes[1] != 1 {
		t.Errorf("Completes = %v, want the regressed event in the current window", ts.Completes)
	}
}

func TestRecorderFinishIdempotentAndNilSafe(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Finish(us(10)) != nil {
		t.Error("nil recorder must Finish to nil")
	}
	r := NewRecorder("run", us(10), 0, nil)
	r.Started(us(1))
	a := r.Finish(us(5))
	r.Started(us(100)) // after Finish: ignored
	b := r.Finish(us(200))
	if !reflect.DeepEqual(a, b) {
		t.Error("Finish must be idempotent and freeze the series")
	}
}

func TestRecorderDeterministic(t *testing.T) {
	mk := func() *stats.TimeSeries {
		r := NewRecorder("run", us(2), 8, nil)
		for i := 0; i < 500; i++ {
			at := sim.Time(i) * us(1) / 3
			r.Started(at)
			r.Sample(at, sim.Time(i%7)*us(1))
			r.GaugeAdd(GaugeChip, at, i%3-1)
		}
		return r.Finish(us(200))
	}
	if !reflect.DeepEqual(mk(), mk()) {
		t.Error("identical event streams must produce identical series")
	}
}

func TestEffectiveMaxWindows(t *testing.T) {
	cases := map[int]int{0: DefaultMaxWindows, -1: DefaultMaxWindows, 1: 2, 2: 2, 5: 6, 8: 8, 257: 258}
	for in, want := range cases {
		if got := EffectiveMaxWindows(in); got != want {
			t.Errorf("EffectiveMaxWindows(%d) = %d, want %d", in, got, want)
		}
	}
}
