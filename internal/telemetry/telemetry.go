// Package telemetry is the simulator's flight recorder: an always-on,
// low-overhead windowed time-series of what a measured run is doing in
// sim-time. Where internal/trace captures every access lifecycle for
// post-mortem Perfetto inspection (and forces serial execution), the
// recorder keeps only per-window aggregates — throughput, recovery
// counts, queue occupancy, latency percentiles — cheap enough to leave
// enabled across a parallel sweep and small enough to embed in run
// reports and stream live from kurecd.
//
// Determinism rules:
//
//   - Windows are cut purely by sim-time: window i covers
//     [i*W, (i+1)*W). Wall-clock never appears anywhere.
//   - The ring is bounded: when it holds maxWindows sealed windows,
//     adjacent pairs merge (counts add, histograms Merge, occupancy
//     integrals add) and the window span doubles, so any run length
//     fits in fixed storage while still covering t=0 to the end.
//   - Recording is allocation-free on the hot path: counter bumps are
//     an advance check plus an increment; only sealing a window (once
//     per W of sim-time) may allocate, and sealed storage is bounded
//     by maxWindows.
//
// The output is a pure-value stats.TimeSeries, so identical simulated
// runs yield byte-identical series regardless of worker count.
package telemetry

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// GaugeID names one of the recorder's occupancy gauges. Per-core pools
// (LFB, SQ, CQ, runnable) aggregate across cores into a single gauge:
// the recorder tracks the instantaneous sum and its time-weighted mean
// and peak per window.
type GaugeID int

const (
	GaugeLFB GaugeID = iota
	GaugeChip
	GaugeSQ
	GaugeCQ
	GaugeRunnable
	NumGauges
)

// counter indices for the per-window count columns.
const (
	cStarted = iota
	cFinished
	cRetries
	cTimeouts
	cAbandoned
	cSwitches
	numCounters
)

// WindowEvent is one sealed window as published to a Sink, carrying
// everything a live viewer needs without touching the recorder again.
// Index is the per-run seal sequence; note that after a ring
// coalescing later events have a larger SpanPs than earlier ones.
type WindowEvent struct {
	Label   string
	Index   int
	StartPs int64
	SpanPs  int64

	Starts    uint64
	Completes uint64
	Retries   uint64
	Timeouts  uint64
	Abandoned uint64
	Switches  uint64

	P50Ns  float64
	P99Ns  float64
	P999Ns float64

	OccMean [NumGauges]float64
	OccMax  [NumGauges]int
}

// Sink receives sealed windows as the run progresses. PublishWindow is
// called synchronously from the simulation goroutine at window
// boundaries; implementations must be fast and must never block (the
// serve hub drops to a bounded buffer for exactly this reason). A nil
// Sink is valid and costs nothing.
type Sink interface {
	PublishWindow(ev WindowEvent)
}

// gauge tracks one occupancy quantity inside the current window.
type gauge struct {
	val      int
	max      int
	integral float64 // token·picoseconds accumulated this window
	lastAt   sim.Time
}

// sealedWindow is a finished window in the bounded ring.
type sealedWindow struct {
	startPs int64
	spanPs  int64
	counts  [numCounters]uint64
	occInt  [NumGauges]float64
	occMax  [NumGauges]int
	hist    *stats.Histogram
	phases  []int64 // attribution phase sums, ps; nil unless enabled
}

// Recorder accumulates one run's flight-recorder series. It is not
// goroutine-safe: all recording calls must come from the single
// simulation goroutine, which is exactly how core drives it.
type Recorder struct {
	label      string
	window     sim.Time
	maxWindows int
	sink       Sink

	curStart  sim.Time
	counts    [numCounters]uint64
	hist      *stats.Histogram
	gauges    [NumGauges]gauge
	sealed    []sealedWindow
	seq       int
	coalesced int
	done      bool

	// Attribution phase columns, present only when SetPhaseNames was
	// called (the run had attribution enabled alongside the recorder).
	phaseNames []string
	phases     []int64 // current window's per-phase ps sums
}

// DefaultMaxWindows bounds the retained ring when the caller passes 0.
const DefaultMaxWindows = 256

// EffectiveMaxWindows normalizes a configured ring bound the way
// NewRecorder does: 0 (or negative) selects DefaultMaxWindows, and the
// result is rounded up to an even value of at least 2 so pair-wise
// coalescing always has whole pairs. Report emitters use it to record
// the bound a recorder actually ran with.
func EffectiveMaxWindows(n int) int {
	if n <= 0 {
		n = DefaultMaxWindows
	}
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	return n
}

// NewRecorder returns a recorder cutting windows of the given sim-time
// span. maxWindows bounds the retained ring (0 selects
// DefaultMaxWindows); it is rounded up to an even value of at least 2
// so pair-wise coalescing always has whole pairs. window must be
// positive. sink may be nil.
func NewRecorder(label string, window sim.Time, maxWindows int, sink Sink) *Recorder {
	if window <= 0 {
		panic("telemetry: window must be positive")
	}
	maxWindows = EffectiveMaxWindows(maxWindows)
	return &Recorder{
		label:      label,
		window:     window,
		maxWindows: maxWindows,
		sink:       sink,
		sealed:     make([]sealedWindow, 0, maxWindows),
	}
}

// advance seals every window whose boundary is at or before at. Events
// with at earlier than the current window start (completion times can
// regress under faulty recovery reordering) fall into the current
// window — sim-time only ever moves the window cursor forward.
func (r *Recorder) advance(at sim.Time) {
	for !r.done && at >= r.curStart+r.window {
		if len(r.sealed) == r.maxWindows {
			r.coalesce()
			continue // window doubled; re-check the boundary
		}
		r.sealWindow(r.curStart + r.window)
	}
}

// sealWindow closes the current window at end (a boundary, or the run
// end for the final partial window), appends it to the ring, and
// publishes it to the sink.
func (r *Recorder) sealWindow(end sim.Time) {
	sw := sealedWindow{
		startPs: int64(r.curStart),
		spanPs:  int64(end - r.curStart),
		counts:  r.counts,
		hist:    r.hist,
	}
	if len(r.phaseNames) > 0 {
		// Every window carries a row (zero-filled when no access closed
		// in it) so the exported columns stay index-aligned.
		if r.phases == nil {
			r.phases = make([]int64, len(r.phaseNames))
		}
		sw.phases = r.phases
		r.phases = nil
	}
	for i := range r.gauges {
		g := &r.gauges[i]
		g.integral += float64(g.val) * float64(end-g.lastAt)
		g.lastAt = end
		sw.occInt[i] = g.integral
		sw.occMax[i] = g.max
		g.integral = 0
		g.max = g.val
	}
	r.sealed = append(r.sealed, sw)
	r.counts = [numCounters]uint64{}
	r.hist = nil
	r.curStart = end
	if r.sink != nil {
		r.sink.PublishWindow(r.event(sw))
	}
	r.seq++
}

// event renders a sealed window for publication.
func (r *Recorder) event(sw sealedWindow) WindowEvent {
	ev := WindowEvent{
		Label:     r.label,
		Index:     r.seq,
		StartPs:   sw.startPs,
		SpanPs:    sw.spanPs,
		Starts:    sw.counts[cStarted],
		Completes: sw.counts[cFinished],
		Retries:   sw.counts[cRetries],
		Timeouts:  sw.counts[cTimeouts],
		Abandoned: sw.counts[cAbandoned],
		Switches:  sw.counts[cSwitches],
		P50Ns:     quantileNs(sw.hist, 0.50),
		P99Ns:     quantileNs(sw.hist, 0.99),
		P999Ns:    quantileNs(sw.hist, 0.999),
	}
	for i := range ev.OccMean {
		ev.OccMean[i] = sw.occInt[i] / float64(sw.spanPs)
		ev.OccMax[i] = sw.occMax[i]
	}
	return ev
}

// coalesce merges adjacent window pairs in place and doubles the
// window span. The sealed prefix always covers [0, curStart) with
// curStart a multiple of the old window times an even count, so the
// doubled grid stays aligned.
func (r *Recorder) coalesce() {
	half := len(r.sealed) / 2
	for i := 0; i < half; i++ {
		a, b := r.sealed[2*i], r.sealed[2*i+1]
		m := sealedWindow{startPs: a.startPs, spanPs: a.spanPs + b.spanPs, hist: a.hist}
		if m.hist == nil {
			m.hist = b.hist
		} else {
			m.hist.Merge(b.hist)
		}
		for c := 0; c < numCounters; c++ {
			m.counts[c] = a.counts[c] + b.counts[c]
		}
		for g := 0; g < int(NumGauges); g++ {
			m.occInt[g] = a.occInt[g] + b.occInt[g]
			m.occMax[g] = a.occMax[g]
			if b.occMax[g] > m.occMax[g] {
				m.occMax[g] = b.occMax[g]
			}
		}
		if a.phases != nil {
			m.phases = a.phases
			for pi, v := range b.phases {
				m.phases[pi] += v
			}
		} else {
			m.phases = b.phases
		}
		r.sealed[i] = m
	}
	// Zero the tail so the dropped halves release their histograms.
	for i := half; i < len(r.sealed); i++ {
		r.sealed[i] = sealedWindow{}
	}
	r.sealed = r.sealed[:half]
	r.window *= 2
	r.coalesced++
}

// Started counts one access entering a mechanism at sim-time at.
func (r *Recorder) Started(at sim.Time) {
	r.advance(at)
	r.counts[cStarted]++
}

// Finished counts one access completing at sim-time at.
func (r *Recorder) Finished(at sim.Time) {
	r.advance(at)
	r.counts[cFinished]++
}

// Sample records one completed-access latency into the current
// window's histogram. at is the (monotone) observation time; lat may
// differ from at minus anything — SWQ completions, for example, post
// earlier than the core drains them.
func (r *Recorder) Sample(at sim.Time, lat sim.Time) {
	r.advance(at)
	if r.hist == nil {
		r.hist = stats.NewHistogram()
	}
	r.hist.Record(int64(lat))
}

// Retries counts n retry events at sim-time at.
func (r *Recorder) Retries(at sim.Time, n int) {
	r.advance(at)
	r.counts[cRetries] += uint64(n)
}

// Timeouts counts n timeout events at sim-time at.
func (r *Recorder) Timeouts(at sim.Time, n int) {
	r.advance(at)
	r.counts[cTimeouts] += uint64(n)
}

// Abandoned counts n abandoned accesses at sim-time at.
func (r *Recorder) Abandoned(at sim.Time, n int) {
	r.advance(at)
	r.counts[cAbandoned] += uint64(n)
}

// Switches counts n context switches at sim-time at.
func (r *Recorder) Switches(at sim.Time, n int) {
	r.advance(at)
	r.counts[cSwitches] += uint64(n)
}

// SetPhaseNames declares the attribution phase columns the recorder
// will carry: every sealed window then exports a per-phase picosecond
// row index-aligned with these names. Call once, before recording.
func (r *Recorder) SetPhaseNames(names []string) {
	r.phaseNames = append([]string(nil), names...)
}

// PhaseSample adds one closed access's per-phase picosecond breakdown
// to the current window (the window holding the access's close time).
// ps must be index-aligned with the names given to SetPhaseNames.
func (r *Recorder) PhaseSample(at sim.Time, ps []int64) {
	r.advance(at)
	if r.phases == nil {
		r.phases = make([]int64, len(r.phaseNames))
	}
	for i := range r.phases {
		r.phases[i] += ps[i]
	}
}

// GaugeAdd moves gauge id by delta at sim-time at, closing out the
// time-weighted integral since the gauge last changed. Callers with
// absolute counter callbacks (pool in-use, run-queue depth) convert to
// deltas with a captured previous value.
func (r *Recorder) GaugeAdd(id GaugeID, at sim.Time, delta int) {
	r.advance(at)
	g := &r.gauges[id]
	if at < g.lastAt {
		at = g.lastAt
	}
	g.integral += float64(g.val) * float64(at-g.lastAt)
	g.lastAt = at
	g.val += delta
	if g.val > g.max {
		g.max = g.val
	}
}

// Finish seals everything through end (the run's final sim-time) and
// returns the completed series. The final window is partial unless the
// run ended exactly on a boundary. Finish is idempotent in effect:
// further recording calls are ignored, and a nil recorder returns nil.
func (r *Recorder) Finish(end sim.Time) *stats.TimeSeries {
	if r == nil {
		return nil
	}
	if !r.done {
		r.advance(end)
		if end > r.curStart {
			if len(r.sealed) == r.maxWindows {
				r.coalesce()
			}
			r.sealWindow(end)
		}
		r.done = true
	}
	return r.series()
}

// series renders the sealed ring as a stats.TimeSeries.
func (r *Recorder) series() *stats.TimeSeries {
	n := len(r.sealed)
	ts := &stats.TimeSeries{
		WindowPs:  int64(r.window),
		Coalesced: r.coalesced,

		Starts:    make([]uint64, n),
		Completes: make([]uint64, n),
		Retries:   make([]uint64, n),
		Timeouts:  make([]uint64, n),
		Abandoned: make([]uint64, n),
		Switches:  make([]uint64, n),

		P50Ns:  make([]float64, n),
		P99Ns:  make([]float64, n),
		P999Ns: make([]float64, n),

		LFBMean:      make([]float64, n),
		LFBMax:       make([]int, n),
		ChipMean:     make([]float64, n),
		ChipMax:      make([]int, n),
		SQMean:       make([]float64, n),
		SQMax:        make([]int, n),
		CQMean:       make([]float64, n),
		CQMax:        make([]int, n),
		RunnableMean: make([]float64, n),
		RunnableMax:  make([]int, n),
	}
	if len(r.phaseNames) > 0 {
		ts.PhaseNames = append([]string(nil), r.phaseNames...)
		ts.Phases = make([][]int64, n)
	}
	rollup := stats.NewHistogram()
	for i, sw := range r.sealed {
		ts.Starts[i] = sw.counts[cStarted]
		ts.Completes[i] = sw.counts[cFinished]
		ts.Retries[i] = sw.counts[cRetries]
		ts.Timeouts[i] = sw.counts[cTimeouts]
		ts.Abandoned[i] = sw.counts[cAbandoned]
		ts.Switches[i] = sw.counts[cSwitches]

		ts.P50Ns[i] = quantileNs(sw.hist, 0.50)
		ts.P99Ns[i] = quantileNs(sw.hist, 0.99)
		ts.P999Ns[i] = quantileNs(sw.hist, 0.999)

		span := float64(sw.spanPs)
		ts.LFBMean[i] = sw.occInt[GaugeLFB] / span
		ts.LFBMax[i] = sw.occMax[GaugeLFB]
		ts.ChipMean[i] = sw.occInt[GaugeChip] / span
		ts.ChipMax[i] = sw.occMax[GaugeChip]
		ts.SQMean[i] = sw.occInt[GaugeSQ] / span
		ts.SQMax[i] = sw.occMax[GaugeSQ]
		ts.CQMean[i] = sw.occInt[GaugeCQ] / span
		ts.CQMax[i] = sw.occMax[GaugeCQ]
		ts.RunnableMean[i] = sw.occInt[GaugeRunnable] / span
		ts.RunnableMax[i] = sw.occMax[GaugeRunnable]

		if ts.Phases != nil {
			row := make([]int64, len(r.phaseNames))
			copy(row, sw.phases)
			ts.Phases[i] = row
		}

		ts.TotalStarts += sw.counts[cStarted]
		ts.TotalCompletes += sw.counts[cFinished]
		ts.TotalRetries += sw.counts[cRetries]
		ts.TotalTimeouts += sw.counts[cTimeouts]
		ts.TotalAbandoned += sw.counts[cAbandoned]
		ts.TotalSwitches += sw.counts[cSwitches]
		rollup.Merge(sw.hist)

		if i == n-1 {
			ts.LastSpanPs = sw.spanPs
		}
	}
	ts.TotalP50Ns = quantileNs(rollup, 0.50)
	ts.TotalP99Ns = quantileNs(rollup, 0.99)
	ts.TotalP999Ns = quantileNs(rollup, 0.999)
	return ts
}

// quantileNs converts a picosecond-sample quantile to nanoseconds,
// returning 0 for an empty histogram.
func quantileNs(h *stats.Histogram, q float64) float64 {
	if h.Count() == 0 {
		return 0
	}
	return sim.Time(h.Quantile(q)).Nanoseconds()
}
