// Package attrib is the latency-attribution ledger: it decomposes every
// access's end-to-end latency into a fixed taxonomy of exclusive,
// exhaustive phases — issue/setup, queue wait (LFB, chip queue, or SWQ),
// PCIe transit, device service, completion wait, context-switch
// overhead, retry backoff, and timeout slop — so the observability
// stack can answer *where* the killer microsecond went, not just how
// long it was.
//
// The design mirrors the trace and telemetry layers: attribution is
// observational by contract. A nil Probe hands out nil Accesses whose
// methods are no-ops, so disabled attribution costs the mechanisms one
// nil check per mark and never schedules events or perturbs timing.
//
// Exactness is structural, not assembled: an Access is a telescoping
// interval ledger. Open fixes the start, every To(phase, at) assigns
// the interval since the previous mark to a phase, and Close assigns
// the final residual — so the per-phase sums always total exactly
// end minus start, in integer picoseconds, with no float arithmetic
// and no rounding. Marks with a timestamp earlier than the previous
// mark clamp to a zero-length interval (the previous phase keeps the
// time), which is what makes the per-mechanism instrumentation simple:
// conditional marks (a context switch that may or may not have
// overlapped a line's flight) can be issued unconditionally and the
// clamp sorts out which phase actually owns the wall time.
package attrib

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Phase is one slice of the fixed attribution taxonomy. The phases are
// exclusive and exhaustive: every picosecond of an access's window
// belongs to exactly one.
type Phase int

const (
	// PhaseIssue is per-access software issue/setup cost on the core:
	// the prefetch instruction, the descriptor write, the syscall-side
	// per-descriptor bookkeeping.
	PhaseIssue Phase = iota
	// PhaseQueueWait is time waiting for queue capacity or service
	// before the device sees the request: LFB allocation, the
	// chip-level MMIO queue, or a software-queue descriptor waiting to
	// be fetched (including doorbell and fetch-burst delays).
	PhaseQueueWait
	// PhaseTransit is PCIe time: request and response TLPs on the
	// link, plus host-DRAM landing of DMA responses.
	PhaseTransit
	// PhaseDevice is device service time inside the emulator's delay
	// module (inclusive of the configured latency budget it spends
	// waiting to hit its end-to-end target).
	PhaseDevice
	// PhaseComplWait is time between the data being host-visible and
	// the consuming thread being chosen to run: completion-queue
	// residence, scheduler polling, and ready-queue wait.
	PhaseComplWait
	// PhaseSwitch is context-switch overhead on the delivery path:
	// user-level switches, kernel switches, syscall returns, interrupt
	// delivery.
	PhaseSwitch
	// PhaseRetry is recovery time: waiting out an access timeout and
	// re-issuing after a fault.
	PhaseRetry
	// PhaseSlop is timeout slop: time between a recovery deadline
	// expiring and the host actually acting on it.
	PhaseSlop
	// NumPhases is the taxonomy size.
	NumPhases
)

// phaseNames are the stable slugs used in reports, CSV columns, and
// claim IDs. Order matches the Phase constants.
var phaseNames = [NumPhases]string{
	"issue",
	"queue_wait",
	"transit",
	"device",
	"completion_wait",
	"switch",
	"retry_backoff",
	"timeout_slop",
}

// String returns the phase's stable slug.
func (ph Phase) String() string {
	if ph < 0 || ph >= NumPhases {
		return "invalid"
	}
	return phaseNames[ph]
}

// Names returns the phase slugs in taxonomy order (a fresh slice).
func Names() []string {
	return append([]string(nil), phaseNames[:]...)
}

// Probe accumulates one run's attribution: exact per-phase picosecond
// sums, per-phase histograms of per-access phase totals, and the
// telescoping-invariant bookkeeping. It is not goroutine-safe; all
// recording comes from the single simulation goroutine, exactly like
// the telemetry recorder.
type Probe struct {
	label string

	sums   [NumPhases]int64            // exact picosecond totals
	counts [NumPhases]uint64           // accesses that spent >0 in the phase
	hists  [NumPhases]*stats.Histogram // per-access phase totals, ps

	accesses   uint64
	totalPs    int64  // sum of per-access end-to-end windows
	mismatches uint64 // Close calls whose end preceded the last mark

	// onClose, when set, observes every closed access: the close time
	// and the per-phase picosecond breakdown. The telemetry recorder
	// hooks it to build per-window phase columns.
	onClose func(end sim.Time, ph *[NumPhases]int64)
}

// NewProbe returns an empty probe for one labeled run.
func NewProbe(label string) *Probe {
	return &Probe{label: label}
}

// SetOnClose installs the per-access close observer (nil-probe no-op).
func (pr *Probe) SetOnClose(fn func(end sim.Time, ph *[NumPhases]int64)) {
	if pr == nil {
		return
	}
	pr.onClose = fn
}

// Open begins the ledger for one access at sim-time at. A nil probe
// returns a nil Access, whose methods are all no-ops.
func (pr *Probe) Open(at sim.Time) *Access {
	if pr == nil {
		return nil
	}
	return &Access{pr: pr, start: at, last: at}
}

// Accesses returns the number of closed accesses.
func (pr *Probe) Accesses() uint64 {
	if pr == nil {
		return 0
	}
	return pr.accesses
}

// Mismatches returns how many accesses closed with an end time earlier
// than their last mark (the end was clamped; phase sums still
// telescope exactly). Always zero on a correctly instrumented run.
func (pr *Probe) Mismatches() uint64 {
	if pr == nil {
		return 0
	}
	return pr.mismatches
}

// TotalPs returns the exact sum of all closed accesses' end-to-end
// windows in picoseconds.
func (pr *Probe) TotalPs() int64 {
	if pr == nil {
		return 0
	}
	return pr.totalPs
}

// PhasePs returns the exact picosecond total attributed to one phase.
func (pr *Probe) PhasePs(ph Phase) int64 {
	if pr == nil {
		return 0
	}
	return pr.sums[ph]
}

// Summary renders the probe as a pure-value stats.AttribSummary, ready
// to ride a core.Result through the gob result cache. A nil probe
// returns nil. Every phase appears in taxonomy order, including
// all-zero ones, so report columns are stable across cells.
func (pr *Probe) Summary() *stats.AttribSummary {
	if pr == nil {
		return nil
	}
	s := &stats.AttribSummary{
		Label:      pr.label,
		Accesses:   pr.accesses,
		TotalPs:    pr.totalPs,
		Mismatches: pr.mismatches,
		Phases:     make([]stats.PhaseSum, NumPhases),
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		h := pr.hists[ph]
		s.Phases[ph] = stats.PhaseSum{
			Phase: phaseNames[ph],
			SumPs: pr.sums[ph],
			Count: pr.counts[ph],
			P50Ns: sim.Time(h.Quantile(0.50)).Nanoseconds(),
			P99Ns: sim.Time(h.Quantile(0.99)).Nanoseconds(),
			MaxNs: sim.Time(h.Max()).Nanoseconds(),
		}
	}
	return s
}

// Access is the per-access phase ledger: a telescoping sequence of
// marks between Open and Close. All methods are nil-safe no-ops so the
// mechanisms can mark unconditionally.
type Access struct {
	pr     *Probe
	start  sim.Time
	last   sim.Time
	ph     [NumPhases]int64
	closed bool
}

// To assigns the interval since the previous mark to ph, advancing the
// mark to at. A timestamp at or before the previous mark assigns
// nothing (zero-length interval) and leaves the mark where it was, so
// out-of-order or conditional marks are safe: the earlier phase keeps
// the time and the total still telescopes.
func (a *Access) To(ph Phase, at sim.Time) {
	if a == nil || a.closed {
		return
	}
	if at <= a.last {
		return
	}
	a.ph[ph] += int64(at - a.last)
	a.last = at
}

// Close assigns the residual interval since the last mark to final and
// folds the access into its probe. An end earlier than the last mark
// is clamped to the last mark and counted as a mismatch (the phase
// sums still total the ledger's window exactly). Subsequent To or
// Close calls are no-ops, so straggling device responses arriving
// after delivery cannot double-account.
func (a *Access) Close(final Phase, end sim.Time) {
	if a == nil || a.closed {
		return
	}
	a.closed = true
	pr := a.pr
	if end < a.last {
		pr.mismatches++
		end = a.last
	}
	a.ph[final] += int64(end - a.last)
	a.last = end

	pr.accesses++
	pr.totalPs += int64(end - a.start)
	for ph := Phase(0); ph < NumPhases; ph++ {
		v := a.ph[ph]
		if v == 0 {
			continue
		}
		pr.sums[ph] += v
		pr.counts[ph]++
		if pr.hists[ph] == nil {
			pr.hists[ph] = stats.NewHistogram()
		}
		pr.hists[ph].Record(v)
	}
	if pr.onClose != nil {
		pr.onClose(end, &a.ph)
	}
}

// Closed reports whether the access has been closed (false for nil).
func (a *Access) Closed() bool { return a != nil && a.closed }

// PhasePs returns the picoseconds this access has assigned to ph so
// far (0 for nil).
func (a *Access) PhasePs(ph Phase) int64 {
	if a == nil {
		return 0
	}
	return a.ph[ph]
}

// ElapsedPs returns the access's window so far: last mark minus start.
func (a *Access) ElapsedPs() int64 {
	if a == nil {
		return 0
	}
	return int64(a.last - a.start)
}
