package attrib

import (
	"testing"

	"repro/internal/sim"
)

func TestTelescopingExactness(t *testing.T) {
	pr := NewProbe("test")
	a := pr.Open(100)
	a.To(PhaseIssue, 150)
	a.To(PhaseQueueWait, 400)
	a.To(PhaseTransit, 900)
	a.To(PhaseDevice, 1900)
	a.Close(PhaseComplWait, 2500)

	if got := a.PhasePs(PhaseIssue); got != 50 {
		t.Errorf("issue = %d, want 50", got)
	}
	if got := a.PhasePs(PhaseQueueWait); got != 250 {
		t.Errorf("queue_wait = %d, want 250", got)
	}
	if got := a.PhasePs(PhaseComplWait); got != 600 {
		t.Errorf("completion_wait = %d, want 600", got)
	}
	var sum int64
	for ph := Phase(0); ph < NumPhases; ph++ {
		sum += a.PhasePs(ph)
	}
	if sum != 2400 {
		t.Errorf("phase sum %d != end-to-end 2400", sum)
	}
	if pr.TotalPs() != 2400 || pr.Accesses() != 1 || pr.Mismatches() != 0 {
		t.Errorf("probe totals = (%d, %d, %d), want (2400, 1, 0)",
			pr.TotalPs(), pr.Accesses(), pr.Mismatches())
	}
}

// TestOutOfOrderMarksClamp pins the property the mechanisms rely on:
// marks with stale or future-overlapping timestamps assign zero-length
// intervals instead of corrupting the ledger, so conditional phase
// boundaries can be marked unconditionally.
func TestOutOfOrderMarksClamp(t *testing.T) {
	pr := NewProbe("test")
	a := pr.Open(1000)
	a.To(PhaseDevice, 5000)  // future-dated device mark
	a.To(PhaseTransit, 3000) // stale: clamps to nothing
	a.To(PhaseTransit, 6000)
	a.To(PhaseComplWait, 0) // zero stamp (no switch happened): no-op
	a.To(PhaseSwitch, 0)
	a.Close(PhaseComplWait, 6400)

	if got := a.PhasePs(PhaseDevice); got != 4000 {
		t.Errorf("device = %d, want 4000", got)
	}
	if got := a.PhasePs(PhaseTransit); got != 1000 {
		t.Errorf("transit = %d, want 1000", got)
	}
	if got := a.PhasePs(PhaseSwitch); got != 0 {
		t.Errorf("switch = %d, want 0", got)
	}
	if pr.TotalPs() != 5400 {
		t.Errorf("total %d != 5400", pr.TotalPs())
	}
	if pr.Mismatches() != 0 {
		t.Errorf("clamped marks counted as mismatches: %d", pr.Mismatches())
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	pr := NewProbe("test")
	a := pr.Open(0)
	a.Close(PhaseDevice, 100)
	// A straggling response marking or re-closing after delivery must
	// not double-account.
	a.To(PhaseTransit, 500)
	a.Close(PhaseComplWait, 900)
	if !a.Closed() {
		t.Fatal("not closed")
	}
	if pr.Accesses() != 1 || pr.TotalPs() != 100 {
		t.Errorf("probe = (%d accesses, %d ps), want (1, 100)", pr.Accesses(), pr.TotalPs())
	}
	if got := pr.PhasePs(PhaseTransit); got != 0 {
		t.Errorf("post-close mark leaked %d ps into transit", got)
	}
}

func TestCloseClampsEarlyEndAsMismatch(t *testing.T) {
	pr := NewProbe("test")
	a := pr.Open(0)
	a.To(PhaseDevice, 1000)
	a.Close(PhaseComplWait, 400) // end precedes the last mark
	if pr.Mismatches() != 1 {
		t.Errorf("mismatches = %d, want 1", pr.Mismatches())
	}
	// The ledger still telescopes: total equals the clamped window.
	if pr.TotalPs() != 1000 || pr.PhasePs(PhaseDevice) != 1000 {
		t.Errorf("clamped close broke telescoping: total %d, device %d",
			pr.TotalPs(), pr.PhasePs(PhaseDevice))
	}
}

// TestNilProbeAndAccessAreNoOps pins the disabled-attribution contract:
// everything is callable on nils and records nothing.
func TestNilProbeAndAccessAreNoOps(t *testing.T) {
	var pr *Probe
	a := pr.Open(100)
	if a != nil {
		t.Fatal("nil probe handed out a non-nil access")
	}
	a.To(PhaseIssue, 200)
	a.Close(PhaseDevice, 300)
	if a.Closed() || a.PhasePs(PhaseIssue) != 0 || a.ElapsedPs() != 0 {
		t.Error("nil access recorded something")
	}
	if pr.Accesses() != 0 || pr.TotalPs() != 0 || pr.Mismatches() != 0 {
		t.Error("nil probe accumulated something")
	}
	if pr.Summary() != nil {
		t.Error("nil probe produced a summary")
	}
	pr.SetOnClose(nil)
}

func TestSummaryValidatesAndOrdersPhases(t *testing.T) {
	pr := NewProbe("sum")
	for i := 0; i < 10; i++ {
		a := pr.Open(sim.Time(i) * 1000)
		a.To(PhaseIssue, sim.Time(i)*1000+100)
		a.To(PhaseDevice, sim.Time(i)*1000+700)
		a.Close(PhaseComplWait, sim.Time(i)*1000+800)
	}
	s := pr.Summary()
	if err := s.Validate(); err != nil {
		t.Fatalf("summary invalid: %v", err)
	}
	if s.Label != "sum" || s.Accesses != 10 || s.TotalPs != 8000 {
		t.Errorf("summary header = (%q, %d, %d)", s.Label, s.Accesses, s.TotalPs)
	}
	if len(s.Phases) != int(NumPhases) {
		t.Fatalf("summary has %d phases, want %d", len(s.Phases), NumPhases)
	}
	for i, p := range s.Phases {
		if p.Phase != Phase(i).String() {
			t.Errorf("phase %d = %q, want %q", i, p.Phase, Phase(i).String())
		}
	}
	// All-zero phases appear with zero sums so columns stay stable.
	if s.PhasePs("retry_backoff") != 0 || s.PhasePs("issue") != 1000 {
		t.Errorf("phase sums wrong: retry=%d issue=%d",
			s.PhasePs("retry_backoff"), s.PhasePs("issue"))
	}
	if ph, frac := s.DominantPhase(); ph != "device" || frac <= 0.5 {
		t.Errorf("dominant = (%q, %g), want device with majority share", ph, frac)
	}
	if s.Phases[PhaseDevice].P50Ns <= 0 || s.Phases[PhaseDevice].MaxNs <= 0 {
		t.Error("device percentiles missing")
	}
}

func TestOnCloseObserverSeesEveryClose(t *testing.T) {
	pr := NewProbe("obs")
	var ends []sim.Time
	var devPs int64
	pr.SetOnClose(func(end sim.Time, ph *[NumPhases]int64) {
		ends = append(ends, end)
		devPs += ph[PhaseDevice]
	})
	for i := 0; i < 3; i++ {
		a := pr.Open(sim.Time(i) * 100)
		a.To(PhaseDevice, sim.Time(i)*100+40)
		a.Close(PhaseComplWait, sim.Time(i)*100+50)
	}
	if len(ends) != 3 || ends[2] != 250 {
		t.Errorf("observer saw ends %v", ends)
	}
	if devPs != 120 {
		t.Errorf("observer device sum %d, want 120", devPs)
	}
}

func TestNamesAndString(t *testing.T) {
	names := Names()
	if len(names) != int(NumPhases) {
		t.Fatalf("Names() has %d entries, want %d", len(names), NumPhases)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" || seen[n] {
			t.Errorf("phase %d name %q empty or duplicate", i, n)
		}
		seen[n] = true
	}
	if Phase(-1).String() != "invalid" || NumPhases.String() != "invalid" {
		t.Error("out-of-range phases must stringify as invalid")
	}
	// Names returns a fresh slice; mutating it must not poison the
	// canonical order.
	names[0] = "mutated"
	if Names()[0] != "issue" {
		t.Error("Names() shares its backing array with callers")
	}
}
