package replay

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Recording files carry the paper's record-run artifact: the exact
// (address, data) sequence the DMA engine preloads into on-board DRAM
// before a measured run (§IV-A). Persisting them reproduces the
// workflow of recording once and replaying across many measured
// configurations.
//
// Format (little-endian):
//
//	magic   [6]byte  "KUREC1"
//	count   uint64
//	entries count x { addr uint64, dataLen uint32, data [dataLen]byte }
//
// A dataLen of zero encodes a nil (zero-filled) line.
var recMagic = [6]byte{'K', 'U', 'R', 'E', 'C', '1'}

// WriteTo serializes the recording. It implements io.WriterTo.
func (r *Recording) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.Write(recMagic[:])); err != nil {
		return n, err
	}
	var buf [12]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(len(r.Entries)))
	if err := count(bw.Write(buf[:8])); err != nil {
		return n, err
	}
	for _, e := range r.Entries {
		if len(e.Data) != 0 && len(e.Data) != LineSize {
			return n, fmt.Errorf("replay: entry with %d-byte line (want 0 or %d)", len(e.Data), LineSize)
		}
		binary.LittleEndian.PutUint64(buf[:8], e.Addr)
		binary.LittleEndian.PutUint32(buf[8:], uint32(len(e.Data)))
		if err := count(bw.Write(buf[:])); err != nil {
			return n, err
		}
		if err := count(bw.Write(e.Data)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadRecording deserializes a recording written by WriteTo.
func ReadRecording(r io.Reader) (*Recording, error) {
	br := bufio.NewReader(r)
	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("replay: reading magic: %w", err)
	}
	if magic != recMagic {
		return nil, fmt.Errorf("replay: bad magic %q", magic[:])
	}
	var buf [12]byte
	if _, err := io.ReadFull(br, buf[:8]); err != nil {
		return nil, fmt.Errorf("replay: reading count: %w", err)
	}
	n := binary.LittleEndian.Uint64(buf[:8])
	const maxEntries = 1 << 32
	if n > maxEntries {
		return nil, fmt.Errorf("replay: implausible entry count %d", n)
	}
	rec := &Recording{Entries: make([]Entry, 0, n)}
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("replay: reading entry %d: %w", i, err)
		}
		addr := binary.LittleEndian.Uint64(buf[:8])
		dataLen := binary.LittleEndian.Uint32(buf[8:])
		switch dataLen {
		case 0:
			rec.Entries = append(rec.Entries, Entry{Addr: addr})
		case LineSize:
			data := make([]byte, LineSize)
			if _, err := io.ReadFull(br, data); err != nil {
				return nil, fmt.Errorf("replay: reading entry %d data: %w", i, err)
			}
			rec.Entries = append(rec.Entries, Entry{Addr: addr, Data: data})
		default:
			return nil, fmt.Errorf("replay: entry %d has %d-byte line (want 0 or %d)", i, dataLen, LineSize)
		}
	}
	return rec, nil
}
