package replay

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordingRoundTrip(t *testing.T) {
	rec := &Recording{}
	data := bytes.Repeat([]byte{7}, LineSize)
	rec.Record(0x1000, data)
	rec.Record(0x2040, nil) // zero line
	rec.Record(0xFFFFFFFFFFFFFFC0, data)

	var buf bytes.Buffer
	n, err := rec.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	got, err := ReadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("round-trip len %d", got.Len())
	}
	if got.Entries[0].Addr != 0x1000 || !bytes.Equal(got.Entries[0].Data, data) {
		t.Errorf("entry 0 = %+v", got.Entries[0])
	}
	if got.Entries[1].Data != nil {
		t.Errorf("zero line not preserved as nil")
	}
	if got.Entries[2].Addr != 0xFFFFFFFFFFFFFFC0 {
		t.Errorf("entry 2 addr = %#x", got.Entries[2].Addr)
	}
}

func TestReadRecordingBadMagic(t *testing.T) {
	if _, err := ReadRecording(strings.NewReader("NOTMAGIC")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadRecordingTruncated(t *testing.T) {
	rec := Synthetic(0, 5)
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{3, 7, 15, buf.Len() - 1} {
		if _, err := ReadRecording(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestWriteToRejectsBadLine(t *testing.T) {
	rec := &Recording{}
	rec.Record(0, []byte{1, 2, 3}) // not a full line
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err == nil {
		t.Error("short line accepted")
	}
}

func TestReadRecordingBadLineLength(t *testing.T) {
	// Hand-craft a file with an invalid data length.
	var buf bytes.Buffer
	buf.Write(recMagic[:])
	buf.Write([]byte{1, 0, 0, 0, 0, 0, 0, 0}) // count = 1
	buf.Write(make([]byte, 8))                // addr = 0
	buf.Write([]byte{3, 0, 0, 0, 1, 2, 3})    // dataLen = 3
	if _, err := ReadRecording(&buf); err == nil {
		t.Error("bad line length accepted")
	}
}

// Property: any synthetic or data-carrying recording round-trips
// identically and still replays in order.
func TestPersistProperty(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%50) + 1
		rng := rand.New(rand.NewSource(seed))
		rec := &Recording{}
		for i := 0; i < n; i++ {
			addr := uint64(i) * LineSize
			if rng.Intn(2) == 0 {
				rec.Record(addr, nil)
			} else {
				line := make([]byte, LineSize)
				rng.Read(line)
				rec.Record(addr, line)
			}
		}
		var buf bytes.Buffer
		if _, err := rec.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadRecording(&buf)
		if err != nil || got.Len() != n {
			return false
		}
		m := NewModule(got, 8, 0)
		for i := 0; i < n; i++ {
			data, ok := m.Lookup(uint64(i) * LineSize)
			if !ok {
				return false
			}
			want := rec.Entries[i].Data
			if want == nil {
				want = make([]byte, LineSize)
			}
			if !bytes.Equal(data, want) {
				return false
			}
		}
		return m.Drained()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
