// Package replay implements the access-replay mechanism of the paper's
// device emulator (§IV-A).
//
// The paper's FPGA cannot serve requests from its slow on-board DRAM at
// emulation speed, so each experiment runs twice: a recording run
// captures the application's (address, data) access sequence, and the
// measured run streams that sequence ahead of the host's requests so
// responses can be produced with precisely controlled latency.
//
// The host CPU complicates replay in three ways the module must absorb:
// cache hits make recorded accesses never arrive (entries must be
// skippable), out-of-order execution reorders nearby accesses (skipped
// entries must be retained in a window in case they arrive late), and
// wrong-path speculation produces spurious requests that match nothing
// (they fall through to the on-demand module, which reads the dataset
// copy directly). This package reproduces that machinery: a sliding
// window over the recorded sequence with an age-based associative
// lookup.
package replay

import "fmt"

// LineSize is the bytes per recorded access (one cache line).
const LineSize = 64

// Entry is one recorded access: the address requested and the data that
// was returned. A nil Data means a zero-filled line (used by synthetic
// recordings to avoid materializing gigabytes of zeroes).
type Entry struct {
	Addr uint64
	Data []byte
}

// Recording is an ordered access sequence captured during a recording
// run.
type Recording struct {
	Entries []Entry
}

// Record appends one access to the recording.
func (r *Recording) Record(addr uint64, data []byte) {
	r.Entries = append(r.Entries, Entry{Addr: addr, Data: data})
}

// Len returns the number of recorded accesses.
func (r *Recording) Len() int { return len(r.Entries) }

// Bytes returns the on-board DRAM footprint of the recording
// (address + line data per entry), used to size DMA preloads.
func (r *Recording) Bytes() int64 {
	return int64(len(r.Entries)) * int64(8+LineSize)
}

// Synthetic builds a recording of n sequential fresh-cache-line
// accesses starting at base — the microbenchmark's access pattern
// ("we make each microbenchmark access go to a different cache line",
// §IV-C). Lines are zero-filled.
func Synthetic(base uint64, n int) *Recording {
	r := &Recording{Entries: make([]Entry, n)}
	for i := range r.Entries {
		r.Entries[i] = Entry{Addr: base + uint64(i)*LineSize}
	}
	return r
}

// Module is one replay module: it serves one core's requests from a
// recording, tolerating skipped, reordered, and missing accesses via a
// sliding window with age-based (oldest-first) associative lookup.
//
// The same recording can back several modules with different address
// offsets, reproducing the paper's trick of reusing one recorded
// sequence across cores ("after applying an address offset") to cut
// on-board DRAM requirements.
type Module struct {
	rec    *Recording
	offset uint64 // host address = recorded address + offset
	window int

	front     int    // index of the oldest entry still in the window
	matched   []bool // per-entry: consumed by a match
	highWater int    // one past the newest entry matched so far

	matches   uint64
	skips     uint64 // entries aged out without ever matching (cache hits)
	misses    uint64 // lookups that found no entry (spurious requests)
	reordered uint64 // matches that were not at the window front
}

// NewModule creates a replay module over rec with the given lookup
// window depth and per-core address offset.
func NewModule(rec *Recording, window int, offset uint64) *Module {
	if window <= 0 {
		panic(fmt.Sprintf("replay: window %d must be positive", window))
	}
	return &Module{
		rec:     rec,
		offset:  offset,
		window:  window,
		matched: make([]bool, len(rec.Entries)),
	}
}

// Lookup serves one host request. It returns the recorded line and true
// on a match; (nil, false) means the request could not be matched within
// the window and must be served by the on-demand module.
func (m *Module) Lookup(hostAddr uint64) ([]byte, bool) {
	addr := hostAddr - m.offset

	// Search oldest-first (age-based lookup). The search spans two
	// window depths from the front: the retention window of skipped
	// entries kept for late reordered arrivals, plus the stream-ahead
	// window — the replay stream runs "well in advance of the request
	// from the host" (§IV-A), so entries just beyond the match point are
	// already buffered.
	limit := m.front + 2*m.window
	if limit > len(m.rec.Entries) {
		limit = len(m.rec.Entries)
	}
	for i := m.front; i < limit; i++ {
		if m.matched[i] || m.rec.Entries[i].Addr != addr {
			continue
		}
		m.matched[i] = true
		m.matches++
		if i != m.front {
			m.reordered++
		}
		if i+1 > m.highWater {
			m.highWater = i + 1
		}
		data := m.rec.Entries[i].Data
		m.advance()
		return line(data), true
	}
	m.misses++
	return nil, false
}

// advance slides the front past consumed entries. Entries that were
// never matched but have fallen a full window behind the newest match
// are aged out as skips (recorded accesses that became cache hits in the
// measured run). Skipped entries are deliberately retained until then so
// that reordered late arrivals still find them (§IV-A).
func (m *Module) advance() {
	for m.front < len(m.rec.Entries) {
		switch {
		case m.matched[m.front]:
			m.front++
		case m.highWater-m.front >= m.window:
			m.skips++
			m.front++
		default:
			return
		}
	}
}

// Drained reports whether every recorded entry has been either matched
// or aged out.
func (m *Module) Drained() bool {
	for i := m.front; i < len(m.rec.Entries); i++ {
		if !m.matched[i] {
			return false
		}
	}
	return true
}

// Remaining returns the number of entries not yet matched or aged out.
func (m *Module) Remaining() int {
	n := 0
	for i := m.front; i < len(m.rec.Entries); i++ {
		if !m.matched[i] {
			n++
		}
	}
	return n
}

// Matches returns successful window lookups.
func (m *Module) Matches() uint64 { return m.matches }

// Skips returns entries aged out unmatched.
func (m *Module) Skips() uint64 { return m.skips }

// Misses returns lookups that fell through to the on-demand module.
func (m *Module) Misses() uint64 { return m.misses }

// Reordered returns matches found behind the window front.
func (m *Module) Reordered() uint64 { return m.reordered }

// line materializes entry data, expanding nil to a zero line.
func line(data []byte) []byte {
	if data == nil {
		return make([]byte, LineSize)
	}
	return data
}

// Recorder captures an access sequence during a recording run. It wraps
// a Backing (the authoritative dataset) and records every read.
type Recorder struct {
	backing Backing
	rec     *Recording
}

// Backing is an authoritative byte-addressable dataset, read at
// cache-line granularity. It stands in for the separate on-board DRAM
// holding "a copy of the dataset" (§IV-A).
type Backing interface {
	ReadLine(addr uint64) []byte
}

// NewRecorder wraps backing and records into rec.
func NewRecorder(backing Backing, rec *Recording) *Recorder {
	return &Recorder{backing: backing, rec: rec}
}

// Recording returns the recording being captured.
func (r *Recorder) Recording() *Recording { return r.rec }

// ReadLine reads from the backing store and appends to the recording.
func (r *Recorder) ReadLine(addr uint64) []byte {
	data := r.backing.ReadLine(addr)
	r.rec.Record(addr, data)
	return data
}

// ZeroBacking is a Backing whose every line is zero — sufficient for
// workloads whose control flow does not depend on the data read (the
// microbenchmark).
type ZeroBacking struct{}

// ReadLine returns a zero-filled line.
func (ZeroBacking) ReadLine(uint64) []byte { return make([]byte, LineSize) }

// SliceBacking is a Backing over a contiguous []byte dataset starting at
// a base address. Reads beyond the slice return zero lines, matching
// hardware that returns junk (here: zeroes) for unmapped addresses.
type SliceBacking struct {
	Base uint64
	Data []byte
}

// ReadLine returns the 64-byte line containing addr (aligned down).
func (s *SliceBacking) ReadLine(addr uint64) []byte {
	out := make([]byte, LineSize)
	if addr < s.Base {
		return out
	}
	off := (addr - s.Base) &^ (LineSize - 1)
	if off >= uint64(len(s.Data)) {
		return out
	}
	copy(out, s.Data[off:])
	return out
}
