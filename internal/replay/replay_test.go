package replay

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func seqRecording(n int) *Recording {
	r := &Recording{}
	for i := 0; i < n; i++ {
		data := make([]byte, LineSize)
		data[0] = byte(i)
		r.Record(uint64(i)*LineSize, data)
	}
	return r
}

func TestInOrderReplay(t *testing.T) {
	rec := seqRecording(10)
	m := NewModule(rec, 4, 0)
	for i := 0; i < 10; i++ {
		data, ok := m.Lookup(uint64(i) * LineSize)
		if !ok {
			t.Fatalf("lookup %d missed", i)
		}
		if data[0] != byte(i) {
			t.Fatalf("lookup %d returned data %d", i, data[0])
		}
	}
	if !m.Drained() || m.Matches() != 10 || m.Skips() != 0 || m.Misses() != 0 || m.Reordered() != 0 {
		t.Errorf("stats: matches=%d skips=%d misses=%d reordered=%d drained=%v",
			m.Matches(), m.Skips(), m.Misses(), m.Reordered(), m.Drained())
	}
}

func TestReorderedAccessesWithinWindow(t *testing.T) {
	rec := seqRecording(6)
	m := NewModule(rec, 4, 0)
	// Swap accesses 0 and 1, as out-of-order issue would.
	order := []int{1, 0, 2, 3, 5, 4}
	for _, i := range order {
		data, ok := m.Lookup(uint64(i) * LineSize)
		if !ok {
			t.Fatalf("reordered lookup %d missed", i)
		}
		if data[0] != byte(i) {
			t.Fatalf("lookup %d returned data %d", i, data[0])
		}
	}
	if m.Reordered() != 2 { // entries 1 and 5 matched behind the front
		t.Errorf("reordered = %d, want 2", m.Reordered())
	}
	if !m.Drained() {
		t.Error("module not drained")
	}
}

func TestCacheHitSkipsAgeOut(t *testing.T) {
	rec := seqRecording(20)
	m := NewModule(rec, 4, 0)
	// The measured run never requests access 3 (it hit in the cache).
	for i := 0; i < 20; i++ {
		if i == 3 {
			continue
		}
		if _, ok := m.Lookup(uint64(i) * LineSize); !ok {
			t.Fatalf("lookup %d missed", i)
		}
	}
	if m.Skips() != 1 {
		t.Errorf("skips = %d, want 1", m.Skips())
	}
	if m.Remaining() != 0 {
		t.Errorf("remaining = %d, want 0", m.Remaining())
	}
}

func TestSpuriousRequestMisses(t *testing.T) {
	rec := seqRecording(4)
	m := NewModule(rec, 4, 0)
	// A wrong-path access to an address not in the window.
	if _, ok := m.Lookup(0xDEAD0000); ok {
		t.Fatal("spurious request matched")
	}
	if m.Misses() != 1 {
		t.Errorf("misses = %d, want 1", m.Misses())
	}
	// The window is unaffected: the real sequence still replays.
	for i := 0; i < 4; i++ {
		if _, ok := m.Lookup(uint64(i) * LineSize); !ok {
			t.Fatalf("lookup %d missed after spurious request", i)
		}
	}
}

func TestLookupBeyondWindowMisses(t *testing.T) {
	rec := seqRecording(100)
	m := NewModule(rec, 8, 0)
	// Entry 50 is far beyond the 8-deep window at the front.
	if _, ok := m.Lookup(50 * LineSize); ok {
		t.Fatal("matched an entry outside the window")
	}
}

func TestDuplicateAddressesMatchOldestFirst(t *testing.T) {
	// Two recorded accesses to the same address must be consumed
	// oldest-first (age-based lookup).
	rec := &Recording{}
	d1 := bytes.Repeat([]byte{1}, LineSize)
	d2 := bytes.Repeat([]byte{2}, LineSize)
	rec.Record(0x40, d1)
	rec.Record(0x40, d2)
	m := NewModule(rec, 4, 0)
	got1, _ := m.Lookup(0x40)
	got2, _ := m.Lookup(0x40)
	if got1[0] != 1 || got2[0] != 2 {
		t.Errorf("duplicate matches returned %d,%d; want 1,2", got1[0], got2[0])
	}
}

func TestAddressOffsetReuse(t *testing.T) {
	// One recording serves two "cores" at different offsets (§IV-A).
	rec := seqRecording(5)
	m0 := NewModule(rec, 4, 0)
	m1 := NewModule(rec, 4, 1<<30)
	for i := 0; i < 5; i++ {
		if _, ok := m0.Lookup(uint64(i) * LineSize); !ok {
			t.Fatalf("core0 lookup %d missed", i)
		}
		if _, ok := m1.Lookup(1<<30 + uint64(i)*LineSize); !ok {
			t.Fatalf("core1 lookup %d missed", i)
		}
	}
	// Unoffset address misses on the offset module.
	if _, ok := NewModule(rec, 4, 1<<30).Lookup(0); ok {
		t.Error("offset module matched unoffset address")
	}
}

func TestSyntheticRecording(t *testing.T) {
	r := Synthetic(0x1000, 3)
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.Entries[2].Addr != 0x1000+2*LineSize {
		t.Errorf("entry 2 addr = %#x", r.Entries[2].Addr)
	}
	m := NewModule(r, 4, 0)
	data, ok := m.Lookup(0x1000)
	if !ok || len(data) != LineSize {
		t.Fatalf("synthetic lookup failed")
	}
	for _, b := range data {
		if b != 0 {
			t.Fatal("synthetic line not zero-filled")
		}
	}
	if r.Bytes() != 3*(8+LineSize) {
		t.Errorf("Bytes() = %d", r.Bytes())
	}
}

func TestZeroWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero window did not panic")
		}
	}()
	NewModule(&Recording{}, 0, 0)
}

func TestRecorderCapturesSequence(t *testing.T) {
	backing := &SliceBacking{Base: 0x1000, Data: bytes.Repeat([]byte{7}, 256)}
	rec := &Recording{}
	r := NewRecorder(backing, rec)
	got := r.ReadLine(0x1040)
	if got[0] != 7 {
		t.Errorf("recorder returned %d, want 7", got[0])
	}
	r.ReadLine(0x1000)
	if rec.Len() != 2 || rec.Entries[0].Addr != 0x1040 || rec.Entries[1].Addr != 0x1000 {
		t.Errorf("recording = %+v", rec.Entries)
	}
}

func TestSliceBacking(t *testing.T) {
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i)
	}
	b := &SliceBacking{Base: 0x1000, Data: data}
	// Aligned read.
	line := b.ReadLine(0x1040)
	if line[0] != 64 || line[63] != 127 {
		t.Errorf("line = [%d..%d]", line[0], line[63])
	}
	// Unaligned address reads the containing line.
	line = b.ReadLine(0x1044)
	if line[0] != 64 {
		t.Errorf("unaligned read line[0] = %d, want 64", line[0])
	}
	// Below base and beyond the slice: zero lines.
	for _, addr := range []uint64{0x0, 0x1000 + 512} {
		line = b.ReadLine(addr)
		for _, v := range line {
			if v != 0 {
				t.Fatalf("out-of-range read at %#x not zero", addr)
			}
		}
	}
	// A read near the end is zero-padded, not out of range.
	line = b.ReadLine(0x1000 + 192)
	if line[0] != 192 || line[7] != 199 || line[8] != 0 {
		t.Errorf("tail line = [%d %d %d]", line[0], line[7], line[8])
	}
}

func TestZeroBacking(t *testing.T) {
	line := ZeroBacking{}.ReadLine(12345)
	if len(line) != LineSize {
		t.Fatalf("line size %d", len(line))
	}
	for _, v := range line {
		if v != 0 {
			t.Fatal("non-zero byte from ZeroBacking")
		}
	}
}

// Property: replaying any recorded sequence with bounded local
// reordering (within half the window) matches every entry.
func TestBoundedReorderAlwaysMatches(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%64) + 8
		window := 16
		rec := seqRecording(n)
		// Perturb: swap adjacent pairs pseudo-randomly (displacement 1,
		// well within the window).
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i+1 < n; i += 2 {
			if rng.Intn(2) == 0 {
				order[i], order[i+1] = order[i+1], order[i]
			}
		}
		m := NewModule(rec, window, 0)
		for _, i := range order {
			if _, ok := m.Lookup(uint64(i) * LineSize); !ok {
				return false
			}
		}
		return m.Drained() && m.Skips() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: with random subsets of accesses dropped (cache hits), every
// issued access still matches and dropped ones age out as skips.
func TestDroppedAccessesAgeOut(t *testing.T) {
	f := func(seed int64) bool {
		n := 64
		rec := seqRecording(n)
		rng := rand.New(rand.NewSource(seed))
		m := NewModule(rec, 8, 0)
		issued := 0
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				continue // dropped: cache hit in the measured run
			}
			issued++
			if _, ok := m.Lookup(uint64(i) * LineSize); !ok {
				return false
			}
		}
		return int(m.Matches()) == issued
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
