// Package fault provides deterministic fault injection for the device
// stack. The paper's emulator is perfectly behaved — fixed latency, no
// lost completions, no link errors — but the device classes it models
// (NVMe flash, RDMA NICs) live with timeouts, retries, and stragglers.
// This package injects such misbehavior at three layers:
//
//   - device: dropped completions (a response that never returns),
//     straggler latencies far beyond the Ext.-tail model, and spurious
//     duplicated responses;
//   - PCIe: transaction-layer packet corruption forcing a link-level
//     replay (retransmission plus a recovery penalty), and transient
//     link stalls;
//   - software queue: lost doorbell writes and completion-queue
//     overflow backpressure.
//
// All draws come from one seeded math/rand stream consumed in simulated
// event order, so runs are exactly reproducible and replay determinism
// is preserved. A Plan with every probability zero is "disabled":
// NewInjector returns nil for it, every Injector method is safe on a nil
// receiver, and hosts take the fault-aware code path only for a non-nil
// injector — so a disabled plan perturbs nothing, bit for bit.
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// DefaultStragglerFactor multiplies the drawn device latency for a
// straggler when the plan does not set its own factor: two orders of
// magnitude covers a flash read stuck behind a block erase.
const DefaultStragglerFactor = 50

// DefaultLinkStallTime is the transient link-stall duration when the
// plan does not set its own: a few microseconds of retraining.
const DefaultLinkStallTime = 2 * sim.Microsecond

// Plan is a declarative, seeded fault schedule. The zero value injects
// nothing.
type Plan struct {
	// Seed selects the deterministic draw stream.
	Seed int64

	// ---- Device layer ----

	// DropCompletionProb is the probability a served request's response
	// is lost before reaching the host.
	DropCompletionProb float64
	// StragglerProb is the probability an access takes
	// StragglerFactor times its drawn latency.
	StragglerProb float64
	// StragglerFactor multiplies the latency of a straggler
	// (DefaultStragglerFactor if zero).
	StragglerFactor float64
	// DuplicateProb is the probability the device sends a response (or
	// posts a completion) twice.
	DuplicateProb float64

	// ---- PCIe layer ----

	// TLPCorruptProb is the probability a transaction-layer packet is
	// corrupted and must be replayed at the link level, paying the
	// retransmission plus the platform's replay penalty.
	TLPCorruptProb float64
	// LinkStallProb is the probability a packet hits a transient link
	// stall of LinkStallTime before transmission.
	LinkStallProb float64
	// LinkStallTime is the stall duration (DefaultLinkStallTime if
	// zero).
	LinkStallTime sim.Time

	// ---- Software-queue layer ----

	// DoorbellDropProb is the probability an MMIO doorbell write is
	// lost at the device, leaving the request fetcher parked until the
	// host's timeout re-rings it.
	DoorbellDropProb float64
	// CQCapacity bounds the host completion queue; the device defers a
	// completion post while the queue holds that many unconsumed
	// entries (backpressure). Zero means unbounded, as in the paper.
	CQCapacity int
}

// Enabled reports whether the plan can inject anything at all.
func (p Plan) Enabled() bool {
	return p.DropCompletionProb > 0 || p.StragglerProb > 0 || p.DuplicateProb > 0 ||
		p.TLPCorruptProb > 0 || p.LinkStallProb > 0 || p.DoorbellDropProb > 0 ||
		p.CQCapacity > 0
}

// Validate reports the first implausible field, or nil.
func (p Plan) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"drop-completion", p.DropCompletionProb},
		{"straggler", p.StragglerProb},
		{"duplicate", p.DuplicateProb},
		{"TLP-corrupt", p.TLPCorruptProb},
		{"link-stall", p.LinkStallProb},
		{"doorbell-drop", p.DoorbellDropProb},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s probability %v must be in [0,1]", pr.name, pr.v)
		}
	}
	switch {
	case p.StragglerFactor < 0 || (p.StragglerFactor > 0 && p.StragglerFactor < 1):
		return fmt.Errorf("fault: straggler factor %v must be >= 1 (or 0 for the default)", p.StragglerFactor)
	case p.LinkStallTime < 0:
		return fmt.Errorf("fault: link stall time %v must be non-negative", p.LinkStallTime)
	case p.CQCapacity < 0:
		return fmt.Errorf("fault: completion-queue capacity %d must be non-negative", p.CQCapacity)
	}
	return nil
}

// Counters tallies the faults actually injected in one run, by layer.
type Counters struct {
	DroppedCompletions uint64
	Stragglers         uint64
	Duplicates         uint64
	CorruptTLPs        uint64
	LinkStalls         uint64
	DroppedDoorbells   uint64
	CQBackpressure     uint64
}

// Total returns the number of faults injected across all layers.
func (c Counters) Total() uint64 {
	return c.DroppedCompletions + c.Stragglers + c.Duplicates +
		c.CorruptTLPs + c.LinkStalls + c.DroppedDoorbells + c.CQBackpressure
}

// Injector draws faults from a plan's seeded stream. A nil *Injector is
// the disabled injector: every method returns the no-fault answer
// without consuming randomness, so code can hold one unconditionally.
type Injector struct {
	plan Plan
	rng  *rand.Rand
	c    Counters
}

// NewInjector returns an injector for the plan, or nil if the plan is
// disabled — the nil return is what guarantees a zero-rate plan takes
// exactly the fault-free code path.
func NewInjector(p Plan) *Injector {
	if !p.Enabled() {
		return nil
	}
	return &Injector{plan: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// draw consumes one uniform variate when prob is positive and reports a
// hit. Guarding on prob keeps layers with zero probability from
// perturbing the draw stream of active layers.
func (in *Injector) draw(prob float64, hits *uint64) bool {
	if prob <= 0 {
		return false
	}
	if in.rng.Float64() >= prob {
		return false
	}
	*hits++
	return true
}

// DropCompletion reports whether this response should be lost.
func (in *Injector) DropCompletion() bool {
	return in != nil && in.draw(in.plan.DropCompletionProb, &in.c.DroppedCompletions)
}

// Straggle returns the latency multiplier for this access and whether a
// straggler was drawn (factor 1 otherwise).
func (in *Injector) Straggle() (float64, bool) {
	if in == nil || !in.draw(in.plan.StragglerProb, &in.c.Stragglers) {
		return 1, false
	}
	f := in.plan.StragglerFactor
	if f == 0 {
		f = DefaultStragglerFactor
	}
	return f, true
}

// Duplicate reports whether this response should be delivered twice.
func (in *Injector) Duplicate() bool {
	return in != nil && in.draw(in.plan.DuplicateProb, &in.c.Duplicates)
}

// CorruptTLP reports whether this packet is corrupted and must be
// replayed at the link level.
func (in *Injector) CorruptTLP() bool {
	return in != nil && in.draw(in.plan.TLPCorruptProb, &in.c.CorruptTLPs)
}

// LinkStall returns the stall this packet suffers before transmission
// and whether one was drawn.
func (in *Injector) LinkStall() (sim.Time, bool) {
	if in == nil || !in.draw(in.plan.LinkStallProb, &in.c.LinkStalls) {
		return 0, false
	}
	st := in.plan.LinkStallTime
	if st == 0 {
		st = DefaultLinkStallTime
	}
	return st, true
}

// DropDoorbell reports whether this doorbell write is lost at the
// device.
func (in *Injector) DropDoorbell() bool {
	return in != nil && in.draw(in.plan.DoorbellDropProb, &in.c.DroppedDoorbells)
}

// CQFull reports whether a completion post must be deferred because the
// host completion queue already holds depth unconsumed entries.
func (in *Injector) CQFull(depth int) bool {
	if in == nil || in.plan.CQCapacity <= 0 || depth < in.plan.CQCapacity {
		return false
	}
	in.c.CQBackpressure++
	return true
}

// Counters returns the faults injected so far (zero for nil).
func (in *Injector) Counters() Counters {
	if in == nil {
		return Counters{}
	}
	return in.c
}

// AccessOutcome is the host-observed result of one on-demand access
// under the analytic recovery model of HostAccessLatency.
type AccessOutcome struct {
	Latency   sim.Time // issue to data-usable, including recovery
	Retries   int      // re-issues after a timeout
	Timeouts  int      // timeouts that fired (== Retries unless abandoned)
	Abandoned bool     // gave up after the retry budget; data zero-filled
}

// HostAccessLatency models one on-demand MMIO access with timeout/retry
// recovery analytically, for the interval core model (which has no
// event loop to run real timers in). Each attempt draws the device- and
// PCIe-layer faults: a straggler multiplies the latency, a corrupt TLP
// adds replayPenalty, a link stall adds its stall time. If the attempt's
// response is dropped — or its latency exceeds the attempt's timeout —
// the host waits out the timeout and retries, up to maxRetries times,
// then abandons the access. timeout(attempt) supplies the per-attempt
// (backed-off) timeout.
func (in *Injector) HostAccessLatency(base, replayPenalty sim.Time, timeout func(attempt int) sim.Time, maxRetries int) AccessOutcome {
	if in == nil {
		return AccessOutcome{Latency: base}
	}
	var out AccessOutcome
	var elapsed sim.Time
	for attempt := 0; ; attempt++ {
		lat := base
		if f, ok := in.Straggle(); ok {
			lat = sim.Time(float64(lat) * f)
		}
		if in.CorruptTLP() {
			lat += replayPenalty
		}
		if st, ok := in.LinkStall(); ok {
			lat += st
		}
		to := timeout(attempt)
		if !in.DropCompletion() && lat <= to {
			out.Latency = elapsed + lat
			return out
		}
		out.Timeouts++
		if attempt >= maxRetries {
			out.Abandoned = true
			out.Latency = elapsed + to
			return out
		}
		out.Retries++
		elapsed += to
	}
}
