package fault

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestPlanEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Error("zero plan reported enabled")
	}
	if (Plan{Seed: 42}).Enabled() {
		t.Error("seed alone should not enable a plan")
	}
	enabled := []Plan{
		{DropCompletionProb: 0.01},
		{StragglerProb: 0.01},
		{DuplicateProb: 0.01},
		{TLPCorruptProb: 0.01},
		{LinkStallProb: 0.01},
		{DoorbellDropProb: 0.01},
		{CQCapacity: 4},
	}
	for i, p := range enabled {
		if !p.Enabled() {
			t.Errorf("plan %d should be enabled: %+v", i, p)
		}
	}
}

func TestNewInjectorNilForDisabledPlan(t *testing.T) {
	if in := NewInjector(Plan{Seed: 7}); in != nil {
		t.Error("disabled plan produced a non-nil injector")
	}
	if in := NewInjector(Plan{DropCompletionProb: 0.5}); in == nil {
		t.Error("enabled plan produced a nil injector")
	}
}

func TestNilInjectorIsBenign(t *testing.T) {
	var in *Injector
	if in.DropCompletion() || in.Duplicate() || in.CorruptTLP() || in.DropDoorbell() {
		t.Error("nil injector injected a fault")
	}
	if f, ok := in.Straggle(); ok || f != 1 {
		t.Errorf("nil Straggle = (%v, %v), want (1, false)", f, ok)
	}
	if st, ok := in.LinkStall(); ok || st != 0 {
		t.Errorf("nil LinkStall = (%v, %v), want (0, false)", st, ok)
	}
	if in.CQFull(1000) {
		t.Error("nil CQFull reported backpressure")
	}
	if c := in.Counters(); c.Total() != 0 {
		t.Errorf("nil Counters = %+v, want zero", c)
	}
	out := in.HostAccessLatency(sim.Microsecond, 0, func(int) sim.Time { return 16 * sim.Microsecond }, 4)
	if out.Latency != sim.Microsecond || out.Retries != 0 || out.Abandoned {
		t.Errorf("nil HostAccessLatency = %+v, want plain base latency", out)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		plan    Plan
		keyword string // empty: expect valid
	}{
		{"zero", Plan{}, ""},
		{"typical", Plan{Seed: 1, DropCompletionProb: 0.01, CQCapacity: 8}, ""},
		{"prob-high", Plan{DropCompletionProb: 1.5}, "probability"},
		{"prob-negative", Plan{TLPCorruptProb: -0.1}, "probability"},
		{"factor", Plan{StragglerProb: 0.1, StragglerFactor: 0.5}, "factor"},
		{"stall", Plan{LinkStallProb: 0.1, LinkStallTime: -sim.Nanosecond}, "stall"},
		{"cq", Plan{CQCapacity: -1}, "capacity"},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		if c.keyword == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: Validate accepted bad plan", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.keyword) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.keyword)
		}
	}
}

func TestDrawsAreDeterministic(t *testing.T) {
	plan := Plan{Seed: 99, DropCompletionProb: 0.3, StragglerProb: 0.2, TLPCorruptProb: 0.1}
	seq := func() []bool {
		in := NewInjector(plan)
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, in.DropCompletion())
			_, s := in.Straggle()
			out = append(out, s)
			out = append(out, in.CorruptTLP())
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identically seeded injectors", i)
		}
	}
	hits := 0
	for _, v := range a {
		if v {
			hits++
		}
	}
	if hits == 0 {
		t.Error("no faults drawn at substantial probabilities")
	}
}

func TestZeroProbLayersDoNotConsumeStream(t *testing.T) {
	// The drop sequence must be identical whether or not other layers
	// exist at probability zero — per-layer guards keep the stream
	// aligned.
	seq := func(p Plan) []bool {
		in := NewInjector(p)
		var out []bool
		for i := 0; i < 100; i++ {
			in.Straggle()
			in.CorruptTLP()
			out = append(out, in.DropCompletion())
		}
		return out
	}
	a := seq(Plan{Seed: 5, DropCompletionProb: 0.5})
	b := seq(Plan{Seed: 5, DropCompletionProb: 0.5, StragglerProb: 0, TLPCorruptProb: 0})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d perturbed by zero-probability layers", i)
		}
	}
}

func TestCounters(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, DropCompletionProb: 1, CQCapacity: 2})
	for i := 0; i < 5; i++ {
		if !in.DropCompletion() {
			t.Fatal("probability-1 drop did not fire")
		}
	}
	if in.CQFull(1) {
		t.Error("CQFull below capacity")
	}
	if !in.CQFull(2) || !in.CQFull(3) {
		t.Error("CQFull at/above capacity did not report backpressure")
	}
	c := in.Counters()
	if c.DroppedCompletions != 5 || c.CQBackpressure != 2 {
		t.Errorf("counters = %+v, want 5 drops, 2 backpressure", c)
	}
}

func TestHostAccessLatencyRecovery(t *testing.T) {
	base := sim.Microsecond
	timeout := func(attempt int) sim.Time {
		to := 16 * sim.Microsecond
		for i := 0; i < attempt; i++ {
			to *= 2
		}
		return to
	}

	// Always-dropped completions: every attempt times out; after
	// maxRetries the access is abandoned having waited out every
	// backed-off timeout.
	in := NewInjector(Plan{Seed: 1, DropCompletionProb: 1})
	out := in.HostAccessLatency(base, 0, timeout, 2)
	if !out.Abandoned || out.Retries != 2 || out.Timeouts != 3 {
		t.Errorf("outcome = %+v, want abandoned after 2 retries, 3 timeouts", out)
	}
	want := timeout(0) + timeout(1) + timeout(2)
	if out.Latency != want {
		t.Errorf("latency = %v, want %v (sum of timeouts)", out.Latency, want)
	}

	// A straggler beyond the timeout is indistinguishable from a loss:
	// the host retries until the backed-off timeout exceeds the
	// straggler latency (timeout(3) = 128us > 100us here).
	in = NewInjector(Plan{Seed: 1, StragglerProb: 1, StragglerFactor: 100})
	first := in.HostAccessLatency(base, 0, timeout, 4)
	if first.Retries != 3 || first.Abandoned {
		t.Errorf("100x straggler outcome = %+v, want 3 retries then success", first)
	}
	if want := timeout(0) + timeout(1) + timeout(2) + 100*base; first.Latency != want {
		t.Errorf("straggler latency = %v, want %v", first.Latency, want)
	}

	// Corrupt TLP: replay penalty lands on the latency, no retry.
	in = NewInjector(Plan{Seed: 1, TLPCorruptProb: 1})
	out = in.HostAccessLatency(base, 500*sim.Nanosecond, timeout, 4)
	if out.Latency != base+500*sim.Nanosecond || out.Retries != 0 {
		t.Errorf("corrupt-TLP outcome = %+v, want base+penalty, no retry", out)
	}
}
