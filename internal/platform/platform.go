// Package platform describes the hardware/software platform of the
// paper's evaluation (§IV): a single-socket Intel Xeon E5-2670v3 host,
// an Altera DE5-Net FPGA device emulator on a PCIe Gen2 x8 link, and the
// heavily optimized GNU-Pth-derived user-level threading library.
//
// Every constant that shapes a result in the paper is a documented field
// of Config, annotated with the sentence in the paper that pins it down.
// Experiments take a Config so that ablations (e.g. "what if the LFB
// limit of 10 were lifted?", §V-B Implications) are one-field overrides.
package platform

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// CacheLineBytes is the transfer granularity of fine-grained accesses:
// the device responds to a load "with the requested cache line" (§IV).
const CacheLineBytes = 64

// Config is the full calibrated description of the evaluation platform.
type Config struct {
	// ---- Host core (Xeon E5-2670v3, §IV-A) ----

	// CPUFreqGHz is the core clock. The E5-2670v3 runs at 2.3 GHz.
	CPUFreqGHz float64

	// IssueWidth is the superscalar width; the microbenchmark's work
	// loop is tuned to IPC ~1.4 "on a 4-wide out-of-order machine"
	// (§IV-C).
	IssueWidth int

	// WindowSize is the effective out-of-order instruction window, in
	// instructions: how far past a stalled load the core can look for
	// independent work. The paper puts it at "~100-200 instructions"
	// (§V-A Implications). Haswell's ROB holds 192 entries, but the
	// 60-entry scheduler and 72-entry load buffer bind earlier, so the
	// effective window is calibrated at 144.
	WindowSize int

	// WorkIPC is the retirement rate of the microbenchmark's dependent
	// arithmetic work: "sufficiently-many internal dependencies so as to
	// limit its IPC to ~1.4" (§IV-C).
	WorkIPC float64

	// LFBPerCore is the number of Line Fill Buffers (MSHRs) per core.
	// "all state-of-the-art Xeon server processors have at most 10 LFBs
	// per core" (§V-B).
	LFBPerCore int

	// Cores is the number of cores used on the single socket.
	Cores int

	// ---- Memory system ----

	// DRAMLatency is the loaded DRAM access latency seen by a demand
	// miss. ~80 ns is typical for the platform's DDR4-2133.
	DRAMLatency sim.Time

	// DRAMMaxOutstanding is the chip-level limit on simultaneous DRAM
	// accesses. The paper verified "at least 48 simultaneous accesses
	// can be outstanding to DRAM" (§V-B); the exact value beyond 48 does
	// not matter for any experiment.
	DRAMMaxOutstanding int

	// DRAMIssueGap is the extra serialization between simultaneous DRAM
	// loads of one core (bank conflicts, memory-controller scheduling,
	// shared data bus): k parallel random loads complete at
	// DRAMLatency + (k-1)*DRAMIssueGap rather than all at DRAMLatency.
	// This is what keeps the MLP-matched DRAM baselines of Figs 6/9/10
	// from being unrealistically fast. The emulated device does not pay
	// it — its internals are over-provisioned by design (§IV-A).
	DRAMIssueGap sim.Time

	// ChipQueueMMIO is the chip-level shared queue on the path from the
	// cores to the PCIe controller: "we have experimentally verified
	// that the maximum occupancy of this queue is 14" (§V-B).
	ChipQueueMMIO int

	// ---- PCIe link (Gen2 x8, §IV-A) ----

	// PCIeBandwidth is the per-direction peak, in bytes per second.
	// "of the 4GB/s theoretical peak of our PCIe interface" (§V-C).
	PCIeBandwidth float64

	// PCIeHeaderBytes is the per-TLP overhead: "a 24-byte PCIe packet
	// header added to each transaction, a 38% overhead" on a 64-byte
	// payload (§V-C).
	PCIeHeaderBytes int

	// PCIePropagation is the one-way latency of the link plus
	// controllers. The paper measured "~800ns" round trip (§IV-A).
	PCIePropagation sim.Time

	// ---- Device emulator (§IV-A) ----

	// DeviceLatency is the configured end-to-end response latency of the
	// emulated device, inclusive of the PCIe round trip, exactly as the
	// paper configures it ("The configured response delays account for
	// the PCIe round-trip latency").
	DeviceLatency sim.Time

	// ReplayWindow is the sliding-window depth of the replay module's
	// age-based associative lookup (§IV-A, Memory-Mapped Hardware
	// Design).
	ReplayWindow int

	// FetchBurst is the number of descriptors a request fetcher reads
	// per burst: "the request fetcher retrieves descriptors in bursts of
	// eight" (§IV-A, Software-Managed Queue Design).
	FetchBurst int

	// HostMemLatency is the latency of a device-initiated DMA read or
	// write hitting host DRAM, excluding PCIe propagation.
	HostMemLatency sim.Time

	// ---- Support software (§IV-B) ----

	// CtxSwitch is the user-level context switch cost: "we were able to
	// reduce the context switch overheads ... to 20-50 nanoseconds,
	// including the completion queue checks".
	CtxSwitch sim.Time

	// PrefetchIssue is the core-occupancy cost of issuing one
	// prefetcht0 (a couple of pipeline slots).
	PrefetchIssue sim.Time

	// WriteIssue is the core-occupancy cost of issuing one posted store
	// to the device (§VII extension).
	WriteIssue sim.Time

	// StoreBufferEntries is the per-core store-buffer depth absorbing
	// posted device writes (42 on Haswell). A full store buffer stalls
	// further stores until writes drain to the interconnect.
	StoreBufferEntries int

	// DeviceCacheLines enables the per-core on-chip cache for device
	// lines ("MMIO regions marked 'cacheable' can take advantage of
	// locality", §III-B): the number of 64-byte lines the device's
	// share of the cache holds. Zero disables caching — the paper's
	// microbenchmark touches only fresh lines, so caching is irrelevant
	// to every paper figure and is exercised by the locality extension.
	DeviceCacheLines int

	// DeviceCacheWays is the associativity of the device-line cache.
	DeviceCacheWays int

	// SamplePeriod enables occupancy-timeline sampling: every period the
	// harness records LFB and chip-queue occupancy and link utilization
	// into the run's diagnostics. Zero disables sampling (the default;
	// it is observability, not modeling).
	SamplePeriod sim.Time

	// Trace, when non-nil, records every run into the given event
	// recorder: per-access lifecycle spans, occupancy timelines sampled
	// on state change, and PCIe TLP slices, exportable as Chrome
	// trace-event / Perfetto JSON. Nil (the default) disables tracing
	// with zero overhead and leaves every simulated timing untouched —
	// traced and untraced runs produce identical measurements.
	Trace *trace.Recorder

	// MetricsWindow enables the flight recorder: every measured run
	// records a windowed sim-time series (per-window throughput,
	// recovery counts, queue occupancy, latency percentiles) with this
	// window span — 10 µs is a good default for microsecond devices.
	// Zero (the default) disables recording with zero overhead beyond
	// one nil check per hot-path event. Unlike Trace, the recorder is
	// deterministic under parallel sweep execution and participates in
	// result caching, so it composes with -parallel and -cachedir.
	MetricsWindow sim.Time

	// MetricsMaxWindows bounds the recorder's retained ring. When the
	// ring fills, adjacent windows coalesce pair-wise and the window
	// span doubles, so any run length fits. Zero selects
	// telemetry.DefaultMaxWindows (256); values are rounded up to an
	// even count of at least 2.
	MetricsMaxWindows int

	// MetricsSink, when non-nil, additionally receives every sealed
	// window live as the run executes (kurecd streams these to
	// GET /v1/runs/{id}/metrics). Like Trace it is pure observability:
	// it never affects simulated timing, and it is excluded from
	// result-cache cell keys.
	MetricsSink telemetry.Sink

	// Attribution enables the latency-attribution ledger: every access
	// is decomposed into the internal/attrib phase taxonomy (issue,
	// queue wait, transit, device, completion wait, switch, retry,
	// slop) with exact picosecond accounting, surfaced as a per-cell
	// summary on core.Result. Like the flight recorder it is
	// observational (it never changes a measurement), deterministic
	// under parallel execution, and participates in result caching —
	// attribution-enabled cells never collide with plain ones.
	Attribution bool

	// DescriptorBytes is the size of one software-queue request
	// descriptor: "the address to read, and the target address where
	// the response data is to be stored" (§IV-A) — two 8-byte words.
	DescriptorBytes int

	// CompletionBytes is the size of one completion-queue update.
	CompletionBytes int

	// SWQBatchOverhead is the fixed per-batch software cost of the
	// application-managed queue path: the scheduler transition and the
	// doorbell-request flag check, beyond the raw context switch.
	SWQBatchOverhead sim.Time

	// SWQPerAccessOverhead is the marginal software cost of each
	// descriptor within a batch: writing the descriptor, advancing the
	// ring indices, matching and consuming its completion. Together
	// with SWQBatchOverhead it is "the overhead of software queue
	// management [that] manifests itself as a major bottleneck"
	// (§III-A); the split is calibrated so the SWQ peaks land at the
	// paper's 50% (MLP 1) and 45% (MLP 2) of the matching DRAM
	// baselines (§V-C) — the per-descriptor term dominates, matching
	// the paper's observation that the overhead grows with MLP "even
	// when the accesses are batched".
	SWQPerAccessOverhead sim.Time

	// DoorbellMMIO is the cost of the uncached MMIO doorbell write. It
	// is paid only when the doorbell-request flag is set (§III-A).
	DoorbellMMIO sim.Time

	// SWQAlwaysDoorbell disables the doorbell-request-flag optimization
	// for ablations: every batch submission rings the MMIO doorbell, as
	// in the naive design the paper found "strictly inferior" (§III-A).
	SWQAlwaysDoorbell bool

	// ---- Kernel-managed queues (§III-A; dismissed analytically by the
	// paper, quantified here) ----

	// SyscallCost is the user/kernel crossing cost, paid on entry and
	// exit of each I/O system call.
	SyscallCost sim.Time

	// KernelCtxSwitch is a kernel-mode thread context switch. The paper
	// cites Li et al. [7]: "from several to more than a thousand
	// microseconds"; 2 us is the optimistic floor.
	KernelCtxSwitch sim.Time

	// InterruptCost is interrupt delivery plus handler execution for a
	// device completion.
	InterruptCost sim.Time

	// ---- Hardware multithreading (§III-B) ----

	// SMTContexts is the number of hardware contexts per core in the
	// SMT on-demand model: "only two contexts per core available in the
	// majority of today's commodity server hardware". The testbed
	// disabled hyperthreading, so this is used only by the SMT
	// extension experiment.
	SMTContexts int

	// ---- Device latency distribution (extension) ----

	// DeviceLatencyTailProb is the probability that a device access is
	// a slow outlier (e.g. a flash read behind a GC or erase); zero in
	// the paper's fixed-latency emulator.
	DeviceLatencyTailProb float64

	// DeviceLatencyTailFactor multiplies DeviceLatency for outliers.
	DeviceLatencyTailFactor float64

	// CompletionPoll is the cost of one polling sweep of the completion
	// queue when no threads are ready (§IV-B: "The scheduler polls the
	// completion queue only when no threads remain in the ready state").
	CompletionPoll sim.Time

	// ---- Fault injection and recovery (robustness extension) ----

	// Faults is the deterministic fault plan injected into the device,
	// PCIe, and software-queue layers. The zero value injects nothing
	// and leaves every code path exactly as the fault-free model.
	Faults fault.Plan

	// AccessTimeout is the host's per-access timeout before a retry;
	// zero selects the automatic default of 16 x DeviceLatency (see
	// EffectiveAccessTimeout). NVMe-class stacks use timeouts well
	// above the typical latency so clean tail accesses never retry.
	AccessTimeout sim.Time

	// RetryBackoffFactor multiplies the timeout on each successive
	// retry of one access (exponential backoff).
	RetryBackoffFactor float64

	// RetryTimeoutCap bounds the backed-off per-attempt timeout: once
	// the exponential growth reaches the cap, later attempts use the
	// cap. Zero (the default) leaves the backoff uncapped — the
	// historical behavior.
	RetryTimeoutCap sim.Time

	// MaxRetries bounds the retries per access; past it the access is
	// abandoned and the host delivers a zero-filled line (graceful
	// degradation, accounted in Diagnostics).
	MaxRetries int

	// PCIeReplayPenalty is the link-level recovery cost of a corrupted
	// TLP beyond its retransmission time: the replay-buffer turnaround
	// of the data-link layer.
	PCIeReplayPenalty sim.Time

	// CQBackpressureDelay is how long the device defers a completion
	// post when the host completion queue is at the fault plan's
	// capacity bound.
	CQBackpressureDelay sim.Time
}

// Default returns the calibrated configuration of the paper's testbed
// with a 1 µs device.
func Default() Config {
	return Config{
		CPUFreqGHz:              2.3,
		IssueWidth:              4,
		WindowSize:              144,
		WorkIPC:                 1.4,
		LFBPerCore:              10,
		Cores:                   1,
		DRAMLatency:             80 * sim.Nanosecond,
		DRAMMaxOutstanding:      48,
		DRAMIssueGap:            25 * sim.Nanosecond,
		ChipQueueMMIO:           14,
		PCIeBandwidth:           4e9,
		PCIeHeaderBytes:         24,
		PCIePropagation:         400 * sim.Nanosecond,
		DeviceLatency:           1 * sim.Microsecond,
		ReplayWindow:            64,
		FetchBurst:              8,
		HostMemLatency:          80 * sim.Nanosecond,
		CtxSwitch:               30 * sim.Nanosecond,
		PrefetchIssue:           1 * sim.Nanosecond,
		WriteIssue:              1 * sim.Nanosecond,
		StoreBufferEntries:      42,
		DeviceCacheWays:         8,
		DescriptorBytes:         16,
		CompletionBytes:         16,
		SWQBatchOverhead:        25 * sim.Nanosecond,
		SWQPerAccessOverhead:    78 * sim.Nanosecond,
		DoorbellMMIO:            250 * sim.Nanosecond,
		CompletionPoll:          15 * sim.Nanosecond,
		SyscallCost:             150 * sim.Nanosecond,
		KernelCtxSwitch:         2 * sim.Microsecond,
		InterruptCost:           1 * sim.Microsecond,
		SMTContexts:             2,
		DeviceLatencyTailFactor: 10,
		RetryBackoffFactor:      2,
		MaxRetries:              4,
		PCIeReplayPenalty:       500 * sim.Nanosecond,
		CQBackpressureDelay:     200 * sim.Nanosecond,
	}
}

// Presets for the emerging-device classes the paper's introduction
// motivates (§I-II). Each returns the default host with the device's
// characteristic latency and an attachment that can physically carry it.

// FlashDevice models a fast NVMe-class flash read tier: "Flash memories
// (latencies in the tens of microseconds)" (§I).
func FlashDevice() Config {
	return Default().WithLatency(25 * sim.Microsecond)
}

// RDMADevice models a fast-network remote-memory access: "40-100 Gb/s
// Infiniband and Ethernet networks (single-digit microseconds)" (§I).
func RDMADevice() Config {
	c := Default().WithLatency(3 * sim.Microsecond)
	c.PCIeBandwidth = 12.5e9 // 100 Gb/s fabric
	return c
}

// XPointDevice models a 3D XPoint-class NVM: "hundreds of nanoseconds"
// (§I). Its latency sits below the PCIe round trip, so the preset
// attaches it to the memory interconnect — exactly the integration the
// paper recommends for such devices (§V-B).
func XPointDevice() Config {
	return Default().AsMemBus().WithLatency(350 * sim.Nanosecond)
}

// AsMemBus returns a copy of c with the device moved from the PCIe slot
// to the memory interconnect — the direction the paper suggests
// (§V-B: "integrating microsecond-latency devices on the memory
// interconnect ... may be a step in the right direction"). The link
// gains DDR-class bandwidth and latency, light framing, and the
// DRAM-path chip-level queue depth (>=48) instead of the PCIe path's 14.
func (c Config) AsMemBus() Config {
	c.PCIeBandwidth = 20e9                  // one DDR4 channel class
	c.PCIePropagation = 60 * sim.Nanosecond // on-package interconnect
	c.PCIeHeaderBytes = 8                   // command/address framing
	c.ChipQueueMMIO = c.DRAMMaxOutstanding
	return c
}

// WithLatency returns a copy of c with the device latency replaced; the
// paper sweeps 1, 2 and 4 µs.
func (c Config) WithLatency(l sim.Time) Config {
	c.DeviceLatency = l
	return c
}

// WithCores returns a copy of c using n cores.
func (c Config) WithCores(n int) Config {
	c.Cores = n
	return c
}

// CycleTime returns the duration of one core clock cycle.
func (c Config) CycleTime() sim.Time {
	return sim.FromNanoseconds(1.0 / c.CPUFreqGHz)
}

// WorkTime returns the core-occupancy time of a block of n dependent
// "work" instructions retiring at WorkIPC.
func (c Config) WorkTime(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	cycles := float64(n) / c.WorkIPC
	return sim.FromNanoseconds(cycles / c.CPUFreqGHz)
}

// TLPTime returns the transmission time of one PCIe transaction-layer
// packet carrying payload bytes (header added here).
func (c Config) TLPTime(payload int) sim.Time {
	bytes := float64(payload + c.PCIeHeaderBytes)
	return sim.FromSeconds(bytes / c.PCIeBandwidth)
}

// DeviceInternalDelay returns the delay the emulator's delay module
// applies on the MMIO path so that the host-observed latency equals
// DeviceLatency including the PCIe round trip (§IV-A). The response
// transmission time for one cache line is part of the round trip.
func (c Config) DeviceInternalDelay() sim.Time {
	return c.InternalDelayFor(c.DeviceLatency)
}

// InternalDelayFor is DeviceInternalDelay for a per-request latency —
// used when the latency-tail extension draws outlier latencies.
func (c Config) InternalDelayFor(latency sim.Time) sim.Time {
	rtt := 2*c.PCIePropagation + c.TLPTime(0) + c.TLPTime(CacheLineBytes)
	d := latency - rtt
	if d < 0 {
		return 0
	}
	return d
}

// EffectiveAccessTimeout returns the per-access recovery timeout: the
// configured AccessTimeout, or 16 x DeviceLatency when unset — far
// enough above the Ext.-tail outliers (10x) that a clean slow access
// never triggers a spurious retry.
func (c Config) EffectiveAccessTimeout() sim.Time {
	if c.AccessTimeout > 0 {
		return c.AccessTimeout
	}
	return 16 * c.DeviceLatency
}

// RetryTimeout returns the timeout for the attempt-th try of one access
// (attempt 0 is the initial issue), growing by RetryBackoffFactor per
// retry and clamped at RetryTimeoutCap when one is configured.
func (c Config) RetryTimeout(attempt int) sim.Time {
	t := float64(c.EffectiveAccessTimeout())
	f := c.RetryBackoffFactor
	if f < 1 {
		f = 1
	}
	cap := float64(c.RetryTimeoutCap)
	for i := 0; i < attempt; i++ {
		t *= f
		if cap > 0 && t >= cap {
			t = cap
			break
		}
	}
	if cap > 0 && t > cap {
		t = cap
	}
	return sim.Time(t)
}

// Validate reports the first implausible field, or nil.
func (c Config) Validate() error {
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	switch {
	case c.CPUFreqGHz <= 0:
		return fmt.Errorf("platform: CPU frequency %v GHz must be positive", c.CPUFreqGHz)
	case c.IssueWidth <= 0:
		return fmt.Errorf("platform: issue width %d must be positive", c.IssueWidth)
	case c.WindowSize <= 0:
		return fmt.Errorf("platform: window size %d must be positive", c.WindowSize)
	case c.WorkIPC <= 0 || c.WorkIPC > float64(c.IssueWidth):
		return fmt.Errorf("platform: work IPC %v must be in (0, issue width %d]", c.WorkIPC, c.IssueWidth)
	case c.LFBPerCore <= 0:
		return fmt.Errorf("platform: LFB count %d must be positive", c.LFBPerCore)
	case c.Cores <= 0:
		return fmt.Errorf("platform: core count %d must be positive", c.Cores)
	case c.DRAMLatency <= 0:
		return fmt.Errorf("platform: DRAM latency %v must be positive", c.DRAMLatency)
	case c.DRAMMaxOutstanding <= 0:
		return fmt.Errorf("platform: DRAM outstanding limit %d must be positive", c.DRAMMaxOutstanding)
	case c.DRAMIssueGap < 0:
		return fmt.Errorf("platform: DRAM issue gap %v must be non-negative", c.DRAMIssueGap)
	case c.ChipQueueMMIO <= 0:
		return fmt.Errorf("platform: chip-level MMIO queue %d must be positive", c.ChipQueueMMIO)
	case c.PCIeBandwidth <= 0:
		return fmt.Errorf("platform: PCIe bandwidth %v must be positive", c.PCIeBandwidth)
	case c.PCIeHeaderBytes < 0:
		return fmt.Errorf("platform: PCIe header bytes %d must be non-negative", c.PCIeHeaderBytes)
	case c.PCIePropagation < 0:
		return fmt.Errorf("platform: PCIe propagation %v must be non-negative", c.PCIePropagation)
	case c.DeviceLatency <= 0:
		return fmt.Errorf("platform: device latency %v must be positive", c.DeviceLatency)
	case c.DeviceLatency < 2*c.PCIePropagation:
		return fmt.Errorf("platform: device latency %v below PCIe round trip %v", c.DeviceLatency, 2*c.PCIePropagation)
	case c.ReplayWindow <= 0:
		return fmt.Errorf("platform: replay window %d must be positive", c.ReplayWindow)
	case c.FetchBurst <= 0:
		return fmt.Errorf("platform: fetch burst %d must be positive", c.FetchBurst)
	case c.CtxSwitch < 0:
		return fmt.Errorf("platform: context switch cost %v must be non-negative", c.CtxSwitch)
	case c.WriteIssue < 0:
		return fmt.Errorf("platform: write issue cost %v must be non-negative", c.WriteIssue)
	case c.StoreBufferEntries <= 0:
		return fmt.Errorf("platform: store buffer entries %d must be positive", c.StoreBufferEntries)
	case c.DeviceCacheLines < 0:
		return fmt.Errorf("platform: device cache lines %d must be non-negative", c.DeviceCacheLines)
	case c.DeviceCacheLines > 0 && (c.DeviceCacheWays <= 0 || c.DeviceCacheLines%c.DeviceCacheWays != 0):
		return fmt.Errorf("platform: device cache %d lines not divisible into %d ways", c.DeviceCacheLines, c.DeviceCacheWays)
	case c.DescriptorBytes <= 0:
		return fmt.Errorf("platform: descriptor size %d must be positive", c.DescriptorBytes)
	case c.CompletionBytes <= 0:
		return fmt.Errorf("platform: completion size %d must be positive", c.CompletionBytes)
	case c.SyscallCost < 0:
		return fmt.Errorf("platform: syscall cost %v must be non-negative", c.SyscallCost)
	case c.KernelCtxSwitch < 0:
		return fmt.Errorf("platform: kernel context switch %v must be non-negative", c.KernelCtxSwitch)
	case c.InterruptCost < 0:
		return fmt.Errorf("platform: interrupt cost %v must be non-negative", c.InterruptCost)
	case c.SMTContexts <= 0:
		return fmt.Errorf("platform: SMT contexts %d must be positive", c.SMTContexts)
	case c.DeviceLatencyTailProb < 0 || c.DeviceLatencyTailProb > 1:
		return fmt.Errorf("platform: latency tail probability %v must be in [0,1]", c.DeviceLatencyTailProb)
	case c.DeviceLatencyTailProb > 0 && c.DeviceLatencyTailFactor < 1:
		return fmt.Errorf("platform: latency tail factor %v must be >= 1", c.DeviceLatencyTailFactor)
	case c.AccessTimeout < 0:
		return fmt.Errorf("platform: access timeout %v must be non-negative", c.AccessTimeout)
	case c.RetryBackoffFactor < 1:
		return fmt.Errorf("platform: retry backoff factor %v must be >= 1", c.RetryBackoffFactor)
	case c.MaxRetries < 0:
		return fmt.Errorf("platform: max retries %d must be non-negative", c.MaxRetries)
	case c.RetryTimeoutCap < 0:
		return fmt.Errorf("platform: retry timeout cap %v must be non-negative", c.RetryTimeoutCap)
	case c.PCIeReplayPenalty < 0:
		return fmt.Errorf("platform: PCIe replay penalty %v must be non-negative", c.PCIeReplayPenalty)
	case c.CQBackpressureDelay < 0:
		return fmt.Errorf("platform: CQ backpressure delay %v must be non-negative", c.CQBackpressureDelay)
	case c.MetricsWindow < 0:
		return fmt.Errorf("platform: metrics window %v must be non-negative", c.MetricsWindow)
	case c.MetricsMaxWindows < 0:
		return fmt.Errorf("platform: metrics max windows %d must be non-negative", c.MetricsMaxWindows)
	case c.MetricsSink != nil && c.MetricsWindow <= 0:
		return fmt.Errorf("platform: metrics sink set but metrics window disabled")
	}
	return nil
}
