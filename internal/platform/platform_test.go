package platform

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesPaperConstants(t *testing.T) {
	c := Default()
	if c.LFBPerCore != 10 {
		t.Errorf("LFBPerCore = %d, paper says 10 (§V-B)", c.LFBPerCore)
	}
	if c.ChipQueueMMIO != 14 {
		t.Errorf("ChipQueueMMIO = %d, paper says 14 (§V-B)", c.ChipQueueMMIO)
	}
	if c.FetchBurst != 8 {
		t.Errorf("FetchBurst = %d, paper says 8 (§IV-A)", c.FetchBurst)
	}
	if c.PCIeHeaderBytes != 24 {
		t.Errorf("PCIeHeaderBytes = %d, paper says 24 (§V-C)", c.PCIeHeaderBytes)
	}
	if c.CtxSwitch < 20*sim.Nanosecond || c.CtxSwitch > 50*sim.Nanosecond {
		t.Errorf("CtxSwitch = %v, paper says 20-50ns (§IV-B)", c.CtxSwitch)
	}
	if got := 2 * c.PCIePropagation; got != 800*sim.Nanosecond {
		t.Errorf("PCIe round trip = %v, paper says ~800ns (§IV-A)", got)
	}
	if c.DRAMMaxOutstanding < 48 {
		t.Errorf("DRAMMaxOutstanding = %d, paper says at least 48 (§V-B)", c.DRAMMaxOutstanding)
	}
}

func TestCycleAndWorkTime(t *testing.T) {
	c := Default()
	cyc := c.CycleTime()
	// 2.3 GHz -> ~434.78 ps.
	if cyc < 434*sim.Picosecond || cyc > 435*sim.Picosecond {
		t.Errorf("cycle time %v, want ~434.8ps", cyc)
	}
	// 100 instructions at IPC 1.4 -> 71.43 cycles -> ~31.06 ns.
	w := c.WorkTime(100)
	if w < 30*sim.Nanosecond || w > 32*sim.Nanosecond {
		t.Errorf("WorkTime(100) = %v, want ~31ns", w)
	}
	if c.WorkTime(0) != 0 || c.WorkTime(-5) != 0 {
		t.Error("WorkTime of non-positive count should be 0")
	}
	// Monotone in n.
	if c.WorkTime(200) <= w {
		t.Error("WorkTime not monotone")
	}
}

func TestTLPTime(t *testing.T) {
	c := Default()
	// 64B payload + 24B header at 4 GB/s = 22 ns.
	got := c.TLPTime(64)
	if got != 22*sim.Nanosecond {
		t.Errorf("TLPTime(64) = %v, want 22ns", got)
	}
	// Header-only packet: 6 ns.
	if got := c.TLPTime(0); got != 6*sim.Nanosecond {
		t.Errorf("TLPTime(0) = %v, want 6ns", got)
	}
}

func TestPCIeHeaderOverheadMatchesPaper(t *testing.T) {
	// "there is a 24-byte PCIe packet header added to each transaction,
	// a 38% overhead" (§V-C) — 24/64 = 37.5%.
	c := Default()
	overhead := float64(c.PCIeHeaderBytes) / float64(CacheLineBytes)
	if overhead < 0.37 || overhead > 0.38 {
		t.Errorf("header overhead %.3f, want ~0.375", overhead)
	}
}

func TestDeviceInternalDelay(t *testing.T) {
	c := Default() // 1us device
	d := c.DeviceInternalDelay()
	rtt := 2*c.PCIePropagation + c.TLPTime(0) + c.TLPTime(CacheLineBytes)
	if d+rtt != c.DeviceLatency {
		t.Errorf("internal delay %v + rtt %v != configured %v", d, rtt, c.DeviceLatency)
	}
	// A device latency at exactly the RTT floor yields zero internal delay.
	c2 := c.WithLatency(2 * c.PCIePropagation)
	if got := c2.DeviceInternalDelay(); got != 0 {
		t.Errorf("internal delay %v at RTT floor, want 0", got)
	}
}

func TestAsMemBus(t *testing.T) {
	c := Default()
	m := c.AsMemBus()
	if err := m.Validate(); err != nil {
		t.Fatalf("membus config invalid: %v", err)
	}
	if m.PCIeBandwidth <= c.PCIeBandwidth {
		t.Error("membus link not faster")
	}
	if m.PCIePropagation >= c.PCIePropagation {
		t.Error("membus link not lower latency")
	}
	if m.ChipQueueMMIO != c.DRAMMaxOutstanding {
		t.Errorf("membus shared queue %d, want the DRAM-path depth %d", m.ChipQueueMMIO, c.DRAMMaxOutstanding)
	}
	if c.ChipQueueMMIO != 14 {
		t.Error("AsMemBus mutated the receiver")
	}
}

func TestInternalDelayFor(t *testing.T) {
	c := Default()
	if got := c.InternalDelayFor(c.DeviceLatency); got != c.DeviceInternalDelay() {
		t.Errorf("InternalDelayFor(DeviceLatency) = %v, want %v", got, c.DeviceInternalDelay())
	}
	if got := c.InternalDelayFor(10 * c.DeviceLatency); got <= c.DeviceInternalDelay() {
		t.Error("tail latency did not increase internal delay")
	}
	if got := c.InternalDelayFor(0); got != 0 {
		t.Errorf("InternalDelayFor(0) = %v, want clamped to 0", got)
	}
}

func TestWithLatencyAndWithCoresAreCopies(t *testing.T) {
	c := Default()
	c2 := c.WithLatency(4 * sim.Microsecond).WithCores(8)
	if c.DeviceLatency != 1*sim.Microsecond || c.Cores != 1 {
		t.Error("WithLatency/WithCores mutated the receiver")
	}
	if c2.DeviceLatency != 4*sim.Microsecond || c2.Cores != 8 {
		t.Errorf("copy has latency %v cores %d", c2.DeviceLatency, c2.Cores)
	}
}

func TestValidateCatchesEachBadField(t *testing.T) {
	mutations := []struct {
		name    string
		mutate  func(*Config)
		keyword string
	}{
		{"freq", func(c *Config) { c.CPUFreqGHz = 0 }, "frequency"},
		{"width", func(c *Config) { c.IssueWidth = 0 }, "issue width"},
		{"window", func(c *Config) { c.WindowSize = -1 }, "window"},
		{"ipc-zero", func(c *Config) { c.WorkIPC = 0 }, "IPC"},
		{"ipc-above-width", func(c *Config) { c.WorkIPC = 5 }, "IPC"},
		{"lfb", func(c *Config) { c.LFBPerCore = 0 }, "LFB"},
		{"cores", func(c *Config) { c.Cores = 0 }, "core count"},
		{"dram", func(c *Config) { c.DRAMLatency = 0 }, "DRAM latency"},
		{"dram-out", func(c *Config) { c.DRAMMaxOutstanding = 0 }, "DRAM outstanding"},
		{"chipq", func(c *Config) { c.ChipQueueMMIO = 0 }, "MMIO queue"},
		{"bw", func(c *Config) { c.PCIeBandwidth = 0 }, "bandwidth"},
		{"hdr", func(c *Config) { c.PCIeHeaderBytes = -1 }, "header"},
		{"prop", func(c *Config) { c.PCIePropagation = -1 }, "propagation"},
		{"devlat", func(c *Config) { c.DeviceLatency = 0 }, "device latency"},
		{"devlat-below-rtt", func(c *Config) { c.DeviceLatency = 100 * sim.Nanosecond }, "round trip"},
		{"replay", func(c *Config) { c.ReplayWindow = 0 }, "replay window"},
		{"burst", func(c *Config) { c.FetchBurst = 0 }, "fetch burst"},
		{"ctx", func(c *Config) { c.CtxSwitch = -1 }, "context switch"},
		{"desc", func(c *Config) { c.DescriptorBytes = 0 }, "descriptor"},
		{"compl", func(c *Config) { c.CompletionBytes = 0 }, "completion"},
		{"gap", func(c *Config) { c.DRAMIssueGap = -1 }, "issue gap"},
		{"write-issue", func(c *Config) { c.WriteIssue = -1 }, "write issue"},
		{"storebuf", func(c *Config) { c.StoreBufferEntries = 0 }, "store buffer"},
		{"syscall", func(c *Config) { c.SyscallCost = -1 }, "syscall"},
		{"kctx", func(c *Config) { c.KernelCtxSwitch = -1 }, "kernel context switch"},
		{"irq", func(c *Config) { c.InterruptCost = -1 }, "interrupt"},
		{"smt", func(c *Config) { c.SMTContexts = 0 }, "SMT contexts"},
		{"tail-prob", func(c *Config) { c.DeviceLatencyTailProb = 1.5 }, "tail probability"},
		{"tail-factor", func(c *Config) { c.DeviceLatencyTailProb = 0.1; c.DeviceLatencyTailFactor = 0.5 }, "tail factor"},
		{"access-timeout", func(c *Config) { c.AccessTimeout = -1 }, "access timeout"},
		{"backoff", func(c *Config) { c.RetryBackoffFactor = 0.5 }, "backoff"},
		{"retries", func(c *Config) { c.MaxRetries = -1 }, "max retries"},
		{"replay-penalty", func(c *Config) { c.PCIeReplayPenalty = -1 }, "replay penalty"},
		{"cq-delay", func(c *Config) { c.CQBackpressureDelay = -1 }, "backpressure"},
		{"fault-prob", func(c *Config) { c.Faults.DropCompletionProb = 2 }, "probability"},
		{"fault-stall", func(c *Config) { c.Faults.LinkStallTime = -1 }, "stall"},
		{"fault-cq", func(c *Config) { c.Faults.CQCapacity = -1 }, "capacity"},
	}
	for _, m := range mutations {
		c := Default()
		m.mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted bad config", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.keyword) {
			t.Errorf("%s: error %q does not mention %q", m.name, err, m.keyword)
		}
	}
}

func TestRecoveryTimeouts(t *testing.T) {
	c := Default() // 1us device, backoff 2
	if got := c.EffectiveAccessTimeout(); got != 16*sim.Microsecond {
		t.Errorf("auto timeout = %v, want 16us (16x device latency)", got)
	}
	c.AccessTimeout = 5 * sim.Microsecond
	if got := c.EffectiveAccessTimeout(); got != 5*sim.Microsecond {
		t.Errorf("explicit timeout = %v, want 5us", got)
	}
	if got := c.RetryTimeout(0); got != 5*sim.Microsecond {
		t.Errorf("RetryTimeout(0) = %v, want the base timeout", got)
	}
	if got := c.RetryTimeout(3); got != 40*sim.Microsecond {
		t.Errorf("RetryTimeout(3) = %v, want 40us (x2 backoff)", got)
	}
	// The auto default must clear the Ext.-tail outliers (10x) so clean
	// slow accesses never retry.
	d := Default()
	tail := sim.Time(float64(d.DeviceLatency) * d.DeviceLatencyTailFactor)
	if d.EffectiveAccessTimeout() <= tail {
		t.Errorf("auto timeout %v not above the %v latency tail", d.EffectiveAccessTimeout(), tail)
	}
}

// TestRetryTimeoutBackoffTable pins the per-attempt timeout schedule the
// recovery paths rely on: exponential growth by RetryBackoffFactor,
// monotone non-decreasing in the attempt number, honoring
// RetryTimeoutCap once configured (including a cap below the base
// timeout), and flooring sub-unity factors at constant backoff.
func TestRetryTimeoutBackoffTable(t *testing.T) {
	const us = sim.Microsecond
	cases := []struct {
		name    string
		base    sim.Time
		factor  float64
		cap     sim.Time
		want    []sim.Time // expected RetryTimeout(0..len-1)
		capped  bool       // schedule must reach and then hold the cap
		holdsAt sim.Time
	}{
		{
			name: "uncapped doubling", base: 4 * us, factor: 2,
			want: []sim.Time{4 * us, 8 * us, 16 * us, 32 * us, 64 * us},
		},
		{
			name: "cap hit mid-schedule", base: 4 * us, factor: 2, cap: 20 * us,
			want:   []sim.Time{4 * us, 8 * us, 16 * us, 20 * us, 20 * us, 20 * us},
			capped: true, holdsAt: 20 * us,
		},
		{
			name: "cap below base pins every attempt", base: 8 * us, factor: 2, cap: 3 * us,
			want:   []sim.Time{3 * us, 3 * us, 3 * us},
			capped: true, holdsAt: 3 * us,
		},
		{
			name: "unit factor is constant", base: 6 * us, factor: 1,
			want: []sim.Time{6 * us, 6 * us, 6 * us, 6 * us},
		},
		{
			name: "sub-unity factor floors to constant", base: 6 * us, factor: 0.25,
			want: []sim.Time{6 * us, 6 * us, 6 * us},
		},
		{
			name: "gentle factor stays monotone", base: 10 * us, factor: 1.5, cap: 30 * us,
			want:   []sim.Time{10 * us, 15 * us, 22500 * sim.Nanosecond, 30 * us, 30 * us},
			capped: true, holdsAt: 30 * us,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Default()
			c.AccessTimeout = tc.base
			c.RetryBackoffFactor = tc.factor
			c.RetryTimeoutCap = tc.cap
			prev := sim.Time(0)
			for attempt, want := range tc.want {
				got := c.RetryTimeout(attempt)
				if got != want {
					t.Errorf("RetryTimeout(%d) = %v, want %v", attempt, got, want)
				}
				if got < prev {
					t.Errorf("RetryTimeout(%d) = %v < RetryTimeout(%d) = %v: backoff not monotone",
						attempt, got, attempt-1, prev)
				}
				if tc.cap > 0 && got > tc.cap {
					t.Errorf("RetryTimeout(%d) = %v exceeds cap %v", attempt, got, tc.cap)
				}
				prev = got
			}
			if tc.capped && prev != tc.holdsAt {
				t.Errorf("schedule tail = %v, want held at cap %v", prev, tc.holdsAt)
			}
		})
	}
}
