package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestNilRecorderIsNoOp pins the zero-overhead-when-disabled contract:
// every operation on a nil recorder, nil run, zero track, and zero span
// must be safe and record nothing.
func TestNilRecorderIsNoOp(t *testing.T) {
	var rec *Recorder
	if rec.Events() != 0 || rec.Runs() != 0 {
		t.Error("nil recorder reports non-zero contents")
	}
	run := rec.NewRun("disabled")
	if run != nil {
		t.Fatal("NewRun on a nil recorder must return a nil (disabled) run")
	}
	if run.Events() != 0 || run.Label() != "" {
		t.Error("nil run reports non-zero contents")
	}
	run.Counter(1, "lfb/core0", 3)

	tk := run.NewTrack("core0")
	if tk.Active() {
		t.Error("track from a nil run must be inactive")
	}
	tk.Instant(1, "x", "")
	tk.Slice(1, 2, "tlp", "")

	sp := tk.BeginSpan(1, "access", "")
	if sp.Active() {
		t.Error("span from an inactive track must be inactive")
	}
	sp.Point(2, "lfb-acquired")
	sp.End(3)

	if got := rec.String(); got != emptyTrace {
		t.Errorf("nil recorder serialization = %q, want the empty trace", got)
	}
	sum := rec.Summary()
	if sum.Events != 0 || len(sum.Runs) != 0 {
		t.Error("nil recorder summary must be empty")
	}
}

// record builds a small but representative trace: two runs, spans with
// points, a slice, an instant, and counters.
func record() *Recorder {
	rec := NewRecorder()
	run := rec.NewRun("prefetch/ubench lat=1.000us cores=1 threads=2")
	core0 := run.NewTrack("core0")
	down := run.NewTrack("pcie-down")

	run.Counter(0, "lfb/core0", 0)
	sp := core0.BeginSpan(100*sim.Nanosecond, "access", Hex("addr", 0x40))
	run.Counter(100*sim.Nanosecond, "lfb/core0", 1)
	sp.Point(110*sim.Nanosecond, "lfb-acquired")
	down.Slice(120*sim.Nanosecond, 130*sim.Nanosecond, "tlp", Int("payload", 0))
	sp.Point(150*sim.Nanosecond, "serve-replay")
	down.Instant(160*sim.Nanosecond, "fault-link-stall", "")
	sp.End(1100 * sim.Nanosecond)
	run.Counter(1100*sim.Nanosecond, "lfb/core0", 0)

	run2 := rec.NewRun("swqueue/ubench lat=1.000us cores=1 threads=2")
	c := run2.NewTrack("core0")
	sp2 := c.BeginSpan(0, "access", "")
	sp2.Point(5*sim.Nanosecond, "desc-fetched")
	sp2.End(2 * sim.Microsecond)
	return rec
}

func TestWriterIsDeterministic(t *testing.T) {
	a, b := record().String(), record().String()
	if a != b {
		t.Fatal("identical recordings serialized to different bytes")
	}
	if !strings.HasPrefix(a, `{"displayTimeUnit":"ns","traceEvents":[`) {
		t.Errorf("missing trace-event envelope: %.60q", a)
	}
	// Exact decimal microsecond timestamps — no float formatting.
	if !strings.Contains(a, `"ts":0.100000`) {
		t.Errorf("span begin at 100ns should serialize as ts 0.100000 us:\n%s", a)
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	rec := record()
	live := rec.Summary()
	parsed, err := ReadSummary(strings.NewReader(rec.String()))
	if err != nil {
		t.Fatalf("exported trace failed its own schema check: %v", err)
	}
	if live.Events != parsed.Events {
		t.Errorf("event count: live %d, parsed %d", live.Events, parsed.Events)
	}
	if len(parsed.Runs) != 2 {
		t.Fatalf("parsed %d runs, want 2", len(parsed.Runs))
	}
	for i := range parsed.Runs {
		l, p := live.Runs[i], parsed.Runs[i]
		if l.Label != p.Label || l.Spans != p.Spans || l.Points != p.Points ||
			l.Slices != p.Slices || l.Instants != p.Instants ||
			l.CounterSamples != p.CounterSamples ||
			l.MinDurPs != p.MinDurPs || l.MaxDurPs != p.MaxDurPs || l.TotalDurPs != p.TotalDurPs {
			t.Errorf("run %d: live %+v != parsed %+v", i, l, p)
		}
	}
	if parsed.Runs[0].Spans != 1 || parsed.Runs[0].OpenSpans != 0 {
		t.Errorf("run 0 spans = %d open %d, want 1 closed", parsed.Runs[0].Spans, parsed.Runs[0].OpenSpans)
	}
	if parsed.Runs[0].MinDurPs != int64(1000*sim.Nanosecond) {
		t.Errorf("span duration %dps, want 1000ns", parsed.Runs[0].MinDurPs)
	}
	if parsed.Runs[0].PointCounts["lfb-acquired"] != 1 {
		t.Errorf("lfb-acquired edge missing: %v", parsed.Runs[0].PointCounts)
	}
	if len(parsed.Runs[0].CounterTracks) != 1 || parsed.Runs[0].CounterTracks[0] != "lfb/core0" {
		t.Errorf("counter tracks = %v, want [lfb/core0]", parsed.Runs[0].CounterTracks)
	}
}

func TestOpenSpanReported(t *testing.T) {
	rec := NewRecorder()
	run := rec.NewRun("r")
	tk := run.NewTrack("core0")
	tk.BeginSpan(0, "access", "")
	sum, err := ReadSummary(strings.NewReader(rec.String()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs[0].OpenSpans != 1 || sum.Runs[0].Spans != 0 {
		t.Errorf("open=%d closed=%d, want 1 open", sum.Runs[0].OpenSpans, sum.Runs[0].Spans)
	}
}

func TestReadSummaryRejectsMalformedTraces(t *testing.T) {
	cases := map[string]string{
		"invalid JSON":       `{"traceEvents":[`,
		"unmatched end":      `{"traceEvents":[{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"r"}},{"ph":"e","pid":1,"tid":1,"ts":1,"cat":"access","id":"7","name":"access"}]}`,
		"missing ts":         `{"traceEvents":[{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"r"}},{"ph":"i","pid":1,"tid":1,"name":"x"}]}`,
		"counter sans value": `{"traceEvents":[{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"r"}},{"ph":"C","pid":1,"ts":1,"name":"lfb","args":{}}]}`,
		"span sans id":       `{"traceEvents":[{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"r"}},{"ph":"b","pid":1,"tid":1,"ts":1,"cat":"access","name":"access"}]}`,
		"unnamed process":    `{"traceEvents":[{"ph":"C","pid":9,"ts":1,"name":"lfb","args":{"value":2}}]}`,
		"unknown phase":      `{"traceEvents":[{"ph":"Z","pid":1,"ts":1,"name":"x"}]}`,
		"negative dur":       `{"traceEvents":[{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"r"}},{"ph":"X","pid":1,"tid":1,"ts":5,"dur":-1,"name":"tlp"}]}`,
	}
	for label, raw := range cases {
		if _, err := ReadSummary(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: validation passed, want error", label)
		}
	}
}

func TestArgHelpers(t *testing.T) {
	if got := Hex("addr", 0x40); got != `"addr":"0x40"` {
		t.Errorf("Hex = %s", got)
	}
	if got := Int("payload", 64); got != `"payload":64` {
		t.Errorf("Int = %s", got)
	}
}

func TestQuoteEscapesControlAndQuotes(t *testing.T) {
	rec := NewRecorder()
	run := rec.NewRun("label \"x\"\n")
	tk := run.NewTrack("t")
	tk.Instant(0, `a\b`, "")
	if _, err := ReadSummary(strings.NewReader(rec.String())); err != nil {
		t.Fatalf("escaped trace failed to parse: %v", err)
	}
}
