package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Summary condenses a trace into per-run span and counter statistics —
// the payload of `kurec trace` and of the CI schema check. It can be
// computed directly from a live Recorder or parsed back from an exported
// JSON file; both paths produce the same numbers.
type Summary struct {
	Events int
	Runs   []RunSummary
}

// RunSummary aggregates one run (one trace process).
type RunSummary struct {
	Label          string
	Tracks         []string // thread-track names, in creation order
	Spans          int      // completed access spans
	OpenSpans      int      // spans begun but never ended
	Points         int      // span edges ('n' events)
	Slices         int      // complete slices ('X', e.g. PCIe TLPs)
	Instants       int
	CounterTracks  []string // distinct counter names, sorted
	CounterSamples int

	// Completed-span duration statistics, picoseconds.
	MinDurPs   int64
	MaxDurPs   int64
	TotalDurPs int64

	// PointCounts tallies span edges by name ("lfb-acquired",
	// "timeout", ...), the per-access lifecycle breakdown.
	PointCounts map[string]int
}

// MeanDurPs returns the mean completed-span duration in picoseconds.
func (rs RunSummary) MeanDurPs() int64 {
	if rs.Spans == 0 {
		return 0
	}
	return rs.TotalDurPs / int64(rs.Spans)
}

// summaryBuilder accumulates one run's summary as events stream by.
type summaryBuilder struct {
	rs   RunSummary
	open map[uint64]int64 // span id -> begin ts (ps)
	ctr  map[string]bool
}

func newSummaryBuilder() *summaryBuilder {
	return &summaryBuilder{
		open: map[uint64]int64{},
		ctr:  map[string]bool{},
		rs:   RunSummary{PointCounts: map[string]int{}},
	}
}

func (b *summaryBuilder) begin(id uint64, ts int64) { b.open[id] = ts }

func (b *summaryBuilder) point(name string) {
	b.rs.Points++
	b.rs.PointCounts[name]++
}

func (b *summaryBuilder) end(id uint64, ts int64) error {
	begin, ok := b.open[id]
	if !ok {
		return fmt.Errorf("span end for id %d without a begin", id)
	}
	delete(b.open, id)
	dur := ts - begin
	if dur < 0 {
		return fmt.Errorf("span %d ends %dps before it begins", id, -dur)
	}
	if b.rs.Spans == 0 || dur < b.rs.MinDurPs {
		b.rs.MinDurPs = dur
	}
	if dur > b.rs.MaxDurPs {
		b.rs.MaxDurPs = dur
	}
	b.rs.TotalDurPs += dur
	b.rs.Spans++
	return nil
}

func (b *summaryBuilder) counter(name string) {
	b.rs.CounterSamples++
	b.ctr[name] = true
}

func (b *summaryBuilder) finish() RunSummary {
	b.rs.OpenSpans = len(b.open)
	for name := range b.ctr {
		b.rs.CounterTracks = append(b.rs.CounterTracks, name)
	}
	sort.Strings(b.rs.CounterTracks)
	return b.rs
}

// Summary computes the live recorder's summary without serializing.
func (r *Recorder) Summary() Summary {
	var s Summary
	if r == nil {
		return s
	}
	for _, run := range r.runs {
		b := newSummaryBuilder()
		b.rs.Label = run.label
		for i := range run.events {
			e := &run.events[i]
			s.Events++
			switch e.ph {
			case 'M':
				if e.name == "thread_name" {
					// args is `"name":"..."`; strip the rendered quoting.
					var meta struct {
						Name string `json:"name"`
					}
					json.Unmarshal([]byte("{"+e.args+"}"), &meta) //nolint:errcheck // we rendered it
					b.rs.Tracks = append(b.rs.Tracks, meta.Name)
				}
			case 'b':
				b.begin(e.id, int64(e.ts))
			case 'n':
				b.point(e.name)
			case 'e':
				b.end(e.id, int64(e.ts)) //nolint:errcheck // recorder pairs are well-formed
			case 'C':
				b.counter(e.name)
			case 'X':
				b.rs.Slices++
			case 'i':
				b.rs.Instants++
			}
		}
		s.Runs = append(s.Runs, b.finish())
	}
	return s
}

// jsonEvent is the parsed form of one trace-event record.
type jsonEvent struct {
	Ph   string                 `json:"ph"`
	Pid  int64                  `json:"pid"`
	Tid  int64                  `json:"tid"`
	Ts   *float64               `json:"ts"`
	Dur  *float64               `json:"dur"`
	Cat  string                 `json:"cat"`
	ID   string                 `json:"id"`
	Name string                 `json:"name"`
	Args map[string]interface{} `json:"args"`
}

type jsonTrace struct {
	DisplayTimeUnit string      `json:"displayTimeUnit"`
	TraceEvents     []jsonEvent `json:"traceEvents"`
}

// ReadSummary parses an exported trace, validates it against the
// trace-event schema (required fields per phase, matched async
// begin/end pairs, named processes), and returns its summary. A trace
// that fails validation returns a descriptive error — this is the CI
// schema gate.
func ReadSummary(r io.Reader) (Summary, error) {
	var s Summary
	var tr jsonTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return s, fmt.Errorf("trace: invalid JSON: %w", err)
	}
	builders := map[int64]*summaryBuilder{}
	var pids []int64
	get := func(pid int64) *summaryBuilder {
		b, ok := builders[pid]
		if !ok {
			b = newSummaryBuilder()
			builders[pid] = b
			pids = append(pids, pid)
		}
		return b
	}
	toPs := func(us float64) int64 { return int64(math.Round(us * 1e6)) }

	for i, e := range tr.TraceEvents {
		s.Events++
		fail := func(format string, args ...interface{}) (Summary, error) {
			return s, fmt.Errorf("trace: event %d (ph %q): %s", i, e.Ph, fmt.Sprintf(format, args...))
		}
		if len(e.Ph) != 1 {
			return fail("missing or malformed phase")
		}
		if e.Ph != "M" && e.Ts == nil {
			return fail("missing ts")
		}
		b := get(e.Pid)
		switch e.Ph[0] {
		case 'M':
			name, _ := e.Args["name"].(string)
			if name == "" {
				return fail("metadata without args.name")
			}
			switch e.Name {
			case "process_name":
				b.rs.Label = name
			case "thread_name":
				b.rs.Tracks = append(b.rs.Tracks, name)
			default:
				return fail("unknown metadata record %q", e.Name)
			}
		case 'b', 'n', 'e':
			if e.Cat == "" || e.ID == "" || e.Name == "" {
				return fail("async event missing cat/id/name")
			}
			var id uint64
			if _, err := fmt.Sscanf(e.ID, "%d", &id); err != nil {
				return fail("non-numeric id %q", e.ID)
			}
			switch e.Ph[0] {
			case 'b':
				b.begin(id, toPs(*e.Ts))
			case 'n':
				b.point(e.Name)
			case 'e':
				if err := b.end(id, toPs(*e.Ts)); err != nil {
					return fail("%v", err)
				}
			}
		case 'C':
			if e.Name == "" {
				return fail("counter without name")
			}
			if _, ok := e.Args["value"].(float64); !ok {
				return fail("counter %q without numeric args.value", e.Name)
			}
			b.counter(e.Name)
		case 'X':
			if e.Dur == nil || *e.Dur < 0 {
				return fail("complete event without non-negative dur")
			}
			b.rs.Slices++
		case 'i':
			b.rs.Instants++
		default:
			return fail("unknown phase")
		}
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		b := builders[pid]
		if b.rs.Label == "" {
			return s, fmt.Errorf("trace: process %d has no process_name metadata", pid)
		}
		s.Runs = append(s.Runs, b.finish())
	}
	return s, nil
}
