// Package trace provides a nanosecond-resolution event recorder for the
// simulated device stack: per-access lifecycle spans (issue → LFB/chip
// queue → PCIe TLP → device service → completion, including the
// timeout/retry/fault edges of internal/fault), resource-occupancy
// counter timelines sampled on state change, and PCIe packet slices.
//
// The recorder exports Chrome trace-event / Perfetto JSON (Export), so a
// trace file drops straight into ui.perfetto.dev or chrome://tracing.
// One Recorder holds one process per simulation run, which lets a whole
// figure sweep land in a single file with every run selectable by label.
//
// Zero overhead when disabled is a hard requirement: every method on a
// nil *Recorder, nil *Run, or zero Track/Span value is a no-op, exactly
// like the nil *fault.Injector idiom, so instrumented code needs no
// conditionals on the hot path (callers guard only the argument
// formatting). Tracing never schedules engine events and never perturbs
// simulated timing: a traced run produces bit-identical measurements to
// an untraced one, and — because the engine is deterministic — the same
// seed always produces a byte-identical trace file.
package trace

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Recorder accumulates trace runs. Create with NewRecorder; a nil
// Recorder is a valid disabled recorder.
type Recorder struct {
	runs   []*Run
	events uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Events returns the total number of trace events recorded across all
// runs — the recorder's overhead counter, surfaced in run diagnostics.
func (r *Recorder) Events() uint64 {
	if r == nil {
		return 0
	}
	return r.events
}

// Runs returns the number of runs recorded so far.
func (r *Recorder) Runs() int {
	if r == nil {
		return 0
	}
	return len(r.runs)
}

// NewRun opens a new trace process named by the run label (e.g.
// "prefetch/ubench lat=1us cores=1 threads=8"). Returns nil — a valid
// disabled run — on a nil recorder.
func (r *Recorder) NewRun(label string) *Run {
	if r == nil {
		return nil
	}
	run := &Run{rec: r, pid: int32(len(r.runs) + 1), label: label}
	r.runs = append(r.runs, run)
	run.meta(0, "process_name", label)
	return run
}

// Run is one simulation run's event stream (one trace process).
type Run struct {
	rec    *Recorder
	pid    int32
	label  string
	tracks int32
	nextID uint64
	events []event
}

// event is one trace-event-format record.
type event struct {
	ph   byte
	ts   sim.Time
	dur  sim.Time // 'X' only
	tid  int32
	id   uint64 // async span id ('b', 'n', 'e')
	val  int64  // counter value ('C')
	name string
	args string // pre-rendered JSON object body (no braces), may be empty
}

// Events returns the number of events this run recorded.
func (r *Run) Events() uint64 {
	if r == nil {
		return 0
	}
	return uint64(len(r.events))
}

// Label returns the run label ("" on a nil run).
func (r *Run) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

func (r *Run) add(e event) {
	r.events = append(r.events, e)
	r.rec.events++
}

func (r *Run) meta(tid int32, kind, name string) {
	r.add(event{ph: 'M', tid: tid, name: kind, args: `"name":` + quote(name)})
}

// NewTrack registers a named thread-like track (a core, a PCIe
// direction) and returns its handle. The zero Track is a valid disabled
// track.
func (r *Run) NewTrack(name string) Track {
	if r == nil {
		return Track{}
	}
	r.tracks++
	t := Track{run: r, tid: r.tracks}
	r.meta(t.tid, "thread_name", name)
	return t
}

// Counter records one sample of a named occupancy/depth counter (e.g.
// "lfb/core0", "chipq", "sq/core3"). Counters are per-run, not
// per-track; each name renders as its own counter track.
func (r *Run) Counter(at sim.Time, name string, value int) {
	if r == nil {
		return
	}
	r.add(event{ph: 'C', ts: at, name: name, val: int64(value)})
}

// Track is one span/slice timeline within a run.
type Track struct {
	run *Run
	tid int32
}

// Active reports whether events on this track are recorded.
func (t Track) Active() bool { return t.run != nil }

// Instant records a point event on the track.
func (t Track) Instant(at sim.Time, name, args string) {
	if t.run == nil {
		return
	}
	t.run.add(event{ph: 'i', ts: at, tid: t.tid, name: name, args: args})
}

// Slice records a complete [start, end] slice — used for PCIe TLP
// transmissions, whose bounds are both known at submission time.
func (t Track) Slice(start, end sim.Time, name, args string) {
	if t.run == nil {
		return
	}
	t.run.add(event{ph: 'X', ts: start, dur: end - start, tid: t.tid, name: name, args: args})
}

// BeginSpan opens an async access-lifecycle span and returns its handle.
// The zero Span is a valid disabled span, so instrumented code can pass
// spans through layers unconditionally.
func (t Track) BeginSpan(at sim.Time, name, args string) Span {
	if t.run == nil {
		return Span{}
	}
	t.run.nextID++
	s := Span{run: t.run, tid: t.tid, id: t.run.nextID}
	t.run.add(event{ph: 'b', ts: at, tid: t.tid, id: s.id, name: name, args: args})
	return s
}

// Span is one in-flight access lifecycle. Spans are values and may be
// copied freely (e.g. into a software-queue descriptor).
type Span struct {
	run *Run
	tid int32
	id  uint64
}

// Active reports whether the span records events.
func (s Span) Active() bool { return s.run != nil }

// Point marks a named edge within the span (e.g. "lfb-acquired",
// "serve-replay", "timeout"). The timestamp is explicit so layers can
// stamp edges at computed times (a delay module's scheduled departure).
func (s Span) Point(at sim.Time, name string) {
	if s.run == nil {
		return
	}
	s.run.add(event{ph: 'n', ts: at, tid: s.tid, id: s.id, name: name})
}

// End closes the span at the given time.
func (s Span) End(at sim.Time) {
	if s.run == nil {
		return
	}
	s.run.add(event{ph: 'e', ts: at, tid: s.tid, id: s.id, name: "access"})
}

// spanCat is the category shared by all access-lifecycle spans; the
// trace-event format matches async begin/instant/end records by
// (category, id).
const spanCat = "access"

// Hex renders one hexadecimal key/value argument pair for span/slice
// args, e.g. Hex("addr", 0x40) == `"addr":"0x40"`. Callers should build
// args only when the receiving track/span is Active.
func Hex(key string, v uint64) string {
	return quote(key) + `:"0x` + strconv.FormatUint(v, 16) + `"`
}

// Int renders one integer key/value argument pair.
func Int(key string, v int64) string {
	return quote(key) + ":" + strconv.FormatInt(v, 10)
}

// WriteTo writes the whole recorder as Chrome trace-event / Perfetto
// JSON. The output is a pure function of the recorded events: the same
// simulation seed yields byte-identical files.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		n, err := io.WriteString(w, emptyTrace)
		return int64(n), err
	}
	bw := &countWriter{w: w}
	buf := make([]byte, 0, 256)
	if _, err := io.WriteString(bw, `{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return bw.n, err
	}
	first := true
	for _, run := range r.runs {
		for i := range run.events {
			buf = buf[:0]
			if !first {
				buf = append(buf, ',', '\n')
			}
			first = false
			buf = appendEvent(buf, run.pid, &run.events[i])
			if _, err := bw.Write(buf); err != nil {
				return bw.n, err
			}
		}
	}
	if _, err := io.WriteString(bw, "]}\n"); err != nil {
		return bw.n, err
	}
	return bw.n, nil
}

const emptyTrace = `{"displayTimeUnit":"ns","traceEvents":[]}` + "\n"

// WriteFile writes the trace to path.
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := r.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// appendEvent renders one event as a JSON object. Timestamps are
// microseconds with six fractional digits — an exact decimal rendering
// of the engine's picosecond clock, chosen over floating point so the
// bytes are reproducible.
func appendEvent(buf []byte, pid int32, e *event) []byte {
	buf = append(buf, `{"ph":"`...)
	buf = append(buf, e.ph)
	buf = append(buf, `","pid":`...)
	buf = strconv.AppendInt(buf, int64(pid), 10)
	switch e.ph {
	case 'M':
		buf = append(buf, `,"tid":`...)
		buf = strconv.AppendInt(buf, int64(e.tid), 10)
		buf = append(buf, `,"name":`...)
		buf = appendQuote(buf, e.name)
		buf = append(buf, `,"args":{`...)
		buf = append(buf, e.args...)
		buf = append(buf, '}')
	case 'C':
		buf = append(buf, `,"ts":`...)
		buf = appendTS(buf, e.ts)
		buf = append(buf, `,"name":`...)
		buf = appendQuote(buf, e.name)
		buf = append(buf, `,"args":{"value":`...)
		buf = strconv.AppendInt(buf, e.val, 10)
		buf = append(buf, '}', '}')
		return buf
	case 'b', 'n', 'e':
		buf = append(buf, `,"tid":`...)
		buf = strconv.AppendInt(buf, int64(e.tid), 10)
		buf = append(buf, `,"ts":`...)
		buf = appendTS(buf, e.ts)
		buf = append(buf, `,"cat":"`...)
		buf = append(buf, spanCat...)
		buf = append(buf, `","id":"`...)
		buf = strconv.AppendUint(buf, e.id, 10)
		buf = append(buf, `","name":`...)
		buf = appendQuote(buf, e.name)
		if e.args != "" {
			buf = append(buf, `,"args":{`...)
			buf = append(buf, e.args...)
			buf = append(buf, '}')
		}
	case 'X':
		buf = append(buf, `,"tid":`...)
		buf = strconv.AppendInt(buf, int64(e.tid), 10)
		buf = append(buf, `,"ts":`...)
		buf = appendTS(buf, e.ts)
		buf = append(buf, `,"dur":`...)
		buf = appendTS(buf, e.dur)
		buf = append(buf, `,"name":`...)
		buf = appendQuote(buf, e.name)
		if e.args != "" {
			buf = append(buf, `,"args":{`...)
			buf = append(buf, e.args...)
			buf = append(buf, '}')
		}
	case 'i':
		buf = append(buf, `,"tid":`...)
		buf = strconv.AppendInt(buf, int64(e.tid), 10)
		buf = append(buf, `,"ts":`...)
		buf = appendTS(buf, e.ts)
		buf = append(buf, `,"s":"t","name":`...)
		buf = appendQuote(buf, e.name)
		if e.args != "" {
			buf = append(buf, `,"args":{`...)
			buf = append(buf, e.args...)
			buf = append(buf, '}')
		}
	}
	buf = append(buf, '}')
	return buf
}

// appendTS renders a picosecond time as microseconds with exactly six
// fractional digits (trace-event timestamps are in microseconds).
func appendTS(buf []byte, t sim.Time) []byte {
	ps := int64(t)
	if ps < 0 { // negative durations cannot occur; guard for safety
		buf = append(buf, '-')
		ps = -ps
	}
	buf = strconv.AppendInt(buf, ps/1_000_000, 10)
	buf = append(buf, '.')
	frac := strconv.FormatInt(ps%1_000_000, 10)
	for i := len(frac); i < 6; i++ {
		buf = append(buf, '0')
	}
	return append(buf, frac...)
}

func quote(s string) string { return string(appendQuote(nil, s)) }

func appendQuote(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			buf = append(buf, fmt.Sprintf(`\u%04x`, c)...)
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// String renders the whole trace as a JSON string (testing convenience).
func (r *Recorder) String() string {
	var b strings.Builder
	r.WriteTo(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}
