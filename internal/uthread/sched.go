package uthread

// RoundRobin cycles over a fixed set of threads in order, skipping
// finished ones — the scheduling policy of the prefetch-based mechanism
// ("the scheduler simply switches between threads in a round-robin
// fashion", §IV-B).
type RoundRobin struct {
	threads []*Thread
	next    int
}

// NewRoundRobin creates a scheduler over the given threads.
func NewRoundRobin(threads []*Thread) *RoundRobin {
	return &RoundRobin{threads: threads}
}

// Next returns the next unfinished thread in cyclic order, or nil when
// every thread has finished.
func (r *RoundRobin) Next() *Thread {
	for range r.threads {
		t := r.threads[r.next]
		r.next = (r.next + 1) % len(r.threads)
		if !t.Finished() {
			return t
		}
	}
	return nil
}

// Live returns the number of unfinished threads.
func (r *RoundRobin) Live() int {
	n := 0
	for _, t := range r.threads {
		if !t.Finished() {
			n++
		}
	}
	return n
}

// FIFO is the ready queue of the software-managed-queue mechanism: "The
// threads are managed in FIFO order, ensuring a deterministic access
// sequence for replay" (§IV-B). Threads enter the queue when they become
// runnable (at start, or when their batch of completions has arrived)
// and leave when the executor runs them.
type FIFO struct {
	queue []*Thread

	// OnChange, when set, observes every ready-queue length change —
	// the trace layer's runnable-threads timeline. It must not mutate
	// the queue.
	OnChange func(n int)
}

// NewFIFO returns an empty ready queue.
func NewFIFO() *FIFO { return &FIFO{} }

// Push appends a runnable thread.
func (f *FIFO) Push(t *Thread) {
	f.queue = append(f.queue, t)
	if f.OnChange != nil {
		f.OnChange(len(f.queue))
	}
}

// Pop removes and returns the oldest runnable thread, or nil if empty.
func (f *FIFO) Pop() *Thread {
	if len(f.queue) == 0 {
		return nil
	}
	t := f.queue[0]
	f.queue = f.queue[:copy(f.queue, f.queue[1:])]
	if f.OnChange != nil {
		f.OnChange(len(f.queue))
	}
	return t
}

// Len returns the number of runnable threads.
func (f *FIFO) Len() int { return len(f.queue) }
