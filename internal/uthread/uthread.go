// Package uthread is the user-level threading library of the paper's
// support software (§IV-B): the heavily optimized GNU-Pth derivative
// whose context switch costs 20-50 ns. Application code keeps the
// standard synchronous threading model — a thread calls Access (the
// paper's dev_access) and simply receives the data — while the
// mechanism-specific executor underneath overlaps accesses from many
// threads.
//
// A Thread is a coroutine: its body runs on its own goroutine, but it
// executes only between Start/Resume calls from its executor, handing
// back a Request each time it needs work, device data, or finishes.
// Exactly one of {executor, thread body} runs at a time, so simulations
// remain deterministic. Timing is entirely the executor's business; this
// package only transports control and data.
package uthread

import "fmt"

// Kind discriminates the requests a thread body can make.
type Kind int

const (
	// KindWork asks the executor to retire Instr dependent work
	// instructions.
	KindWork Kind = iota
	// KindAccess asks for a synchronous batch of device cache-line
	// reads; the thread resumes when all lines are available.
	KindAccess
	// KindWrite posts a batch of device cache-line writes. Writes are
	// fire-and-forget — "writes do not have return values, are often
	// off the critical path ... their latency can be more easily
	// hidden" (§VII) — so the thread continues as soon as the stores
	// issue, without a context switch.
	KindWrite
	// KindDone reports that the thread body returned.
	KindDone
)

// String returns the request kind's name.
func (k Kind) String() string {
	switch k {
	case KindWork:
		return "work"
	case KindAccess:
		return "access"
	case KindWrite:
		return "write"
	case KindDone:
		return "done"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Request is what a thread hands to its executor when it blocks.
type Request struct {
	Kind  Kind
	Instr int      // KindWork: dependent work instructions to retire
	Addrs []uint64 // KindAccess: cache-line addresses, batched before one switch
}

// Thread is one user-level thread.
type Thread struct {
	id       int
	body     func(*API)
	req      chan Request
	res      chan [][]byte
	started  bool
	finished bool
	last     Request // most recent request, for Resume payload checks
}

// New creates a thread that will run body; the body does not start
// executing until the executor calls Start.
func New(id int, body func(*API)) *Thread {
	return &Thread{
		id:   id,
		body: body,
		req:  make(chan Request),
		res:  make(chan [][]byte),
	}
}

// ID returns the thread's identifier.
func (t *Thread) ID() int { return t.id }

// Finished reports whether the body has returned.
func (t *Thread) Finished() bool { return t.finished }

// Start launches the body and runs it up to its first request.
func (t *Thread) Start() Request {
	if t.started {
		panic(fmt.Sprintf("uthread: thread %d started twice", t.id))
	}
	t.started = true
	go func() {
		t.body(&API{t: t})
		t.req <- Request{Kind: KindDone}
	}()
	return t.next()
}

// Resume delivers the data for the previous request (nil for KindWork)
// and runs the body to its next request. Resuming a finished thread, or
// answering an access batch with the wrong number of lines (the body
// would index out of range or silently read a sibling's data), panics.
func (t *Thread) Resume(data [][]byte) Request {
	if !t.started {
		panic(fmt.Sprintf("uthread: thread %d resumed before start", t.id))
	}
	if t.finished {
		panic(fmt.Sprintf("uthread: thread %d resumed after done", t.id))
	}
	if t.last.Kind == KindAccess && len(data) != len(t.last.Addrs) {
		panic(fmt.Sprintf("uthread: thread %d access batch of %d addresses resumed with %d lines",
			t.id, len(t.last.Addrs), len(data)))
	}
	t.res <- data
	return t.next()
}

func (t *Thread) next() Request {
	r := <-t.req
	if r.Kind == KindDone {
		t.finished = true
	}
	t.last = r
	return r
}

// API is the interface the thread body programs against. It mirrors the
// paper's library: synchronous accesses, minimal source changes
// ("replace pointer dereferences with calls to dev_access", §IV-B).
type API struct {
	t *Thread
}

// Work retires n dependent work instructions (the microbenchmark's
// IPC-1.4 arithmetic block). Zero or negative counts are no-ops.
func (a *API) Work(n int) {
	if n <= 0 {
		return
	}
	a.t.req <- Request{Kind: KindWork, Instr: n}
	<-a.t.res
}

// Access performs one synchronous device cache-line read, returning the
// 64-byte line. It is the paper's dev_access(uint64*).
func (a *API) Access(addr uint64) []byte {
	return a.AccessBatch([]uint64{addr})[0]
}

// AccessBatch performs several independent reads with a single context
// switch — the batching used to express memory-level parallelism
// (§V-B, Impact of MLP: "a single context switch after issuing multiple
// prefetches"). It returns one line per address, in order.
func (a *API) AccessBatch(addrs []uint64) [][]byte {
	if len(addrs) == 0 {
		return nil
	}
	a.t.req <- Request{Kind: KindAccess, Addrs: addrs}
	return <-a.t.res
}

// Write posts one fire-and-forget device cache-line write; the thread
// continues immediately (no context switch, §VII).
func (a *API) Write(addr uint64) { a.WriteBatch([]uint64{addr}) }

// WriteBatch posts several fire-and-forget writes.
func (a *API) WriteBatch(addrs []uint64) {
	if len(addrs) == 0 {
		return
	}
	a.t.req <- Request{Kind: KindWrite, Addrs: addrs}
	<-a.t.res
}
