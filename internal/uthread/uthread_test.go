package uthread

import (
	"testing"
)

func TestThreadLifecycle(t *testing.T) {
	th := New(7, func(a *API) {
		a.Work(100)
		data := a.Access(0x40)
		if data[0] != 42 {
			t.Errorf("access returned %d, want 42", data[0])
		}
		a.Work(50)
	})
	if th.ID() != 7 {
		t.Errorf("ID = %d", th.ID())
	}

	r := th.Start()
	if r.Kind != KindWork || r.Instr != 100 {
		t.Fatalf("first request = %+v", r)
	}
	r = th.Resume(nil)
	if r.Kind != KindAccess || len(r.Addrs) != 1 || r.Addrs[0] != 0x40 {
		t.Fatalf("second request = %+v", r)
	}
	line := make([]byte, 64)
	line[0] = 42
	r = th.Resume([][]byte{line})
	if r.Kind != KindWork || r.Instr != 50 {
		t.Fatalf("third request = %+v", r)
	}
	r = th.Resume(nil)
	if r.Kind != KindDone || !th.Finished() {
		t.Fatalf("final request = %+v finished=%v", r, th.Finished())
	}
}

func TestAccessBatchOrder(t *testing.T) {
	addrs := []uint64{0x100, 0x140, 0x180, 0x1C0}
	th := New(0, func(a *API) {
		data := a.AccessBatch(addrs)
		for i := range data {
			if data[i][0] != byte(i) {
				t.Errorf("line %d has tag %d", i, data[i][0])
			}
		}
	})
	r := th.Start()
	if r.Kind != KindAccess || len(r.Addrs) != 4 {
		t.Fatalf("request = %+v", r)
	}
	lines := make([][]byte, 4)
	for i := range lines {
		lines[i] = make([]byte, 64)
		lines[i][0] = byte(i)
	}
	if r = th.Resume(lines); r.Kind != KindDone {
		t.Fatalf("want done, got %+v", r)
	}
}

func TestWriteBatch(t *testing.T) {
	th := New(0, func(a *API) {
		a.Write(0x40)
		a.WriteBatch([]uint64{0x80, 0xC0})
		a.WriteBatch(nil) // no-op
	})
	r := th.Start()
	if r.Kind != KindWrite || len(r.Addrs) != 1 || r.Addrs[0] != 0x40 {
		t.Fatalf("first request = %+v", r)
	}
	r = th.Resume(nil)
	if r.Kind != KindWrite || len(r.Addrs) != 2 {
		t.Fatalf("second request = %+v", r)
	}
	if r = th.Resume(nil); r.Kind != KindDone {
		t.Fatalf("final request = %+v", r)
	}
	if KindWrite.String() != "write" {
		t.Error("kind string wrong")
	}
}

func TestZeroWorkAndEmptyBatchAreNoOps(t *testing.T) {
	th := New(0, func(a *API) {
		a.Work(0)
		a.Work(-3)
		if got := a.AccessBatch(nil); got != nil {
			t.Errorf("empty batch returned %v", got)
		}
	})
	// The body must run straight to done without any intermediate
	// requests.
	if r := th.Start(); r.Kind != KindDone {
		t.Fatalf("request = %+v, want done", r)
	}
}

func TestDoubleStartPanics(t *testing.T) {
	th := New(0, func(a *API) {})
	th.Start()
	defer func() {
		if recover() == nil {
			t.Error("double start did not panic")
		}
	}()
	th.Start()
}

func TestResumeBeforeStartPanics(t *testing.T) {
	th := New(0, func(a *API) {})
	defer func() {
		if recover() == nil {
			t.Error("resume before start did not panic")
		}
	}()
	th.Resume(nil)
}

func TestResumeAfterDonePanics(t *testing.T) {
	th := New(0, func(a *API) {})
	if r := th.Start(); r.Kind != KindDone {
		t.Fatalf("request = %+v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("resume after done did not panic")
		}
	}()
	th.Resume(nil)
}

func TestKindString(t *testing.T) {
	if KindWork.String() != "work" || KindAccess.String() != "access" || KindDone.String() != "done" {
		t.Error("kind strings wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func mkThreads(n int, iters int) []*Thread {
	threads := make([]*Thread, n)
	for i := range threads {
		threads[i] = New(i, func(a *API) {
			for j := 0; j < iters; j++ {
				a.Work(10)
			}
		})
	}
	return threads
}

func TestRoundRobinOrder(t *testing.T) {
	threads := mkThreads(3, 2)
	rr := NewRoundRobin(threads)
	reqs := map[*Thread]Request{}
	for _, th := range threads {
		reqs[th] = th.Start()
	}
	var order []int
	for {
		th := rr.Next()
		if th == nil {
			break
		}
		order = append(order, th.ID())
		reqs[th] = th.Resume(nil)
	}
	// Start consumed each thread's first request, so each is resumed
	// twice (second work, then done), in cyclic order.
	want := []int{0, 1, 2, 0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if rr.Live() != 0 {
		t.Errorf("live = %d", rr.Live())
	}
}

func TestRoundRobinSkipsFinished(t *testing.T) {
	// Thread 1 finishes first; the ring must keep cycling 0 and 2.
	threads := []*Thread{
		New(0, func(a *API) { a.Work(1); a.Work(1) }),
		New(1, func(a *API) { a.Work(1) }),
		New(2, func(a *API) { a.Work(1); a.Work(1) }),
	}
	for _, th := range threads {
		th.Start()
	}
	rr := NewRoundRobin(threads)
	for {
		th := rr.Next()
		if th == nil {
			break
		}
		th.Resume(nil)
	}
	for _, th := range threads {
		if !th.Finished() {
			t.Errorf("thread %d not finished", th.ID())
		}
	}
}

func TestFIFO(t *testing.T) {
	f := NewFIFO()
	if f.Pop() != nil || f.Len() != 0 {
		t.Fatal("empty FIFO misbehaved")
	}
	a, b := New(0, nil), New(1, nil)
	f.Push(a)
	f.Push(b)
	if f.Len() != 2 {
		t.Errorf("len = %d", f.Len())
	}
	if f.Pop() != a || f.Pop() != b || f.Pop() != nil {
		t.Error("FIFO order violated")
	}
}
