package expect

import (
	"math"
	"strings"
	"testing"

	"repro/internal/report"
)

// tbl builds a one-table report from label -> (x, y) curves.
func tbl(id string, series map[string][][2]float64) *report.Report {
	t := &report.Table{ID: id, Title: id, XLabel: "x", YLabel: "y"}
	for label, pts := range series {
		s := &report.Series{Label: label}
		for _, p := range pts {
			s.X = append(s.X, report.Float(p[0]))
			s.Y = append(s.Y, report.Float(p[1]))
		}
		t.Series = append(t.Series, s)
	}
	return &report.Report{Schema: report.SchemaName, Version: report.SchemaVersion,
		Tool: "test", Tables: []*report.Table{t}}
}

func curve(pts ...[2]float64) [][2]float64 { return pts }

func TestPrimitives(t *testing.T) {
	r := tbl("fig", map[string][][2]float64{
		"hi":   curve([2]float64{1, 0.5}, [2]float64{2, 0.9}, [2]float64{4, 1.0}, [2]float64{8, 0.98}),
		"lo":   curve([2]float64{1, 0.2}, [2]float64{2, 0.4}, [2]float64{4, 0.5}, [2]float64{8, 0.5}),
		"rise": curve([2]float64{1, 0.1}, [2]float64{2, 0.4}, [2]float64{4, 0.9}, [2]float64{8, 1.8}),
	})
	tab := r.Table("fig")

	if ok, _ := peakIn(tab.FindSeries("hi"), 0.9, 1.1); !ok {
		t.Error("peakIn rejected a peak of 1.0")
	}
	if ok, _ := peakIn(tab.FindSeries("hi"), 1.1, 1.2); ok {
		t.Error("peakIn accepted an out-of-band peak")
	}
	if ok, d := kneeIn(tab.FindSeries("hi"), 0.9, 2, 2); !ok {
		t.Errorf("kneeIn: first y >= 0.9*peak is at x=2: %s", d)
	}
	if ok, _ := plateauNear(tab.FindSeries("lo"), 0.5, 0.05); !ok {
		t.Error("plateauNear rejected final value 0.5")
	}
	if ok, _ := flatAfterKnee(tab.FindSeries("hi"), 0.05); !ok {
		t.Error("flatAfterKnee rejected a 2% droop with 5% allowance")
	}
	if ok, _ := flatAfterKnee(tab.FindSeries("hi"), 0.01); ok {
		t.Error("flatAfterKnee accepted a 2% droop with 1% allowance")
	}
	if ok, d := orderedPeaks(tab, 0.2, "hi", "lo"); !ok {
		t.Errorf("orderedPeaks: 1.0 then 0.5 with 20%% margin should pass: %s", d)
	}
	if ok, _ := orderedPeaks(tab, 0.2, "lo", "hi"); ok {
		t.Error("orderedPeaks accepted an inverted ordering")
	}
	if ok, d := orderedEverywhere(tab, "hi", "lo", 0); !ok {
		t.Errorf("orderedEverywhere: hi dominates lo: %s", d)
	}
	if ok, _ := orderedEverywhere(tab, "lo", "hi", 0); ok {
		t.Error("orderedEverywhere accepted a dominated series")
	}
	if ok, _ := monotoneNonDecreasing(tab.FindSeries("rise"), 0); !ok {
		t.Error("monotoneNonDecreasing rejected a rising series")
	}
	if ok, _ := monotoneNonDecreasing(tab.FindSeries("hi"), 0.01); ok {
		t.Error("monotoneNonDecreasing missed the 1.0 -> 0.98 drop with slack 0.01")
	}
	if ok, _ := monotoneNonDecreasing(tab.FindSeries("hi"), 0.05); !ok {
		t.Error("monotoneNonDecreasing should absorb the droop with slack 0.05")
	}
	// rise exceeds 1.5x lo first at x=4 (0.9 vs 0.5*1.5=0.75).
	if ok, d := crossoverIn(tab, "rise", "lo", 1.5, 4, 4); !ok {
		t.Errorf("crossoverIn: %s", d)
	}
	if ok, _ := crossoverIn(tab, "lo", "hi", 1.5, 1, 8); ok {
		t.Error("crossoverIn found a crossover that never happens")
	}
	if ok, _ := peakRatioIn(tab, "rise", "lo", 3.5, 3.7); !ok {
		t.Error("peakRatioIn rejected 1.8/0.5 = 3.6")
	}
	if ok, _ := valueRatioAt(tab, "hi", "lo", 2, 2.2, 2.3); !ok {
		t.Error("valueRatioAt rejected 0.9/0.4 = 2.25 at x=2")
	}
}

func TestPrimitivesDegradeOnNil(t *testing.T) {
	if ok, _ := peakIn(nil, 0, 1); ok {
		t.Error("peakIn passed on a nil series")
	}
	if ok, _ := kneeIn(nil, 0.9, 0, 1); ok {
		t.Error("kneeIn passed on a nil series")
	}
	if ok, _ := plateauNear(nil, 1, 1); ok {
		t.Error("plateauNear passed on a nil series")
	}
	if !within(0.5, 0, 1) || within(math.NaN(), 0, 1) {
		t.Error("within mishandles NaN")
	}
}

func TestEvaluateSkipsMissingTables(t *testing.T) {
	r := tbl("fig3", map[string][][2]float64{
		"1us": curve([2]float64{1, 0.5}, [2]float64{2, 1.0}),
	})
	checks := []Check{
		{ID: "a", Tables: []string{"fig3"}, Claim: "c",
			Eval: func(r *report.Report) (bool, string) { return true, "ok" }},
		{ID: "b", Tables: []string{"fig7"}, Claim: "c",
			Eval: func(r *report.Report) (bool, string) { t.Fatal("evaluated a skipped claim"); return false, "" }},
		{ID: "c", Tables: []string{"fig3"}, Claim: "c",
			Eval: func(r *report.Report) (bool, string) { return false, "bad" }},
	}
	vs := Evaluate(r, checks)
	if vs[0].Status != Pass || vs[1].Status != Skip || vs[2].Status != Fail {
		t.Fatalf("verdicts = %+v", vs)
	}
	if !strings.Contains(vs[1].Detail, "fig7") {
		t.Fatalf("skip detail should name the missing table: %q", vs[1].Detail)
	}
	pass, fail, skip := Count(vs)
	if pass != 1 || fail != 1 || skip != 1 {
		t.Fatalf("Count = %d %d %d", pass, fail, skip)
	}
}

func TestEvaluateSkipsUnmetRequires(t *testing.T) {
	r := tbl("fig3", map[string][][2]float64{
		"1us": curve([2]float64{1, 0.5}, [2]float64{2, 1.0}),
	})
	checks := []Check{
		{ID: "gated", Tables: []string{"fig3"}, Claim: "c",
			Requires: func(r *report.Report) string { return "capability absent" },
			Eval: func(r *report.Report) (bool, string) {
				t.Fatal("evaluated a claim whose requirement is unmet")
				return false, ""
			}},
		{ID: "open", Tables: []string{"fig3"}, Claim: "c",
			Requires: func(r *report.Report) string { return "" },
			Eval:     func(r *report.Report) (bool, string) { return true, "ok" }},
	}
	vs := Evaluate(r, checks)
	if vs[0].Status != Skip || vs[0].Detail != "capability absent" {
		t.Fatalf("gated claim verdict = %+v", vs[0])
	}
	if vs[1].Status != Pass {
		t.Fatalf("satisfied-requirement claim verdict = %+v", vs[1])
	}
}

func TestAttributionClaimsSkipWithoutSection(t *testing.T) {
	// A plain report (no attribution section) must skip, never fail,
	// every attribution claim even when its tables are present.
	r := tbl("fig7", map[string][][2]float64{
		"swqueue 1us":  curve([2]float64{1, 0.3}, [2]float64{16, 0.5}),
		"prefetch 1us": curve([2]float64{1, 0.4}, [2]float64{16, 0.9}),
	})
	for _, v := range Evaluate(r, Claims()) {
		if strings.HasPrefix(v.ID, "attrib.") && v.ID != "attrib.mlp-transit-dominated" &&
			v.ID != "attrib.oversubscribed-completion-wait" {
			if v.Status != Skip || !strings.Contains(v.Detail, "attribution") {
				t.Errorf("%s on a plain report: %s %q (want Skip naming attribution)", v.ID, v.Status, v.Detail)
			}
		}
	}
}

func TestClaimsAreWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Claims() {
		if c.ID == "" || c.Claim == "" || c.Eval == nil || len(c.Tables) == 0 {
			t.Errorf("claim %+v is missing a field", c.ID)
		}
		if seen[c.ID] {
			t.Errorf("duplicate claim id %q", c.ID)
		}
		seen[c.ID] = true
	}
	if len(seen) < 25 {
		t.Errorf("only %d claims registered; the paper suite has more", len(seen))
	}
}

func TestClaimsSkipOnPartialReport(t *testing.T) {
	// A single-figure report must evaluate with skips, never panics.
	r := tbl("fig3", map[string][][2]float64{
		"1us": curve([2]float64{1, 0.5}, [2]float64{10, 0.97}, [2]float64{16, 0.96}),
		"2us": curve([2]float64{1, 0.25}, [2]float64{10, 0.49}, [2]float64{16, 0.49}),
		"4us": curve([2]float64{1, 0.12}, [2]float64{10, 0.24}, [2]float64{16, 0.24}),
	})
	vs := Evaluate(r, Claims())
	pass, fail, skip := Count(vs)
	if skip == 0 {
		t.Fatal("claims for absent figures should skip")
	}
	if fail > 0 {
		for _, v := range vs {
			if v.Status == Fail {
				t.Errorf("unexpected failure %s: %s", v.ID, v.Detail)
			}
		}
	}
	if pass == 0 {
		t.Fatal("fig3 claims should pass on the synthetic fig3 table")
	}
}
