// Package expect encodes the paper's qualitative claims — previously
// prose in EXPERIMENTS.md — as typed, machine-checkable assertions over
// a machine-readable run report (internal/report). Each claim is a
// Check with a stable ID; evaluating a report yields one Verdict per
// claim, and `kurec check -claims` turns the verdicts into a CI gate.
//
// Assertions are shape-level, matching how the reproduction compares
// against the paper (EXPERIMENTS.md): monotonicity, knee location,
// plateau value ± tolerance, series ordering, and crossover index —
// never exact cell values (those are pinned by the golden-baseline
// diff, report.Compare). Tolerances are calibrated so every claim
// passes on both the publication sweep and the -quick sweep's coarser
// thread grid.
package expect

import (
	"fmt"
	"math"

	"repro/internal/report"
)

// Status of one evaluated claim.
const (
	Pass = "PASS"
	Fail = "FAIL"
	Skip = "SKIP" // a table the claim needs is absent from the report
)

// Check is one paper claim as a typed assertion.
type Check struct {
	// ID is the stable assertion identifier, e.g. "fig3.knee".
	ID string
	// Tables lists the table IDs the claim reads; if any is absent the
	// claim is skipped, so single-figure reports evaluate cleanly.
	Tables []string
	// Claim is the paper's prose (quoted or paraphrased).
	Claim string
	// Requires optionally gates the claim on a report capability beyond
	// table presence (e.g. an attribution section, which only -attrib
	// sweeps carry). It returns "" when the report qualifies, or a short
	// reason that becomes the Skip verdict's detail.
	Requires func(r *report.Report) string
	// Eval runs the assertion, returning pass/fail and a measured
	// detail string for the verdict.
	Eval func(r *report.Report) (bool, string)
}

// Verdict is the structured outcome of one claim.
type Verdict struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Claim  string `json:"claim"`
	Detail string `json:"detail"`
}

// Evaluate runs the checks against the report, in order.
func Evaluate(r *report.Report, checks []Check) []Verdict {
	out := make([]Verdict, 0, len(checks))
	for _, c := range checks {
		v := Verdict{ID: c.ID, Claim: c.Claim}
		missing := ""
		for _, id := range c.Tables {
			if r.Table(id) == nil {
				missing = id
				break
			}
		}
		if missing != "" {
			v.Status = Skip
			v.Detail = fmt.Sprintf("table %s absent from report", missing)
		} else if reason := requires(c, r); reason != "" {
			v.Status = Skip
			v.Detail = reason
		} else if ok, detail := c.Eval(r); ok {
			v.Status = Pass
			v.Detail = detail
		} else {
			v.Status = Fail
			v.Detail = detail
		}
		out = append(out, v)
	}
	return out
}

// requires evaluates a check's optional capability gate.
func requires(c Check, r *report.Report) string {
	if c.Requires == nil {
		return ""
	}
	return c.Requires(r)
}

// Count tallies verdicts by status.
func Count(vs []Verdict) (pass, fail, skip int) {
	for _, v := range vs {
		switch v.Status {
		case Pass:
			pass++
		case Fail:
			fail++
		default:
			skip++
		}
	}
	return
}

// ---- typed assertion primitives ----

// within reports lo <= v <= hi (false for NaN).
func within(v, lo, hi float64) bool {
	return !math.IsNaN(v) && v >= lo && v <= hi
}

// peakIn asserts the series peak lies in [lo, hi].
func peakIn(s *report.Series, lo, hi float64) (bool, string) {
	if s == nil {
		return false, "series absent"
	}
	x, y := s.Peak()
	return within(y, lo, hi), fmt.Sprintf("peak %.3f at x=%g (want [%.2f, %.2f])", y, x, lo, hi)
}

// kneeIn asserts the x where the series first reaches frac of its peak
// lies in [lo, hi].
func kneeIn(s *report.Series, frac, lo, hi float64) (bool, string) {
	if s == nil {
		return false, "series absent"
	}
	k := s.KneeX(frac)
	return within(k, lo, hi),
		fmt.Sprintf("%.0f%%-of-peak knee at x=%g (want [%g, %g])", frac*100, k, lo, hi)
}

// plateauNear asserts the series' final value lies within tol of want —
// the saturation-plateau check.
func plateauNear(s *report.Series, want, tol float64) (bool, string) {
	if s == nil {
		return false, "series absent"
	}
	last := s.Last()
	return within(last, want-tol, want+tol),
		fmt.Sprintf("plateau %.3f (want %.2f ± %.2f)", last, want, tol)
}

// flatAfterKnee asserts the series never falls more than frac below its
// peak once the peak region is reached: (peak - last) / peak <= frac.
func flatAfterKnee(s *report.Series, frac float64) (bool, string) {
	if s == nil {
		return false, "series absent"
	}
	_, peak := s.Peak()
	last := s.Last()
	if math.IsNaN(peak) || peak <= 0 {
		return false, "no finite peak"
	}
	drop := (peak - last) / peak
	return drop <= frac, fmt.Sprintf("drops %.1f%% from peak %.3f to final %.3f (allow %.0f%%)",
		drop*100, peak, last, frac*100)
}

// orderedPeaks asserts the named series have strictly decreasing peaks,
// each separated by at least margin (relative to the larger peak).
func orderedPeaks(t *report.Table, margin float64, labels ...string) (bool, string) {
	prev := math.Inf(1)
	detail := ""
	ok := true
	for i, label := range labels {
		s := t.FindSeries(label)
		if s == nil {
			return false, fmt.Sprintf("series %q absent", label)
		}
		_, y := s.Peak()
		if i > 0 {
			detail += " > "
		}
		detail += fmt.Sprintf("%s:%.3f", label, y)
		if math.IsNaN(y) || y > prev*(1-margin) {
			ok = false
		}
		prev = y
	}
	return ok, detail
}

// orderedEverywhere asserts a >= b at every shared x (with slack as an
// absolute allowance), the per-cell latency/series dominance check.
func orderedEverywhere(t *report.Table, hi, lo string, slack float64) (bool, string) {
	a, b := t.FindSeries(hi), t.FindSeries(lo)
	if a == nil || b == nil {
		return false, fmt.Sprintf("series %q or %q absent", hi, lo)
	}
	for i := range a.X {
		x := float64(a.X[i])
		ya, yb := float64(a.Y[i]), b.YAt(x)
		if math.IsNaN(yb) {
			continue
		}
		if math.IsNaN(ya) || ya+slack < yb {
			return false, fmt.Sprintf("%s=%.3f < %s=%.3f at x=%g", hi, ya, lo, yb, x)
		}
	}
	return true, fmt.Sprintf("%s >= %s at every shared x", hi, lo)
}

// monotoneNonDecreasing asserts the series never drops by more than
// slack between consecutive x values.
func monotoneNonDecreasing(s *report.Series, slack float64) (bool, string) {
	if s == nil {
		return false, "series absent"
	}
	for i := 1; i < len(s.Y); i++ {
		prev, cur := float64(s.Y[i-1]), float64(s.Y[i])
		if math.IsNaN(prev) || math.IsNaN(cur) {
			continue
		}
		if cur < prev-slack {
			return false, fmt.Sprintf("drops %.3f -> %.3f at x=%g", prev, cur, float64(s.X[i]))
		}
	}
	return true, "monotone non-decreasing"
}

// crossoverIn asserts the first x where series a exceeds factor × series
// b lies in [lo, hi] — the crossover-index assertion.
func crossoverIn(t *report.Table, a, b string, factor, lo, hi float64) (bool, string) {
	sa, sb := t.FindSeries(a), t.FindSeries(b)
	if sa == nil || sb == nil {
		return false, fmt.Sprintf("series %q or %q absent", a, b)
	}
	for i := range sa.X {
		x := float64(sa.X[i])
		ya, yb := float64(sa.Y[i]), sb.YAt(x)
		if math.IsNaN(ya) || math.IsNaN(yb) {
			continue
		}
		if ya >= factor*yb {
			return within(x, lo, hi),
				fmt.Sprintf("%s first exceeds %.2fx %s at x=%g (want [%g, %g])", a, factor, b, x, lo, hi)
		}
	}
	return false, fmt.Sprintf("%s never exceeds %.2fx %s", a, factor, b)
}

// peakRatioIn asserts peak(a)/peak(b) lies in [lo, hi].
func peakRatioIn(t *report.Table, a, b string, lo, hi float64) (bool, string) {
	sa, sb := t.FindSeries(a), t.FindSeries(b)
	if sa == nil || sb == nil {
		return false, fmt.Sprintf("series %q or %q absent", a, b)
	}
	_, ya := sa.Peak()
	_, yb := sb.Peak()
	if yb == 0 || math.IsNaN(ya) || math.IsNaN(yb) {
		return false, "peaks unavailable"
	}
	r := ya / yb
	return within(r, lo, hi), fmt.Sprintf("peak(%s)/peak(%s) = %.2f (want [%g, %g])", a, b, r, lo, hi)
}

// valueRatioAt asserts y_a(x)/y_b(x) lies in [lo, hi] at one x.
func valueRatioAt(t *report.Table, a, b string, x, lo, hi float64) (bool, string) {
	ya, yb := t.FindSeries(a).YAt(x), t.FindSeries(b).YAt(x)
	if yb == 0 || math.IsNaN(ya) || math.IsNaN(yb) {
		return false, fmt.Sprintf("cells at x=%g unavailable", x)
	}
	r := ya / yb
	return within(r, lo, hi), fmt.Sprintf("%s/%s = %.2f at x=%g (want [%g, %g])", a, b, r, x, lo, hi)
}
