package expect

import (
	"fmt"
	"math"

	"repro/internal/report"
)

// app series labels shared by the four Fig 10 sub-figures.
var fig10Apps = []string{"bfs-s16", "bloom-k4", "memcached-v4"}

// Claims returns the standard paper-claims suite: every qualitative
// claim EXPERIMENTS.md documents in prose, as a typed assertion with a
// stable ID. The "Claim checks" table in EXPERIMENTS.md maps each row
// back to these IDs.
func Claims() []Check {
	var cs []Check
	add := func(id, table, claim string, eval func(r *report.Report) (bool, string)) {
		cs = append(cs, Check{ID: id, Tables: []string{table}, Claim: claim, Eval: eval})
	}
	// addAttrib claims additionally require the report's attribution
	// section, so they skip (not fail) on plain sweeps.
	addAttrib := func(id, table, claim string, eval func(r *report.Report) (bool, string)) {
		cs = append(cs, Check{ID: id, Tables: []string{table}, Claim: claim,
			Requires: requiresAttribution, Eval: eval})
	}

	// ---- Fig 2: on-demand access (§V-A) ----
	add("fig2.abysmal-drop", "fig2",
		"\"the performance drop is abysmal\" at moderate work counts: 1us on-demand <= 0.2 of DRAM at work=200",
		func(r *report.Report) (bool, string) {
			y := r.Table("fig2").FindSeries("1us").YAt(200)
			return within(y, 0, 0.2), fmt.Sprintf("1us at work=200: %.3f (want <= 0.2)", y)
		})
	add("fig2.work-abates", "fig2",
		"\"only when there is a large amount of work per device access (e.g., 5,000 instructions)\" is the impact partially abated",
		func(r *report.Report) (bool, string) {
			y := r.Table("fig2").FindSeries("1us").YAt(5000)
			return within(y, 0.4, 0.85), fmt.Sprintf("1us at work=5000: %.3f (want [0.4, 0.85])", y)
		})
	add("fig2.latency-order", "fig2",
		"on-demand throughput is ordered by device latency at every work count",
		func(r *report.Report) (bool, string) {
			t := r.Table("fig2")
			if ok, d := orderedEverywhere(t, "1us", "2us", 0.002); !ok {
				return false, d
			}
			return orderedEverywhere(t, "2us", "4us", 0.002)
		})
	add("fig2.monotone-work", "fig2",
		"more work per access always improves normalized on-demand throughput",
		func(r *report.Report) (bool, string) {
			t := r.Table("fig2")
			for _, lat := range []string{"1us", "2us", "4us"} {
				if ok, d := monotoneNonDecreasing(t.FindSeries(lat), 0.02); !ok {
					return false, lat + ": " + d
				}
			}
			return true, "all three latency series monotone in work count"
		})

	// ---- Fig 3: prefetch-based access (§V-B) ----
	add("fig3.knee", "fig3",
		"\"at 10 threads and 1us device latency, the performance is similar to running with data in DRAM\": the 1us curve knees at 10-12 threads",
		func(r *report.Report) (bool, string) {
			return kneeIn(r.Table("fig3").FindSeries("1us"), 0.9, 8, 12)
		})
	add("fig3.dram-parity", "fig3",
		"1us prefetch peaks near DRAM parity (paper: \"marginally outperforms DRAM\" just past the knee)",
		func(r *report.Report) (bool, string) {
			return peakIn(r.Table("fig3").FindSeries("1us"), 0.9, 1.1)
		})
	add("fig3.lfb-plateau", "fig3",
		"\"after reaching 10 threads, additional threads do not improve performance\" (the 10-entry LFB pool binds)",
		func(r *report.Report) (bool, string) {
			return flatAfterKnee(r.Table("fig3").FindSeries("1us"), 0.07)
		})
	add("fig3.plateau-2us", "fig3",
		"\"longer device latencies result in a shallower slope\": the 2us plateau sits at ~half of DRAM",
		func(r *report.Report) (bool, string) {
			return plateauNear(r.Table("fig3").FindSeries("2us"), 0.49, 0.05)
		})
	add("fig3.plateau-4us", "fig3",
		"the 4us plateau sits at ~a quarter of DRAM (10 LFBs hide only 10/latency accesses)",
		func(r *report.Report) (bool, string) {
			return plateauNear(r.Table("fig3").FindSeries("4us"), 0.24, 0.03)
		})

	// ---- Fig 4: work-count sweep (§V-B) ----
	add("fig4.crossover", "fig4",
		"work=500 is the smallest per-access work that reaches DRAM parity under 1us prefetch",
		func(r *report.Report) (bool, string) {
			t := r.Table("fig4")
			first := ""
			for _, label := range []string{"work=100", "work=200", "work=500", "work=1000"} {
				_, y := t.FindSeries(label).Peak()
				if !math.IsNaN(y) && y >= 0.99 {
					first = label
					break
				}
			}
			return first == "work=500", fmt.Sprintf("first series reaching 0.99: %q (want work=500)", first)
		})
	add("fig4.fewer-threads", "fig4",
		"\"with more work, fewer threads are needed to hide the device latency\": the 90%-of-peak knee moves left with work count",
		func(r *report.Report) (bool, string) {
			t := r.Table("fig4")
			prev := math.Inf(1)
			detail := ""
			for _, label := range []string{"work=100", "work=200", "work=500", "work=1000"} {
				k := t.FindSeries(label).KneeX(0.9)
				if math.IsNaN(k) || k > prev {
					return false, fmt.Sprintf("knee(%s)=%g after %g", label, k, prev)
				}
				detail += fmt.Sprintf(" %s:%g", label, k)
				prev = k
			}
			kHi := t.FindSeries("work=100").KneeX(0.9)
			kLo := t.FindSeries("work=1000").KneeX(0.9)
			return kLo < kHi, "knees:" + detail
		})

	// ---- Fig 5: multicore prefetch (§V-B) ----
	add("fig5.chipq-ceiling", "fig5",
		"the 14-entry chip-level shared queue caps every 1us multicore curve at the same ceiling (~1.37x the single-core baseline)",
		func(r *report.Report) (bool, string) {
			t := r.Table("fig5")
			detail := ""
			for _, label := range []string{"1us 2c", "1us 4c", "1us 8c"} {
				_, y := t.FindSeries(label).Peak()
				detail += fmt.Sprintf(" %s:%.3f", label, y)
				if !within(y, 1.2, 1.45) {
					return false, fmt.Sprintf("%s peak %.3f outside [1.2, 1.45]", label, y)
				}
			}
			return true, "multicore peaks" + detail + " (shared ceiling)"
		})
	add("fig5.linear-start", "fig5",
		"\"with a few threads per core, the multi-core performance scales linearly\": 8 cores ~ 8x one core at 1 thread/core",
		func(r *report.Report) (bool, string) {
			return valueRatioAt(r.Table("fig5"), "1us 8c", "1us 1c", 1, 6, 9)
		})
	add("fig5.chipq-occupancy", "fig5",
		"\"the maximum occupancy of this queue is 14\": the saturated 8-core run drives the chip queue to ~full mean occupancy",
		func(r *report.Report) (bool, string) {
			s := r.Table("fig5").FindSeries("1us 8c")
			if s == nil {
				return false, "series absent"
			}
			best := math.NaN()
			for _, d := range s.Diags {
				if d == nil {
					continue
				}
				v := float64(d.MeanChipOccupancy)
				if math.IsNaN(best) || v > best {
					best = v
				}
			}
			if math.IsNaN(best) {
				return false, "no per-cell diagnostics in report"
			}
			return within(best, 12, 14.01), fmt.Sprintf("best mean chip-queue occupancy %.1f (want [12, 14])", best)
		})

	// ---- Fig 6: prefetch with MLP (§V-B) ----
	add("fig6.mlp-order", "fig6",
		"\"the LFB limit is more problematic for applications with inherent MLP\": peaks ordered 1-read > 2-read > 4-read",
		func(r *report.Report) (bool, string) {
			return orderedPeaks(r.Table("fig6"), 0.1, "1-read", "2-read", "4-read")
		})
	add("fig6.knee-shift", "fig6",
		"multi-read batches consume LFBs faster: the saturation knee moves left with MLP",
		func(r *report.Report) (bool, string) {
			t := r.Table("fig6")
			k1 := t.FindSeries("1-read").KneeX(0.9)
			k2 := t.FindSeries("2-read").KneeX(0.9)
			k4 := t.FindSeries("4-read").KneeX(0.9)
			ok := !math.IsNaN(k1) && !math.IsNaN(k2) && !math.IsNaN(k4) &&
				k2 < k1 && k4 <= k2 && k4 <= 5
			return ok, fmt.Sprintf("knees 1-read:%g 2-read:%g 4-read:%g (want decreasing, 4-read <= 5)", k1, k2, k4)
		})

	// ---- Fig 7: prefetch vs software-managed queues (§V-C) ----
	add("fig7.crossover", "fig7",
		"\"when the prefetch-based access encounters the LFB limit, the application-managed queues continue to gain\": at 4us, SWQ decisively passes flat prefetch between 10 and 20 threads",
		func(r *report.Report) (bool, string) {
			return crossoverIn(r.Table("fig7"), "swqueue 4us", "prefetch 4us", 1.2, 10, 20)
		})
	add("fig7.swq-cap", "fig7",
		"\"queue management overhead limits the peak performance of the application-managed queues to just 50% of the DRAM baseline\"",
		func(r *report.Report) (bool, string) {
			return peakIn(r.Table("fig7").FindSeries("swqueue 1us"), 0.4, 0.6)
		})
	add("fig7.prefetch-dominates-1us", "fig7",
		"at 1us the prefetch path beats software queues at every thread count (LFBs suffice; SWQ pays management overhead)",
		func(r *report.Report) (bool, string) {
			return orderedEverywhere(r.Table("fig7"), "prefetch 1us", "swqueue 1us", 0.01)
		})
	add("fig7.swq-scales-past-lfb", "fig7",
		"at 4us the SWQ peak is ~2x the LFB-limited prefetch plateau",
		func(r *report.Report) (bool, string) {
			return peakRatioIn(r.Table("fig7"), "swqueue 4us", "prefetch 4us", 1.5, 2.5)
		})

	// ---- Fig 8: multicore software queues (§V-C) ----
	add("fig8.core-scaling-order", "fig8",
		"\"achieve linear performance improvement as core count increases\": 1us peaks strictly ordered 8c > 4c > 2c > 1c",
		func(r *report.Report) (bool, string) {
			return orderedPeaks(r.Table("fig8"), 0.2, "1us 8c", "1us 4c", "1us 2c", "1us 1c")
		})
	add("fig8.request-rate-wall", "fig8",
		"\"at eight cores, the system encounters a request-rate bottleneck of the PCIe interface\": 2x scaling through 4 cores, sub-1.8x to 8",
		func(r *report.Report) (bool, string) {
			t := r.Table("fig8")
			if ok, d := peakRatioIn(t, "1us 2c", "1us 1c", 1.8, 2.2); !ok {
				return false, d
			}
			if ok, d := peakRatioIn(t, "1us 4c", "1us 2c", 1.8, 2.2); !ok {
				return false, d
			}
			return peakRatioIn(t, "1us 8c", "1us 4c", 1.2, 1.8)
		})
	add("fig8.latency-parity", "fig8",
		"2/4us results are \"analogous, achieving identical peaks at proportionally higher thread counts\"",
		func(r *report.Report) (bool, string) {
			return peakRatioIn(r.Table("fig8"), "4us 8c", "1us 8c", 0.9, 1.1)
		})

	// ---- Fig 9: software queues with MLP (§V-C) ----
	add("fig9.mlp-order", "fig9",
		"single-core SWQ peaks fall with MLP (paper: 50% / 45% / 35% for 1/2/4 reads)",
		func(r *report.Report) (bool, string) {
			return orderedPeaks(r.Table("fig9"), 0.05, "1c 1-read", "1c 2-read", "1c 4-read")
		})
	add("fig9.single-core-band", "fig9",
		"the single-core 1-read SWQ peak sits at ~half the DRAM baseline",
		func(r *report.Report) (bool, string) {
			return peakIn(r.Table("fig9").FindSeries("1c 1-read"), 0.4, 0.6)
		})
	add("fig9.mlp4-four-cores", "fig9",
		"\"the four-core system [reaches] just 1.3x performance relative to the DRAM baseline\" at MLP 4",
		func(r *report.Report) (bool, string) {
			return peakIn(r.Table("fig9").FindSeries("4c 4-read"), 1.0, 1.4)
		})

	// ---- Fig 10: application case studies (§V-D) ----
	add("fig10.prefetch-band", "fig10a",
		"single-core prefetch puts the applications \"between 35% to 65% of the DRAM baseline\"",
		func(r *report.Report) (bool, string) {
			return appPeaksIn(r.Table("fig10a"), 0.3, 0.7)
		})
	add("fig10.swq-band", "fig10b",
		"single-core queues \"only reach 20% to 50%\"",
		func(r *report.Report) (bool, string) {
			return appPeaksIn(r.Table("fig10b"), 0.15, 0.55)
		})
	add("fig10.apps-track-ubench", "fig10a",
		"\"the application behavior is very similar to the microbenchmark behavior in the presence of MLP\": Bloom and Memcached track the 4-read microbenchmark",
		func(r *report.Report) (bool, string) {
			t := r.Table("fig10a")
			_, ub := t.FindSeries("ubench-w200-r4").Peak()
			for _, app := range []string{"bloom-k4", "memcached-v4"} {
				_, y := t.FindSeries(app).Peak()
				if math.IsNaN(y) || math.Abs(y-ub) > 0.05 {
					return false, fmt.Sprintf("%s peak %.3f vs ubench %.3f (want within 0.05)", app, y, ub)
				}
			}
			return true, fmt.Sprintf("bloom/memcached peaks within 0.05 of ubench %.3f", ub)
		})
	add("fig10.8c-prefetch-flat", "fig10c",
		"8-core prefetch: hardware queues \"fundamentally prevent adequate application performance\" — flat regardless of threads",
		func(r *report.Report) (bool, string) {
			t := r.Table("fig10c")
			for _, s := range t.Series {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, y := range s.Y {
					v := float64(y)
					if math.IsNaN(v) {
						continue
					}
					lo, hi = math.Min(lo, v), math.Max(hi, v)
				}
				if hi <= 0 || (hi-lo)/hi > 0.15 {
					return false, fmt.Sprintf("%s varies %.3f-%.3f (> 15%%)", s.Label, lo, hi)
				}
			}
			return true, "every series flat within 15% across the thread sweep"
		})
	add("fig10.8c-swq-scale", "fig10d",
		"8-core queues peak \"between 1.2x to 2.0x of the DRAM baseline performance of a single core\"",
		func(r *report.Report) (bool, string) {
			return appPeaksIn(r.Table("fig10d"), 1.2, 2.2)
		})

	// ---- Latency attribution (per-phase blame accounting) ----
	// These read the optional attribution section (-attrib sweeps) and
	// pin where the simulated time actually goes, not just the
	// throughput curves it produces. Thresholds are calibrated against
	// both the publication and -quick sweeps; all fractions are shares
	// of summed end-to-end latency.
	addAttrib("attrib.exact", "fig7",
		"the phase ledger telescopes exactly: per-access phase sums equal measured end-to-end latency, zero mismatches across every attributed cell",
		func(r *report.Report) (bool, string) {
			cells, mismatches := 0, uint64(0)
			for _, t := range r.Tables {
				for _, s := range t.Series {
					for _, a := range s.Attrib {
						if a == nil {
							continue
						}
						cells++
						mismatches += a.Mismatches
					}
				}
			}
			if cells == 0 {
				return false, "attribution section present but no cell carries a summary"
			}
			return mismatches == 0, fmt.Sprintf("%d attributed cells, %d mismatches", cells, mismatches)
		})
	addAttrib("attrib.swq-overhead-is-queue-wait", "fig7",
		"SWQ management overhead is descriptor queue wait, not context-switch time: at 1us the single-thread cell blames over half its latency on queue_wait while switch stays under 5% at every load",
		func(r *report.Report) (bool, string) {
			s := r.Table("fig7").FindSeries("swqueue 1us")
			first, _ := endAttribs(s)
			if first == nil {
				return false, "swqueue 1us has no attributed cells"
			}
			qw := phaseFrac(first, "queue_wait")
			if !(qw >= 0.5) {
				return false, fmt.Sprintf("queue_wait %.0f%% at the first cell (want >= 50%%)", qw*100)
			}
			for i, a := range s.Attrib {
				if a == nil {
					continue
				}
				if sw := phaseFrac(a, "switch"); sw > 0.05 {
					return false, fmt.Sprintf("switch %.0f%% at x=%g (want <= 5%% everywhere)", sw*100, float64(s.X[i]))
				}
			}
			return true, fmt.Sprintf("queue_wait %.0f%% single-threaded; switch <= 5%% at every thread count", qw*100)
		})
	addAttrib("attrib.swq-load-shift", "fig7",
		"as load rises past the core count, SWQ blame shifts out of the descriptor queue into completion wait (threads parked awaiting CQ wakeups): queue_wait's share falls while completion_wait's grows past 35%",
		func(r *report.Report) (bool, string) {
			first, last := endAttribs(r.Table("fig7").FindSeries("swqueue 1us"))
			if first == nil || first == last {
				return false, "swqueue 1us needs attributed cells at two loads"
			}
			qw0, qw1 := phaseFrac(first, "queue_wait"), phaseFrac(last, "queue_wait")
			cw0, cw1 := phaseFrac(first, "completion_wait"), phaseFrac(last, "completion_wait")
			detail := fmt.Sprintf("queue_wait %.0f%% -> %.0f%%, completion_wait %.0f%% -> %.0f%%",
				qw0*100, qw1*100, cw0*100, cw1*100)
			ok := qw1 < qw0 && cw1 > cw0 && cw1 >= 0.35
			return ok, detail
		})
	addAttrib("attrib.prefetch-transit-dominated", "fig7",
		"under the LFB knee the prefetch path is transit-dominated: at 1us and one thread, link and chip-queue transit is the dominant phase with over 60% of latency",
		func(r *report.Report) (bool, string) {
			first, _ := endAttribs(r.Table("fig7").FindSeries("prefetch 1us"))
			if first == nil {
				return false, "prefetch 1us has no attributed cells"
			}
			ph, frac := first.DominantPhase()
			return ph == "transit" && frac >= 0.6,
				fmt.Sprintf("dominant phase %s at %.0f%% (want transit >= 60%%)", ph, frac*100)
		})
	addAttrib("attrib.mlp-transit-dominated", "fig6",
		"prefetch at high MLP starts transit-dominated: the single-thread 4-read cell blames most of its latency on transit, not device service",
		func(r *report.Report) (bool, string) {
			first, _ := endAttribs(r.Table("fig6").FindSeries("4-read"))
			if first == nil {
				return false, "4-read has no attributed cells"
			}
			ph, frac := first.DominantPhase()
			return ph == "transit" && frac >= 0.55,
				fmt.Sprintf("dominant phase %s at %.0f%% (want transit >= 55%%)", ph, frac*100)
		})
	addAttrib("attrib.oversubscribed-completion-wait", "fig6",
		"past the LFB knee oversubscribed threads pile into completion wait: the highest-thread 4-read cell's dominant phase is completion_wait with over 45% of latency",
		func(r *report.Report) (bool, string) {
			_, last := endAttribs(r.Table("fig6").FindSeries("4-read"))
			if last == nil {
				return false, "4-read has no attributed cells"
			}
			ph, frac := last.DominantPhase()
			return ph == "completion_wait" && frac >= 0.45,
				fmt.Sprintf("dominant phase %s at %.0f%% (want completion_wait >= 45%%)", ph, frac*100)
		})

	// ---- Cluster-scale fleet experiments (internal/cluster) ----
	// addCluster claims additionally require the report's cluster
	// section, so they skip (not fail) on fleet-free sweeps.
	addCluster := func(id, table, claim string, eval func(r *report.Report) (bool, string)) {
		cs = append(cs, Check{ID: id, Tables: []string{table}, Claim: claim,
			Requires: requiresCluster, Eval: eval})
	}
	addCluster("cluster.least-beats-rr", "cluster-policies",
		"near saturation with heterogeneous request sizes, least-outstanding routing beats round-robin's fleet p99: the adaptive policy steers around the instance that drew a run of fat values",
		func(r *report.Report) (bool, string) {
			t := r.Table("cluster-policies")
			lo := t.FindSeries("least-outstanding").YAt(0.9)
			rr := t.FindSeries("round-robin").YAt(0.9)
			return within(lo/rr, 0, 0.9),
				fmt.Sprintf("least-outstanding %.2fus vs round-robin %.2fus at rho=0.9 (want <= 0.9x)", lo, rr)
		})
	addCluster("cluster.p99-rises-with-load", "cluster-policies",
		"every routing policy's fleet p99 rises with offered load — open-loop queueing has no relief valve",
		func(r *report.Report) (bool, string) {
			t := r.Table("cluster-policies")
			for _, s := range t.Series {
				if ok, d := monotoneNonDecreasing(s, 0.1); !ok {
					return false, s.Label + ": " + d
				}
			}
			return true, fmt.Sprintf("all %d policy series monotone in load", len(t.Series))
		})
	addCluster("cluster.burst-tail", "cluster-shapes",
		"the bursty arrival shape (same mean rate, half-duty on-windows) at least doubles the fleet p99 near saturation",
		func(r *report.Report) (bool, string) {
			return valueRatioAt(r.Table("cluster-shapes"), "bursty", "poisson", 0.9, 2, math.Inf(1))
		})
	addCluster("cluster.swq-absorbs-more", "cluster-mechs",
		"past the prefetch fleet's LFB-capped knee, SWQ fleets absorb more load per instance: the absorb ratio at 1.8x prefetch capacity favors swqueue by at least 1.3x",
		func(r *report.Report) (bool, string) {
			return valueRatioAt(r.Table("cluster-mechs"), "swqueue", "prefetch", 1.8, 1.3, math.Inf(1))
		})
	addCluster("cluster.prefetch-saturates", "cluster-mechs",
		"driven past its capacity the prefetch fleet visibly saturates: absorb ratio <= 0.8 at 1.8x and every instance flags saturated windows, while the SWQ fleet still absorbs >= 0.9 with none",
		func(r *report.Report) (bool, string) {
			t := r.Table("cluster-mechs")
			pf, sw := t.FindSeries("prefetch"), t.FindSeries("swqueue")
			if !within(pf.YAt(1.8), 0, 0.8) {
				return false, fmt.Sprintf("prefetch absorb %.3f at x=1.8 (want <= 0.8)", pf.YAt(1.8))
			}
			if !within(sw.YAt(1.8), 0.9, 1.1) {
				return false, fmt.Sprintf("swqueue absorb %.3f at x=1.8 (want >= 0.9)", sw.YAt(1.8))
			}
			f := pf.FleetAt(1.8)
			if f == nil {
				return false, "prefetch cell at x=1.8 carries no fleet summary"
			}
			for i, in := range f.Instances {
				if in.SaturatedWindows == 0 {
					return false, fmt.Sprintf("prefetch instance %d flags no saturated windows at x=1.8", i)
				}
			}
			if f := sw.FleetAt(1.8); f != nil {
				for i, in := range f.Instances {
					if in.SaturatedWindows > 0 {
						return false, fmt.Sprintf("swqueue instance %d flags %d saturated windows at x=1.8", i, in.SaturatedWindows)
					}
				}
			}
			return true, fmt.Sprintf("prefetch absorb %.3f (all instances saturated), swqueue %.3f (none)",
				pf.YAt(1.8), sw.YAt(1.8))
		})
	addCluster("cluster.no-saturation-at-half-load", "cluster-policies",
		"at half capacity no instance of any fleet flags a saturated window — the detector stays quiet below the knee",
		func(r *report.Report) (bool, string) {
			cells := 0
			for _, id := range []string{"cluster-policies", "cluster-shapes", "cluster-mechs"} {
				t := r.Table(id)
				if t == nil {
					continue
				}
				for _, s := range t.Series {
					f := s.FleetAt(0.5)
					if f == nil {
						continue
					}
					cells++
					for i, in := range f.Instances {
						if in.SaturatedWindows > 0 {
							return false, fmt.Sprintf("%s/%s instance %d: %d saturated windows at rho=0.5",
								id, s.Label, i, in.SaturatedWindows)
						}
					}
				}
			}
			return cells > 0, fmt.Sprintf("%d half-load fleet cells, zero saturated windows", cells)
		})
	addCluster("cluster.fleet-counts-exact", "cluster-policies",
		"every fleet cell drains completely: completions equal arrivals, and per-instance counts sum to the fleet totals",
		func(r *report.Report) (bool, string) {
			cells := 0
			for _, id := range []string{"cluster-policies", "cluster-shapes", "cluster-mechs"} {
				t := r.Table(id)
				if t == nil {
					continue
				}
				for _, s := range t.Series {
					for i, f := range s.Fleet {
						if f == nil {
							continue
						}
						cells++
						if f.Completed != f.Arrived || f.Arrived == 0 {
							return false, fmt.Sprintf("%s/%s x=%g: completed %d of %d arrived",
								id, s.Label, float64(s.X[i]), f.Completed, f.Arrived)
						}
					}
				}
			}
			return cells > 0, fmt.Sprintf("%d fleet cells, all drained exactly", cells)
		})

	return cs
}

// requiresCluster gates a claim on the report carrying a cluster
// section; only sweeps that ran fleet experiments do.
func requiresCluster(r *report.Report) string {
	if r.Cluster == nil {
		return "no cluster section in report (rerun with -fleet)"
	}
	return ""
}

// requiresAttribution gates a claim on the report carrying a latency
// attribution section; only -attrib sweeps do.
func requiresAttribution(r *report.Report) string {
	if r.Attribution == nil {
		return "no attribution section in report (rerun with -attrib)"
	}
	return ""
}

// phaseFrac returns the share of a cell's summed end-to-end latency
// blamed on one phase, NaN when the cell is unattributed.
func phaseFrac(a *report.AttribSummary, phase string) float64 {
	if a == nil || a.TotalPs <= 0 {
		return math.NaN()
	}
	return float64(a.PhasePs(phase)) / float64(a.TotalPs)
}

// endAttribs returns the lowest- and highest-x attributed cells of a
// series (both nil when none are attributed; identical when only one
// cell is).
func endAttribs(s *report.Series) (first, last *report.AttribSummary) {
	if s == nil {
		return nil, nil
	}
	for _, a := range s.Attrib {
		if a == nil {
			continue
		}
		if first == nil {
			first = a
		}
		last = a
	}
	return first, last
}

// appPeaksIn asserts every Fig 10 application series peaks in [lo, hi].
func appPeaksIn(t *report.Table, lo, hi float64) (bool, string) {
	detail := ""
	for _, app := range fig10Apps {
		s := t.FindSeries(app)
		if s == nil {
			return false, fmt.Sprintf("series %q absent", app)
		}
		_, y := s.Peak()
		detail += fmt.Sprintf(" %s:%.3f", app, y)
		if !within(y, lo, hi) {
			return false, fmt.Sprintf("%s peak %.3f outside [%.2f, %.2f]", app, y, lo, hi)
		}
	}
	return true, fmt.Sprintf("app peaks%s all in [%.2f, %.2f]", detail, lo, hi)
}
