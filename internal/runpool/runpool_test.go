package runpool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestResultsInSubmissionOrder submits jobs across many workers and
// checks that collecting results in program order reconstructs the
// deterministic sequence — the property the sweep harness relies on.
func TestResultsInSubmissionOrder(t *testing.T) {
	p := New(context.Background(), 8, 4)
	defer p.Close()

	const n = 100
	tasks := make([]*Task[int], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Submit(p, func() (int, error) { return i * i, nil })
	}
	for i, task := range tasks {
		got, err := task.Wait()
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		if got != i*i {
			t.Fatalf("task %d = %d, want %d", i, got, i*i)
		}
	}
}

// TestPanicIsolation: a panicking job fails its own task with a
// decorated error; other jobs and the pool survive.
func TestPanicIsolation(t *testing.T) {
	p := New(context.Background(), 2, 0)
	defer p.Close()

	bad := Submit(p, func() (int, error) { panic("cell exploded") })
	good := Submit(p, func() (int, error) { return 7, nil })

	if _, err := bad.Wait(); err == nil || !strings.Contains(err.Error(), "cell exploded") {
		t.Fatalf("panicking job error = %v, want panic message", err)
	}
	if v, err := good.Wait(); err != nil || v != 7 {
		t.Fatalf("surviving job = (%d, %v), want (7, nil)", v, err)
	}
}

// TestErrorPassthrough: job errors reach Wait unchanged.
func TestErrorPassthrough(t *testing.T) {
	p := New(context.Background(), 1, 0)
	defer p.Close()

	sentinel := errors.New("boom")
	task := Submit(p, func() (int, error) { return 0, sentinel })
	if _, err := task.Wait(); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
}

// TestCancellation: after the context is cancelled, unrun jobs fail
// fast with the context error instead of executing.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := New(ctx, 1, 10)
	defer p.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	var ran atomic.Int32
	blocker := Submit(p, func() (int, error) { close(started); <-release; return 0, nil })
	<-started // the single worker is now busy; later jobs stay queued
	queued := make([]*Task[int], 5)
	for i := range queued {
		queued[i] = Submit(p, func() (int, error) { ran.Add(1); return 0, nil })
	}

	cancel()
	close(release)
	if _, err := blocker.Wait(); err != nil {
		t.Fatalf("in-flight job failed: %v", err)
	}
	for i, task := range queued {
		if _, err := task.Wait(); !errors.Is(err, context.Canceled) {
			t.Fatalf("queued task %d err = %v, want context.Canceled", i, err)
		}
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d cancelled jobs ran", got)
	}
}

// TestSubmitUnblocksOnCancel: a Submit blocked on a full queue returns
// (with a failed task) when the context is cancelled.
func TestSubmitUnblocksOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := New(ctx, 1, 0)
	defer p.Close()

	release := make(chan struct{})
	Submit(p, func() (int, error) { <-release; return 0, nil })

	done := make(chan *Task[int])
	go func() {
		// The worker is busy and the queue has no slots, so this blocks
		// until cancellation.
		done <- Submit(p, func() (int, error) { return 1, nil })
	}()

	time.Sleep(10 * time.Millisecond) // let the goroutine block
	cancel()
	select {
	case task := <-done:
		if _, err := task.Wait(); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit did not unblock on cancellation")
	}
	close(release)
}

// TestCloseWaitsForInFlight: Close returns only after started jobs
// complete.
func TestCloseWaitsForInFlight(t *testing.T) {
	p := New(context.Background(), 4, 4)
	var finished atomic.Int32
	const n = 16
	tasks := make([]*Task[int], n)
	for i := 0; i < n; i++ {
		tasks[i] = Submit(p, func() (int, error) {
			time.Sleep(time.Millisecond)
			finished.Add(1)
			return 0, nil
		})
	}
	p.Close()
	if got := finished.Load(); got != n {
		t.Fatalf("Close returned with %d/%d jobs finished", got, n)
	}
	for _, task := range tasks {
		if _, err := task.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestManyWorkersManyJobs is a small stress shape for the race
// detector.
func TestManyWorkersManyJobs(t *testing.T) {
	p := New(context.Background(), 16, 8)
	defer p.Close()
	var sum atomic.Int64
	tasks := make([]*Task[int], 500)
	for i := range tasks {
		i := i
		tasks[i] = Submit(p, func() (int, error) {
			sum.Add(int64(i))
			return i, nil
		})
	}
	for i, task := range tasks {
		if v, err := task.Wait(); err != nil || v != i {
			t.Fatalf("task %d = (%d, %v)", i, v, err)
		}
	}
	if want := int64(500 * 499 / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func ExamplePool() {
	p := New(context.Background(), 4, 2)
	defer p.Close()
	a := Submit(p, func() (string, error) { return "first", nil })
	b := Submit(p, func() (string, error) { return "second", nil })
	x, _ := a.Wait()
	y, _ := b.Wait()
	fmt.Println(x, y)
	// Output: first second
}
