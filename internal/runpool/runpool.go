// Package runpool provides the bounded worker pool that executes
// independent simulation cells across CPU cores. Each submitted job is
// a self-contained deterministic computation (a core.Run* invocation);
// the pool adds wall-clock parallelism without touching result
// content, because callers collect results from the returned Task
// handles in their own (deterministic) program order — the same seed
// and flags therefore produce byte-identical output regardless of the
// worker count.
//
// The pool is deliberately small: fixed workers, a bounded submission
// queue for backpressure, per-job panic isolation (a panicking job
// fails its own Task instead of tearing down the process), and
// cancellation through a context.Context that fails queued-but-unrun
// jobs fast.
//
// Workers also act as the reuse domain for simulation scratch memory:
// each cell's engine returns its backing arrays (event heap, now-queue,
// process tables) to a per-P sync.Pool when the run finishes
// (sim.Engine.Recycle), and the next cell on the same worker reacquires
// them warm. Long worker goroutines tend to stay on their P, so a
// sweep's steady state allocates engine arrays roughly once per worker
// rather than once per cell.
package runpool

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
)

// Pool runs submitted jobs on a fixed set of worker goroutines.
type Pool struct {
	ctx  context.Context
	jobs chan func()
	wg   sync.WaitGroup

	closeOnce sync.Once
}

// New returns a pool with the given worker count and submission-queue
// depth. workers < 1 is treated as 1; queue < 0 as 0 (rendezvous).
// The context cancels queued jobs: once ctx is done, jobs that have
// not started return ctx.Err() from Wait without running.
func New(ctx context.Context, workers, queue int) *Pool {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{ctx: ctx, jobs: make(chan func(), queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// Close stops accepting jobs and waits for every started job to
// finish. It is safe to call more than once; Submit after Close
// panics (a harness bug, like sending on a closed channel).
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.jobs) })
	p.wg.Wait()
}

// Task is the handle of one submitted job.
type Task[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Wait blocks until the job has run (or was cancelled) and returns its
// result. Wait may be called multiple times and from multiple
// goroutines.
func (t *Task[T]) Wait() (T, error) {
	<-t.done
	return t.val, t.err
}

// Submit enqueues f on the pool and returns its handle. Submit blocks
// while the queue is full (backpressure), unless the pool's context is
// cancelled first, in which case the task fails with ctx.Err(). A
// panic inside f is recovered into the task's error.
func Submit[T any](p *Pool, f func() (T, error)) *Task[T] {
	t := &Task[T]{done: make(chan struct{})}
	job := func() {
		defer close(t.done)
		defer func() {
			if r := recover(); r != nil {
				t.err = fmt.Errorf("runpool: job panicked: %v\n%s", r, debug.Stack())
			}
		}()
		if err := p.ctx.Err(); err != nil {
			t.err = err
			return
		}
		t.val, t.err = f()
	}
	select {
	case p.jobs <- job:
	case <-p.ctx.Done():
		t.err = p.ctx.Err()
		close(t.done)
	}
	return t
}
