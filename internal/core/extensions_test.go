package core

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/workload"
)

func TestKernelQueueOverheadDominates(t *testing.T) {
	cfg := platform.Default()
	w := ubench(300)
	r := must(RunKernelQueue(cfg, w, 8, false))
	// Per access: 2 syscalls + doorbell + 2 kernel switches + interrupt
	// >> 1us; iteration time must be in the several-microsecond range.
	perIter := r.ElapsedSeconds / 300 * 1e9
	if perIter < 2000 {
		t.Errorf("kernelq iteration %.0fns, want dominated by kernel overheads (>2us)", perIter)
	}
	if r.Accesses != 300 {
		t.Errorf("accesses = %d", r.Accesses)
	}
	if r.WorkInstr != 300*workload.DefaultWorkCount {
		t.Errorf("work = %.0f", r.WorkInstr)
	}
}

func TestKernelQueueInterruptCoalescing(t *testing.T) {
	// More threads -> more in-flight -> completions coalesce into fewer
	// interrupts, so throughput improves somewhat with threads (but
	// never approaches the user-level mechanisms).
	cfg := platform.Default()
	w := ubench(400)
	one := must(RunKernelQueue(cfg, w, 1, false))
	eight := must(RunKernelQueue(cfg, w, 8, false))
	if eight.WorkIPS() <= one.WorkIPS() {
		t.Errorf("kernelq gained nothing from threads: %.3g -> %.3g", one.WorkIPS(), eight.WorkIPS())
	}
	pf := must(RunPrefetch(cfg, w, 8, false))
	if eight.WorkIPS() > pf.WorkIPS()/5 {
		t.Errorf("kernelq (%.3g) implausibly close to prefetch (%.3g)", eight.WorkIPS(), pf.WorkIPS())
	}
}

func TestSMTScalesWithContexts(t *testing.T) {
	cfg := platform.Default()
	w := ubench(600)
	var prev float64
	for _, contexts := range []int{1, 2, 4} {
		c := cfg
		c.SMTContexts = contexts
		r := must(RunSMT(c, w))
		if r.WorkIPS() <= prev {
			t.Errorf("SMT-%d (%.3g) not above SMT with fewer contexts (%.3g)", contexts, r.WorkIPS(), prev)
		}
		prev = r.WorkIPS()
	}
}

func TestPrefetchWritesDoNotYield(t *testing.T) {
	// A write-only inner loop must not cost context switches: with one
	// thread, switches stay zero even with writes present.
	cfg := platform.Default()
	wl := workload.NewMicrobenchRW(200, workload.DefaultWorkCount, 1, 4)
	r := must(RunPrefetch(cfg, wl, 1, false))
	if r.Diag.Switches != 0 {
		t.Errorf("switches = %d; posted writes must not yield", r.Diag.Switches)
	}
	if r.Diag.Writes != 800 {
		t.Errorf("writes = %d", r.Diag.Writes)
	}
}

func TestPrefetchWritesNearlyFree(t *testing.T) {
	cfg := platform.Default()
	ro := workload.NewMicrobench(1000, workload.DefaultWorkCount, 1)
	rw := workload.NewMicrobenchRW(1000, workload.DefaultWorkCount, 1, 2)
	a := must(RunPrefetch(cfg, ro, 10, false))
	b := must(RunPrefetch(cfg, rw, 10, false))
	if b.ElapsedSeconds > a.ElapsedSeconds*1.05 {
		t.Errorf("2 posted writes/iter cost %.1f%%, want <5%%",
			(b.ElapsedSeconds/a.ElapsedSeconds-1)*100)
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	// A tiny store buffer with a slow link forces write stalls: elapsed
	// grows well past the read-only run.
	cfg := platform.Default()
	cfg.StoreBufferEntries = 1
	cfg.PCIeBandwidth = 1e8 // 100 MB/s: 880ns per 64B TLP
	ro := workload.NewMicrobench(200, workload.DefaultWorkCount, 1)
	rw := workload.NewMicrobenchRW(200, workload.DefaultWorkCount, 1, 2)
	a := must(RunPrefetch(cfg, ro, 4, false))
	b := must(RunPrefetch(cfg, rw, 4, false))
	if b.ElapsedSeconds < a.ElapsedSeconds*1.5 {
		t.Errorf("no store-buffer backpressure: %.3g vs %.3g", a.ElapsedSeconds, b.ElapsedSeconds)
	}
}

func TestSWQWriteCompletionsDiscarded(t *testing.T) {
	// Write completions must not wake or corrupt reading threads.
	cfg := platform.Default()
	wl := workload.NewMicrobenchRW(300, workload.DefaultWorkCount, 2, 2)
	r := must(RunSWQueue(cfg, wl, 6, false))
	if r.Accesses != 600 || r.Diag.Writes != 600 {
		t.Errorf("accesses=%d writes=%d, want 600/600", r.Accesses, r.Diag.Writes)
	}
	if r.WorkInstr != 300*workload.DefaultWorkCount {
		t.Errorf("work = %.0f", r.WorkInstr)
	}
}

func TestPointerChaseUnderMechanisms(t *testing.T) {
	cfg := platform.Default()
	const work = 50 // short enough that the window would find MLP
	chase := workload.NewPointerChase(512, 400, work)
	base := must(RunDRAMBaseline(cfg, chase))
	// Dependent chain: the DRAM baseline is latency-bound (~DRAM
	// latency per hop) — markedly slower than the same loop with
	// independent addresses, where the window overlaps iterations.
	perHop := base.ElapsedSeconds / 400 * 1e9
	if perHop < 75 {
		t.Errorf("chase baseline %.0fns/hop; dependent loads should expose full DRAM latency", perHop)
	}
	indep := must(RunDRAMBaseline(cfg, workload.NewMicrobench(400, work, 1)))
	if base.ElapsedSeconds < indep.ElapsedSeconds*13/10 {
		t.Errorf("chase baseline (%.3g) not clearly slower than independent (%.3g)",
			base.ElapsedSeconds, indep.ElapsedSeconds)
	}

	chase.Reset()
	od := must(RunOnDemandDevice(cfg, chase))
	if n := od.NormalizedTo(base.Measurement); n > 0.15 {
		t.Errorf("on-demand chase normalized %.3f, want crushed", n)
	}

	chase.Reset()
	pf := must(RunPrefetch(cfg, chase, 10, true))
	if n := pf.NormalizedTo(base.Measurement); n < 0.6 {
		t.Errorf("10-thread prefetch chase normalized %.3f, want restored (>0.6)", n)
	}
	if pf.Diag.OnDemand != 0 {
		t.Errorf("chase replay misses: %d (data-dependent addresses diverged)", pf.Diag.OnDemand)
	}
	if chase.Hops != 2*400 {
		t.Errorf("hops = %d, want both passes complete", chase.Hops)
	}
}
