package core

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestOccupancyTimeline(t *testing.T) {
	cfg := platform.Default()
	cfg.SamplePeriod = 200 * sim.Nanosecond
	w := workload.NewMicrobench(1500, workload.DefaultWorkCount, 1)
	r := must(RunPrefetch(cfg, w, 10, false))

	if len(r.Diag.Timeline) < 10 {
		t.Fatalf("timeline has %d samples", len(r.Diag.Timeline))
	}
	// Samples are ordered and spaced by the period.
	for i := 1; i < len(r.Diag.Timeline); i++ {
		if r.Diag.Timeline[i].At-r.Diag.Timeline[i-1].At != cfg.SamplePeriod {
			t.Fatalf("sample spacing %v at %d", r.Diag.Timeline[i].At-r.Diag.Timeline[i-1].At, i)
		}
	}
	// At steady state the 10-thread run keeps the LFB pool essentially
	// full; at least one sample must show it saturated and none may
	// exceed capacity.
	sawFull := false
	for _, s := range r.Diag.Timeline {
		if s.LFBInUse > cfg.LFBPerCore {
			t.Fatalf("sample shows %d LFBs in use, capacity %d", s.LFBInUse, cfg.LFBPerCore)
		}
		if s.LFBInUse >= cfg.LFBPerCore-1 {
			sawFull = true
		}
		if s.ChipInUse > s.LFBInUse {
			t.Fatalf("chip occupancy %d above LFB occupancy %d", s.ChipInUse, s.LFBInUse)
		}
	}
	if !sawFull {
		t.Error("timeline never showed the LFB pool near saturation at 10 threads")
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	w := workload.NewMicrobench(200, workload.DefaultWorkCount, 1)
	r := must(RunPrefetch(platform.Default(), w, 4, false))
	if len(r.Diag.Timeline) != 0 {
		t.Errorf("timeline sampled %d points without being enabled", len(r.Diag.Timeline))
	}
}

func TestTimelineDoesNotChangeTiming(t *testing.T) {
	w := workload.NewMicrobench(800, workload.DefaultWorkCount, 1)
	plain := must(RunPrefetch(platform.Default(), w, 8, false))
	cfg := platform.Default()
	cfg.SamplePeriod = 100 * sim.Nanosecond
	sampled := must(RunPrefetch(cfg, w, 8, false))
	if plain.ElapsedSeconds != sampled.ElapsedSeconds {
		t.Errorf("sampling changed timing: %.9g vs %.9g", plain.ElapsedSeconds, sampled.ElapsedSeconds)
	}
}
