package core

import (
	"reflect"
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// metricsCfg returns the default platform with the flight recorder
// enabled at a 10us window.
func metricsCfg() platform.Config {
	cfg := platform.Default()
	cfg.MetricsWindow = 10 * sim.Microsecond
	return cfg
}

func TestRecorderSeriesPresentOnlyWhenEnabled(t *testing.T) {
	w := ubench(testIters)
	plain := must(RunPrefetch(platform.Default(), w, 4, false))
	if plain.Series != nil {
		t.Error("recorder disabled but Result.Series is set")
	}
	rec := must(RunPrefetch(metricsCfg(), w, 4, false))
	if rec.Series == nil {
		t.Fatal("recorder enabled but Result.Series is nil")
	}
	if err := rec.Series.Validate(); err != nil {
		t.Fatalf("series invalid: %v", err)
	}
}

// TestRecorderTotalsMatchCounters cross-checks the flight recorder
// against the mechanisms' own counters for every threaded mechanism:
// the windowed starts must sum to the measured access count, and
// completions must match starts on fault-free runs.
func TestRecorderTotalsMatchCounters(t *testing.T) {
	w := ubench(testIters)
	cfg := metricsCfg()
	runs := map[string]Result{
		"prefetch": must(RunPrefetch(cfg, w, 4, false)),
		"swqueue":  must(RunSWQueue(cfg, w, 4, false)),
		"kernelq":  must(RunKernelQueue(cfg, w, 2, false)),
		"ondemand": must(RunOnDemandDevice(cfg, w)),
	}
	for name, r := range runs {
		ts := r.Series
		if ts == nil {
			t.Errorf("%s: no series", name)
			continue
		}
		if ts.TotalStarts != uint64(r.Accesses) {
			t.Errorf("%s: recorder starts %d != measured accesses %d", name, ts.TotalStarts, r.Accesses)
		}
		if ts.TotalCompletes != ts.TotalStarts {
			t.Errorf("%s: completes %d != starts %d on a fault-free run", name, ts.TotalCompletes, ts.TotalStarts)
		}
		if ts.TotalP99Ns <= 0 {
			t.Errorf("%s: rollup p99 = %g, want positive", name, ts.TotalP99Ns)
		}
		if err := ts.Validate(); err != nil {
			t.Errorf("%s: invalid series: %v", name, err)
		}
	}
	// The prefetch mechanism must show LFB occupancy; the queue
	// mechanisms must show software-queue occupancy instead.
	pf := runs["prefetch"].Series
	var lfb float64
	for _, v := range pf.LFBMean {
		lfb += v
	}
	if lfb == 0 {
		t.Error("prefetch: LFB gauge never moved")
	}
	sq := runs["swqueue"].Series
	var sqSum float64
	for _, v := range sq.SQMean {
		sqSum += v
	}
	if sqSum == 0 {
		t.Error("swqueue: request-queue gauge never moved")
	}
}

func TestRecorderDoesNotPerturbMeasurement(t *testing.T) {
	// Telemetry is observational: enabling it must not change the
	// simulated result (same events, same timings, same measurement).
	w := ubench(testIters)
	plain := must(RunPrefetch(platform.Default(), w, 8, false))
	rec := must(RunPrefetch(metricsCfg(), w, 8, false))
	if !reflect.DeepEqual(plain.Measurement, rec.Measurement) {
		t.Errorf("recorder changed the measurement:\nplain: %+v\nrec:   %+v", plain.Measurement, rec.Measurement)
	}
	if !reflect.DeepEqual(plain.Diag, rec.Diag) {
		t.Errorf("recorder changed the diagnostics:\nplain: %+v\nrec:   %+v", plain.Diag, rec.Diag)
	}
}

func TestRecorderDeterministicAcrossRuns(t *testing.T) {
	w := ubench(testIters)
	a := must(RunSWQueue(metricsCfg(), w, 4, false))
	b := must(RunSWQueue(metricsCfg(), w, 4, false))
	if !reflect.DeepEqual(a.Series, b.Series) {
		t.Error("identical runs produced different series")
	}
}

// TestRecorderSinkSeesEveryWindow wires a sink through the platform
// config and checks the published stream against the finished series.
func TestRecorderSinkSeesEveryWindow(t *testing.T) {
	sink := &collectSink{}
	cfg := metricsCfg()
	cfg.MetricsSink = sink
	r := must(RunPrefetch(cfg, ubench(testIters), 4, false))
	if len(sink.events) != r.Series.Windows() {
		t.Fatalf("sink saw %d windows, series has %d", len(sink.events), r.Series.Windows())
	}
	var starts uint64
	for i, ev := range sink.events {
		if ev.Index != i {
			t.Errorf("event %d published out of order (Index %d)", i, ev.Index)
		}
		starts += ev.Starts
	}
	if starts != r.Series.TotalStarts {
		t.Errorf("published starts %d != series total %d", starts, r.Series.TotalStarts)
	}
}

type collectSink struct {
	events []telemetry.WindowEvent
}

func (c *collectSink) PublishWindow(ev telemetry.WindowEvent) { c.events = append(c.events, ev) }
