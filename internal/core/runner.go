package core

import (
	"fmt"

	"repro/internal/attrib"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/uthread"
)

// Result is one measured run: the paper-facing measurement plus the
// internal diagnostics that explain it.
type Result struct {
	stats.Measurement
	Diag Diagnostics

	// Series is the flight-recorder time series, nil unless the config
	// enables it (MetricsWindow > 0). It is a pure value type so it
	// rides through the gob-encoded result cache unchanged.
	Series *stats.TimeSeries

	// Attrib is the latency-attribution summary, nil unless the config
	// enables it (Attribution). Like Series it is a pure value type
	// that rides through the gob-encoded result cache unchanged.
	Attrib *stats.AttribSummary

	// Fleet is the cluster-cell payload, nil for single-host runs. A
	// pure value type, so it too rides the gob-encoded result cache.
	Fleet *stats.FleetSummary
}

// RunDRAMBaseline measures the single-threaded on-demand DRAM run that
// every result is normalized to (§IV-C). Multicore experiments are also
// normalized to this single-core baseline ("normalize all results to the
// performance of a single-core DRAM baseline", §V-B).
func RunDRAMBaseline(cfg platform.Config, w Workload) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	trace := w.BaselineTrace(0)
	r := cpu.DRAMBaseline(cfg, trace)
	return Result{Measurement: stats.Measurement{
		Label:          fmt.Sprintf("dram-baseline/%s", w.Name()),
		Iterations:     len(trace),
		Accesses:       r.Accesses,
		WorkInstr:      float64(r.WorkInstr),
		ElapsedSeconds: r.Elapsed.Seconds(),
	}}, nil
}

// RunOnDemandDevice measures unmodified software demand-loading the
// microsecond device through the cacheable MMIO mapping (Fig 2): the
// interval core model with the device latency and the chip-level queue
// bound. With fault injection enabled each load's latency comes from
// the analytic timeout/retry recovery model.
func RunOnDemandDevice(cfg platform.Config, w Workload) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	iters := w.BaselineTrace(0)
	inj := fault.NewInjector(cfg.Faults)
	label := fmt.Sprintf("ondemand/%s lat=%v", w.Name(), cfg.DeviceLatency)

	// The analytic interval model has no engine events to hook, so the
	// trace layer synthesizes one access span per load from the model's
	// per-load observer; the observer never affects timing.
	var run *trace.Run
	var observe cpu.LoadObserver
	if cfg.Trace != nil {
		run = cfg.Trace.NewRun(label)
		tk := run.NewTrack("core0")
		observe = func(issue, complete sim.Time, out fault.AccessOutcome) {
			sp := tk.BeginSpan(issue, "access", "")
			if out.Timeouts > 0 {
				sp.Point(complete, "timeout")
			}
			if out.Retries > 0 {
				sp.Point(complete, "retry")
			}
			if out.Abandoned {
				sp.Point(complete, "abandoned")
			}
			sp.End(complete)
		}
	}

	// The flight recorder hooks the same per-load observer: issue times
	// are monotone, so windows advance with issue order, and completion
	// times that regress under recovery reordering fall into the current
	// window (see telemetry.Recorder.advance).
	var rec *telemetry.Recorder
	if cfg.MetricsWindow > 0 {
		rec = telemetry.NewRecorder(label, cfg.MetricsWindow, cfg.MetricsMaxWindows, cfg.MetricsSink)
		traced := observe
		observe = func(issue, complete sim.Time, out fault.AccessOutcome) {
			if traced != nil {
				traced(issue, complete, out)
			}
			rec.Started(issue)
			rec.Finished(complete)
			rec.Sample(complete, complete-issue)
			if out.Timeouts > 0 {
				rec.Timeouts(complete, out.Timeouts)
			}
			if out.Retries > 0 {
				rec.Retries(complete, out.Retries)
			}
			if out.Abandoned {
				rec.Abandoned(complete, 1)
			}
		}
	}

	// Attribution for the analytic model decomposes each load's closed-
	// form latency the same way HostAccessLatency assembled it: the
	// failed attempts' timeouts are retry backoff, the PCIe round trip
	// of the successful attempt is transit, and the remainder is device
	// service. The decomposition telescopes exactly because the model's
	// complete-issue window equals the outcome latency (device loads
	// issue back-to-back with no issue gap).
	var at *attrib.Probe
	if cfg.Attribution {
		at = attrib.NewProbe(label)
		if rec != nil {
			rec.SetPhaseNames(attrib.Names())
			at.SetOnClose(func(end sim.Time, ph *[attrib.NumPhases]int64) {
				rec.PhaseSample(end, ph[:])
			})
		}
		rtt := 2*cfg.PCIePropagation + cfg.TLPTime(0) + cfg.TLPTime(platform.CacheLineBytes)
		prev := observe
		observe = func(issue, complete sim.Time, out fault.AccessOutcome) {
			if prev != nil {
				prev(issue, complete, out)
			}
			aw := at.Open(issue)
			if out.Abandoned {
				aw.Close(attrib.PhaseRetry, complete)
				return
			}
			var backoff sim.Time
			for i := 0; i < out.Timeouts; i++ {
				backoff += cfg.RetryTimeout(i)
			}
			aw.To(attrib.PhaseRetry, issue+backoff)
			transitEnd := issue + backoff + rtt
			if transitEnd > complete {
				transitEnd = complete
			}
			aw.To(attrib.PhaseTransit, transitEnd)
			aw.Close(attrib.PhaseDevice, complete)
		}
	}

	r := cpu.DeviceOnDemandObserved(cfg, iters, inj, observe)
	res := Result{Measurement: stats.Measurement{
		Label:          label,
		Iterations:     len(iters),
		Accesses:       r.Accesses,
		WorkInstr:      float64(r.WorkInstr),
		ElapsedSeconds: r.Elapsed.Seconds(),
		Retries:        uint64(r.Retries),
		Timeouts:       uint64(r.Timeouts),
		Abandoned:      uint64(r.Abandoned),
	}}
	res.Diag.Retries = uint64(r.Retries)
	res.Diag.Timeouts = uint64(r.Timeouts)
	res.Diag.Abandoned = uint64(r.Abandoned)
	res.Diag.Faults = inj.Counters()
	res.Diag.TraceEvents = run.Events()
	res.Diag.AccessP50Ns = sim.Time(r.Latencies.Quantile(0.50)).Nanoseconds()
	res.Diag.AccessP99Ns = sim.Time(r.Latencies.Quantile(0.99)).Nanoseconds()
	res.Diag.AccessP999Ns = sim.Time(r.Latencies.Quantile(0.999)).Nanoseconds()
	res.Measurement.AccessP50Ns = res.Diag.AccessP50Ns
	res.Measurement.AccessP99Ns = res.Diag.AccessP99Ns
	res.Measurement.AccessP999Ns = res.Diag.AccessP999Ns
	res.Series = rec.Finish(r.Elapsed)
	res.Attrib = at.Summary()
	return res, nil
}

// coreRunner is one mechanism's per-core executor.
type coreRunner func(p *sim.Proc, e *Env, coreID int, threads []*uthread.Thread, c *counters)

// RunPrefetch measures the prefetch + user-level-context-switch
// mechanism with threadsPerCore threads on each of cfg.Cores cores.
//
// useReplay selects the paper's two-run methodology (§IV-A): a recording
// run captures each core's (address, data) sequence, and the measured
// run serves it through the replay modules. Workloads whose control flow
// depends on device data (the applications) should set it; the
// microbenchmark's synthetic pattern does not need it.
func RunPrefetch(cfg platform.Config, w Workload, threadsPerCore int, useReplay bool) (Result, error) {
	return runThreaded(cfg, w, "prefetch", threadsPerCore, useReplay, runPrefetchCore)
}

// RunSWQueue measures the application-managed software-queue mechanism.
func RunSWQueue(cfg platform.Config, w Workload, threadsPerCore int, useReplay bool) (Result, error) {
	return runThreaded(cfg, w, "swqueue", threadsPerCore, useReplay, runSWQCore)
}

func runThreaded(cfg platform.Config, w Workload, mech string, threadsPerCore int, useReplay bool, run coreRunner) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if threadsPerCore <= 0 {
		return Result{}, fmt.Errorf("core: threadsPerCore %d must be positive", threadsPerCore)
	}

	e := NewEnv(cfg, w.Backing())
	if useReplay {
		// Recording run: same execution, device in capture mode. Faults,
		// tracing, and telemetry are stripped so the captured trace stays
		// clean and only the measured run is observed.
		recCfg := cfg
		recCfg.Faults = fault.Plan{}
		recCfg.Trace = nil
		recCfg.MetricsWindow = 0
		recCfg.MetricsSink = nil
		recCfg.Attribution = false
		rec := NewEnv(recCfg, w.Backing())
		for coreID := 0; coreID < cfg.Cores; coreID++ {
			rec.dev.EnableRecording(coreID)
		}
		if _, err := launch(rec, w, threadsPerCore, run); err != nil {
			return Result{}, fmt.Errorf("core: recording run: %w", err)
		}
		for coreID := 0; coreID < cfg.Cores; coreID++ {
			if err := e.dev.LoadRecording(coreID, rec.dev.TakeRecording(coreID), 0); err != nil {
				return Result{}, err
			}
		}
		// The recording engine is quiescent; hand its backing arrays to
		// the measured run (and the next cell on this worker).
		rec.eng.Recycle()
	}

	label := fmt.Sprintf("%s/%s lat=%v cores=%d threads=%d",
		mech, w.Name(), cfg.DeviceLatency, cfg.Cores, threadsPerCore)
	e.startObservability(label)
	c, err := launch(e, w, threadsPerCore, run)
	if err != nil {
		return Result{}, err
	}
	diag := e.diagnostics(c)
	res := Result{
		Measurement: stats.Measurement{
			Label:             label,
			Accesses:          c.accesses,
			WorkInstr:         float64(c.workInstr),
			ElapsedSeconds:    c.finish.Seconds(),
			Retries:           c.retries,
			Timeouts:          c.timeouts,
			Abandoned:         c.abandoned,
			AccessP50Ns:       diag.AccessP50Ns,
			AccessP99Ns:       diag.AccessP99Ns,
			AccessP999Ns:      diag.AccessP999Ns,
			MeanLFBOccupancy:  diag.MeanLFBOccupancy,
			MeanChipOccupancy: diag.MeanChipOccupancy,
		},
		Diag: diag,
	}
	res.Series = e.rec.Finish(c.finish)
	res.Attrib = e.at.Summary()
	e.eng.Recycle()
	return res, nil
}

// RecordAccessTrace performs a recording run (the first of the paper's
// two runs, §IV-A) of the workload under the given mechanism and
// returns each core's captured (address, data) sequence. The recordings
// can be persisted with replay.Recording.WriteTo and later loaded into
// measured runs — the record-once, replay-many workflow of the paper's
// platform. mech is "prefetch", "swqueue", or "kernelq". Fault plans are
// ignored: recordings capture clean traces.
func RecordAccessTrace(cfg platform.Config, w Workload, threadsPerCore int, mech string) (map[int]*replay.Recording, error) {
	var run coreRunner
	switch mech {
	case "prefetch":
		run = runPrefetchCore
	case "swqueue":
		run = runSWQCore
	case "kernelq":
		run = runKernelQCore
	default:
		return nil, fmt.Errorf("core: unknown mechanism %q", mech)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if threadsPerCore <= 0 {
		return nil, fmt.Errorf("core: threadsPerCore %d must be positive", threadsPerCore)
	}
	cfg.Faults = fault.Plan{}
	cfg.Trace = nil // recordings capture clean traces, never trace events
	cfg.MetricsWindow = 0
	cfg.MetricsSink = nil
	cfg.Attribution = false
	e := NewEnv(cfg, w.Backing())
	for coreID := 0; coreID < cfg.Cores; coreID++ {
		e.dev.EnableRecording(coreID)
	}
	if _, err := launch(e, w, threadsPerCore, run); err != nil {
		return nil, err
	}
	out := make(map[int]*replay.Recording, cfg.Cores)
	for coreID := 0; coreID < cfg.Cores; coreID++ {
		out[coreID] = e.dev.TakeRecording(coreID)
	}
	e.eng.Recycle()
	return out, nil
}

// launch starts one executor process per core, each driving its own set
// of user-level threads, runs the simulation to completion, and returns
// the accumulated counters. The watchdog in RunChecked turns a core
// that deadlocks (e.g. waiting forever on a completion that a fault
// swallowed and recovery failed to replace) into an error naming the
// stuck process instead of a silently truncated measurement.
func launch(e *Env, w Workload, threadsPerCore int, run coreRunner) (*counters, error) {
	c := &counters{liveCores: e.cfg.Cores}
	e.startSampler(c)
	for coreID := 0; coreID < e.cfg.Cores; coreID++ {
		threads := make([]*uthread.Thread, threadsPerCore)
		for t := range threads {
			threads[t] = uthread.New(t, w.Body(coreID, t, threadsPerCore))
		}
		coreID, threads := coreID, threads
		e.eng.Go(fmt.Sprintf("core%d", coreID), func(p *sim.Proc) {
			run(p, e, coreID, threads, c)
			c.liveCores--
		})
	}
	if _, err := e.eng.RunChecked(); err != nil {
		return c, err
	}
	return c, nil
}
