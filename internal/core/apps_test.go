package core

// Integration tests: the three applications of §IV-C running end-to-end
// under both threaded mechanisms, with the two-run record/replay
// methodology, verifying both functional correctness (the apps compute
// the right answers through the simulated device) and the performance
// trends of Fig 10.

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestBloomUnderPrefetchWithReplay(t *testing.T) {
	b := workload.NewBloom(1<<16, 4, 300, 400, workload.DefaultWorkCount)
	cfg := platform.Default()
	r := must(RunPrefetch(cfg, b, 3, true))
	// Two passes ran (recording + measured): counters doubled.
	if b.Lookups != 2*400 {
		t.Fatalf("lookups = %d, want 800 over two passes", b.Lookups)
	}
	if b.Positives != 2*b.ReferencePositives() {
		t.Errorf("positives %d != 2x reference %d", b.Positives, b.ReferencePositives())
	}
	if r.Diag.OnDemand != 0 {
		t.Errorf("%d replay misses", r.Diag.OnDemand)
	}
	if r.Accesses != 1600 {
		t.Errorf("accesses = %d, want 1600", r.Accesses)
	}
}

func TestMemcachedUnderSWQWithReplay(t *testing.T) {
	m := workload.NewMemcached(128, 4, 300, workload.DefaultWorkCount)
	cfg := platform.Default()
	r := must(RunSWQueue(cfg, m, 4, true))
	if m.Lookups != 2*300 || m.BadValues != 0 {
		t.Fatalf("lookups=%d bad=%d, want 600 clean lookups", m.Lookups, m.BadValues)
	}
	if m.Hits != m.Lookups {
		t.Errorf("hits = %d, want all %d", m.Hits, m.Lookups)
	}
	if r.Diag.OnDemand != 0 {
		t.Errorf("%d replay misses", r.Diag.OnDemand)
	}
}

func TestBFSUnderPrefetchWithReplay(t *testing.T) {
	g := workload.NewKronecker(8, 8, 3)
	b := workload.NewBFS(g, []int{1, 2, 3, 4}, 30, workload.DefaultWorkCount)
	cfg := platform.Default()
	r := must(RunPrefetch(cfg, b, 2, true))
	if b.Visited != 2*b.ExpectedVisitsPerCore() {
		t.Errorf("visited %d != 2x expected %d — device data corrupted the traversal",
			b.Visited, b.ExpectedVisitsPerCore())
	}
	if r.Diag.OnDemand != 0 {
		t.Errorf("%d replay misses: recorded sequence diverged", r.Diag.OnDemand)
	}
	if r.Diag.ReplayServed == 0 {
		t.Error("nothing served via replay")
	}
}

func TestBFSMulticoreReplay(t *testing.T) {
	g := workload.NewKronecker(7, 8, 5)
	b := workload.NewBFS(g, []int{1, 2}, 20, workload.DefaultWorkCount)
	cfg := platform.Default().WithCores(2)
	r := must(RunSWQueue(cfg, b, 2, true))
	// 2 cores x 2 passes.
	if b.Visited != 4*b.ExpectedVisitsPerCore() {
		t.Errorf("visited %d != 4x expected %d", b.Visited, b.ExpectedVisitsPerCore())
	}
	if r.Diag.OnDemand != 0 {
		t.Errorf("%d replay misses across cores", r.Diag.OnDemand)
	}
}

func TestFig10AppTrends(t *testing.T) {
	// Single-core, 1us, batched apps (Fig 10a/10b): prefetch reaches
	// decent fractions of DRAM before the LFB limit; SWQ is lower at
	// equal thread counts ("prefetch ... between 35% to 65% of the DRAM
	// baseline ... application-managed queues only reach 20% to 50%").
	cfg := platform.Default()
	m := workload.NewMemcached(128, 4, 600, workload.DefaultWorkCount)
	base := must(RunDRAMBaseline(cfg, m))

	// Prefetch at its LFB-limited peak (3 threads x 4 reads covers the
	// 10 LFBs): the lower end of the paper's 35-65% band.
	pf3 := must(RunPrefetch(cfg, m, 3, false))
	npf := pf3.NormalizedTo(base.Measurement)
	if npf < 0.3 || npf > 0.7 {
		t.Errorf("memcached prefetch peak normalized %.3f, want 0.35-0.65 band", npf)
	}

	// SWQ at equal (low) threads trails prefetch: queue-management
	// overhead with no compensating parallelism.
	swq3 := must(RunSWQueue(cfg, m, 3, false))
	if n := swq3.NormalizedTo(base.Measurement); n >= npf {
		t.Errorf("SWQ (%.3f) should trail prefetch (%.3f) at equal threads on one core", n, npf)
	}

	// Even saturated, single-core SWQ stays at/below the prefetch peak
	// (paper: 20-50% vs 35-65%).
	swq16 := must(RunSWQueue(cfg, m, 16, false))
	nswq := swq16.NormalizedTo(base.Measurement)
	if nswq < 0.2 || nswq > 0.55 {
		t.Errorf("saturated single-core SWQ normalized %.3f, want the paper's 20-50%% band", nswq)
	}
	if nswq > npf {
		t.Errorf("single-core SWQ (%.3f) should not exceed the prefetch peak (%.3f)", nswq, npf)
	}
}

func TestSpuriousRequestDuringReplayRun(t *testing.T) {
	// Emulate a wrong-path speculative access arriving mid-run (§IV-A):
	// the on-demand module must absorb it without disturbing the
	// recorded sequence or the workload's results.
	m := workload.NewMemcached(64, 4, 200, workload.DefaultWorkCount)
	cfg := platform.Default()

	// Recording pass.
	recEnv := NewEnv(cfg, m.Backing())
	recEnv.dev.EnableRecording(0)
	if _, err := launch(recEnv, m, 4, runPrefetchCore); err != nil {
		t.Fatal(err)
	}

	// Measured pass with an injected spurious read at 5us.
	e := NewEnv(cfg, m.Backing())
	if err := e.dev.LoadRecording(0, recEnv.dev.TakeRecording(0), 0); err != nil {
		t.Fatal(err)
	}
	e.eng.At(5*sim.Microsecond, func() {
		e.dev.MMIORead(0, 0xDEAD0000, trace.Span{}, nil, func([]byte) {})
	})
	m.Reset()
	c, err := launch(e, m, 4, runPrefetchCore)
	if err != nil {
		t.Fatal(err)
	}
	diag := e.diagnostics(c)

	if diag.OnDemand != 1 {
		t.Errorf("on-demand served %d, want exactly the spurious request", diag.OnDemand)
	}
	if m.BadValues != 0 || m.Hits != 200 {
		t.Errorf("spurious request corrupted lookups: hits=%d bad=%d", m.Hits, m.BadValues)
	}
	if c.accesses != 800 {
		t.Errorf("accesses = %d", c.accesses)
	}
}

func TestAppBaselineFindsMLP(t *testing.T) {
	// Fig 10's DRAM baselines exploit the apps' inherent MLP: the
	// 4-read memcached baseline is much faster per lookup than 4
	// dependent accesses would be.
	cfg := platform.Default()
	m := workload.NewMemcached(128, 4, 1000, workload.DefaultWorkCount)
	base := must(RunDRAMBaseline(cfg, m))
	perLookup := base.ElapsedSeconds / 1000 * 1e9
	// 4 parallel DRAM reads + work ~= 83ns-145ns; 4 serial would be
	// >380ns.
	if perLookup > 250 {
		t.Errorf("baseline lookup %.0fns: window found no MLP", perLookup)
	}
}
