package core

import (
	"fmt"

	"repro/internal/attrib"
	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/pcie"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Env is one assembled simulation platform: engine, DRAM, PCIe link,
// chip-level MMIO queue, per-core LFB pools, and the device emulator.
type Env struct {
	eng      *sim.Engine
	cfg      platform.Config
	link     *pcie.Link
	chip     *sim.TokenPool
	dram     *mem.DRAM
	dev      *device.Device
	lfb      []*sim.TokenPool
	storeBuf []*sim.TokenPool
	caches   []*cache.Cache // per-core device-line caches; nil entries when disabled

	// faults is nil unless the config enables injection; hosts take the
	// recovery code paths only when it is non-nil, which keeps
	// zero-rate runs bit-identical to fault-free ones.
	faults *fault.Injector

	// tr is nil unless the config attaches a trace recorder; the
	// mechanisms record access spans only when it is non-nil, mirroring
	// the faults idiom so disabled tracing costs one nil check.
	tr     *trace.Run
	trCore []trace.Track // per-core access-span tracks

	// rec is nil unless the config enables the flight recorder
	// (MetricsWindow > 0); like tr, disabled telemetry costs the
	// mechanisms exactly one nil check per event.
	rec *telemetry.Recorder

	// at is nil unless the config enables latency attribution; the
	// mechanisms open a per-access phase ledger only when it is
	// non-nil, and a nil probe hands out nil ledgers whose marks are
	// no-ops, so disabled attribution costs one nil check per access.
	at *attrib.Probe

	// Pre-rendered per-core counter-track names, so the state-change
	// hooks never format strings on the hot path.
	lfbName, sqName, cqName, runnableName []string
}

func NewEnv(cfg platform.Config, backing replay.Backing) *Env {
	eng := sim.NewEngine()
	link := pcie.NewLink(eng, cfg)
	dram := mem.New(eng, cfg.DRAMLatency, cfg.DRAMMaxOutstanding)
	e := &Env{
		eng:  eng,
		cfg:  cfg,
		link: link,
		chip: pcie.NewChipQueue(eng, cfg),
		dram: dram,
		dev:  device.New(eng, cfg, link, dram, backing),
		lfb:  make([]*sim.TokenPool, cfg.Cores),
	}
	e.faults = fault.NewInjector(cfg.Faults)
	link.SetFaultInjector(e.faults)
	e.dev.SetFaultInjector(e.faults)
	e.storeBuf = make([]*sim.TokenPool, cfg.Cores)
	e.caches = make([]*cache.Cache, cfg.Cores)
	for i := range e.lfb {
		e.lfb[i] = eng.NewTokenPool("lfb", cfg.LFBPerCore)
		e.storeBuf[i] = eng.NewTokenPool("storebuf", cfg.StoreBufferEntries)
		if cfg.DeviceCacheLines > 0 {
			e.caches[i] = cache.New(cfg.DeviceCacheLines, cfg.DeviceCacheWays)
		}
	}
	return e
}

// invalidateAll performs the write-invalidate coherence action for a
// device line in every core's cache (§V-C: with the memory-mapped
// interface "the device data is stored in hardware caches and kept
// coherent across cores in the event of a write").
func (e *Env) invalidateAll(addr uint64) {
	for _, c := range e.caches {
		if c != nil {
			c.Invalidate(addr)
		}
	}
}

// counters accumulates per-run totals across all cores.
type counters struct {
	accesses  int
	writes    int
	workInstr int64
	switches  uint64
	finish    sim.Time // time the last core finished

	// per-access host-observed latency samples (issue to data-usable)
	// in a bounded log-bucketed histogram, for the percentile
	// diagnostics; memory is bounded by the latency range, not the
	// access count
	latencies *stats.Histogram

	// recovery accounting (fault-injection runs only)
	retries   uint64 // accesses re-issued after a timeout
	timeouts  uint64 // access timeouts that fired
	abandoned uint64 // accesses given up after the retry budget

	// software-queue path only
	fetchBursts uint64
	emptyBursts uint64
	maxRQDepth  int

	liveCores int
	samples   []OccupancySample
}

// OccupancySample is one point of the optional occupancy timeline.
type OccupancySample struct {
	At        sim.Time
	LFBInUse  int     // total across cores
	ChipInUse int     // chip-level MMIO queue occupancy
	UpUtil    float64 // upstream link utilization so far
}

func (c *counters) recordLatency(l sim.Time) {
	if c.latencies == nil {
		c.latencies = stats.NewHistogram()
	}
	c.latencies.Record(int64(l))
}

func (c *counters) coreFinished(at sim.Time) {
	if at > c.finish {
		c.finish = at
	}
}

// Diagnostics exposes the run's internal occupancy and traffic
// statistics; experiments use them for figure notes and tests use them
// to pin the bottleneck mechanics down.
type Diagnostics struct {
	MaxChipQueue   int     // peak occupancy of the 14-entry shared queue
	ChipStalls     uint64  // requests that waited for a chip-queue slot
	MaxLFB         int     // peak per-core LFB occupancy (max over cores)
	LFBStalls      uint64  // prefetches that stalled on a full LFB pool
	Switches       uint64  // user-level context switches
	UpstreamUseful float64 // device->host useful-bytes fraction
	UpstreamGBps   float64 // device->host useful bandwidth, GB/s
	ReplayServed   uint64
	OnDemand       uint64
	FetchBursts    uint64 // SWQ: descriptor DMA bursts issued
	EmptyBursts    uint64 // SWQ: bursts that found no descriptors
	MaxRQDepth     int    // SWQ: request-queue high-water mark
	Writes         int    // posted writes issued (§VII extension)
	CacheHits      uint64 // device-line cache hits (locality extension)
	CacheHitRate   float64

	// Host-observed per-access latency percentiles, in nanoseconds:
	// from request issue/submission until the data is usable by the
	// thread, computed from the bounded log-bucketed histogram (within
	// ~0.4% of the exact sample percentiles). Zero if no accesses were
	// sampled.
	AccessP50Ns  float64
	AccessP99Ns  float64
	AccessP999Ns float64

	// Time-weighted mean occupancy of the paper's bottleneck queues:
	// LFB slots summed across cores, and the chip-level MMIO queue.
	MeanLFBOccupancy  float64
	MeanChipOccupancy float64

	// Simulation-effort and trace-overhead accounting: engine events
	// executed, events left pending after the run (non-zero only on an
	// aborted run), and trace events this run recorded (zero with
	// tracing disabled).
	SimEvents   uint64
	SimPending  int
	TraceEvents uint64

	// Recovery accounting under fault injection: host-side retries,
	// timeouts, and abandoned accesses, plus the faults the injector
	// actually delivered, by layer. All zero in fault-free runs.
	Retries   uint64
	Timeouts  uint64
	Abandoned uint64
	Faults    fault.Counters

	// Timeline holds the occupancy samples when Config.SamplePeriod is
	// set.
	Timeline []OccupancySample
}

func (e *Env) diagnostics(c *counters) Diagnostics {
	d := Diagnostics{
		MaxChipQueue: e.chip.MaxInUse(),
		ChipStalls:   e.chip.Stalls(),
		Switches:     c.switches,
		ReplayServed: e.dev.ReplayServed(),
		OnDemand:     e.dev.OnDemandServed(),
		FetchBursts:  c.fetchBursts,
		EmptyBursts:  c.emptyBursts,
		MaxRQDepth:   c.maxRQDepth,
	}
	for _, pool := range e.lfb {
		if pool.MaxInUse() > d.MaxLFB {
			d.MaxLFB = pool.MaxInUse()
		}
		d.LFBStalls += pool.Stalls()
		d.MeanLFBOccupancy += pool.MeanOccupancy()
	}
	d.MeanChipOccupancy = e.chip.MeanOccupancy()
	d.SimEvents = e.eng.Executed()
	d.SimPending = e.eng.Pending()
	d.TraceEvents = e.tr.Events()
	d.Writes = c.writes
	var hits, lookups uint64
	for _, cc := range e.caches {
		if cc != nil {
			hits += cc.Hits()
			lookups += cc.Hits() + cc.Misses()
		}
	}
	d.CacheHits = hits
	if lookups > 0 {
		d.CacheHitRate = float64(hits) / float64(lookups)
	}
	up := e.link.Upstream()
	d.UpstreamUseful = up.UsefulFraction()
	if c.finish > 0 {
		d.UpstreamGBps = float64(up.UsefulBytes) / c.finish.Seconds() / 1e9
	}
	d.AccessP50Ns = sim.Time(c.latencies.Quantile(0.50)).Nanoseconds()
	d.AccessP99Ns = sim.Time(c.latencies.Quantile(0.99)).Nanoseconds()
	d.AccessP999Ns = sim.Time(c.latencies.Quantile(0.999)).Nanoseconds()
	d.Retries = c.retries
	d.Timeouts = c.timeouts
	d.Abandoned = c.abandoned
	d.Faults = e.faults.Counters()
	d.Timeline = c.samples
	return d
}

// startSampler arms the periodic occupancy sampler; it re-arms itself
// while any core is still running, so the simulation still drains.
func (e *Env) startSampler(c *counters) {
	if e.cfg.SamplePeriod <= 0 {
		return
	}
	var tick func()
	tick = func() {
		lfb := 0
		for _, pool := range e.lfb {
			lfb += pool.InUse()
		}
		c.samples = append(c.samples, OccupancySample{
			At:        e.eng.Now(),
			LFBInUse:  lfb,
			ChipInUse: e.chip.InUse(),
			UpUtil:    e.link.Upstream().Utilization,
		})
		if c.liveCores > 0 {
			e.eng.After(e.cfg.SamplePeriod, tick)
		}
	}
	e.eng.After(e.cfg.SamplePeriod, tick)
}

// startTrace attaches the environment to the config's trace recorder
// (a no-op when tracing is disabled): one trace run labeled for this
// measurement, one access-span track per core, TLP timelines on both
// link directions, and occupancy counter tracks for every bottleneck
// queue. The hooks only record state the simulation already computes —
// they never schedule events, so traced and untraced runs are
// timing-identical.
func (e *Env) startTrace(label string) {
	if e.cfg.Trace == nil {
		return
	}
	e.tr = e.cfg.Trace.NewRun(label)
	cores := e.cfg.Cores
	e.trCore = make([]trace.Track, cores)
	for i := 0; i < cores; i++ {
		e.trCore[i] = e.tr.NewTrack(fmt.Sprintf("core%d", i))
	}
	e.link.SetTrace(e.tr.NewTrack("pcie-down"), e.tr.NewTrack("pcie-up"))

	// Occupancy counter tracks, sampled on state change. Names are
	// pre-rendered so the hot-path hooks never call fmt.
	e.lfbName = make([]string, cores)
	e.sqName = make([]string, cores)
	e.cqName = make([]string, cores)
	e.runnableName = make([]string, cores)
	for i := 0; i < cores; i++ {
		e.lfbName[i] = fmt.Sprintf("lfb/core%d", i)
		e.sqName[i] = fmt.Sprintf("sq/core%d", i)
		e.cqName[i] = fmt.Sprintf("cq/core%d", i)
		e.runnableName[i] = fmt.Sprintf("runnable/core%d", i)
		e.tr.Counter(0, e.lfbName[i], 0)
		e.tr.Counter(0, e.sqName[i], 0)
		e.tr.Counter(0, e.cqName[i], 0)
		e.tr.Counter(0, e.runnableName[i], 0)
	}
	e.tr.Counter(0, "chipq", 0)
}

// startRecorder attaches the flight recorder when the config enables it
// (MetricsWindow > 0). The recorder only aggregates values the
// simulation already computes and never schedules events, so recorded
// and unrecorded runs are timing-identical.
func (e *Env) startRecorder(label string) {
	if e.cfg.MetricsWindow <= 0 {
		return
	}
	e.rec = telemetry.NewRecorder(label, e.cfg.MetricsWindow, e.cfg.MetricsMaxWindows, e.cfg.MetricsSink)
}

// installPoolHooks installs the single-slot state-change observers on
// the LFB pools and the chip-level queue, fanning out to whichever of
// the trace run and the flight recorder are attached. The trace wants
// absolute occupancy; the recorder wants deltas, converted with a
// closure-captured previous value per pool.
func (e *Env) installPoolHooks() {
	if e.tr == nil && e.rec == nil {
		return
	}
	for i := range e.lfb {
		i := i
		prev := 0
		e.lfb[i].SetOnChange(func(inUse int) {
			if e.tr != nil {
				e.tr.Counter(e.eng.Now(), e.lfbName[i], inUse)
			}
			if e.rec != nil {
				e.rec.GaugeAdd(telemetry.GaugeLFB, e.eng.Now(), inUse-prev)
			}
			prev = inUse
		})
	}
	prevChip := 0
	e.chip.SetOnChange(func(inUse int) {
		if e.tr != nil {
			e.tr.Counter(e.eng.Now(), "chipq", inUse)
		}
		if e.rec != nil {
			e.rec.GaugeAdd(telemetry.GaugeChip, e.eng.Now(), inUse-prevChip)
		}
		prevChip = inUse
	})
}

// startAttrib attaches the latency-attribution probe when the config
// enables it. Like the trace and recorder layers it only observes
// timestamps the simulation already computes and never schedules
// events, so attributed and unattributed runs are timing-identical.
// When the flight recorder is also on, every closed ledger feeds the
// recorder's per-window phase columns.
func (e *Env) startAttrib(label string) {
	if !e.cfg.Attribution {
		return
	}
	e.at = attrib.NewProbe(label)
	if e.rec != nil {
		e.rec.SetPhaseNames(attrib.Names())
		e.at.SetOnClose(func(end sim.Time, ph *[attrib.NumPhases]int64) {
			e.rec.PhaseSample(end, ph[:])
		})
	}
}

// startObservability attaches every enabled observability layer — the
// Perfetto trace run, the flight recorder, the attribution probe, and
// the shared pool hooks that feed them — for one measured run.
func (e *Env) startObservability(label string) {
	e.startTrace(label)
	e.startRecorder(label)
	e.startAttrib(label)
	e.installPoolHooks()
}
