package core

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/pcie"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sim"
)

// env is one assembled simulation platform: engine, DRAM, PCIe link,
// chip-level MMIO queue, per-core LFB pools, and the device emulator.
type env struct {
	eng      *sim.Engine
	cfg      platform.Config
	link     *pcie.Link
	chip     *sim.TokenPool
	dram     *mem.DRAM
	dev      *device.Device
	lfb      []*sim.TokenPool
	storeBuf []*sim.TokenPool
	caches   []*cache.Cache // per-core device-line caches; nil entries when disabled

	// faults is nil unless the config enables injection; hosts take the
	// recovery code paths only when it is non-nil, which keeps
	// zero-rate runs bit-identical to fault-free ones.
	faults *fault.Injector
}

func newEnv(cfg platform.Config, backing replay.Backing) *env {
	eng := sim.NewEngine()
	link := pcie.NewLink(eng, cfg)
	dram := mem.New(eng, cfg.DRAMLatency, cfg.DRAMMaxOutstanding)
	e := &env{
		eng:  eng,
		cfg:  cfg,
		link: link,
		chip: pcie.NewChipQueue(eng, cfg),
		dram: dram,
		dev:  device.New(eng, cfg, link, dram, backing),
		lfb:  make([]*sim.TokenPool, cfg.Cores),
	}
	e.faults = fault.NewInjector(cfg.Faults)
	link.SetFaultInjector(e.faults)
	e.dev.SetFaultInjector(e.faults)
	e.storeBuf = make([]*sim.TokenPool, cfg.Cores)
	e.caches = make([]*cache.Cache, cfg.Cores)
	for i := range e.lfb {
		e.lfb[i] = eng.NewTokenPool("lfb", cfg.LFBPerCore)
		e.storeBuf[i] = eng.NewTokenPool("storebuf", cfg.StoreBufferEntries)
		if cfg.DeviceCacheLines > 0 {
			e.caches[i] = cache.New(cfg.DeviceCacheLines, cfg.DeviceCacheWays)
		}
	}
	return e
}

// invalidateAll performs the write-invalidate coherence action for a
// device line in every core's cache (§V-C: with the memory-mapped
// interface "the device data is stored in hardware caches and kept
// coherent across cores in the event of a write").
func (e *env) invalidateAll(addr uint64) {
	for _, c := range e.caches {
		if c != nil {
			c.Invalidate(addr)
		}
	}
}

// counters accumulates per-run totals across all cores.
type counters struct {
	accesses  int
	writes    int
	workInstr int64
	switches  uint64
	finish    sim.Time // time the last core finished

	// per-access host-observed latency samples (issue to data-usable),
	// for the percentile diagnostics
	latencies []sim.Time

	// recovery accounting (fault-injection runs only)
	retries   uint64 // accesses re-issued after a timeout
	timeouts  uint64 // access timeouts that fired
	abandoned uint64 // accesses given up after the retry budget

	// software-queue path only
	fetchBursts uint64
	emptyBursts uint64
	maxRQDepth  int

	liveCores int
	samples   []OccupancySample
}

// OccupancySample is one point of the optional occupancy timeline.
type OccupancySample struct {
	At        sim.Time
	LFBInUse  int     // total across cores
	ChipInUse int     // chip-level MMIO queue occupancy
	UpUtil    float64 // upstream link utilization so far
}

func (c *counters) recordLatency(l sim.Time) {
	c.latencies = append(c.latencies, l)
}

func (c *counters) coreFinished(at sim.Time) {
	if at > c.finish {
		c.finish = at
	}
}

// Diagnostics exposes the run's internal occupancy and traffic
// statistics; experiments use them for figure notes and tests use them
// to pin the bottleneck mechanics down.
type Diagnostics struct {
	MaxChipQueue   int     // peak occupancy of the 14-entry shared queue
	ChipStalls     uint64  // requests that waited for a chip-queue slot
	MaxLFB         int     // peak per-core LFB occupancy (max over cores)
	LFBStalls      uint64  // prefetches that stalled on a full LFB pool
	Switches       uint64  // user-level context switches
	UpstreamUseful float64 // device->host useful-bytes fraction
	UpstreamGBps   float64 // device->host useful bandwidth, GB/s
	ReplayServed   uint64
	OnDemand       uint64
	FetchBursts    uint64 // SWQ: descriptor DMA bursts issued
	EmptyBursts    uint64 // SWQ: bursts that found no descriptors
	MaxRQDepth     int    // SWQ: request-queue high-water mark
	Writes         int    // posted writes issued (§VII extension)
	CacheHits      uint64 // device-line cache hits (locality extension)
	CacheHitRate   float64

	// Host-observed per-access latency percentiles, in nanoseconds:
	// from request issue/submission until the data is usable by the
	// thread. Zero if no accesses were sampled.
	AccessP50Ns  float64
	AccessP99Ns  float64
	AccessP999Ns float64

	// Recovery accounting under fault injection: host-side retries,
	// timeouts, and abandoned accesses, plus the faults the injector
	// actually delivered, by layer. All zero in fault-free runs.
	Retries   uint64
	Timeouts  uint64
	Abandoned uint64
	Faults    fault.Counters

	// Timeline holds the occupancy samples when Config.SamplePeriod is
	// set.
	Timeline []OccupancySample
}

func (e *env) diagnostics(c *counters) Diagnostics {
	d := Diagnostics{
		MaxChipQueue: e.chip.MaxInUse(),
		ChipStalls:   e.chip.Stalls(),
		Switches:     c.switches,
		ReplayServed: e.dev.ReplayServed(),
		OnDemand:     e.dev.OnDemandServed(),
		FetchBursts:  c.fetchBursts,
		EmptyBursts:  c.emptyBursts,
		MaxRQDepth:   c.maxRQDepth,
	}
	for _, pool := range e.lfb {
		if pool.MaxInUse() > d.MaxLFB {
			d.MaxLFB = pool.MaxInUse()
		}
		d.LFBStalls += pool.Stalls()
	}
	d.Writes = c.writes
	var hits, lookups uint64
	for _, cc := range e.caches {
		if cc != nil {
			hits += cc.Hits()
			lookups += cc.Hits() + cc.Misses()
		}
	}
	d.CacheHits = hits
	if lookups > 0 {
		d.CacheHitRate = float64(hits) / float64(lookups)
	}
	up := e.link.Upstream()
	d.UpstreamUseful = up.UsefulFraction()
	if c.finish > 0 {
		d.UpstreamGBps = float64(up.UsefulBytes) / c.finish.Seconds() / 1e9
	}
	d.AccessP50Ns = percentileNs(c.latencies, 0.50)
	d.AccessP99Ns = percentileNs(c.latencies, 0.99)
	d.AccessP999Ns = percentileNs(c.latencies, 0.999)
	d.Retries = c.retries
	d.Timeouts = c.timeouts
	d.Abandoned = c.abandoned
	d.Faults = e.faults.Counters()
	d.Timeline = c.samples
	return d
}

// startSampler arms the periodic occupancy sampler; it re-arms itself
// while any core is still running, so the simulation still drains.
func (e *env) startSampler(c *counters) {
	if e.cfg.SamplePeriod <= 0 {
		return
	}
	var tick func()
	tick = func() {
		lfb := 0
		for _, pool := range e.lfb {
			lfb += pool.InUse()
		}
		c.samples = append(c.samples, OccupancySample{
			At:        e.eng.Now(),
			LFBInUse:  lfb,
			ChipInUse: e.chip.InUse(),
			UpUtil:    e.link.Upstream().Utilization,
		})
		if c.liveCores > 0 {
			e.eng.After(e.cfg.SamplePeriod, tick)
		}
	}
	e.eng.After(e.cfg.SamplePeriod, tick)
}

// percentileNs returns the q-quantile of the samples in nanoseconds
// (nearest-rank), or 0 with no samples. The sample slice is sorted in
// place.
func percentileNs(samples []sim.Time, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(q*float64(len(samples))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return samples[idx].Nanoseconds()
}
