package core

import (
	"repro/internal/attrib"
	"repro/internal/hostmem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/uthread"
)

// runKernelQCore executes one core under kernel-managed software queues
// — "the age-old approach to device access" (§III-A). The paper
// dismisses it analytically ("these overheads dwarf the access latency,
// making kernel-managed queues ineffective") and omits it from its
// evaluation; this model quantifies the dismissal.
//
// Per access, the application performs a system call; the kernel writes
// the descriptor, rings the doorbell (there is no doorbell-request-flag
// optimization in this interface), de-schedules the thread with a
// kernel-mode context switch, and on the device's completion interrupt
// pays the interrupt cost plus another kernel switch before the thread
// returns from its syscall.
func runKernelQCore(p *sim.Proc, e *Env, coreID int, threads []*uthread.Thread, c *counters) {
	rq := hostmem.NewRequestQueue()
	cq := hostmem.NewCompletionQueue()
	ep := e.dev.NewSWQEndpoint(coreID, rq, cq)
	defer ep.Stop()
	defer func() {
		c.fetchBursts += ep.FetchBursts()
		c.emptyBursts += ep.EmptyBursts()
		if rq.MaxDepth() > c.maxRQDepth {
			c.maxRQDepth = rq.MaxDepth()
		}
	}()

	ready := uthread.NewFIFO()
	installQueueHooks(e, coreID, rq, cq, ready)
	states := make(map[*uthread.Thread]*swqThreadState, len(threads))
	waiting := make(map[uint64]descWait)
	for _, th := range threads {
		states[th] = &swqThreadState{}
		ready.Push(th)
	}
	live := len(threads)

	for live > 0 {
		th := ready.Pop()
		if th == nil {
			// The OS idles (or runs unrelated processes) until the
			// device raises a completion interrupt.
			gate := ep.CompletionGate()
			compls := cq.Drain()
			if len(compls) == 0 {
				// Recovery backstop: the kernel arms a timer at the
				// earliest descriptor deadline in case the completion
				// interrupt never comes.
				waitCompletionOrRecover(p, e, rq, ep, gate, waiting, states, ready, c)
				continue
			}
			// Interrupt delivery + handler, then wake the syscall
			// waiters; completions present in the queue coalesce into
			// one interrupt.
			intStart := p.Now()
			p.Sleep(e.cfg.InterruptCost)
			for _, compl := range compls {
				w, ok := waiting[compl.ID]
				if !ok {
					continue
				}
				delete(waiting, compl.ID)
				c.recordLatency(compl.Posted - w.submitted)
				if e.rec != nil {
					e.rec.Finished(p.Now())
					e.rec.Sample(p.Now(), compl.Posted-w.submitted)
				}
				w.sp.End(compl.Posted)
				st := states[w.th]
				// Time until the interrupt fired is completion wait; the
				// interrupt delivery + handler is switch overhead. The
				// ledger parks on the thread state until the syscall
				// returns.
				w.aw.To(attrib.PhaseComplWait, intStart)
				w.aw.To(attrib.PhaseSwitch, p.Now())
				if w.aw != nil && st.atr == nil {
					st.atr = make([]*attrib.Access, len(st.data))
				}
				if st.atr != nil {
					st.atr[w.slot] = w.aw
				}
				st.data[w.slot] = ep.Data(compl.ID)
				st.remaining--
				if st.remaining == 0 {
					st.payload = st.data
					ready.Push(w.th)
				}
			}
			continue
		}

		st := states[th]
		var req uthread.Request
		if st.started {
			// The thread was de-scheduled inside its syscall; resuming
			// always pays a kernel-mode context switch (even a sole
			// thread was switched away from), then the syscall returns.
			resumeStart := p.Now()
			p.Sleep(e.cfg.KernelCtxSwitch)
			c.switches++
			if e.rec != nil {
				e.rec.Switches(p.Now(), 1)
			}
			p.Sleep(e.cfg.SyscallCost)
			// Ready-queue time is completion wait; the kernel switch
			// plus syscall return is switch overhead, closing the batch's
			// ledgers at the moment the thread gets its data.
			for _, aw := range st.atr {
				aw.To(attrib.PhaseComplWait, resumeStart)
				aw.Close(attrib.PhaseSwitch, p.Now())
			}
			st.atr = nil
			req = th.Resume(st.payload)
			st.payload = nil
		} else {
			st.started = true
			req = th.Start()
		}

		for req.Kind == uthread.KindWork {
			p.Sleep(e.cfg.WorkTime(req.Instr))
			c.workInstr += int64(req.Instr)
			req = th.Resume(nil)
		}

		switch req.Kind {
		case uthread.KindAccess:
			// Syscall entry, kernel queueing, unconditional doorbell,
			// then the kernel de-schedules the thread.
			p.Sleep(e.cfg.SyscallCost)
			st.data = make([][]byte, len(req.Addrs))
			st.remaining = len(req.Addrs)
			for i, addr := range req.Addrs {
				aw := e.at.Open(p.Now())
				p.Sleep(e.cfg.SWQPerAccessOverhead)
				aw.To(attrib.PhaseIssue, p.Now())
				c.accesses++
				if e.rec != nil {
					e.rec.Started(p.Now())
				}
				target := responseTarget(coreID, th.ID(), i)
				var sp trace.Span
				if e.tr != nil {
					sp = e.trCore[coreID].BeginSpan(p.Now(), "access", trace.Hex("addr", addr))
				}
				id := rq.PushTracked(addr, target, p.Now(), sp, aw)
				waiting[id] = descWait{
					th: th, slot: i, submitted: p.Now(),
					addr: addr, target: target,
					deadline: p.Now() + e.cfg.RetryTimeout(0),
					sp:       sp, aw: aw,
				}
			}
			p.Sleep(e.cfg.DoorbellMMIO)
			rq.ClearDoorbellRequested()
			ep.Doorbell()
			p.Sleep(e.cfg.KernelCtxSwitch) // de-schedule
		case uthread.KindDone:
			live--
		}
	}
	c.coreFinished(p.Now())
}

// RunKernelQueue measures the kernel-managed software-queue interface —
// the baseline the paper rules out in §III-A. Included to quantify that
// dismissal: per-access syscalls, kernel context switches, and
// completion interrupts dwarf a microsecond access.
func RunKernelQueue(cfg platform.Config, w Workload, threadsPerCore int, useReplay bool) (Result, error) {
	return runThreaded(cfg, w, "kernelq", threadsPerCore, useReplay, runKernelQCore)
}

// RunSMT measures simultaneous multithreading as a latency-hiding aid
// for on-demand accesses (§III-B): the core's hardware contexts each
// run the demand-access loop, and the core switches contexts for free
// when one blocks on a device load. The paper's point stands in the
// numbers: with commodity SMT widths (2), the benefit is a small factor
// — nowhere near the 10+ concurrent accesses a microsecond needs.
//
// The model reuses the threaded executor with a zero-cost switch and
// zero-cost request issue: a blocked context's load occupies an LFB and
// a chip-queue slot exactly as a prefetch would, but only SMTContexts
// accesses can ever be outstanding.
func RunSMT(cfg platform.Config, w Workload) (Result, error) {
	smt := cfg
	smt.CtxSwitch = 0
	smt.PrefetchIssue = 0
	return runThreaded(smt, w, "smt", cfg.SMTContexts, false, runPrefetchCore)
}
