package core

import (
	"sort"

	"repro/internal/attrib"
	"repro/internal/device"
	"repro/internal/hostmem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/uthread"
)

// This file holds the descriptor-timeout recovery machinery shared by
// the software-queue and kernel-queue schedulers: the deadline scan,
// the resubmit/abandon state machine, and the park-or-recover wait both
// schedulers enter when no thread is ready and the completion queue is
// empty.

// minDeadline returns the earliest recovery deadline among outstanding
// descriptors (order-independent, so map iteration is safe).
func minDeadline(waiting map[uint64]descWait) sim.Time {
	var min sim.Time
	first := true
	for _, w := range waiting {
		if first || w.deadline < min {
			min = w.deadline
			first = false
		}
	}
	return min
}

// waitCompletionOrRecover parks the scheduler on the completion gate
// when it has nothing runnable. Fault-free (or with nothing
// outstanding) it waits indefinitely — a completion must eventually
// arrive. Under fault injection it bounds the wait by the earliest
// descriptor deadline, so a lost completion or a swallowed doorbell
// cannot hang the core: on expiry it runs timeout recovery over every
// overdue descriptor. Callers must obtain the gate before their final
// completion-queue drain to avoid a lost wakeup.
func waitCompletionOrRecover(p *sim.Proc, e *Env, rq *hostmem.RequestQueue, ep *device.SWQEndpoint,
	gate *sim.Gate, waiting map[uint64]descWait, states map[*uthread.Thread]*swqThreadState,
	ready *uthread.FIFO, c *counters) {
	if e.faults == nil || len(waiting) == 0 {
		p.Wait(gate)
		return
	}
	if !p.WaitTimeout(gate, minDeadline(waiting)-p.Now()) {
		resubmitOverdue(p, e, rq, ep, waiting, states, ready, c)
	}
}

// resubmitOverdue performs timeout recovery for every outstanding
// descriptor whose deadline has passed: within the retry budget the
// descriptor is re-pushed under a fresh ID with a backed-off deadline
// (the rewrite cost is charged to the core); past it the access is
// abandoned and its slot filled with a zero line so the thread still
// completes. If anything was resubmitted the doorbell is rung
// unconditionally — the fetcher may be parked on a doorbell that a
// fault swallowed. Descriptor IDs are scanned in sorted order to keep
// the run deterministic.
func resubmitOverdue(p *sim.Proc, e *Env, rq *hostmem.RequestQueue, ep *device.SWQEndpoint,
	waiting map[uint64]descWait, states map[*uthread.Thread]*swqThreadState,
	ready *uthread.FIFO, c *counters) {
	ids := make([]uint64, 0, len(waiting))
	for id := range waiting {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	resubmitted := false
	for _, id := range ids {
		w := waiting[id]
		if w.deadline > p.Now() {
			continue
		}
		delete(waiting, id)
		c.timeouts++
		if e.rec != nil {
			e.rec.Timeouts(p.Now(), 1)
		}
		w.sp.Point(p.Now(), "timeout")
		// Waiting out the timeout is retry backoff; the gap between the
		// deadline expiring and the host acting on it is timeout slop.
		w.aw.To(attrib.PhaseRetry, w.deadline)
		w.aw.To(attrib.PhaseSlop, p.Now())
		if w.attempts >= e.cfg.MaxRetries {
			// Out of budget: abandon with a zero-filled line.
			c.abandoned++
			c.recordLatency(p.Now() - w.submitted)
			if e.rec != nil {
				e.rec.Abandoned(p.Now(), 1)
				e.rec.Finished(p.Now())
				e.rec.Sample(p.Now(), p.Now()-w.submitted)
			}
			w.sp.Point(p.Now(), "abandoned")
			w.sp.End(p.Now())
			w.aw.Close(attrib.PhaseSlop, p.Now())
			st := states[w.th]
			st.data[w.slot] = make([]byte, platform.CacheLineBytes)
			st.remaining--
			if st.remaining == 0 {
				st.payload = st.data
				ready.Push(w.th)
			}
			continue
		}
		c.retries++
		if e.rec != nil {
			e.rec.Retries(p.Now(), 1)
		}
		p.Sleep(e.cfg.SWQPerAccessOverhead)
		w.attempts++
		w.deadline = p.Now() + e.cfg.RetryTimeout(w.attempts)
		w.sp.Point(p.Now(), "retry")
		w.aw.To(attrib.PhaseRetry, p.Now())
		newID := rq.PushTracked(w.addr, w.target, p.Now(), w.sp, w.aw)
		waiting[newID] = w
		resubmitted = true
	}
	if resubmitted {
		p.Sleep(e.cfg.DoorbellMMIO)
		rq.ClearDoorbellRequested()
		ep.Doorbell()
	}
}
