package core

import (
	"sort"

	"repro/internal/device"
	"repro/internal/hostmem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/uthread"
)

// swqThreadState tracks one thread's lifecycle under the FIFO scheduler.
type swqThreadState struct {
	started   bool
	payload   [][]byte // data to deliver on the next resume
	data      [][]byte // in-progress batch results, by slot
	remaining int      // descriptors of the current batch still pending
}

// descWait maps an outstanding descriptor to the thread slot its data
// belongs to. The addr/target/attempts/deadline fields drive timeout
// recovery under fault injection: an overdue descriptor is resubmitted
// under a fresh ID (so a straggling completion of the old one is simply
// discarded as unknown) until the retry budget runs out.
type descWait struct {
	th        *uthread.Thread
	slot      int
	submitted sim.Time // original submission, for latency accounting
	addr      uint64
	target    uint64
	attempts  int
	deadline  sim.Time
	sp        trace.Span // access-lifecycle span; survives resubmission
}

// minDeadline returns the earliest recovery deadline among outstanding
// descriptors (order-independent, so map iteration is safe).
func minDeadline(waiting map[uint64]descWait) sim.Time {
	var min sim.Time
	first := true
	for _, w := range waiting {
		if first || w.deadline < min {
			min = w.deadline
			first = false
		}
	}
	return min
}

// resubmitOverdue performs timeout recovery for every outstanding
// descriptor whose deadline has passed: within the retry budget the
// descriptor is re-pushed under a fresh ID with a backed-off deadline
// (the rewrite cost is charged to the core); past it the access is
// abandoned and its slot filled with a zero line so the thread still
// completes. If anything was resubmitted the doorbell is rung
// unconditionally — the fetcher may be parked on a doorbell that a
// fault swallowed. Descriptor IDs are scanned in sorted order to keep
// the run deterministic.
func resubmitOverdue(p *sim.Proc, e *env, rq *hostmem.RequestQueue, ep *device.SWQEndpoint,
	waiting map[uint64]descWait, states map[*uthread.Thread]*swqThreadState,
	ready *uthread.FIFO, c *counters) {
	ids := make([]uint64, 0, len(waiting))
	for id := range waiting {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	resubmitted := false
	for _, id := range ids {
		w := waiting[id]
		if w.deadline > p.Now() {
			continue
		}
		delete(waiting, id)
		c.timeouts++
		if e.rec != nil {
			e.rec.Timeouts(p.Now(), 1)
		}
		w.sp.Point(p.Now(), "timeout")
		if w.attempts >= e.cfg.MaxRetries {
			// Out of budget: abandon with a zero-filled line.
			c.abandoned++
			c.recordLatency(p.Now() - w.submitted)
			if e.rec != nil {
				e.rec.Abandoned(p.Now(), 1)
				e.rec.Finished(p.Now())
				e.rec.Sample(p.Now(), p.Now()-w.submitted)
			}
			w.sp.Point(p.Now(), "abandoned")
			w.sp.End(p.Now())
			st := states[w.th]
			st.data[w.slot] = make([]byte, platform.CacheLineBytes)
			st.remaining--
			if st.remaining == 0 {
				st.payload = st.data
				ready.Push(w.th)
			}
			continue
		}
		c.retries++
		if e.rec != nil {
			e.rec.Retries(p.Now(), 1)
		}
		p.Sleep(e.cfg.SWQPerAccessOverhead)
		w.attempts++
		w.deadline = p.Now() + e.cfg.RetryTimeout(w.attempts)
		w.sp.Point(p.Now(), "retry")
		newID := rq.PushSpan(w.addr, w.target, p.Now(), w.sp)
		waiting[newID] = w
		resubmitted = true
	}
	if resubmitted {
		p.Sleep(e.cfg.DoorbellMMIO)
		rq.ClearDoorbellRequested()
		ep.Doorbell()
	}
}

// installQueueHooks installs the depth observers on the request queue,
// completion queue, and ready FIFO, sampled on every state change and
// fanned out to the trace counters (absolute depth) and the recorder
// gauges (deltas via a captured previous value). The hooks read the
// engine clock directly because queue transitions happen in both core
// and device contexts. Shared by the SWQ and kernel-queue mechanisms.
func installQueueHooks(e *env, coreID int, rq *hostmem.RequestQueue, cq *hostmem.CompletionQueue, ready *uthread.FIFO) {
	if e.tr == nil && e.rec == nil {
		return
	}
	prevSQ, prevCQ, prevReady := 0, 0, 0
	rq.OnChange = func(n int) {
		if e.tr != nil {
			e.tr.Counter(e.eng.Now(), e.sqName[coreID], n)
		}
		if e.rec != nil {
			e.rec.GaugeAdd(telemetry.GaugeSQ, e.eng.Now(), n-prevSQ)
		}
		prevSQ = n
	}
	cq.OnChange = func(n int) {
		if e.tr != nil {
			e.tr.Counter(e.eng.Now(), e.cqName[coreID], n)
		}
		if e.rec != nil {
			e.rec.GaugeAdd(telemetry.GaugeCQ, e.eng.Now(), n-prevCQ)
		}
		prevCQ = n
	}
	ready.OnChange = func(n int) {
		if e.tr != nil {
			e.tr.Counter(e.eng.Now(), e.runnableName[coreID], n)
		}
		if e.rec != nil {
			e.rec.GaugeAdd(telemetry.GaugeRunnable, e.eng.Now(), n-prevReady)
		}
		prevReady = n
	}
}

// runSWQCore executes one core under the application-managed
// software-queue mechanism (§III-A as refined in §IV): threads submit
// descriptors to the in-memory request queue (ringing the MMIO doorbell
// only when the doorbell-request flag is set), and a FIFO user-level
// scheduler runs ready threads, polling the completion queue "only when
// no threads remain in the ready state" (§IV-B).
func runSWQCore(p *sim.Proc, e *env, coreID int, threads []*uthread.Thread, c *counters) {
	rq := hostmem.NewRequestQueue()
	cq := hostmem.NewCompletionQueue()
	ep := e.dev.NewSWQEndpoint(coreID, rq, cq)
	defer ep.Stop()

	ready := uthread.NewFIFO()
	installQueueHooks(e, coreID, rq, cq, ready)
	states := make(map[*uthread.Thread]*swqThreadState, len(threads))
	waiting := make(map[uint64]descWait)
	for _, th := range threads {
		states[th] = &swqThreadState{}
		ready.Push(th)
	}
	live := len(threads)
	var cur *uthread.Thread
	defer func() {
		c.fetchBursts += ep.FetchBursts()
		c.emptyBursts += ep.EmptyBursts()
		if rq.MaxDepth() > c.maxRQDepth {
			c.maxRQDepth = rq.MaxDepth()
		}
	}()

	for live > 0 {
		th := ready.Pop()
		if th == nil {
			// No ready threads: poll the completion queue. The gate is
			// taken before draining so a completion that lands between
			// the drain and the wait still wakes the scheduler.
			gate := ep.CompletionGate()
			p.Sleep(e.cfg.CompletionPoll)
			compls := cq.Drain()
			if len(compls) == 0 {
				if e.faults == nil || len(waiting) == 0 {
					p.Wait(gate)
					continue
				}
				// Recovery backstop: wake at the earliest descriptor
				// deadline even if no completion ever arrives (lost
				// completion or swallowed doorbell).
				if !p.WaitTimeout(gate, minDeadline(waiting)-p.Now()) {
					resubmitOverdue(p, e, rq, ep, waiting, states, ready, c)
				}
				continue
			}
			for _, compl := range compls {
				w, ok := waiting[compl.ID]
				if !ok {
					continue // write completion: fire-and-forget
				}
				delete(waiting, compl.ID)
				c.recordLatency(compl.Posted - w.submitted)
				if e.rec != nil {
					// Windowed at the drain time (monotone); the latency
					// itself still ends at the device's post time.
					e.rec.Finished(p.Now())
					e.rec.Sample(p.Now(), compl.Posted-w.submitted)
				}
				w.sp.End(compl.Posted)
				st := states[w.th]
				st.data[w.slot] = ep.Data(compl.ID)
				st.remaining--
				if st.remaining == 0 {
					// The thread wakes with its whole batch; threads
					// become ready in completion order (FIFO, §IV-B).
					st.payload = st.data
					ready.Push(w.th)
				}
			}
			continue
		}

		if cur != nil && th != cur {
			p.Sleep(e.cfg.CtxSwitch)
			c.switches++
			if e.rec != nil {
				e.rec.Switches(p.Now(), 1)
			}
		}
		cur = th

		st := states[th]
		var req uthread.Request
		if st.started {
			req = th.Resume(st.payload)
			st.payload = nil
		} else {
			st.started = true
			req = th.Start()
		}

	inner:
		for {
			switch req.Kind {
			case uthread.KindWork:
				p.Sleep(e.cfg.WorkTime(req.Instr))
				c.workInstr += int64(req.Instr)
				req = th.Resume(nil)
			case uthread.KindWrite:
				// Fire-and-forget write descriptors: queue-management
				// cost is paid, but the thread does not wait (§VII).
				for _, addr := range req.Addrs {
					p.Sleep(e.cfg.SWQPerAccessOverhead)
					c.writes++
					rq.PushWrite(addr, responseTarget(coreID, th.ID(), 0), p.Now())
				}
				if rq.DoorbellRequested() || e.cfg.SWQAlwaysDoorbell {
					p.Sleep(e.cfg.DoorbellMMIO)
					rq.ClearDoorbellRequested()
					ep.Doorbell()
				}
				req = th.Resume(nil)
			default:
				break inner
			}
		}

		switch req.Kind {
		case uthread.KindAccess:
			// Submit the batch: fixed queue-management cost plus a
			// marginal cost per descriptor (§V-C: overhead grows with
			// the number of accesses "even when the accesses are
			// batched").
			p.Sleep(e.cfg.SWQBatchOverhead)
			st.data = make([][]byte, len(req.Addrs))
			st.remaining = len(req.Addrs)
			for i, addr := range req.Addrs {
				p.Sleep(e.cfg.SWQPerAccessOverhead)
				c.accesses++
				if e.rec != nil {
					e.rec.Started(p.Now())
				}
				target := responseTarget(coreID, th.ID(), i)
				var sp trace.Span
				if e.tr != nil {
					sp = e.trCore[coreID].BeginSpan(p.Now(), "access", trace.Hex("addr", addr))
				}
				id := rq.PushSpan(addr, target, p.Now(), sp)
				waiting[id] = descWait{
					th: th, slot: i, submitted: p.Now(),
					addr: addr, target: target,
					deadline: p.Now() + e.cfg.RetryTimeout(0),
					sp:       sp,
				}
			}
			// Ring the doorbell only if the device asked for it (or on
			// every submission, in the ablated flagless variant).
			if rq.DoorbellRequested() || e.cfg.SWQAlwaysDoorbell {
				p.Sleep(e.cfg.DoorbellMMIO)
				rq.ClearDoorbellRequested()
				ep.Doorbell()
			}
		case uthread.KindDone:
			live--
		}
	}
	c.coreFinished(p.Now())
}

// responseTarget synthesizes a distinct host-memory response buffer
// address per (core, thread, slot); the software queues never share
// response locations (§V-C).
func responseTarget(coreID, threadID, slot int) uint64 {
	return 1<<63 | uint64(coreID)<<40 | uint64(threadID)<<20 | uint64(slot)<<6
}
