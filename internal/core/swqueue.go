package core

import (
	"repro/internal/attrib"
	"repro/internal/hostmem"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/uthread"
)

// swqThreadState tracks one thread's lifecycle under the FIFO scheduler.
type swqThreadState struct {
	started   bool
	payload   [][]byte // data to deliver on the next resume
	data      [][]byte // in-progress batch results, by slot
	remaining int      // descriptors of the current batch still pending

	// atr holds the batch's attribution ledgers awaiting delivery, by
	// slot; nil when attribution is off or the batch had none complete.
	atr []*attrib.Access
}

// descWait maps an outstanding descriptor to the thread slot its data
// belongs to. The addr/target/attempts/deadline fields drive timeout
// recovery under fault injection: an overdue descriptor is resubmitted
// under a fresh ID (so a straggling completion of the old one is simply
// discarded as unknown) until the retry budget runs out.
type descWait struct {
	th        *uthread.Thread
	slot      int
	submitted sim.Time // original submission, for latency accounting
	addr      uint64
	target    uint64
	attempts  int
	deadline  sim.Time
	sp        trace.Span     // access-lifecycle span; survives resubmission
	aw        *attrib.Access // attribution ledger; survives resubmission
}

// installQueueHooks installs the depth observers on the request queue,
// completion queue, and ready FIFO, sampled on every state change and
// fanned out to the trace counters (absolute depth) and the recorder
// gauges (deltas via a captured previous value). The hooks read the
// engine clock directly because queue transitions happen in both core
// and device contexts. Shared by the SWQ and kernel-queue mechanisms.
func installQueueHooks(e *Env, coreID int, rq *hostmem.RequestQueue, cq *hostmem.CompletionQueue, ready *uthread.FIFO) {
	if e.tr == nil && e.rec == nil {
		return
	}
	prevSQ, prevCQ, prevReady := 0, 0, 0
	rq.OnChange = func(n int) {
		if e.tr != nil {
			e.tr.Counter(e.eng.Now(), e.sqName[coreID], n)
		}
		if e.rec != nil {
			e.rec.GaugeAdd(telemetry.GaugeSQ, e.eng.Now(), n-prevSQ)
		}
		prevSQ = n
	}
	cq.OnChange = func(n int) {
		if e.tr != nil {
			e.tr.Counter(e.eng.Now(), e.cqName[coreID], n)
		}
		if e.rec != nil {
			e.rec.GaugeAdd(telemetry.GaugeCQ, e.eng.Now(), n-prevCQ)
		}
		prevCQ = n
	}
	ready.OnChange = func(n int) {
		if e.tr != nil {
			e.tr.Counter(e.eng.Now(), e.runnableName[coreID], n)
		}
		if e.rec != nil {
			e.rec.GaugeAdd(telemetry.GaugeRunnable, e.eng.Now(), n-prevReady)
		}
		prevReady = n
	}
}

// runSWQCore executes one core under the application-managed
// software-queue mechanism (§III-A as refined in §IV): threads submit
// descriptors to the in-memory request queue (ringing the MMIO doorbell
// only when the doorbell-request flag is set), and a FIFO user-level
// scheduler runs ready threads, polling the completion queue "only when
// no threads remain in the ready state" (§IV-B).
func runSWQCore(p *sim.Proc, e *Env, coreID int, threads []*uthread.Thread, c *counters) {
	rq := hostmem.NewRequestQueue()
	cq := hostmem.NewCompletionQueue()
	ep := e.dev.NewSWQEndpoint(coreID, rq, cq)
	defer ep.Stop()

	ready := uthread.NewFIFO()
	installQueueHooks(e, coreID, rq, cq, ready)
	states := make(map[*uthread.Thread]*swqThreadState, len(threads))
	waiting := make(map[uint64]descWait)
	for _, th := range threads {
		states[th] = &swqThreadState{}
		ready.Push(th)
	}
	live := len(threads)
	var cur *uthread.Thread
	defer func() {
		c.fetchBursts += ep.FetchBursts()
		c.emptyBursts += ep.EmptyBursts()
		if rq.MaxDepth() > c.maxRQDepth {
			c.maxRQDepth = rq.MaxDepth()
		}
	}()

	for live > 0 {
		th := ready.Pop()
		if th == nil {
			// No ready threads: poll the completion queue. The gate is
			// taken before draining so a completion that lands between
			// the drain and the wait still wakes the scheduler.
			gate := ep.CompletionGate()
			p.Sleep(e.cfg.CompletionPoll)
			compls := cq.Drain()
			if len(compls) == 0 {
				waitCompletionOrRecover(p, e, rq, ep, gate, waiting, states, ready, c)
				continue
			}
			for _, compl := range compls {
				w, ok := waiting[compl.ID]
				if !ok {
					continue // write completion: fire-and-forget
				}
				delete(waiting, compl.ID)
				c.recordLatency(compl.Posted - w.submitted)
				if e.rec != nil {
					// Windowed at the drain time (monotone); the latency
					// itself still ends at the device's post time.
					e.rec.Finished(p.Now())
					e.rec.Sample(p.Now(), compl.Posted-w.submitted)
				}
				w.sp.End(compl.Posted)
				st := states[w.th]
				// The poll found the completion now; everything since the
				// device posted it is completion wait. The ledger parks on
				// the thread state until the scheduler resumes it.
				w.aw.To(attrib.PhaseComplWait, p.Now())
				if w.aw != nil && st.atr == nil {
					st.atr = make([]*attrib.Access, len(st.data))
				}
				if st.atr != nil {
					st.atr[w.slot] = w.aw
				}
				st.data[w.slot] = ep.Data(compl.ID)
				st.remaining--
				if st.remaining == 0 {
					// The thread wakes with its whole batch; threads
					// become ready in completion order (FIFO, §IV-B).
					st.payload = st.data
					ready.Push(w.th)
				}
			}
			continue
		}

		var switchStart, switchEnd sim.Time
		if cur != nil && th != cur {
			switchStart = p.Now()
			p.Sleep(e.cfg.CtxSwitch)
			switchEnd = p.Now()
			c.switches++
			if e.rec != nil {
				e.rec.Switches(p.Now(), 1)
			}
		}
		cur = th

		st := states[th]
		var req uthread.Request
		if st.started {
			// Close the batch's ledgers at delivery: ready-queue time is
			// completion wait, the switch interval (when one happened) is
			// switch overhead, and the residual until the thread actually
			// consumes the data is completion wait again.
			for _, aw := range st.atr {
				aw.To(attrib.PhaseComplWait, switchStart)
				aw.To(attrib.PhaseSwitch, switchEnd)
				aw.Close(attrib.PhaseComplWait, p.Now())
			}
			st.atr = nil
			req = th.Resume(st.payload)
			st.payload = nil
		} else {
			st.started = true
			req = th.Start()
		}

	inner:
		for {
			switch req.Kind {
			case uthread.KindWork:
				p.Sleep(e.cfg.WorkTime(req.Instr))
				c.workInstr += int64(req.Instr)
				req = th.Resume(nil)
			case uthread.KindWrite:
				// Fire-and-forget write descriptors: queue-management
				// cost is paid, but the thread does not wait (§VII).
				for _, addr := range req.Addrs {
					p.Sleep(e.cfg.SWQPerAccessOverhead)
					c.writes++
					rq.PushWrite(addr, responseTarget(coreID, th.ID(), 0), p.Now())
				}
				if rq.DoorbellRequested() || e.cfg.SWQAlwaysDoorbell {
					p.Sleep(e.cfg.DoorbellMMIO)
					rq.ClearDoorbellRequested()
					ep.Doorbell()
				}
				req = th.Resume(nil)
			default:
				break inner
			}
		}

		switch req.Kind {
		case uthread.KindAccess:
			// Submit the batch: fixed queue-management cost plus a
			// marginal cost per descriptor (§V-C: overhead grows with
			// the number of accesses "even when the accesses are
			// batched").
			p.Sleep(e.cfg.SWQBatchOverhead)
			st.data = make([][]byte, len(req.Addrs))
			st.remaining = len(req.Addrs)
			for i, addr := range req.Addrs {
				aw := e.at.Open(p.Now())
				p.Sleep(e.cfg.SWQPerAccessOverhead)
				aw.To(attrib.PhaseIssue, p.Now())
				c.accesses++
				if e.rec != nil {
					e.rec.Started(p.Now())
				}
				target := responseTarget(coreID, th.ID(), i)
				var sp trace.Span
				if e.tr != nil {
					sp = e.trCore[coreID].BeginSpan(p.Now(), "access", trace.Hex("addr", addr))
				}
				id := rq.PushTracked(addr, target, p.Now(), sp, aw)
				waiting[id] = descWait{
					th: th, slot: i, submitted: p.Now(),
					addr: addr, target: target,
					deadline: p.Now() + e.cfg.RetryTimeout(0),
					sp:       sp, aw: aw,
				}
			}
			// Ring the doorbell only if the device asked for it (or on
			// every submission, in the ablated flagless variant).
			if rq.DoorbellRequested() || e.cfg.SWQAlwaysDoorbell {
				p.Sleep(e.cfg.DoorbellMMIO)
				rq.ClearDoorbellRequested()
				ep.Doorbell()
			}
		case uthread.KindDone:
			live--
		}
	}
	c.coreFinished(p.Now())
}

// responseTarget synthesizes a distinct host-memory response buffer
// address per (core, thread, slot); the software queues never share
// response locations (§V-C).
func responseTarget(coreID, threadID, slot int) uint64 {
	return 1<<63 | uint64(coreID)<<40 | uint64(threadID)<<20 | uint64(slot)<<6
}
