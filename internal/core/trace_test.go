package core

// Trace-layer integration tests: every mechanism must produce one
// completed span per access, traced runs must be byte-reproducible, and
// tracing must never perturb the measurement it observes.

import (
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workload"
)

// traceRun executes one traced run of mech and returns the recorder and
// the result. mech "ondemand" uses the analytic model; the rest use the
// threaded engine.
func traceRun(t *testing.T, mech string, rec *trace.Recorder) Result {
	t.Helper()
	w := workload.NewMicrobench(60, workload.DefaultWorkCount, 1)
	cfg := platform.Default()
	cfg.Trace = rec
	var r Result
	var err error
	switch mech {
	case "ondemand":
		r, err = RunOnDemandDevice(cfg, w)
	case "prefetch":
		r, err = RunPrefetch(cfg, w, 8, false)
	case "swqueue":
		r, err = RunSWQueue(cfg, w, 8, false)
	case "kernelq":
		r, err = RunKernelQueue(cfg, w, 8, false)
	default:
		t.Fatalf("unknown mech %q", mech)
	}
	if err != nil {
		t.Fatalf("%s: %v", mech, err)
	}
	return r
}

var traceMechs = []string{"ondemand", "prefetch", "swqueue", "kernelq"}

func TestTraceSpansMatchAccesses(t *testing.T) {
	for _, mech := range traceMechs {
		rec := trace.NewRecorder()
		r := traceRun(t, mech, rec)
		sum := rec.Summary()
		if len(sum.Runs) != 1 {
			t.Fatalf("%s: %d trace runs, want 1", mech, len(sum.Runs))
		}
		rs := sum.Runs[0]
		if rs.Spans != r.Accesses {
			t.Errorf("%s: %d completed spans, %d accesses", mech, rs.Spans, r.Accesses)
		}
		if rs.OpenSpans != 0 {
			t.Errorf("%s: %d spans never ended", mech, rs.OpenSpans)
		}
		if rs.Label != r.Label {
			t.Errorf("%s: trace label %q != measurement label %q", mech, rs.Label, r.Label)
		}
		if r.Diag.TraceEvents == 0 {
			t.Errorf("%s: Diagnostics.TraceEvents = 0 on a traced run", mech)
		}
	}
}

func TestTraceByteIdenticalAcrossRuns(t *testing.T) {
	for _, mech := range traceMechs {
		a, b := trace.NewRecorder(), trace.NewRecorder()
		traceRun(t, mech, a)
		traceRun(t, mech, b)
		if a.String() != b.String() {
			t.Errorf("%s: same seed produced different trace bytes", mech)
		}
	}
}

func TestTraceDoesNotPerturbMeasurement(t *testing.T) {
	for _, mech := range traceMechs {
		traced := traceRun(t, mech, trace.NewRecorder())
		bare := traceRun(t, mech, nil)
		if traced.ElapsedSeconds != bare.ElapsedSeconds {
			t.Errorf("%s: traced elapsed %v != untraced %v — tracing changed timing",
				mech, traced.ElapsedSeconds, bare.ElapsedSeconds)
		}
		if traced.Accesses != bare.Accesses || traced.AccessP50Ns != bare.AccessP50Ns ||
			traced.AccessP99Ns != bare.AccessP99Ns {
			t.Errorf("%s: traced measurement diverged from untraced", mech)
		}
		if bare.Diag.TraceEvents != 0 {
			t.Errorf("%s: untraced run recorded %d trace events", mech, bare.Diag.TraceEvents)
		}
	}
}

func TestTraceOccupancyTracks(t *testing.T) {
	rec := trace.NewRecorder()
	traceRun(t, "prefetch", rec)
	rs := rec.Summary().Runs[0]
	for _, want := range []string{"lfb/core0", "chipq", "sq/core0", "cq/core0", "runnable/core0"} {
		found := false
		for _, name := range rs.CounterTracks {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("prefetch trace missing counter track %q (have %v)", want, rs.CounterTracks)
		}
	}
	// The LFB and chip-queue timelines must actually move.
	if rs.CounterSamples < 2*rs.Spans {
		t.Errorf("only %d counter samples for %d spans: occupancy hooks not firing",
			rs.CounterSamples, rs.Spans)
	}
	for _, tk := range []string{"core0", "pcie-down", "pcie-up"} {
		found := false
		for _, name := range rs.Tracks {
			if name == tk {
				found = true
			}
		}
		if !found {
			t.Errorf("missing thread track %q (have %v)", tk, rs.Tracks)
		}
	}
	if rs.Slices == 0 {
		t.Error("no PCIe TLP slices recorded")
	}
}

func TestTraceSWQueueLifecycleEdges(t *testing.T) {
	rec := trace.NewRecorder()
	traceRun(t, "swqueue", rec)
	rs := rec.Summary().Runs[0]
	for _, edge := range []string{"desc-fetched", "resp-sent", "data-landed", "completion-posted"} {
		if rs.PointCounts[edge] == 0 {
			t.Errorf("swqueue spans missing the %q edge (have %v)", edge, rs.PointCounts)
		}
	}
}

func TestTraceExportValidatesAndRoundTrips(t *testing.T) {
	rec := trace.NewRecorder()
	for _, mech := range traceMechs {
		traceRun(t, mech, rec)
	}
	live := rec.Summary()
	parsed, err := trace.ReadSummary(strings.NewReader(rec.String()))
	if err != nil {
		t.Fatalf("multi-run export failed schema validation: %v", err)
	}
	if len(parsed.Runs) != len(traceMechs) || parsed.Events != live.Events {
		t.Fatalf("parsed %d runs / %d events, live %d / %d",
			len(parsed.Runs), parsed.Events, len(live.Runs), live.Events)
	}
	for i := range parsed.Runs {
		if parsed.Runs[i].Spans != live.Runs[i].Spans ||
			parsed.Runs[i].TotalDurPs != live.Runs[i].TotalDurPs {
			t.Errorf("run %d: parsed summary diverges from live summary", i)
		}
	}
}

func TestDiagnosticsEngineCounters(t *testing.T) {
	r := traceRun(t, "prefetch", nil)
	if r.Diag.SimEvents == 0 {
		t.Error("Diagnostics.SimEvents = 0 after a threaded run")
	}
	if r.Diag.SimPending != 0 {
		t.Errorf("Diagnostics.SimPending = %d after a drained run", r.Diag.SimPending)
	}
	if r.Diag.MeanLFBOccupancy <= 0 {
		t.Errorf("MeanLFBOccupancy = %v, want positive under 8 threads", r.Diag.MeanLFBOccupancy)
	}
	if r.Diag.MeanChipOccupancy <= 0 {
		t.Errorf("MeanChipOccupancy = %v, want positive", r.Diag.MeanChipOccupancy)
	}
	if r.MeanLFBOccupancy != r.Diag.MeanLFBOccupancy {
		t.Error("Measurement occupancy mean not populated from diagnostics")
	}
	if r.AccessP50Ns != r.Diag.AccessP50Ns || r.AccessP50Ns <= 0 {
		t.Errorf("Measurement.AccessP50Ns = %v, Diag %v", r.AccessP50Ns, r.Diag.AccessP50Ns)
	}
}

// TestTraceRecordingRunExcluded pins that the two-run replay methodology
// traces only the measured run: recording runs would otherwise double
// every span.
func TestTraceRecordingRunExcluded(t *testing.T) {
	w := workload.NewMicrobench(40, workload.DefaultWorkCount, 1)
	cfg := platform.Default()
	rec := trace.NewRecorder()
	cfg.Trace = rec
	r, err := RunPrefetch(cfg, w, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	sum := rec.Summary()
	if len(sum.Runs) != 1 {
		t.Fatalf("%d trace runs for one replayed measurement, want 1 (measured only)", len(sum.Runs))
	}
	if sum.Runs[0].Spans != r.Accesses {
		t.Errorf("%d spans, %d accesses", sum.Runs[0].Spans, r.Accesses)
	}
}
