package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/hostmem"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/uthread"
)

// recoveryHarness assembles the minimal scheduler state the shared
// park-or-recover wait operates on: an Env (faulty or not), the host
// queues, a device endpoint, and one thread with a single-slot batch.
type recoveryHarness struct {
	e       *Env
	rq      *hostmem.RequestQueue
	cq      *hostmem.CompletionQueue
	ep      *device.SWQEndpoint
	th      *uthread.Thread
	states  map[*uthread.Thread]*swqThreadState
	waiting map[uint64]descWait
	ready   *uthread.FIFO
	c       counters
}

func newRecoveryHarness(cfg platform.Config) *recoveryHarness {
	h := &recoveryHarness{
		e:       NewEnv(cfg, replay.ZeroBacking{}),
		rq:      hostmem.NewRequestQueue(),
		cq:      hostmem.NewCompletionQueue(),
		states:  map[*uthread.Thread]*swqThreadState{},
		waiting: map[uint64]descWait{},
		ready:   uthread.NewFIFO(),
	}
	h.ep = h.e.dev.NewSWQEndpoint(0, h.rq, h.cq)
	h.th = uthread.New(0, func(*uthread.API) {})
	h.states[h.th] = &swqThreadState{data: make([][]byte, 1), remaining: 1}
	return h
}

// submit pushes one descriptor, lets the device-side fetch consume it,
// and registers it as outstanding with the given attempt count and a
// deadline d from now.
func (h *recoveryHarness) submit(p *sim.Proc, attempts int, d sim.Time) uint64 {
	id := h.rq.PushTracked(0x1000, 0x2000, p.Now(), trace.Span{}, nil)
	h.rq.PopBurst(1) // descriptor is at the device; host queue is empty
	h.waiting[id] = descWait{
		th: h.th, slot: 0, submitted: p.Now(),
		addr: 0x1000, target: 0x2000,
		attempts: attempts,
		deadline: p.Now() + d,
	}
	return id
}

func faultyRecoveryCfg() platform.Config {
	cfg := platform.Default()
	// A huge completion-queue bound arms the injector (so the recovery
	// paths are live) without ever actually delivering a fault, keeping
	// the test deterministic.
	cfg.Faults = fault.Plan{CQCapacity: 1 << 20}
	return cfg
}

// TestWaitCompletionOrRecoverParksWhenFaultFree pins the fault-free
// contract: with no injector the wait is unbounded — only a completion
// (gate fire) releases the scheduler, and no recovery ever runs.
func TestWaitCompletionOrRecoverParksWhenFaultFree(t *testing.T) {
	h := newRecoveryHarness(platform.Default())
	var woke sim.Time
	h.e.eng.Go("core", func(p *sim.Proc) {
		h.submit(p, 0, 2*sim.Microsecond)
		gate := h.ep.CompletionGate()
		h.e.eng.After(7*sim.Microsecond, gate.Fire) // completion long past the deadline
		waitCompletionOrRecover(p, h.e, h.rq, h.ep, gate, h.waiting, h.states, h.ready, &h.c)
		woke = p.Now()
		h.ep.Stop()
	})
	h.e.eng.Run()
	if woke != 7*sim.Microsecond {
		t.Errorf("fault-free wait woke at %v, want the gate fire at 7us", woke)
	}
	if h.c.timeouts != 0 || h.c.retries != 0 || len(h.waiting) != 1 {
		t.Errorf("fault-free wait ran recovery: timeouts=%d retries=%d waiting=%d",
			h.c.timeouts, h.c.retries, len(h.waiting))
	}
}

// TestWaitCompletionOrRecoverReturnsOnCompletion pins the happy faulty
// path: the gate firing before the earliest deadline releases the wait
// with no recovery.
func TestWaitCompletionOrRecoverReturnsOnCompletion(t *testing.T) {
	h := newRecoveryHarness(faultyRecoveryCfg())
	var woke sim.Time
	h.e.eng.Go("core", func(p *sim.Proc) {
		h.submit(p, 0, 5*sim.Microsecond)
		gate := h.ep.CompletionGate()
		h.e.eng.After(1*sim.Microsecond, gate.Fire)
		waitCompletionOrRecover(p, h.e, h.rq, h.ep, gate, h.waiting, h.states, h.ready, &h.c)
		woke = p.Now()
		h.ep.Stop()
	})
	h.e.eng.Run()
	if woke != 1*sim.Microsecond {
		t.Errorf("woke at %v, want the completion at 1us", woke)
	}
	if h.c.timeouts != 0 || len(h.waiting) != 1 {
		t.Errorf("completion before deadline still recovered: timeouts=%d waiting=%d",
			h.c.timeouts, len(h.waiting))
	}
}

// TestWaitCompletionOrRecoverResubmitsOverdue pins timeout recovery
// within the retry budget: the wait expires at the descriptor deadline,
// the descriptor is re-pushed under a fresh ID with a backed-off
// deadline, and the doorbell is re-rung.
func TestWaitCompletionOrRecoverResubmitsOverdue(t *testing.T) {
	h := newRecoveryHarness(faultyRecoveryCfg())
	cfg := h.e.cfg
	var oldID, newID uint64
	var neww descWait
	var woke sim.Time
	h.e.eng.Go("core", func(p *sim.Proc) {
		oldID = h.submit(p, 0, 2*sim.Microsecond)
		gate := h.ep.CompletionGate() // never fires: the completion was lost
		waitCompletionOrRecover(p, h.e, h.rq, h.ep, gate, h.waiting, h.states, h.ready, &h.c)
		woke = p.Now()
		for id, w := range h.waiting {
			newID, neww = id, w
		}
		h.ep.Stop()
	})
	h.e.eng.Run()

	if woke < 2*sim.Microsecond {
		t.Fatalf("recovery ran at %v, before the 2us deadline", woke)
	}
	if h.c.timeouts != 1 || h.c.retries != 0+1 || h.c.abandoned != 0 {
		t.Errorf("counters = (timeouts %d, retries %d, abandoned %d), want (1, 1, 0)",
			h.c.timeouts, h.c.retries, h.c.abandoned)
	}
	if len(h.waiting) != 1 {
		t.Fatalf("%d outstanding descriptors after resubmit, want 1", len(h.waiting))
	}
	if newID == oldID {
		t.Error("resubmission reused the old descriptor ID; a straggling old completion would match it")
	}
	if neww.attempts != 1 {
		t.Errorf("resubmitted attempts = %d, want 1", neww.attempts)
	}
	if want := neww.addr; want != 0x1000 {
		t.Errorf("resubmitted addr = %#x, want 0x1000", want)
	}
	// The new deadline is backed off: stamped at re-push (before the
	// doorbell MMIO) as push time + RetryTimeout(1).
	min := 2*sim.Microsecond + cfg.RetryTimeout(1)
	max := woke + cfg.RetryTimeout(1)
	if neww.deadline < min || neww.deadline > max {
		t.Errorf("backed-off deadline %v outside [%v, %v]", neww.deadline, min, max)
	}
	if h.ep.DoorbellHits() == 0 {
		t.Error("resubmission never re-rang the doorbell")
	}
}

// TestWaitCompletionOrRecoverAbandonsPastBudget pins the give-up path:
// a descriptor out of retries is abandoned — slot zero-filled, latency
// recorded, thread made runnable — rather than resubmitted.
func TestWaitCompletionOrRecoverAbandonsPastBudget(t *testing.T) {
	h := newRecoveryHarness(faultyRecoveryCfg())
	h.e.eng.Go("core", func(p *sim.Proc) {
		h.submit(p, h.e.cfg.MaxRetries, 2*sim.Microsecond)
		gate := h.ep.CompletionGate()
		waitCompletionOrRecover(p, h.e, h.rq, h.ep, gate, h.waiting, h.states, h.ready, &h.c)
		h.ep.Stop()
	})
	h.e.eng.Run()

	if h.c.abandoned != 1 || h.c.retries != 0 {
		t.Errorf("counters = (abandoned %d, retries %d), want (1, 0)", h.c.abandoned, h.c.retries)
	}
	if len(h.waiting) != 0 || h.rq.Len() != 0 {
		t.Errorf("abandoned descriptor still tracked: waiting=%d rq=%d", len(h.waiting), h.rq.Len())
	}
	st := h.states[h.th]
	if st.remaining != 0 || st.payload == nil {
		t.Fatalf("thread batch not completed: remaining=%d payload=%v", st.remaining, st.payload)
	}
	line := st.data[0]
	if len(line) != platform.CacheLineBytes {
		t.Fatalf("abandoned slot line is %d bytes, want %d", len(line), platform.CacheLineBytes)
	}
	for _, b := range line {
		if b != 0 {
			t.Fatal("abandoned slot not zero-filled")
		}
	}
	if got := h.ready.Pop(); got != h.th {
		t.Error("abandoning the last slot did not make the thread runnable")
	}
}
