package core

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/platform"
	"repro/internal/workload"
)

func faultTestWorkload() Workload {
	return workload.NewMicrobench(60, workload.DefaultWorkCount, 2)
}

// A plan with a seed but every rate zero is disabled, so every mechanism
// must produce results bit-identical to a run with no plan at all — the
// injector must not perturb anything it does not actively break.
func TestZeroRatePlanIsBitIdentical(t *testing.T) {
	clean := platform.Default()
	zero := platform.Default()
	zero.Faults = fault.Plan{Seed: 7}

	type run func(cfg platform.Config) (Result, error)
	runs := map[string]run{
		"ondemand": func(cfg platform.Config) (Result, error) { return RunOnDemandDevice(cfg, faultTestWorkload()) },
		"prefetch": func(cfg platform.Config) (Result, error) { return RunPrefetch(cfg, faultTestWorkload(), 8, false) },
		"swqueue":  func(cfg platform.Config) (Result, error) { return RunSWQueue(cfg, faultTestWorkload(), 8, false) },
		"kernelq":  func(cfg platform.Config) (Result, error) { return RunKernelQueue(cfg, faultTestWorkload(), 4, false) },
	}
	for name, r := range runs {
		a := must(r(clean))
		b := must(r(zero))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: zero-rate fault plan changed the result:\nclean: %+v\nzero:  %+v", name, a, b)
		}
	}
}

// At a 1%% completion-drop rate every mechanism must still complete the
// whole workload via timeout/retry — no hangs, no lost accesses — and
// surface the recovery in its diagnostics.
func TestDropRecoveryCompletesEveryMechanism(t *testing.T) {
	cfg := platform.Default()
	cfg.Faults = fault.Plan{Seed: 1, DropCompletionProb: 0.01}
	wl := faultTestWorkload()
	const wantAccesses = 60 * 2

	for name, r := range map[string]Result{
		"prefetch": must(RunPrefetch(cfg, wl, 8, false)),
		"swqueue":  must(RunSWQueue(cfg, wl, 8, false)),
		"kernelq":  must(RunKernelQueue(cfg, wl, 4, false)),
	} {
		if r.Accesses != wantAccesses {
			t.Errorf("%s: completed %d accesses, want %d", name, r.Accesses, wantAccesses)
		}
		if r.Diag.Faults.DroppedCompletions == 0 {
			t.Errorf("%s: injector dropped nothing at a 1%% rate", name)
		}
		if r.Diag.Retries == 0 || r.Diag.Timeouts == 0 {
			t.Errorf("%s: recovery invisible: retries=%d timeouts=%d", name, r.Diag.Retries, r.Diag.Timeouts)
		}
		if r.Diag.Abandoned != 0 {
			t.Errorf("%s: abandoned %d accesses; 1%% drops should never exhaust 4 retries", name, r.Diag.Abandoned)
		}
		if r.Measurement.Retries != r.Diag.Retries {
			t.Errorf("%s: Measurement.Retries %d != Diag.Retries %d", name, r.Measurement.Retries, r.Diag.Retries)
		}
	}
}

func TestOnDemandDropRecovery(t *testing.T) {
	cfg := platform.Default()
	wl := faultTestWorkload()
	clean := must(RunOnDemandDevice(cfg, wl))

	cfg.Faults = fault.Plan{Seed: 3, DropCompletionProb: 0.05}
	faulty := must(RunOnDemandDevice(cfg, wl))
	if faulty.Diag.Retries == 0 {
		t.Fatal("no retries at a 5% drop rate")
	}
	if faulty.ElapsedSeconds <= clean.ElapsedSeconds {
		t.Errorf("recovery made the run faster: %v <= %v", faulty.ElapsedSeconds, clean.ElapsedSeconds)
	}
	if faulty.Diag.AccessP999Ns <= faulty.Diag.AccessP50Ns {
		t.Errorf("p999 %.0fns not above p50 %.0fns despite timeouts", faulty.Diag.AccessP999Ns, faulty.Diag.AccessP50Ns)
	}
}

// Dropped doorbells park the request fetcher; the host's descriptor
// timeout must re-ring until one lands.
func TestDoorbellDropRecovery(t *testing.T) {
	cfg := platform.Default()
	cfg.Faults = fault.Plan{Seed: 2, DoorbellDropProb: 0.5}
	r := must(RunSWQueue(cfg, faultTestWorkload(), 8, false))
	if r.Accesses != 60*2 {
		t.Errorf("completed %d accesses, want %d", r.Accesses, 60*2)
	}
	if r.Diag.Faults.DroppedDoorbells == 0 {
		t.Error("no doorbells dropped at a 50% rate")
	}
	if r.Diag.Abandoned != 0 {
		t.Errorf("abandoned %d accesses", r.Diag.Abandoned)
	}
}

// A bounded completion queue makes the device defer posts until the
// host drains; the run must still complete, with backpressure counted.
func TestCQBackpressure(t *testing.T) {
	cfg := platform.Default()
	cfg.Faults = fault.Plan{Seed: 4, CQCapacity: 1}
	r := must(RunSWQueue(cfg, faultTestWorkload(), 8, false))
	if r.Accesses != 60*2 {
		t.Errorf("completed %d accesses, want %d", r.Accesses, 60*2)
	}
	if r.Diag.Faults.CQBackpressure == 0 {
		t.Error("no backpressure events with a 1-entry completion queue")
	}
}

// Stragglers past the access timeout retry under prefetch; duplicated
// responses must not double-release tokens or double-fire gates.
func TestStragglerAndDuplicateRecovery(t *testing.T) {
	cfg := platform.Default()
	cfg.Faults = fault.Plan{Seed: 5, StragglerProb: 0.02, StragglerFactor: 100, DuplicateProb: 0.05}
	r := must(RunPrefetch(cfg, faultTestWorkload(), 8, false))
	if r.Accesses != 60*2 {
		t.Errorf("completed %d accesses, want %d", r.Accesses, 60*2)
	}
	if r.Diag.Faults.Stragglers == 0 || r.Diag.Faults.Duplicates == 0 {
		t.Errorf("faults not injected: %+v", r.Diag.Faults)
	}
	if r.Diag.Timeouts == 0 {
		t.Error("100x stragglers never hit the 16x-latency timeout")
	}
}

// PCIe-layer faults slow packets but need no host recovery; the run
// completes with the faults counted and a longer elapsed time.
func TestPCIeFaultsSlowButComplete(t *testing.T) {
	clean := must(RunSWQueue(platform.Default(), faultTestWorkload(), 8, false))

	cfg := platform.Default()
	cfg.Faults = fault.Plan{Seed: 6, TLPCorruptProb: 0.05, LinkStallProb: 0.02}
	r := must(RunSWQueue(cfg, faultTestWorkload(), 8, false))
	if r.Accesses != 60*2 {
		t.Errorf("completed %d accesses, want %d", r.Accesses, 60*2)
	}
	if r.Diag.Faults.CorruptTLPs == 0 || r.Diag.Faults.LinkStalls == 0 {
		t.Errorf("PCIe faults not injected: %+v", r.Diag.Faults)
	}
	if r.ElapsedSeconds <= clean.ElapsedSeconds {
		t.Errorf("link replays/stalls made the run faster: %v <= %v", r.ElapsedSeconds, clean.ElapsedSeconds)
	}
}

// The same seed must reproduce a faulty run exactly; a different seed
// should generally not (spot check, not a property of every pair).
func TestFaultRunsAreSeedDeterministic(t *testing.T) {
	cfg := platform.Default()
	cfg.Faults = fault.Plan{Seed: 11, DropCompletionProb: 0.02, StragglerProb: 0.02}
	a := must(RunPrefetch(cfg, faultTestWorkload(), 8, false))
	b := must(RunPrefetch(cfg, faultTestWorkload(), 8, false))
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different results")
	}
	cfg.Faults.Seed = 12
	c := must(RunPrefetch(cfg, faultTestWorkload(), 8, false))
	if reflect.DeepEqual(a.Measurement, c.Measurement) && reflect.DeepEqual(a.Diag.Faults, c.Diag.Faults) {
		t.Error("different seeds produced identical fault draws (suspicious)")
	}
}
