package core

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Engine exposes the environment's event engine so a composition layer
// (the cluster driver) can advance many instances in lockstep.
func (e *Env) Engine() *sim.Engine { return e.eng }

// Config returns the platform configuration the environment was built
// with.
func (e *Env) Config() platform.Config { return e.cfg }

// Server turns one Env into an open-loop request service: instead of a
// fixed set of closed-loop threads running to completion, requests
// arrive from outside at arbitrary simulation times and a bounded pool
// of user-level worker contexts serves them through one of the paper's
// access mechanisms. The mechanism cost structure is preserved —
// prefetch workers allocate LFB entries and chip-queue slots per line
// and yield the core while lines are in flight, software-queue workers
// pay the batch + per-descriptor management cost on the core but
// bypass the hardware queues, on-demand workers block the core for the
// full device round trip — so per-instance capacity inherits the
// single-host knees (LFB limit, chip-queue limit, SWQ overhead cap)
// and a fleet built from Servers inherits their crossover behavior.
type Server struct {
	e          *Env
	mech       string
	valueLines int
	workInstr  int
	valueSkew  bool

	// One single-token pool per core serializes instruction execution:
	// a worker must hold its core's slot to issue, switch, or compute,
	// and releases it while its lines are in flight, exactly like the
	// closed-loop schedulers overlap threads.
	slot    []*sim.TokenPool
	workers []*serverWorker
	idle    []*serverWorker // stack of parked workers
	queue   []serverReq     // backlog when every worker is busy
	closed  bool

	arrived         uint64
	completed       uint64
	outstanding     int
	peakOutstanding int
	lastComplete    sim.Time
	lat             *stats.Histogram
}

type serverReq struct {
	key     uint64
	arrival sim.Time
}

type serverWorker struct {
	id   int
	core int
	gate *sim.Gate
}

// ServerConfig parameterizes an open-loop service.
type ServerConfig struct {
	Mech       string // prefetch, swqueue, or ondemand
	Workers    int    // total user-level context pool, spread round-robin over cores
	ValueLines int    // device lines fetched per request (the memcached value size)
	WorkInstr  int    // post-fetch compute per request

	// ValueSkew makes the per-request line count key-dependent — a
	// deterministic hash spreads sizes over [1, 2*ValueLines-1] with
	// mean ValueLines — modeling the size heterogeneity of a real
	// memcached item population. Off, every request is ValueLines.
	ValueSkew bool
}

// NewServer builds an open-loop service over the environment.
func NewServer(e *Env, sc ServerConfig) (*Server, error) {
	switch sc.Mech {
	case "prefetch", "swqueue", "ondemand":
	default:
		return nil, fmt.Errorf("core: unknown server mechanism %q", sc.Mech)
	}
	if sc.Workers < 1 {
		return nil, fmt.Errorf("core: server needs at least 1 worker, got %d", sc.Workers)
	}
	if sc.ValueLines < 1 {
		return nil, fmt.Errorf("core: server needs at least 1 value line, got %d", sc.ValueLines)
	}
	s := &Server{
		e:          e,
		mech:       sc.Mech,
		valueLines: sc.ValueLines,
		workInstr:  sc.WorkInstr,
		valueSkew:  sc.ValueSkew,
		slot:       make([]*sim.TokenPool, e.cfg.Cores),
		lat:        stats.NewHistogram(),
	}
	for i := range s.slot {
		s.slot[i] = e.eng.NewTokenPool("coreslot", 1)
	}
	for i := 0; i < sc.Workers; i++ {
		w := &serverWorker{id: i, core: i % e.cfg.Cores}
		s.workers = append(s.workers, w)
		s.e.eng.Go(fmt.Sprintf("srvworker%d", i), func(p *sim.Proc) {
			s.workerLoop(p, w)
		})
	}
	return s, nil
}

// Submit enqueues one request at the current simulation time. The
// caller (the cluster's lockstep driver) must have advanced the
// engine's clock to the request's arrival time first.
func (s *Server) Submit(key uint64) {
	if s.closed {
		panic("core: Submit on closed server")
	}
	s.arrived++
	s.outstanding++
	if s.outstanding > s.peakOutstanding {
		s.peakOutstanding = s.outstanding
	}
	s.queue = append(s.queue, serverReq{key: key, arrival: s.e.eng.Now()})
	s.wakeOne()
}

// Close marks the arrival stream finished; workers drain the backlog
// and exit. The engine still has to run for the drain to happen.
func (s *Server) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for len(s.idle) > 0 {
		s.wakeOne()
	}
}

// Arrived returns the number of requests submitted so far.
func (s *Server) Arrived() uint64 { return s.arrived }

// Completed returns the number of requests fully served so far.
func (s *Server) Completed() uint64 { return s.completed }

// Outstanding returns the requests accepted but not yet completed —
// the router's least-outstanding signal.
func (s *Server) Outstanding() int { return s.outstanding }

// QueueDepth returns the backlog not yet picked up by any worker —
// the router's queue-depth signal.
func (s *Server) QueueDepth() int { return len(s.queue) }

// PeakOutstanding returns the high-water mark of in-flight requests.
func (s *Server) PeakOutstanding() int { return s.peakOutstanding }

// LastComplete returns the completion time of the latest request.
func (s *Server) LastComplete() sim.Time { return s.lastComplete }

// Latencies returns the end-to-end (arrival to completion) latency
// histogram. The histogram is live; merge or query it only after the
// engine has drained.
func (s *Server) Latencies() *stats.Histogram { return s.lat }

func (s *Server) wakeOne() {
	if len(s.idle) == 0 {
		return
	}
	w := s.idle[len(s.idle)-1]
	s.idle = s.idle[:len(s.idle)-1]
	w.gate.Fire()
}

func (s *Server) workerLoop(p *sim.Proc, w *serverWorker) {
	for {
		for len(s.queue) == 0 {
			if s.closed {
				return
			}
			w.gate = s.e.eng.NewGate()
			s.idle = append(s.idle, w)
			p.Wait(w.gate)
		}
		req := s.queue[0]
		s.queue = s.queue[1:]
		s.serve(p, w, req)
		s.completed++
		s.outstanding--
		if now := p.Now(); now > s.lastComplete {
			s.lastComplete = now
		}
		s.lat.Record(int64(p.Now() - req.arrival))
	}
}

// addrFor lays the request's value out in the worker core's private
// device address range, memcached-style: valueLines consecutive lines
// per key.
func (s *Server) addrFor(core int, key uint64, line int) uint64 {
	const coreRegionBits = 40
	off := (key*uint64(s.valueLines) + uint64(line)) * platform.CacheLineBytes
	return uint64(core)<<coreRegionBits | off&(1<<coreRegionBits-1)
}

// lines returns the request's value size in device lines: fixed, or
// key-hashed over [1, 2*ValueLines-1] when size skew is on.
func (s *Server) lines(key uint64) int {
	if !s.valueSkew {
		return s.valueLines
	}
	return 1 + int(mix64(key)%uint64(2*s.valueLines-1))
}

// mix64 is one splitmix64 finalization round, the same hash the
// workloads use for key streams.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// serve executes one request under the server's mechanism. Every path
// charges one context switch at dispatch (the worker context is
// scheduled onto the core) and runs the post-fetch work with the core
// slot held, so mechanisms differ only in how they fetch.
func (s *Server) serve(p *sim.Proc, w *serverWorker, req serverReq) {
	e := s.e
	lines := s.lines(req.key)
	slot := s.slot[w.core]
	p.AcquireToken(slot)
	p.Sleep(e.cfg.CtxSwitch)

	switch s.mech {
	case "prefetch":
		// Listing 1 shape: issue a non-binding prefetch per line (LFB
		// entry, then a chip-level queue slot on the way out), yield the
		// core while the lines are in flight, and pay a context switch
		// when the demand loads resume.
		gates := make([]*sim.Gate, lines)
		for l := 0; l < lines; l++ {
			addr := s.addrFor(w.core, req.key, l)
			p.AcquireToken(e.lfb[w.core])
			p.Sleep(e.cfg.PrefetchIssue)
			g := e.eng.NewGate()
			gates[l] = g
			lfb := e.lfb[w.core]
			e.chip.OnAcquire(func() {
				e.dev.MMIORead(w.core, addr, trace.Span{}, nil, func([]byte) {
					e.chip.Release()
					lfb.Release()
					g.Fire()
				})
			})
		}
		slot.Release()
		for _, g := range gates {
			p.Wait(g)
		}
		p.AcquireToken(slot)
		p.Sleep(e.cfg.CtxSwitch)
	case "swqueue":
		// §III-A shape: the batch + per-descriptor queue management cost
		// is paid on the core, the descriptors then travel by DMA —
		// no LFB entries, no chip-queue slots — and the worker yields
		// until the batch completes.
		p.Sleep(e.cfg.SWQBatchOverhead)
		gates := make([]*sim.Gate, lines)
		for l := 0; l < lines; l++ {
			addr := s.addrFor(w.core, req.key, l)
			p.Sleep(e.cfg.SWQPerAccessOverhead)
			g := e.eng.NewGate()
			gates[l] = g
			e.dev.MMIORead(w.core, addr, trace.Span{}, nil, func([]byte) {
				g.Fire()
			})
		}
		slot.Release()
		for _, g := range gates {
			p.Wait(g)
		}
		p.AcquireToken(slot)
		p.Sleep(e.cfg.CompletionPoll)
		p.Sleep(e.cfg.CtxSwitch)
	case "ondemand":
		// Blocking demand loads: the core slot is held for every full
		// device round trip, one line at a time.
		for l := 0; l < lines; l++ {
			addr := s.addrFor(w.core, req.key, l)
			g := e.eng.NewGate()
			e.chip.OnAcquire(func() {
				e.dev.MMIORead(w.core, addr, trace.Span{}, nil, func([]byte) {
					e.chip.Release()
					g.Fire()
				})
			})
			p.Wait(g)
		}
	}

	if s.workInstr > 0 {
		p.Sleep(e.cfg.WorkTime(s.workInstr))
	}
	slot.Release()
}
