// Package core implements the paper's contribution: the three
// device-access mechanisms for microsecond-latency storage (§III) and
// the measurement harness that quantifies how well each hides device
// latency (§V).
//
//   - OnDemand: unmodified software performs cacheable memory-mapped
//     loads; latency hiding falls entirely on the out-of-order core
//     (modeled by internal/cpu's interval model).
//   - Prefetch: the paper's Listing 1 — a non-binding prefetch enqueues
//     the access in the hardware queues (LFBs, chip-level MMIO queue),
//     a 30 ns user-level context switch moves to the next thread, and
//     the eventual demand load hits in the L1 (or blocks on the MSHR).
//   - SWQueue: the best software-managed-queue design the paper found —
//     application-managed descriptor rings with a doorbell-request flag
//     and burst descriptor fetch — run under a FIFO user-level scheduler
//     that polls the completion queue only when no thread is ready.
//
// Every run produces a stats.Measurement; dividing by the matching
// single-threaded on-demand DRAM baseline yields the paper's
// "normalized work IPC" / "normalized performance" (§IV-C).
package core

import (
	"repro/internal/cpu"
	"repro/internal/replay"
	"repro/internal/uthread"
)

// Workload is a benchmark that can run under every mechanism: the
// microbenchmark or one of the three applications (§IV-C).
//
// A workload owns its address-space layout. Different cores must use
// disjoint device address regions (the emulator steers per-core requests
// to per-core replay modules, §IV-A), and the total work performed by
// the thread bodies of one core must equal the work of that core's
// baseline trace, so that normalized performance equals the baseline
// time ratio.
type Workload interface {
	// Name identifies the workload in labels.
	Name() string

	// Backing is the authoritative dataset the device serves (the
	// on-board "copy of the dataset" used for recording and for the
	// on-demand module).
	Backing() replay.Backing

	// Body returns the code of one user-level thread. The workload's
	// per-core iterations are partitioned across threadsPerCore threads.
	Body(coreID, threadID, threadsPerCore int) func(*uthread.API)

	// BaselineTrace returns the single-threaded demand-access iteration
	// trace of one core, consumed by the interval model for the DRAM
	// baseline and the on-demand device case.
	BaselineTrace(coreID int) []cpu.IterSpec
}
