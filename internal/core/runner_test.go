package core

import (
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

const testIters = 2000

func ubench(iters int) Workload {
	return workload.NewMicrobench(iters, workload.DefaultWorkCount, 1)
}

func TestDRAMBaselineSanity(t *testing.T) {
	cfg := platform.Default()
	r := must(RunDRAMBaseline(cfg, ubench(testIters)))
	iter := r.IterationTime() * 1e9
	// Calibrated: ~83ns per iteration (work 62ns + exposed DRAM).
	if iter < 70 || iter > 100 {
		t.Errorf("baseline iteration %.1fns, want ~83ns", iter)
	}
	if r.Accesses != testIters {
		t.Errorf("accesses = %d", r.Accesses)
	}
	if !strings.Contains(r.Label, "dram-baseline") {
		t.Errorf("label = %q", r.Label)
	}
}

func TestOnDemandDeviceAbysmal(t *testing.T) {
	// Fig 2: on-demand microsecond access is far below DRAM at moderate
	// work counts.
	cfg := platform.Default()
	w := ubench(testIters)
	base := must(RunDRAMBaseline(cfg, w))
	dev := must(RunOnDemandDevice(cfg, w))
	norm := dev.NormalizedTo(base.Measurement)
	if norm > 0.15 {
		t.Errorf("on-demand normalized %.3f, want abysmal (<0.15)", norm)
	}
}

func TestPrefetchSingleThreadVsTen(t *testing.T) {
	// Fig 3 at 1us: performance rises with threads and approaches the
	// DRAM baseline around 10 threads.
	cfg := platform.Default()
	w := ubench(testIters)
	base := must(RunDRAMBaseline(cfg, w))

	one := must(RunPrefetch(cfg, w, 1, false))
	ten := must(RunPrefetch(cfg, w, 10, false))
	n1 := one.NormalizedTo(base.Measurement)
	n10 := ten.NormalizedTo(base.Measurement)
	if n1 > 0.2 {
		t.Errorf("1-thread prefetch normalized %.3f, want small", n1)
	}
	if n10 < 0.7 || n10 > 1.2 {
		t.Errorf("10-thread prefetch normalized %.3f, want near DRAM (~0.8-1.0)", n10)
	}
	if n10 <= n1 {
		t.Errorf("no thread scaling: %.3f -> %.3f", n1, n10)
	}
}

func TestPrefetchLFBCeiling(t *testing.T) {
	// Fig 3: "after reaching 10 threads, additional threads do not
	// improve performance" — the 10-LFB limit.
	cfg := platform.Default().WithLatency(4 * sim.Microsecond)
	w := ubench(testIters)
	ten := must(RunPrefetch(cfg, w, 10, false))
	sixteen := must(RunPrefetch(cfg, w, 16, false))
	gain := sixteen.WorkIPS() / ten.WorkIPS()
	if gain > 1.05 {
		t.Errorf("16 threads improved over 10 by %.2fx despite LFB limit", gain)
	}
	if ten.Diag.MaxLFB != 10 {
		t.Errorf("max LFB occupancy %d, want 10", ten.Diag.MaxLFB)
	}
	if sixteen.Diag.LFBStalls == 0 {
		t.Error("16 threads at 4us never stalled on LFBs")
	}
}

func TestPrefetchMulticoreChipQueueCeiling(t *testing.T) {
	// Fig 5: cores aggregate until the 14-entry chip-level queue binds.
	cfg := platform.Default().WithLatency(4 * sim.Microsecond).WithCores(4)
	w := ubench(800)
	r := must(RunPrefetch(cfg, w, 10, false))
	if r.Diag.MaxChipQueue != 14 {
		t.Errorf("max chip-queue occupancy %d, want 14 (§V-B)", r.Diag.MaxChipQueue)
	}
	if r.Diag.ChipStalls == 0 {
		t.Error("4 cores x 10 threads at 4us never stalled on the chip queue")
	}

	// And the ceiling limits throughput: 8 cores do no better than ~14
	// in-flight accesses allow.
	cfg8 := cfg.WithCores(8)
	r8 := must(RunPrefetch(cfg8, w, 10, false))
	maxRate := 14.0 / (4e-6) // Little's law: 14 in flight / 4us
	rate := float64(r8.Accesses) / r8.ElapsedSeconds
	if rate > maxRate*1.05 {
		t.Errorf("8-core access rate %.3g/s exceeds chip-queue bound %.3g/s", rate, maxRate)
	}
}

func TestPrefetchMLPConsumesLFBs(t *testing.T) {
	// Fig 6: the 4-read variant saturates around 3 threads; extra
	// threads add nothing because 10 LFBs serve only ~2.5 batches.
	cfg := platform.Default()
	w4 := workload.NewMicrobench(testIters, workload.DefaultWorkCount, 4)
	three := must(RunPrefetch(cfg, w4, 3, false))
	eight := must(RunPrefetch(cfg, w4, 8, false))
	gain := eight.WorkIPS() / three.WorkIPS()
	if gain > 1.10 {
		t.Errorf("4-read: 8 threads over 3 threads = %.2fx, want flat (LFB-bound)", gain)
	}
}

func TestSWQPeakAndScalingPastLFBLimit(t *testing.T) {
	cfg := platform.Default().WithLatency(4 * sim.Microsecond)
	w := ubench(testIters)
	base := must(RunDRAMBaseline(cfg, w))

	// Fig 7 at 4us: SWQ keeps gaining beyond 10 threads (no hardware
	// queue limit) while prefetch is stuck at its LFB ceiling.
	swq10 := must(RunSWQueue(cfg, w, 10, false))
	swq24 := must(RunSWQueue(cfg, w, 24, false))
	if swq24.WorkIPS() <= swq10.WorkIPS()*1.3 {
		t.Errorf("SWQ did not scale past 10 threads: %.3g -> %.3g",
			swq10.WorkIPS(), swq24.WorkIPS())
	}
	pf24 := must(RunPrefetch(cfg, w, 24, false))
	if swq24.WorkIPS() <= pf24.WorkIPS() {
		t.Errorf("at 4us/24 threads SWQ (%.3g) should beat LFB-capped prefetch (%.3g)",
			swq24.WorkIPS(), pf24.WorkIPS())
	}

	// Queue-management overhead caps the peak at ~50% of DRAM (§V-C).
	norm := swq24.NormalizedTo(base.Measurement)
	if norm < 0.35 || norm > 0.65 {
		t.Errorf("SWQ peak normalized %.3f, want ~0.5", norm)
	}
}

func TestSWQDoorbellsAreRare(t *testing.T) {
	// The doorbell-request flag keeps the fetcher running: with many
	// threads continuously submitting, doorbells are a tiny fraction of
	// accesses (§III-A).
	cfg := platform.Default()
	w := ubench(testIters)
	r := must(RunSWQueue(cfg, w, 16, false))
	if r.Accesses != testIters {
		t.Fatalf("accesses = %d, want %d", r.Accesses, testIters)
	}
}

func TestMulticoreSWQLinearThenBandwidth(t *testing.T) {
	// Fig 8: SWQ scales ~linearly in cores until the PCIe request-rate
	// wall, where only ~half the link carries useful data (§V-C).
	w := ubench(600)
	cfg1 := platform.Default()
	cfg4 := cfg1.WithCores(4)
	r1 := must(RunSWQueue(cfg1, w, 24, false))
	r4 := must(RunSWQueue(cfg4, w, 24, false))
	scale := r4.WorkIPS() / r1.WorkIPS()
	if scale < 3.0 {
		t.Errorf("4-core SWQ scaling %.2fx, want near-linear (>3x)", scale)
	}
	cfg8 := cfg1.WithCores(8)
	r8 := must(RunSWQueue(cfg8, w, 24, false))
	if r8.Diag.UpstreamUseful > 0.62 {
		t.Errorf("upstream useful fraction %.2f, want ~0.5 from protocol overhead", r8.Diag.UpstreamUseful)
	}
}

func TestReplayMethodologyMatchesBackingMode(t *testing.T) {
	// The two-run record/replay methodology must reproduce the direct
	// (backing-served) timing: replay is a fidelity mechanism, not a
	// performance effect.
	cfg := platform.Default()
	w := ubench(500)
	direct := must(RunPrefetch(cfg, w, 8, false))
	replayed := must(RunPrefetch(cfg, w, 8, true))
	if direct.ElapsedSeconds != replayed.ElapsedSeconds {
		t.Errorf("replay changed timing: %.9g vs %.9g",
			direct.ElapsedSeconds, replayed.ElapsedSeconds)
	}
	if replayed.Diag.OnDemand != 0 {
		t.Errorf("%d requests leaked to the on-demand module during replay", replayed.Diag.OnDemand)
	}
	if replayed.Diag.ReplayServed == 0 {
		t.Error("replay served nothing")
	}
}

func TestReplaySWQDeterministic(t *testing.T) {
	cfg := platform.Default()
	w := ubench(400)
	direct := must(RunSWQueue(cfg, w, 6, false))
	replayed := must(RunSWQueue(cfg, w, 6, true))
	if direct.ElapsedSeconds != replayed.ElapsedSeconds {
		t.Errorf("SWQ replay changed timing: %.9g vs %.9g",
			direct.ElapsedSeconds, replayed.ElapsedSeconds)
	}
	if replayed.Diag.OnDemand != 0 {
		t.Errorf("%d SWQ requests missed replay", replayed.Diag.OnDemand)
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	cfg := platform.Default().WithCores(2)
	w := ubench(500)
	a := must(RunPrefetch(cfg, w, 5, false))
	b := must(RunPrefetch(cfg, w, 5, false))
	if a.ElapsedSeconds != b.ElapsedSeconds || a.Accesses != b.Accesses {
		t.Errorf("nondeterministic: %+v vs %+v", a.Measurement, b.Measurement)
	}
	s1 := must(RunSWQueue(cfg, w, 5, false))
	s2 := must(RunSWQueue(cfg, w, 5, false))
	if s1.ElapsedSeconds != s2.ElapsedSeconds {
		t.Errorf("SWQ nondeterministic: %v vs %v", s1.ElapsedSeconds, s2.ElapsedSeconds)
	}
}

func TestAllWorkRetired(t *testing.T) {
	cfg := platform.Default()
	w := ubench(1000)
	wantWork := float64(1000 * workload.DefaultWorkCount)
	for _, r := range []Result{
		must(RunPrefetch(cfg, w, 7, false)),
		must(RunSWQueue(cfg, w, 7, false)),
	} {
		if r.WorkInstr != wantWork {
			t.Errorf("%s retired %.0f work instr, want %.0f", r.Label, r.WorkInstr, wantWork)
		}
		if r.Accesses != 1000 {
			t.Errorf("%s accesses = %d", r.Label, r.Accesses)
		}
	}
}

func TestMoreThreadsThanIterations(t *testing.T) {
	// Threads beyond the per-core iteration budget run zero iterations
	// and must terminate cleanly under every mechanism.
	cfg := platform.Default()
	w := ubench(5)
	for _, r := range []Result{
		must(RunPrefetch(cfg, w, 12, false)),
		must(RunSWQueue(cfg, w, 12, false)),
		must(RunKernelQueue(cfg, w, 12, false)),
	} {
		if r.Accesses != 5 {
			t.Errorf("%s: accesses = %d, want 5", r.Label, r.Accesses)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	cfg := platform.Default()
	cfg.LFBPerCore = 0
	must(RunPrefetch(cfg, ubench(10), 1, false))
}

func TestZeroThreadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero threads did not panic")
		}
	}()
	must(RunPrefetch(platform.Default(), ubench(10), 0, false))
}

// must unwraps a run result inside tests, where a run error is a bug.
func must(r Result, err error) Result {
	if err != nil {
		panic(err)
	}
	return r
}
