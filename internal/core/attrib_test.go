package core

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/attrib"
	"repro/internal/fault"
	"repro/internal/platform"
	"repro/internal/stats"
)

func gobRoundTrip(in, out interface{}) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		return err
	}
	return gob.NewDecoder(&buf).Decode(out)
}

// attribCfg returns the default platform with latency attribution on.
func attribCfg() platform.Config {
	cfg := platform.Default()
	cfg.Attribution = true
	return cfg
}

func attribRuns(t *testing.T, cfg platform.Config) map[string]Result {
	t.Helper()
	w := ubench(testIters)
	return map[string]Result{
		"prefetch": must(RunPrefetch(cfg, w, 4, false)),
		"swqueue":  must(RunSWQueue(cfg, w, 4, false)),
		"kernelq":  must(RunKernelQueue(cfg, w, 2, false)),
		"ondemand": must(RunOnDemandDevice(cfg, w)),
	}
}

// TestAttributionSumsExactly is the hard invariant of the attribution
// layer: for every mechanism, fault-free and faulty, the per-phase
// picosecond sums total exactly the measured end-to-end windows, every
// opened ledger closed cleanly (no end-time clamps), and the ledger
// count matches the mechanism's own access counter.
func TestAttributionSumsExactly(t *testing.T) {
	faulty := attribCfg()
	faulty.Faults = fault.Plan{Seed: 11, DropCompletionProb: 0.02, StragglerProb: 0.02}
	for name, cfg := range map[string]platform.Config{"clean": attribCfg(), "faulty": faulty} {
		for mech, r := range attribRuns(t, cfg) {
			a := r.Attrib
			if a == nil {
				t.Errorf("%s/%s: attribution enabled but Result.Attrib is nil", name, mech)
				continue
			}
			// Validate enforces sum(phase SumPs) == TotalPs exactly.
			if err := a.Validate(); err != nil {
				t.Errorf("%s/%s: %v", name, mech, err)
			}
			if a.Mismatches != 0 {
				t.Errorf("%s/%s: %d ledger closes needed clamping", name, mech, a.Mismatches)
			}
			if a.Accesses != uint64(r.Accesses) {
				t.Errorf("%s/%s: %d ledgers closed, measured %d accesses", name, mech, a.Accesses, r.Accesses)
			}
			if a.TotalPs <= 0 {
				t.Errorf("%s/%s: non-positive attributed total %d", name, mech, a.TotalPs)
			}
		}
	}
}

// TestAttributionPhaseShapes pins the mechanism-shaped facts. The MMIO
// mechanisms (prefetch, on-demand) see the device's delay module
// directly, so device service shows up as its own phase; the software-
// queue mechanisms time the delay module off the descriptor's
// submission stamp, so with a microsecond budget the descriptor fetch
// subsumes the service window entirely and the time lands in queue
// wait instead. Recovery phases appear only under fault injection.
func TestAttributionPhaseShapes(t *testing.T) {
	runs := attribRuns(t, attribCfg())
	for mech, r := range runs {
		a := r.Attrib
		if got := a.PhasePs("retry_backoff") + a.PhasePs("timeout_slop"); got != 0 {
			t.Errorf("%s: fault-free run attributed %d ps to recovery", mech, got)
		}
		if got := a.PhasePs("transit"); got <= 0 {
			t.Errorf("%s: no transit time attributed", mech)
		}
	}
	for _, mech := range []string{"prefetch", "ondemand"} {
		if got := runs[mech].Attrib.PhasePs("device"); got <= 0 {
			t.Errorf("%s: no device time attributed", mech)
		}
	}
	for _, mech := range []string{"swqueue", "kernelq"} {
		if got := runs[mech].Attrib.PhasePs("queue_wait"); got <= 0 {
			t.Errorf("%s: no queue wait attributed", mech)
		}
	}
}

func TestAttributionAbsentWhenDisabled(t *testing.T) {
	w := ubench(testIters)
	r := must(RunPrefetch(platform.Default(), w, 4, false))
	if r.Attrib != nil {
		t.Error("attribution disabled but Result.Attrib is set")
	}
	if r2 := must(RunOnDemandDevice(platform.Default(), w)); r2.Attrib != nil {
		t.Error("ondemand: attribution disabled but Result.Attrib is set")
	}
}

// TestAttributionDoesNotPerturbMeasurement pins the observational
// contract: enabling attribution changes no Measurement field and no
// Diag counter, for every mechanism, fault-free and faulty.
func TestAttributionDoesNotPerturbMeasurement(t *testing.T) {
	faultyPlain := platform.Default()
	faultyPlain.Faults = fault.Plan{Seed: 11, DropCompletionProb: 0.02, StragglerProb: 0.02}
	faultyAttrib := faultyPlain
	faultyAttrib.Attribution = true
	cases := []struct {
		name        string
		plain, with platform.Config
	}{
		{"clean", platform.Default(), attribCfg()},
		{"faulty", faultyPlain, faultyAttrib},
	}
	for _, tc := range cases {
		plain := attribRuns(t, tc.plain)
		with := attribRuns(t, tc.with)
		for mech := range plain {
			if !reflect.DeepEqual(plain[mech].Measurement, with[mech].Measurement) {
				t.Errorf("%s/%s: attribution changed the measurement:\nplain: %+v\nwith:  %+v",
					tc.name, mech, plain[mech].Measurement, with[mech].Measurement)
			}
			if !reflect.DeepEqual(plain[mech].Diag, with[mech].Diag) {
				t.Errorf("%s/%s: attribution changed the diagnostics:\nplain: %+v\nwith:  %+v",
					tc.name, mech, plain[mech].Diag, with[mech].Diag)
			}
		}
	}
}

func TestAttributionDeterministicAcrossRuns(t *testing.T) {
	w := ubench(testIters)
	a := must(RunSWQueue(attribCfg(), w, 4, false))
	b := must(RunSWQueue(attribCfg(), w, 4, false))
	if !reflect.DeepEqual(a.Attrib, b.Attrib) {
		t.Error("identical runs produced different attribution")
	}
}

// TestAttributionPhaseColumnsMatchSummary cross-checks the telemetry
// integration: with both the flight recorder and attribution enabled,
// the per-window phase columns are present, aligned, and sum column-
// wise to the attribution summary's exact totals.
func TestAttributionPhaseColumnsMatchSummary(t *testing.T) {
	cfg := metricsCfg()
	cfg.Attribution = true
	w := ubench(testIters)
	runs := map[string]Result{
		"prefetch": must(RunPrefetch(cfg, w, 4, false)),
		"swqueue":  must(RunSWQueue(cfg, w, 4, false)),
		"ondemand": must(RunOnDemandDevice(cfg, w)),
	}
	for mech, r := range runs {
		ts := r.Series
		if ts == nil || r.Attrib == nil {
			t.Fatalf("%s: missing series or attribution", mech)
		}
		if err := ts.Validate(); err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if !reflect.DeepEqual(ts.PhaseNames, attrib.Names()) {
			t.Fatalf("%s: phase columns %v, want %v", mech, ts.PhaseNames, attrib.Names())
		}
		sums := make([]int64, len(ts.PhaseNames))
		for _, row := range ts.Phases {
			for i, v := range row {
				sums[i] += v
			}
		}
		for i, name := range ts.PhaseNames {
			if want := r.Attrib.PhasePs(name); sums[i] != want {
				t.Errorf("%s: column %s sums to %d ps across windows, summary has %d",
					mech, name, sums[i], want)
			}
		}
	}
	// Recorder without attribution: no phase columns.
	r := must(RunPrefetch(metricsCfg(), w, 4, false))
	if len(r.Series.PhaseNames) != 0 || len(r.Series.Phases) != 0 {
		t.Error("phase columns present without attribution enabled")
	}
}

// TestAttributionSummaryGobRoundTrip guards the result-cache path: the
// summary must survive gob encoding unchanged (it rides core.Result
// through the sweep cache).
func TestAttributionSummaryGobRoundTrip(t *testing.T) {
	r := must(RunSWQueue(attribCfg(), ubench(testIters), 4, false))
	var got stats.AttribSummary
	if err := gobRoundTrip(*r.Attrib, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*r.Attrib, got) {
		t.Error("attribution summary changed across gob round trip")
	}
}
