package core

import (
	"repro/internal/attrib"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/uthread"
)

// pendingAccess tracks one thread's outstanding prefetch batch: the
// in-flight lines and the slots their data will land in. atr holds the
// per-line attribution ledgers (nil slice when attribution is off, nil
// entries for cache hits).
type pendingAccess struct {
	data   [][]byte
	gates  []*sim.Gate
	atr    []*attrib.Access
	issued sim.Time
}

// runPrefetchCore executes one core under the prefetch mechanism
// (Listing 1): for every device access the thread issues a non-binding
// prefetch per line — allocating an LFB entry, and a chip-level queue
// slot on the way to the PCIe controller — then performs a user-level
// context switch. The round-robin scheduler later resumes the thread,
// whose demand load either hits in the L1 (the fill arrived) or blocks
// the core until the in-flight miss completes (MSHR merge).
func runPrefetchCore(p *sim.Proc, e *Env, coreID int, threads []*uthread.Thread, c *counters) {
	initial := make(map[*uthread.Thread]uthread.Request, len(threads))
	pending := make(map[*uthread.Thread]*pendingAccess, len(threads))
	for _, th := range threads {
		initial[th] = th.Start()
	}
	rr := uthread.NewRoundRobin(threads)
	var cur *uthread.Thread

	// Runnable-set observability: the trace counter wants the absolute
	// live count, the recorder gauge a delta from the previous sample.
	prevLive := 0
	setLive := func(n int) {
		if e.tr != nil {
			e.tr.Counter(p.Now(), e.runnableName[coreID], n)
		}
		if e.rec != nil {
			e.rec.GaugeAdd(telemetry.GaugeRunnable, p.Now(), n-prevLive)
		}
		prevLive = n
	}
	if e.tr != nil || e.rec != nil {
		setLive(rr.Live())
	}

	for {
		th := rr.Next()
		if th == nil {
			break
		}
		// The switch interval is captured so delivery below can attribute
		// it per line; when no switch happens both stamps stay zero and
		// the attribution marks clamp to nothing.
		var switchStart, switchEnd sim.Time
		if cur != nil && th != cur {
			switchStart = p.Now()
			p.Sleep(e.cfg.CtxSwitch)
			switchEnd = p.Now()
			c.switches++
			if e.rec != nil {
				e.rec.Switches(p.Now(), 1)
			}
		}
		cur = th

		// Obtain the thread's next request: deliver prefetched data
		// (waiting on any line still in flight), or pick up the request
		// captured at Start.
		var req uthread.Request
		if pa := pending[th]; pa != nil {
			for _, g := range pa.gates {
				if g == nil {
					continue // cache hit: nothing in flight
				}
				p.Wait(g) // demand load; no cost if the line already filled
			}
			c.recordLatency(p.Now() - pa.issued)
			if e.rec != nil {
				e.rec.Sample(p.Now(), p.Now()-pa.issued)
			}
			// Close each line's ledger at consumption. The unconditional
			// marks rely on the clamp: a line that landed before the
			// switch charges it to the switch phase, a line that was
			// still in flight keeps everything in completion wait.
			for _, aw := range pa.atr {
				aw.To(attrib.PhaseComplWait, switchStart)
				aw.To(attrib.PhaseSwitch, switchEnd)
				aw.Close(attrib.PhaseComplWait, p.Now())
			}
			delete(pending, th)
			req = th.Resume(pa.data)
		} else {
			req = initial[th]
			delete(initial, th)
		}

		// Work and posted writes do not yield; run the thread until it
		// reads or ends.
	inner:
		for {
			switch req.Kind {
			case uthread.KindWork:
				p.Sleep(e.cfg.WorkTime(req.Instr))
				c.workInstr += int64(req.Instr)
				req = th.Resume(nil)
			case uthread.KindWrite:
				// Posted stores: each takes a store-buffer entry (a
				// full buffer stalls the core) and drains to the device
				// asynchronously; the thread continues immediately.
				// Coherence invalidates the line in every core's cache
				// (§V-C).
				for _, addr := range req.Addrs {
					p.AcquireToken(e.storeBuf[coreID])
					p.Sleep(e.cfg.WriteIssue)
					c.writes++
					e.invalidateAll(addr)
					sb := e.storeBuf[coreID]
					e.dev.MMIOWrite(coreID, addr, sb.Release)
				}
				req = th.Resume(nil)
			default:
				break inner
			}
		}

		if req.Kind == uthread.KindAccess {
			pa := &pendingAccess{
				data:   make([][]byte, len(req.Addrs)),
				gates:  make([]*sim.Gate, len(req.Addrs)),
				issued: p.Now(),
			}
			if e.at != nil {
				pa.atr = make([]*attrib.Access, len(req.Addrs))
			}
			for i, addr := range req.Addrs {
				// A cache hit satisfies the prefetch on-chip: no LFB
				// entry, no device access (§III-B, cacheable MMIO).
				if cc := e.caches[coreID]; cc != nil {
					if data, ok := cc.Lookup(addr); ok {
						pa.data[i] = data
						continue
					}
				}

				// The access span opens at prefetch issue, before any
				// queue wait, so LFB stalls are visible in its shape.
				var sp trace.Span
				if e.tr != nil {
					sp = e.trCore[coreID].BeginSpan(p.Now(), "access", trace.Hex("addr", addr))
				}
				aw := e.at.Open(p.Now())
				if pa.atr != nil {
					pa.atr[i] = aw
				}

				// prefetcht0: allocate an LFB entry; a full pool stalls
				// the core until an entry frees — the 10-entry limit of
				// §V-B.
				p.AcquireToken(e.lfb[coreID])
				sp.Point(p.Now(), "lfb-acquired")
				aw.To(attrib.PhaseQueueWait, p.Now())
				p.Sleep(e.cfg.PrefetchIssue)
				aw.To(attrib.PhaseIssue, p.Now())
				c.accesses++
				if e.rec != nil {
					e.rec.Started(p.Now())
				}

				g := e.eng.NewGate()
				pa.gates[i] = g
				i, addr := i, addr
				lfb := e.lfb[coreID]
				// The request proceeds to the device once a slot in the
				// chip-level shared queue frees; the wait happens in the
				// hardware queues, not on the core.
				if e.faults == nil {
					e.chip.OnAcquire(func() {
						sp.Point(e.eng.Now(), "chipq-acquired")
						aw.To(attrib.PhaseQueueWait, e.eng.Now())
						e.dev.MMIORead(coreID, addr, sp, aw, func(data []byte) {
							aw.To(attrib.PhaseTransit, e.eng.Now())
							pa.data[i] = data
							if cc := e.caches[coreID]; cc != nil {
								cc.Insert(addr, data)
							}
							e.chip.Release()
							lfb.Release()
							g.Fire()
							if e.rec != nil {
								e.rec.Finished(e.eng.Now())
							}
							sp.End(e.eng.Now())
						})
					})
					continue
				}
				// Fault-aware path: the in-flight line gets a timeout;
				// on expiry the host re-issues the read (the LFB entry
				// and chip-queue slot stay allocated across retries),
				// backing off until the retry budget runs out, then
				// abandons with a zero-filled line. finish is guarded
				// because a duplicated or straggling response can race a
				// retry's response — only the first delivery counts.
				completed := false
				finish := func(data []byte, genuine bool) {
					if completed {
						return
					}
					completed = true
					aw.To(attrib.PhaseTransit, e.eng.Now())
					pa.data[i] = data
					if genuine {
						if cc := e.caches[coreID]; cc != nil {
							cc.Insert(addr, data)
						}
					}
					e.chip.Release()
					lfb.Release()
					g.Fire()
					if e.rec != nil {
						e.rec.Finished(e.eng.Now())
					}
					sp.End(e.eng.Now())
				}
				var attempt func(n int)
				attempt = func(n int) {
					e.dev.MMIORead(coreID, addr, sp, aw, func(data []byte) {
						finish(data, true)
					})
					e.eng.After(e.cfg.RetryTimeout(n), func() {
						if completed {
							return
						}
						aw.To(attrib.PhaseRetry, e.eng.Now())
						c.timeouts++
						if e.rec != nil {
							e.rec.Timeouts(e.eng.Now(), 1)
						}
						sp.Point(e.eng.Now(), "timeout")
						if n >= e.cfg.MaxRetries {
							c.abandoned++
							if e.rec != nil {
								e.rec.Abandoned(e.eng.Now(), 1)
							}
							sp.Point(e.eng.Now(), "abandoned")
							finish(make([]byte, platform.CacheLineBytes), false)
							return
						}
						c.retries++
						if e.rec != nil {
							e.rec.Retries(e.eng.Now(), 1)
						}
						sp.Point(e.eng.Now(), "retry")
						attempt(n + 1)
					})
				}
				e.chip.OnAcquire(func() {
					sp.Point(e.eng.Now(), "chipq-acquired")
					aw.To(attrib.PhaseQueueWait, e.eng.Now())
					attempt(0)
				})
			}
			pending[th] = pa
			// userctx_yield(): fall through to the scheduler.
		} else if e.tr != nil || e.rec != nil {
			// The thread just finished; record the shrunk runnable set.
			setLive(rr.Live())
		}
	}
	c.coreFinished(p.Now())
}
