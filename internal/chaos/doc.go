// Package chaos holds the crash-recovery end-to-end harness for the
// kurecd sweep service. There is no library code here: the package
// exists so `go test ./internal/chaos/` can build a real kurecd
// binary, SIGKILL it mid-sweep at seeded points, restart it against
// the same journal and cache directory, and assert that the recovered
// run report is byte-identical to an uninterrupted run.
//
// The harness is deliberately out-of-process: in-process recovery is
// covered by the unit tests in internal/serve; this package is the
// only place the whole stack — flag parsing, listener bootstrap, WAL
// replay, disk-cache warm resume, drain — is exercised the way an
// operator would run it.
package chaos
