package chaos

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosReq is the sweep the harness interrupts. It is sized so an
// uninterrupted run takes a few seconds at -parallel 2 — long enough
// that seeded kill delays land mid-sweep, short enough for CI.
const chaosReq = `{"suite":"quick","experiments":["2","3"],"iterations":20000,"threads":[1,2,4]}`

// buildKurecd compiles the real daemon binary once per test run.
var buildKurecd = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "kurecd-bin-")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "kurecd")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/kurecd")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build kurecd: %v\n%s", err, out)
	}
	return bin, nil
})

// artifactDir is where daemon logs and reports land: the CI chaos job
// sets CHAOS_ARTIFACT_DIR so artifacts survive a failed run; locally
// they go to the test's temp dir.
func artifactDir(t *testing.T) string {
	if d := os.Getenv("CHAOS_ARTIFACT_DIR"); d != "" {
		sub := filepath.Join(d, strings.ReplaceAll(t.Name(), "/", "_"))
		if err := os.MkdirAll(sub, 0o755); err == nil {
			return sub
		}
	}
	return t.TempDir()
}

// daemon is one live kurecd process started on an ephemeral port.
type daemon struct {
	cmd  *exec.Cmd
	addr string // resolved listen address parsed from stderr
	log  *os.File
}

// startDaemon boots kurecd on 127.0.0.1:0 with the given journal and
// cache dir, and blocks until the "listening on" line reports the
// resolved address. Stderr is teed to a log file in the artifact dir.
func startDaemon(t *testing.T, bin, journal, cachedir, logName string, dir string) *daemon {
	t.Helper()
	logf, err := os.Create(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-parallel", "2",
		"-queue", "8",
		"-journal", journal,
		"-cachedir", cachedir,
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(logf, line)
			if _, rest, ok := strings.Cut(line, "listening on "); ok {
				addr, _, _ := strings.Cut(rest, " ")
				select {
				case addrc <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return &daemon{cmd: cmd, addr: addr, log: logf}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("kurecd never reported its listen address")
		return nil
	}
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

// kill SIGKILLs the daemon — the crash the journal must survive.
func (d *daemon) kill() {
	d.cmd.Process.Kill()
	d.cmd.Wait()
	d.log.Close()
}

// status mirrors the serve.Status fields the harness asserts on.
type status struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Error       string `json:"error"`
	ReportURL   string `json:"report_url"`
	Recovered   bool   `json:"recovered"`
	CellsCached uint64 `json:"cells_cached"`
}

func getStatus(t *testing.T, d *daemon, id string) status {
	t.Helper()
	resp, err := http.Get(d.url("/v1/runs/" + id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func submit(t *testing.T, d *daemon, body string) string {
	t.Helper()
	resp, err := http.Post(d.url("/v1/runs"), "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit = %d: %s", resp.StatusCode, b)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out["id"]
}

func waitTerminal(t *testing.T, d *daemon, id string, timeout time.Duration) status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := getStatus(t, d, id)
		switch st.State {
		case "done", "failed", "cancelled":
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal within %v", id, timeout)
	return status{}
}

func fetchReport(t *testing.T, d *daemon, id string) []byte {
	t.Helper()
	resp, err := http.Get(d.url("/v1/runs/" + id + "/report"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("report = %d: %s", resp.StatusCode, b)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// waitReady polls /readyz until the daemon reports ready.
func waitReady(t *testing.T, d *daemon, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.url("/readyz"))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("daemon never became ready")
}

// TestCrashRecoveryByteIdentical is the tentpole end-to-end: a real
// kurecd is SIGKILLed mid-sweep at three seeded points; each time a
// fresh process over the same journal and cache dir must re-enqueue
// the job, resume warm, and produce a report byte-identical to an
// uninterrupted run.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e builds and crash-loops a real daemon")
	}
	bin, err := buildKurecd()
	if err != nil {
		t.Fatal(err)
	}
	dir := artifactDir(t)

	// Reference: one uninterrupted run.
	refDir := t.TempDir()
	ref := startDaemon(t, bin, filepath.Join(refDir, "ref.wal"), filepath.Join(refDir, "cache"), "ref.log", dir)
	refStart := time.Now()
	id := submit(t, ref, chaosReq)
	st := waitTerminal(t, ref, id, 5*time.Minute)
	refDur := time.Since(refStart)
	if st.State != "done" {
		t.Fatalf("reference run = %s (%s)", st.State, st.Error)
	}
	want := fetchReport(t, ref, id)
	ref.kill()
	os.WriteFile(filepath.Join(dir, "reference-report.json"), want, 0o644)
	t.Logf("uninterrupted run: %v, %d report bytes", refDur, len(want))
	if refDur < time.Second {
		t.Logf("warning: reference run is fast (%v); kill points may land after completion", refDur)
	}

	var warmHits uint64
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			// The kill delay is a seeded draw over the middle of the
			// measured run, so the three seeds hit distinct phases of
			// the sweep deterministically for a given seed.
			rng := rand.New(rand.NewSource(seed))
			delay := time.Duration(float64(refDur) * (0.15 + 0.6*rng.Float64()))

			runDir := t.TempDir()
			journal := filepath.Join(runDir, "kurecd.wal")
			cachedir := filepath.Join(runDir, "cache")

			d1 := startDaemon(t, bin, journal, cachedir, fmt.Sprintf("seed%d-before.log", seed), dir)
			jobID := submit(t, d1, chaosReq)
			time.Sleep(delay)
			d1.kill()
			t.Logf("seed %d: SIGKILL after %v", seed, delay)

			d2 := startDaemon(t, bin, journal, cachedir, fmt.Sprintf("seed%d-after.log", seed), dir)
			defer d2.kill()
			waitReady(t, d2, 30*time.Second)
			st := waitTerminal(t, d2, jobID, 5*time.Minute)
			if st.State != "done" {
				t.Fatalf("recovered run = %s (%s)", st.State, st.Error)
			}
			got := fetchReport(t, d2, jobID)
			os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed%d-report.json", seed)), got, 0o644)
			if !bytes.Equal(want, got) {
				t.Errorf("recovered report differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
			}
			if st.Recovered {
				warmHits += st.CellsCached
				t.Logf("seed %d: recovered re-run, %d cells from cache", seed, st.CellsCached)
			} else {
				// The job finished (journal done record + sidecar) before
				// the kill landed; recovery restored the report directly.
				t.Logf("seed %d: job completed before kill; report restored from sidecar", seed)
			}
		})
	}
	// At least one seed must have resumed warm: an interrupted job whose
	// re-run hit the disk cache. All three completing pre-kill would
	// mean the kill points are mistimed.
	if warmHits == 0 {
		t.Error("no seed exercised a warm resume (cells_cached > 0 after recovery); retune chaosReq or kill delays")
	}
}

// TestCancelE2E cancels a running sweep through the HTTP API of a real
// daemon and asserts it reaches the terminal cancelled state within
// one cell boundary (< 2s).
func TestCancelE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e builds and runs a real daemon")
	}
	bin, err := buildKurecd()
	if err != nil {
		t.Fatal(err)
	}
	dir := artifactDir(t)
	runDir := t.TempDir()
	d := startDaemon(t, bin, filepath.Join(runDir, "kurecd.wal"), filepath.Join(runDir, "cache"), "cancel.log", dir)
	defer d.kill()

	id := submit(t, d, `{"suite":"quick","experiments":["2","3","7"],"iterations":2000,"threads":[1,2,4,8]}`)
	// Wait until it is actually running.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, d, id)
		if st.State == "running" {
			break
		}
		if st.State != "queued" {
			t.Fatalf("job reached %s before cancellation", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancelAt := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, d.url("/v1/runs/"+id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d, want 202", resp.StatusCode)
	}
	st := waitTerminal(t, d, id, 30*time.Second)
	latency := time.Since(cancelAt)
	if st.State != "cancelled" {
		t.Fatalf("state = %s (%s), want cancelled", st.State, st.Error)
	}
	if latency > 2*time.Second {
		t.Errorf("cancellation latency %v, want < 2s", latency)
	}
	t.Logf("cancelled in %v", latency)
}

// TestCancelSurvivesRestart: a cancel requested just before a crash is
// honored on replay — the job lands cancelled, not re-run.
func TestCancelSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e builds and crash-loops a real daemon")
	}
	bin, err := buildKurecd()
	if err != nil {
		t.Fatal(err)
	}
	dir := artifactDir(t)
	runDir := t.TempDir()
	journal := filepath.Join(runDir, "kurecd.wal")
	cachedir := filepath.Join(runDir, "cache")

	d1 := startDaemon(t, bin, journal, cachedir, "before.log", dir)
	id := submit(t, d1, chaosReq)
	// Cancel while queued-or-running, then kill before the daemon can
	// finish winding the job down.
	req, _ := http.NewRequest(http.MethodDelete, d1.url("/v1/runs/"+id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	d1.kill()

	d2 := startDaemon(t, bin, journal, cachedir, "after.log", dir)
	defer d2.kill()
	waitReady(t, d2, 30*time.Second)
	st := waitTerminal(t, d2, id, time.Minute)
	if st.State != "cancelled" {
		t.Fatalf("after restart job = %s (%s), want cancelled", st.State, st.Error)
	}
}
