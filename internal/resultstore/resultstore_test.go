package resultstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKeyCanonical(t *testing.T) {
	a := Key("prefetch", "cfg1", "wl1")
	b := Key("prefetch", "cfg1", "wl1")
	if a != b {
		t.Fatal("identical parts produced different keys")
	}
	if a == Key("prefetch", "cfg1", "wl2") {
		t.Fatal("different parts produced equal keys")
	}
	// The length-prefixed encoding must not let adjacent parts bleed
	// into each other.
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal("part boundaries are ambiguous")
	}
}

func TestDoCachesAndCounts(t *testing.T) {
	s := New[int](8)
	var computed atomic.Int32
	f := func() (int, error) { computed.Add(1); return 42, nil }

	for i := 0; i < 3; i++ {
		v, err := s.Do("k", f)
		if err != nil || v != 42 {
			t.Fatalf("Do = (%d, %v)", v, err)
		}
	}
	if computed.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computed.Load())
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestErrorsNotCached(t *testing.T) {
	s := New[int](8)
	boom := errors.New("boom")
	calls := 0
	if _, err := s.Do("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if v, err := s.Do("k", func() (int, error) { calls++; return 9, nil }); err != nil || v != 9 {
		t.Fatalf("retry = (%d, %v)", v, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (errors must not be cached)", calls)
	}
}

func TestLRUEviction(t *testing.T) {
	s := New[int](2)
	mk := func(v int) func() (int, error) { return func() (int, error) { return v, nil } }
	s.Do("a", mk(1))
	s.Do("b", mk(2))
	s.Do("a", mk(1)) // refresh a; b is now the LRU tail
	s.Do("c", mk(3)) // evicts b
	if _, ok := s.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("a was evicted despite being recently used")
	}
	if st := s.Stats(); st.Evicted != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSingleFlight: concurrent Do calls with one key run the compute
// function exactly once and all observe its value.
func TestSingleFlight(t *testing.T) {
	s := New[int](8)
	var computed atomic.Int32
	gate := make(chan struct{})
	const waiters = 16

	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.Do("k", func() (int, error) {
				computed.Add(1)
				<-gate
				return 7, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if computed.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computed.Load())
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("waiter %d saw %d", i, v)
		}
	}
}

type diskVal struct {
	Label string
	N     float64
}

func TestDiskLayer(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open[diskVal](dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := diskVal{Label: "cell", N: 1.25}
	if _, err := s1.Do("k", func() (diskVal, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	// A second store over the same directory (a fresh process) must hit
	// disk instead of recomputing.
	s2, err := Open[diskVal](dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s2.Do("k", func() (diskVal, error) {
		t.Error("recomputed despite disk entry")
		return diskVal{}, nil
	})
	if err != nil || v != want {
		t.Fatalf("disk round trip = (%+v, %v), want %+v", v, err, want)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCorruptDiskEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open[diskVal](dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("cell")
	// Plant garbage where the entry would live.
	p := filepath.Join(dir, key[:2], key[2:]+".gob")
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := s.Do(key, func() (diskVal, error) { return diskVal{N: 3}, nil })
	if err != nil || v.N != 3 {
		t.Fatalf("Do over corrupt entry = (%+v, %v)", v, err)
	}
	// The rewrite must repair the file for the next store.
	s2, _ := Open[diskVal](dir, 4)
	if got, ok := s2.Get(key); !ok || got.N != 3 {
		t.Fatalf("repaired entry = (%+v, %v)", got, ok)
	}
}

func TestGetMiss(t *testing.T) {
	s := New[int](2)
	if v, ok := s.Get("absent"); ok || v != 0 {
		t.Fatalf("Get(absent) = (%d, %v)", v, ok)
	}
}

func ExampleStore_Do() {
	s := New[string](16)
	v, _ := s.Do(Key("fig3", "baseline"), func() (string, error) { return "computed", nil })
	fmt.Println(v)
	v, _ = s.Do(Key("fig3", "baseline"), func() (string, error) { return "never runs", nil })
	fmt.Println(v)
	// Output:
	// computed
	// computed
}

// TestTornDiskWriteInvisible simulates a crash mid-write: a torn .tmp
// file must never be read back, and a torn final file (pre-fsync-era
// layout) fails decoding and is recomputed.
func TestTornDiskWriteInvisible(t *testing.T) {
	dir := t.TempDir()
	s, err := Open[int](dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("cell")

	// A crash between OpenFile and Rename leaves only the temp file.
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p+".tmp", []byte("torn gob bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("torn temp file was served as a cache entry")
	}
	computed := 0
	v, err := s.Do(key, func() (int, error) { computed++; return 42, nil })
	if err != nil || v != 42 || computed != 1 {
		t.Fatalf("Do over torn tmp = (%d, %v), computed %d times", v, err, computed)
	}

	// The recompute must have published a clean entry under the final
	// name; a fresh store reads it without recomputing.
	s2, err := Open[int](dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s2.Do(key, func() (int, error) { t.Fatal("recompute despite durable entry"); return 0, nil })
	if err != nil || v2 != 42 {
		t.Fatalf("replayed entry = (%d, %v)", v2, err)
	}
}

func TestOpenStamped(t *testing.T) {
	root := t.TempDir()
	s, err := OpenStamped[int](root, "go1.x-abc", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Do(Key("a"), func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}

	// The entry lives under the stamp's subdirectory with its marker.
	sub := StampPath(root, "go1.x-abc")
	b, err := os.ReadFile(filepath.Join(sub, stampFile))
	if err != nil {
		t.Fatalf("no STAMP marker: %v", err)
	}
	if got := string(b); got != "go1.x-abc\n" {
		t.Errorf("STAMP = %q", got)
	}

	// A second build stamp gets a disjoint tree: its store misses.
	s2, err := OpenStamped[int](root, "go1.y-def", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(Key("a")); ok {
		t.Error("entry leaked across build stamps")
	}
	// Same stamp reopens warm.
	s3, err := OpenStamped[int](root, "go1.x-abc", 8)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s3.Get(Key("a")); !ok || v != 1 {
		t.Errorf("same-stamp reopen = (%d, %v), want warm hit", v, ok)
	}
}

// populate writes n entries through a stamped store and returns it.
func populateStamped(t *testing.T, root, stamp string, n int) {
	t.Helper()
	s, err := OpenStamped[int](root, stamp, n+1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := s.Do(Key(stamp, fmt.Sprint(i)), func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScanDirAndGC(t *testing.T) {
	root := t.TempDir()
	populateStamped(t, root, "build-old", 3)
	populateStamped(t, root, "build-new", 2)
	// Legacy flat-layout debris: a loose entry, a fan-out dir, a torn tmp.
	if err := os.WriteFile(filepath.Join(root, "ab.gob"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "cd"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "cd", "ef.gob"), []byte("xy"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "zz.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	stats, err := ScanDir(root)
	if err != nil {
		t.Fatal(err)
	}
	byStamp := map[string]StampStats{}
	for _, st := range stats {
		byStamp[st.Stamp] = st
	}
	if st := byStamp["build-old"]; st.Entries != 3 {
		t.Errorf("build-old = %+v, want 3 entries", st)
	}
	if st := byStamp["build-new"]; st.Entries != 2 {
		t.Errorf("build-new = %+v, want 2 entries", st)
	}
	if st := byStamp[legacyStamp]; st.Entries != 2 {
		t.Errorf("legacy = %+v, want 2 entries (loose + fan-out)", st)
	}

	entries, bytes, err := GC(root, "build-new")
	if err != nil {
		t.Fatal(err)
	}
	// Removed: 3 old-stamp entries + 2 legacy entries (the torn .tmp is
	// swept too but never counted as an entry).
	if entries != 5 {
		t.Errorf("GC removed %d entries, want 5", entries)
	}
	if bytes == 0 {
		t.Error("GC reported zero bytes removed")
	}
	stats2, err := ScanDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats2) != 1 || stats2[0].Stamp != "build-new" || stats2[0].Entries != 2 {
		t.Fatalf("after GC: %+v, want only build-new with 2 entries", stats2)
	}
	if _, err := os.Stat(filepath.Join(root, "zz.tmp")); !os.IsNotExist(err) {
		t.Error("GC left the torn .tmp file behind")
	}
	// The kept build still reads warm after GC.
	s, err := OpenStamped[int](root, "build-new", 8)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(Key("build-new", "0")); !ok || v != 0 {
		t.Errorf("kept entry = (%d, %v), want warm hit", v, ok)
	}
}

// TestTruncatedDiskEntryRecomputed simulates a power cut tearing a
// finished entry: the half-written gob is a miss, recomputed, and
// rewritten intact.
func TestTruncatedDiskEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open[diskVal](dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("cell")
	if _, err := s.Do(key, func() (diskVal, error) { return diskVal{N: 7}, nil }); err != nil {
		t.Fatal(err)
	}

	// Tear the entry mid-record.
	p := s.path(key)
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < 2 {
		t.Fatalf("gob entry suspiciously small: %d bytes", len(b))
	}
	if err := os.WriteFile(p, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open[diskVal](dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	computed := 0
	v, err := s2.Do(key, func() (diskVal, error) { computed++; return diskVal{N: 7}, nil })
	if err != nil || v.N != 7 || computed != 1 {
		t.Fatalf("Do over torn entry = (%+v, %v), computed %d times", v, err, computed)
	}
	// The rewrite repaired the file: a third store reads it cold.
	s3, err := Open[diskVal](dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s3.Get(key); !ok || got.N != 7 {
		t.Fatalf("repaired entry = (%+v, %v)", got, ok)
	}
}
