package resultstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKeyCanonical(t *testing.T) {
	a := Key("prefetch", "cfg1", "wl1")
	b := Key("prefetch", "cfg1", "wl1")
	if a != b {
		t.Fatal("identical parts produced different keys")
	}
	if a == Key("prefetch", "cfg1", "wl2") {
		t.Fatal("different parts produced equal keys")
	}
	// The length-prefixed encoding must not let adjacent parts bleed
	// into each other.
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal("part boundaries are ambiguous")
	}
}

func TestDoCachesAndCounts(t *testing.T) {
	s := New[int](8)
	var computed atomic.Int32
	f := func() (int, error) { computed.Add(1); return 42, nil }

	for i := 0; i < 3; i++ {
		v, err := s.Do("k", f)
		if err != nil || v != 42 {
			t.Fatalf("Do = (%d, %v)", v, err)
		}
	}
	if computed.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computed.Load())
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestErrorsNotCached(t *testing.T) {
	s := New[int](8)
	boom := errors.New("boom")
	calls := 0
	if _, err := s.Do("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if v, err := s.Do("k", func() (int, error) { calls++; return 9, nil }); err != nil || v != 9 {
		t.Fatalf("retry = (%d, %v)", v, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (errors must not be cached)", calls)
	}
}

func TestLRUEviction(t *testing.T) {
	s := New[int](2)
	mk := func(v int) func() (int, error) { return func() (int, error) { return v, nil } }
	s.Do("a", mk(1))
	s.Do("b", mk(2))
	s.Do("a", mk(1)) // refresh a; b is now the LRU tail
	s.Do("c", mk(3)) // evicts b
	if _, ok := s.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("a was evicted despite being recently used")
	}
	if st := s.Stats(); st.Evicted != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSingleFlight: concurrent Do calls with one key run the compute
// function exactly once and all observe its value.
func TestSingleFlight(t *testing.T) {
	s := New[int](8)
	var computed atomic.Int32
	gate := make(chan struct{})
	const waiters = 16

	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.Do("k", func() (int, error) {
				computed.Add(1)
				<-gate
				return 7, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if computed.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computed.Load())
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("waiter %d saw %d", i, v)
		}
	}
}

type diskVal struct {
	Label string
	N     float64
}

func TestDiskLayer(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open[diskVal](dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := diskVal{Label: "cell", N: 1.25}
	if _, err := s1.Do("k", func() (diskVal, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	// A second store over the same directory (a fresh process) must hit
	// disk instead of recomputing.
	s2, err := Open[diskVal](dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s2.Do("k", func() (diskVal, error) {
		t.Error("recomputed despite disk entry")
		return diskVal{}, nil
	})
	if err != nil || v != want {
		t.Fatalf("disk round trip = (%+v, %v), want %+v", v, err, want)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCorruptDiskEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open[diskVal](dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("cell")
	// Plant garbage where the entry would live.
	p := filepath.Join(dir, key[:2], key[2:]+".gob")
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := s.Do(key, func() (diskVal, error) { return diskVal{N: 3}, nil })
	if err != nil || v.N != 3 {
		t.Fatalf("Do over corrupt entry = (%+v, %v)", v, err)
	}
	// The rewrite must repair the file for the next store.
	s2, _ := Open[diskVal](dir, 4)
	if got, ok := s2.Get(key); !ok || got.N != 3 {
		t.Fatalf("repaired entry = (%+v, %v)", got, ok)
	}
}

func TestGetMiss(t *testing.T) {
	s := New[int](2)
	if v, ok := s.Get("absent"); ok || v != 0 {
		t.Fatalf("Get(absent) = (%d, %v)", v, ok)
	}
}

func ExampleStore_Do() {
	s := New[string](16)
	v, _ := s.Do(Key("fig3", "baseline"), func() (string, error) { return "computed", nil })
	fmt.Println(v)
	v, _ = s.Do(Key("fig3", "baseline"), func() (string, error) { return "never runs", nil })
	fmt.Println(v)
	// Output:
	// computed
	// computed
}
