// Package resultstore is a content-addressed cache for deterministic
// simulation results. A key canonically hashes the full cell
// parameterization (mechanism, platform config, workload spec, thread
// count) plus a build stamp; because every cell is a pure function of
// that parameterization, a cached value is indistinguishable from a
// fresh run, and repeated cells — the DRAM baselines every normalized
// figure shares — are computed once per process.
//
// The store layers an in-memory LRU (bounded entry count) over an
// optional on-disk directory (gob-encoded, one file per key), and
// deduplicates concurrent computations of the same key: when several
// pool workers reach an identical cell at once, one executes and the
// rest wait for its value (single-flight).
package resultstore

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Key returns the canonical content address of a cell: the hex SHA-256
// of its parts joined with an unambiguous separator. Callers pass
// canonical renderings (e.g. fmt %#v of a config struct) plus a build
// stamp so that results never survive a code change on disk.
func Key(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d\x00%s\x00", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Entries  int    // values resident in memory
	Hits     uint64 // memory-layer hits
	DiskHits uint64 // disk-layer hits (misses in memory)
	Misses   uint64 // full misses: the cell was computed
	Evicted  uint64 // LRU evictions from the memory layer
}

// Store caches values of type V under content-address keys.
type Store[V any] struct {
	mu       sync.Mutex
	max      int
	entries  map[string]*list.Element
	ll       *list.List // front = most recently used
	inflight map[string]*call[V]
	stats    Stats

	dir string // optional disk layer; "" = memory only
}

type lruEntry[V any] struct {
	key string
	val V
}

// call tracks one in-flight computation other callers can wait on.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New returns a memory-only store holding at most maxEntries values
// (maxEntries < 1 is treated as 1).
func New[V any](maxEntries int) *Store[V] {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Store[V]{
		max:      maxEntries,
		entries:  make(map[string]*list.Element),
		ll:       list.New(),
		inflight: make(map[string]*call[V]),
	}
}

// Open returns a store backed by dir: values are additionally
// gob-encoded to one file per key, so results persist across
// processes. The directory is created if needed.
func Open[V any](dir string, maxEntries int) (*Store[V], error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := New[V](maxEntries)
	s.dir = dir
	return s, nil
}

// stampFile is the marker inside each stamped subdirectory recording
// the full build stamp its entries belong to.
const stampFile = "STAMP"

// stampDirName maps a build stamp to its subdirectory under the cache
// root. The "b-" prefix keeps stamped trees distinguishable from the
// two-hex-character key fan-out directories.
func stampDirName(stamp string) string {
	sum := sha256.Sum256([]byte(stamp))
	return "b-" + hex.EncodeToString(sum[:6])
}

// StampPath returns the subdirectory OpenStamped(dir, stamp, ...)
// reads and writes — the "hit path" of a given build.
func StampPath(dir, stamp string) string {
	return filepath.Join(dir, stampDirName(stamp))
}

// OpenStamped is Open rooted at dir/<hash-of-stamp>: each build writes
// its entries into its own subdirectory, marked by a STAMP file
// carrying the full stamp string, so tooling can attribute disk usage
// per build and garbage-collect stale builds wholesale (see ScanDir
// and GC).
func OpenStamped[V any](dir, stamp string, maxEntries int) (*Store[V], error) {
	sub := filepath.Join(dir, stampDirName(stamp))
	s, err := Open[V](sub, maxEntries)
	if err != nil {
		return nil, err
	}
	marker := filepath.Join(sub, stampFile)
	if _, err := os.Stat(marker); os.IsNotExist(err) {
		if err := os.WriteFile(marker, []byte(stamp+"\n"), 0o644); err != nil {
			return nil, fmt.Errorf("resultstore: %w", err)
		}
	}
	return s, nil
}

// StampStats summarizes one build's disk entries under a cache root.
type StampStats struct {
	// Dir is the subdirectory name ("" for legacy entries written by
	// pre-stamp layouts directly under the root).
	Dir string
	// Stamp is the full build stamp, or "(unstamped)" for legacy
	// entries.
	Stamp   string
	Entries int
	Bytes   int64
}

// legacyStamp labels pre-stamp-layout entries in ScanDir output.
const legacyStamp = "(unstamped)"

// countEntries walks root totalling finished (.gob) entries and their
// bytes, skipping stamp markers and temp files.
func countEntries(root string) (int, int64) {
	var entries int
	var bytes int64
	filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		if filepath.Ext(path) == ".gob" {
			entries++
			bytes += info.Size()
		}
		return nil
	})
	return entries, bytes
}

// isHexFanout reports whether name is a two-hex-character key fan-out
// directory of the flat (legacy) layout.
func isHexFanout(name string) bool {
	if len(name) != 2 {
		return false
	}
	for _, c := range name {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// ScanDir inventories a cache root: one StampStats per stamped build
// subdirectory, plus one for any legacy unstamped entries directly
// under the root. Results are sorted by descending size.
func ScanDir(dir string) ([]StampStats, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	var out []StampStats
	legacy := StampStats{Stamp: legacyStamp}
	for _, de := range des {
		name := de.Name()
		switch {
		case de.IsDir() && strings.HasPrefix(name, "b-"):
			st := StampStats{Dir: name, Stamp: legacyStamp}
			if b, err := os.ReadFile(filepath.Join(dir, name, stampFile)); err == nil {
				st.Stamp = strings.TrimSpace(string(b))
			}
			st.Entries, st.Bytes = countEntries(filepath.Join(dir, name))
			out = append(out, st)
		case de.IsDir() && isHexFanout(name):
			n, b := countEntries(filepath.Join(dir, name))
			legacy.Entries += n
			legacy.Bytes += b
		case !de.IsDir() && filepath.Ext(name) == ".gob":
			if info, err := de.Info(); err == nil {
				legacy.Entries++
				legacy.Bytes += info.Size()
			}
		}
	}
	if legacy.Entries > 0 {
		out = append(out, legacy)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bytes > out[j].Bytes })
	return out, nil
}

// GC removes every cache tree under dir that does not belong to
// keepStamp: stamped subdirectories with a different (or unreadable)
// stamp, and all legacy unstamped entries. It returns what was
// removed. Only paths the store itself lays out are touched — stamped
// "b-*" trees, two-hex fan-out directories, and loose .gob/.tmp files.
func GC(dir, keepStamp string) (removedEntries int, removedBytes int64, err error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, fmt.Errorf("resultstore: %w", err)
	}
	remove := func(path string, entries int, bytes int64) error {
		if err := os.RemoveAll(path); err != nil {
			return fmt.Errorf("resultstore: %w", err)
		}
		removedEntries += entries
		removedBytes += bytes
		return nil
	}
	for _, de := range des {
		name := de.Name()
		path := filepath.Join(dir, name)
		switch {
		case de.IsDir() && strings.HasPrefix(name, "b-"):
			stamp := ""
			if b, err := os.ReadFile(filepath.Join(path, stampFile)); err == nil {
				stamp = strings.TrimSpace(string(b))
			}
			if stamp == keepStamp {
				continue
			}
			n, b := countEntries(path)
			if err := remove(path, n, b); err != nil {
				return removedEntries, removedBytes, err
			}
		case de.IsDir() && isHexFanout(name):
			n, b := countEntries(path)
			if err := remove(path, n, b); err != nil {
				return removedEntries, removedBytes, err
			}
		case !de.IsDir() && (filepath.Ext(name) == ".gob" || filepath.Ext(name) == ".tmp"):
			var size int64
			n := 0
			if info, err := de.Info(); err == nil && filepath.Ext(name) == ".gob" {
				size = info.Size()
				n = 1
			}
			if err := remove(path, n, size); err != nil {
				return removedEntries, removedBytes, err
			}
		}
	}
	return removedEntries, removedBytes, nil
}

// Do returns the value cached under key, computing it with compute on
// a miss. Concurrent Do calls with the same key share one execution.
// Errors are returned to every waiter of that execution but are never
// cached: a later Do retries the computation.
func (s *Store[V]) Do(key string, compute func() (V, error)) (V, error) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		v := el.Value.(*lruEntry[V]).val
		s.mu.Unlock()
		return v, nil
	}
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	fromDisk := false
	if v, ok := s.readDisk(key); ok {
		c.val, fromDisk = v, true
	} else {
		c.val, c.err = compute()
	}
	close(c.done)

	s.mu.Lock()
	delete(s.inflight, key)
	if c.err == nil {
		s.insert(key, c.val)
		if fromDisk {
			s.stats.DiskHits++
		} else {
			s.stats.Misses++
		}
	}
	s.mu.Unlock()
	if c.err == nil && !fromDisk {
		s.writeDisk(key, c.val)
	}
	return c.val, c.err
}

// Get returns the value cached in memory or on disk, without
// computing anything.
func (s *Store[V]) Get(key string) (V, bool) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		v := el.Value.(*lruEntry[V]).val
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	if v, ok := s.readDisk(key); ok {
		s.mu.Lock()
		s.insert(key, v)
		s.stats.DiskHits++
		s.mu.Unlock()
		return v, true
	}
	var zero V
	return zero, false
}

// insert adds key to the memory layer, evicting from the LRU tail.
// Callers hold s.mu.
func (s *Store[V]) insert(key string, v V) {
	if el, ok := s.entries[key]; ok { // lost a race with another path
		s.ll.MoveToFront(el)
		return
	}
	s.entries[key] = s.ll.PushFront(&lruEntry[V]{key: key, val: v})
	for s.ll.Len() > s.max {
		tail := s.ll.Back()
		s.ll.Remove(tail)
		delete(s.entries, tail.Value.(*lruEntry[V]).key)
		s.stats.Evicted++
	}
}

// Stats returns a snapshot of the store's counters.
func (s *Store[V]) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.ll.Len()
	return st
}

// path maps a key to its disk file. Keys are hex hashes, so they are
// safe path components; a two-character fan-out keeps directories
// small.
func (s *Store[V]) path(key string) string {
	if len(key) < 3 {
		return filepath.Join(s.dir, key+".gob")
	}
	return filepath.Join(s.dir, key[:2], key[2:]+".gob")
}

// readDisk loads a value from the disk layer; a missing or undecodable
// file is a miss (a corrupt entry is recomputed and rewritten, never
// fatal).
func (s *Store[V]) readDisk(key string) (V, bool) {
	var zero V
	if s.dir == "" {
		return zero, false
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return zero, false
	}
	var v V
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		return zero, false
	}
	return v, true
}

// writeDisk stores a value in the disk layer; failures are silently
// dropped (the cache is an accelerator, not a system of record).
func (s *Store[V]) writeDisk(key string, v V) {
	if s.dir == "" {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return
	}
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return
	}
	// Write-fsync-rename so a crash can never publish a torn or empty
	// entry under the final name: the rename only happens after the
	// temp file's bytes are durable. (A torn temp file left by a crash
	// is invisible to readDisk and swept by GC.)
	tmp := p + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return
	}
	if err := f.Close(); err != nil {
		return
	}
	_ = os.Rename(tmp, p)
}
