// Package resultstore is a content-addressed cache for deterministic
// simulation results. A key canonically hashes the full cell
// parameterization (mechanism, platform config, workload spec, thread
// count) plus a build stamp; because every cell is a pure function of
// that parameterization, a cached value is indistinguishable from a
// fresh run, and repeated cells — the DRAM baselines every normalized
// figure shares — are computed once per process.
//
// The store layers an in-memory LRU (bounded entry count) over an
// optional on-disk directory (gob-encoded, one file per key), and
// deduplicates concurrent computations of the same key: when several
// pool workers reach an identical cell at once, one executes and the
// rest wait for its value (single-flight).
package resultstore

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Key returns the canonical content address of a cell: the hex SHA-256
// of its parts joined with an unambiguous separator. Callers pass
// canonical renderings (e.g. fmt %#v of a config struct) plus a build
// stamp so that results never survive a code change on disk.
func Key(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d\x00%s\x00", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Entries  int    // values resident in memory
	Hits     uint64 // memory-layer hits
	DiskHits uint64 // disk-layer hits (misses in memory)
	Misses   uint64 // full misses: the cell was computed
	Evicted  uint64 // LRU evictions from the memory layer
}

// Store caches values of type V under content-address keys.
type Store[V any] struct {
	mu       sync.Mutex
	max      int
	entries  map[string]*list.Element
	ll       *list.List // front = most recently used
	inflight map[string]*call[V]
	stats    Stats

	dir string // optional disk layer; "" = memory only
}

type lruEntry[V any] struct {
	key string
	val V
}

// call tracks one in-flight computation other callers can wait on.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New returns a memory-only store holding at most maxEntries values
// (maxEntries < 1 is treated as 1).
func New[V any](maxEntries int) *Store[V] {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Store[V]{
		max:      maxEntries,
		entries:  make(map[string]*list.Element),
		ll:       list.New(),
		inflight: make(map[string]*call[V]),
	}
}

// Open returns a store backed by dir: values are additionally
// gob-encoded to one file per key, so results persist across
// processes. The directory is created if needed.
func Open[V any](dir string, maxEntries int) (*Store[V], error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := New[V](maxEntries)
	s.dir = dir
	return s, nil
}

// Do returns the value cached under key, computing it with compute on
// a miss. Concurrent Do calls with the same key share one execution.
// Errors are returned to every waiter of that execution but are never
// cached: a later Do retries the computation.
func (s *Store[V]) Do(key string, compute func() (V, error)) (V, error) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		v := el.Value.(*lruEntry[V]).val
		s.mu.Unlock()
		return v, nil
	}
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	fromDisk := false
	if v, ok := s.readDisk(key); ok {
		c.val, fromDisk = v, true
	} else {
		c.val, c.err = compute()
	}
	close(c.done)

	s.mu.Lock()
	delete(s.inflight, key)
	if c.err == nil {
		s.insert(key, c.val)
		if fromDisk {
			s.stats.DiskHits++
		} else {
			s.stats.Misses++
		}
	}
	s.mu.Unlock()
	if c.err == nil && !fromDisk {
		s.writeDisk(key, c.val)
	}
	return c.val, c.err
}

// Get returns the value cached in memory or on disk, without
// computing anything.
func (s *Store[V]) Get(key string) (V, bool) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		v := el.Value.(*lruEntry[V]).val
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	if v, ok := s.readDisk(key); ok {
		s.mu.Lock()
		s.insert(key, v)
		s.stats.DiskHits++
		s.mu.Unlock()
		return v, true
	}
	var zero V
	return zero, false
}

// insert adds key to the memory layer, evicting from the LRU tail.
// Callers hold s.mu.
func (s *Store[V]) insert(key string, v V) {
	if el, ok := s.entries[key]; ok { // lost a race with another path
		s.ll.MoveToFront(el)
		return
	}
	s.entries[key] = s.ll.PushFront(&lruEntry[V]{key: key, val: v})
	for s.ll.Len() > s.max {
		tail := s.ll.Back()
		s.ll.Remove(tail)
		delete(s.entries, tail.Value.(*lruEntry[V]).key)
		s.stats.Evicted++
	}
}

// Stats returns a snapshot of the store's counters.
func (s *Store[V]) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.ll.Len()
	return st
}

// path maps a key to its disk file. Keys are hex hashes, so they are
// safe path components; a two-character fan-out keeps directories
// small.
func (s *Store[V]) path(key string) string {
	if len(key) < 3 {
		return filepath.Join(s.dir, key+".gob")
	}
	return filepath.Join(s.dir, key[:2], key[2:]+".gob")
}

// readDisk loads a value from the disk layer; a missing or undecodable
// file is a miss (a corrupt entry is recomputed and rewritten, never
// fatal).
func (s *Store[V]) readDisk(key string) (V, bool) {
	var zero V
	if s.dir == "" {
		return zero, false
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return zero, false
	}
	var v V
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		return zero, false
	}
	return v, true
}

// writeDisk stores a value in the disk layer; failures are silently
// dropped (the cache is an accelerator, not a system of record).
func (s *Store[V]) writeDisk(key string, v V) {
	if s.dir == "" {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return
	}
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return
	}
	// Write-then-rename so a crashed process never leaves a torn file
	// that readDisk would have to reject.
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, p)
}
