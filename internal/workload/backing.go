package workload

import "repro/internal/replay"

// coreRegionBits is the width of a core's private device address range;
// the emulator steers requests to per-core replay modules by range
// (§IV-A).
const coreRegionBits = 40

// mirrorBacking exposes one dataset identically in every core's address
// region — the simulation analogue of the paper's trick of reusing one
// recorded sequence across cores after applying an address offset
// (§IV-A), which lets every core traverse the same data without
// multiplying on-board DRAM.
type mirrorBacking struct {
	data []byte
}

var _ replay.Backing = mirrorBacking{}

// ReadLine returns the 64-byte line at addr's offset within its core
// region; out-of-range reads return zero lines.
func (m mirrorBacking) ReadLine(addr uint64) []byte {
	out := make([]byte, LineSize)
	off := (addr & (1<<coreRegionBits - 1)) &^ (LineSize - 1)
	if off < uint64(len(m.data)) {
		copy(out, m.data[off:])
	}
	return out
}
