package workload

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/replay"
	"repro/internal/uthread"
)

// PointerChase is the worst case the paper's introduction motivates:
// "pointer-based serial dependence chains commonly found in modern
// server workloads" [6]. Each device line holds the address of the
// next, so a thread can never have more than one access of its own in
// flight — all access-level parallelism must come from running many
// threads, which is precisely what the prefetch + user-level-switch
// mechanism provides and what on-demand execution cannot do (the window
// finds no independent loads at all).
type PointerChase struct {
	// Nodes is the number of chain nodes resident on the device.
	Nodes int
	// HopsPerCore is the per-core dereference budget, split across the
	// core's threads so total work is thread-count-independent.
	HopsPerCore int
	// WorkInstr is the benign work per hop.
	WorkInstr int

	arena []byte // device-resident nodes: each line's first 8 bytes = next address offset

	// Hops counts dereferences actually performed (observed result).
	Hops int
}

// NewPointerChase builds a single cyclic pseudo-random chain over all
// nodes (a Sattolo cycle), so every traversal is a maximally
// cache-unfriendly walk with no locality.
func NewPointerChase(nodes, hopsPerCore, workInstr int) *PointerChase {
	if nodes < 2 {
		panic(fmt.Sprintf("workload: pointer chase needs >=2 nodes, got %d", nodes))
	}
	p := &PointerChase{
		Nodes:       nodes,
		HopsPerCore: hopsPerCore,
		WorkInstr:   workInstr,
		arena:       make([]byte, nodes*LineSize),
	}
	// Sattolo's algorithm: a single cycle visiting every node, using
	// the deterministic mixer for reproducibility.
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	for i := nodes - 1; i > 0; i-- {
		j := int(splitmix64(uint64(i)+0x5EED) % uint64(i))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < nodes; i++ {
		from, to := perm[i], perm[(i+1)%nodes]
		binary.LittleEndian.PutUint64(p.arena[from*LineSize:], uint64(to*LineSize))
	}
	return p
}

// Name implements core.Workload.
func (p *PointerChase) Name() string { return fmt.Sprintf("ptrchase-n%d", p.Nodes) }

// Backing exposes the chain arena in every core region.
func (p *PointerChase) Backing() replay.Backing { return mirrorBacking{data: p.arena} }

// startNode gives each thread a distinct, deterministic entry point.
func (p *PointerChase) startNode(coreID, threadID int) uint64 {
	return (splitmix64(uint64(coreID)<<20|uint64(threadID)) % uint64(p.Nodes)) * LineSize
}

// Body implements core.Workload: follow the chain, the next address
// coming out of each fetched line — control flow genuinely depends on
// device data, so replay fidelity is load-bearing here.
func (p *PointerChase) Body(coreID, threadID, threadsPerCore int) func(*uthread.API) {
	base := coreRegion(coreID)
	hops := p.HopsPerCore / threadsPerCore
	if threadID < p.HopsPerCore%threadsPerCore {
		hops++
	}
	return func(a *uthread.API) {
		addr := p.startNode(coreID, threadID)
		for i := 0; i < hops; i++ {
			line := a.Access(base + addr)
			addr = binary.LittleEndian.Uint64(line[:8])
			p.Hops++
			a.Work(p.WorkInstr)
		}
	}
}

// BaselineTrace implements core.Workload. In the DRAM baseline the
// serial dependence chain exposes zero MLP: each load's address comes
// out of the previous load, so the trace marks every iteration
// Dependent and the interval model serializes the loads — exactly why
// "pointer-based serial dependence chains" defeat out-of-order latency
// hiding.
func (p *PointerChase) BaselineTrace(coreID int) []cpu.IterSpec {
	trace := make([]cpu.IterSpec, p.HopsPerCore)
	for i := range trace {
		trace[i] = cpu.IterSpec{Reads: 1, WorkInstr: p.WorkInstr, Dependent: true}
	}
	return trace
}

// Reset clears observed counters between runs.
func (p *PointerChase) Reset() { p.Hops = 0 }
