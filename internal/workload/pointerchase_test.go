package workload

import (
	"encoding/binary"
	"testing"
)

func TestPointerChaseCycleCoversAllNodes(t *testing.T) {
	p := NewPointerChase(64, 10, 100)
	// Follow the chain from node 0: a Sattolo cycle must return to the
	// start after exactly Nodes hops, visiting every node once.
	seen := map[uint64]bool{}
	addr := uint64(0)
	for i := 0; i < p.Nodes; i++ {
		if seen[addr] {
			t.Fatalf("revisited node %d after %d hops", addr/LineSize, i)
		}
		seen[addr] = true
		addr = binary.LittleEndian.Uint64(p.arena[addr:])
	}
	if addr != 0 {
		t.Errorf("chain did not close: at %#x after %d hops", addr, p.Nodes)
	}
	if len(seen) != p.Nodes {
		t.Errorf("visited %d of %d nodes", len(seen), p.Nodes)
	}
}

func TestPointerChaseBodyFollowsChain(t *testing.T) {
	p := NewPointerChase(32, 20, 50)
	acc, work := runFunctional(t, p.Body(0, 0, 1), p.Backing().(interface{ ReadLine(uint64) []byte }))
	if acc != 20 || p.Hops != 20 {
		t.Errorf("accesses=%d hops=%d, want 20", acc, p.Hops)
	}
	if work != 20*50 {
		t.Errorf("work = %d", work)
	}
}

func TestPointerChaseSplitsBudget(t *testing.T) {
	p := NewPointerChase(32, 25, 0)
	for tid := 0; tid < 4; tid++ {
		runFunctional(t, p.Body(0, tid, 4), p.Backing().(interface{ ReadLine(uint64) []byte }))
	}
	if p.Hops != 25 {
		t.Errorf("total hops %d, want per-core budget 25", p.Hops)
	}
}

func TestPointerChaseBaselineDependent(t *testing.T) {
	p := NewPointerChase(32, 10, 100)
	trace := p.BaselineTrace(0)
	if len(trace) != 10 {
		t.Fatalf("trace len %d", len(trace))
	}
	for _, it := range trace {
		if !it.Dependent || it.Reads != 1 {
			t.Fatalf("iter %+v: chase must be 1-read dependent", it)
		}
	}
}

func TestPointerChaseTooFewNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("1-node chase did not panic")
		}
	}()
	NewPointerChase(1, 1, 1)
}

func TestPointerChaseName(t *testing.T) {
	if got := NewPointerChase(16, 1, 1).Name(); got != "ptrchase-n16" {
		t.Errorf("name = %q", got)
	}
}
