// Package workload provides the benchmarks of the paper's evaluation
// (§IV-C): the parameterized microbenchmark and the three data-intensive
// applications (Graph500 BFS, Bloom filter, Memcached lookups), all
// expressed against the core.Workload interface so every benchmark runs
// under every access mechanism.
package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/replay"
	"repro/internal/uthread"
)

// DefaultWorkCount is the microbenchmark's default work instructions per
// device access. 200 instructions puts one loop iteration just past the
// ~192-instruction window, reproducing the regime the paper describes:
// the out-of-order core finds essentially no cross-iteration overlap, so
// the DRAM baseline pays most of its memory latency and 10 threads at
// 1 µs land near DRAM parity (Fig 3).
const DefaultWorkCount = 200

// LineSize is the device access granularity.
const LineSize = 64

// coreRegion returns the base of a core's private device address range;
// the emulator steers per-core requests by address range (§IV-A).
func coreRegion(coreID int) uint64 { return uint64(coreID) << 40 }

// Microbench is the carefully crafted microbenchmark of §IV-C: each loop
// iteration performs Reads independent device accesses to fresh cache
// lines followed by WorkInstr dependent arithmetic instructions limited
// to IPC ~1.4. Reads is the MLP knob (the 1-read/2-read/4-read variants
// of §V-B); each multi-read batch performs a single context switch.
type Microbench struct {
	// IterationsPerCore is the total loop iterations executed by each
	// core, split across that core's threads.
	IterationsPerCore int
	// WorkInstr is the work-count: work instructions per iteration.
	WorkInstr int
	// Reads is the number of independent device accesses per iteration.
	Reads int
	// Writes is the number of posted device writes per iteration
	// (§VII extension; zero reproduces the paper's read-only loop).
	Writes int
}

// NewMicrobench returns a microbenchmark configuration; reads<=0 is
// treated as 1.
func NewMicrobench(itersPerCore, workInstr, reads int) *Microbench {
	if reads <= 0 {
		reads = 1
	}
	return &Microbench{IterationsPerCore: itersPerCore, WorkInstr: workInstr, Reads: reads}
}

// NewMicrobenchRW returns a read/write microbenchmark: each iteration
// performs reads device reads, then writes posted device writes, then
// the work block. The writes touch fresh lines disjoint from the reads.
func NewMicrobenchRW(itersPerCore, workInstr, reads, writes int) *Microbench {
	m := NewMicrobench(itersPerCore, workInstr, reads)
	m.Writes = writes
	return m
}

// Name identifies the configuration, e.g. "ubench-w200-r4".
func (m *Microbench) Name() string {
	if m.Writes > 0 {
		return fmt.Sprintf("ubench-w%d-r%d-wr%d", m.WorkInstr, m.Reads, m.Writes)
	}
	return fmt.Sprintf("ubench-w%d-r%d", m.WorkInstr, m.Reads)
}

// Backing returns zero lines: the microbenchmark never inspects the
// data it loads ("the work comprises only arithmetic instructions",
// §IV-C).
func (m *Microbench) Backing() replay.Backing { return replay.ZeroBacking{} }

// split returns how many iterations thread threadID of n runs.
func (m *Microbench) split(threadID, n int) int {
	per := m.IterationsPerCore / n
	if threadID < m.IterationsPerCore%n {
		per++
	}
	return per
}

// Body returns one thread's loop. Every access touches a different
// cache line ("ensuring ... there is no temporal or spatial locality
// across accesses", §IV-C): each thread strides through a private
// region of its core's address range.
func (m *Microbench) Body(coreID, threadID, threadsPerCore int) func(*uthread.API) {
	iters := m.split(threadID, threadsPerCore)
	base := coreRegion(coreID) | uint64(threadID)<<28
	wbase := base | 1<<27 // write lines disjoint from read lines
	reads, writes, work := m.Reads, m.Writes, m.WorkInstr
	return func(a *uthread.API) {
		addrs := make([]uint64, reads)
		waddrs := make([]uint64, writes)
		line, wline := uint64(0), uint64(0)
		for i := 0; i < iters; i++ {
			for j := range addrs {
				addrs[j] = base + line*LineSize
				line++
			}
			a.AccessBatch(addrs)
			for j := range waddrs {
				waddrs[j] = wbase + wline*LineSize
				wline++
			}
			a.WriteBatch(waddrs)
			a.Work(work)
		}
	}
}

// BaselineTrace returns the single-threaded demand trace: the same
// iterations with the device access replaced by "a pointer dereference
// to a data structure stored in DRAM" (§IV-C). Posted writes do not
// appear: in the DRAM baseline the store buffer absorbs them off the
// critical path, the same property §VII relies on for device writes.
func (m *Microbench) BaselineTrace(coreID int) []cpu.IterSpec {
	return cpu.UniformTrace(m.IterationsPerCore, m.Reads, m.WorkInstr)
}
