package workload

import (
	"testing"
)

func TestBFSTreeValidates(t *testing.T) {
	g := NewKronecker(8, 8, 3)
	b := NewBFS(g, []int{1, 2}, 50, 10)
	for _, src := range b.Sources {
		tree := b.TreeFor(src)
		if err := tree.Validate(g); err != nil {
			t.Errorf("functional tree from %d invalid: %v", src, err)
		}
		if len(tree.Parent) < 2 {
			t.Errorf("tree from %d trivial: %d vertices", src, len(tree.Parent))
		}
	}
}

func TestBFSDeviceTreesMatchFunctional(t *testing.T) {
	g := NewKronecker(8, 8, 7)
	b := NewBFS(g, []int{3, 9}, 30, 10)
	b.RecordTrees = true
	// Drive the bodies through the functional executor (device-path
	// shape) and compare the recorded trees to direct traversals.
	for tid := 0; tid < 2; tid++ {
		runFunctional(t, b.Body(0, tid, 2), b.Backing().(interface{ ReadLine(uint64) []byte }))
	}
	if len(b.Trees) != 2 {
		t.Fatalf("recorded %d trees", len(b.Trees))
	}
	for _, tree := range b.Trees {
		if err := tree.Validate(g); err != nil {
			t.Errorf("device tree from %d invalid: %v", tree.Src, err)
		}
		ref := b.TreeFor(tree.Src)
		if len(ref.Parent) != len(tree.Parent) {
			t.Errorf("tree from %d has %d vertices, reference %d", tree.Src, len(tree.Parent), len(ref.Parent))
		}
		for v, p := range ref.Parent {
			if tree.Parent[v] != p {
				t.Errorf("tree from %d: parent[%d] = %d, want %d", tree.Src, v, tree.Parent[v], p)
			}
		}
	}
}

func TestTreeValidateCatchesCorruption(t *testing.T) {
	g := NewKronecker(7, 8, 5)
	b := NewBFS(g, []int{1}, 40, 10)
	tree := b.TreeFor(1)

	// Corrupt: point a vertex at a non-adjacent parent.
	for v := range tree.Parent {
		if v == tree.Src {
			continue
		}
		// Find a vertex that is definitely not v's parent's neighbor by
		// using v itself as its own parent (self-loops may exist in
		// Kronecker graphs, so corrupt the depth instead if needed).
		orig := tree.Parent[v]
		tree.Parent[v] = v
		err := tree.Validate(g)
		tree.Parent[v] = orig
		if err == nil {
			// Self-edge existed; corrupt the depth instead.
			tree.Depth[v] += 5
			err = tree.Validate(g)
			tree.Depth[v] -= 5
		}
		if err == nil {
			t.Fatalf("corruption at vertex %d not detected", v)
		}
		return // one corruption case suffices
	}
}

func TestTreeValidateCatchesBadRoot(t *testing.T) {
	g := NewKronecker(6, 4, 1)
	tree := newTree(0)
	tree.Depth[0] = 3
	if err := tree.Validate(g); err == nil {
		t.Error("bad root depth not detected")
	}
	tree2 := newTree(0)
	tree2.Parent[5] = 99
	tree2.Depth[5] = 1
	if err := tree2.Validate(g); err == nil {
		t.Error("orphan parent not detected")
	}
}
