package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a CSR graph: RowStart[v]..RowStart[v+1] index into Adj.
// RowStart (the small index) is a hot auxiliary structure that stays in
// DRAM; Adj (the bulk adjacency array) is the core data structure stored
// on the microsecond device.
type Graph struct {
	V        int
	RowStart []int32
	Adj      []uint32
}

// Degree returns vertex v's out-degree.
func (g *Graph) Degree(v int) int {
	return int(g.RowStart[v+1] - g.RowStart[v])
}

// Edges returns the total directed edge count.
func (g *Graph) Edges() int { return len(g.Adj) }

// NewKronecker generates a Graph500-style Kronecker (R-MAT) graph:
// 2^scale vertices, edgefactor*2^scale directed edges, recursively
// placed with the Graph500 initiator probabilities A=0.57, B=0.19,
// C=0.19 (D=0.05). Each edge is inserted in both directions, as the
// Graph500 search kernel treats the graph as undirected. The generator
// is fully seeded and deterministic.
func NewKronecker(scale, edgefactor int, seed int64) *Graph {
	if scale <= 0 || scale > 30 {
		panic(fmt.Sprintf("workload: kronecker scale %d out of range", scale))
	}
	n := 1 << scale
	m := edgefactor * n
	rng := rand.New(rand.NewSource(seed))

	const a, b, c = 0.57, 0.19, 0.19
	type edge struct{ u, v uint32 }
	edges := make([]edge, 0, 2*m)
	for i := 0; i < m; i++ {
		var u, v uint32
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a: // upper-left
			case r < a+b: // upper-right
				v |= 1 << bit
			case r < a+b+c: // lower-left
				u |= 1 << bit
			default: // lower-right
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		edges = append(edges, edge{u, v}, edge{v, u})
	}

	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})

	g := &Graph{
		V:        n,
		RowStart: make([]int32, n+1),
		Adj:      make([]uint32, len(edges)),
	}
	for i, e := range edges {
		g.Adj[i] = e.v
		g.RowStart[e.u+1]++
	}
	for v := 0; v < n; v++ {
		g.RowStart[v+1] += g.RowStart[v]
	}
	return g
}

// adjBytes serializes the adjacency array for the device backing store:
// 4 bytes per neighbor, so one cache line holds 16 neighbors.
func (g *Graph) adjBytes() []byte {
	out := make([]byte, 4*len(g.Adj))
	for i, v := range g.Adj {
		out[4*i] = byte(v)
		out[4*i+1] = byte(v >> 8)
		out[4*i+2] = byte(v >> 16)
		out[4*i+3] = byte(v >> 24)
	}
	return out
}
