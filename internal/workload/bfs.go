package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/replay"
	"repro/internal/uthread"
)

// Tree is a BFS parent tree, the artifact Graph500's result-validation
// kernel checks. Recording trees during device runs lets tests verify
// the traversal end-to-end: any corruption in the simulated device path
// would produce an invalid tree.
type Tree struct {
	Src    int
	Parent map[int]int
	Depth  map[int]int
}

func newTree(src int) *Tree {
	return &Tree{Src: src, Parent: map[int]int{src: src}, Depth: map[int]int{src: 0}}
}

// Validate performs the Graph500-style checks against the graph: the
// root is its own parent at depth zero; every vertex's parent is in the
// tree one level up; and every tree edge exists in the graph.
func (t *Tree) Validate(g *Graph) error {
	if t.Parent[t.Src] != t.Src || t.Depth[t.Src] != 0 {
		return fmt.Errorf("bfs: root %d has parent %d depth %d", t.Src, t.Parent[t.Src], t.Depth[t.Src])
	}
	for v, parent := range t.Parent {
		if v == t.Src {
			continue
		}
		pd, ok := t.Depth[parent]
		if !ok {
			return fmt.Errorf("bfs: vertex %d has parent %d outside the tree", v, parent)
		}
		if t.Depth[v] != pd+1 {
			return fmt.Errorf("bfs: vertex %d at depth %d under parent at depth %d", v, t.Depth[v], pd)
		}
		found := false
		for i := g.RowStart[parent]; i < g.RowStart[parent+1]; i++ {
			if int(g.Adj[i]) == v {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("bfs: tree edge %d->%d not in graph", parent, v)
		}
	}
	return nil
}

// BFS is the Graph500 breadth-first-search benchmark of §IV-C. The CSR
// adjacency array is the core data structure on the microsecond device;
// the row index, frontier queue, and visited map are hot auxiliary
// structures in DRAM. Adjacency lines of the current vertex are fetched
// in batches of at most two: "inherent data dependencies" (a vertex's
// neighbors must be read before they can be explored) limit BFS to
// 2-read batches (§V-D).
//
// Each core runs a fixed set of truncated traversals (source vertices
// with a visit budget), so a core's total work is independent of the
// thread count; threads split the traversals round-robin. This mirrors
// Graph500's many-roots methodology while keeping runs comparable
// across thread counts.
type BFS struct {
	G *Graph
	// Sources are the per-core traversal roots.
	Sources []int
	// MaxVisits truncates each traversal after this many vertices.
	MaxVisits int
	// WorkInstr is the benign work per batch.
	WorkInstr int

	// RecordTrees makes thread bodies capture the parent tree of every
	// traversal into Trees, for Graph500-style result validation.
	RecordTrees bool

	adj []byte

	// observed results
	Visited int     // vertices expanded across all traversals and cores
	Trees   []*Tree // captured when RecordTrees is set

	trace          []cpu.IterSpec
	expectedVisits int // per core
}

// NewBFS builds the benchmark over g. The baseline trace and expected
// visit counts are computed once by a functional traversal pass.
func NewBFS(g *Graph, sources []int, maxVisits, workInstr int) *BFS {
	b := &BFS{G: g, Sources: sources, MaxVisits: maxVisits, WorkInstr: workInstr, adj: g.adjBytes()}
	// Functional pass: direct reads, recording the batch shapes.
	read := func(addrs []uint64) [][]byte {
		lines := make([][]byte, len(addrs))
		backing := mirrorBacking{data: b.adj}
		for i, a := range addrs {
			lines[i] = backing.ReadLine(a)
		}
		return lines
	}
	for _, src := range sources {
		b.expectedVisits += b.traverse(src, 0, read, func(batchLines int) {
			b.trace = append(b.trace, cpu.IterSpec{Reads: batchLines, WorkInstr: workInstr})
		}, nil)
	}
	return b
}

// TreeFor runs a functional traversal from src and returns its parent
// tree — the reference for validating device-run trees.
func (b *BFS) TreeFor(src int) *Tree {
	backing := mirrorBacking{data: b.adj}
	read := func(addrs []uint64) [][]byte {
		lines := make([][]byte, len(addrs))
		for i, a := range addrs {
			lines[i] = backing.ReadLine(a)
		}
		return lines
	}
	tree := newTree(src)
	b.traverse(src, 0, read, func(int) {}, tree)
	return tree
}

// Name implements core.Workload.
func (b *BFS) Name() string { return fmt.Sprintf("bfs-s%d", len(b.Sources)) }

// Backing exposes the adjacency array in every core region.
func (b *BFS) Backing() replay.Backing { return mirrorBacking{data: b.adj} }

// traverse runs one truncated BFS from src, reading adjacency lines
// through read (device or direct) in batches of at most two lines, and
// invoking onBatch for every batch issued. It returns the number of
// vertices expanded. coreBase offsets device addresses into the calling
// core's region.
func (b *BFS) traverse(src int, coreBase uint64, read func([]uint64) [][]byte, onBatch func(batchLines int), tree *Tree) int {
	g := b.G
	visited := make([]bool, g.V)
	queue := make([]int, 0, b.MaxVisits)
	visited[src] = true
	queue = append(queue, src)
	expanded := 0

	for len(queue) > 0 && expanded < b.MaxVisits {
		u := queue[0]
		queue = queue[1:]
		expanded++

		startB := 4 * int(g.RowStart[u]) // adjacency byte range of u
		endB := 4 * int(g.RowStart[u+1])
		if startB == endB {
			continue
		}
		firstLine := startB / LineSize
		lastLine := (endB - 1) / LineSize

		for line := firstLine; line <= lastLine; line += 2 {
			batch := 2
			if line+1 > lastLine {
				batch = 1
			}
			addrs := make([]uint64, batch)
			for i := range addrs {
				addrs[i] = coreBase + uint64(line+i)*LineSize
			}
			lines := read(addrs)
			onBatch(batch)

			// Decode the neighbors covered by these lines and enqueue
			// the unvisited ones.
			for i, data := range lines {
				lineBase := (line + i) * LineSize
				lo, hi := startB, endB
				if lineBase > lo {
					lo = lineBase
				}
				if lineBase+LineSize < hi {
					hi = lineBase + LineSize
				}
				for off := lo; off < hi; off += 4 {
					rel := off - lineBase
					v := uint32(data[rel]) | uint32(data[rel+1])<<8 |
						uint32(data[rel+2])<<16 | uint32(data[rel+3])<<24
					if !visited[v] {
						visited[v] = true
						queue = append(queue, int(v))
						if tree != nil {
							tree.Parent[int(v)] = u
							tree.Depth[int(v)] = tree.Depth[u] + 1
						}
					}
				}
			}
		}
	}
	return expanded
}

// Body implements core.Workload: thread threadID runs the traversals
// j ≡ threadID (mod threadsPerCore).
func (b *BFS) Body(coreID, threadID, threadsPerCore int) func(*uthread.API) {
	base := coreRegion(coreID)
	return func(a *uthread.API) {
		for j := threadID; j < len(b.Sources); j += threadsPerCore {
			var tree *Tree
			if b.RecordTrees {
				tree = newTree(b.Sources[j])
			}
			b.Visited += b.traverse(b.Sources[j], base,
				a.AccessBatch,
				func(int) { a.Work(b.WorkInstr) }, tree)
			if tree != nil {
				b.Trees = append(b.Trees, tree)
			}
		}
	}
}

// BaselineTrace implements core.Workload: the batch shapes recorded by
// the functional pass.
func (b *BFS) BaselineTrace(coreID int) []cpu.IterSpec { return b.trace }

// Reset clears observed counters between runs.
func (b *BFS) Reset() { b.Visited, b.Trees = 0, nil }

// ExpectedVisitsPerCore returns the ground-truth vertex expansions of
// one core's traversal set.
func (b *BFS) ExpectedVisitsPerCore() int { return b.expectedVisits }

// Batches returns the per-core device batch count (iterations of the
// benchmark loop).
func (b *BFS) Batches() int { return len(b.trace) }
