package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/uthread"
)

// runFunctional drives a thread body with an instant executor that
// serves accesses straight from the backing store, returning the number
// of accesses and work instructions requested.
func runFunctional(t *testing.T, body func(*uthread.API), backing interface {
	ReadLine(uint64) []byte
}) (accesses int, work int64) {
	t.Helper()
	th := uthread.New(0, body)
	req := th.Start()
	for req.Kind != uthread.KindDone {
		switch req.Kind {
		case uthread.KindWork:
			work += int64(req.Instr)
			req = th.Resume(nil)
		case uthread.KindAccess:
			lines := make([][]byte, len(req.Addrs))
			for i, a := range req.Addrs {
				lines[i] = backing.ReadLine(a)
			}
			accesses += len(lines)
			req = th.Resume(lines)
		}
	}
	return accesses, work
}

// --- microbenchmark ---

func TestMicrobenchBodyCounts(t *testing.T) {
	m := NewMicrobench(100, 200, 2)
	acc, work := runFunctional(t, m.Body(0, 0, 1), m.Backing().(interface{ ReadLine(uint64) []byte }))
	if acc != 200 {
		t.Errorf("accesses = %d, want 200 (100 iters x MLP 2)", acc)
	}
	if work != 100*200 {
		t.Errorf("work = %d, want 20000", work)
	}
}

func TestMicrobenchSplitAcrossThreads(t *testing.T) {
	m := NewMicrobench(103, 200, 1)
	total := 0
	for tid := 0; tid < 4; tid++ {
		acc, _ := runFunctional(t, m.Body(0, tid, 4), m.Backing().(interface{ ReadLine(uint64) []byte }))
		total += acc
	}
	if total != 103 {
		t.Errorf("threads performed %d accesses total, want 103", total)
	}
}

func TestMicrobenchFreshLines(t *testing.T) {
	// Every access must touch a distinct cache line (§IV-C).
	m := NewMicrobench(50, 100, 4)
	seen := map[uint64]bool{}
	th := uthread.New(0, m.Body(0, 0, 1))
	req := th.Start()
	for req.Kind != uthread.KindDone {
		if req.Kind == uthread.KindAccess {
			for _, a := range req.Addrs {
				if seen[a] {
					t.Fatalf("address %#x reused", a)
				}
				seen[a] = true
			}
			req = th.Resume(make([][]byte, len(req.Addrs)))
		} else {
			req = th.Resume(nil)
		}
	}
}

func TestMicrobenchBaselineMatchesBodies(t *testing.T) {
	m := NewMicrobench(97, 150, 2)
	trace := m.BaselineTrace(0)
	var tAcc, tWork int64
	for _, it := range trace {
		tAcc += int64(it.Reads)
		tWork += int64(it.WorkInstr)
	}
	var bAcc, bWork int64
	for tid := 0; tid < 3; tid++ {
		a, w := runFunctional(t, m.Body(0, tid, 3), m.Backing().(interface{ ReadLine(uint64) []byte }))
		bAcc += int64(a)
		bWork += w
	}
	if tAcc != bAcc || tWork != bWork {
		t.Errorf("baseline (%d acc, %d work) != bodies (%d acc, %d work)", tAcc, tWork, bAcc, bWork)
	}
}

func TestMicrobenchZeroReadsClamped(t *testing.T) {
	m := NewMicrobench(10, 100, 0)
	if m.Reads != 1 {
		t.Errorf("reads = %d, want clamped to 1", m.Reads)
	}
}

// --- mirror backing ---

func TestMirrorBackingPerCoreRegions(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	b := mirrorBacking{data: data}
	l0 := b.ReadLine(coreRegion(0) + 64)
	l7 := b.ReadLine(coreRegion(7) + 64)
	if l0[0] != 64 || l7[0] != 64 {
		t.Errorf("mirrored lines differ: %d %d, want 64", l0[0], l7[0])
	}
	// Unaligned addresses read their containing line.
	if got := b.ReadLine(coreRegion(2) + 65); got[0] != 64 {
		t.Errorf("unaligned mirrored read = %d", got[0])
	}
	// Beyond the dataset: zero line.
	far := b.ReadLine(coreRegion(1) + 1<<20)
	for _, v := range far {
		if v != 0 {
			t.Fatal("out-of-range mirrored read not zero")
		}
	}
}

// --- bloom filter ---

func TestBloomLookupsMatchReference(t *testing.T) {
	b := NewBloom(1<<16, 4, 500, 400, 100)
	acc, work := runFunctional(t, b.Body(0, 0, 1), b.Backing().(interface{ ReadLine(uint64) []byte }))
	if b.Lookups != 400 {
		t.Errorf("lookups = %d, want 400", b.Lookups)
	}
	if acc != 400*4 {
		t.Errorf("accesses = %d, want 1600", acc)
	}
	if work != 400*100 {
		t.Errorf("work = %d", work)
	}
	if b.Positives != b.ReferencePositives() {
		t.Errorf("device-path positives %d != reference %d", b.Positives, b.ReferencePositives())
	}
}

func TestBloomPresentKeysAlwaysHit(t *testing.T) {
	// All even-indexed lookups are keys that were inserted, so at least
	// half the lookups must be positive; absent keys mostly miss.
	b := NewBloom(1<<18, 4, 200, 1000, 0)
	runFunctional(t, b.Body(0, 0, 1), b.Backing().(interface{ ReadLine(uint64) []byte }))
	if b.Positives < 500 {
		t.Errorf("positives = %d, want >= 500 (inserted keys must hit)", b.Positives)
	}
	// With 200 keys in 256Kib the false-positive rate is tiny.
	if b.Positives > 520 {
		t.Errorf("positives = %d, false-positive rate implausibly high", b.Positives)
	}
}

func TestBloomReset(t *testing.T) {
	b := NewBloom(1<<12, 4, 10, 20, 0)
	runFunctional(t, b.Body(0, 0, 1), b.Backing().(interface{ ReadLine(uint64) []byte }))
	b.Reset()
	if b.Positives != 0 || b.Lookups != 0 {
		t.Error("reset did not clear counters")
	}
}

func TestBloomBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-multiple-of-512 bits did not panic")
		}
	}()
	NewBloom(100, 4, 10, 10, 0)
}

// Property: a key inserted into the filter is always reported present.
func TestBloomNoFalseNegativesProperty(t *testing.T) {
	b := NewBloom(1<<14, 4, 300, 0, 0)
	f := func(k uint16) bool {
		key := presentKey(int(k) % 300)
		for _, p := range b.probePositions(key) {
			if b.bitArray[p/8]&(1<<(p%8)) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- memcached ---

func TestMemcachedValuesVerify(t *testing.T) {
	m := NewMemcached(256, 4, 300, 100)
	acc, _ := runFunctional(t, m.Body(0, 0, 1), m.Backing().(interface{ ReadLine(uint64) []byte }))
	if m.Lookups != 300 || m.Hits != 300 || m.BadValues != 0 {
		t.Errorf("lookups=%d hits=%d bad=%d, want 300/300/0", m.Lookups, m.Hits, m.BadValues)
	}
	if acc != 300*4 {
		t.Errorf("accesses = %d, want 1200", acc)
	}
}

func TestMemcachedPerCoreMirroring(t *testing.T) {
	m := NewMemcached(64, 4, 50, 0)
	for core := 0; core < 3; core++ {
		m.Reset()
		runFunctional(t, m.Body(core, 0, 1), m.Backing().(interface{ ReadLine(uint64) []byte }))
		if m.BadValues != 0 {
			t.Errorf("core %d: %d bad values", core, m.BadValues)
		}
	}
}

func TestMemcachedThreadPartition(t *testing.T) {
	m := NewMemcached(64, 4, 101, 0)
	for tid := 0; tid < 4; tid++ {
		runFunctional(t, m.Body(0, tid, 4), m.Backing().(interface{ ReadLine(uint64) []byte }))
	}
	if m.Lookups != 101 || m.BadValues != 0 {
		t.Errorf("lookups=%d bad=%d, want 101/0", m.Lookups, m.BadValues)
	}
}

// --- kronecker + BFS ---

func TestKroneckerShape(t *testing.T) {
	g := NewKronecker(8, 16, 1)
	if g.V != 256 {
		t.Fatalf("V = %d", g.V)
	}
	if g.Edges() != 2*16*256 {
		t.Errorf("edges = %d, want %d (undirected doubling)", g.Edges(), 2*16*256)
	}
	// CSR consistency.
	if int(g.RowStart[g.V]) != len(g.Adj) {
		t.Errorf("RowStart[V] = %d, len(Adj) = %d", g.RowStart[g.V], len(g.Adj))
	}
	for v := 0; v < g.V; v++ {
		if g.RowStart[v] > g.RowStart[v+1] {
			t.Fatalf("RowStart not monotone at %d", v)
		}
	}
	for _, n := range g.Adj {
		if int(n) >= g.V {
			t.Fatalf("neighbor %d out of range", n)
		}
	}
}

func TestKroneckerDeterministic(t *testing.T) {
	a := NewKronecker(7, 8, 42)
	b := NewKronecker(7, 8, 42)
	if len(a.Adj) != len(b.Adj) {
		t.Fatal("sizes differ")
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := NewKronecker(7, 8, 43)
	same := len(a.Adj) == len(c.Adj)
	if same {
		identical := true
		for i := range a.Adj {
			if a.Adj[i] != c.Adj[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestKroneckerSkewedDegrees(t *testing.T) {
	// R-MAT graphs are heavy-tailed: the max degree far exceeds the
	// mean.
	g := NewKronecker(10, 16, 7)
	mean := float64(g.Edges()) / float64(g.V)
	max := 0
	for v := 0; v < g.V; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	if float64(max) < 4*mean {
		t.Errorf("max degree %d vs mean %.1f: not heavy-tailed", max, mean)
	}
}

func TestBFSDeviceMatchesFunctional(t *testing.T) {
	g := NewKronecker(8, 8, 3)
	b := NewBFS(g, []int{1, 2, 3, 4}, 40, 100)
	if b.ExpectedVisitsPerCore() == 0 || b.Batches() == 0 {
		t.Fatal("functional pass found nothing to do")
	}
	// Re-run through the uthread body against the same backing: visits
	// must match the functional pass.
	for tid := 0; tid < 2; tid++ {
		runFunctional(t, b.Body(0, tid, 2), b.Backing().(interface{ ReadLine(uint64) []byte }))
	}
	if b.Visited != b.ExpectedVisitsPerCore() {
		t.Errorf("device-path visits %d != functional %d", b.Visited, b.ExpectedVisitsPerCore())
	}
}

func TestBFSBaselineTraceMatchesBodies(t *testing.T) {
	g := NewKronecker(8, 8, 5)
	b := NewBFS(g, []int{10, 20}, 30, 50)
	var tAcc, tWork int64
	for _, it := range b.BaselineTrace(0) {
		tAcc += int64(it.Reads)
		tWork += int64(it.WorkInstr)
	}
	var bAcc, bWork int64
	for tid := 0; tid < 2; tid++ {
		a, w := runFunctional(t, b.Body(0, tid, 2), b.Backing().(interface{ ReadLine(uint64) []byte }))
		bAcc += int64(a)
		bWork += w
	}
	if tAcc != bAcc || tWork != bWork {
		t.Errorf("trace (%d acc, %d work) != bodies (%d acc, %d work)", tAcc, tWork, bAcc, bWork)
	}
}

func TestBFSBatchesAtMostTwoLines(t *testing.T) {
	g := NewKronecker(9, 16, 11)
	b := NewBFS(g, []int{5}, 100, 10)
	for _, it := range b.BaselineTrace(0) {
		if it.Reads < 1 || it.Reads > 2 {
			t.Fatalf("batch of %d lines; BFS is limited to 2 (§V-D)", it.Reads)
		}
	}
}

func TestBFSTruncation(t *testing.T) {
	g := NewKronecker(8, 16, 9)
	small := NewBFS(g, []int{0}, 5, 10)
	if small.ExpectedVisitsPerCore() > 5 {
		t.Errorf("visits %d exceed budget 5", small.ExpectedVisitsPerCore())
	}
}

func TestBFSNames(t *testing.T) {
	g := NewKronecker(6, 4, 1)
	b := NewBFS(g, []int{0, 1}, 5, 10)
	if b.Name() != "bfs-s2" {
		t.Errorf("name = %q", b.Name())
	}
	if NewMicrobench(1, 200, 4).Name() != "ubench-w200-r4" {
		t.Error("microbench name wrong")
	}
	if NewBloom(512, 4, 1, 1, 1).Name() != "bloom-k4" {
		t.Error("bloom name wrong")
	}
	if NewMemcached(1, 4, 1, 1).Name() != "memcached-v4" {
		t.Error("memcached name wrong")
	}
}
