package workload

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/replay"
	"repro/internal/uthread"
)

// Memcached is the key-value-store benchmark of §IV-C: the lookup path
// of an in-memory cache. Following the paper's methodology, only the
// main data structure — the value storage — lives on the microsecond
// device; the hash index is a hot auxiliary structure kept in DRAM
// ("hot data structures ... are all placed in the main memory", §IV-C).
// A hit retrieves a value spanning ValueLines cache lines: "value
// retrieval can span multiple cache lines, resulting in independent
// memory accesses that can overlap" (§V-B) — the batch-of-four of Fig 10.
type Memcached struct {
	// Items is the number of stored key-value pairs.
	Items int
	// ValueLines is the cache lines per value (4 in the paper's
	// batching).
	ValueLines int
	// LookupsPerCore is the per-core lookup count, split across threads.
	LookupsPerCore int
	// WorkInstr is the benign work per lookup.
	WorkInstr int

	values []byte // the device-resident value arena

	// observed results
	Hits      int
	BadValues int // value contents that failed verification
	Lookups   int
}

// NewMemcached builds a store with deterministic contents: item k's
// value is ValueLines lines, each line tagged with (k, lineIndex) so
// reads are verifiable.
func NewMemcached(items, valueLines, lookupsPerCore, workInstr int) *Memcached {
	m := &Memcached{
		Items:          items,
		ValueLines:     valueLines,
		LookupsPerCore: lookupsPerCore,
		WorkInstr:      workInstr,
		values:         make([]byte, items*valueLines*LineSize),
	}
	for k := 0; k < items; k++ {
		for l := 0; l < valueLines; l++ {
			off := (k*valueLines + l) * LineSize
			binary.LittleEndian.PutUint64(m.values[off:], uint64(k))
			binary.LittleEndian.PutUint64(m.values[off+8:], uint64(l))
		}
	}
	return m
}

// Name implements core.Workload.
func (m *Memcached) Name() string { return fmt.Sprintf("memcached-v%d", m.ValueLines) }

// Backing exposes the value arena in every core region.
func (m *Memcached) Backing() replay.Backing { return mirrorBacking{data: m.values} }

// valueAddr returns the device address of item k's first value line in
// a core's region — the hash-index lookup, performed in DRAM and
// therefore free on the device path.
func (m *Memcached) valueAddr(coreID, k int) uint64 {
	return coreRegion(coreID) + uint64(k*m.ValueLines)*LineSize
}

// memcachedSeed decorrelates the lookup stream from other workloads'
// use of the shared mixer.
const memcachedSeed = 0xA5A5A5A5

// lookupItem returns the item requested by a core's i-th lookup
// (a deterministic scrambled sequence standing in for the client's key
// stream).
func (m *Memcached) lookupItem(i int) int {
	return int(splitmix64(uint64(i)+memcachedSeed) % uint64(m.Items))
}

// Body implements core.Workload.
func (m *Memcached) Body(coreID, threadID, threadsPerCore int) func(*uthread.API) {
	return func(a *uthread.API) {
		addrs := make([]uint64, m.ValueLines)
		for i := threadID; i < m.LookupsPerCore; i += threadsPerCore {
			k := m.lookupItem(i)
			base := m.valueAddr(coreID, k)
			for l := range addrs {
				addrs[l] = base + uint64(l)*LineSize
			}
			lines := a.AccessBatch(addrs)
			ok := true
			for l, line := range lines {
				if binary.LittleEndian.Uint64(line) != uint64(k) ||
					binary.LittleEndian.Uint64(line[8:]) != uint64(l) {
					ok = false
				}
			}
			if ok {
				m.Hits++
			} else {
				m.BadValues++
			}
			m.Lookups++
			a.Work(m.WorkInstr)
		}
	}
}

// BaselineTrace implements core.Workload.
func (m *Memcached) BaselineTrace(coreID int) []cpu.IterSpec {
	return cpu.UniformTrace(m.LookupsPerCore, m.ValueLines, m.WorkInstr)
}

// Reset clears observed counters between runs.
func (m *Memcached) Reset() { m.Hits, m.BadValues, m.Lookups = 0, 0, 0 }
