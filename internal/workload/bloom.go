package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/replay"
	"repro/internal/uthread"
)

// Bloom is the Bloom-filter benchmark of §IV-C: "a high-performance
// implementation of lookups in a pre-populated dataset". The bit array
// is the core data structure stored on the microsecond device; each
// lookup probes KHash independent bit positions, and "the nature of the
// applications permits batches of four reads" (§V-D) — the probes issue
// as one batch before a single context switch.
type Bloom struct {
	// Bits is the filter size in bits (a multiple of 512, one line = 512
	// bits).
	Bits uint64
	// KHash is the number of hash probes per lookup (4 in the paper's
	// batching).
	KHash int
	// LookupsPerCore is the per-core lookup count, split across threads.
	LookupsPerCore int
	// WorkInstr is the benign work per lookup that replaces the
	// application's post-access computation (§IV-C).
	WorkInstr int

	keys     int // populated keys
	bitArray []byte

	// observed results, accumulated by thread bodies (the simulation is
	// single-threaded, so plain fields are race-free)
	Positives int
	Lookups   int
}

// NewBloom builds a filter with nKeys inserted and the given geometry.
// All hashing is deterministic, so runs are reproducible.
func NewBloom(bits uint64, kHash, nKeys, lookupsPerCore, workInstr int) *Bloom {
	if bits%512 != 0 || bits == 0 {
		panic(fmt.Sprintf("workload: bloom bits %d must be a positive multiple of 512", bits))
	}
	b := &Bloom{
		Bits:           bits,
		KHash:          kHash,
		LookupsPerCore: lookupsPerCore,
		WorkInstr:      workInstr,
		keys:           nKeys,
		bitArray:       make([]byte, bits/8),
	}
	for k := 0; k < nKeys; k++ {
		for _, pos := range b.probePositions(presentKey(k)) {
			b.bitArray[pos/8] |= 1 << (pos % 8)
		}
	}
	return b
}

// presentKey and absentKey generate disjoint key universes: lookups of
// presentKey(i<keys) must hit; absentKey lookups are true negatives
// (modulo false positives).
func presentKey(i int) uint64 { return uint64(i)*2 + 1 }
func absentKey(i int) uint64  { return uint64(i)*2 + 2 }

// probePositions returns the KHash bit positions of a key via double
// hashing (the standard Kirsch-Mitzenmacher construction).
func (b *Bloom) probePositions(key uint64) []uint64 {
	h1 := splitmix64(key)
	h2 := splitmix64(h1) | 1
	pos := make([]uint64, b.KHash)
	for i := range pos {
		pos[i] = (h1 + uint64(i)*h2) % b.Bits
	}
	return pos
}

// splitmix64 is a small deterministic mixer (public-domain SplitMix64).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Name implements core.Workload.
func (b *Bloom) Name() string { return fmt.Sprintf("bloom-k%d", b.KHash) }

// Backing exposes the bit array in every core region.
func (b *Bloom) Backing() replay.Backing { return mirrorBacking{data: b.bitArray} }

// lookupKey returns the key probed by a core's i-th lookup: alternating
// present and absent keys, spread deterministically.
func (b *Bloom) lookupKey(i int) uint64 {
	if i%2 == 0 {
		return presentKey(int(splitmix64(uint64(i)) % uint64(b.keys)))
	}
	return absentKey(i)
}

// testBit checks a probe position against the fetched line.
func testBit(line []byte, pos uint64) bool {
	bit := pos % 512
	return line[bit/8]&(1<<(bit%8)) != 0
}

// Body implements core.Workload: thread threadID performs the lookups
// i ≡ threadID (mod threadsPerCore) of its core.
func (b *Bloom) Body(coreID, threadID, threadsPerCore int) func(*uthread.API) {
	base := coreRegion(coreID)
	return func(a *uthread.API) {
		addrs := make([]uint64, b.KHash)
		for i := threadID; i < b.LookupsPerCore; i += threadsPerCore {
			pos := b.probePositions(b.lookupKey(i))
			for j, p := range pos {
				addrs[j] = base + (p/512)*LineSize
			}
			lines := a.AccessBatch(addrs)
			maybe := true
			for j, p := range pos {
				if !testBit(lines[j], p) {
					maybe = false
				}
			}
			if maybe {
				b.Positives++
			}
			b.Lookups++
			a.Work(b.WorkInstr)
		}
	}
}

// BaselineTrace implements core.Workload: one iteration per lookup with
// KHash independent reads.
func (b *Bloom) BaselineTrace(coreID int) []cpu.IterSpec {
	return cpu.UniformTrace(b.LookupsPerCore, b.KHash, b.WorkInstr)
}

// Reset clears observed counters between runs.
func (b *Bloom) Reset() { b.Positives, b.Lookups = 0, 0 }

// ReferencePositives computes the expected positive count for one core's
// lookup sequence directly against the bit array (ground truth for
// tests).
func (b *Bloom) ReferencePositives() int {
	n := 0
	for i := 0; i < b.LookupsPerCore; i++ {
		maybe := true
		for _, p := range b.probePositions(b.lookupKey(i)) {
			if b.bitArray[p/8]&(1<<(p%8)) == 0 {
				maybe = false
			}
		}
		if maybe {
			n++
		}
	}
	return n
}
