package device

import (
	"testing"

	"repro/internal/hostmem"
	"repro/internal/mem"
	"repro/internal/pcie"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

type rig struct {
	eng  *sim.Engine
	cfg  platform.Config
	link *pcie.Link
	dram *mem.DRAM
	dev  *Device
}

func newRig(cfg platform.Config) *rig {
	eng := sim.NewEngine()
	link := pcie.NewLink(eng, cfg)
	dram := mem.New(eng, cfg.DRAMLatency, cfg.DRAMMaxOutstanding)
	dev := New(eng, cfg, link, dram, replay.ZeroBacking{})
	return &rig{eng: eng, cfg: cfg, link: link, dram: dram, dev: dev}
}

func TestMMIOReadExactLatency(t *testing.T) {
	for _, lat := range []sim.Time{1 * sim.Microsecond, 2 * sim.Microsecond, 4 * sim.Microsecond} {
		r := newRig(platform.Default().WithLatency(lat))
		if err := r.dev.LoadRecording(0, replay.Synthetic(0, 16), 0); err != nil {
			t.Fatal(err)
		}
		var done sim.Time
		r.dev.MMIORead(0, 0, trace.Span{}, nil, func(data []byte) {
			done = r.eng.Now()
			if len(data) != platform.CacheLineBytes {
				t.Errorf("response size %d", len(data))
			}
		})
		r.eng.Run()
		// The delay module targets exactly the configured latency,
		// inclusive of the PCIe round trip (§IV-A).
		if done != lat {
			t.Errorf("lat=%v: response at %v, want exactly %v", lat, done, lat)
		}
	}
}

func TestMMIOReadReplayVsOnDemand(t *testing.T) {
	r := newRig(platform.Default())
	if err := r.dev.LoadRecording(0, replay.Synthetic(0, 4), 0); err != nil {
		t.Fatal(err)
	}
	responses := 0
	// Matched replay accesses.
	for i := 0; i < 4; i++ {
		r.dev.MMIORead(0, uint64(i)*64, trace.Span{}, nil, func([]byte) { responses++ })
		r.eng.Run()
	}
	// Spurious wrong-path access: served by the on-demand module.
	r.dev.MMIORead(0, 0xBAD0000, trace.Span{}, nil, func([]byte) { responses++ })
	r.eng.Run()
	if responses != 5 {
		t.Fatalf("responses = %d, want 5", responses)
	}
	if r.dev.ReplayServed() != 4 || r.dev.OnDemandServed() != 1 {
		t.Errorf("replay=%d ondemand=%d, want 4,1", r.dev.ReplayServed(), r.dev.OnDemandServed())
	}
}

func TestMMIOReadIdealModeWithoutRecording(t *testing.T) {
	r := newRig(platform.Default())
	var done sim.Time
	r.dev.MMIORead(0, 0x40, trace.Span{}, nil, func([]byte) { done = r.eng.Now() })
	r.eng.Run()
	// Ideal backing-only mode serves at replay-path timing.
	if done != r.cfg.DeviceLatency {
		t.Errorf("ideal-mode response at %v, want %v", done, r.cfg.DeviceLatency)
	}
	if r.dev.DirectServed() != 1 || r.dev.OnDemandServed() != 0 {
		t.Errorf("direct=%d onDemand=%d, want 1,0", r.dev.DirectServed(), r.dev.OnDemandServed())
	}
}

func TestOnDemandDetourCannotRespondEarly(t *testing.T) {
	// With device latency at the RTT floor, a replay miss takes the
	// on-demand module's dataset-DRAM detour, pushing the response past
	// the configured latency rather than violating causality.
	cfg := platform.Default().WithLatency(2 * platform.Default().PCIePropagation)
	r := newRig(cfg)
	if err := r.dev.LoadRecording(0, replay.Synthetic(0, 4), 0); err != nil {
		t.Fatal(err)
	}
	var done sim.Time
	r.dev.MMIORead(0, 0xBAD0000, trace.Span{}, nil, func([]byte) { done = r.eng.Now() }) // spurious
	r.eng.Run()
	if done <= cfg.DeviceLatency {
		t.Errorf("response at %v not delayed past %v by on-demand detour", done, cfg.DeviceLatency)
	}
	if r.dev.OnDemandServed() != 1 {
		t.Errorf("onDemandServed = %d, want 1", r.dev.OnDemandServed())
	}
}

func TestLoadRecordingCapacity(t *testing.T) {
	r := newRig(platform.Default())
	r.dev.loadedBytes = OnBoardDRAMBytes - 1 // nearly full on-board DRAM
	if err := r.dev.LoadRecording(0, replay.Synthetic(0, 8), 0); err == nil {
		t.Error("recording exceeding on-board DRAM capacity accepted")
	}
	r.dev.loadedBytes = 0
	if err := r.dev.LoadRecording(0, replay.Synthetic(0, 8), 0); err != nil {
		t.Errorf("small recording rejected: %v", err)
	}
	if r.dev.Module(0) == nil {
		t.Error("module not installed")
	}
	if r.dev.Module(3) != nil {
		t.Error("module for unknown core")
	}
}

func TestPreloadCost(t *testing.T) {
	r := newRig(platform.Default())
	rec := replay.Synthetic(0, 1000) // 72000 bytes
	cost := r.dev.PreloadCost(rec)
	// 282 chunks of 256B: 282 * 70ns = 19.74us.
	want := sim.Time(282) * r.cfg.TLPTime(256)
	if cost != want {
		t.Errorf("preload cost %v, want %v", cost, want)
	}
}

func TestMMIOMulticoreOffsets(t *testing.T) {
	r := newRig(platform.Default())
	rec := replay.Synthetic(0, 8)
	for core := 0; core < 2; core++ {
		offset := uint64(core) << 32
		if err := r.dev.LoadRecording(core, rec, offset); err != nil {
			t.Fatal(err)
		}
	}
	// Each core's requests match through its own offset module. Note
	// both modules share one recording, as in the paper.
	got := 0
	r.dev.MMIORead(0, 0, trace.Span{}, nil, func([]byte) { got++ })
	r.dev.MMIORead(1, 1<<32, trace.Span{}, nil, func([]byte) { got++ })
	r.eng.Run()
	if got != 2 || r.dev.ReplayServed() != 2 {
		t.Errorf("served %d replay=%d, want both via replay", got, r.dev.ReplayServed())
	}
}

// --- software-managed queue endpoint ---

type swqRig struct {
	*rig
	rq *hostmem.RequestQueue
	cq *hostmem.CompletionQueue
	ep *SWQEndpoint
}

func newSWQRig(t *testing.T, cfg platform.Config, recLen int) *swqRig {
	t.Helper()
	r := newRig(cfg)
	if recLen > 0 {
		if err := r.dev.LoadRecording(0, replay.Synthetic(0, recLen), 0); err != nil {
			t.Fatal(err)
		}
	}
	rq := hostmem.NewRequestQueue()
	cq := hostmem.NewCompletionQueue()
	ep := r.dev.NewSWQEndpoint(0, rq, cq)
	return &swqRig{rig: r, rq: rq, cq: cq, ep: ep}
}

func TestSWQSingleRequest(t *testing.T) {
	s := newSWQRig(t, platform.Default(), 8)
	id := s.rq.Push(0, 0xA000, 0)
	s.rq.ClearDoorbellRequested()
	s.ep.Doorbell()
	s.eng.RunUntil(50 * sim.Microsecond)

	if s.cq.Len() != 1 {
		t.Fatalf("completions = %d, want 1", s.cq.Len())
	}
	compl := s.cq.Drain()[0]
	if compl.ID != id {
		t.Errorf("completion ID %d, want %d", compl.ID, id)
	}
	// End-to-end SWQ latency exceeds the raw device latency: descriptor
	// fetch (PCIe RTT + host DRAM) + internal delay + response write.
	if compl.Posted <= s.cfg.DeviceLatency {
		t.Errorf("completion at %v, should exceed device latency %v", compl.Posted, s.cfg.DeviceLatency)
	}
	if compl.Posted > s.cfg.DeviceLatency+3*sim.Microsecond {
		t.Errorf("completion at %v, implausibly slow", compl.Posted)
	}
	if data := s.ep.Data(id); len(data) != platform.CacheLineBytes {
		t.Errorf("data len %d", len(data))
	}
}

func TestSWQDataPrecedesCompletion(t *testing.T) {
	s := newSWQRig(t, platform.Default(), 8)
	id := s.rq.Push(0, 0xA000, 0)
	s.rq.ClearDoorbellRequested()
	s.ep.Doorbell()

	sawDataAtCompletion := false
	gate := s.ep.CompletionGate()
	gate.OnFire(func() {
		// The protocol guarantees response data is host-visible before
		// its completion entry (§IV-A).
		sawDataAtCompletion = len(s.ep.Data(id)) == platform.CacheLineBytes
	})
	s.eng.RunUntil(50 * sim.Microsecond)
	if !sawDataAtCompletion {
		t.Error("completion posted before response data landed")
	}
}

func TestSWQBurstDrainsManyDescriptors(t *testing.T) {
	s := newSWQRig(t, platform.Default(), 64)
	for i := 0; i < 20; i++ {
		s.rq.Push(uint64(i)*64, 0, 0)
	}
	s.rq.ClearDoorbellRequested()
	s.ep.Doorbell()
	s.eng.RunUntil(100 * sim.Microsecond)

	if s.cq.Posted() != 20 {
		t.Fatalf("completions = %d, want 20", s.cq.Posted())
	}
	// 20 descriptors in bursts of 8: at least 3 non-empty bursts, plus
	// empty/final ones; strictly fewer bursts than descriptors shows
	// amortization.
	if s.ep.FetchBursts() < 3 || s.ep.FetchBursts() >= 20 {
		t.Errorf("fetch bursts = %d, want amortized (3..19)", s.ep.FetchBursts())
	}
}

func TestSWQDoorbellFlagProtocol(t *testing.T) {
	s := newSWQRig(t, platform.Default(), 64)
	s.rq.Push(0, 0, 0)
	s.rq.ClearDoorbellRequested()
	s.ep.Doorbell()
	s.eng.RunUntil(100 * sim.Microsecond)

	// After draining, the fetcher parked and set the doorbell-request
	// flag, telling the host its next submission must ring the doorbell.
	if !s.rq.DoorbellRequested() {
		t.Fatal("doorbell-request flag not set after fetcher went idle")
	}
	if s.ep.EmptyBursts() == 0 {
		t.Error("fetcher never observed an empty burst")
	}

	// A second round: submission + doorbell restarts the fetcher.
	s.rq.Push(64, 0, 0)
	s.rq.ClearDoorbellRequested()
	s.ep.Doorbell()
	s.eng.RunUntil(200 * sim.Microsecond)
	if s.cq.Posted() != 2 {
		t.Errorf("completions = %d, want 2", s.cq.Posted())
	}
	if s.ep.DoorbellHits() != 2 {
		t.Errorf("doorbell hits = %d, want 2", s.ep.DoorbellHits())
	}
}

func TestSWQSubmitWhileRunningNeedsNoDoorbell(t *testing.T) {
	s := newSWQRig(t, platform.Default(), 64)
	s.rq.Push(0, 0, 0)
	s.rq.ClearDoorbellRequested()
	s.ep.Doorbell()
	// While the fetcher is busy, push more requests without doorbells;
	// the continuous burst loop must pick them up (§III-A).
	s.eng.At(2*sim.Microsecond, func() {
		for i := 1; i <= 5; i++ {
			s.rq.Push(uint64(i)*64, 0, 0)
		}
	})
	s.eng.RunUntil(100 * sim.Microsecond)
	if s.cq.Posted() != 6 {
		t.Errorf("completions = %d, want 6 without extra doorbells", s.cq.Posted())
	}
	if s.ep.DoorbellHits() != 1 {
		t.Errorf("doorbells = %d, want 1", s.ep.DoorbellHits())
	}
}

func TestSWQCompletionGateLostWakeupFree(t *testing.T) {
	s := newSWQRig(t, platform.Default(), 8)
	var woke sim.Time
	s.eng.Go("host-poller", func(p *sim.Proc) {
		gate := s.ep.CompletionGate()
		if s.cq.Len() == 0 {
			p.Wait(gate)
		}
		woke = p.Now()
	})
	s.rq.Push(0, 0, 0)
	s.rq.ClearDoorbellRequested()
	s.ep.Doorbell()
	s.eng.RunUntil(50 * sim.Microsecond)
	if woke == 0 {
		t.Fatal("poller never woke")
	}
	if s.cq.Len() != 1 {
		t.Errorf("cq len = %d", s.cq.Len())
	}
}
