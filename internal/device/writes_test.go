package device

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestMMIOWritePosted(t *testing.T) {
	r := newRig(platform.Default())
	var posted sim.Time
	r.dev.MMIOWrite(0, 0x40, func() { posted = r.eng.Now() })
	r.eng.Run()
	// Posted write: one downstream cache-line TLP, no device response —
	// far faster than the device latency.
	want := r.cfg.TLPTime(platform.CacheLineBytes) + r.cfg.PCIePropagation
	if posted != want {
		t.Errorf("write posted at %v, want %v", posted, want)
	}
	if r.dev.WritesServed() != 1 {
		t.Errorf("writesServed = %d", r.dev.WritesServed())
	}
	// Writes consume downstream, not upstream, bandwidth.
	if r.link.Downstream().UsefulBytes != 64 || r.link.Upstream().TotalBytes != 0 {
		t.Errorf("write traffic misrouted: down=%+v up=%+v", r.link.Downstream(), r.link.Upstream())
	}
}

func TestSWQWriteDescriptor(t *testing.T) {
	s := newSWQRig(t, platform.Default(), 8)
	s.rq.PushWrite(0x40, 0xA000, 0)
	s.rq.ClearDoorbellRequested()
	s.ep.Doorbell()
	s.eng.RunUntil(50 * sim.Microsecond)

	// The write generates a completion (host discards it) and counts as
	// served.
	if s.cq.Posted() != 1 {
		t.Fatalf("completions = %d, want 1", s.cq.Posted())
	}
	if s.dev.WritesServed() != 1 {
		t.Errorf("writesServed = %d", s.dev.WritesServed())
	}
	// The device DMA-read the source line from host memory: 64 useful
	// bytes moved downstream.
	if s.link.Downstream().UsefulBytes < 64 {
		t.Errorf("downstream useful bytes = %d, want the write data", s.link.Downstream().UsefulBytes)
	}
}

func TestSWQMixedReadWriteBurst(t *testing.T) {
	s := newSWQRig(t, platform.Default(), 16)
	id0 := s.rq.Push(0, 0xA000, 0)
	s.rq.PushWrite(0x40, 0xB000, 0)
	id2 := s.rq.Push(64, 0xC000, 0)
	s.rq.ClearDoorbellRequested()
	s.ep.Doorbell()
	s.eng.RunUntil(50 * sim.Microsecond)

	if s.cq.Posted() != 3 {
		t.Fatalf("completions = %d, want 3", s.cq.Posted())
	}
	// Read data is retrievable; the write produced none.
	if len(s.ep.Data(id0)) != platform.CacheLineBytes || len(s.ep.Data(id2)) != platform.CacheLineBytes {
		t.Error("read data missing after mixed burst")
	}
}

func TestEffectiveLatencyTailDeterministic(t *testing.T) {
	cfg := platform.Default()
	cfg.DeviceLatencyTailProb = 0.1
	draw := func() []sim.Time {
		r := newRig(cfg)
		out := make([]sim.Time, 200)
		for i := range out {
			out[i] = r.dev.effectiveLatency()
		}
		return out
	}
	a, b := draw(), draw()
	slow := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("latency draws nondeterministic")
		}
		switch a[i] {
		case cfg.DeviceLatency:
		case sim.Time(float64(cfg.DeviceLatency) * cfg.DeviceLatencyTailFactor):
			slow++
		default:
			t.Fatalf("unexpected latency %v", a[i])
		}
	}
	// ~10% of 200 draws; allow wide slack for the deterministic hash.
	if slow < 8 || slow > 36 {
		t.Errorf("slow draws = %d of 200, want ~20", slow)
	}
}

func TestEffectiveLatencyFixedWithoutTail(t *testing.T) {
	r := newRig(platform.Default())
	for i := 0; i < 50; i++ {
		if got := r.dev.effectiveLatency(); got != r.cfg.DeviceLatency {
			t.Fatalf("draw %d = %v without tail", i, got)
		}
	}
}

func TestMMIOReadTailLatency(t *testing.T) {
	cfg := platform.Default()
	cfg.DeviceLatencyTailProb = 1.0 // every access is an outlier
	r := newRig(cfg)
	if err := r.dev.LoadRecording(0, replay.Synthetic(0, 4), 0); err != nil {
		t.Fatal(err)
	}
	var done sim.Time
	r.dev.MMIORead(0, 0, trace.Span{}, nil, func([]byte) { done = r.eng.Now() })
	r.eng.Run()
	want := sim.Time(float64(cfg.DeviceLatency) * cfg.DeviceLatencyTailFactor)
	if done != want {
		t.Errorf("tail response at %v, want %v", done, want)
	}
}
