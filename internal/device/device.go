// Package device implements the microsecond-latency storage device
// emulator of §IV-A (Fig 1), translated from the paper's Altera DE5-Net
// FPGA design into simulation components:
//
//   - a memory-mapped frontend (request dispatcher + per-core replay
//     modules + delay modules) serving cache-line reads with precisely
//     controlled end-to-end latency,
//   - per-core request fetchers implementing the software-managed-queue
//     protocol (burst descriptor DMA reads, doorbell-request flag,
//     response-data and completion writes),
//   - an on-demand module that serves requests the replay modules cannot
//     match, from a dataset copy in a separate on-board DRAM channel,
//   - a DMA preload engine that loads recorded access sequences into
//     on-board DRAM before a measured run.
//
// As in the paper, the emulator is deliberately over-provisioned: its
// internal logic never limits the number of in-flight accesses, so every
// bottleneck observed in an experiment is attributable to the host
// (§IV-A: "the internal device logic does not become the limiting
// factor").
package device

import (
	"fmt"

	"repro/internal/attrib"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/pcie"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

// OnDemandDRAMLatency is the access latency of the dataset copy in the
// separate on-board DRAM channel used by the on-demand module. The
// paper notes this DDR3-800 interface "has high latency" (§IV-A); it is
// only tolerable because spurious requests are rare and the channel is
// lightly loaded.
const OnDemandDRAMLatency = 150 * sim.Nanosecond

// OnBoardDRAMBytes is the capacity available for recorded sequences.
const OnBoardDRAMBytes = 4 << 30

// preloadChunk is the DMA transfer granularity for recording preloads.
const preloadChunk = 256

// Device is the emulator instance shared by all cores.
type Device struct {
	eng      *sim.Engine
	cfg      platform.Config
	link     *pcie.Link
	hostDRAM *mem.DRAM
	backing  replay.Backing // dataset copy for the on-demand module

	modules     map[int]*replay.Module   // per-core replay modules
	recorders   map[int]*replay.Recorder // per-core recording-run capture
	loadedBytes int64

	replayServed   uint64
	directServed   uint64
	onDemandServed uint64
	writesServed   uint64

	reqCounter uint64 // per-request latency-tail draw (deterministic)

	inj *fault.Injector
}

// New creates a device with no recordings loaded. backing is the
// authoritative dataset copy used by the on-demand module; hostDRAM is
// the host memory the request fetchers DMA against.
func New(eng *sim.Engine, cfg platform.Config, link *pcie.Link, hostDRAM *mem.DRAM, backing replay.Backing) *Device {
	return &Device{
		eng:       eng,
		cfg:       cfg,
		link:      link,
		hostDRAM:  hostDRAM,
		backing:   backing,
		modules:   map[int]*replay.Module{},
		recorders: map[int]*replay.Recorder{},
	}
}

// LoadRecording installs a recording for coreID's replay module with the
// given per-core address offset (§IV-A: the same sequence can be reused
// across cores "after applying an address offset"). It reports an error
// if on-board DRAM capacity would be exceeded.
func (d *Device) LoadRecording(coreID int, rec *replay.Recording, offset uint64) error {
	if d.loadedBytes+rec.Bytes() > OnBoardDRAMBytes {
		return fmt.Errorf("device: recording for core %d (%d bytes) exceeds on-board DRAM capacity", coreID, rec.Bytes())
	}
	d.loadedBytes += rec.Bytes()
	d.modules[coreID] = replay.NewModule(rec, d.cfg.ReplayWindow, offset)
	return nil
}

// PreloadCost returns the simulated time the DMA engine needs to
// transfer a recording into on-board DRAM over PCIe, in preloadChunk
// payloads. The harness charges this before starting a measured run.
func (d *Device) PreloadCost(rec *replay.Recording) sim.Time {
	chunks := (rec.Bytes() + preloadChunk - 1) / preloadChunk
	return sim.Time(chunks) * d.cfg.TLPTime(preloadChunk)
}

// Module returns coreID's replay module (nil if none is loaded).
func (d *Device) Module(coreID int) *replay.Module { return d.modules[coreID] }

// ReplayServed returns how many requests the replay modules matched
// (including recording-run captures).
func (d *Device) ReplayServed() uint64 { return d.replayServed }

// DirectServed returns how many requests were served in ideal
// backing-only mode (no recording loaded for the core).
func (d *Device) DirectServed() uint64 { return d.directServed }

// OnDemandServed returns how many requests fell through a replay module
// to the on-demand module — wrong-path/spurious requests in the paper's
// terms (§IV-A).
func (d *Device) OnDemandServed() uint64 { return d.onDemandServed }

// EnableRecording puts coreID into recording mode: requests are served
// directly from the backing dataset (at replay-path timing, since the
// recording run's measurements are discarded) while their (addr, data)
// sequence is captured. This is the first of the paper's two runs per
// experiment (§IV-A).
func (d *Device) EnableRecording(coreID int) {
	d.recorders[coreID] = replay.NewRecorder(d.backing, &replay.Recording{})
}

// TakeRecording stops recording for coreID and returns the captured
// sequence, ready to be loaded (typically into a fresh Device for the
// measured run) with LoadRecording.
func (d *Device) TakeRecording(coreID int) *replay.Recording {
	r := d.recorders[coreID]
	delete(d.recorders, coreID)
	if r == nil {
		return nil
	}
	return r.Recording()
}

// serve produces the response line for one request and reports whether
// it came through the fast path (recording capture, replay match, or
// ideal backing-only mode) or needed the on-demand module's slow
// dataset-DRAM detour (a replay-window miss: a wrong-path or otherwise
// unrecorded request, §IV-A).
func (d *Device) serve(coreID int, addr uint64) ([]byte, bool) {
	if rec := d.recorders[coreID]; rec != nil {
		d.replayServed++
		return rec.ReadLine(addr), true
	}
	if m := d.modules[coreID]; m != nil {
		if data, ok := m.Lookup(addr); ok {
			d.replayServed++
			return data, true
		}
		d.onDemandServed++
		return d.backing.ReadLine(addr), false
	}
	// Ideal mode: no recording loaded; the backing store answers at
	// replay-path timing. Used by workloads whose access pattern needs
	// no recording fidelity (the microbenchmark).
	d.directServed++
	return d.backing.ReadLine(addr), true
}

// effectiveLatency draws the end-to-end latency for the next request:
// the configured DeviceLatency, or — with the latency-tail extension
// enabled — a deterministic pseudo-random outlier of
// DeviceLatency x DeviceLatencyTailFactor with probability
// DeviceLatencyTailProb.
func (d *Device) effectiveLatency() sim.Time {
	d.reqCounter++
	if d.cfg.DeviceLatencyTailProb <= 0 {
		return d.cfg.DeviceLatency
	}
	// splitmix64 of the request index gives a reproducible uniform draw.
	x := d.reqCounter * 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	if float64(x)/float64(^uint64(0)) < d.cfg.DeviceLatencyTailProb {
		return sim.Time(float64(d.cfg.DeviceLatency) * d.cfg.DeviceLatencyTailFactor)
	}
	return d.cfg.DeviceLatency
}

// SetFaultInjector attaches a fault injector (nil disables injection).
// Subsequent requests may straggle far beyond the latency-tail model,
// lose their response entirely, or deliver it twice.
func (d *Device) SetFaultInjector(in *fault.Injector) { d.inj = in }

// WritesServed returns how many posted writes the device absorbed.
func (d *Device) WritesServed() uint64 { return d.writesServed }

// MMIORead performs one memory-mapped cache-line read on behalf of
// coreID, starting now (the issue time at the core). done receives the
// line when the response has fully arrived back at the host. sp is the
// access-lifecycle trace span the read belongs to (the zero Span when
// tracing is off); the device stamps its serve/fault edges on it. aw is
// likewise the read's latency-attribution ledger (nil when attribution
// is off): request arrival closes the downstream-transit interval and
// the response-send time closes the device-service interval; the
// upstream transit is closed by the host when the data lands.
//
// The delay module targets an end-to-end latency of exactly
// cfg.DeviceLatency, inclusive of the PCIe round trip (§IV-A); link
// congestion or an on-demand-module detour can only push the response
// later, never earlier.
func (d *Device) MMIORead(coreID int, addr uint64, sp trace.Span, aw *attrib.Access, done func(data []byte)) {
	issue := d.eng.Now()
	latency := d.effectiveLatency()
	if f, ok := d.inj.Straggle(); ok {
		latency = sim.Time(float64(latency) * f)
		sp.Point(issue, "fault-straggle")
	}
	// Read-request TLP travels downstream (header only).
	d.link.SendDown(0, 0, func() {
		sp.Point(d.eng.Now(), "req-at-device")
		aw.To(attrib.PhaseTransit, d.eng.Now())
		data, fromReplay := d.serve(coreID, addr)
		// The delay module timestamps the request and computes when the
		// response must leave so it lands at issue + latency.
		sendAt := issue + latency - d.link.Propagation() - d.cfg.TLPTime(platform.CacheLineBytes)
		if fromReplay {
			sp.Point(d.eng.Now(), "serve-replay")
		} else {
			// On-demand detour: the dataset DRAM read must finish first.
			sp.Point(d.eng.Now(), "serve-ondemand")
			earliest := d.eng.Now() + OnDemandDRAMLatency
			if earliest > sendAt {
				sendAt = earliest
			}
		}
		if sendAt < d.eng.Now() {
			sendAt = d.eng.Now()
		}
		if d.inj.DropCompletion() {
			// Response lost in the device; the host's timeout recovers.
			sp.Point(d.eng.Now(), "fault-drop")
			return
		}
		sp.Point(sendAt, "resp-sent")
		respond := func() {
			d.link.SendUpAt(sendAt, platform.CacheLineBytes, platform.CacheLineBytes, func() {
				// The delay-module wait until sendAt was device service.
				// Marked at arrival (never future-dated) so a straggling
				// attempt's response cannot corrupt a ledger the host
				// already closed or re-issued.
				aw.To(attrib.PhaseDevice, sendAt)
				done(data)
			})
		}
		respond()
		if d.inj.Duplicate() {
			// Spurious second response; the host must tolerate it.
			sp.Point(sendAt, "fault-duplicate")
			respond()
		}
	})
}

// MMIOWrite posts one memory-mapped cache-line write (§VII extension):
// a write TLP carries the line downstream; posted fires when the packet
// has drained onto the link (the store buffer can then release its
// entry). No response is generated.
func (d *Device) MMIOWrite(coreID int, addr uint64, posted func()) {
	d.writesServed++
	d.link.SendDown(platform.CacheLineBytes, platform.CacheLineBytes, posted)
}
