package device

import (
	"repro/internal/attrib"
	"repro/internal/hostmem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SWQEndpoint is the device side of the application-managed
// software-queue interface for one core (§IV-A, Software-Managed Queue
// Design): a doorbell register, a request fetcher that burst-reads
// descriptors from host memory, and the delay-module response path that
// writes response data and completion entries back into host memory.
type SWQEndpoint struct {
	dev    *Device
	coreID int
	rq     *hostmem.RequestQueue
	cq     *hostmem.CompletionQueue

	doorbell *sim.Gate // armed while the fetcher is parked
	cqNotify *sim.Gate // fired whenever a completion is posted

	data map[uint64][]byte // response lines landed in host memory, by descriptor ID

	fetchBursts  uint64 // DMA burst reads issued
	emptyBursts  uint64 // bursts that returned no descriptors
	doorbellHits uint64 // doorbell MMIO writes received

	stopped bool // fetcher shutdown requested (end of run)
}

// NewSWQEndpoint creates the endpoint for coreID over the given
// host-memory queues and starts its request fetcher.
func (d *Device) NewSWQEndpoint(coreID int, rq *hostmem.RequestQueue, cq *hostmem.CompletionQueue) *SWQEndpoint {
	e := &SWQEndpoint{
		dev:      d,
		coreID:   coreID,
		rq:       rq,
		cq:       cq,
		doorbell: d.eng.NewGate(),
		cqNotify: d.eng.NewGate(),
		data:     map[uint64][]byte{},
	}
	d.eng.Go("fetcher", e.runFetcher)
	return e
}

// Doorbell delivers the host's MMIO doorbell write to the device,
// restarting the parked fetcher when the write arrives. The host-side
// CPU cost of the uncached write is charged by the caller.
func (e *SWQEndpoint) Doorbell() {
	e.dev.link.SendDown(0, 0, func() {
		if e.dev.inj.DropDoorbell() {
			// Write lost at the device: the fetcher stays parked until the
			// host's timeout re-rings.
			return
		}
		e.doorbellHits++
		if !e.doorbell.Fired() {
			e.doorbell.Fire()
		}
	})
}

// CompletionGate returns a gate that fires the next time a completion is
// posted. Callers must obtain the gate before checking the completion
// queue to avoid a lost wakeup.
func (e *SWQEndpoint) CompletionGate() *sim.Gate { return e.cqNotify }

// Data returns the response line for a completed descriptor, consuming
// it (it models the host reading the line from the descriptor's target
// address).
func (e *SWQEndpoint) Data(id uint64) []byte {
	line := e.data[id]
	delete(e.data, id)
	return line
}

// FetchBursts returns the number of DMA burst reads issued.
func (e *SWQEndpoint) FetchBursts() uint64 { return e.fetchBursts }

// EmptyBursts returns how many bursts found no descriptors.
func (e *SWQEndpoint) EmptyBursts() uint64 { return e.emptyBursts }

// DoorbellHits returns how many doorbell writes the device received.
func (e *SWQEndpoint) DoorbellHits() uint64 { return e.doorbellHits }

// Stop shuts the request fetcher down after it drains its current work;
// the harness calls it at the end of a measured run so the fetcher's
// simulated process exits.
func (e *SWQEndpoint) Stop() {
	e.stopped = true
	if !e.doorbell.Fired() {
		e.doorbell.Fire()
	}
}

// runFetcher is the request fetcher state machine. Parked until a
// doorbell arrives, it then burst-reads descriptors from host memory and
// keeps reading "so long as at least one new descriptor is retrieved
// during the last burst" (§IV-A). When a burst comes back empty it sets
// the in-memory doorbell-request flag, performs one final burst read to
// close the race with a host that submitted after the empty burst but
// before the flag landed, and parks again.
func (e *SWQEndpoint) runFetcher(p *sim.Proc) {
	for {
		p.Wait(e.doorbell)
		if e.stopped {
			return
		}
		e.doorbell = e.dev.eng.NewGate() // re-arm for the next park

		for {
			burst := e.fetchBurst(p)
			if len(burst) > 0 {
				e.process(burst)
				continue
			}
			// Empty burst: publish the doorbell-request flag via a DMA
			// write, then re-check once.
			e.writeDoorbellFlag(p)
			final := e.fetchBurst(p)
			if len(final) > 0 {
				e.process(final)
				continue
			}
			break
		}
	}
}

// fetchBurst performs one DMA burst read of up to FetchBurst descriptors
// from the host request queue: an upstream read-request TLP, the host
// memory access, and the downstream completion TLP carrying the
// descriptors.
func (e *SWQEndpoint) fetchBurst(p *sim.Proc) []hostmem.Descriptor {
	e.fetchBursts++
	reqArrived := e.dev.eng.NewGate()
	e.dev.link.SendUp(0, 0, reqArrived.Fire)
	p.Wait(reqArrived)

	e.dev.hostDRAM.ReadBlocking(p)
	burst := e.rq.PopBurst(e.dev.cfg.FetchBurst)
	if len(burst) == 0 {
		e.emptyBursts++
	}

	payload := len(burst) * e.dev.cfg.DescriptorBytes
	descArrived := e.dev.eng.NewGate()
	e.dev.link.SendDown(payload, 0, descArrived.Fire)
	p.Wait(descArrived)
	return burst
}

// writeDoorbellFlag performs the small DMA write that sets the
// doorbell-request flag in host memory.
func (e *SWQEndpoint) writeDoorbellFlag(p *sim.Proc) {
	landed := e.dev.eng.NewGate()
	e.dev.link.SendUp(8, 0, func() {
		e.dev.hostDRAM.Write(landed)
	})
	p.Wait(landed)
	e.rq.SetDoorbellRequested()
}

// process forwards fetched descriptors to the replay module and
// schedules the delay-module response path for each: a response-data
// write into the descriptor's target address followed — strictly after,
// as the protocol requires (§IV-A) — by a completion-queue write.
// Processing is asynchronous: the fetcher immediately continues with its
// next burst while responses are in flight.
func (e *SWQEndpoint) process(burst []hostmem.Descriptor) {
	arrival := e.dev.eng.Now()
	for _, desc := range burst {
		desc := desc
		if desc.Write {
			e.processWrite(desc, arrival)
			continue
		}
		desc.Span.Point(arrival, "desc-fetched")
		// Time from submission to the fetch burst landing here is
		// descriptor queue wait (doorbell, park, burst DMA).
		desc.Attrib.To(attrib.PhaseQueueWait, arrival)
		data, fromReplay := e.dev.serve(e.coreID, desc.Addr)
		if fromReplay {
			desc.Span.Point(arrival, "serve-replay")
		} else {
			desc.Span.Point(arrival, "serve-ondemand")
		}
		lat := e.dev.effectiveLatency()
		if f, ok := e.dev.inj.Straggle(); ok {
			lat = sim.Time(float64(lat) * f)
			desc.Span.Point(arrival, "fault-straggle")
		}
		// The delay module times responses off the descriptor's
		// submission timestamp, so the emulated latency is measured
		// from the host's enqueue — but a response can never leave
		// before its descriptor has been fetched.
		sendAt := desc.Submitted + e.dev.cfg.InternalDelayFor(lat)
		if sendAt < arrival {
			sendAt = arrival
		}
		if !fromReplay {
			earliest := arrival + OnDemandDRAMLatency
			if earliest > sendAt {
				sendAt = earliest
			}
		}
		if e.dev.inj.DropCompletion() {
			// Both writes lost; the host's descriptor timeout resubmits.
			desc.Span.Point(arrival, "fault-drop")
			continue
		}
		desc.Span.Point(sendAt, "resp-sent")
		// Response-data write TLP, then host DRAM write.
		e.dev.link.SendUpAt(sendAt, platform.CacheLineBytes, platform.CacheLineBytes, func() {
			// The delay-module wait until the response left was device
			// service. Marked at arrival (never future-dated) so a
			// straggling descriptor's response cannot corrupt a ledger
			// the host already closed or resubmitted.
			desc.Attrib.To(attrib.PhaseDevice, sendAt)
			dataLanded := e.dev.eng.NewGate()
			e.dev.hostDRAM.Write(dataLanded)
			dataLanded.OnFire(func() {
				e.data[desc.ID] = data
				desc.Span.Point(e.dev.eng.Now(), "data-landed")
				desc.Attrib.To(attrib.PhaseTransit, e.dev.eng.Now())
			})
		})
		// Completion write queues behind the data write on the upstream
		// link, guaranteeing host-visible ordering.
		e.sendCompletion(sendAt, desc.ID, desc.Span, desc.Attrib)
		if e.dev.inj.Duplicate() {
			// Spurious second completion; the host scheduler discards
			// entries for descriptors it no longer tracks.
			desc.Span.Point(sendAt, "fault-duplicate")
			e.sendCompletion(sendAt, desc.ID, desc.Span, desc.Attrib)
		}
	}
}

// sendCompletion carries one completion entry upstream and lands it in
// the host completion queue, stamping the landing on the access span
// and marking completion wait on the attribution ledger (a duplicate
// completion's second mark clamps to zero on the closed ledger).
func (e *SWQEndpoint) sendCompletion(sendAt sim.Time, id uint64, sp trace.Span, aw *attrib.Access) {
	e.dev.link.SendUpAt(sendAt, e.dev.cfg.CompletionBytes, 0, func() {
		complLanded := e.dev.eng.NewGate()
		e.dev.hostDRAM.Write(complLanded)
		complLanded.OnFire(func() {
			sp.Point(e.dev.eng.Now(), "completion-posted")
			aw.To(attrib.PhaseComplWait, e.dev.eng.Now())
			e.postCompletion(id)
		})
	})
}

// postCompletion places a landed completion into the host queue. Under
// an injected CQCapacity bound a full queue defers the post — the
// device retries after the platform's backpressure delay until the host
// drains entries.
func (e *SWQEndpoint) postCompletion(id uint64) {
	if e.dev.inj.CQFull(e.cq.Len()) {
		e.dev.eng.After(e.dev.cfg.CQBackpressureDelay, func() { e.postCompletion(id) })
		return
	}
	e.cq.Post(id, e.dev.eng.Now())
	old := e.cqNotify
	e.cqNotify = e.dev.eng.NewGate()
	old.Fire()
}

// processWrite handles a write descriptor (§VII extension): the device
// DMA-reads the source line from host memory (read request upstream,
// data completion downstream), absorbs the store, and posts a
// completion the host scheduler discards.
func (e *SWQEndpoint) processWrite(desc hostmem.Descriptor, arrival sim.Time) {
	e.dev.writesServed++
	e.dev.link.SendUp(0, 0, func() {
		fetched := e.dev.eng.NewGate()
		e.dev.hostDRAM.Read(fetched)
		fetched.OnFire(func() {
			e.dev.link.SendDown(platform.CacheLineBytes, platform.CacheLineBytes, func() {
				// Store absorbed; completion flows back.
				e.dev.link.SendUp(e.dev.cfg.CompletionBytes, 0, func() {
					complLanded := e.dev.eng.NewGate()
					e.dev.hostDRAM.Write(complLanded)
					complLanded.OnFire(func() {
						e.postCompletion(desc.ID)
					})
				})
			})
		})
	})
}
