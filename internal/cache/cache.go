// Package cache models the on-chip cache as seen by device cache
// lines. The paper's memory-mapped interface marks the device BAR
// cacheable ("MMIO regions marked 'cacheable' can take advantage of
// locality", §III-B), so device lines with temporal locality hit
// on-chip and never reach the device — one of the structural advantages
// of the memory-mapped interface over software-managed queues, whose
// response buffers see no hardware caching or coherence (§V-C).
//
// The model is a set-associative, true-LRU cache over 64-byte lines.
// It is disabled by default (platform.Config.DeviceCacheLines = 0)
// because the paper's microbenchmark deliberately touches fresh lines;
// the locality extension experiment enables it.
package cache

import "fmt"

// LineSize is the cached granularity.
const LineSize = 64

// entry is one resident line.
type entry struct {
	addr uint64
	data []byte
}

// Cache is a set-associative LRU cache for device lines.
type Cache struct {
	setMask uint64
	ways    int
	sets    [][]entry // each set ordered MRU-first

	hits      uint64
	misses    uint64
	evictions uint64
}

// New creates a cache holding totalLines lines with the given
// associativity. totalLines must be a positive multiple of ways and the
// set count must be a power of two.
func New(totalLines, ways int) *Cache {
	if totalLines <= 0 || ways <= 0 || totalLines%ways != 0 {
		panic(fmt.Sprintf("cache: bad geometry %d lines / %d ways", totalLines, ways))
	}
	nsets := totalLines / ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", nsets))
	}
	sets := make([][]entry, nsets)
	for i := range sets {
		sets[i] = make([]entry, 0, ways)
	}
	return &Cache{setMask: uint64(nsets - 1), ways: ways, sets: sets}
}

// set returns the set index for an address.
func (c *Cache) set(addr uint64) uint64 {
	return (addr / LineSize) & c.setMask
}

// Lookup returns the line containing addr if resident, promoting it to
// MRU.
func (c *Cache) Lookup(addr uint64) ([]byte, bool) {
	addr &^= LineSize - 1
	s := c.sets[c.set(addr)]
	for i, e := range s {
		if e.addr == addr {
			// Promote to MRU.
			copy(s[1:i+1], s[:i])
			s[0] = e
			c.hits++
			return e.data, true
		}
	}
	c.misses++
	return nil, false
}

// Insert fills the line containing addr, evicting the set's LRU entry
// if the set is full. It reports the evicted address, if any.
func (c *Cache) Insert(addr uint64, data []byte) (evicted uint64, evictedOK bool) {
	addr &^= LineSize - 1
	idx := c.set(addr)
	s := c.sets[idx]
	for i, e := range s {
		if e.addr == addr {
			// Refill of a resident line: update and promote.
			copy(s[1:i+1], s[:i])
			s[0] = entry{addr: addr, data: data}
			return 0, false
		}
	}
	if len(s) == c.ways {
		victim := s[len(s)-1]
		copy(s[1:], s[:len(s)-1])
		s[0] = entry{addr: addr, data: data}
		c.evictions++
		return victim.addr, true
	}
	s = append(s, entry{})
	copy(s[1:], s[:len(s)-1])
	s[0] = entry{addr: addr, data: data}
	c.sets[idx] = s
	return 0, false
}

// Invalidate drops the line containing addr if resident — the
// coherence action a device write triggers in every core's cache
// (§V-C).
func (c *Cache) Invalidate(addr uint64) bool {
	addr &^= LineSize - 1
	idx := c.set(addr)
	s := c.sets[idx]
	for i, e := range s {
		if e.addr == addr {
			c.sets[idx] = append(s[:i], s[i+1:]...)
			return true
		}
	}
	return false
}

// Hits returns lookup hits so far.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns lookup misses so far.
func (c *Cache) Misses() uint64 { return c.misses }

// Evictions returns capacity evictions so far.
func (c *Cache) Evictions() uint64 { return c.evictions }

// HitRate returns hits over lookups (0 when idle).
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
