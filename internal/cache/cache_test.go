package cache

import (
	"testing"
	"testing/quick"
)

func TestLookupMissThenHit(t *testing.T) {
	c := New(64, 8)
	if _, ok := c.Lookup(0x1000); ok {
		t.Fatal("cold lookup hit")
	}
	line := make([]byte, LineSize)
	line[0] = 9
	c.Insert(0x1000, line)
	got, ok := c.Lookup(0x1000)
	if !ok || got[0] != 9 {
		t.Fatalf("hit = %v data = %v", ok, got)
	}
	// Unaligned addresses map to the containing line.
	if _, ok := c.Lookup(0x1004); !ok {
		t.Error("unaligned lookup missed resident line")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if r := c.HitRate(); r < 0.66 || r > 0.67 {
		t.Errorf("hit rate %.3f", r)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 ways, 1 set: the third distinct line evicts the LRU.
	c := New(2, 2)
	c.Insert(0*LineSize, nil)
	c.Insert(1*LineSize*2, nil) // same set (1 set total)
	c.Lookup(0)                 // promote line 0 to MRU
	evicted, ok := c.Insert(4*LineSize, nil)
	if !ok || evicted != 1*LineSize*2 {
		t.Errorf("evicted %#x (%v), want the LRU line", evicted, ok)
	}
	if _, ok := c.Lookup(0); !ok {
		t.Error("MRU line evicted instead")
	}
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d", c.Evictions())
	}
}

func TestSetIsolation(t *testing.T) {
	// 2 sets x 1 way: lines in different sets do not evict each other.
	c := New(2, 1)
	c.Insert(0, nil)        // set 0
	c.Insert(LineSize, nil) // set 1
	if _, ok := c.Lookup(0); !ok {
		t.Error("set-0 line evicted by set-1 insert")
	}
	if _, ok := c.Lookup(LineSize); !ok {
		t.Error("set-1 line missing")
	}
}

func TestReinsertUpdatesData(t *testing.T) {
	c := New(4, 4)
	a := make([]byte, LineSize)
	a[0] = 1
	b := make([]byte, LineSize)
	b[0] = 2
	c.Insert(0x40, a)
	if ev, ok := c.Insert(0x40, b); ok {
		t.Errorf("refill evicted %#x", ev)
	}
	got, _ := c.Lookup(0x40)
	if got[0] != 2 {
		t.Errorf("refill did not update data: %d", got[0])
	}
}

func TestInvalidate(t *testing.T) {
	c := New(8, 8)
	c.Insert(0x80, nil)
	if !c.Invalidate(0x84) { // unaligned: same line
		t.Fatal("invalidate missed resident line")
	}
	if c.Invalidate(0x80) {
		t.Error("double invalidate succeeded")
	}
	if _, ok := c.Lookup(0x80); ok {
		t.Error("line still resident after invalidate")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, geom := range [][2]int{{0, 1}, {8, 3}, {24, 2} /* 12 sets: not pow2 */} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v did not panic", geom)
				}
			}()
			New(geom[0], geom[1])
		}()
	}
}

// Property: the cache never holds more than totalLines lines, and a
// just-inserted line always hits immediately.
func TestCapacityProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(32, 4)
		for _, a := range addrs {
			addr := uint64(a) * LineSize
			c.Insert(addr, nil)
			if _, ok := c.Lookup(addr); !ok {
				return false
			}
		}
		resident := 0
		for _, s := range c.sets {
			resident += len(s)
			if len(s) > 4 {
				return false
			}
		}
		return resident <= 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: with a working set no larger than one set's ways, every
// re-access hits (true LRU has no thrashing within capacity).
func TestNoThrashWithinWaysProperty(t *testing.T) {
	f := func(rounds uint8) bool {
		c := New(16, 4) // 4 sets x 4 ways
		// 4 lines in the same set (stride = 4 sets * 64).
		for i := 0; i < 4; i++ {
			c.Insert(uint64(i)*4*LineSize, nil)
		}
		for r := 0; r < int(rounds%16)+1; r++ {
			for i := 0; i < 4; i++ {
				if _, ok := c.Lookup(uint64(i) * 4 * LineSize); !ok {
					return false
				}
			}
		}
		return c.Evictions() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
