package repro_test

// One benchmark per table/figure of the paper's evaluation (plus the
// ablations DESIGN.md calls out). Each benchmark regenerates its figure
// with a reduced sweep per iteration and reports the headline scalar as
// a custom metric, so `go test -bench=.` both exercises the full
// pipeline and prints the reproduced results.

import (
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/stats"
)

// benchSuite is small enough to run repeatedly under the bench harness
// while still reaching steady state.
func benchSuite() experiments.Suite {
	s := experiments.Quick()
	s.Iterations = 500
	s.AppLookups = 100
	s.Threads = []int{1, 2, 4, 8, 10, 16}
	return s
}

func reportPeak(b *testing.B, t *stats.Table, label, metric string) {
	b.Helper()
	series := t.FindSeries(label)
	if series == nil {
		b.Fatalf("series %q missing from %s", label, t.ID)
	}
	_, peak := series.Peak()
	b.ReportMetric(peak, metric)
}

func BenchmarkFig2(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.Fig2()
	}
	reportPeak(b, t, "1us", "peak-norm-IPC")
}

func BenchmarkFig3(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.Fig3()
	}
	reportPeak(b, t, "1us", "peak-norm-IPC")
}

func BenchmarkFig4(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.Fig4()
	}
	reportPeak(b, t, "work=1000", "peak-norm-IPC")
}

func BenchmarkFig5(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.Fig5()
	}
	reportPeak(b, t, "4us 8c", "peak-norm-IPC")
}

func BenchmarkFig6(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.Fig6()
	}
	reportPeak(b, t, "4-read", "peak-norm-IPC")
}

func BenchmarkFig7(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.Fig7()
	}
	reportPeak(b, t, "swqueue 1us", "peak-norm-IPC")
}

func BenchmarkFig8(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.Fig8()
	}
	reportPeak(b, t, "1us 8c", "peak-norm-IPC")
}

func BenchmarkFig9(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.Fig9()
	}
	reportPeak(b, t, "1c 4-read", "peak-norm-IPC")
}

func BenchmarkFig10(b *testing.B) {
	s := benchSuite()
	s.Threads = []int{1, 2, 4, 8}
	var tables []*stats.Table
	for i := 0; i < b.N; i++ {
		tables = s.Fig10()
	}
	// Headline of Fig 10d: 8-core software queues versus the 1-core
	// DRAM baseline (paper: 1.2x-2.0x).
	for _, t := range tables {
		if t.ID == "fig10d" {
			reportPeak(b, t, t.Series[2].Label, "peak-norm-perf")
		}
	}
}

func BenchmarkAblationLFB(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.AblationLFB()
	}
	reportPeak(b, t, "4us", "peak-norm-IPC")
}

func BenchmarkAblationChipQueue(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.AblationChipQueue()
	}
	reportPeak(b, t, "1us 8c (4x link bandwidth)", "peak-norm-IPC")
}

func BenchmarkAblationSwitchCost(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.AblationSwitchCost()
	}
	reportPeak(b, t, "1us 10t", "peak-norm-IPC")
}

func BenchmarkAblationSWQOpts(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.AblationSWQOpts()
	}
	reportPeak(b, t, "1us 16t", "peak-norm-IPC")
}

// Extension experiments (beyond the paper; see DESIGN.md).

func BenchmarkExtKernelQueue(b *testing.B) {
	s := benchSuite()
	s.Threads = []int{1, 8, 16}
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.ExpKernelQueue()
	}
	reportPeak(b, t, "kernelq", "peak-norm-IPC")
}

func BenchmarkExtSMT(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.ExpSMT()
	}
	reportPeak(b, t, "1us", "peak-norm-IPC")
}

func BenchmarkExtWrites(b *testing.B) {
	s := benchSuite()
	s.Threads = []int{1, 8, 10}
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.ExpWrites()
	}
	reportPeak(b, t, "prefetch +4w", "peak-norm-IPC")
}

func BenchmarkExtMemBus(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.ExpMemBus()
	}
	reportPeak(b, t, "1us membus+rule", "peak-norm-IPC")
}

func BenchmarkExtTailLatency(b *testing.B) {
	s := benchSuite()
	s.Threads = []int{4, 10, 16}
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.ExpTailLatency()
	}
	reportPeak(b, t, "prefetch 1%-tail", "peak-norm-IPC")
}

func BenchmarkAblationRule(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.AblationRule()
	}
	reportPeak(b, t, "entries per microsecond", "entries-per-us")
}

func BenchmarkExtDevices(b *testing.B) {
	s := benchSuite()
	s.Threads = []int{1, 8}
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.ExpDevices()
	}
	reportPeak(b, t, "flash-25us", "peak-norm-IPC")
}

func BenchmarkExtPointerChase(b *testing.B) {
	s := benchSuite()
	s.Threads = []int{1, 8, 10}
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.ExpPointerChase()
	}
	reportPeak(b, t, "chase prefetch", "peak-norm-IPC")
}

func BenchmarkExtLocality(b *testing.B) {
	s := benchSuite()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = s.ExpLocality()
	}
	reportPeak(b, t, "prefetch", "peak-norm-perf")
}

// Mechanism micro-benchmarks: cost of one simulated run, for profiling
// the simulator itself.

func BenchmarkRunPrefetch(b *testing.B) {
	cfg := repro.DefaultConfig()
	w := repro.NewMicrobench(500, repro.DefaultWorkCount, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		must(repro.RunPrefetch(cfg, w, 10, false))
	}
}

func BenchmarkRunSWQueue(b *testing.B) {
	cfg := repro.DefaultConfig()
	w := repro.NewMicrobench(500, repro.DefaultWorkCount, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		must(repro.RunSWQueue(cfg, w, 10, false))
	}
}

func BenchmarkRunDRAMBaseline(b *testing.B) {
	cfg := repro.DefaultConfig()
	w := repro.NewMicrobench(2000, repro.DefaultWorkCount, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		must(repro.RunDRAMBaseline(cfg, w))
	}
}
