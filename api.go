package repro

import (
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Time is a simulated duration in picoseconds.
type Time = sim.Time

// Convenient duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
)

// Config is the calibrated platform description (Xeon E5-2670v3 host,
// PCIe Gen2 x8 link, configurable-latency device emulator). Every field
// is documented with the paper passage that pins it down.
type Config = platform.Config

// FaultPlan configures deterministic fault injection (Config.Faults):
// a seed plus per-layer fault probabilities. The zero value disables
// injection entirely.
type FaultPlan = fault.Plan

// DefaultConfig returns the paper's testbed with a 1 us device.
func DefaultConfig() Config { return platform.Default() }

// Workload is a benchmark runnable under every access mechanism.
type Workload = core.Workload

// Result is one measured run plus its internal diagnostics.
type Result = core.Result

// Measurement is the paper-facing summary of a run.
type Measurement = stats.Measurement

// Table is a figure-shaped result set.
type Table = stats.Table

// NewMicrobench returns the §IV-C microbenchmark: itersPerCore loop
// iterations, each performing reads independent fresh-cache-line device
// accesses followed by workInstr dependent work instructions.
func NewMicrobench(itersPerCore, workInstr, reads int) Workload {
	return workload.NewMicrobench(itersPerCore, workInstr, reads)
}

// DefaultWorkCount is the microbenchmark's default work-count.
const DefaultWorkCount = workload.DefaultWorkCount

// NewBloom returns the Bloom-filter application benchmark.
func NewBloom(bits uint64, kHash, nKeys, lookupsPerCore, workInstr int) *workload.Bloom {
	return workload.NewBloom(bits, kHash, nKeys, lookupsPerCore, workInstr)
}

// NewMemcached returns the key-value-store application benchmark.
func NewMemcached(items, valueLines, lookupsPerCore, workInstr int) *workload.Memcached {
	return workload.NewMemcached(items, valueLines, lookupsPerCore, workInstr)
}

// NewKronecker generates a Graph500-style Kronecker graph.
func NewKronecker(scale, edgefactor int, seed int64) *workload.Graph {
	return workload.NewKronecker(scale, edgefactor, seed)
}

// NewBFS returns the Graph500 BFS application benchmark over g.
func NewBFS(g *workload.Graph, sources []int, maxVisits, workInstr int) *workload.BFS {
	return workload.NewBFS(g, sources, maxVisits, workInstr)
}

// RunDRAMBaseline measures the single-threaded on-demand DRAM baseline
// every result is normalized to (§IV-C). It returns an error for an
// invalid configuration, as do all Run functions; under fault injection
// a run that cannot complete (a core deadlocked past recovery) is also
// reported as an error rather than a truncated measurement.
func RunDRAMBaseline(cfg Config, w Workload) (Result, error) { return core.RunDRAMBaseline(cfg, w) }

// RunOnDemandDevice measures unmodified software demand-loading the
// microsecond device (Fig 2).
func RunOnDemandDevice(cfg Config, w Workload) (Result, error) {
	return core.RunOnDemandDevice(cfg, w)
}

// RunPrefetch measures the prefetch + user-level-context-switch
// mechanism (Listing 1).
func RunPrefetch(cfg Config, w Workload, threadsPerCore int, useReplay bool) (Result, error) {
	return core.RunPrefetch(cfg, w, threadsPerCore, useReplay)
}

// RunSWQueue measures the application-managed software-queue mechanism.
func RunSWQueue(cfg Config, w Workload, threadsPerCore int, useReplay bool) (Result, error) {
	return core.RunSWQueue(cfg, w, threadsPerCore, useReplay)
}

// RunKernelQueue measures kernel-managed software queues — the
// interface the paper rules out analytically in §III-A, quantified.
func RunKernelQueue(cfg Config, w Workload, threadsPerCore int, useReplay bool) (Result, error) {
	return core.RunKernelQueue(cfg, w, threadsPerCore, useReplay)
}

// RunSMT measures on-demand access with hardware multithreading
// (§III-B): cfg.SMTContexts contexts hide each other's stalls.
func RunSMT(cfg Config, w Workload) (Result, error) { return core.RunSMT(cfg, w) }

// NewMicrobenchRW returns the read/write microbenchmark of the §VII
// write-path extension.
func NewMicrobenchRW(itersPerCore, workInstr, reads, writes int) Workload {
	return workload.NewMicrobenchRW(itersPerCore, workInstr, reads, writes)
}

// Suite is the experiment harness configuration.
type Suite = experiments.Suite

// DefaultSuite returns the publication sweep of every figure.
func DefaultSuite() Suite { return experiments.Default() }

// QuickSuite returns a reduced sweep for smoke runs.
func QuickSuite() Suite { return experiments.Quick() }
