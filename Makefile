# Taming the Killer Microsecond — reproduction workflows.

GO ?= go

.PHONY: all test race bench bench-engine bench-baseline bench-cluster bench-cluster-baseline figures fleet fleet-shards extensions examples cover clean serve sweep-par chaos

all: test

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Engine + sweep throughput benchmarks, gated against the committed
# baseline (fails on a >25% rate regression; see cmd/benchgate).
bench-engine:
	$(GO) test -bench . -benchtime=0.2s -count=3 -run '^$$' ./internal/sim/ ./internal/experiments/ | tee bench_engine.txt
	$(GO) run ./cmd/benchgate -baseline BENCH_engine.json -input bench_engine.txt

# Rewrite BENCH_engine.json from a fresh run on this machine.
bench-baseline:
	$(GO) test -bench . -benchtime=0.2s -count=3 -run '^$$' ./internal/sim/ ./internal/experiments/ | tee bench_engine.txt
	$(GO) run ./cmd/benchgate -baseline BENCH_engine.json -update -input bench_engine.txt

# Regenerate every paper figure + ablation (text) and per-figure CSVs.
figures:
	$(GO) run ./cmd/killerusec -all -outdir figures_csv

# Full paper sweep across all cores with an on-disk cell cache —
# byte-identical output to the serial `figures` target.
sweep-par:
	$(GO) run ./cmd/killerusec -all -parallel $(shell nproc 2>/dev/null || sysctl -n hw.ncpu) -cachedir .kucache -outdir figures_csv

# Cluster-scale fleet sweep: routing policies, arrival shapes, and
# backend mechanisms vs fleet-merged tail latency, rendered with the
# per-instance saturation view. Fleet cells shard their engine
# advances across the cores -parallel leaves free (see -shards).
fleet:
	$(GO) run ./cmd/killerusec -fleet -json fleet_run.json
	$(GO) run ./cmd/kurec fleet fleet_run.json -instances

# Determinism gate for the sharded fleet executor: the quick fleet
# sweep must be byte-identical at -shards 1 and -shards 4.
fleet-shards:
	$(GO) run ./cmd/killerusec -fleet -quick -shards 1 -json fleet_s1.json > fleet_s1.txt
	$(GO) run ./cmd/killerusec -fleet -quick -shards 4 -json fleet_s4.json > fleet_s4.txt
	cmp fleet_s1.json fleet_s4.json
	cmp fleet_s1.txt fleet_s4.txt
	@echo "fleet reports byte-identical at -shards 1 and -shards 4"

# Sharded fleet benchmarks, gated against the committed baseline
# (rate floors everywhere; on >=4-proc machines also a >=2x shards=4
# speedup on the mechs and prerouted configurations).
bench-cluster:
	$(GO) test -bench BenchmarkFleet -benchtime=0.3s -count=3 -run '^$$' ./internal/cluster/ | tee bench_cluster.txt
	$(GO) run ./cmd/benchgate -baseline BENCH_cluster.json -input bench_cluster.txt

# Refresh BENCH_cluster.json's measured rates from this machine
# (hand-pinned speedup gates survive the update).
bench-cluster-baseline:
	$(GO) test -bench BenchmarkFleet -benchtime=0.3s -count=3 -run '^$$' ./internal/cluster/ | tee bench_cluster.txt
	$(GO) run ./cmd/benchgate -baseline BENCH_cluster.json -update -input bench_cluster.txt

# Run the sweep service daemon on :8080 with crash recovery.
serve:
	$(GO) run ./cmd/kurecd -addr :8080 -journal kurecd.wal -cachedir .kucache

# Crash-recovery end-to-end: SIGKILL a real kurecd mid-sweep at seeded
# points, restart it over the same journal + cache dir, and require a
# byte-identical recovered report (see internal/chaos).
chaos:
	$(GO) test -race -v -count=1 ./internal/chaos/

extensions:
	$(GO) run ./cmd/killerusec -ext

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mechanisms
	$(GO) run ./examples/graphsearch
	$(GO) run ./examples/kvcache
	$(GO) run ./examples/queuesizing

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -rf figures_csv cover.out .kucache bench_engine.txt bench_cluster.txt kurecd.wal kurecd.wal.reports fleet_run.json fleet_s1.json fleet_s1.txt fleet_s4.json fleet_s4.txt
