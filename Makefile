# Taming the Killer Microsecond — reproduction workflows.

GO ?= go

.PHONY: all test race bench figures extensions examples cover clean

all: test

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure + ablation (text) and per-figure CSVs.
figures:
	$(GO) run ./cmd/killerusec -all -outdir figures_csv

extensions:
	$(GO) run ./cmd/killerusec -ext

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mechanisms
	$(GO) run ./examples/graphsearch
	$(GO) run ./examples/kvcache
	$(GO) run ./examples/queuesizing

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -rf figures_csv cover.out
