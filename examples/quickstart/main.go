// Quickstart: reproduce the paper's headline result in a few lines.
//
// A 1 us storage device accessed on demand is catastrophically slow, but
// the same device accessed with software prefetches and ~30 ns
// user-level context switches approaches DRAM performance once ~10
// threads are hiding the latency (Fig 3 of the paper).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig() // Xeon E5-2670v3 host, 1us device on PCIe Gen2 x8
	ubench := repro.NewMicrobench(4000, repro.DefaultWorkCount, 1)

	// Everything is normalized to the single-threaded on-demand DRAM
	// baseline, exactly as in the paper (§IV-C).
	baseline := must(repro.RunDRAMBaseline(cfg, ubench))
	fmt.Printf("DRAM baseline:      %6.1f ns/iteration\n",
		baseline.IterationTime()*1e9)

	// Unmodified software, on-demand loads from the 1us device: abysmal.
	ondemand := must(repro.RunOnDemandDevice(cfg, ubench))
	fmt.Printf("on-demand @ 1us:    %6.3f of DRAM  (the Killer Microsecond)\n",
		ondemand.NormalizedTo(baseline.Measurement))

	// Listing 1: prefetcht0 + user-level context switch, more threads.
	fmt.Println("\nprefetch + 30ns user-level context switch:")
	for _, threads := range []int{1, 2, 4, 8, 10, 12, 16} {
		r := must(repro.RunPrefetch(cfg, ubench, threads, false))
		norm := r.NormalizedTo(baseline.Measurement)
		fmt.Printf("  %2d threads: %5.3f of DRAM   (max %2d lines in flight)\n",
			threads, norm, r.Diag.MaxLFB)
	}
	fmt.Println("\nThe knee at 10 threads is the per-core Line Fill Buffer limit")
	fmt.Println("(10 on all state-of-the-art Xeons, §V-B) — not a property of")
	fmt.Println("the mechanism. Lift it and even 4us devices reach DRAM parity:")

	cfg4 := cfg.WithLatency(4 * repro.Microsecond)
	cfg4.LFBPerCore = 80 // the paper's rule: 20 x latency-in-us
	cfg4.ChipQueueMMIO = 1024
	base4 := must(repro.RunDRAMBaseline(cfg4, ubench))
	r := must(repro.RunPrefetch(cfg4, ubench, 100, false))
	fmt.Printf("  4us device, 80 LFBs, 100 threads: %.3f of DRAM\n",
		r.NormalizedTo(base4.Measurement))
}

// must unwraps a run result; the examples treat any failure as fatal.
func must(r repro.Result, err error) repro.Result {
	if err != nil {
		panic(err)
	}
	return r
}
