// Mechanisms: a guided tour of every device-access interface in the
// paper's taxonomy (§III) plus this repo's extensions, on one workload.
//
// It answers the paper's central question empirically: which of the
// existing interface styles can hide a microsecond, and what does each
// cost?
//
//	go run ./examples/mechanisms
package main

import (
	"fmt"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig() // 1us device
	ub := repro.NewMicrobench(2500, repro.DefaultWorkCount, 1)
	base := must(repro.RunDRAMBaseline(cfg, ub))
	norm := func(r repro.Result) float64 { return r.NormalizedTo(base.Measurement) }

	fmt.Println("One workload, every interface (1us device, normalized to DRAM):")
	fmt.Println()

	fmt.Printf("%-42s %6.3f\n", "on-demand loads (unmodified software)", norm(must(repro.RunOnDemandDevice(cfg, ub))))
	fmt.Printf("%-42s %6.3f\n", "SMT, 2 hardware contexts (§III-B)", norm(must(repro.RunSMT(cfg, ub))))
	fmt.Printf("%-42s %6.3f\n", "kernel-managed queues, 16 threads (§III-A)", norm(must(repro.RunKernelQueue(cfg, ub, 16, false))))
	fmt.Printf("%-42s %6.3f\n", "application-managed queues, 16 threads", norm(must(repro.RunSWQueue(cfg, ub, 16, false))))
	pf := must(repro.RunPrefetch(cfg, ub, 10, false))
	fmt.Printf("%-42s %6.3f\n", "prefetch + 30ns switches, 10 threads", norm(pf))

	fmt.Println()
	fmt.Printf("prefetch per-access latency seen by threads: P50 %.0fns  P99 %.0fns\n",
		pf.Diag.AccessP50Ns, pf.Diag.AccessP99Ns)

	// The write path (§VII): adding posted writes costs the prefetch
	// mechanism almost nothing.
	rw := repro.NewMicrobenchRW(2500, repro.DefaultWorkCount, 1, 2)
	rwBase := must(repro.RunDRAMBaseline(cfg, rw))
	r := must(repro.RunPrefetch(cfg, rw, 10, false))
	fmt.Printf("\nwith 2 posted writes per iteration: %.3f (%d writes drained through the store buffer)\n",
		r.NormalizedTo(rwBase.Measurement), r.Diag.Writes)

	// A heavy latency tail exposes the round-robin scheduler's
	// head-of-line blocking — and the FIFO software queue's resilience.
	tail := cfg
	tail.DeviceLatencyTailProb = 0.01
	tBase := must(repro.RunDRAMBaseline(tail, ub))
	tp := must(repro.RunPrefetch(tail, ub, 10, false))
	ts := must(repro.RunSWQueue(tail, ub, 16, false))
	fmt.Printf("\nwith a 1%% 10x latency tail:\n")
	fmt.Printf("  prefetch 10t: %.3f (P99 %.0fns — the round-robin core waits out stragglers)\n",
		tp.NormalizedTo(tBase.Measurement), tp.Diag.AccessP99Ns)
	fmt.Printf("  swqueue 16t:  %.3f (completion-order scheduling absorbs them)\n",
		ts.NormalizedTo(tBase.Measurement))

	// And the endgame (§V-B implications): the paper's proposed fixes.
	fixed := cfg.AsMemBus().WithCores(8)
	fixed.LFBPerCore = 20
	fixed.ChipQueueMMIO = 160
	fr := must(repro.RunPrefetch(fixed, ub, 20, false))
	fmt.Printf("\n8 cores on a memory-class interconnect with rule-sized queues: %.2fx single-core DRAM\n",
		fr.NormalizedTo(base.Measurement))
	fmt.Println("\"successful usage of microsecond-level devices is not predicated")
	fmt.Println(" on drastically new hardware and software architectures\" (§VII)")
}

// must unwraps a run result; the examples treat any failure as fatal.
func must(r repro.Result, err error) repro.Result {
	if err != nil {
		panic(err)
	}
	return r
}
