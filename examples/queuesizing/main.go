// Queuesizing: validate the paper's hardware-provisioning rule (§V-B):
//
//	per-core queue   ~ 20 x device-latency-in-us entries
//	chip-level queue ~ 20 x device-latency-in-us x cores entries
//
// The example sweeps the per-core LFB count and the chip-level shared
// queue, showing that today's sizes (10 and 14) are the only thing
// standing between conventional hardware and DRAM-parity access to
// microsecond devices — and that at eight cores, the PCIe wire itself
// becomes the next wall, motivating the paper's suggestion to attach
// such devices to the memory interconnect.
//
//	go run ./examples/queuesizing
package main

import (
	"fmt"

	"repro"
)

func main() {
	ubench := repro.NewMicrobench(3000, repro.DefaultWorkCount, 1)

	fmt.Println("== Per-core queue (LFB) sizing, 4us device, 100 threads ==")
	fmt.Println("   rule: 20 x 4us = 80 entries")
	for _, lfb := range []int{10, 20, 40, 80, 120} {
		cfg := repro.DefaultConfig().WithLatency(4 * repro.Microsecond)
		cfg.LFBPerCore = lfb
		cfg.ChipQueueMMIO = 4096 // isolate the per-core limit
		base := must(repro.RunDRAMBaseline(cfg, ubench))
		r := must(repro.RunPrefetch(cfg, ubench, 100, false))
		marker := ""
		if lfb == 80 {
			marker = "  <- paper's rule"
		}
		fmt.Printf("  %3d LFBs: %5.3f of DRAM%s\n", lfb, r.NormalizedTo(base.Measurement), marker)
	}

	fmt.Println("\n== Chip-level queue sizing, 1us device, 8 cores x 12 threads ==")
	fmt.Println("   rule: 20 x 1us x 8 cores = 160 entries")
	for _, q := range []int{14, 56, 160, 224} {
		cfg := repro.DefaultConfig().WithCores(8)
		cfg.LFBPerCore = 20 // per-core rule for 1us
		cfg.ChipQueueMMIO = q
		base := must(repro.RunDRAMBaseline(cfg, ubench))
		stock := must(repro.RunPrefetch(cfg, ubench, 12, false))

		cfg.PCIeBandwidth *= 4 // memory-interconnect-class link
		fat := must(repro.RunPrefetch(cfg, ubench, 12, false))
		fmt.Printf("  %3d entries: %5.2fx (PCIe Gen2 x8)   %5.2fx (4x link)\n",
			q, stock.NormalizedTo(base.Measurement), fat.NormalizedTo(base.Measurement))
	}
	fmt.Println("\nOn the stock link, queue sizing alone saturates the wire at ~45M")
	fmt.Println("lines/s; the 4x link column shows the full 8-core scaling the")
	fmt.Println("paper's memory-interconnect attachment would unlock.")

	fmt.Println("\n== Context-switch budget (1us device, 10 threads) ==")
	for _, ctx := range []repro.Time{20 * repro.Nanosecond, 50 * repro.Nanosecond,
		500 * repro.Nanosecond, 2 * repro.Microsecond} {
		cfg := repro.DefaultConfig()
		cfg.CtxSwitch = ctx
		base := must(repro.RunDRAMBaseline(cfg, ubench))
		r := must(repro.RunPrefetch(cfg, ubench, 10, false))
		fmt.Printf("  switch %7v: %5.3f of DRAM\n", ctx, r.NormalizedTo(base.Measurement))
	}
	fmt.Println("(the original GNU Pth switched in ~2us; the paper's optimized")
	fmt.Println(" library reaches 20-50ns, §IV-B — the mechanism needs that)")
}

// must unwraps a run result; the examples treat any failure as fatal.
func must(r repro.Result, err error) repro.Result {
	if err != nil {
		panic(err)
	}
	return r
}
