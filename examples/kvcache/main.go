// Kvcache: Memcached-style lookups with values on microsecond storage
// (the paper's third application case study, §IV-C / Fig 10), plus the
// Bloom-filter benchmark as a pre-filter — a realistic composition of
// the paper's two batch-of-four applications.
//
// The lookup path mirrors a production cache tier: a Bloom filter
// screens out absent keys, then the value (4 cache lines) is fetched.
// Both core data structures live on the emulated device; the hash index
// stays in DRAM, per the paper's methodology ("hot data structures ...
// are all placed in the main memory", §IV-C).
//
//	go run ./examples/kvcache
package main

import (
	"fmt"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig()
	const lookups = 1200

	filter := repro.NewBloom(1<<20, 4, 4096, lookups, repro.DefaultWorkCount)
	store := repro.NewMemcached(4096, 4, lookups, repro.DefaultWorkCount)

	fmt.Println("== Bloom filter stage (4 independent probes per lookup) ==")
	fbase := must(repro.RunDRAMBaseline(cfg, filter))
	for _, threads := range []int{1, 2, 3, 8} {
		filter.Reset()
		r := must(repro.RunPrefetch(cfg, filter, threads, true))
		fmt.Printf("  prefetch %d threads: %5.3f of DRAM  (%d/%d lookups positive)\n",
			threads, r.NormalizedTo(fbase.Measurement), filter.Positives/2, filter.Lookups/2)
	}
	fmt.Println("  (3 threads x 4 probes exhaust the 10 LFBs: the Fig 6 4-read knee)")

	fmt.Println("\n== Value store stage (one 256B value = 4 lines per hit) ==")
	mbase := must(repro.RunDRAMBaseline(cfg, store))
	for _, threads := range []int{1, 3, 8, 16} {
		store.Reset()
		pf := must(repro.RunPrefetch(cfg, store, threads, true))
		store.Reset()
		sq := must(repro.RunSWQueue(cfg, store, threads, true))
		fmt.Printf("  %2d threads: prefetch %5.3f   swqueue %5.3f   (of DRAM)\n",
			threads, pf.NormalizedTo(mbase.Measurement), sq.NormalizedTo(mbase.Measurement))
	}

	store.Reset()
	r := must(repro.RunSWQueue(cfg, store, 8, true))
	fmt.Printf("\nverification: %d lookups over both passes, %d value mismatches, %d replay misses\n",
		store.Lookups, store.BadValues, r.Diag.OnDemand)

	fmt.Println("\n== End-to-end tier cost per lookup (filter + store, 8 threads) ==")
	filter.Reset()
	store.Reset()
	f8 := must(repro.RunPrefetch(cfg, filter, 8, true))
	s8 := must(repro.RunPrefetch(cfg, store, 8, true))
	perLookup := (f8.ElapsedSeconds + s8.ElapsedSeconds) / lookups * 1e9
	fmt.Printf("  %.0f ns per screened lookup on a 1us device (DRAM tier: %.0f ns)\n",
		perLookup, (fbase.ElapsedSeconds+mbase.ElapsedSeconds)/lookups*1e9)
}

// must unwraps a run result; the examples treat any failure as fatal.
func must(r repro.Result, err error) repro.Result {
	if err != nil {
		panic(err)
	}
	return r
}
