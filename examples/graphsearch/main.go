// Graphsearch: Graph500-style BFS with its adjacency lists stored on a
// microsecond-latency device (the paper's first application case study,
// §IV-C / Fig 10).
//
// The example builds a Kronecker graph, stores the CSR adjacency array
// on the emulated device, and compares traversal performance across the
// access mechanisms — including the full two-run record/replay
// methodology the paper's FPGA platform required (§IV-A).
//
//	go run ./examples/graphsearch
package main

import (
	"fmt"

	"repro"
)

func main() {
	const scale, edgefactor = 11, 16
	g := repro.NewKronecker(scale, edgefactor, 20180610)
	fmt.Printf("Kronecker graph: scale %d (%d vertices, %d directed edges)\n",
		scale, g.V, g.Edges())

	sources := []int{1, 57, 123, 400, 811, 1200, 1500, 1999}
	bfs := repro.NewBFS(g, sources, 64, repro.DefaultWorkCount)
	fmt.Printf("workload: %d truncated traversals, %d device batches/core, %d vertices expanded/core\n",
		len(sources), bfs.Batches(), bfs.ExpectedVisitsPerCore())
	fmt.Println("(BFS batches at most 2 adjacency lines: inherent data dependencies, §V-D)")

	cfg := repro.DefaultConfig() // 1us device
	baseline := must(repro.RunDRAMBaseline(cfg, bfs))
	fmt.Printf("\nDRAM baseline: %.2f us total\n", baseline.ElapsedSeconds*1e6)

	fmt.Println("\nsingle core, 1us device:")
	for _, threads := range []int{1, 2, 4, 5, 8} {
		bfs.Reset()
		pf := must(repro.RunPrefetch(cfg, bfs, threads, true)) // record + replay
		bfs.Reset()
		sq := must(repro.RunSWQueue(cfg, bfs, threads, true))
		fmt.Printf("  %2d threads: prefetch %5.3f   swqueue %5.3f   (of DRAM)\n",
			threads,
			pf.NormalizedTo(baseline.Measurement),
			sq.NormalizedTo(baseline.Measurement))
	}

	// Correctness through the full simulated stack: the traversal must
	// expand exactly the vertices the functional pass expanded.
	bfs.Reset()
	r := must(repro.RunPrefetch(cfg, bfs, 4, true))
	expect := 2 * bfs.ExpectedVisitsPerCore() // record pass + measured pass
	fmt.Printf("\nverification: expanded %d vertices across both passes (want %d), %d replay misses\n",
		bfs.Visited, expect, r.Diag.OnDemand)

	fmt.Println("\neight cores, software queues (the scalable configuration, Fig 10d):")
	cfg8 := cfg.WithCores(8)
	for _, threads := range []int{4, 8, 16} {
		bfs.Reset()
		r := must(repro.RunSWQueue(cfg8, bfs, threads, true))
		fmt.Printf("  %2d threads/core: %.2fx of the single-core DRAM baseline\n",
			threads, r.NormalizedTo(baseline.Measurement))
	}
}

// must unwraps a run result; the examples treat any failure as fatal.
func must(r repro.Result, err error) repro.Result {
	if err != nil {
		panic(err)
	}
	return r
}
